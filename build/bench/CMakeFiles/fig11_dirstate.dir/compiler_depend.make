# Empty compiler generated dependencies file for fig11_dirstate.
# This may be replaced when dependencies are built.
