file(REMOVE_RECURSE
  "CMakeFiles/fig11_dirstate.dir/fig11_dirstate.cc.o"
  "CMakeFiles/fig11_dirstate.dir/fig11_dirstate.cc.o.d"
  "fig11_dirstate"
  "fig11_dirstate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_dirstate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
