# Empty dependencies file for fig12_blockdist.
# This may be replaced when dependencies are built.
