file(REMOVE_RECURSE
  "CMakeFiles/fig12_blockdist.dir/fig12_blockdist.cc.o"
  "CMakeFiles/fig12_blockdist.dir/fig12_blockdist.cc.o.d"
  "fig12_blockdist"
  "fig12_blockdist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_blockdist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
