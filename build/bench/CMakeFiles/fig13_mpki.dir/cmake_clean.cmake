file(REMOVE_RECURSE
  "CMakeFiles/fig13_mpki.dir/fig13_mpki.cc.o"
  "CMakeFiles/fig13_mpki.dir/fig13_mpki.cc.o.d"
  "fig13_mpki"
  "fig13_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
