# Empty compiler generated dependencies file for fig13_mpki.
# This may be replaced when dependencies are built.
