# Empty compiler generated dependencies file for ablation_tester.
# This may be replaced when dependencies are built.
