file(REMOVE_RECURSE
  "CMakeFiles/ablation_tester.dir/ablation_tester.cc.o"
  "CMakeFiles/ablation_tester.dir/ablation_tester.cc.o.d"
  "ablation_tester"
  "ablation_tester.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tester.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
