file(REMOVE_RECURSE
  "CMakeFiles/fig14_exectime.dir/fig14_exectime.cc.o"
  "CMakeFiles/fig14_exectime.dir/fig14_exectime.cc.o.d"
  "fig14_exectime"
  "fig14_exectime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_exectime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
