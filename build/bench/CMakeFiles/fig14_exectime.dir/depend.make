# Empty dependencies file for fig14_exectime.
# This may be replaced when dependencies are built.
