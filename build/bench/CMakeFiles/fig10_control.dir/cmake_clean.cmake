file(REMOVE_RECURSE
  "CMakeFiles/fig10_control.dir/fig10_control.cc.o"
  "CMakeFiles/fig10_control.dir/fig10_control.cc.o.d"
  "fig10_control"
  "fig10_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
