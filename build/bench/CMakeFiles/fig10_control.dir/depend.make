# Empty dependencies file for fig10_control.
# This may be replaced when dependencies are built.
