file(REMOVE_RECURSE
  "CMakeFiles/table1_blocksize.dir/table1_blocksize.cc.o"
  "CMakeFiles/table1_blocksize.dir/table1_blocksize.cc.o.d"
  "table1_blocksize"
  "table1_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
