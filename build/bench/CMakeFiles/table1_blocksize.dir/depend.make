# Empty dependencies file for table1_blocksize.
# This may be replaced when dependencies are built.
