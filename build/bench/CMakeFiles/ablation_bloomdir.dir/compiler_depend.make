# Empty compiler generated dependencies file for ablation_bloomdir.
# This may be replaced when dependencies are built.
