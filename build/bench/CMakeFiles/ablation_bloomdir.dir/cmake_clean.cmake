file(REMOVE_RECURSE
  "CMakeFiles/ablation_bloomdir.dir/ablation_bloomdir.cc.o"
  "CMakeFiles/ablation_bloomdir.dir/ablation_bloomdir.cc.o.d"
  "ablation_bloomdir"
  "ablation_bloomdir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bloomdir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
