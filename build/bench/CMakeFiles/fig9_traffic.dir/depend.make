# Empty dependencies file for fig9_traffic.
# This may be replaced when dependencies are built.
