# Empty dependencies file for fig15_flithops.
# This may be replaced when dependencies are built.
