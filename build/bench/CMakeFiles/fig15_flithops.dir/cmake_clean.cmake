file(REMOVE_RECURSE
  "CMakeFiles/fig15_flithops.dir/fig15_flithops.cc.o"
  "CMakeFiles/fig15_flithops.dir/fig15_flithops.cc.o.d"
  "fig15_flithops"
  "fig15_flithops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_flithops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
