file(REMOVE_RECURSE
  "CMakeFiles/ablation_threehop.dir/ablation_threehop.cc.o"
  "CMakeFiles/ablation_threehop.dir/ablation_threehop.cc.o.d"
  "ablation_threehop"
  "ablation_threehop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_threehop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
