# Empty dependencies file for ablation_threehop.
# This may be replaced when dependencies are built.
