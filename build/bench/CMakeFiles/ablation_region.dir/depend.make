# Empty dependencies file for ablation_region.
# This may be replaced when dependencies are built.
