# Empty compiler generated dependencies file for false_sharing_counters.
# This may be replaced when dependencies are built.
