file(REMOVE_RECURSE
  "CMakeFiles/false_sharing_counters.dir/false_sharing_counters.cc.o"
  "CMakeFiles/false_sharing_counters.dir/false_sharing_counters.cc.o.d"
  "false_sharing_counters"
  "false_sharing_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/false_sharing_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
