# Empty dependencies file for protozoa.
# This may be replaced when dependencies are built.
