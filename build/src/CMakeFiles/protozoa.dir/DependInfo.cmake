
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/amoeba_cache.cc" "src/CMakeFiles/protozoa.dir/cache/amoeba_cache.cc.o" "gcc" "src/CMakeFiles/protozoa.dir/cache/amoeba_cache.cc.o.d"
  "/root/repo/src/cache/mshr.cc" "src/CMakeFiles/protozoa.dir/cache/mshr.cc.o" "gcc" "src/CMakeFiles/protozoa.dir/cache/mshr.cc.o.d"
  "/root/repo/src/cache/spatial_predictor.cc" "src/CMakeFiles/protozoa.dir/cache/spatial_predictor.cc.o" "gcc" "src/CMakeFiles/protozoa.dir/cache/spatial_predictor.cc.o.d"
  "/root/repo/src/common/config.cc" "src/CMakeFiles/protozoa.dir/common/config.cc.o" "gcc" "src/CMakeFiles/protozoa.dir/common/config.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/protozoa.dir/common/log.cc.o" "gcc" "src/CMakeFiles/protozoa.dir/common/log.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/protozoa.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/protozoa.dir/common/stats.cc.o.d"
  "/root/repo/src/common/word_range.cc" "src/CMakeFiles/protozoa.dir/common/word_range.cc.o" "gcc" "src/CMakeFiles/protozoa.dir/common/word_range.cc.o.d"
  "/root/repo/src/mem/golden_memory.cc" "src/CMakeFiles/protozoa.dir/mem/golden_memory.cc.o" "gcc" "src/CMakeFiles/protozoa.dir/mem/golden_memory.cc.o.d"
  "/root/repo/src/noc/mesh.cc" "src/CMakeFiles/protozoa.dir/noc/mesh.cc.o" "gcc" "src/CMakeFiles/protozoa.dir/noc/mesh.cc.o.d"
  "/root/repo/src/protocol/coherence_msg.cc" "src/CMakeFiles/protozoa.dir/protocol/coherence_msg.cc.o" "gcc" "src/CMakeFiles/protozoa.dir/protocol/coherence_msg.cc.o.d"
  "/root/repo/src/protocol/dir_controller.cc" "src/CMakeFiles/protozoa.dir/protocol/dir_controller.cc.o" "gcc" "src/CMakeFiles/protozoa.dir/protocol/dir_controller.cc.o.d"
  "/root/repo/src/protocol/l1_controller.cc" "src/CMakeFiles/protozoa.dir/protocol/l1_controller.cc.o" "gcc" "src/CMakeFiles/protozoa.dir/protocol/l1_controller.cc.o.d"
  "/root/repo/src/protozoa/protozoa.cc" "src/CMakeFiles/protozoa.dir/protozoa/protozoa.cc.o" "gcc" "src/CMakeFiles/protozoa.dir/protozoa/protozoa.cc.o.d"
  "/root/repo/src/sim/core_model.cc" "src/CMakeFiles/protozoa.dir/sim/core_model.cc.o" "gcc" "src/CMakeFiles/protozoa.dir/sim/core_model.cc.o.d"
  "/root/repo/src/sim/random_tester.cc" "src/CMakeFiles/protozoa.dir/sim/random_tester.cc.o" "gcc" "src/CMakeFiles/protozoa.dir/sim/random_tester.cc.o.d"
  "/root/repo/src/sim/stats_report.cc" "src/CMakeFiles/protozoa.dir/sim/stats_report.cc.o" "gcc" "src/CMakeFiles/protozoa.dir/sim/stats_report.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/protozoa.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/protozoa.dir/sim/system.cc.o.d"
  "/root/repo/src/workload/archetypes.cc" "src/CMakeFiles/protozoa.dir/workload/archetypes.cc.o" "gcc" "src/CMakeFiles/protozoa.dir/workload/archetypes.cc.o.d"
  "/root/repo/src/workload/benchmarks.cc" "src/CMakeFiles/protozoa.dir/workload/benchmarks.cc.o" "gcc" "src/CMakeFiles/protozoa.dir/workload/benchmarks.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/CMakeFiles/protozoa.dir/workload/trace.cc.o" "gcc" "src/CMakeFiles/protozoa.dir/workload/trace.cc.o.d"
  "/root/repo/src/workload/trace_io.cc" "src/CMakeFiles/protozoa.dir/workload/trace_io.cc.o" "gcc" "src/CMakeFiles/protozoa.dir/workload/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
