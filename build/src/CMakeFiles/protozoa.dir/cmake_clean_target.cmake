file(REMOVE_RECURSE
  "libprotozoa.a"
)
