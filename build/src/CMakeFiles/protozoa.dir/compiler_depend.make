# Empty compiler generated dependencies file for protozoa.
# This may be replaced when dependencies are built.
