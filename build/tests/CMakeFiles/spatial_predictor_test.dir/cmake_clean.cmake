file(REMOVE_RECURSE
  "CMakeFiles/spatial_predictor_test.dir/spatial_predictor_test.cc.o"
  "CMakeFiles/spatial_predictor_test.dir/spatial_predictor_test.cc.o.d"
  "spatial_predictor_test"
  "spatial_predictor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
