file(REMOVE_RECURSE
  "CMakeFiles/word_range_test.dir/word_range_test.cc.o"
  "CMakeFiles/word_range_test.dir/word_range_test.cc.o.d"
  "word_range_test"
  "word_range_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/word_range_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
