# Empty dependencies file for word_range_test.
# This may be replaced when dependencies are built.
