# Empty compiler generated dependencies file for protocol_race_test.
# This may be replaced when dependencies are built.
