# Empty dependencies file for benchmark_suite_test.
# This may be replaced when dependencies are built.
