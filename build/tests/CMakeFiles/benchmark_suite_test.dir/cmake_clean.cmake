file(REMOVE_RECURSE
  "CMakeFiles/benchmark_suite_test.dir/benchmark_suite_test.cc.o"
  "CMakeFiles/benchmark_suite_test.dir/benchmark_suite_test.cc.o.d"
  "benchmark_suite_test"
  "benchmark_suite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_suite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
