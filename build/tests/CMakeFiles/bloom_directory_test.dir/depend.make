# Empty dependencies file for bloom_directory_test.
# This may be replaced when dependencies are built.
