file(REMOVE_RECURSE
  "CMakeFiles/bloom_directory_test.dir/bloom_directory_test.cc.o"
  "CMakeFiles/bloom_directory_test.dir/bloom_directory_test.cc.o.d"
  "bloom_directory_test"
  "bloom_directory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bloom_directory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
