# Empty compiler generated dependencies file for stats_accounting_test.
# This may be replaced when dependencies are built.
