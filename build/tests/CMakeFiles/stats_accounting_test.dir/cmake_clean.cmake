file(REMOVE_RECURSE
  "CMakeFiles/stats_accounting_test.dir/stats_accounting_test.cc.o"
  "CMakeFiles/stats_accounting_test.dir/stats_accounting_test.cc.o.d"
  "stats_accounting_test"
  "stats_accounting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_accounting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
