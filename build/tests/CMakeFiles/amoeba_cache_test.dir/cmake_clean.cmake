file(REMOVE_RECURSE
  "CMakeFiles/amoeba_cache_test.dir/amoeba_cache_test.cc.o"
  "CMakeFiles/amoeba_cache_test.dir/amoeba_cache_test.cc.o.d"
  "amoeba_cache_test"
  "amoeba_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amoeba_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
