# Empty compiler generated dependencies file for amoeba_cache_test.
# This may be replaced when dependencies are built.
