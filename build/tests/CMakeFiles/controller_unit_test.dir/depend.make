# Empty dependencies file for controller_unit_test.
# This may be replaced when dependencies are built.
