file(REMOVE_RECURSE
  "CMakeFiles/controller_unit_test.dir/controller_unit_test.cc.o"
  "CMakeFiles/controller_unit_test.dir/controller_unit_test.cc.o.d"
  "controller_unit_test"
  "controller_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
