file(REMOVE_RECURSE
  "CMakeFiles/protocol_scenario_test.dir/protocol_scenario_test.cc.o"
  "CMakeFiles/protocol_scenario_test.dir/protocol_scenario_test.cc.o.d"
  "protocol_scenario_test"
  "protocol_scenario_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
