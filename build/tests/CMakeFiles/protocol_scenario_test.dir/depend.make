# Empty dependencies file for protocol_scenario_test.
# This may be replaced when dependencies are built.
