file(REMOVE_RECURSE
  "CMakeFiles/threehop_test.dir/threehop_test.cc.o"
  "CMakeFiles/threehop_test.dir/threehop_test.cc.o.d"
  "threehop_test"
  "threehop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threehop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
