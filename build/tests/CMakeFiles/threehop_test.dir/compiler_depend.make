# Empty compiler generated dependencies file for threehop_test.
# This may be replaced when dependencies are built.
