file(REMOVE_RECURSE
  "CMakeFiles/coherence_msg_test.dir/coherence_msg_test.cc.o"
  "CMakeFiles/coherence_msg_test.dir/coherence_msg_test.cc.o.d"
  "coherence_msg_test"
  "coherence_msg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherence_msg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
