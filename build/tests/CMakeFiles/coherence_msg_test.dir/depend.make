# Empty dependencies file for coherence_msg_test.
# This may be replaced when dependencies are built.
