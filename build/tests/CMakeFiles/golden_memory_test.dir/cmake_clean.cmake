file(REMOVE_RECURSE
  "CMakeFiles/golden_memory_test.dir/golden_memory_test.cc.o"
  "CMakeFiles/golden_memory_test.dir/golden_memory_test.cc.o.d"
  "golden_memory_test"
  "golden_memory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
