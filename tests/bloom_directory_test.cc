/**
 * @file
 * Unit and system tests for the Sec. 6 Bloom-summarized directory:
 * filter semantics (no false negatives, exact add/remove pairing) and
 * whole-system equivalence — a Bloom directory must never change
 * results, only add NACKed probes.
 */

#include <gtest/gtest.h>

#include "protocol/bloom_directory.hh"
#include "protozoa/protozoa.hh"
#include "sim/random_tester.hh"

namespace protozoa {
namespace {

TEST(CountingBloomSharers, AddQueryRemove)
{
    CountingBloomSharers bloom(64, 2, 16);
    const Addr region = 0x1000;

    EXPECT_FALSE(bloom.mayHold(region, 3));
    bloom.add(region, 3);
    EXPECT_TRUE(bloom.mayHold(region, 3));
    EXPECT_TRUE(bloom.query(region).test(3));

    bloom.remove(region, 3);
    EXPECT_FALSE(bloom.mayHold(region, 3));
    EXPECT_TRUE(bloom.query(region).none());
}

TEST(CountingBloomSharers, NoFalseNegativesUnderAliasing)
{
    CountingBloomSharers bloom(8, 2, 16);   // tiny: heavy aliasing
    std::vector<Addr> regions;
    for (unsigned i = 0; i < 64; ++i)
        regions.push_back(0x4000 + i * 64);

    for (Addr r : regions)
        bloom.add(r, static_cast<CoreId>(r / 64 % 16));
    for (Addr r : regions)
        EXPECT_TRUE(bloom.mayHold(r, static_cast<CoreId>(r / 64 % 16)));
}

TEST(CountingBloomSharers, RemovalRestoresEmptiness)
{
    CountingBloomSharers bloom(8, 2, 4);
    std::vector<std::pair<Addr, CoreId>> members;
    for (unsigned i = 0; i < 32; ++i)
        members.push_back({0x8000 + i * 64,
                           static_cast<CoreId>(i % 4)});
    for (auto [r, c] : members)
        bloom.add(r, c);
    for (auto [r, c] : members)
        bloom.remove(r, c);
    for (auto [r, c] : members)
        EXPECT_FALSE(bloom.mayHold(r, c));
}

TEST(CountingBloomSharers, PerCoreIndependence)
{
    CountingBloomSharers bloom(64, 2, 16);
    bloom.add(0x1000, 2);
    bloom.add(0x1000, 9);
    EXPECT_TRUE(bloom.mayHold(0x1000, 2));
    EXPECT_TRUE(bloom.mayHold(0x1000, 9));
    EXPECT_FALSE(bloom.mayHold(0x1000, 3));
    bloom.remove(0x1000, 2);
    EXPECT_FALSE(bloom.mayHold(0x1000, 2));
    EXPECT_TRUE(bloom.mayHold(0x1000, 9));
}

TEST(CountingBloomSharers, DoubleAddNeedsDoubleRemove)
{
    CountingBloomSharers bloom(64, 2, 16);
    bloom.add(0x2000, 1);
    bloom.add(0x2000, 1);
    bloom.remove(0x2000, 1);
    EXPECT_TRUE(bloom.mayHold(0x2000, 1));
    bloom.remove(0x2000, 1);
    EXPECT_FALSE(bloom.mayHold(0x2000, 1));
}

TEST(CountingBloomSharers, StorageBits)
{
    CountingBloomSharers bloom(256, 2, 16);
    EXPECT_EQ(bloom.storageBits(), 256u * 2 * 16);
}

TEST(CountingBloomSharersDeath, UnderflowPanics)
{
    CountingBloomSharers bloom(64, 2, 16);
    EXPECT_DEATH(bloom.remove(0x3000, 0), "underflow");
}

/** Bloom tracking changes traffic, never results or correctness. */
TEST(BloomDirectorySystem, SameMissesMoreProbes)
{
    auto runWith = [](DirectoryKind dir, unsigned buckets) {
        SystemConfig cfg;
        cfg.protocol = ProtocolKind::ProtozoaMW;
        cfg.directory = dir;
        cfg.bloomBuckets = buckets;
        const BenchSpec &spec = findBenchmark("histogram");
        System sys(cfg, spec.gen(cfg, 0.3));
        sys.run();
        EXPECT_EQ(sys.valueViolations(), 0u);
        EXPECT_FALSE(sys.checkCoherenceInvariant().has_value());
        return sys.report();
    };

    const RunStats exact = runWith(DirectoryKind::InCacheExact, 256);
    const RunStats bloom_small = runWith(DirectoryKind::TaglessBloom, 16);

    // The protocol outcome is essentially unchanged (extra probes
    // only perturb timing, so interleavings may shift marginally)...
    EXPECT_NEAR(static_cast<double>(bloom_small.l1.misses),
                static_cast<double>(exact.l1.misses),
                0.01 * static_cast<double>(exact.l1.misses));
    EXPECT_EQ(exact.dir.bloomFalseProbes, 0u);
    // ...but an under-provisioned filter pays false-positive probes.
    EXPECT_GT(bloom_small.dir.bloomFalseProbes, 0u);
    EXPECT_GE(bloom_small.l1.invMsgsReceived, exact.l1.invMsgsReceived);
}

TEST(BloomDirectorySystem, LargeFilterApproachesExact)
{
    auto falseProbes = [](unsigned buckets) {
        SystemConfig cfg;
        cfg.protocol = ProtocolKind::ProtozoaMW;
        cfg.directory = DirectoryKind::TaglessBloom;
        cfg.bloomBuckets = buckets;
        const BenchSpec &spec = findBenchmark("histogram");
        System sys(cfg, spec.gen(cfg, 0.3));
        sys.run();
        return sys.report().dir.bloomFalseProbes;
    };
    EXPECT_LE(falseProbes(4096), falseProbes(16));
}

TEST(BloomDirectorySystem, FuzzCleanUnderAllProtocols)
{
    for (auto protocol :
         {ProtocolKind::MESI, ProtocolKind::ProtozoaSW,
          ProtocolKind::ProtozoaSWMR, ProtocolKind::ProtozoaMW}) {
        RandomTester::Params p;
        p.protocol = protocol;
        p.accessesPerCore = 1200;
        p.checkPeriod = 64;
        p.seed = 77;
        // RandomTester has no directory knob; run a System directly.
        SystemConfig cfg;
        cfg.protocol = protocol;
        cfg.directory = DirectoryKind::TaglessBloom;
        cfg.bloomBuckets = 32;   // plenty of aliasing
        cfg.l1Sets = 4;
        cfg.l2BytesPerTile = 4096;

        Rng rng(99);
        TraceBuilder tb(cfg.numCores, 3);
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            for (unsigned i = 0; i < 1200; ++i) {
                const Addr a = 0x40000000 +
                    rng.below(16 * 8) * kWordBytes;
                if (rng.chance(0.4))
                    tb.store(c, a, 0x10 + 4 * (i % 8), 2);
                else
                    tb.load(c, a, 0x10 + 4 * (i % 8), 2);
            }
        }
        System sys(cfg, tb.build());
        sys.enablePeriodicInvariantCheck(64);
        sys.run();
        EXPECT_EQ(sys.valueViolations(), 0u) << protocolName(protocol);
        EXPECT_EQ(sys.invariantViolations(), 0u)
            << protocolName(protocol);
    }
}

} // namespace
} // namespace protozoa
