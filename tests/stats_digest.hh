/**
 * @file
 * Shared RunStats digesting for the bit-identity and determinism
 * tests: an FNV-1a fold over every deterministic statistic, excluding
 * wall-clock metrics.
 */

#ifndef PROTOZOA_TESTS_STATS_DIGEST_HH
#define PROTOZOA_TESTS_STATS_DIGEST_HH

#include <cstdint>

#include "common/stats.hh"

namespace protozoa {

class Digest
{
  public:
    void
    add(std::uint64_t v)
    {
        // FNV-1a over the value's bytes, 64-bit folded.
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    }

    std::uint64_t value() const { return h; }

  private:
    std::uint64_t h = 0xcbf29ce484222325ULL;
};

/**
 * Protocol-visible statistics: everything a workload's coherence
 * behavior determines, independent of which engine (sequential or
 * sharded) executed the run.
 */
inline void
addProtocolStats(Digest &d, const RunStats &s)
{
    d.add(s.l1.loads);
    d.add(s.l1.stores);
    d.add(s.l1.hits);
    d.add(s.l1.misses);
    d.add(s.l1.invMsgsReceived);
    d.add(s.l1.blocksInvalidated);
    d.add(s.l1.usedDataBytes);
    d.add(s.l1.unusedDataBytes);
    for (const std::uint64_t v : s.l1.ctrlBytes)
        d.add(v);
    for (const std::uint64_t v : s.l1.blockSizeHist)
        d.add(v);
    d.add(s.dir.requests);
    d.add(s.dir.l2Misses);
    d.add(s.dir.recalls);
    d.add(s.dir.memReadBytes);
    d.add(s.dir.memWriteBytes);
    d.add(s.dir.bloomFalseProbes);
    d.add(s.dir.threeHopDirect);
    d.add(s.dir.ownedOneOwnerOnly);
    d.add(s.dir.ownedOneOwnerPlusSharers);
    d.add(s.dir.ownedMultiOwner);
    d.add(s.net.messages);
    d.add(s.net.bytes);
    d.add(s.net.flits);
    d.add(s.net.flitHops);
    d.add(s.instructions);
    d.add(s.cycles);
}

/**
 * Full digest: protocol stats plus the scheduler-kernel counters
 * (deterministic per engine; wallSeconds is excluded). The fold order
 * is frozen — bitident_guard_test's committed golden digest depends
 * on it.
 */
inline void
addStats(Digest &d, const RunStats &s)
{
    d.add(s.l1.loads);
    d.add(s.l1.stores);
    d.add(s.l1.hits);
    d.add(s.l1.misses);
    d.add(s.l1.invMsgsReceived);
    d.add(s.l1.blocksInvalidated);
    d.add(s.l1.usedDataBytes);
    d.add(s.l1.unusedDataBytes);
    for (const std::uint64_t v : s.l1.ctrlBytes)
        d.add(v);
    for (const std::uint64_t v : s.l1.blockSizeHist)
        d.add(v);
    d.add(s.dir.requests);
    d.add(s.dir.l2Misses);
    d.add(s.dir.recalls);
    d.add(s.dir.memReadBytes);
    d.add(s.dir.memWriteBytes);
    d.add(s.dir.bloomFalseProbes);
    d.add(s.dir.threeHopDirect);
    d.add(s.dir.ownedOneOwnerOnly);
    d.add(s.dir.ownedOneOwnerPlusSharers);
    d.add(s.dir.ownedMultiOwner);
    d.add(s.net.messages);
    d.add(s.net.bytes);
    d.add(s.net.flits);
    d.add(s.net.flitHops);
    d.add(s.kernel.eventsScheduled);
    d.add(s.kernel.eventsExecuted);
    d.add(s.kernel.bucketScheduled);
    d.add(s.kernel.heapScheduled);
    d.add(s.kernel.maxQueueDepth);
    d.add(s.instructions);
    d.add(s.cycles);
}

} // namespace protozoa

#endif // PROTOZOA_TESTS_STATS_DIGEST_HH
