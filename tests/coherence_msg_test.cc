/**
 * @file
 * Unit tests for coherence message sizing and stats classification
 * (the basis of the Fig. 9/10 traffic accounting).
 */

#include <gtest/gtest.h>

#include <vector>

#include "protocol/coherence_msg.hh"

namespace protozoa {
namespace {

TEST(CoherenceMsg, ControlMessagesAreHeaderOnly)
{
    CoherenceMsg msg;
    msg.type = MsgType::GETS;
    EXPECT_EQ(msg.dataWords(), 0u);
    EXPECT_EQ(msg.sizeBytes(8), 8u);
    EXPECT_EQ(msg.sizeBytes(16), 16u);
}

TEST(CoherenceMsg, DataSizeCountsAllSegments)
{
    CoherenceMsg msg;
    msg.type = MsgType::WB_RESP;
    const std::uint64_t run1[] = {1, 2, 3};
    const std::uint64_t run2[] = {4, 5};
    msg.data.addRun(WordRange(0, 2), run1);
    msg.data.addRun(WordRange(5, 6), run2);
    EXPECT_EQ(msg.dataWords(), 5u);
    EXPECT_EQ(msg.sizeBytes(8), 8u + 5 * 8u);
}

TEST(MsgData, SetAtAndVisitAscending)
{
    MsgData data;
    EXPECT_TRUE(data.empty());
    data.set(6, 60);
    data.set(1, 10);
    data.set(3, 30);
    EXPECT_EQ(data.count(), 3u);
    EXPECT_TRUE(data.has(3));
    EXPECT_FALSE(data.has(2));
    EXPECT_EQ(data.at(6), 60u);

    std::vector<unsigned> order;
    data.forEachWord([&](unsigned w, std::uint64_t v) {
        order.push_back(w);
        EXPECT_EQ(v, w * 10u);
    });
    EXPECT_EQ(order, (std::vector<unsigned>{1, 3, 6}));
}

TEST(MsgDataDeath, OverlappingRunsPanic)
{
    MsgData data;
    const std::uint64_t run[] = {1, 2, 3};
    data.addRun(WordRange(0, 2), run);
    EXPECT_DEATH(data.addRun(WordRange(2, 4), run),
                 "overlapping payload segments");
}

TEST(CoherenceMsg, CtrlClassMapping)
{
    auto classOf = [](MsgType t) {
        CoherenceMsg m;
        m.type = t;
        return m.ctrlClass();
    };
    EXPECT_EQ(classOf(MsgType::GETS), CtrlClass::Req);
    EXPECT_EQ(classOf(MsgType::GETX), CtrlClass::Req);
    EXPECT_EQ(classOf(MsgType::FWD_GETS), CtrlClass::Fwd);
    EXPECT_EQ(classOf(MsgType::FWD_GETX), CtrlClass::Fwd);
    EXPECT_EQ(classOf(MsgType::INV), CtrlClass::Inv);
    EXPECT_EQ(classOf(MsgType::ACK), CtrlClass::Ack);
    EXPECT_EQ(classOf(MsgType::ACK_S), CtrlClass::Ack);
    EXPECT_EQ(classOf(MsgType::WB_ACK), CtrlClass::Ack);
    EXPECT_EQ(classOf(MsgType::UNBLOCK), CtrlClass::Ack);
    EXPECT_EQ(classOf(MsgType::NACK), CtrlClass::Nack);
    EXPECT_EQ(classOf(MsgType::DATA), CtrlClass::DataHdr);
    EXPECT_EQ(classOf(MsgType::WB_RESP), CtrlClass::DataHdr);
    EXPECT_EQ(classOf(MsgType::PUT), CtrlClass::DataHdr);
}

TEST(CoherenceMsg, NamesAreStable)
{
    EXPECT_STREQ(msgTypeName(MsgType::GETS), "GETS");
    EXPECT_STREQ(msgTypeName(MsgType::FWD_GETX), "FWD_GETX");
    EXPECT_STREQ(msgTypeName(MsgType::ACK_S), "ACK_S");
    EXPECT_STREQ(msgTypeName(MsgType::WB_ACK), "WB_ACK");
}

TEST(CoherenceMsg, ToStringMentionsKeyFields)
{
    CoherenceMsg msg;
    msg.type = MsgType::FWD_GETX;
    msg.region = 0xabc0;
    msg.range = WordRange(2, 5);
    msg.sender = 3;
    msg.requester = 7;
    const std::string s = msg.toString();
    EXPECT_NE(s.find("FWD_GETX"), std::string::npos);
    EXPECT_NE(s.find("abc0"), std::string::npos);
    EXPECT_NE(s.find("[2-5]"), std::string::npos);
    EXPECT_NE(s.find("req=7"), std::string::npos);
}

TEST(DataSegment, ConstructsWithRangeAndWords)
{
    DataSegment seg(WordRange(1, 3), {7, 8, 9});
    EXPECT_EQ(seg.range.words(), 3u);
    EXPECT_EQ(seg.words.size(), 3u);
}

} // namespace
} // namespace protozoa
