/**
 * @file
 * Directed protocol tests: stable-state transitions, grants, and the
 * Sec. 3.3 "add-ons to a conventional MESI protocol" (secondary GETXs
 * from the owner, PUT vs PUT_LAST bookkeeping).
 *
 * Uses the WordOnly fetch policy so every block is exactly the
 * referenced word, which makes variable-granularity states easy to
 * assert.
 */

#include <gtest/gtest.h>

#include "protocol_driver.hh"

namespace protozoa {
namespace {

constexpr Addr kRegion = 0x1000;   // home tile 4

SystemConfig
wordCfg(ProtocolKind protocol)
{
    SystemConfig cfg;
    cfg.protocol = protocol;
    cfg.predictor = PredictorKind::WordOnly;
    return cfg;
}

Addr
word(unsigned w)
{
    return kRegion + w * kWordBytes;
}

TEST(ProtocolBasic, ColdLoadGrantsExclusive)
{
    ProtocolDriver d(wordCfg(ProtocolKind::ProtozoaMW));
    const std::uint64_t v = d.load(0, word(3));
    EXPECT_EQ(v, WordStore::initialValue(word(3)));
    EXPECT_EQ(d.stateOf(0, word(3)), BlockState::E);

    const auto view = d.dirView(word(3));
    EXPECT_TRUE(view.present);
    EXPECT_TRUE(view.writers.only(0));   // E grants track as writer
    EXPECT_TRUE(view.readers.none());
    d.expectClean();
}

TEST(ProtocolBasic, SecondReaderDowngradesExclusive)
{
    ProtocolDriver d(wordCfg(ProtocolKind::ProtozoaMW));
    d.load(0, word(3));
    const std::uint64_t v = d.load(1, word(3));
    EXPECT_EQ(v, WordStore::initialValue(word(3)));

    EXPECT_EQ(d.stateOf(0, word(3)), BlockState::S);
    EXPECT_EQ(d.stateOf(1, word(3)), BlockState::S);
    const auto view = d.dirView(word(3));
    EXPECT_TRUE(view.writers.none());
    EXPECT_TRUE(view.readers.test(0));
    EXPECT_TRUE(view.readers.test(1));
    d.expectClean();
}

TEST(ProtocolBasic, StoreMissGrantsModified)
{
    ProtocolDriver d(wordCfg(ProtocolKind::ProtozoaMW));
    d.store(0, word(2), 99);
    EXPECT_EQ(d.stateOf(0, word(2)), BlockState::M);
    EXPECT_EQ(d.load(0, word(2)), 99u);

    const auto view = d.dirView(word(2));
    EXPECT_TRUE(view.writers.only(0));
    d.expectClean();
}

TEST(ProtocolBasic, SilentExclusiveToModifiedUpgrade)
{
    ProtocolDriver d(wordCfg(ProtocolKind::ProtozoaMW));
    d.load(0, word(1));
    EXPECT_EQ(d.stateOf(0, word(1)), BlockState::E);
    const auto before = d.sys.dir(d.homeOf(word(1))).stats.requests;
    d.store(0, word(1), 7);   // hit: silent E->M, no new request
    EXPECT_EQ(d.stateOf(0, word(1)), BlockState::M);
    EXPECT_EQ(d.sys.dir(d.homeOf(word(1))).stats.requests, before);
    EXPECT_EQ(d.load(0, word(1)), 7u);
}

TEST(ProtocolBasic, StoreUpgradeFromSharedInvalidatesOtherReader)
{
    ProtocolDriver d(wordCfg(ProtocolKind::MESI));
    d.load(0, word(5));
    d.load(1, word(5));
    d.store(0, word(5), 11);

    EXPECT_EQ(d.stateOf(0, word(5)), BlockState::M);
    EXPECT_EQ(d.stateOf(1, word(5)), std::nullopt);
    EXPECT_EQ(d.load(1, word(5)), 11u);   // reads back through protocol
    d.expectClean();
}

TEST(ProtocolBasic, DirtyDataForwardedToReader)
{
    for (auto protocol :
         {ProtocolKind::MESI, ProtocolKind::ProtozoaSW,
          ProtocolKind::ProtozoaSWMR, ProtocolKind::ProtozoaMW}) {
        ProtocolDriver d(wordCfg(protocol));
        d.store(0, word(4), 1234);
        EXPECT_EQ(d.load(1, word(4)), 1234u) << protocolName(protocol);
        // Writer was downgraded to S in every protocol.
        EXPECT_EQ(d.stateOf(0, word(4)), BlockState::S);
        d.expectClean();
    }
}

// Sec. 3.3 / Fig. 5 (top): additional GETXs from the owner must be
// answered, not forwarded back to the owner.
TEST(ProtocolBasic, AdditionalGetxFromOwner)
{
    for (auto protocol :
         {ProtocolKind::ProtozoaSW, ProtocolKind::ProtozoaSWMR,
          ProtocolKind::ProtozoaMW}) {
        ProtocolDriver d(wordCfg(protocol));
        d.store(0, word(1), 10);
        d.store(0, word(6), 20);   // second GETX from the same owner

        EXPECT_EQ(d.stateOf(0, word(1)), BlockState::M)
            << protocolName(protocol);
        EXPECT_EQ(d.stateOf(0, word(6)), BlockState::M);
        const auto view = d.dirView(word(1));
        EXPECT_TRUE(view.writers.only(0));
        d.expectClean();
    }
}

// Sec. 3.3 / Fig. 5 (bottom): evicting one of several dirty blocks of
// a region must not unset the sharer; the final eviction must.
TEST(ProtocolBasic, MultipleWritebacksFromOwner)
{
    SystemConfig cfg = wordCfg(ProtocolKind::ProtozoaMW);
    cfg.l1Sets = 1;
    cfg.l1BytesPerSet = 80;   // five 16-byte one-word blocks
    ProtocolDriver d(cfg);

    // Two dirty blocks in region kRegion.
    d.store(0, word(1), 1);
    d.store(0, word(6), 6);
    // Fill the set with other regions until word(1)'s block evicts.
    for (unsigned i = 1; i <= 3; ++i)
        d.store(0, kRegion + i * 64, 100 + i);

    // One block of kRegion evicted (PUT, not PUT_LAST): still tracked.
    auto view = d.dirView(word(1));
    EXPECT_TRUE(view.writers.test(0));

    // Push the remaining kRegion block out as well.
    for (unsigned i = 4; i <= 8; ++i)
        d.store(0, kRegion + i * 64, 100 + i);
    view = d.dirView(word(1));
    EXPECT_FALSE(view.writers.test(0));
    EXPECT_FALSE(view.readers.test(0));

    // Values survived the writeback chain.
    EXPECT_EQ(d.load(1, word(1)), 1u);
    EXPECT_EQ(d.load(1, word(6)), 6u);
    d.expectClean();
}

TEST(ProtocolBasic, WordOnlyBlocksAreSingleWord)
{
    ProtocolDriver d(wordCfg(ProtocolKind::ProtozoaMW));
    d.load(0, word(2));
    EXPECT_EQ(d.stateOf(0, word(2)), BlockState::E);
    EXPECT_EQ(d.stateOf(0, word(3)), std::nullopt);
    EXPECT_EQ(d.stateOf(0, word(1)), std::nullopt);
}

TEST(ProtocolBasic, FullRegionFetchCoversRegion)
{
    SystemConfig cfg = wordCfg(ProtocolKind::MESI);
    ProtocolDriver d(cfg);
    d.load(0, word(2));
    for (unsigned w = 0; w < 8; ++w)
        EXPECT_EQ(d.stateOf(0, word(w)), BlockState::E) << w;
}

TEST(ProtocolBasic, LoadsReturnInitialMemoryImage)
{
    ProtocolDriver d(wordCfg(ProtocolKind::ProtozoaSW));
    for (unsigned w = 0; w < 8; ++w)
        EXPECT_EQ(d.load(w % 4, word(w)),
                  WordStore::initialValue(word(w)));
    d.expectClean();
}

TEST(ProtocolBasic, WriteReadAcrossManyCores)
{
    ProtocolDriver d(wordCfg(ProtocolKind::ProtozoaMW));
    for (CoreId c = 0; c < 16; ++c)
        d.store(c, word(c % 8), 1000 + c);
    // The last writer of each word was core (w + 8).
    for (unsigned w = 0; w < 8; ++w)
        EXPECT_EQ(d.load(15, word(w)), 1000u + w + 8);
    d.expectClean();
}

} // namespace
} // namespace protozoa
