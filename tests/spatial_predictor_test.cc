/**
 * @file
 * Unit tests for the fetch-granularity predictors, in particular the
 * Amoeba PC-indexed spatial predictor's learning behaviour.
 */

#include <gtest/gtest.h>

#include "cache/spatial_predictor.hh"

namespace protozoa {
namespace {

constexpr unsigned kRegionWords = 8;

TEST(FullRegionPredictor, AlwaysFullRegion)
{
    FullRegionPredictor p;
    EXPECT_EQ(p.predict(0x1, 3, WordRange(3, 3), kRegionWords),
              WordRange(0, 7));
    EXPECT_EQ(p.predict(0x2, 0, WordRange(0, 0), 4), WordRange(0, 3));
}

TEST(FixedPredictor, AlignedChunks)
{
    FixedPredictor p(4);
    EXPECT_EQ(p.predict(0, 1, WordRange(1, 1), kRegionWords),
              WordRange(0, 3));
    EXPECT_EQ(p.predict(0, 5, WordRange(5, 5), kRegionWords),
              WordRange(4, 7));
}

TEST(FixedPredictor, ClampsToRegion)
{
    FixedPredictor p(16);
    EXPECT_EQ(p.predict(0, 2, WordRange(2, 2), kRegionWords),
              WordRange(0, 7));
}

TEST(WordOnlyPredictor, ExactlyTheNeed)
{
    WordOnlyPredictor p;
    EXPECT_EQ(p.predict(0, 6, WordRange(6, 6), kRegionWords),
              WordRange(6, 6));
}

// Satellite regression: learn() computed the touched-extent high bit
// with a hardcoded 31u (assuming a 32-bit mask). The top word of a
// 16-word (128-byte) region must train and predict correctly for any
// WordMask width.
TEST(PcSpatialPredictor, LearnsTopWordOfSixteenWordRegion)
{
    PcSpatialPredictor p;
    p.learn(0xc0, 15, WordMask(1) << 15, WordRange(0, 15));
    EXPECT_EQ(p.predict(0xc0, 15, WordRange(15, 15), 16),
              WordRange(15, 15));

    // Runs touching the full 16 words learn the full extent.
    PcSpatialPredictor q;
    q.learn(0xd0, 0, static_cast<WordMask>(0xffff), WordRange(0, 15));
    EXPECT_EQ(q.predict(0xd0, 0, WordRange(0, 0), 16),
              WordRange(0, 15));
}

TEST(PcSpatialPredictor, ColdPredictsFullRegion)
{
    PcSpatialPredictor p;
    EXPECT_EQ(p.predict(0x40, 3, WordRange(3, 3), kRegionWords),
              WordRange(0, 7));
}

TEST(PcSpatialPredictor, LearnsSingleWordPattern)
{
    PcSpatialPredictor p;
    p.learn(0x40, 3, WordMask(1) << 3, WordRange(0, 7));
    EXPECT_EQ(p.predict(0x40, 5, WordRange(5, 5), kRegionWords),
              WordRange(5, 5));
}

TEST(PcSpatialPredictor, LearnsForwardRuns)
{
    PcSpatialPredictor p;
    // Block anchored at word 0, words 0..3 touched.
    p.learn(0x80, 0, 0b1111, WordRange(0, 7));
    EXPECT_EQ(p.predict(0x80, 0, WordRange(0, 0), kRegionWords),
              WordRange(0, 3));
    // Prediction is anchored at the miss word.
    EXPECT_EQ(p.predict(0x80, 4, WordRange(4, 4), kRegionWords),
              WordRange(4, 7));
}

TEST(PcSpatialPredictor, LearnsBackwardExtent)
{
    PcSpatialPredictor p;
    // Miss word 5; words 2..5 touched => left extent 3.
    p.learn(0x90, 5, 0b111100, WordRange(0, 7));
    EXPECT_EQ(p.predict(0x90, 5, WordRange(5, 5), kRegionWords),
              WordRange(2, 5));
}

TEST(PcSpatialPredictor, GrowsImmediately)
{
    PcSpatialPredictor p;
    p.learn(0xa0, 0, 0b1, WordRange(0, 0));
    EXPECT_EQ(p.predict(0xa0, 0, WordRange(0, 0), kRegionWords),
              WordRange(0, 0));
    p.learn(0xa0, 0, 0b11111111, WordRange(0, 7));
    EXPECT_EQ(p.predict(0xa0, 0, WordRange(0, 0), kRegionWords),
              WordRange(0, 7));
}

TEST(PcSpatialPredictor, ShrinksByEwma)
{
    PcSpatialPredictor p;
    p.learn(0xb0, 0, 0xff, WordRange(0, 7));   // right extent 7
    p.learn(0xb0, 0, 0b1, WordRange(0, 7));    // right extent 0
    // EWMA: (7 + 0) / 2 = 3.
    EXPECT_EQ(p.predict(0xb0, 0, WordRange(0, 0), kRegionWords),
              WordRange(0, 3));
    p.learn(0xb0, 0, 0b1, WordRange(0, 3));
    p.learn(0xb0, 0, 0b1, WordRange(0, 1));
    p.learn(0xb0, 0, 0b1, WordRange(0, 0));
    EXPECT_EQ(p.predict(0xb0, 0, WordRange(0, 0), kRegionWords),
              WordRange(0, 0));
}

TEST(PcSpatialPredictor, UntouchedDeathLearnsMinimal)
{
    PcSpatialPredictor p;
    // Block died without any touch (e.g. invalidated immediately).
    p.learn(0xc0, 4, 0, WordRange(0, 7));
    EXPECT_EQ(p.predict(0xc0, 4, WordRange(4, 4), kRegionWords),
              WordRange(4, 4));
}

TEST(PcSpatialPredictor, PredictionAlwaysCoversNeed)
{
    PcSpatialPredictor p;
    p.learn(0xd0, 7, WordMask(1) << 7, WordRange(0, 7));
    // Learned 0/0 extents, but the need must still be covered.
    EXPECT_EQ(p.predict(0xd0, 2, WordRange(2, 2), kRegionWords),
              WordRange(2, 2));
}

TEST(PcSpatialPredictor, ClampsAtRegionEdges)
{
    PcSpatialPredictor p;
    p.learn(0xe0, 4, 0xff, WordRange(0, 7));   // extents 4 left, 3 right
    // Miss near the left edge: left extent clamps to 0.
    EXPECT_EQ(p.predict(0xe0, 1, WordRange(1, 1), kRegionWords),
              WordRange(0, 4));
    // Miss near the right edge: right extent clamps to 7.
    EXPECT_EQ(p.predict(0xe0, 6, WordRange(6, 6), kRegionWords),
              WordRange(2, 7));
}

TEST(PcSpatialPredictor, DistinctPcsAreIndependent)
{
    PcSpatialPredictor p;
    p.learn(0x100, 0, 0b1, WordRange(0, 7));
    EXPECT_EQ(p.predict(0x100, 0, WordRange(0, 0), kRegionWords),
              WordRange(0, 0));
    // A different PC is still cold.
    EXPECT_EQ(p.predict(0x200, 0, WordRange(0, 0), kRegionWords),
              WordRange(0, 7));
}

TEST(MakePredictor, FactorySelectsPolicy)
{
    SystemConfig cfg;
    cfg.predictor = PredictorKind::FullRegion;
    EXPECT_NE(dynamic_cast<FullRegionPredictor *>(
                  makePredictor(cfg).get()),
              nullptr);
    cfg.predictor = PredictorKind::Fixed;
    EXPECT_NE(dynamic_cast<FixedPredictor *>(makePredictor(cfg).get()),
              nullptr);
    cfg.predictor = PredictorKind::PcSpatial;
    EXPECT_NE(dynamic_cast<PcSpatialPredictor *>(
                  makePredictor(cfg).get()),
              nullptr);
    cfg.predictor = PredictorKind::WordOnly;
    EXPECT_NE(dynamic_cast<WordOnlyPredictor *>(
                  makePredictor(cfg).get()),
              nullptr);
}

} // namespace
} // namespace protozoa
