/**
 * @file
 * Shared test harness: a System with no core traces that the test
 * drives access-by-access, so protocol scenarios (paper Figs. 4-7 and
 * the Sec. 3.3 races) can be replayed deterministically.
 */

#ifndef PROTOZOA_TESTS_PROTOCOL_DRIVER_HH
#define PROTOZOA_TESTS_PROTOCOL_DRIVER_HH

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <optional>

#include "protozoa/protozoa.hh"

namespace protozoa {

inline Workload
emptyWorkload(unsigned cores)
{
    Workload wl;
    for (unsigned c = 0; c < cores; ++c)
        wl.push_back(
            std::make_unique<VectorTrace>(std::vector<TraceRecord>{}));
    return wl;
}

class ProtocolDriver
{
  public:
    explicit ProtocolDriver(const SystemConfig &cfg)
        : sys(cfg, emptyWorkload(cfg.numCores))
    {
    }

    /** Issue a load and run the system until it completes. */
    std::uint64_t
    load(CoreId core, Addr addr, Pc pc = 0x1000)
    {
        std::optional<std::uint64_t> result;
        MemAccess acc;
        acc.addr = addr;
        acc.pc = pc;
        sys.l1(core).requestAccess(
            acc, [&](std::uint64_t v) { result = v; });
        sys.eventQueue().run();
        EXPECT_TRUE(result.has_value());
        return result.value_or(0);
    }

    /** Issue a store and run the system until it completes. */
    void
    store(CoreId core, Addr addr, std::uint64_t value, Pc pc = 0x2000)
    {
        bool done = false;
        MemAccess acc;
        acc.addr = addr;
        acc.isWrite = true;
        acc.storeValue = value;
        acc.pc = pc;
        sys.l1(core).requestAccess(acc,
                                   [&](std::uint64_t) { done = true; });
        sys.eventQueue().run();
        EXPECT_TRUE(done);
    }

    /**
     * Queue an access without draining the event queue (for races).
     * Accesses from the same core chain in order (the in-order core
     * can have only one outstanding access); @p delay applies before
     * this access issues once its predecessor completed.
     */
    void
    issue(CoreId core, Addr addr, bool is_write, std::uint64_t value = 0,
          Pc pc = 0x3000, Cycle delay = 0)
    {
        MemAccess acc;
        acc.addr = addr;
        acc.isWrite = is_write;
        acc.storeValue = value;
        acc.pc = pc;
        queues[core].push_back({acc, delay});
        if (!inFlight[core])
            issueNext(core);
    }

    /** Run whatever is queued to completion. */
    void drain() { sys.eventQueue().run(); }

    /** State of the block covering @p addr at @p core (if cached). */
    std::optional<BlockState>
    stateOf(CoreId core, Addr addr)
    {
        const auto &cfg = sys.config();
        AmoebaBlock *blk = sys.l1(core).cacheStorage().findCovering(
            regionBase(addr, cfg.regionBytes),
            wordIndexIn(addr, cfg.regionBytes));
        if (!blk)
            return std::nullopt;
        return blk->state;
    }

    /** Home directory tile of @p addr. */
    TileId
    homeOf(Addr addr)
    {
        const auto &cfg = sys.config();
        const Addr region = regionBase(addr, cfg.regionBytes);
        return static_cast<TileId>((region / cfg.regionBytes) %
                                   cfg.l2Tiles);
    }

    DirController::DirView
    dirView(Addr addr)
    {
        const auto &cfg = sys.config();
        return sys.dir(homeOf(addr))
            .view(regionBase(addr, cfg.regionBytes));
    }

    /** Expect a clean coherence scan and no value violations. */
    void
    expectClean()
    {
        const auto err = sys.checkCoherenceInvariant();
        EXPECT_FALSE(err.has_value()) << err.value_or("");
        EXPECT_EQ(sys.valueViolations(), 0u);
    }

    System sys;

  private:
    struct QueuedAccess
    {
        MemAccess acc;
        Cycle delay;
    };

    void
    issueNext(CoreId core)
    {
        if (queues[core].empty())
            return;
        inFlight[core] = true;
        const QueuedAccess next = queues[core].front();
        queues[core].pop_front();
        sys.eventQueue().schedule(next.delay, [this, core, next] {
            sys.l1(core).requestAccess(
                next.acc, [this, core](std::uint64_t) {
                    inFlight[core] = false;
                    issueNext(core);
                });
        });
    }

    std::map<CoreId, std::deque<QueuedAccess>> queues;
    std::map<CoreId, bool> inFlight;
};

} // namespace protozoa

#endif // PROTOZOA_TESTS_PROTOCOL_DRIVER_HH
