/**
 * @file
 * Property tests: across a configuration matrix (protocol x predictor
 * x region size x cache pressure), random conflict-heavy workloads
 * must preserve the SWMR invariant and load-value correctness, and a
 * cold-start Protozoa with full-region predictions must be
 * message-for-message equivalent to MESI (paper correctness
 * invariant (i)).
 */

#include <gtest/gtest.h>

#include "protocol_driver.hh"
#include "sim/random_tester.hh"

namespace protozoa {
namespace {

struct MatrixCase
{
    ProtocolKind protocol;
    PredictorKind predictor;
    unsigned regionBytes;
    unsigned l1Sets;
};

class ConfigMatrix : public ::testing::TestWithParam<MatrixCase>
{
};

TEST_P(ConfigMatrix, RandomConflictWorkloadStaysCoherent)
{
    const MatrixCase &mc = GetParam();

    SystemConfig cfg;
    cfg.protocol = mc.protocol;
    cfg.predictor = mc.predictor;
    cfg.regionBytes = mc.regionBytes;
    cfg.l1Sets = mc.l1Sets;
    cfg.checkValues = true;

    Rng rng(mc.regionBytes * 131 + mc.l1Sets);
    TraceBuilder tb(cfg.numCores, 17);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        for (unsigned i = 0; i < 400; ++i) {
            const Addr a =
                0x9000 + rng.below(8 * cfg.regionBytes / kWordBytes) *
                             kWordBytes;
            if (rng.chance(0.45))
                tb.store(c, a, 0x40 + 4 * (i % 8), 1);
            else
                tb.load(c, a, 0x40 + 4 * (i % 8), 1);
        }
    }

    System sys(cfg, tb.build());
    sys.enablePeriodicInvariantCheck(48);
    sys.run();
    EXPECT_EQ(sys.valueViolations(), 0u);
    EXPECT_EQ(sys.invariantViolations(), 0u);
}

std::vector<MatrixCase>
matrix()
{
    std::vector<MatrixCase> cases;
    for (auto protocol :
         {ProtocolKind::MESI, ProtocolKind::ProtozoaSW,
          ProtocolKind::ProtozoaSWMR, ProtocolKind::ProtozoaMW}) {
        for (auto predictor :
             {PredictorKind::PcSpatial, PredictorKind::WordOnly}) {
            for (unsigned region : {32u, 64u, 128u}) {
                cases.push_back({protocol, predictor, region, 8});
            }
        }
        cases.push_back(
            {protocol, PredictorKind::PcSpatial, 64u, 2});  // pressure
    }
    return cases;
}

std::string
matrixName(const ::testing::TestParamInfo<MatrixCase> &info)
{
    std::string name = protocolName(info.param.protocol);
    for (auto &ch : name)
        if (ch == '-' || ch == '+')
            ch = '_';
    name += info.param.predictor == PredictorKind::WordOnly ? "_word"
                                                            : "_pc";
    name += "_r" + std::to_string(info.param.regionBytes);
    name += "_s" + std::to_string(info.param.l1Sets);
    return name;
}

INSTANTIATE_TEST_SUITE_P(Matrix, ConfigMatrix,
                         ::testing::ValuesIn(matrix()), matrixName);

/**
 * Paper invariant (i): "Protozoa mimics MESI's behavior when only a
 * fixed block size is predicted". With the FullRegion predictor every
 * Protozoa variant must produce the same misses, hits, and data bytes
 * as MESI on any workload.
 */
class MesiEquivalence : public ::testing::TestWithParam<ProtocolKind>
{
};

TEST_P(MesiEquivalence, FullRegionPredictionMimicsMesi)
{
    auto runWith = [](ProtocolKind protocol) {
        SystemConfig cfg;
        cfg.protocol = protocol;
        cfg.predictor = PredictorKind::FullRegion;

        Rng rng(5);
        TraceBuilder tb(cfg.numCores, 23);
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            for (unsigned i = 0; i < 600; ++i) {
                const Addr a = 0xa000 + rng.below(256) * kWordBytes;
                if (rng.chance(0.3))
                    tb.store(c, a, 0x60, 2);
                else
                    tb.load(c, a, 0x60, 2);
            }
        }
        System sys(cfg, tb.build());
        sys.run();
        EXPECT_EQ(sys.valueViolations(), 0u);
        return sys.report();
    };

    const RunStats mesi = runWith(ProtocolKind::MESI);
    const RunStats proto = runWith(GetParam());

    EXPECT_EQ(proto.l1.misses, mesi.l1.misses);
    EXPECT_EQ(proto.l1.hits, mesi.l1.hits);
    EXPECT_EQ(proto.l1.dataBytes(), mesi.l1.dataBytes());
    EXPECT_EQ(proto.l1.invMsgsReceived, mesi.l1.invMsgsReceived);
    EXPECT_EQ(proto.cycles, mesi.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, MesiEquivalence,
    ::testing::Values(ProtocolKind::ProtozoaSW,
                      ProtocolKind::ProtozoaSWMR,
                      ProtocolKind::ProtozoaMW),
    [](const ::testing::TestParamInfo<ProtocolKind> &info) {
        std::string name = protocolName(info.param);
        for (auto &ch : name)
            if (ch == '-' || ch == '+')
                ch = '_';
        return name;
    });

/** The paper's million-access random test, shrunk for CI but still
 *  substantial: 16 cores x 4k accesses x 4 protocols. */
TEST(MillionAccessStyle, AllProtocolsSurviveLongFuzz)
{
    for (auto protocol :
         {ProtocolKind::MESI, ProtocolKind::ProtozoaSW,
          ProtocolKind::ProtozoaSWMR, ProtocolKind::ProtozoaMW}) {
        RandomTester::Params p;
        p.protocol = protocol;
        p.accessesPerCore = 4000;
        p.regions = 24;
        p.checkPeriod = 256;
        p.seed = 1234;
        const auto result = RandomTester::run(p);
        EXPECT_EQ(result.valueViolations, 0u) << protocolName(protocol);
        EXPECT_EQ(result.invariantViolations, 0u)
            << protocolName(protocol);
    }
}

/** Region-granularity invariant: under MESI/SW a writer excludes all
 *  other holders of the region, not just overlapping ones. */
TEST(InvariantChecker, DetectsViolationsWhenSeeded)
{
    SystemConfig cfg;
    cfg.protocol = ProtocolKind::ProtozoaMW;
    System sys(cfg, emptyWorkload(cfg.numCores));

    // Manufacture an illegal state directly in the storage.
    auto mk = [&](CoreId core, unsigned start, unsigned end,
                  BlockState st) {
        AmoebaBlock blk;
        blk.region = 0x8000;
        blk.range = WordRange(start, end);
        blk.state = st;
        blk.words.assign(blk.range.words(), 0);
        sys.l1(core).cacheStorage().insert(blk);
    };

    mk(0, 0, 3, BlockState::M);
    mk(1, 5, 7, BlockState::M);   // disjoint writers: legal under MW
    EXPECT_FALSE(sys.checkCoherenceInvariant().has_value());

    mk(2, 3, 4, BlockState::S);   // overlaps core 0's dirty words
    const auto err = sys.checkCoherenceInvariant();
    ASSERT_TRUE(err.has_value());
    EXPECT_NE(err->find("SWMR"), std::string::npos);
}

} // namespace
} // namespace protozoa
