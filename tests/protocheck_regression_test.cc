/**
 * @file
 * End-to-end regression tests for protocheck: the PR 2 lost-store
 * eviction race, re-injected behind SystemConfig::debugLostStoreBug,
 * must be found by the bounded explorer and shrink to a tiny repro;
 * with the fix active the same scenario must verify clean. Also covers
 * occupancy-jitter determinism and campaign-failure auto-shrinking.
 */

#include <gtest/gtest.h>

#include "check/campaign_shrink.hh"
#include "check/explorer.hh"
#include "check/minimizer.hh"
#include "check/scenario.hh"
#include "protozoa/protozoa.hh"

using namespace protozoa;
using namespace protozoa::check;

namespace {

Scenario
lostStoreScenario(bool bug)
{
    const Scenario *s = findScenario("evict-vs-partial-probe");
    EXPECT_NE(s, nullptr);
    Scenario out = *s;
    out.debugLostStoreBug = bug;
    return out;
}

} // namespace

TEST(LostStoreRegression, ExplorerFindsReinjectedBug)
{
    const Scenario s = lostStoreScenario(true);
    const ExploreResult r = explore(s, ProtocolKind::ProtozoaMW);
    ASSERT_TRUE(r.violation.has_value())
        << "re-injected lost-store race not found in "
        << r.statesVisited << " states";
    EXPECT_FALSE(r.violation->schedule.empty());
    EXPECT_EQ(r.violation->schedule.size(), r.violation->steps.size());
}

TEST(LostStoreRegression, MinimizerShrinksToTinyRepro)
{
    const Scenario s = lostStoreScenario(true);
    const auto min = minimize(s, ProtocolKind::ProtozoaMW);
    ASSERT_TRUE(min.has_value());
    EXPECT_LE(min->scenario.accesses.size(), 6u);
    EXPECT_FALSE(min->repro.empty());
    EXPECT_NE(min->repro.find("cfg.debugLostStoreBug = true;"),
              std::string::npos);
    EXPECT_NE(min->repro.find("ProtocolDriver d(cfg);"),
              std::string::npos);
    // The minimized schedule must still reproduce deterministically.
    const auto v = replaySchedule(min->scenario,
                                  ProtocolKind::ProtozoaMW,
                                  min->schedule);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->kind, min->violation.kind);
}

TEST(LostStoreRegression, FixedProtocolVerifiesClean)
{
    const Scenario s = lostStoreScenario(false);
    for (ProtocolKind proto :
         {ProtocolKind::ProtozoaSWMR, ProtocolKind::ProtozoaMW}) {
        const ExploreResult r = explore(s, proto);
        EXPECT_FALSE(r.violation.has_value())
            << protocolName(proto) << ": [" << r.violation->kind
            << "] " << r.violation->detail;
        EXPECT_FALSE(r.budgetExhausted) << protocolName(proto);
    }
}

TEST(OccupancyJitter, DeterministicPerSeedAndClean)
{
    RandomTester::Params p;
    p.numCores = 4;
    p.meshCols = 2;
    p.meshRows = 2;
    p.accessesPerCore = 300;
    p.occupancyJitter = true;
    p.occupancyJitterMax = 4;
    p.seed = 7;

    const auto a = RandomTester::run(p);
    const auto b = RandomTester::run(p);
    EXPECT_EQ(a.valueViolations, 0u);
    EXPECT_EQ(a.invariantViolations, 0u);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.coverage.hitRows(), b.coverage.hitRows());

    // A different jitter draw (different seed) must also stay clean:
    // jitter may reorder controller servicing but never break SWMR.
    p.seed = 8;
    const auto c = RandomTester::run(p);
    EXPECT_EQ(c.valueViolations, 0u);
    EXPECT_EQ(c.invariantViolations, 0u);
}

TEST(CampaignShrink, ShrinksAReinjectedFailure)
{
    RandomTester::Params p;
    p.protocol = ProtocolKind::ProtozoaMW;
    p.predictor = PredictorKind::WordOnly;
    p.numCores = 4;
    p.meshCols = 2;
    p.meshRows = 2;
    p.regions = 2;
    p.coldFraction = 0.3;
    p.coldRegions = 16;
    p.accessesPerCore = 120;
    p.writeFraction = 0.6;
    p.l1Sets = 1;
    p.pattern = RandomTester::Pattern::EvictionPressure;
    p.debugLostStoreBug = true;

    // The re-injected race is timing-dependent; scan a bounded seed
    // range for a failing grid point the way the campaign would.
    bool found = false;
    for (std::uint64_t seed = 1; seed <= 40 && !found; ++seed) {
        p.seed = seed;
        const auto r = RandomTester::run(p);
        found = r.valueViolations + r.invariantViolations > 0;
    }
    ASSERT_TRUE(found)
        << "no failing seed in [1,40]; loosen the parameter point";

    CampaignFailure f;
    f.params = p;
    f.profile = "off";
    f.knobs = "base";
    const auto shrunk = shrinkCampaignFailure(f);
    ASSERT_TRUE(shrunk.has_value())
        << "failure did not reproduce in the serial re-run";
    EXPECT_LT(shrunk->accessesAfter, shrunk->accessesBefore);
    EXPECT_GT(shrunk->accessesAfter, 0u);
    EXPECT_FALSE(shrunk->summary.empty());
    // The shrunk trace set must still fail when replayed.
    const auto replay = RandomTester::runTraces(p, shrunk->traces);
    EXPECT_GT(replay.valueViolations + replay.invariantViolations, 0u);
}
