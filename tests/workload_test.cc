/**
 * @file
 * Unit tests for the workload archetypes and the 28 paper-benchmark
 * profiles: address-pattern contracts and determinism.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/config.hh"
#include "workload/archetypes.hh"
#include "workload/benchmarks.hh"

namespace protozoa {
namespace {

std::vector<TraceRecord>
drainTrace(TraceSource &src)
{
    std::vector<TraceRecord> out;
    TraceRecord rec;
    while (src.next(rec))
        out.push_back(rec);
    return out;
}

TEST(TraceBuilder, BuildsPerCoreStreams)
{
    TraceBuilder tb(4, 1);
    tb.load(0, 0x100, 0x10);
    tb.store(2, 0x207, 0x20, 5);
    Workload wl = tb.build();
    ASSERT_EQ(wl.size(), 4u);

    auto t0 = drainTrace(*wl[0]);
    ASSERT_EQ(t0.size(), 1u);
    EXPECT_EQ(t0[0].addr, 0x100u);
    EXPECT_FALSE(t0[0].isWrite);

    auto t2 = drainTrace(*wl[2]);
    ASSERT_EQ(t2.size(), 1u);
    EXPECT_EQ(t2[0].addr, 0x200u);   // word aligned
    EXPECT_TRUE(t2[0].isWrite);
    EXPECT_EQ(t2[0].gapInstrs, 5u);

    EXPECT_TRUE(drainTrace(*wl[1]).empty());
}

TEST(Archetype, FalseShareCountersTouchDisjointWords)
{
    TraceBuilder tb(8, 1);
    genFalseShareCounters(tb, 8, 0x1000, 10, 1, 2, 0x40);
    Workload wl = tb.build();
    for (unsigned c = 0; c < 8; ++c) {
        auto recs = drainTrace(*wl[c]);
        ASSERT_EQ(recs.size(), 20u);   // load+store per iteration
        for (const auto &r : recs)
            EXPECT_EQ(r.addr, 0x1000u + c * kWordBytes);
    }
}

TEST(Archetype, PrivateStreamStaysInOwnArena)
{
    TraceBuilder tb(4, 1);
    genPrivateStream(tb, 4, 0x10000, 10, 8, 4, 0.5, 2, 0x80, 2);
    Workload wl = tb.build();
    const Addr arena = 10 * 8 * kWordBytes;
    for (unsigned c = 0; c < 4; ++c) {
        auto recs = drainTrace(*wl[c]);
        EXPECT_EQ(recs.size(), 2u * 10u * 4u);   // passes*elems*touch
        for (const auto &r : recs) {
            EXPECT_GE(r.addr, 0x10000u + c * arena);
            EXPECT_LT(r.addr, 0x10000u + (c + 1) * arena);
        }
    }
}

TEST(Archetype, HistogramPrefersInterleavedBuckets)
{
    TraceBuilder tb(4, 1);
    genHistogram(tb, 4, 0x100000, 0x200000, 200, 64, 1.0, 2, 0xc0);
    Workload wl = tb.build();
    for (unsigned c = 0; c < 4; ++c) {
        auto recs = drainTrace(*wl[c]);
        for (const auto &r : recs) {
            if (r.addr < 0x200000)
                continue;   // private input read
            const unsigned bucket =
                static_cast<unsigned>((r.addr - 0x200000) / kWordBytes);
            EXPECT_EQ(bucket % 4, c);   // core-interleaved words
        }
    }
}

TEST(Archetype, ProducerConsumerReadsPredecessor)
{
    TraceBuilder tb(4, 1);
    genProducerConsumer(tb, 4, 0x300000, 2, 8, 3, 2, 1, 2, 0x100);
    Workload wl = tb.build();
    const Addr buf_bytes = 2 * 8 * kWordBytes;
    for (unsigned c = 0; c < 4; ++c) {
        auto recs = drainTrace(*wl[c]);
        const unsigned producer = (c + 3) % 4;
        for (const auto &r : recs) {
            const unsigned owner = static_cast<unsigned>(
                (r.addr - 0x300000) / buf_bytes);
            if (r.isWrite)
                EXPECT_EQ(owner, c);
            else
                EXPECT_EQ(owner, producer);
        }
    }
}

TEST(Archetype, StencilSharesOnlyBoundaryRows)
{
    TraceBuilder tb(4, 1);
    genStencil(tb, 4, 0x400000, 2, 8, 1, 2, 0x140);
    Workload wl = tb.build();
    // Core 1 owns rows 2,3; it may read rows 1..4 (neighbours).
    auto recs = drainTrace(*wl[1]);
    for (const auto &r : recs) {
        const unsigned row = static_cast<unsigned>(
            (r.addr - 0x400000) / (8 * kWordBytes));
        if (r.isWrite) {
            EXPECT_GE(row, 2u);
            EXPECT_LE(row, 3u);
        } else {
            EXPECT_GE(row, 1u);
            EXPECT_LE(row, 4u);
        }
    }
}

TEST(Archetype, MigratoryVisitsWholeObjects)
{
    TraceBuilder tb(2, 1);
    genMigratory(tb, 2, 0x500000, 4, 8, 1, 2, 0x180);
    Workload wl = tb.build();
    auto recs = drainTrace(*wl[0]);
    // Per object: 8 loads then 8 stores.
    ASSERT_EQ(recs.size(), 4u * 16u);
    for (unsigned obj = 0; obj < 4; ++obj) {
        for (unsigned i = 0; i < 8; ++i)
            EXPECT_FALSE(recs[obj * 16 + i].isWrite);
        for (unsigned i = 8; i < 16; ++i)
            EXPECT_TRUE(recs[obj * 16 + i].isWrite);
    }
}

TEST(Archetype, IrregularRecordSizesAreDeterministic)
{
    TraceBuilder tb1(2, 7), tb2(2, 7);
    genIrregular(tb1, 2, 0x600000, 1024, 0x700000, 512, 100, 0.5, 4,
                 0.3, 2, 0x1c0);
    genIrregular(tb2, 2, 0x600000, 1024, 0x700000, 512, 100, 0.5, 4,
                 0.3, 2, 0x1c0);
    Workload a = tb1.build(), b = tb2.build();
    for (unsigned c = 0; c < 2; ++c) {
        auto ra = drainTrace(*a[c]);
        auto rb = drainTrace(*b[c]);
        ASSERT_EQ(ra.size(), rb.size());
        for (std::size_t i = 0; i < ra.size(); ++i) {
            EXPECT_EQ(ra[i].addr, rb[i].addr);
            EXPECT_EQ(ra[i].isWrite, rb[i].isWrite);
        }
    }
}

TEST(Benchmarks, AllTwentyEightPresent)
{
    const auto &specs = paperBenchmarks();
    EXPECT_EQ(specs.size(), 28u);
    std::set<std::string> names;
    for (const auto &spec : specs)
        names.insert(spec.name);
    EXPECT_EQ(names.size(), 28u);
    EXPECT_TRUE(names.count("linear-regression"));
    EXPECT_TRUE(names.count("apache"));
    EXPECT_TRUE(names.count("x264"));
}

TEST(Benchmarks, EveryProfileFeedsEveryCore)
{
    SystemConfig cfg;
    for (const auto &spec : paperBenchmarks()) {
        Workload wl = spec.gen(cfg, 0.05);
        ASSERT_EQ(wl.size(), cfg.numCores) << spec.name;
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            TraceRecord rec;
            EXPECT_TRUE(wl[c]->next(rec))
                << spec.name << " core " << c;
            EXPECT_EQ(rec.addr, wordAlign(rec.addr));
        }
    }
}

TEST(Benchmarks, ProfilesAreDeterministic)
{
    SystemConfig cfg;
    const auto &spec = findBenchmark("canneal");
    Workload a = spec.gen(cfg, 0.1);
    Workload b = spec.gen(cfg, 0.1);
    auto ra = drainTrace(*a[3]);
    auto rb = drainTrace(*b[3]);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i)
        EXPECT_EQ(ra[i].addr, rb[i].addr);
}

TEST(Benchmarks, SeedChangesTheStream)
{
    SystemConfig cfg1, cfg2;
    cfg2.seed = 999;
    const auto &spec = findBenchmark("apache");
    auto ra = drainTrace(*spec.gen(cfg1, 0.1)[0]);
    auto rb = drainTrace(*spec.gen(cfg2, 0.1)[0]);
    // Run lengths may differ (deterministic record sizes); compare
    // the common prefix.
    bool differs = ra.size() != rb.size();
    const std::size_t n = std::min(ra.size(), rb.size());
    for (std::size_t i = 0; i < n && !differs; ++i)
        differs = ra[i].addr != rb[i].addr;
    EXPECT_TRUE(differs);
}

TEST(Benchmarks, ScaleGrowsTheTrace)
{
    SystemConfig cfg;
    const auto &spec = findBenchmark("mat-mul");
    auto small = drainTrace(*spec.gen(cfg, 0.1)[0]);
    auto large = drainTrace(*spec.gen(cfg, 0.5)[0]);
    EXPECT_GT(large.size(), 3 * small.size());
}

TEST(BenchmarksDeath, UnknownNameIsFatal)
{
    EXPECT_DEATH(findBenchmark("no-such-benchmark"),
                 "unknown benchmark");
}

} // namespace
} // namespace protozoa
