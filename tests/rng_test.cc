/**
 * @file
 * Unit tests for the deterministic RNG used by workload generation.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace protozoa {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        const double v = r.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsFrequency)
{
    Rng r(13);
    int hits = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, ChanceEdges)
{
    Rng r(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

} // namespace
} // namespace protozoa
