/**
 * @file
 * Zero-allocation regression test for the steady-state data path.
 *
 * The tentpole claim of the zero-allocation work is that once a run's
 * working set is warm — cache slot pools filled, controller tables and
 * FIFO pools at their high-water marks, golden-memory pages created —
 * the simulation loop performs no heap allocation at all: no block
 * payloads, no message payloads, no map nodes, no queue nodes.
 *
 * This binary interposes counting operator new/delete (see
 * alloc_hook.hh) and drives a 100k-access random workload twice per
 * protocol: a first run measures the total cycle count C, a second
 * identical run snapshots the allocation counter at 0.25*C and asserts
 * the counter never moves again. The window deliberately opens right
 * after the bounded footprint is first touched, so the fill-heavy
 * early phase — L2 misses streaming whole regions out of the memory
 * image — is measured too: directory fills land in the L2 entry's
 * inline word array and must not allocate. The workload keeps a
 * bounded, hot footprint (no cold pool) through a deliberately tiny
 * L1/L2, so evictions, writebacks, inclusive recalls and probe races
 * all stay active inside the measured window.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "common/alloc_hook.hh"
#include "common/rng.hh"
#include "sim/system.hh"
#include "workload/streaming_trace.hh"
#include "workload/trace.hh"

PROTOZOA_DEFINE_COUNTING_NEW

namespace protozoa {
namespace {

SystemConfig
hostileCfg(ProtocolKind protocol)
{
    SystemConfig cfg;
    cfg.protocol = protocol;
    cfg.seed = 11;
    cfg.checkValues = true;
    cfg.l1Sets = 4;              // force constant evictions
    cfg.l2BytesPerTile = 4096;   // force inclusive recalls
    return cfg;
}

Workload
hotPoolWorkload(const SystemConfig &cfg, std::uint64_t accesses_per_core)
{
    // Bounded footprint: every region and golden-memory page is touched
    // early, so all warmup growth happens well before the measurement
    // window opens.
    const unsigned kRegions = 64;
    const Addr base = 0x40000000;
    Rng rng(cfg.seed * 0x5851f42d4c957f2dULL + 7);

    Workload wl;
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        std::vector<TraceRecord> recs;
        recs.reserve(accesses_per_core);
        for (std::uint64_t i = 0; i < accesses_per_core; ++i) {
            TraceRecord rec;
            const std::uint64_t region = rng.below(kRegions);
            const unsigned word =
                static_cast<unsigned>(rng.below(cfg.regionWords()));
            rec.addr = base + region * cfg.regionBytes +
                       static_cast<Addr>(word) * kWordBytes;
            rec.pc = 0x1000 + 4 * rng.below(16);
            rec.isWrite = rng.chance(0.4);
            rec.gapInstrs = static_cast<std::uint16_t>(rng.range(1, 4));
            recs.push_back(rec);
        }
        wl.push_back(std::make_unique<VectorTrace>(std::move(recs)));
    }
    return wl;
}

void
expectNoSteadyStateAllocs(ProtocolKind protocol, unsigned simThreads = 0)
{
    // The sharded engine's tiny lookahead windows make barrier
    // crossings dominate on this 16-core config, so the parallel
    // variants use a shorter (still eviction/recall-saturated) run to
    // keep the suite's wall time in check.
    const std::uint64_t kAccessesPerCore =
        simThreads > 0 ? 1500 : 6250;

    // Run 1: learn the total cycle count for this (deterministic)
    // workload.
    SystemConfig cfg = hostileCfg(protocol);
    cfg.simThreads = simThreads;
    Cycle total_cycles = 0;
    {
        System sys(cfg, hotPoolWorkload(cfg, kAccessesPerCore));
        sys.run();
        total_cycles = sys.report().cycles;
        EXPECT_EQ(sys.valueViolations(), 0u);
    }
    ASSERT_GT(total_cycles, 0u);

    // Run 2: identical workload; snapshot the allocation counter at
    // 0.25*C and require that execution — fill-heavy warmup quarter
    // included — never allocates again. Under the sharded engine the
    // snapshot rides on shard 0's calendar (the global queue is idle);
    // warmup additionally covers the inbox-channel vectors reaching
    // their high-water capacity and the worker-thread spawn, all of
    // which happen before the window opens.
    System sys(cfg, hotPoolWorkload(cfg, kAccessesPerCore));
    std::uint64_t at_window = 0;
    EventQueue &snapq =
        sys.parallelEngine() ? sys.shardQueue(0) : sys.eventQueue();
    snapq.schedule(total_cycles / 4, [&at_window] {
        at_window = AllocHook::allocCount();
    });
    sys.run();
    const std::uint64_t at_end = AllocHook::allocCount();

    EXPECT_EQ(sys.valueViolations(), 0u);
    ASSERT_GT(at_window, 0u);   // the snapshot callback ran
    EXPECT_EQ(at_end - at_window, 0u)
        << protocolName(protocol) << ": " << (at_end - at_window)
        << " heap allocation(s) in the last three quarters of a "
        << total_cycles << "-cycle run";
}

TEST(AllocRegression, MesiSteadyStateIsAllocationFree)
{
    expectNoSteadyStateAllocs(ProtocolKind::MESI);
}

TEST(AllocRegression, ProtozoaMWSteadyStateIsAllocationFree)
{
    expectNoSteadyStateAllocs(ProtocolKind::ProtozoaMW);
}

TEST(AllocRegression, MesiParallelSteadyStateIsAllocationFree)
{
    expectNoSteadyStateAllocs(ProtocolKind::MESI, 2);
}

TEST(AllocRegression, ProtozoaMWParallelSteadyStateIsAllocationFree)
{
    expectNoSteadyStateAllocs(ProtocolKind::ProtozoaMW, 2);
}

/**
 * The streaming front end's claim: once the per-core record rings and
 * the pooled chunk buffer hit their high-water marks, refilling from a
 * PZTR file allocates nothing. Same hot-pool workload as above, but
 * delivered through StreamingTraceSource views instead of
 * materialized VectorTraces.
 */
TEST(AllocRegression, StreamedSteadyStateIsAllocationFree)
{
    const std::uint64_t kAccessesPerCore = 6250;
    SystemConfig cfg = hostileCfg(ProtocolKind::ProtozoaMW);

    // Materialize once (setup, unmeasured) into a chunked binary file.
    const std::string path = "alloc_regression_stream.pztr";
    {
        std::ofstream out(path, std::ios::binary);
        TraceWriter w(out, TraceWriter::Format::Binary, cfg.numCores,
                      256);
        Workload src = hotPoolWorkload(cfg, kAccessesPerCore);
        TraceRecord rec;
        bool more = true;
        while (more) {
            more = false;
            for (unsigned c = 0; c < cfg.numCores; ++c) {
                if (src[c]->next(rec)) {
                    w.append(c, rec);
                    more = true;
                }
            }
        }
        w.finish();
    }

    Cycle total_cycles = 0;
    {
        std::string err;
        auto file = StreamingTraceFile::open(path, &err);
        ASSERT_NE(file, nullptr) << err;
        System sys(cfg, file->makeWorkload());
        sys.run();
        total_cycles = sys.report().cycles;
        EXPECT_EQ(sys.valueViolations(), 0u);
    }
    ASSERT_GT(total_cycles, 0u);

    std::string err;
    auto file = StreamingTraceFile::open(path, &err);
    ASSERT_NE(file, nullptr) << err;
    System sys(cfg, file->makeWorkload());
    std::uint64_t at_window = 0;
    sys.eventQueue().schedule(total_cycles / 4, [&at_window] {
        at_window = AllocHook::allocCount();
    });
    sys.run();
    const std::uint64_t at_end = AllocHook::allocCount();

    EXPECT_EQ(sys.valueViolations(), 0u);
    ASSERT_GT(at_window, 0u);
    EXPECT_EQ(at_end - at_window, 0u)
        << (at_end - at_window)
        << " heap allocation(s) while streaming the last three "
        << "quarters of a " << total_cycles << "-cycle run";
    std::remove(path.c_str());
}

TEST(AllocRegression, HookCountsAreLive)
{
    const std::uint64_t before = AllocHook::allocCount();
    auto *p = new int(7);
    EXPECT_GT(AllocHook::allocCount(), before);
    delete p;
}

} // namespace
} // namespace protozoa
