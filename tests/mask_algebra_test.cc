/**
 * @file
 * Property tests of the WordMask <-> WordRange algebra underneath the
 * bit-parallel data path, plus a differential check that the bulk
 * MsgData::setRange operation is observation-equivalent to the
 * per-word set() loop it replaced.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/word_range.hh"
#include "protocol/coherence_msg.hh"

namespace protozoa {
namespace {

TEST(MaskAlgebra, RangeMaskRoundTripAllWidths)
{
    // Every non-empty range within a maximal region maps to a
    // contiguous mask and back to itself.
    for (unsigned s = 0; s < kMaxRegionWords; ++s) {
        for (unsigned e = s; e < kMaxRegionWords; ++e) {
            const WordRange r(s, e);
            const WordMask m = r.mask();
            EXPECT_EQ(std::popcount(m), static_cast<int>(r.words()));
            EXPECT_TRUE(maskIsContiguous(m));
            EXPECT_EQ(rangeOfMask(m), r);
        }
    }
}

TEST(MaskAlgebra, WordMaskBitsBoundary)
{
    // mask() saturates correctly when the range touches the top bit
    // of the mask word (end + 1 == kWordMaskBits would overflow a
    // naive shift).
    const WordRange top(0, kWordMaskBits - 1);
    EXPECT_EQ(top.mask(), ~WordMask(0));
    EXPECT_TRUE(maskIsContiguous(~WordMask(0)));
    EXPECT_EQ(rangeOfMask(~WordMask(0)), top);

    const WordRange high(kWordMaskBits - 1, kWordMaskBits - 1);
    EXPECT_EQ(high.mask(), WordMask(1) << (kWordMaskBits - 1));
    EXPECT_EQ(rangeOfMask(high.mask()), high);
}

TEST(MaskAlgebra, ContiguityPredicate)
{
    EXPECT_TRUE(maskIsContiguous(0));
    EXPECT_TRUE(maskIsContiguous(0b1));
    EXPECT_TRUE(maskIsContiguous(0b1110));
    EXPECT_FALSE(maskIsContiguous(0b1010));
    EXPECT_FALSE(maskIsContiguous(0b10000001));
}

TEST(MaskAlgebra, RunDecompositionPartitionsRandomMasks)
{
    // forEachMaskRun yields disjoint, ascending, maximal runs whose
    // union is the input, and maskRunCount agrees with the number of
    // callbacks.
    Rng rng(0xb17f00d);
    for (unsigned trial = 0; trial < 20000; ++trial) {
        const WordMask mask = static_cast<WordMask>(
            rng.below(std::uint64_t(1) << kMaxRegionWords));
        WordMask rebuilt = 0;
        unsigned runs = 0;
        int prevEnd = -2;
        forEachMaskRun(mask, [&](const WordRange &r) {
            ASSERT_FALSE(r.empty());
            // Ascending and maximal: a run never abuts the previous
            // one (that would be one longer run).
            ASSERT_GT(static_cast<int>(r.start), prevEnd + 1);
            ASSERT_EQ(rebuilt & r.mask(), 0u);
            rebuilt |= r.mask();
            prevEnd = static_cast<int>(r.end);
            ++runs;
        });
        ASSERT_EQ(rebuilt, mask);
        ASSERT_EQ(runs, maskRunCount(mask));
    }
}

TEST(MaskAlgebra, RunDecompositionFullMaskWidth)
{
    // The kWordMaskBits-wide all-ones mask is one single run; the
    // alternating mask is the worst case of one run per set bit.
    unsigned runs = 0;
    forEachMaskRun(~WordMask(0), [&](const WordRange &r) {
        EXPECT_EQ(r, WordRange(0, kWordMaskBits - 1));
        ++runs;
    });
    EXPECT_EQ(runs, 1u);
    EXPECT_EQ(maskRunCount(~WordMask(0)), 1u);

    const WordMask alternating = 0x55555555u & ~WordMask(0);
    EXPECT_EQ(maskRunCount(alternating),
              static_cast<unsigned>(std::popcount(alternating)));
}

/** The pre-mask per-word payload build, kept as the reference model. */
void
referenceAdd(MsgData &data, const WordRange &r, const std::uint64_t *src)
{
    for (unsigned w = r.start; w <= r.end; ++w)
        data.set(w, src[w - r.start]);
}

TEST(MaskAlgebra, BulkSetRangeMatchesPerWordSet)
{
    // Differential test: assemble the same randomized disjoint-run
    // payloads through setRange and through the old per-word loop;
    // masks, word values, and run decompositions must agree.
    Rng rng(0xdecaf);
    for (unsigned trial = 0; trial < 5000; ++trial) {
        MsgData bulk;
        MsgData ref;
        WordMask occupied = 0;
        for (unsigned attempt = 0; attempt < 6; ++attempt) {
            const unsigned s = static_cast<unsigned>(
                rng.below(kMaxRegionWords));
            const unsigned e = s + static_cast<unsigned>(
                rng.below(kMaxRegionWords - s));
            const WordRange r(s, e);
            if (occupied & r.mask())
                continue;
            occupied |= r.mask();
            std::uint64_t words[kMaxRegionWords];
            for (unsigned i = 0; i < r.words(); ++i)
                words[i] = rng.next();
            bulk.setRange(r, words);
            referenceAdd(ref, r, words);
        }
        ASSERT_EQ(bulk.valid, ref.valid);
        ref.forEachWord([&](unsigned w, std::uint64_t v) {
            ASSERT_TRUE(bulk.has(w));
            ASSERT_EQ(bulk.at(w), v);
        });
        // copyOut returns exactly what the per-word reads see.
        forEachMaskRun(bulk.valid, [&](const WordRange &run) {
            std::uint64_t out[kMaxRegionWords];
            bulk.copyOut(run, out);
            for (unsigned w = run.start; w <= run.end; ++w)
                ASSERT_EQ(out[w - run.start], ref.at(w));
        });
    }
}

TEST(MaskAlgebra, MergeFromEqualsSequentialAdds)
{
    // mergeFrom(a <- b) must equal building one payload from both
    // sources' runs directly.
    Rng rng(0xfeed);
    for (unsigned trial = 0; trial < 2000; ++trial) {
        MsgData a;
        MsgData b;
        MsgData both;
        for (unsigned w = 0; w < kMaxRegionWords; ++w) {
            const std::uint64_t v = rng.next();
            switch (rng.below(3)) {
              case 0:
                a.set(w, v);
                both.set(w, v);
                break;
              case 1:
                b.set(w, v);
                both.set(w, v);
                break;
              default:
                break;
            }
        }
        a.mergeFrom(b);
        ASSERT_EQ(a.valid, both.valid);
        both.forEachWord([&](unsigned w, std::uint64_t v) {
            ASSERT_EQ(a.at(w), v);
        });
    }
}

} // namespace
} // namespace protozoa
