/**
 * @file
 * Unit tests for the variable-granularity AmoebaCache: byte-budget
 * sets, overlap queries, LRU eviction, and the non-overlap invariant.
 */

#include <gtest/gtest.h>

#include "cache/amoeba_cache.hh"

namespace protozoa {
namespace {

SystemConfig
tinyCfg()
{
    SystemConfig cfg;
    cfg.l1Sets = 4;
    cfg.l1BytesPerSet = 288;
    return cfg;
}

AmoebaBlock
makeBlock(Addr region, WordRange range,
          BlockState state = BlockState::S)
{
    AmoebaBlock blk;
    blk.region = region;
    blk.range = range;
    blk.state = state;
    blk.words.assign(range.words(), 0);
    return blk;
}

/** Regions that map to set 0 of the tiny config. */
Addr
regionInSet0(unsigned n)
{
    SystemConfig cfg = tinyCfg();
    return static_cast<Addr>(n) * cfg.l1Sets * cfg.regionBytes;
}

TEST(AmoebaCache, InsertAndFind)
{
    AmoebaCache cache(tinyCfg());
    const Addr r = regionInSet0(1);
    cache.insert(makeBlock(r, WordRange(2, 5)));

    EXPECT_NE(cache.findCovering(r, 2), nullptr);
    EXPECT_NE(cache.findCovering(r, 5), nullptr);
    EXPECT_EQ(cache.findCovering(r, 1), nullptr);
    EXPECT_EQ(cache.findCovering(r, 6), nullptr);
    EXPECT_EQ(cache.findCovering(r + 64 * 4, 3), nullptr);
    EXPECT_EQ(cache.blockCount(), 1u);
}

std::size_t
regionBlockCount(AmoebaCache &cache, Addr region)
{
    AmoebaCache::BlockPtrs out;
    cache.blocksOfRegion(region, out);
    return out.size();
}

std::size_t
overlapCount(AmoebaCache &cache, Addr region, WordRange r)
{
    AmoebaCache::BlockPtrs out;
    cache.overlapping(region, r, out);
    return out.size();
}

TEST(AmoebaCache, MultipleDisjointBlocksPerRegion)
{
    AmoebaCache cache(tinyCfg());
    const Addr r = regionInSet0(1);
    cache.insert(makeBlock(r, WordRange(0, 1)));
    cache.insert(makeBlock(r, WordRange(3, 4)));
    cache.insert(makeBlock(r, WordRange(6, 7)));

    EXPECT_EQ(regionBlockCount(cache, r), 3u);
    EXPECT_EQ(overlapCount(cache, r, WordRange(1, 3)), 2u);
    EXPECT_EQ(overlapCount(cache, r, WordRange(5, 5)), 0u);
    EXPECT_EQ(overlapCount(cache, r, WordRange(0, 7)), 3u);
}

TEST(AmoebaCacheDeath, OverlappingInsertPanics)
{
    AmoebaCache cache(tinyCfg());
    const Addr r = regionInSet0(1);
    cache.insert(makeBlock(r, WordRange(2, 5)));
    EXPECT_DEATH(cache.insert(makeBlock(r, WordRange(5, 6))),
                 "overlapping insert");
}

TEST(AmoebaCache, DirtyTracking)
{
    AmoebaCache cache(tinyCfg());
    const Addr r = regionInSet0(1);
    cache.insert(makeBlock(r, WordRange(0, 1), BlockState::S));
    EXPECT_FALSE(cache.hasDirtyRegion(r));
    EXPECT_FALSE(cache.hasWritableRegion(r));

    cache.insert(makeBlock(r, WordRange(4, 5), BlockState::E));
    EXPECT_FALSE(cache.hasDirtyRegion(r));
    EXPECT_TRUE(cache.hasWritableRegion(r));   // E can silently upgrade

    cache.insert(makeBlock(r, WordRange(6, 7), BlockState::M));
    EXPECT_TRUE(cache.hasDirtyRegion(r));
    EXPECT_TRUE(cache.hasWritableRegion(r));
}

TEST(AmoebaCache, ByteBudgetAccounting)
{
    AmoebaCache cache(tinyCfg());
    const Addr r = regionInSet0(1);
    const unsigned set = cache.setOf(r);
    EXPECT_EQ(cache.setOccupancyBytes(set), 0u);

    cache.insert(makeBlock(r, WordRange(0, 7)));   // 64 data + 8 tag
    EXPECT_EQ(cache.setOccupancyBytes(set), 72u);

    cache.insert(makeBlock(r + 64 * 4, WordRange(3, 3)));  // 8 + 8
    EXPECT_EQ(cache.setOccupancyBytes(set), 88u);
}

TEST(AmoebaCache, MesiDegenerateCaseHoldsFourWays)
{
    // 288-byte sets with 72-byte full-region blocks = 4 ways.
    AmoebaCache cache(tinyCfg());
    for (unsigned i = 0; i < 4; ++i) {
        AmoebaCache::Evicted evicted;
        cache.makeRoom(regionInSet0(i), WordRange(0, 7), evicted);
        EXPECT_TRUE(evicted.empty());
        cache.insert(makeBlock(regionInSet0(i), WordRange(0, 7)));
    }
    AmoebaCache::Evicted evicted;
    cache.makeRoom(regionInSet0(4), WordRange(0, 7), evicted);
    EXPECT_EQ(evicted.size(), 1u);
}

TEST(AmoebaCache, FinerBlocksRaiseBlockCount)
{
    // The same 288-byte set holds 18 one-word blocks (16 B each).
    AmoebaCache cache(tinyCfg());
    for (unsigned i = 0; i < 18; ++i) {
        const Addr r = regionInSet0(i);
        AmoebaCache::Evicted evicted;
        cache.makeRoom(r, WordRange(0, 0), evicted);
        EXPECT_TRUE(evicted.empty()) << i;
        cache.insert(makeBlock(r, WordRange(0, 0)));
    }
    EXPECT_EQ(cache.blockCount(), 18u);
    AmoebaCache::Evicted evicted;
    cache.makeRoom(regionInSet0(19), WordRange(0, 0), evicted);
    EXPECT_EQ(evicted.size(), 1u);
}

TEST(AmoebaCache, MakeRoomEvictsLruFirst)
{
    AmoebaCache cache(tinyCfg());
    AmoebaBlock *first =
        cache.insert(makeBlock(regionInSet0(0), WordRange(0, 7)));
    for (unsigned i = 1; i < 4; ++i)
        cache.insert(makeBlock(regionInSet0(i), WordRange(0, 7)));

    // Refresh block 0 so block 1 becomes LRU.
    cache.touchLru(first);
    AmoebaCache::Evicted evicted;
    cache.makeRoom(regionInSet0(9), WordRange(0, 7), evicted);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0].region, regionInSet0(1));
}

TEST(AmoebaCache, MakeRoomMayEvictSeveralSmallBlocks)
{
    SystemConfig cfg = tinyCfg();
    cfg.l1BytesPerSet = 96;    // one full region + a bit
    AmoebaCache cache(cfg);
    const Addr r = regionInSet0(0);
    cache.insert(makeBlock(r, WordRange(0, 0)));
    cache.insert(makeBlock(r, WordRange(2, 2)));
    cache.insert(makeBlock(r, WordRange(4, 4)));
    cache.insert(makeBlock(r, WordRange(6, 6)));  // 4 x 16B = 64B used

    AmoebaCache::Evicted evicted;
    cache.makeRoom(regionInSet0(1), WordRange(0, 7), evicted);  // 72B
    EXPECT_EQ(evicted.size(), 3u);  // down to 16B used
}

TEST(AmoebaCache, RemoveExactExtractsBlock)
{
    AmoebaCache cache(tinyCfg());
    const Addr r = regionInSet0(1);
    AmoebaBlock *resident =
        cache.insert(makeBlock(r, WordRange(2, 4), BlockState::M));
    resident->wordAt(3) = 0x1234;

    AmoebaBlock out = cache.removeExact(r, WordRange(2, 4));
    EXPECT_EQ(out.wordAt(3), 0x1234u);
    EXPECT_EQ(out.state, BlockState::M);
    EXPECT_EQ(cache.blockCount(), 0u);
    EXPECT_EQ(cache.setOccupancyBytes(cache.setOf(r)), 0u);
}

TEST(AmoebaCacheDeath, RemoveExactMissingPanics)
{
    AmoebaCache cache(tinyCfg());
    EXPECT_DEATH(cache.removeExact(regionInSet0(0), WordRange(0, 1)),
                 "not resident");
}

TEST(AmoebaCache, TouchedWordAccounting)
{
    AmoebaBlock blk = makeBlock(0, WordRange(2, 6));
    EXPECT_EQ(blk.touchedWords(), 0u);
    EXPECT_EQ(blk.untouchedWords(), 5u);
    blk.touched |= WordMask(1) << 3;
    blk.touched |= WordMask(1) << 6;
    EXPECT_EQ(blk.touchedWords(), 2u);
    EXPECT_EQ(blk.untouchedWords(), 3u);
    // Touched bits outside the range are ignored.
    blk.touched |= WordMask(1) << 0;
    EXPECT_EQ(blk.touchedWords(), 2u);
}

TEST(AmoebaCache, WordAtIndexing)
{
    AmoebaBlock blk = makeBlock(0, WordRange(3, 5));
    blk.wordAt(3) = 10;
    blk.wordAt(4) = 20;
    blk.wordAt(5) = 30;
    EXPECT_EQ(blk.words[0], 10u);
    EXPECT_EQ(blk.words[1], 20u);
    EXPECT_EQ(blk.words[2], 30u);
}

TEST(AmoebaCache, ForEachVisitsEverything)
{
    AmoebaCache cache(tinyCfg());
    cache.insert(makeBlock(regionInSet0(0), WordRange(0, 1)));
    cache.insert(makeBlock(regionInSet0(1), WordRange(2, 3)));
    cache.insert(makeBlock(regionInSet0(2) + 64, WordRange(4, 5)));
    unsigned count = 0;
    cache.forEach([&](const AmoebaBlock &) { ++count; });
    EXPECT_EQ(count, 3u);
}

} // namespace
} // namespace protozoa
