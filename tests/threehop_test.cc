/**
 * @file
 * Tests for the Sec. 6 3-hop direct-forwarding mode: directed
 * transfers, the 4-hop fallback, latency benefit, and correctness
 * under fuzzing for all protocols.
 */

#include <gtest/gtest.h>

#include "protocol_driver.hh"

namespace protozoa {
namespace {

SystemConfig
threeHopCfg(ProtocolKind protocol)
{
    SystemConfig cfg;
    cfg.protocol = protocol;
    cfg.predictor = PredictorKind::WordOnly;
    cfg.threeHop = true;
    return cfg;
}

std::uint64_t
totalDirect(System &sys)
{
    std::uint64_t n = 0;
    for (TileId t = 0; t < sys.config().l2Tiles; ++t)
        n += sys.dir(t).stats.threeHopDirect;
    return n;
}

TEST(ThreeHop, OwnerForwardsDirectly)
{
    ProtocolDriver d(threeHopCfg(ProtocolKind::ProtozoaMW));
    const Addr a = 0x3000;

    d.store(0, a, 777);          // core 0 owns the word dirty
    EXPECT_EQ(d.load(1, a), 777u);   // served 3-hop from core 0

    EXPECT_EQ(totalDirect(d.sys), 1u);
    EXPECT_EQ(d.stateOf(0, a), BlockState::S);
    EXPECT_EQ(d.stateOf(1, a), BlockState::S);
    d.expectClean();
}

TEST(ThreeHop, WriteMissForwardsDirectly)
{
    ProtocolDriver d(threeHopCfg(ProtocolKind::ProtozoaMW));
    const Addr a = 0x3000;

    d.store(0, a, 1);
    d.store(1, a, 2);            // FWD_GETX served 3-hop
    EXPECT_GE(totalDirect(d.sys), 1u);
    EXPECT_EQ(d.load(2, a), 2u);
    d.expectClean();
}

TEST(ThreeHop, FallsBackWhenOwnerCannotCover)
{
    // Owner holds only word 5; requester asks for word 3 of the same
    // region. MESI/SW probe the owner (region granularity) but it
    // cannot supply word 3 -> 4-hop fallback.
    ProtocolDriver d(threeHopCfg(ProtocolKind::ProtozoaSW));
    const Addr region = 0x4000;

    d.store(0, region + 5 * kWordBytes, 55);
    EXPECT_EQ(d.load(1, region + 3 * kWordBytes),
              WordStore::initialValue(region + 3 * kWordBytes));
    EXPECT_EQ(totalDirect(d.sys), 0u);
    EXPECT_EQ(d.load(1, region + 5 * kWordBytes), 55u);
    d.expectClean();
}

TEST(ThreeHop, NoDirectTransferWithMultipleSharers)
{
    ProtocolDriver d(threeHopCfg(ProtocolKind::MESI));
    const Addr a = 0x5000;
    d.load(0, a);
    d.load(1, a);
    d.load(2, a);
    const auto before = totalDirect(d.sys);
    d.store(3, a, 9);   // three INV probes: no 3-hop attempt
    EXPECT_EQ(totalDirect(d.sys), before);
    EXPECT_EQ(d.load(0, a), 9u);
    d.expectClean();
}

TEST(ThreeHop, CutsMissLatencyForMigratorySharing)
{
    auto cyclesFor = [](bool three_hop) {
        SystemConfig cfg;
        cfg.protocol = ProtocolKind::MESI;
        cfg.threeHop = three_hop;
        TraceBuilder tb(cfg.numCores, 21);
        genMigratory(tb, cfg.numCores, 0x600000, 32, 8, 6, 3, 0x900);
        System sys(cfg, tb.build());
        sys.run();
        EXPECT_EQ(sys.valueViolations(), 0u);
        return sys.report().cycles;
    };

    const Cycle four_hop = cyclesFor(false);
    const Cycle three_hop = cyclesFor(true);
    EXPECT_LT(three_hop, four_hop);
}

class ThreeHopFuzz : public ::testing::TestWithParam<ProtocolKind>
{
};

TEST_P(ThreeHopFuzz, RandomConflictsStayCoherent)
{
    SystemConfig cfg = threeHopCfg(GetParam());
    cfg.predictor = PredictorKind::PcSpatial;
    cfg.l1Sets = 4;
    cfg.l2BytesPerTile = 4096;

    Rng rng(51);
    TraceBuilder tb(cfg.numCores, 13);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        for (unsigned i = 0; i < 1500; ++i) {
            const Addr a = 0x70000000 +
                rng.below(20 * 8) * kWordBytes;
            if (rng.chance(0.45))
                tb.store(c, a, 0x30 + 4 * (i % 8), 2);
            else
                tb.load(c, a, 0x30 + 4 * (i % 8), 2);
        }
    }
    System sys(cfg, tb.build());
    sys.enablePeriodicInvariantCheck(64);
    sys.run();
    EXPECT_EQ(sys.valueViolations(), 0u);
    EXPECT_EQ(sys.invariantViolations(), 0u);
    // The mode actually engaged.
    std::uint64_t direct = 0;
    for (TileId t = 0; t < cfg.l2Tiles; ++t)
        direct += sys.dir(t).stats.threeHopDirect;
    EXPECT_GT(direct, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, ThreeHopFuzz,
    ::testing::Values(ProtocolKind::MESI, ProtocolKind::ProtozoaSW,
                      ProtocolKind::ProtozoaSWMR,
                      ProtocolKind::ProtozoaMW),
    [](const ::testing::TestParamInfo<ProtocolKind> &info) {
        std::string name = protocolName(info.param);
        for (auto &ch : name)
            if (ch == '-' || ch == '+')
                ch = '_';
        return name;
    });

/** Accounting stays balanced with peer-to-peer DATA in the mix. */
TEST(ThreeHop, TrafficAccountingStillBalances)
{
    SystemConfig cfg = threeHopCfg(ProtocolKind::ProtozoaMW);
    cfg.predictor = PredictorKind::PcSpatial;
    const BenchSpec &spec = findBenchmark("histogram");
    System sys(cfg, spec.gen(cfg, 0.2));
    sys.run();
    const RunStats stats = sys.report();
    EXPECT_EQ(stats.l1.totalBytes(), stats.net.bytes);
    EXPECT_GT(stats.dir.threeHopDirect, 0u);
}

} // namespace
} // namespace protozoa
