/**
 * @file
 * Wide-mesh regression tests: the 64-core 8x8 explorer path (the
 * `(1 << numCores) - 1` shift overflow lived here), a 256-core
 * end-to-end smoke with full-width sharer masks, the mesh-scaled
 * watchdog horizon on an 8x8 recall storm, and the Spread slice hash
 * driven through a real system.
 */

#include <gtest/gtest.h>

#include <set>

#include "check/explorer.hh"
#include "check/scenario.hh"
#include "protocol_driver.hh"

namespace protozoa {
namespace {

using check::ExploreLimits;
using check::ExploreResult;
using check::Scenario;
using check::findScenario;

TEST(LargeMeshExplorer, UpgradeRace8x8CompletesCleanly)
{
    const Scenario *s = findScenario("upgrade-race-8x8");
    ASSERT_NE(s, nullptr);
    EXPECT_TRUE(s->large);

    ExploreLimits lim;
    for (ProtocolKind proto :
         {ProtocolKind::MESI, ProtocolKind::ProtozoaMW}) {
        const ExploreResult r = check::explore(*s, proto, lim);
        EXPECT_FALSE(r.violation.has_value());
        EXPECT_FALSE(r.budgetExhausted);
        EXPECT_GT(r.statesVisited, 0u);
        EXPECT_GT(r.schedulesCompleted, 0u);
        // The multi-word ChanMask keeps sleep-set POR live at 64 mesh
        // nodes (4096 channel bits); this used to auto-disable.
        // Soundness against full enumeration is locked by
        // Explorer.PorSoundPastEightNodes in protocheck_test.
    }
}

TEST(LargeMeshExplorer, WideMask16x16RunsAtKMaxCores)
{
    const Scenario *s = findScenario("wide-mask-16x16");
    ASSERT_NE(s, nullptr);
    ASSERT_EQ(s->numCores, kMaxCores);

    ExploreLimits lim;
    const ExploreResult r =
        check::explore(*s, ProtocolKind::ProtozoaMW, lim);
    EXPECT_FALSE(r.violation.has_value());
    EXPECT_FALSE(r.budgetExhausted);
    EXPECT_GT(r.schedulesCompleted, 0u);
}

SystemConfig
wideConfig(unsigned cores, unsigned cols, unsigned rows)
{
    SystemConfig cfg;
    cfg.numCores = cores;
    cfg.l2Tiles = cores;
    cfg.meshCols = cols;
    cfg.meshRows = rows;
    // Hold the aggregate L2 at 32 MB, as fig_scaling does.
    cfg.l2BytesPerTile = (2ull * 1024 * 1024 * 16) / cores;
    return cfg;
}

TEST(LargeMeshSmoke, AllCoresShareOneRegionAt256Cores)
{
    SystemConfig cfg = wideConfig(256, 16, 16);
    cfg.validate();
    ProtocolDriver d(cfg);

    const Addr addr = 0x40000000;
    const std::uint64_t initial = d.sys.goldenMemory().expected(addr);
    for (CoreId c = 0; c < 256; ++c)
        EXPECT_EQ(d.load(c, addr), initial);
    EXPECT_EQ(d.sys.checkCoherenceInvariant(), std::nullopt);

    // Core 255 (bit 63 of sharer-mask word 3) invalidates all 255
    // other readers in one fan-out.
    d.store(255, addr, 0xabcd);
    EXPECT_EQ(d.load(0, addr), 0xabcdu);
    EXPECT_EQ(d.load(254, addr), 0xabcdu);
    EXPECT_EQ(d.sys.checkCoherenceInvariant(), std::nullopt);

    const RunStats stats = d.sys.report();
    EXPECT_EQ(stats.l1.loads, 258u);
    EXPECT_EQ(stats.l1.stores, 1u);
    EXPECT_GE(stats.l1.invMsgsReceived, 255u);
}

/**
 * 8x8 recall storm: all 64 cores read region 0, then core 0 walks
 * same-set regions through tile 0's one-entry L2, so every fill
 * recalls a region whose sharer set spans the full mesh.
 */
void
driveRecallStorm(ProtocolDriver &d)
{
    const Addr base = 0x40000000;
    for (CoreId c = 0; c < 64; ++c)
        d.load(c, base);
    // Region indices 64, 128, 192 all home on tile 0 (idx % 64 == 0)
    // and collide with region 0 in its only set.
    for (unsigned r = 1; r <= 3; ++r)
        d.store(0, base + Addr(r) * 64 * 64, 0xd000 + r);
}

TEST(LargeMeshWatchdog, ScaledHorizonSurvivesHealthyRecallStorm)
{
    SystemConfig cfg = wideConfig(64, 8, 8);
    cfg.l2BytesPerTile = 64; // one-entry tiles: every fill recalls
    cfg.l2Assoc = 1;
    // Auto-enabled via the System ctor: the configured bound is
    // calibrated for 4x4 and scales to this 8x8 before arming.
    cfg.watchdogCycles = 2000;
    cfg.validate();

    ProtocolDriver d(cfg);
    driveRecallStorm(d);
    EXPECT_EQ(d.sys.watchdogFirings(), 0u);
    EXPECT_EQ(d.sys.checkCoherenceInvariant(), std::nullopt);
    EXPECT_GT(d.sys.report().dir.recalls, 0u);
}

TEST(LargeMeshWatchdog, FlatReferenceBoundFalsePositivesAt8x8)
{
    SystemConfig cfg = wideConfig(64, 8, 8);
    cfg.l2BytesPerTile = 64;
    cfg.l2Assoc = 1;
    cfg.watchdogCycles = 0;
    cfg.validate();

    ProtocolDriver d(cfg);
    // The 4x4 reference machine's worst-case transaction cost: a sane
    // flat bound there, but a 64-sharer recall fan-out takes longer,
    // so it must flag this (perfectly healthy) run.
    unsigned reports = 0;
    d.sys.enableWatchdog(572, [&](const std::string &) { ++reports; });
    driveRecallStorm(d);
    EXPECT_GT(d.sys.watchdogFirings(), 0u);
    EXPECT_GT(reports, 0u);
    // Healthy despite the alarms: every access completed and the
    // coherence invariant holds.
    EXPECT_EQ(d.sys.checkCoherenceInvariant(), std::nullopt);
}

TEST(LargeMeshSliceHash, SpreadRoutesAndReturnsCorrectValues)
{
    SystemConfig cfg; // 16-core 4x4 paper machine
    cfg.sliceHash = SliceHashKind::Spread;
    cfg.validate();
    ProtocolDriver d(cfg);

    // The modulo-adversarial stride: every region lands on tile 0
    // under Modulo; Spread fans them across tiles. Values must be
    // exact either way.
    const Addr base = 0x40000000;
    std::set<unsigned> homes;
    for (unsigned i = 0; i < 8; ++i) {
        const Addr addr = base + Addr(i) * cfg.l2Tiles * cfg.regionBytes;
        homes.insert(cfg.homeTileOf(addr));
        d.store(static_cast<CoreId>(i % cfg.numCores), addr,
                0x5100 + i);
    }
    for (unsigned i = 0; i < 8; ++i) {
        const Addr addr = base + Addr(i) * cfg.l2Tiles * cfg.regionBytes;
        EXPECT_EQ(d.load(static_cast<CoreId>((i + 1) % cfg.numCores),
                         addr),
                  0x5100u + i);
    }
    EXPECT_GT(homes.size(), 1u);
    EXPECT_EQ(d.sys.checkCoherenceInvariant(), std::nullopt);
}

} // namespace
} // namespace protozoa
