/**
 * @file
 * Unit tests for the WordRange interval algebra that every protocol
 * decision (overlap checks, probe ranges, clipping) builds on.
 */

#include <gtest/gtest.h>

#include "common/word_range.hh"

namespace protozoa {
namespace {

TEST(WordRange, DefaultIsEmpty)
{
    WordRange r;
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.words(), 0u);
    EXPECT_EQ(r.bytes(), 0u);
    EXPECT_EQ(r.mask(), 0u);
    EXPECT_FALSE(r.contains(0));
}

TEST(WordRange, SingleWord)
{
    WordRange r(3, 3);
    EXPECT_FALSE(r.empty());
    EXPECT_EQ(r.words(), 1u);
    EXPECT_EQ(r.bytes(), 8u);
    EXPECT_TRUE(r.contains(3));
    EXPECT_FALSE(r.contains(2));
    EXPECT_FALSE(r.contains(4));
    EXPECT_EQ(r.mask(), 0b1000u);
}

TEST(WordRange, FullRegion)
{
    WordRange r = WordRange::full(8);
    EXPECT_EQ(r.start, 0u);
    EXPECT_EQ(r.end, 7u);
    EXPECT_EQ(r.words(), 8u);
    EXPECT_EQ(r.mask(), 0xffu);
}

TEST(WordRange, FullRegionSixteenWords)
{
    WordRange r = WordRange::full(16);
    EXPECT_EQ(r.words(), 16u);
    EXPECT_EQ(r.mask(), 0xffffu);
}

// Satellite regression: mask() used a hardcoded 32-bit shift; a range
// reaching the top bit of WordMask must saturate without UB whatever
// width the mask type has.
TEST(WordRange, MaskAtTypeWidthBoundary)
{
    WordRange full_width(0, kWordMaskBits - 1);
    EXPECT_EQ(full_width.mask(), ~WordMask(0));

    WordRange top_bit(kWordMaskBits - 1, kWordMaskBits - 1);
    EXPECT_EQ(top_bit.mask(), WordMask(1) << (kWordMaskBits - 1));

    // The largest supported region still fits the mask type.
    static_assert(kMaxRegionWords <= kWordMaskBits);
}

TEST(WordRange, OverlapCases)
{
    WordRange a(2, 5);
    EXPECT_TRUE(a.overlaps(WordRange(5, 7)));     // touch at edge
    EXPECT_TRUE(a.overlaps(WordRange(0, 2)));     // touch at other edge
    EXPECT_TRUE(a.overlaps(WordRange(3, 4)));     // inside
    EXPECT_TRUE(a.overlaps(WordRange(0, 7)));     // superset
    EXPECT_FALSE(a.overlaps(WordRange(6, 7)));    // disjoint right
    EXPECT_FALSE(a.overlaps(WordRange(0, 1)));    // disjoint left
    EXPECT_FALSE(a.overlaps(WordRange()));        // empty
    EXPECT_FALSE(WordRange().overlaps(a));
}

TEST(WordRange, CoversCases)
{
    WordRange a(2, 5);
    EXPECT_TRUE(a.covers(WordRange(2, 5)));
    EXPECT_TRUE(a.covers(WordRange(3, 4)));
    EXPECT_FALSE(a.covers(WordRange(1, 5)));
    EXPECT_FALSE(a.covers(WordRange(2, 6)));
    EXPECT_FALSE(a.covers(WordRange()));
}

TEST(WordRange, Intersect)
{
    WordRange a(2, 5);
    EXPECT_EQ(a.intersect(WordRange(4, 7)), WordRange(4, 5));
    EXPECT_EQ(a.intersect(WordRange(0, 3)), WordRange(2, 3));
    EXPECT_TRUE(a.intersect(WordRange(6, 7)).empty());
    EXPECT_EQ(a.intersect(a), a);
}

TEST(WordRange, Span)
{
    WordRange a(2, 3);
    EXPECT_EQ(a.span(WordRange(5, 6)), WordRange(2, 6));
    EXPECT_EQ(a.span(WordRange()), a);
    EXPECT_EQ(WordRange().span(a), a);
    EXPECT_EQ(a.span(WordRange(0, 1)), WordRange(0, 3));
}

TEST(WordRange, EqualityTreatsAllEmptyAsEqual)
{
    EXPECT_EQ(WordRange(), WordRange(5, 2));
    EXPECT_EQ(WordRange(1, 4), WordRange(1, 4));
    EXPECT_FALSE(WordRange(1, 4) == WordRange(1, 5));
}

TEST(WordRange, ToString)
{
    EXPECT_EQ(WordRange(1, 4).toString(), "[1-4]");
    EXPECT_EQ(WordRange().toString(), "[empty]");
}

TEST(ClipAgainst, NoOverlapReturnsPrediction)
{
    WordRange pred(0, 7);
    WordRange need(2, 2);
    // Obstacle outside the prediction: nothing to do.
    EXPECT_EQ(clipAgainst(WordRange(0, 3), need, WordRange(5, 7)),
              WordRange(0, 3));
    (void)pred;
}

TEST(ClipAgainst, ObstacleRightOfNeed)
{
    EXPECT_EQ(clipAgainst(WordRange(0, 7), WordRange(2, 2),
                          WordRange(5, 6)),
              WordRange(0, 4));
}

TEST(ClipAgainst, ObstacleLeftOfNeed)
{
    EXPECT_EQ(clipAgainst(WordRange(0, 7), WordRange(5, 5),
                          WordRange(1, 2)),
              WordRange(3, 7));
}

TEST(ClipAgainst, AdjacentObstaclesClipBothSides)
{
    WordRange pred(0, 7);
    pred = clipAgainst(pred, WordRange(3, 3), WordRange(0, 1));
    pred = clipAgainst(pred, WordRange(3, 3), WordRange(6, 7));
    EXPECT_EQ(pred, WordRange(2, 5));
}

TEST(ClipAgainst, TightestClipLeavesOnlyNeed)
{
    WordRange pred(0, 7);
    pred = clipAgainst(pred, WordRange(4, 4), WordRange(3, 3));
    pred = clipAgainst(pred, WordRange(4, 4), WordRange(5, 5));
    EXPECT_EQ(pred, WordRange(4, 4));
}

// Property sweep: clipping always preserves the need and never
// overlaps the obstacle.
TEST(ClipAgainst, PropertySweep)
{
    for (unsigned ps = 0; ps < 8; ++ps) {
        for (unsigned pe = ps; pe < 8; ++pe) {
            for (unsigned n = ps; n <= pe; ++n) {
                for (unsigned os = 0; os < 8; ++os) {
                    for (unsigned oe = os; oe < 8; ++oe) {
                        WordRange pred(ps, pe);
                        WordRange need(n, n);
                        WordRange obst(os, oe);
                        if (obst.overlaps(need))
                            continue;
                        WordRange out = clipAgainst(pred, need, obst);
                        EXPECT_TRUE(out.covers(need));
                        EXPECT_FALSE(out.overlaps(obst));
                        EXPECT_TRUE(pred.covers(out));
                    }
                }
            }
        }
    }
}

} // namespace
} // namespace protozoa
