/**
 * @file
 * Unit tests for the MSHR file and the eviction writeback buffer.
 */

#include <gtest/gtest.h>

#include "cache/mshr.hh"

namespace protozoa {
namespace {

MshrEntry
entryFor(Addr region)
{
    MshrEntry e;
    e.region = region;
    e.need = WordRange(1, 1);
    e.pred = WordRange(0, 3);
    return e;
}

TEST(MshrFile, AllocFindFree)
{
    MshrFile mshrs(2);
    EXPECT_FALSE(mshrs.full());
    EXPECT_EQ(mshrs.find(0x1000), nullptr);

    MshrEntry *e = mshrs.alloc(entryFor(0x1000));
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->region, 0x1000u);
    EXPECT_EQ(mshrs.find(0x1000), e);
    EXPECT_EQ(mshrs.size(), 1u);

    mshrs.free(0x1000);
    EXPECT_EQ(mshrs.find(0x1000), nullptr);
    EXPECT_EQ(mshrs.size(), 0u);
}

TEST(MshrFile, CapacityEnforced)
{
    MshrFile mshrs(1);
    mshrs.alloc(entryFor(0x1000));
    EXPECT_TRUE(mshrs.full());
    EXPECT_DEATH(mshrs.alloc(entryFor(0x2000)), "MSHR file full");
}

TEST(MshrFile, DoubleAllocSameRegionPanics)
{
    MshrFile mshrs(4);
    mshrs.alloc(entryFor(0x1000));
    EXPECT_DEATH(mshrs.alloc(entryFor(0x1000)), "outstanding MSHR");
}

TEST(MshrFile, FreeAbsentPanics)
{
    MshrFile mshrs(4);
    EXPECT_DEATH(mshrs.free(0x1000), "freeing absent MSHR");
}

/** Collect the overlap visitor's output for easy assertions. */
std::vector<PendingWb>
overlappingSegments(const WbBuffer &buf, Addr region, WordRange r)
{
    std::vector<PendingWb> out;
    buf.forEachOverlapping(
        region, r, [&](const PendingWb &wb) { out.push_back(wb); });
    return out;
}

PendingWb
wbFor(WordRange range, bool last = false, bool demote = false)
{
    PendingWb wb;
    wb.seg.range = range;
    wb.seg.words.assign(range.words(), 7);
    wb.touched = range.mask();
    wb.last = last;
    wb.demoteOwner = demote;
    return wb;
}

TEST(WbBuffer, PushPopLifecycle)
{
    WbBuffer buf;
    EXPECT_FALSE(buf.hasPending(0x40));
    buf.push(0x40, wbFor(WordRange(0, 1)));
    EXPECT_TRUE(buf.hasPending(0x40));
    EXPECT_EQ(buf.pendingCount(), 1u);
    buf.popFront(0x40);
    EXPECT_FALSE(buf.hasPending(0x40));
    EXPECT_EQ(buf.pendingCount(), 0u);
}

TEST(WbBuffer, PopWithoutPendingPanics)
{
    WbBuffer buf;
    EXPECT_DEATH(buf.popFront(0x40), "WB_ACK without pending PUT");
}

TEST(WbBuffer, FifoOrderPerRegion)
{
    WbBuffer buf;
    buf.push(0x40, wbFor(WordRange(0, 1)));
    buf.push(0x40, wbFor(WordRange(4, 5)));
    EXPECT_EQ(buf.pendingCount(), 2u);
    buf.popFront(0x40);
    auto rest = overlappingSegments(buf, 0x40, WordRange(0, 7));
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_EQ(rest[0].seg.range, WordRange(4, 5));
}

TEST(WbBuffer, OverlappingSegmentsFilterByRange)
{
    WbBuffer buf;
    buf.push(0x40, wbFor(WordRange(0, 1)));
    buf.push(0x40, wbFor(WordRange(6, 7)));
    buf.push(0x80, wbFor(WordRange(3, 3)));

    EXPECT_EQ(overlappingSegments(buf, 0x40, WordRange(0, 7)).size(), 2u);
    EXPECT_EQ(overlappingSegments(buf, 0x40, WordRange(1, 5)).size(), 1u);
    EXPECT_EQ(overlappingSegments(buf, 0x40, WordRange(2, 5)).size(), 0u);
    EXPECT_EQ(overlappingSegments(buf, 0xc0, WordRange(0, 7)).size(), 0u);
}

TEST(WbBuffer, SegmentsCarryDataAndFlags)
{
    WbBuffer buf;
    PendingWb wb = wbFor(WordRange(2, 3), true, false);
    wb.seg.words = {11, 22};
    buf.push(0x40, wb);

    auto found = overlappingSegments(buf, 0x40, WordRange(3, 3));
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].seg.words, (WordsVec{11, 22}));
    EXPECT_TRUE(found[0].last);
}

TEST(WbBuffer, IndependentRegions)
{
    WbBuffer buf;
    buf.push(0x40, wbFor(WordRange(0, 0)));
    buf.push(0x80, wbFor(WordRange(1, 1)));
    buf.popFront(0x40);
    EXPECT_FALSE(buf.hasPending(0x40));
    EXPECT_TRUE(buf.hasPending(0x80));
}

} // namespace
} // namespace protozoa
