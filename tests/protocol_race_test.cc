/**
 * @file
 * Race tests for the transient-state machinery:
 *  - Fig. 6: a forwarded invalidation arriving while the same core has
 *    an outstanding miss on another sub-block of the region,
 *  - eviction PUT racing a forwarded probe (writeback buffer),
 *  - upgrade GETX racing a remote invalidation (retry path),
 *  - inclusive-L2 recall of dirty variable-granularity blocks.
 */

#include <gtest/gtest.h>

#include "protocol_driver.hh"

namespace protozoa {
namespace {

SystemConfig
wordCfg(ProtocolKind protocol)
{
    SystemConfig cfg;
    cfg.protocol = protocol;
    cfg.predictor = PredictorKind::WordOnly;
    return cfg;
}

// Fig. 6: Core-0 holds a dirty sub-block and has a GETS outstanding
// for another word of the region when a remote GETX overlapping its
// dirty data races in. Home-tile placement makes Core-15's GETX win
// the race to the directory.
TEST(ProtocolRace, Fig6FwdGetxDuringOutstandingGets)
{
    SystemConfig cfg = wordCfg(ProtocolKind::ProtozoaMW);
    ProtocolDriver d(cfg);

    // Region homed at tile 15: adjacent to core 15, far from core 0.
    const Addr region = 15 * 64;
    const Addr w0 = region;
    const Addr w5 = region + 5 * kWordBytes;

    d.store(0, w5, 555);   // core 0 dirty sub-block (words "5-7")

    // Now race: core 0 GETS word 0, core 15 GETX word 5.
    d.issue(0, w0, false, 0, 0x100, 0);
    d.issue(15, w5, true, 999, 0x104, 0);
    d.drain();

    // Core 15's GETX overlapped core 0's dirty block: invalidated and
    // written back; core 0's own GETS still completed.
    EXPECT_EQ(d.stateOf(15, w5), BlockState::M);
    EXPECT_EQ(d.stateOf(0, w5), std::nullopt);
    EXPECT_NE(d.stateOf(0, w0), std::nullopt);
    EXPECT_EQ(d.load(3, w5), 999u);
    d.expectClean();
}

// Same race in the region-granularity protocols: the forwarded probe
// kills everything, including nothing yet fetched for the outstanding
// miss; the miss still completes afterwards.
TEST(ProtocolRace, Fig6UnderRegionGranularity)
{
    for (auto protocol :
         {ProtocolKind::MESI, ProtocolKind::ProtozoaSW}) {
        ProtocolDriver d(wordCfg(protocol));
        const Addr region = 15 * 64;
        const Addr w0 = region;
        const Addr w5 = region + 5 * kWordBytes;

        d.store(0, w5, 555);
        d.issue(0, w0, false, 0, 0x100, 0);
        d.issue(15, w5, true, 999, 0x104, 0);
        d.drain();

        EXPECT_EQ(d.load(3, w5), 999u) << protocolName(protocol);
        d.expectClean();
    }
}

// Eviction PUT in flight when a probe arrives: the writeback buffer
// must answer with the freshest data, and the stale PUT must not
// corrupt the L2 afterwards.
TEST(ProtocolRace, WritebackBufferAnswersProbe)
{
    SystemConfig cfg = wordCfg(ProtocolKind::ProtozoaMW);
    cfg.l1Sets = 1;
    cfg.l1BytesPerSet = 80;   // 5 one-word blocks per L1
    ProtocolDriver d(cfg);

    // Home the victim region far from core 0 so its PUT is slow, and
    // request it from core 15 which sits next to the home tile.
    const Addr victim = 15 * 64;
    d.store(0, victim, 4242);

    // Evict it by filling core 0's single set with other regions
    // (homed elsewhere), then immediately read from core 15.
    for (unsigned i = 0; i < 5; ++i)
        d.issue(0, 0x40000 + i * 64, true, i, 0x200 + 4 * i, i);
    d.issue(15, victim, false, 0, 0x300, 5);
    d.drain();

    EXPECT_EQ(d.load(15, victim), 4242u);
    EXPECT_EQ(d.load(0, victim), 4242u);
    d.expectClean();
    // All writeback buffers drained (every PUT was WB_ACKed).
    for (CoreId c = 0; c < 16; ++c)
        EXPECT_EQ(d.sys.l1(c).writebackBuffer().pendingCount(), 0u);
}

// Found by the stress campaign (eviction-pressure archetype): a dirty
// eviction PUT races a probe whose range does NOT overlap the
// writeback. The probed core has no blocks left and the probe collects
// nothing from the writeback buffer, but it must still report itself
// a sharer — if the directory clears its tracking, the queued PUT is
// classified stale and the dirty word is silently dropped (lost
// store). Only Protozoa-SW+MR and Protozoa-MW probe with partial
// ranges, so only they can hit the non-overlap window. Sweeping the
// prober's start cycle walks the probe through every alignment with
// the eviction, including the fatal one.
TEST(ProtocolRace, NonOverlappingProbeDoesNotDropRacingWriteback)
{
    for (auto protocol :
         {ProtocolKind::ProtozoaSWMR, ProtocolKind::ProtozoaMW}) {
        SystemConfig cfg = wordCfg(protocol);
        cfg.l1Sets = 1;
        cfg.l1BytesPerSet = 80;   // 5 one-word blocks per L1

        const Addr victim = 15 * 64;   // homed at tile 15
        const Addr dirty_w = victim + 3 * kWordBytes;
        const Addr probe_w = victim + 6 * kWordBytes;

        // Set up one instance per prober start cycle: core 0 dirties
        // word 3, then fills its only set; the fifth fill evicts the
        // dirty block and launches its PUT toward tile 15.
        const auto setup = [&](ProtocolDriver &d) {
            d.store(0, dirty_w, 4242);
            for (unsigned i = 0; i < 5; ++i)
                d.issue(0, 0x40000 + i * 64, false, 0, 0x200 + 4 * i);
        };

        // Calibrate: run once without a prober, sampling core 0's
        // writeback buffer every cycle to catch the exact cycle the
        // eviction PUT launches. Sweeping the prober start around that
        // cycle walks the probe through every alignment with the PUT,
        // including the fatal one.
        // put_off: cycles from setup completion (the clock issue()
        // delays are measured from) to the PUT entering the network.
        Cycle put_off = 0;
        {
            ProtocolDriver d(cfg);
            setup(d);
            const Cycle base = d.sys.eventQueue().now();
            std::function<void()> sample = [&, base] {
                if (d.sys.l1(0).writebackBuffer().pendingCount() > 0) {
                    put_off = d.sys.eventQueue().now() - base;
                    return;
                }
                d.sys.eventQueue().schedule(1, sample);
            };
            d.sys.eventQueue().schedule(1, sample);
            d.drain();
        }
        ASSERT_GT(put_off, 0u) << protocolName(protocol);

        const Cycle first = put_off > 100 ? put_off - 100 : 0;
        for (Cycle dly = first; dly < put_off + 40; ++dly) {
            ProtocolDriver d(cfg);
            setup(d);
            // Core 15 reads word 6: the directory probes writer core 0
            // with range [6-6], which never overlaps the writeback.
            d.issue(15, probe_w, false, 0, 0x300, dly);
            d.drain();

            EXPECT_EQ(d.load(14, dirty_w), 4242u)
                << protocolName(protocol) << " dly=" << dly;
            d.expectClean();
            if (HasFailure())
                return;
        }
    }
}

// Two sharers upgrade the same word simultaneously: one wins, the
// loser's upgrade is broken and retried as a full GETX.
TEST(ProtocolRace, RacingUpgradesOnSameWord)
{
    for (auto protocol :
         {ProtocolKind::MESI, ProtocolKind::ProtozoaSW,
          ProtocolKind::ProtozoaSWMR, ProtocolKind::ProtozoaMW}) {
        ProtocolDriver d(wordCfg(protocol));
        const Addr a = 0x5000;

        d.load(0, a);
        d.load(15, a);   // both sharers now
        d.issue(0, a, true, 100, 0x400, 0);
        d.issue(15, a, true, 200, 0x404, 0);
        d.drain();

        // Exactly one final value, observed by everyone.
        const auto v = d.load(7, a);
        EXPECT_TRUE(v == 100u || v == 200u) << protocolName(protocol);
        EXPECT_EQ(d.sys.valueViolations(), 0u);
        d.expectClean();
    }
}

// Racing upgrades on *different* words of one region: under MW both
// writers win and keep their blocks.
TEST(ProtocolRace, RacingDisjointUpgradesUnderMw)
{
    ProtocolDriver d(wordCfg(ProtocolKind::ProtozoaMW));
    const Addr a = 0x6000;
    const Addr b = 0x6000 + 3 * kWordBytes;

    d.load(0, a);
    d.load(15, b);
    d.issue(0, a, true, 111, 0x500, 0);
    d.issue(15, b, true, 222, 0x504, 0);
    d.drain();

    EXPECT_EQ(d.stateOf(0, a), BlockState::M);
    EXPECT_EQ(d.stateOf(15, b), BlockState::M);
    EXPECT_EQ(d.load(8, a), 111u);
    EXPECT_EQ(d.load(8, b), 222u);
    d.expectClean();
}

// Inclusive-L2 recall: a tiny L2 forces eviction of regions whose
// dirty variable-granularity blocks still live in L1s.
TEST(ProtocolRace, RecallCollectsDirtyBlocks)
{
    for (auto protocol :
         {ProtocolKind::MESI, ProtocolKind::ProtozoaMW}) {
        SystemConfig cfg = wordCfg(protocol);
        cfg.l2BytesPerTile = 1024;   // 2 sets x 8 ways per tile
        ProtocolDriver d(cfg);

        // Dirty many regions homed on tile 0 (region index % 16 == 0).
        for (unsigned i = 0; i < 40; ++i)
            d.store(i % 4, 0x10000 + i * 64 * 16, 7000 + i, 0x600);

        // Recalls must have happened, and every value must survive.
        std::uint64_t recalls = 0;
        for (TileId t = 0; t < 16; ++t)
            recalls += d.sys.dir(t).stats.recalls;
        EXPECT_GT(recalls, 0u) << protocolName(protocol);

        for (unsigned i = 0; i < 40; ++i)
            EXPECT_EQ(d.load(5, 0x10000 + i * 64 * 16), 7000u + i);
        d.expectClean();
    }
}

// A dirty sub-block whose region is recalled, then re-fetched: the
// memory image must carry the patched data.
TEST(ProtocolRace, RecallRoundTripsThroughMemory)
{
    SystemConfig cfg = wordCfg(ProtocolKind::ProtozoaMW);
    cfg.l2BytesPerTile = 1024;
    ProtocolDriver d(cfg);

    const Addr a = 0x20000;   // region 2048, tile 0
    d.store(0, a, 31337);
    // Thrash tile 0's two sets until region `a` has been recalled.
    for (unsigned i = 1; i < 64; ++i)
        d.load(1, 0x20000 + i * 64 * 16, 0x700);

    EXPECT_EQ(d.load(2, a), 31337u);
    d.expectClean();
}

// Stale sharer NACK: a silently evicted (clean) block leaves the
// directory tracking a ghost; the ghost answers probes with NACKs and
// is dropped, without breaking anyone.
TEST(ProtocolRace, StaleSharersAreNackedAway)
{
    SystemConfig cfg = wordCfg(ProtocolKind::ProtozoaMW);
    cfg.l1Sets = 1;
    cfg.l1BytesPerSet = 80;
    ProtocolDriver d(cfg);

    const Addr a = 0x7000;
    d.load(0, a);
    // Push the clean block out silently.
    for (unsigned i = 1; i <= 5; ++i)
        d.load(0, 0x7000 + i * 64, 0x800 + 4 * i);
    // Directory still lists core 0; a write probes it and gets a NACK.
    d.store(1, a, 8888);
    EXPECT_EQ(d.load(2, a), 8888u);
    const auto view = d.dirView(a);
    EXPECT_FALSE(view.readers.test(0));
    EXPECT_FALSE(view.writers.test(0));
    d.expectClean();
}

} // namespace
} // namespace protozoa
