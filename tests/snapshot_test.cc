/**
 * @file
 * Checkpoint/restore property tests: the snapshot subsystem's contract
 * is digest-locked resumption — save at cycle C, restore into a fresh
 * System (same config, nothing run yet), run to completion, and the
 * full stats digest is bit-identical to the uninterrupted run. The
 * tests exercise that contract across all four protocols, with fault
 * jitter on and off, at randomized checkpoint cycles, under both
 * engines (and across *different* worker-thread counts for the sharded
 * engine: thread count is an execution resource, not simulated state).
 *
 * The rejection half: corrupted, truncated, version-skewed and
 * config-mismatched images must be refused with a clear error — never
 * undefined behavior, never a half-restored System.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "protozoa/protozoa.hh"
#include "snapshot/snapshot.hh"
#include "stats_digest.hh"
#include "workload/benchmarks.hh"
#include "workload/streaming_trace.hh"

namespace protozoa {
namespace {

constexpr double kScale = 0.04;

Workload
bench(const SystemConfig &cfg, const char *name = "apache")
{
    return findBenchmark(name).gen(cfg, kScale);
}

std::uint64_t
digestOf(const RunStats &s)
{
    Digest d;
    addStats(d, s);
    return d.value();
}

/** Uninterrupted reference run. */
RunStats
referenceRun(const SystemConfig &cfg, const char *name = "apache")
{
    System sys(cfg, bench(cfg, name));
    sys.run();
    return sys.report();
}

/**
 * Run to @p stop, snapshot, restore the bytes into a fresh System (the
 * in-process equivalent of a fresh process: nothing is shared but the
 * byte image), finish both, and require that the restored run's digest
 * matches the uninterrupted one AND the donor's own resumed run.
 */
void
roundTrip(const SystemConfig &cfg, Cycle stop, const char *name = "apache")
{
    const std::uint64_t want = digestOf(referenceRun(cfg, name));

    System donor(cfg, bench(cfg, name));
    donor.runTo(stop);

    Serializer img;
    std::string err;
    ASSERT_TRUE(donor.saveSnapshot(img, &err)) << err;

    System fresh(cfg, bench(cfg, name));
    Deserializer d(img.bytes().data(), img.size());
    ASSERT_TRUE(fresh.restoreSnapshot(d, &err)) << err;
    fresh.run();
    EXPECT_EQ(want, digestOf(fresh.report()))
        << "restored run diverged (stop=" << stop << ")";

    donor.run();
    EXPECT_EQ(want, digestOf(donor.report()))
        << "donor resume diverged (stop=" << stop << ")";
}

TEST(Snapshot, DigestLockedAcrossProtocols)
{
    for (ProtocolKind kind :
         {ProtocolKind::MESI, ProtocolKind::ProtozoaSW,
          ProtocolKind::ProtozoaSWMR, ProtocolKind::ProtozoaMW}) {
        SystemConfig cfg;
        cfg.protocol = kind;
        cfg.seed = 11;
        roundTrip(cfg, 20000);
    }
}

TEST(Snapshot, DigestLockedAtRandomizedCyclesUnderJitter)
{
    // Deterministic "random" checkpoint cycles: a seeded LCG walk over
    // an interesting range, prime-ish offsets so stops land mid-burst.
    std::uint64_t x = 0x9e3779b97f4a7c15ULL;
    for (bool jitter : {false, true}) {
        SystemConfig cfg;
        cfg.protocol = ProtocolKind::ProtozoaMW;
        cfg.faultInjection = jitter;
        cfg.seed = 23;
        for (int i = 0; i < 4; ++i) {
            x = x * 6364136223846793005ULL + 1442695040888963407ULL;
            const Cycle stop = 3000 + (x >> 40) % 60000;
            roundTrip(cfg, stop);
        }
    }
}

TEST(Snapshot, ChainedCheckpointsStayLocked)
{
    // Checkpoint, restore, run a bit, checkpoint the restored system,
    // restore again — digests must survive arbitrary chaining.
    SystemConfig cfg;
    cfg.protocol = ProtocolKind::ProtozoaMW;
    cfg.seed = 5;
    const std::uint64_t want = digestOf(referenceRun(cfg));

    System a(cfg, bench(cfg));
    a.runTo(8000);
    Serializer img1;
    std::string err;
    ASSERT_TRUE(a.saveSnapshot(img1, &err)) << err;

    System b(cfg, bench(cfg));
    Deserializer d1(img1.bytes().data(), img1.size());
    ASSERT_TRUE(b.restoreSnapshot(d1, &err)) << err;
    b.runTo(30000);
    Serializer img2;
    ASSERT_TRUE(b.saveSnapshot(img2, &err)) << err;

    System c(cfg, bench(cfg));
    Deserializer d2(img2.bytes().data(), img2.size());
    ASSERT_TRUE(c.restoreSnapshot(d2, &err)) << err;
    c.run();
    EXPECT_EQ(want, digestOf(c.report()));
}

TEST(Snapshot, FileRoundTrip)
{
    SystemConfig cfg;
    cfg.protocol = ProtocolKind::ProtozoaSW;
    cfg.seed = 7;
    const std::uint64_t want = digestOf(referenceRun(cfg));

    const std::string path = "snapshot_test_roundtrip.pzsn";
    System donor(cfg, bench(cfg));
    donor.runTo(15000);
    std::string err;
    ASSERT_TRUE(donor.saveSnapshotFile(path, &err)) << err;

    System fresh(cfg, bench(cfg));
    ASSERT_TRUE(fresh.restoreSnapshotFile(path, &err)) << err;
    fresh.run();
    EXPECT_EQ(want, digestOf(fresh.report()));
    std::remove(path.c_str());
}

TEST(Snapshot, StreamingWorkloadRoundTrip)
{
    // Generator-backed streams must reposition via seekTo on restore.
    SystemConfig cfg;
    cfg.protocol = ProtocolKind::ProtozoaMW;
    cfg.seed = 31;
    const std::uint64_t kRecs = 6000;

    System ref(cfg, makeSyntheticStreamWorkload(31, cfg.numCores, kRecs));
    ref.run();
    const std::uint64_t want = digestOf(ref.report());

    System donor(cfg, makeSyntheticStreamWorkload(31, cfg.numCores, kRecs));
    donor.runTo(10000);
    Serializer img;
    std::string err;
    ASSERT_TRUE(donor.saveSnapshot(img, &err)) << err;

    System fresh(cfg, makeSyntheticStreamWorkload(31, cfg.numCores, kRecs));
    Deserializer d(img.bytes().data(), img.size());
    ASSERT_TRUE(fresh.restoreSnapshot(d, &err)) << err;
    fresh.run();
    EXPECT_EQ(want, digestOf(fresh.report()));
}

// ---- sharded engine ---------------------------------------------------

TEST(Snapshot, ShardedRoundTripAcrossThreadCounts)
{
    // A sharded snapshot carries simulated state only; restoring under
    // a different worker count must reproduce the same digest. (The
    // config fingerprint deliberately excludes simThreads.)
    SystemConfig cfg;
    cfg.protocol = ProtocolKind::ProtozoaMW;
    cfg.simThreads = 2;
    cfg.seed = 13;
    const std::uint64_t want = digestOf(referenceRun(cfg));

    System donor(cfg, bench(cfg));
    donor.runTo(12000);
    Serializer img;
    std::string err;
    ASSERT_TRUE(donor.saveSnapshot(img, &err)) << err;

    for (unsigned threads : {1u, 2u, 4u}) {
        SystemConfig rcfg = cfg;
        rcfg.simThreads = threads;
        System fresh(rcfg, bench(rcfg));
        Deserializer d(img.bytes().data(), img.size());
        ASSERT_TRUE(fresh.restoreSnapshot(d, &err))
            << err << " (threads=" << threads << ")";
        fresh.run();
        EXPECT_EQ(want, digestOf(fresh.report()))
            << "sharded restore diverged at " << threads << " threads";
    }
}

TEST(Snapshot, ShardedJitterRoundTrip)
{
    SystemConfig cfg;
    cfg.protocol = ProtocolKind::MESI;
    cfg.simThreads = 4;
    cfg.faultInjection = true;
    cfg.seed = 17;
    roundTrip(cfg, 25000, "canneal");
}

// ---- rejection: corrupt / truncated / skewed images -------------------

Serializer
saveAt(const SystemConfig &cfg, Cycle stop)
{
    System donor(cfg, bench(cfg));
    donor.runTo(stop);
    Serializer img;
    std::string err;
    EXPECT_TRUE(donor.saveSnapshot(img, &err)) << err;
    return img;
}

/** Restore must fail with a non-empty error; the target is discarded. */
void
expectRejected(const SystemConfig &cfg, const std::vector<std::uint8_t> &img)
{
    System fresh(cfg, bench(cfg));
    Deserializer d(img.data(), img.size());
    std::string err;
    EXPECT_FALSE(fresh.restoreSnapshot(d, &err));
    EXPECT_FALSE(err.empty());
}

TEST(SnapshotReject, BadMagic)
{
    SystemConfig cfg;
    cfg.seed = 3;
    Serializer img = saveAt(cfg, 5000);
    std::vector<std::uint8_t> bytes = img.bytes();
    bytes[0] ^= 0xff;
    expectRejected(cfg, bytes);
}

TEST(SnapshotReject, VersionSkew)
{
    SystemConfig cfg;
    cfg.seed = 3;
    Serializer img = saveAt(cfg, 5000);
    std::vector<std::uint8_t> bytes = img.bytes();
    bytes[4] += 1; // version field follows the magic
    System fresh(cfg, bench(cfg));
    Deserializer d(bytes.data(), bytes.size());
    std::string err;
    EXPECT_FALSE(fresh.restoreSnapshot(d, &err));
    EXPECT_NE(err.find("format"), std::string::npos) << err;
}

TEST(SnapshotReject, ConfigMismatch)
{
    SystemConfig cfg;
    cfg.seed = 3;
    Serializer img = saveAt(cfg, 5000);

    SystemConfig other = cfg;
    other.l1Sets = 128;
    System fresh(other, bench(other));
    Deserializer d(img.bytes().data(), img.size());
    std::string err;
    EXPECT_FALSE(fresh.restoreSnapshot(d, &err));
    EXPECT_NE(err.find("configuration"), std::string::npos) << err;
}

TEST(SnapshotReject, EngineModeMismatch)
{
    SystemConfig cfg;
    cfg.seed = 3;
    Serializer img = saveAt(cfg, 5000); // sequential donor

    SystemConfig sharded = cfg;
    sharded.simThreads = 2;
    System fresh(sharded, bench(sharded));
    Deserializer d(img.bytes().data(), img.size());
    std::string err;
    EXPECT_FALSE(fresh.restoreSnapshot(d, &err));
    EXPECT_FALSE(err.empty());
}

TEST(SnapshotReject, UsedTargetRefused)
{
    SystemConfig cfg;
    cfg.seed = 3;
    Serializer img = saveAt(cfg, 5000);

    System used(cfg, bench(cfg));
    used.runTo(100); // no longer fresh
    Deserializer d(img.bytes().data(), img.size());
    std::string err;
    EXPECT_FALSE(used.restoreSnapshot(d, &err));
    EXPECT_NE(err.find("fresh"), std::string::npos) << err;
}

TEST(SnapshotReject, TruncationAtEveryRegion)
{
    // Chop the image at a spread of offsets; every prefix must be
    // refused cleanly. (Every byte would be O(n^2); a stride plus the
    // boundaries near the header catches region-boundary bugs.)
    SystemConfig cfg;
    cfg.seed = 9;
    Serializer img = saveAt(cfg, 8000);
    const std::vector<std::uint8_t> &bytes = img.bytes();
    ASSERT_GT(bytes.size(), 64u);

    std::vector<std::size_t> cuts = {0, 1, 3, 4, 7, 8, 12, 16, 17, 24, 32};
    for (std::size_t off = 48; off < bytes.size(); off += bytes.size() / 37)
        cuts.push_back(off);
    cuts.push_back(bytes.size() - 1);

    for (std::size_t cut : cuts) {
        std::vector<std::uint8_t> trunc(bytes.begin(), bytes.begin() + cut);
        expectRejected(cfg, trunc);
    }
}

TEST(SnapshotReject, TrailingGarbage)
{
    SystemConfig cfg;
    cfg.seed = 9;
    Serializer img = saveAt(cfg, 8000);
    std::vector<std::uint8_t> bytes = img.bytes();
    bytes.push_back(0xab);
    bytes.push_back(0xcd);
    System fresh(cfg, bench(cfg));
    Deserializer d(bytes.data(), bytes.size());
    std::string err;
    EXPECT_FALSE(fresh.restoreSnapshot(d, &err));
    EXPECT_NE(err.find("trailing"), std::string::npos) << err;
}

TEST(SnapshotReject, MissingFile)
{
    SystemConfig cfg;
    cfg.seed = 9;
    System fresh(cfg, bench(cfg));
    std::string err;
    EXPECT_FALSE(
        fresh.restoreSnapshotFile("no_such_snapshot_file.pzsn", &err));
    EXPECT_FALSE(err.empty());
}

TEST(Snapshot, ConfigFingerprintSemantics)
{
    SystemConfig a;
    SystemConfig b = a;
    EXPECT_EQ(configFingerprint(a), configFingerprint(b));

    b.simThreads = 8; // execution resource, not simulated state
    EXPECT_EQ(configFingerprint(a), configFingerprint(b));

    b = a;
    b.seed = a.seed + 1;
    EXPECT_NE(configFingerprint(a), configFingerprint(b));

    b = a;
    b.faultReorderProb = a.faultReorderProb + 0.001;
    EXPECT_NE(configFingerprint(a), configFingerprint(b));
}

} // namespace
} // namespace protozoa
