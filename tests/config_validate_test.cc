/**
 * @file
 * SystemConfig validation and geometry-scaling tests: the wide-mesh
 * rejection paths (core counts past kMaxCores, degenerate meshes,
 * undersized L2 tiles), the watchdog horizon's mesh scaling, and the
 * region -> home-tile slice hashes.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/config.hh"

namespace protozoa {
namespace {

SystemConfig
meshConfig(unsigned cores, unsigned cols, unsigned rows)
{
    SystemConfig cfg;
    cfg.numCores = cores;
    cfg.l2Tiles = cores;
    cfg.meshCols = cols;
    cfg.meshRows = rows;
    return cfg;
}

TEST(ConfigValidateScaling, RejectsCoreCountsPastKMaxCores)
{
    SystemConfig cfg = meshConfig(kMaxCores + 1, kMaxCores + 1, 1);
    EXPECT_DEATH(cfg.validate(), "out of range");

    SystemConfig zero = meshConfig(0, 0, 0);
    EXPECT_DEATH(zero.validate(), "out of range");
}

TEST(ConfigValidateScaling, RejectsDegenerateMeshes)
{
    SystemConfig cfg = meshConfig(16, 0, 4);
    EXPECT_DEATH(cfg.validate(), "at least one column");

    SystemConfig cfg2 = meshConfig(16, 4, 0);
    EXPECT_DEATH(cfg2.validate(), "at least one column");
}

TEST(ConfigValidateScaling, RejectsL2TileBelowOneSet)
{
    SystemConfig cfg;
    cfg.l2BytesPerTile = 256; // < 64-byte regions x 8 ways
    EXPECT_DEATH(cfg.validate(), "cannot hold");
}

TEST(ConfigValidateScaling, RejectsNonPowerOfTwoBloomBuckets)
{
    SystemConfig cfg;
    cfg.directory = DirectoryKind::TaglessBloom;
    cfg.bloomBuckets = 100;
    EXPECT_DEATH(cfg.validate(), "power of two");
}

TEST(ConfigValidateScaling, AcceptsWideMeshes)
{
    SystemConfig c64 = meshConfig(64, 8, 8);
    c64.validate();

    SystemConfig c256 = meshConfig(256, 16, 16);
    // Keep the aggregate L2 at 32 MB, as fig_scaling does.
    c256.l2BytesPerTile = (2ull * 1024 * 1024 * 16) / 256;
    c256.validate();

    SystemConfig c1 = meshConfig(1, 1, 1);
    c1.validate();
}

TEST(WatchdogHorizon, ReferenceGeometryKeepsTheConfiguredBound)
{
    SystemConfig cfg; // 4x4, 16 cores
    cfg.watchdogCycles = 2000;
    EXPECT_EQ(cfg.watchdogHorizon(), 2000u);

    SystemConfig small = meshConfig(4, 2, 2);
    small.watchdogCycles = 2000;
    EXPECT_EQ(small.watchdogHorizon(), 2000u);

    SystemConfig off;
    off.watchdogCycles = 0;
    EXPECT_EQ(off.watchdogHorizon(), 0u);
}

TEST(WatchdogHorizon, GrowsWithMeshDiameterAndCoreCount)
{
    SystemConfig c16; // reference
    SystemConfig c64 = meshConfig(64, 8, 8);
    SystemConfig c256 = meshConfig(256, 16, 16);
    c16.watchdogCycles = c64.watchdogCycles = c256.watchdogCycles = 2000;

    EXPECT_GT(c64.watchdogHorizon(), c16.watchdogHorizon());
    EXPECT_GT(c256.watchdogHorizon(), c64.watchdogHorizon());
}

TEST(WatchdogHorizon, NeverDropsBelowOneTransactionCost)
{
    // A 1-cycle configured bound cannot beat a single memory fetch.
    SystemConfig cfg = meshConfig(256, 16, 16);
    cfg.watchdogCycles = 1;
    EXPECT_GE(cfg.watchdogHorizon(), cfg.memLatency);
}

TEST(SliceHash, ModuloMatchesThePaperInterleave)
{
    SystemConfig cfg;
    for (unsigned idx = 0; idx < 64; ++idx) {
        const Addr region = Addr(idx) * cfg.regionBytes;
        EXPECT_EQ(cfg.homeTileOf(region), idx % cfg.l2Tiles);
    }
}

TEST(SliceHash, SpreadStaysInRangeAndDecorrelatesStrides)
{
    SystemConfig cfg = meshConfig(64, 8, 8);
    cfg.sliceHash = SliceHashKind::Spread;

    // The adversarial footprint: regions strided by l2Tiles. Modulo
    // piles every one onto tile 0; Spread must fan them out.
    std::set<unsigned> moduloTiles, spreadTiles;
    SystemConfig modulo = cfg;
    modulo.sliceHash = SliceHashKind::Modulo;
    for (unsigned i = 0; i < 1024; ++i) {
        const Addr region =
            Addr(i) * cfg.l2Tiles * cfg.regionBytes;
        const unsigned home = cfg.homeTileOf(region);
        ASSERT_LT(home, cfg.l2Tiles);
        spreadTiles.insert(home);
        moduloTiles.insert(modulo.homeTileOf(region));
    }
    EXPECT_EQ(moduloTiles.size(), 1u);
    EXPECT_GT(spreadTiles.size(), cfg.l2Tiles / 2);
}

TEST(SliceHash, SpreadIsDeterministic)
{
    SystemConfig a = meshConfig(16, 4, 4);
    SystemConfig b = meshConfig(16, 4, 4);
    a.sliceHash = b.sliceHash = SliceHashKind::Spread;
    for (unsigned i = 0; i < 256; ++i) {
        const Addr region = Addr(i) * a.regionBytes;
        EXPECT_EQ(a.homeTileOf(region), b.homeTileOf(region));
    }
}

} // namespace
} // namespace protozoa
