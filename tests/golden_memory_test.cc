/**
 * @file
 * Unit tests for the word stores backing the memory image and the
 * load-value oracle.
 */

#include <gtest/gtest.h>

#include "mem/golden_memory.hh"

namespace protozoa {
namespace {

TEST(WordStore, InitialValueIsDeterministic)
{
    WordStore a, b;
    for (Addr addr = 0; addr < 1024; addr += 8)
        EXPECT_EQ(a.read(addr), b.read(addr));
}

TEST(WordStore, InitialValuesDifferAcrossWords)
{
    WordStore s;
    EXPECT_NE(s.read(0x1000), s.read(0x1008));
}

TEST(WordStore, WriteThenRead)
{
    WordStore s;
    s.write(0x2000, 0xdeadbeef);
    EXPECT_EQ(s.read(0x2000), 0xdeadbeefu);
}

TEST(WordStore, SubWordAddressesAliasToSameWord)
{
    WordStore s;
    s.write(0x3000, 77);
    for (unsigned off = 0; off < 8; ++off)
        EXPECT_EQ(s.read(0x3000 + off), 77u);
    s.write(0x3005, 88);
    EXPECT_EQ(s.read(0x3000), 88u);
}

TEST(WordStore, TouchedWordsCountsDistinctWords)
{
    WordStore s;
    EXPECT_EQ(s.touchedWords(), 0u);
    s.write(0x100, 1);
    s.write(0x104, 2);   // same word
    s.write(0x108, 3);   // next word
    EXPECT_EQ(s.touchedWords(), 2u);
}

TEST(GoldenMemory, CleanLoadPasses)
{
    GoldenMemory g;
    const Addr a = 0x4000;
    EXPECT_TRUE(g.checkLoad(a, g.expected(a)));
    EXPECT_EQ(g.violations(), 0u);
}

TEST(GoldenMemory, StoreThenMatchingLoadPasses)
{
    GoldenMemory g;
    g.commitStore(0x5000, 42);
    EXPECT_TRUE(g.checkLoad(0x5000, 42));
    EXPECT_EQ(g.violations(), 0u);
}

TEST(GoldenMemory, StaleLoadIsFlagged)
{
    GoldenMemory g;
    g.commitStore(0x6000, 1);
    g.commitStore(0x6000, 2);
    EXPECT_FALSE(g.checkLoad(0x6000, 1));
    EXPECT_EQ(g.violations(), 1u);
    EXPECT_EQ(g.lastViolationAddr(), 0x6000u);
    EXPECT_EQ(g.lastExpectedValue(), 2u);
    EXPECT_EQ(g.lastObservedValue(), 1u);
}

TEST(GoldenMemory, ViolationsAccumulate)
{
    GoldenMemory g;
    g.commitStore(0x7000, 9);
    g.checkLoad(0x7000, 1);
    g.checkLoad(0x7000, 2);
    g.checkLoad(0x7000, 9);
    EXPECT_EQ(g.violations(), 2u);
}

} // namespace
} // namespace protozoa
