/**
 * @file
 * Unit tests for the word stores backing the memory image and the
 * load-value oracle.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "mem/golden_memory.hh"

namespace protozoa {
namespace {

TEST(WordStore, InitialValueIsDeterministic)
{
    WordStore a, b;
    for (Addr addr = 0; addr < 1024; addr += 8)
        EXPECT_EQ(a.read(addr), b.read(addr));
}

TEST(WordStore, InitialValuesDifferAcrossWords)
{
    WordStore s;
    EXPECT_NE(s.read(0x1000), s.read(0x1008));
}

TEST(WordStore, WriteThenRead)
{
    WordStore s;
    s.write(0x2000, 0xdeadbeef);
    EXPECT_EQ(s.read(0x2000), 0xdeadbeefu);
}

TEST(WordStore, SubWordAddressesAliasToSameWord)
{
    WordStore s;
    s.write(0x3000, 77);
    for (unsigned off = 0; off < 8; ++off)
        EXPECT_EQ(s.read(0x3000 + off), 77u);
    s.write(0x3005, 88);
    EXPECT_EQ(s.read(0x3000), 88u);
}

TEST(WordStore, TouchedWordsCountsDistinctWords)
{
    WordStore s;
    EXPECT_EQ(s.touchedWords(), 0u);
    s.write(0x100, 1);
    s.write(0x104, 2);   // same word
    s.write(0x108, 3);   // next word
    EXPECT_EQ(s.touchedWords(), 2u);
}

// Property test for the paged open-addressing store: a long random
// mix of writes and reads over enough pages to force several table
// growths must agree word-for-word with a reference std::map overlay.
TEST(WordStore, RandomWritesMatchReferenceMap)
{
    WordStore s;
    std::map<Addr, std::uint64_t> ref;
    Rng rng(13);

    const unsigned kRegions = 1024;   // well past the initial capacity
    const Addr span = static_cast<Addr>(kRegions) * 128;
    for (int i = 0; i < 50000; ++i) {
        // Unaligned addresses alias to their containing word.
        const Addr addr = rng.below(span);
        if (rng.chance(0.5)) {
            const std::uint64_t v = rng.next();
            s.write(addr, v);
            ref[wordAlign(addr)] = v;
        } else {
            const auto it = ref.find(wordAlign(addr));
            const std::uint64_t expect = it != ref.end()
                ? it->second
                : WordStore::initialValue(wordAlign(addr));
            ASSERT_EQ(s.read(addr), expect) << "addr 0x" << std::hex
                                            << addr;
        }
    }
    EXPECT_EQ(s.touchedWords(), ref.size());

    // Full sweep: every word in the span, written or not.
    for (Addr wa = 0; wa < span; wa += kWordBytes) {
        const auto it = ref.find(wa);
        const std::uint64_t expect = it != ref.end()
            ? it->second
            : WordStore::initialValue(wa);
        ASSERT_EQ(s.read(wa), expect) << "addr 0x" << std::hex << wa;
    }
}

TEST(WordStore, ClearForgetsEverything)
{
    WordStore s;
    s.write(0x9000, 5);
    s.clear();
    EXPECT_EQ(s.touchedWords(), 0u);
    EXPECT_EQ(s.read(0x9000), WordStore::initialValue(0x9000));
}

TEST(GoldenMemory, CleanLoadPasses)
{
    GoldenMemory g;
    const Addr a = 0x4000;
    EXPECT_TRUE(g.checkLoad(a, g.expected(a)));
    EXPECT_EQ(g.violations(), 0u);
}

TEST(GoldenMemory, StoreThenMatchingLoadPasses)
{
    GoldenMemory g;
    g.commitStore(0x5000, 42);
    EXPECT_TRUE(g.checkLoad(0x5000, 42));
    EXPECT_EQ(g.violations(), 0u);
}

TEST(GoldenMemory, StaleLoadIsFlagged)
{
    GoldenMemory g;
    g.commitStore(0x6000, 1);
    g.commitStore(0x6000, 2);
    EXPECT_FALSE(g.checkLoad(0x6000, 1));
    EXPECT_EQ(g.violations(), 1u);
    EXPECT_EQ(g.lastViolationAddr(), 0x6000u);
    EXPECT_EQ(g.lastExpectedValue(), 2u);
    EXPECT_EQ(g.lastObservedValue(), 1u);
}

TEST(GoldenMemory, ViolationsAccumulate)
{
    GoldenMemory g;
    g.commitStore(0x7000, 9);
    g.checkLoad(0x7000, 1);
    g.checkLoad(0x7000, 2);
    g.checkLoad(0x7000, 9);
    EXPECT_EQ(g.violations(), 2u);
}

} // namespace
} // namespace protozoa
