/**
 * @file
 * Replays of the paper's worked examples:
 *  - Fig. 1  OpenMP counter false sharing under all four protocols,
 *  - Fig. 4  GETX with a remote variable-granularity owner,
 *  - Fig. 7  Protozoa-MW write miss with overlapping/non-overlapping
 *            dirty sharers and an overlapping reader,
 *  - Sec. 3.5 Protozoa-SW+MR single-writer revocation semantics.
 */

#include <gtest/gtest.h>

#include "protocol_driver.hh"

namespace protozoa {
namespace {

constexpr Addr kRegion = 0x2000;   // home tile 8

SystemConfig
wordCfg(ProtocolKind protocol)
{
    SystemConfig cfg;
    cfg.protocol = protocol;
    cfg.predictor = PredictorKind::WordOnly;
    return cfg;
}

Addr
word(unsigned w)
{
    return kRegion + w * kWordBytes;
}

// Fig. 1: each core read-modify-writes its own word of one region.
// MESI/SW ping-pong; MW caches all eight writers concurrently.
TEST(PaperScenario, Fig1FalseSharedCounters)
{
    auto missesFor = [](ProtocolKind protocol) {
        ProtocolDriver d(wordCfg(protocol));
        for (unsigned iter = 0; iter < 50; ++iter) {
            for (CoreId c = 0; c < 8; ++c) {
                d.load(c, word(c), 0x100);
                d.store(c, word(c), iter * 8 + c, 0x104);
            }
        }
        d.expectClean();
        RunStats stats = d.sys.report();
        return stats.l1.misses;
    };

    const auto mesi = missesFor(ProtocolKind::MESI);
    const auto sw = missesFor(ProtocolKind::ProtozoaSW);
    const auto mw = missesFor(ProtocolKind::ProtozoaMW);

    // MESI and SW invalidate at region granularity: every counter
    // update misses. MW converges to zero misses after warmup.
    EXPECT_GT(mesi, 8u * 50u / 2u);
    EXPECT_GT(sw, 8u * 50u / 2u);
    EXPECT_LE(mw, 8u * 3u);   // cold + cross-invalidation warmup only
}

// Under MW the Fig. 1 counters stay resident in M at all eight cores
// at the same time: word-granularity SWMR.
TEST(PaperScenario, Fig1ConcurrentDisjointWriters)
{
    ProtocolDriver d(wordCfg(ProtocolKind::ProtozoaMW));
    for (CoreId c = 0; c < 8; ++c)
        d.store(c, word(c), c);

    for (CoreId c = 0; c < 8; ++c)
        EXPECT_EQ(d.stateOf(c, word(c)), BlockState::M) << c;

    const auto view = d.dirView(word(0));
    EXPECT_EQ(view.writers.count(), 8u);
    d.expectClean();
}

// Fig. 4: Core-1 caches dirty words 2-6; Core-0 issues GETX 0-3. The
// overlapping dirty sharer writes back and invalidates; the directory
// patches and supplies the requested words.
TEST(PaperScenario, Fig4WriteMissWithRemoteOwner)
{
    SystemConfig cfg;
    cfg.protocol = ProtocolKind::ProtozoaSW;
    cfg.predictor = PredictorKind::Fixed;
    cfg.fixedFetchWords = 4;   // requests come in aligned 4-word runs
    ProtocolDriver d(cfg);

    // Core-1 dirties words 4-7 (one fixed 4-word block).
    d.store(1, word(5), 55, 0x200);
    EXPECT_EQ(d.stateOf(1, word(4)), BlockState::M);

    // Core-0 write miss for words 0-3: same region, disjoint words.
    d.store(0, word(2), 22, 0x204);

    // Protozoa-SW keeps a single writer per region: Core-1 fully
    // invalidated, its dirty data safely at the L2.
    EXPECT_EQ(d.stateOf(1, word(5)), std::nullopt);
    EXPECT_EQ(d.stateOf(0, word(2)), BlockState::M);
    const auto view = d.dirView(word(0));
    EXPECT_TRUE(view.writers.only(0));

    EXPECT_EQ(d.load(2, word(5)), 55u);
    EXPECT_EQ(d.load(2, word(2)), 22u);
    d.expectClean();
}

// Fig. 7: Core-1 overlapping dirty sharer, Core-2 overlapping
// read-only sharer, Core-3 non-overlapping dirty sharer; Core-0
// issues the write miss.
TEST(PaperScenario, Fig7MwWriteMissResponses)
{
    ProtocolDriver d(wordCfg(ProtocolKind::ProtozoaMW));

    d.store(1, word(3), 33, 0x300);   // overlapping dirty sharer
    d.load(2, word(3), 0x304);        // overlapping read-only sharer
    d.store(3, word(7), 77, 0x308);   // non-overlapping dirty sharer
    EXPECT_EQ(d.stateOf(1, word(3)), BlockState::S);  // downgraded by 2

    d.store(0, word(3), 99, 0x30c);   // the Fig. 7 GETX

    // Overlapping sharers lost their copies...
    EXPECT_EQ(d.stateOf(1, word(3)), std::nullopt);
    EXPECT_EQ(d.stateOf(2, word(3)), std::nullopt);
    // ...the non-overlapping dirty sharer kept word 7 (ACK-S)...
    EXPECT_EQ(d.stateOf(3, word(7)), BlockState::M);
    // ...and the requester writes word 3.
    EXPECT_EQ(d.stateOf(0, word(3)), BlockState::M);

    const auto view = d.dirView(word(0));
    EXPECT_TRUE(view.writers.test(0));
    EXPECT_TRUE(view.writers.test(3));
    EXPECT_FALSE(view.writers.test(1));
    EXPECT_FALSE(view.readers.test(2));

    EXPECT_EQ(d.load(5, word(3)), 99u);
    EXPECT_EQ(d.load(5, word(7)), 77u);
    d.expectClean();
}

// Sec. 3.5: on a write miss, Protozoa-SW+MR revokes the existing
// writer's permission even when non-overlapping (it stays a sharer),
// so subsequent readers need not ping it.
TEST(PaperScenario, SwMrRevokesNonOverlappingWriter)
{
    ProtocolDriver d(wordCfg(ProtocolKind::ProtozoaSWMR));

    d.store(3, word(7), 77);
    d.store(0, word(3), 33);   // disjoint write

    // Core-3 keeps its word as a clean sharer (data retained)...
    EXPECT_EQ(d.stateOf(3, word(7)), BlockState::S);
    const auto view = d.dirView(word(0));
    EXPECT_TRUE(view.writers.only(0));    // single writer restored
    EXPECT_TRUE(view.readers.test(3));

    // ...so a reader of word 7 is served without disturbing Core-3.
    EXPECT_EQ(d.load(5, word(7)), 77u);
    EXPECT_EQ(d.stateOf(3, word(7)), BlockState::S);
    d.expectClean();
}

// Sec. 3.5 contrast: SW+MR allows non-overlapping readers to coexist
// with the single writer.
TEST(PaperScenario, SwMrReadersCoexistWithWriter)
{
    ProtocolDriver d(wordCfg(ProtocolKind::ProtozoaSWMR));

    d.load(1, word(0));
    d.load(2, word(1));
    d.store(0, word(5), 55);   // disjoint write: readers survive

    EXPECT_EQ(d.stateOf(1, word(0)), BlockState::S);
    EXPECT_EQ(d.stateOf(2, word(1)), BlockState::S);
    EXPECT_EQ(d.stateOf(0, word(5)), BlockState::M);
    d.expectClean();
}

// The same pattern under Protozoa-SW kills the readers (region-
// granularity coherence).
TEST(PaperScenario, SwInvalidatesDisjointReaders)
{
    ProtocolDriver d(wordCfg(ProtocolKind::ProtozoaSW));

    d.load(1, word(0));
    d.load(2, word(1));
    d.store(0, word(5), 55);

    EXPECT_EQ(d.stateOf(1, word(0)), std::nullopt);
    EXPECT_EQ(d.stateOf(2, word(1)), std::nullopt);
    d.expectClean();
}

// MW truly enforces word-granularity SWMR: writes to the same word
// still serialize through the directory.
TEST(PaperScenario, MwTrueSharingStillSerializes)
{
    ProtocolDriver d(wordCfg(ProtocolKind::ProtozoaMW));
    d.store(0, word(4), 1);
    d.store(1, word(4), 2);
    EXPECT_EQ(d.stateOf(0, word(4)), std::nullopt);
    EXPECT_EQ(d.stateOf(1, word(4)), BlockState::M);
    EXPECT_EQ(d.load(0, word(4)), 2u);
    d.expectClean();
}

// Fig. 11 census plumbing: MW directory records multi-owner accesses.
TEST(PaperScenario, OwnedCensusCountsMultiOwner)
{
    ProtocolDriver d(wordCfg(ProtocolKind::ProtozoaMW));
    d.store(0, word(0), 1);
    d.store(1, word(1), 2);
    d.store(2, word(2), 3);

    const auto &stats = d.sys.dir(d.homeOf(word(0))).stats;
    EXPECT_GT(stats.ownedOneOwnerOnly + stats.ownedMultiOwner, 0u);
    EXPECT_GT(stats.ownedMultiOwner, 0u);
}

} // namespace
} // namespace protozoa
