/**
 * @file
 * Paper-shape regression tests on the benchmark suite: the headline
 * qualitative results of the evaluation must hold at reduced scale.
 */

#include <gtest/gtest.h>

#include "protozoa/protozoa.hh"

namespace protozoa {
namespace {

RunStats
run(const std::string &name, ProtocolKind protocol, double scale = 0.5)
{
    SystemConfig cfg;
    cfg.protocol = protocol;
    return runBenchmark(cfg, name, scale);
}

TEST(BenchmarkSuite, LinearRegressionMwEliminatesMisses)
{
    const RunStats mesi =
        run("linear-regression", ProtocolKind::MESI, 1.0);
    const RunStats mw =
        run("linear-regression", ProtocolKind::ProtozoaMW, 1.0);
    // Paper: up to 99% miss reduction (cold warmup misses remain).
    EXPECT_LT(static_cast<double>(mw.l1.misses),
              0.08 * static_cast<double>(mesi.l1.misses));
    // And a large speedup (paper: 2.2x).
    EXPECT_LT(static_cast<double>(mw.cycles),
              0.7 * static_cast<double>(mesi.cycles));
}

TEST(BenchmarkSuite, LinearRegressionSwDoesNotHelp)
{
    const RunStats mesi = run("linear-regression", ProtocolKind::MESI);
    const RunStats sw = run("linear-regression",
                            ProtocolKind::ProtozoaSW);
    // False sharing persists at region granularity.
    EXPECT_GT(static_cast<double>(sw.l1.misses),
              0.8 * static_cast<double>(mesi.l1.misses));
}

TEST(BenchmarkSuite, HistogramOrderingMatchesPaper)
{
    const RunStats mesi = run("histogram", ProtocolKind::MESI);
    const RunStats sw = run("histogram", ProtocolKind::ProtozoaSW);
    const RunStats swmr = run("histogram", ProtocolKind::ProtozoaSWMR);
    const RunStats mw = run("histogram", ProtocolKind::ProtozoaMW);

    // Paper: SW cannot eliminate histogram's false sharing; SW+MR
    // helps; MW helps most (71% miss reduction).
    EXPECT_GT(static_cast<double>(sw.l1.misses),
              0.8 * static_cast<double>(mesi.l1.misses));
    EXPECT_LT(static_cast<double>(swmr.l1.misses),
              0.8 * static_cast<double>(sw.l1.misses));
    EXPECT_LT(static_cast<double>(mw.l1.misses),
              0.6 * static_cast<double>(swmr.l1.misses));
    EXPECT_LT(static_cast<double>(mw.l1.misses),
              0.4 * static_cast<double>(mesi.l1.misses));
}

TEST(BenchmarkSuite, DenseStreamsSeeNoProtocolDifference)
{
    for (const char *name : {"mat-mul", "word-count"}) {
        const RunStats mesi = run(name, ProtocolKind::MESI, 0.3);
        const RunStats mw = run(name, ProtocolKind::ProtozoaMW, 0.3);
        // Full-locality workloads: Protozoa fetches full regions too.
        EXPECT_NEAR(static_cast<double>(mw.l1.misses),
                    static_cast<double>(mesi.l1.misses),
                    0.15 * static_cast<double>(mesi.l1.misses))
            << name;
    }
}

TEST(BenchmarkSuite, LowLocalityAppsCutTrafficSharply)
{
    // Full scale: the predictor needs a few L1 generations to train.
    for (const char *name : {"blackscholes", "bodytrack"}) {
        const RunStats mesi = run(name, ProtocolKind::MESI, 1.0);
        const RunStats sw = run(name, ProtocolKind::ProtozoaSW, 1.0);
        const auto t0 = trafficBreakdown(mesi).total();
        const auto t1 = trafficBreakdown(sw).total();
        EXPECT_LT(t1, 0.6 * t0) << name;
    }
}

TEST(BenchmarkSuite, AdaptiveFetchRaisesUsedFraction)
{
    for (const char *name : {"canneal", "bodytrack", "h2"}) {
        const RunStats mesi = run(name, ProtocolKind::MESI, 0.4);
        const RunStats mw = run(name, ProtocolKind::ProtozoaMW, 0.4);
        EXPECT_GT(mw.usedDataFraction(),
                  mesi.usedDataFraction() + 0.2)
            << name;
    }
}

TEST(BenchmarkSuite, SwMrSitsBetweenSwAndMwOnDataTraffic)
{
    // The paper's Sec. 4.1 claim is about *data* transferred: SW+MR
    // "reduces data transferred compared to Protozoa-SW by eliminating
    // secondary misses", and MW goes further. (Total bytes can move
    // the other way: the paper itself notes SW+MR's retained sharers
    // attract extra invalidation control messages.)
    double sw_data = 0, swmr_data = 0, mw_data = 0;
    for (const char *name :
         {"histogram", "linear-regression", "string-match"}) {
        auto data = [&](ProtocolKind k) {
            const auto tb = trafficBreakdown(run(name, k));
            return tb.usedData + tb.unusedData;
        };
        sw_data += data(ProtocolKind::ProtozoaSW);
        swmr_data += data(ProtocolKind::ProtozoaSWMR);
        mw_data += data(ProtocolKind::ProtozoaMW);
    }
    EXPECT_LT(swmr_data, sw_data);
    EXPECT_LE(mw_data, swmr_data);
}

TEST(BenchmarkSuite, ValueCheckingCleanOnMixedWorkloads)
{
    for (const char *name : {"histogram", "streamcluster", "x264"}) {
        for (auto protocol :
             {ProtocolKind::ProtozoaSWMR, ProtocolKind::ProtozoaMW}) {
            SystemConfig cfg;
            cfg.protocol = protocol;
            const BenchSpec &spec = findBenchmark(name);
            System sys(cfg, spec.gen(cfg, 0.3));
            sys.run();
            EXPECT_EQ(sys.valueViolations(), 0u)
                << name << " " << protocolName(protocol);
            EXPECT_FALSE(sys.checkCoherenceInvariant().has_value());
        }
    }
}

TEST(BenchmarkSuite, MwBlockSizesSpreadWithLocality)
{
    SystemConfig cfg;
    cfg.protocol = ProtocolKind::ProtozoaMW;

    // canneal: overwhelmingly 1-2 word blocks.
    RunStats canneal = runBenchmark(cfg, "canneal", 0.4);
    std::uint64_t small = 0, large = 0;
    for (unsigned w = 1; w <= 2; ++w)
        small += canneal.l1.blockSizeHist[w];
    for (unsigned w = 7; w <= 8; ++w)
        large += canneal.l1.blockSizeHist[w];
    EXPECT_GT(small, large);

    // mat-mul: overwhelmingly 8-word blocks.
    RunStats mm = runBenchmark(cfg, "mat-mul", 0.3);
    small = large = 0;
    for (unsigned w = 1; w <= 2; ++w)
        small += mm.l1.blockSizeHist[w];
    for (unsigned w = 7; w <= 8; ++w)
        large += mm.l1.blockSizeHist[w];
    EXPECT_GT(large, small);
}

TEST(BenchmarkSuite, InstructionCountsIndependentOfProtocol)
{
    const RunStats a = run("fft", ProtocolKind::MESI, 0.3);
    const RunStats b = run("fft", ProtocolKind::ProtozoaMW, 0.3);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.l1.loads + a.l1.stores, b.l1.loads + b.l1.stores);
}

} // namespace
} // namespace protozoa
