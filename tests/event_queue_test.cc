/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, determinism,
 * and the deadlock safety net.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.hh"

namespace protozoa {
namespace {

TEST(EventQueue, StartsAtCycleZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesRunInSchedulingOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&]() {
        if (++count < 5)
            eq.schedule(7, chain);
    };
    eq.schedule(1, chain);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 1u + 4 * 7u);
}

TEST(EventQueue, ScheduleAtAbsoluteCycle)
{
    EventQueue eq;
    Cycle seen = 0;
    eq.scheduleAt(42, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty)
{
    EventQueue eq;
    EXPECT_FALSE(eq.step());
    eq.schedule(1, [] {});
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueueDeath, RunawayQueuePanics)
{
    EventQueue eq;
    std::function<void()> forever = [&]() { eq.schedule(100, forever); };
    eq.schedule(1, forever);
    EXPECT_DEATH(eq.run(10'000), "deadlock or livelock");
}

} // namespace
} // namespace protozoa
