/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, determinism,
 * the deadlock safety net, the small-buffer callback type, and
 * property tests pitting the calendar/bucket scheduler against a
 * naive reference queue across the ring/heap boundary.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/event_queue.hh"
#include "common/rng.hh"

namespace protozoa {
namespace {

TEST(EventQueue, StartsAtCycleZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesRunInSchedulingOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&]() {
        if (++count < 5)
            eq.schedule(7, chain);
    };
    eq.schedule(1, chain);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 1u + 4 * 7u);
}

TEST(EventQueue, ScheduleAtAbsoluteCycle)
{
    EventQueue eq;
    Cycle seen = 0;
    eq.scheduleAt(42, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty)
{
    EventQueue eq;
    EXPECT_FALSE(eq.step());
    eq.schedule(1, [] {});
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueueDeath, RunawayQueuePanics)
{
    EventQueue eq;
    std::function<void()> forever = [&]() { eq.schedule(100, forever); };
    eq.schedule(1, forever);
    EXPECT_DEATH(eq.run(10'000), "deadlock or livelock");
}

TEST(EventCallback, SmallCapturesStayInline)
{
    int hits = 0;
    EventCallback small([&hits] { ++hits; });
    EXPECT_TRUE(small.inlined());
    small();
    EXPECT_EQ(hits, 1);

    struct Big
    {
        std::uint64_t words[64];
    };
    Big big{};
    big.words[63] = 7;
    std::uint64_t seen = 0;
    EventCallback boxed([big, &seen] { seen = big.words[63]; });
    EXPECT_FALSE(boxed.inlined());
    boxed();
    EXPECT_EQ(seen, 7u);

    // Moving transfers the callable and empties the source.
    EventCallback moved(std::move(boxed));
    EXPECT_FALSE(static_cast<bool>(boxed));
    seen = 0;
    moved();
    EXPECT_EQ(seen, 7u);
}

TEST(EventQueueBoundary, SpillThenRingAtTheSameCycleRunsInSeqOrder)
{
    // An event scheduled long in advance (spill heap) and one scheduled
    // later for the same cycle (calendar ring) must still run in
    // scheduling order: the spilled event first.
    constexpr Cycle target = 3 * EventQueue::kRingHorizon;
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(target, [&] { order.push_back(1); });   // -> spill
    eq.scheduleAt(target - 10, [&eq, &order] {
        eq.scheduleAt(target, [&order] { order.push_back(2); }); // -> ring
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_GT(eq.kernelStats().heapScheduled, 0u);
    EXPECT_GT(eq.kernelStats().bucketScheduled, 0u);
}

TEST(EventQueueBoundary, DelaysStraddlingTheHorizonKeepTimeOrder)
{
    constexpr Cycle h = EventQueue::kRingHorizon;
    EventQueue eq;
    std::vector<Cycle> fired;
    for (Cycle d : {h + 1, h, h - 1, Cycle(1), h * 2, h * 5 + 3})
        eq.schedule(d, [&fired, &eq] { fired.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(fired.size(), 6u);
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
    EXPECT_EQ(fired.front(), 1u);
    EXPECT_EQ(fired.back(), h * 5 + 3);
}

/**
 * Reference scheduler: a flat vector scanned for the (when, seq)
 * minimum. O(n^2) but obviously correct; the property tests require
 * the calendar queue to replay its execution order exactly.
 */
class RefQueue
{
  public:
    using Callback = std::function<void()>;

    Cycle now() const { return cur; }

    void schedule(Cycle delay, Callback cb) { scheduleAt(cur + delay, std::move(cb)); }

    void
    scheduleAt(Cycle when, Callback cb)
    {
        evs.push_back(Ev{when, seq++, std::move(cb)});
    }

    void
    run()
    {
        while (!evs.empty()) {
            auto it = std::min_element(
                evs.begin(), evs.end(), [](const Ev &a, const Ev &b) {
                    return a.when != b.when ? a.when < b.when
                                            : a.seq < b.seq;
                });
            Ev ev = std::move(*it);
            evs.erase(it);
            cur = ev.when;
            ev.cb();
        }
    }

  private:
    struct Ev
    {
        Cycle when;
        std::uint64_t seq;
        Callback cb;
    };

    std::vector<Ev> evs;
    Cycle cur = 0;
    std::uint64_t seq = 0;
};

/** Delay mix spanning both scheduler levels and ring wraparound. */
Cycle
mixedDelay(Rng &rng)
{
    switch (rng.below(4)) {
      case 0:  return rng.below(8);                            // same-ish cycle
      case 1:  return 1 + rng.below(EventQueue::kRingHorizon - 1);
      case 2:  return EventQueue::kRingHorizon - 2 + rng.below(5);
      default: return EventQueue::kRingHorizon + rng.below(4096);
    }
}

/**
 * Run a randomized scenario (initial events + events scheduled from
 * inside callbacks, random delays from mixedDelay) and record the
 * execution order of event ids. Any ordering bug in Q makes the RNG
 * draws diverge from the reference, so the orders differ.
 */
template <typename Q>
std::vector<int>
runScenario(std::uint64_t seed)
{
    Q q;
    Rng rng(seed);
    std::vector<int> order;
    int next_id = 0;

    std::function<void(int, unsigned)> fire = [&](int id, unsigned depth) {
        order.push_back(id);
        if (depth == 0)
            return;
        const unsigned children = static_cast<unsigned>(rng.below(3));
        for (unsigned c = 0; c < children; ++c) {
            const int child = next_id++;
            const Cycle d = mixedDelay(rng);
            q.schedule(d, [&fire, child, depth] { fire(child, depth - 1); });
        }
    };

    for (int i = 0; i < 200; ++i) {
        const int id = next_id++;
        q.schedule(mixedDelay(rng), [&fire, id] { fire(id, 3); });
    }
    q.run();
    return order;
}

TEST(EventQueueProperty, MatchesReferenceSchedulerAcrossSeeds)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto expected = runScenario<RefQueue>(seed);
        const auto got = runScenario<EventQueue>(seed);
        ASSERT_GT(expected.size(), 200u);
        EXPECT_EQ(got, expected) << "seed " << seed;
    }
}

TEST(EventQueueProperty, CountersBalanceAfterRandomScenario)
{
    EventQueue eq;
    Rng rng(42);
    std::uint64_t fired = 0;
    for (int i = 0; i < 500; ++i)
        eq.schedule(mixedDelay(rng), [&fired] { ++fired; });
    eq.run();

    const KernelStats &k = eq.kernelStats();
    EXPECT_EQ(k.eventsScheduled, 500u);
    EXPECT_EQ(k.eventsExecuted, 500u);
    EXPECT_EQ(k.bucketScheduled + k.heapScheduled, k.eventsScheduled);
    EXPECT_GT(k.heapScheduled, 0u);   // the long-tail delays spill
    EXPECT_EQ(k.maxQueueDepth, 500u); // all scheduled before any ran
    EXPECT_EQ(fired, 500u);
    EXPECT_TRUE(eq.empty());
}

} // namespace
} // namespace protozoa
