/**
 * @file
 * Focused unit tests for controller internals not covered by the
 * scenario tests: directory views and census classes, request
 * queueing/draining order, traffic classification on known access
 * sequences, upgrade-path specifics, and E-grant bookkeeping.
 */

#include <gtest/gtest.h>

#include "protocol_driver.hh"

namespace protozoa {
namespace {

SystemConfig
wordCfg(ProtocolKind protocol)
{
    SystemConfig cfg;
    cfg.protocol = protocol;
    cfg.predictor = PredictorKind::WordOnly;
    return cfg;
}

TEST(DirView, AbsentRegionIsNotPresent)
{
    ProtocolDriver d(wordCfg(ProtocolKind::ProtozoaMW));
    const auto view = d.dirView(0x9000);
    EXPECT_FALSE(view.present);
    EXPECT_TRUE(view.readers.none());
    EXPECT_TRUE(view.writers.none());
}

TEST(DirView, DirtyBitTracksWritebacks)
{
    ProtocolDriver d(wordCfg(ProtocolKind::ProtozoaMW));
    const Addr a = 0x9000;
    d.load(0, a);
    EXPECT_FALSE(d.dirView(a).dirty);   // clean fill from memory

    d.store(1, a, 5);
    d.load(2, a);   // forces the writer's data back to the L2
    EXPECT_TRUE(d.dirView(a).dirty);
}

TEST(DirCensus, ClassesAreDisjointAndExhaustive)
{
    ProtocolDriver d(wordCfg(ProtocolKind::ProtozoaMW));
    const Addr region = 0xa000;
    const TileId home = d.homeOf(region);

    // 1 owner only.
    d.store(0, region, 1);
    d.store(0, region, 2);          // hit: no census event
    d.load(0, region + 8);          // secondary GETS from the owner
    const auto &st = d.sys.dir(home).stats;
    EXPECT_EQ(st.ownedOneOwnerOnly, 1u);
    EXPECT_EQ(st.ownedOneOwnerPlusSharers, 0u);
    EXPECT_EQ(st.ownedMultiOwner, 0u);

    // 1 owner + sharers.
    d.load(1, region + 16);
    // That access found 1 owner, 0 sharers -> oneOwnerOnly again;
    // the next finds 1 owner + 1 sharer.
    d.load(2, region + 24);
    EXPECT_EQ(st.ownedOneOwnerOnly, 2u);
    EXPECT_EQ(st.ownedOneOwnerPlusSharers, 1u);

    // >1 owner.
    d.store(3, region + 32, 3);
    d.store(4, region + 40, 4);     // finds owners {0,3}
    EXPECT_GE(st.ownedMultiOwner, 1u);
}

TEST(DirQueueing, RequestsDrainInArrivalOrder)
{
    ProtocolDriver d(wordCfg(ProtocolKind::ProtozoaMW));
    const Addr a = 0xb000;
    // Same-word stores from many cores pile up on one region queue.
    for (CoreId c = 0; c < 8; ++c)
        d.issue(c, a, true, 100 + c, 0x10, c);
    d.drain();
    // All eight committed; the final value is one of the issued ones
    // and everyone agrees on it.
    const auto v = d.load(15, a);
    EXPECT_GE(v, 100u);
    EXPECT_LT(v, 108u);
    d.expectClean();
}

TEST(TrafficClassification, ColdReadMissCounts)
{
    ProtocolDriver d(wordCfg(ProtocolKind::MESI));
    const Addr a = 0xc000;
    d.load(0, a);
    d.sys.l1(0).finalizeStats();
    const L1Stats &l1 = d.sys.l1(0).stats;

    // GETS (8 B) + DATA header (8 B) + UNBLOCK (8 B) control...
    EXPECT_EQ(l1.ctrlBytes[static_cast<unsigned>(CtrlClass::Req)], 8u);
    EXPECT_EQ(l1.ctrlBytes[static_cast<unsigned>(CtrlClass::DataHdr)],
              8u);
    EXPECT_EQ(l1.ctrlBytes[static_cast<unsigned>(CtrlClass::Ack)], 8u);
    // ...and a full 64 B region fetched, 8 B of it touched.
    EXPECT_EQ(l1.usedDataBytes, 8u);
    EXPECT_EQ(l1.unusedDataBytes, 56u);
}

TEST(TrafficClassification, WordOnlyFetchIsFullyUsed)
{
    ProtocolDriver d(wordCfg(ProtocolKind::ProtozoaMW));
    d.load(0, 0xd000);
    d.sys.l1(0).finalizeStats();
    const L1Stats &l1 = d.sys.l1(0).stats;
    EXPECT_EQ(l1.usedDataBytes, 8u);
    EXPECT_EQ(l1.unusedDataBytes, 0u);
}

TEST(TrafficClassification, WritebackCountsTouchedWords)
{
    SystemConfig cfg = wordCfg(ProtocolKind::MESI);
    ProtocolDriver d(cfg);
    const Addr a = 0xe000;
    d.store(0, a, 7);      // fetch 64 B, write word 0
    d.store(1, a, 8);      // forces core 0's writeback

    const L1Stats &l1 = d.sys.l1(0).stats;
    // Core 0's outbound writeback: 1 touched word used, 7 unused;
    // its death also classifies the original 64 B fill the same way.
    EXPECT_EQ(l1.usedDataBytes, 16u);
    EXPECT_EQ(l1.unusedDataBytes, 112u);
}

TEST(UpgradePath, DatalessGrantSendsNoPayload)
{
    ProtocolDriver d(wordCfg(ProtocolKind::MESI));
    const Addr a = 0xf000;
    d.load(0, a);
    d.load(1, a);   // both S now

    const auto data_before = d.sys.l1(0).stats.dataBytes();
    d.store(0, a, 3);   // upgrade: permission only
    d.sys.l1(0).finalizeStats();
    // No new data arrived at core 0 beyond what it already had.
    const auto used_delta =
        d.sys.l1(0).stats.dataBytes() - data_before;
    EXPECT_EQ(used_delta, 64u);   // the original fill, classified once
    EXPECT_EQ(d.load(1, a), 3u);
}

TEST(UpgradePath, PromotedBlockKeepsItsData)
{
    ProtocolDriver d(wordCfg(ProtocolKind::ProtozoaSW));
    const Addr region = 0x11000;
    SystemConfig cfg = wordCfg(ProtocolKind::ProtozoaSW);
    (void)cfg;
    // Core 0 reads word 2 (gets it in S via another sharer first).
    d.load(1, region + 16);
    d.load(0, region + 16);
    // Upgrade word 2: its pre-upgrade value must survive promotion.
    const auto before = d.load(0, region + 16);
    d.store(0, region + 16, before + 1);
    EXPECT_EQ(d.load(0, region + 16), before + 1);
    d.expectClean();
}

TEST(ExclusiveGrant, SoleReaderGetsE)
{
    ProtocolDriver d(wordCfg(ProtocolKind::ProtozoaMW));
    d.load(3, 0x12000);
    EXPECT_EQ(d.stateOf(3, 0x12000), BlockState::E);
    // Second reader of a *different* word in the same region: the
    // region already has an owner, so only S is granted.
    d.load(4, 0x12000 + 8);
    EXPECT_EQ(d.stateOf(4, 0x12000 + 8), BlockState::S);
}

TEST(ExclusiveGrant, SecondaryGetsFromOwnerKeepsWriterTracking)
{
    ProtocolDriver d(wordCfg(ProtocolKind::ProtozoaMW));
    const Addr region = 0x13000;
    d.store(0, region, 1);
    d.load(0, region + 8);   // secondary GETS from the owner

    const auto view = d.dirView(region);
    EXPECT_TRUE(view.writers.test(0));
    // Still able to write the new word after a remote read of it?
    // (it was granted as a separate block; a store may need upgrade)
    d.store(0, region + 8, 2);
    EXPECT_EQ(d.load(5, region + 8), 2u);
    d.expectClean();
}

TEST(CoreSetOps, BasicAlgebra)
{
    CoreSet a;
    a.set(1);
    a.set(5);
    CoreSet b = CoreSet::fromRaw(0b100010);
    EXPECT_EQ(a.raw(), b.raw());
    EXPECT_EQ(a.count(), 2u);
    EXPECT_TRUE(a.minus(b).none());
    b.reset(5);
    EXPECT_TRUE(a.minus(b).only(5));
    unsigned visited = 0;
    a.forEach([&](CoreId c) {
        EXPECT_TRUE(c == 1 || c == 5);
        ++visited;
    });
    EXPECT_EQ(visited, 2u);
}

TEST(BlockStateNames, Stable)
{
    EXPECT_STREQ(blockStateName(BlockState::S), "S");
    EXPECT_STREQ(blockStateName(BlockState::E), "E");
    EXPECT_STREQ(blockStateName(BlockState::M), "M");
}

TEST(ProtocolNames, Stable)
{
    EXPECT_STREQ(protocolName(ProtocolKind::MESI), "MESI");
    EXPECT_STREQ(protocolName(ProtocolKind::ProtozoaSW), "Protozoa-SW");
    EXPECT_STREQ(protocolName(ProtocolKind::ProtozoaSWMR),
                 "Protozoa-SW+MR");
    EXPECT_STREQ(protocolName(ProtocolKind::ProtozoaMW), "Protozoa-MW");
}

TEST(ConfigValidation, RejectsBadGeometry)
{
    SystemConfig cfg;
    cfg.regionBytes = 48;   // not a power of two
    EXPECT_DEATH(cfg.validate(), "power of two");

    SystemConfig cfg2;
    cfg2.numCores = 12;     // != meshCols * meshRows
    EXPECT_DEATH(cfg2.validate(), "meshCols");

    SystemConfig cfg3;
    cfg3.l1BytesPerSet = 32;   // smaller than one region
    EXPECT_DEATH(cfg3.validate(), "at least one region");
}

} // namespace
} // namespace protozoa
