/**
 * @file
 * End-to-end System tests: small hand-built workloads run to
 * completion under every protocol, with value checking on and the
 * coherence-invariant scanner enabled.
 */

#include <gtest/gtest.h>

#include "protozoa/protozoa.hh"

namespace protozoa {
namespace {

SystemConfig
smallConfig(ProtocolKind protocol)
{
    SystemConfig cfg;
    cfg.protocol = protocol;
    cfg.checkValues = true;
    return cfg;
}

Workload
singleWriterTrace(unsigned cores, Addr base, unsigned refs)
{
    TraceBuilder tb(cores, 42);
    for (unsigned c = 0; c < cores; ++c) {
        for (unsigned i = 0; i < refs; ++i) {
            // Each core owns a private 4 KiB arena.
            const Addr a = base + c * 4096 + (i % 64) * kWordBytes;
            if (i % 3 == 0)
                tb.store(c, a, 0x100 + (i % 8) * 4);
            else
                tb.load(c, a, 0x100 + (i % 8) * 4);
        }
    }
    return tb.build();
}

class AllProtocols : public ::testing::TestWithParam<ProtocolKind>
{
};

TEST_P(AllProtocols, PrivateDataRunsClean)
{
    SystemConfig cfg = smallConfig(GetParam());
    System sys(cfg, singleWriterTrace(cfg.numCores, 0x10000000, 500));
    sys.enablePeriodicInvariantCheck(128);
    sys.run();

    EXPECT_EQ(sys.valueViolations(), 0u);
    EXPECT_EQ(sys.invariantViolations(), 0u);
    EXPECT_FALSE(sys.checkCoherenceInvariant().has_value());

    const RunStats stats = sys.report();
    EXPECT_EQ(stats.l1.loads + stats.l1.stores,
              500ull * cfg.numCores);
    EXPECT_GT(stats.l1.hits, 0u);
    EXPECT_GT(stats.cycles, 0u);
}

TEST_P(AllProtocols, SharedReadOnlyDataRunsClean)
{
    SystemConfig cfg = smallConfig(GetParam());
    TraceBuilder tb(cfg.numCores, 7);
    for (unsigned c = 0; c < cfg.numCores; ++c)
        for (unsigned i = 0; i < 400; ++i)
            tb.load(c, 0x20000000 + (i % 256) * kWordBytes,
                    0x200 + (i % 4) * 4);
    System sys(cfg, tb.build());
    sys.enablePeriodicInvariantCheck(64);
    sys.run();

    EXPECT_EQ(sys.valueViolations(), 0u);
    EXPECT_EQ(sys.invariantViolations(), 0u);
}

TEST_P(AllProtocols, FalseSharedCountersRunClean)
{
    SystemConfig cfg = smallConfig(GetParam());
    TraceBuilder tb(cfg.numCores, 9);
    genFalseShareCounters(tb, cfg.numCores, 0x30000000, 300, 1, 2,
                          0x300);
    System sys(cfg, tb.build());
    sys.enablePeriodicInvariantCheck(64);
    sys.run();

    EXPECT_EQ(sys.valueViolations(), 0u);
    EXPECT_EQ(sys.invariantViolations(), 0u);
}

TEST_P(AllProtocols, ReadWriteSharingRunsClean)
{
    SystemConfig cfg = smallConfig(GetParam());
    TraceBuilder tb(cfg.numCores, 11);
    // All cores read and occasionally write a small shared pool:
    // maximal conflict pressure.
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        for (unsigned i = 0; i < 300; ++i) {
            const Addr a =
                0x40000000 + ((i * 7 + c * 13) % 64) * kWordBytes;
            if ((i + c) % 4 == 0)
                tb.store(c, a, 0x400 + (i % 8) * 4);
            else
                tb.load(c, a, 0x400 + (i % 8) * 4);
        }
    }
    System sys(cfg, tb.build());
    sys.enablePeriodicInvariantCheck(32);
    sys.run();

    EXPECT_EQ(sys.valueViolations(), 0u);
    EXPECT_EQ(sys.invariantViolations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, AllProtocols,
    ::testing::Values(ProtocolKind::MESI, ProtocolKind::ProtozoaSW,
                      ProtocolKind::ProtozoaSWMR,
                      ProtocolKind::ProtozoaMW),
    [](const ::testing::TestParamInfo<ProtocolKind> &info) {
        switch (info.param) {
          case ProtocolKind::MESI:         return "MESI";
          case ProtocolKind::ProtozoaSW:   return "SW";
          case ProtocolKind::ProtozoaSWMR: return "SWMR";
          case ProtocolKind::ProtozoaMW:   return "MW";
        }
        return "unknown";
    });

/** MW must eliminate the false-sharing ping-pong of Fig. 1. */
TEST(ProtocolComparison, MwEliminatesFalseSharingMisses)
{
    auto run = [](ProtocolKind protocol) {
        SystemConfig cfg = smallConfig(protocol);
        TraceBuilder tb(cfg.numCores, 5);
        genFalseShareCounters(tb, cfg.numCores, 0x50000000, 1000, 1, 2,
                              0x500);
        System sys(cfg, tb.build());
        sys.run();
        return sys.report();
    };

    const RunStats mesi = run(ProtocolKind::MESI);
    const RunStats mw = run(ProtocolKind::ProtozoaMW);

    // Each MESI counter update ping-pongs the line; MW caches disjoint
    // words concurrently, so after warmup there are no further misses.
    EXPECT_GT(mesi.l1.misses, 20u * 16u);
    EXPECT_LT(mw.l1.misses, mesi.l1.misses / 10);
}

} // namespace
} // namespace protozoa
