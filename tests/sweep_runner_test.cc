/**
 * @file
 * Tests for the parallel sweep runner: a multi-threaded sweep must
 * produce RunStats identical to the serial sweep, row for row, and
 * PROTOZOA_JOBS must control the worker count.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "protozoa/protozoa.hh"

namespace protozoa {
namespace {

/** Full field-by-field comparison, kernel wall-clock excluded. */
void
expectStatsIdentical(const RunStats &a, const RunStats &b,
                     const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(a.l1.loads, b.l1.loads);
    EXPECT_EQ(a.l1.stores, b.l1.stores);
    EXPECT_EQ(a.l1.hits, b.l1.hits);
    EXPECT_EQ(a.l1.misses, b.l1.misses);
    EXPECT_EQ(a.l1.invMsgsReceived, b.l1.invMsgsReceived);
    EXPECT_EQ(a.l1.blocksInvalidated, b.l1.blocksInvalidated);
    EXPECT_EQ(a.l1.usedDataBytes, b.l1.usedDataBytes);
    EXPECT_EQ(a.l1.unusedDataBytes, b.l1.unusedDataBytes);
    EXPECT_EQ(a.l1.ctrlBytes, b.l1.ctrlBytes);
    EXPECT_EQ(a.l1.blockSizeHist, b.l1.blockSizeHist);
    EXPECT_EQ(a.dir.requests, b.dir.requests);
    EXPECT_EQ(a.dir.l2Misses, b.dir.l2Misses);
    EXPECT_EQ(a.dir.recalls, b.dir.recalls);
    EXPECT_EQ(a.dir.memReadBytes, b.dir.memReadBytes);
    EXPECT_EQ(a.dir.memWriteBytes, b.dir.memWriteBytes);
    EXPECT_EQ(a.net.messages, b.net.messages);
    EXPECT_EQ(a.net.bytes, b.net.bytes);
    EXPECT_EQ(a.net.flits, b.net.flits);
    EXPECT_EQ(a.net.flitHops, b.net.flitHops);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    // Kernel counters are deterministic too; only wall time may vary.
    EXPECT_EQ(a.kernel.eventsScheduled, b.kernel.eventsScheduled);
    EXPECT_EQ(a.kernel.eventsExecuted, b.kernel.eventsExecuted);
    EXPECT_EQ(a.kernel.bucketScheduled, b.kernel.bucketScheduled);
    EXPECT_EQ(a.kernel.heapScheduled, b.kernel.heapScheduled);
    EXPECT_EQ(a.kernel.maxQueueDepth, b.kernel.maxQueueDepth);
}

std::vector<SweepJob>
smallSweep()
{
    std::vector<SweepJob> jobs;
    for (const char *bench :
         {"linear-regression", "histogram", "mat-mul", "canneal"}) {
        for (ProtocolKind kind :
             {ProtocolKind::MESI, ProtocolKind::ProtozoaMW}) {
            SweepJob job;
            job.bench = bench;
            job.cfg.protocol = kind;
            job.scale = 0.05;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

TEST(SweepRunner, ParallelMatchesSerialRowForRow)
{
    const auto jobs = smallSweep();
    const auto serial = runSweep(jobs, 1);
    const auto parallel = runSweep(jobs, 8);

    ASSERT_EQ(serial.size(), jobs.size());
    ASSERT_EQ(parallel.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        expectStatsIdentical(serial[i], parallel[i],
                             jobs[i].bench + "/" +
                                 protocolName(jobs[i].cfg.protocol));
        EXPECT_GT(serial[i].instructions, 0u);
    }
}

TEST(SweepRunner, ProgressReportsEveryJobExactlyOnce)
{
    const auto jobs = smallSweep();
    std::vector<unsigned> started(jobs.size(), 0);
    // The progress callback is serialized by the runner, so plain
    // vector writes are safe even with many workers.
    runSweep(jobs, 4, [&](std::size_t i, const SweepJob &job) {
        ASSERT_LT(i, started.size());
        EXPECT_EQ(job.bench, jobs[i].bench);
        ++started[i];
    });
    for (unsigned n : started)
        EXPECT_EQ(n, 1u);
}

TEST(SweepRunner, EnvJobsParsesAndFallsBack)
{
    setenv("PROTOZOA_JOBS", "7", 1);
    EXPECT_EQ(envJobs(), 7u);
    setenv("PROTOZOA_JOBS", "0", 1);   // invalid -> fallback path
    EXPECT_EQ(envJobs(3), 3u);
    unsetenv("PROTOZOA_JOBS");
    EXPECT_EQ(envJobs(5), 5u);
    EXPECT_GE(envJobs(), 1u);          // hardware default, at least 1
}

TEST(SweepRunner, EmptyJobListIsFine)
{
    EXPECT_TRUE(runSweep({}, 8).empty());
}

} // namespace
} // namespace protozoa