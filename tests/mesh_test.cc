/**
 * @file
 * Unit tests for the 4x4 mesh model: XY hop counts, flit accounting
 * (the Fig. 15 energy proxy), latency, and per-pair FIFO ordering.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/config.hh"
#include "common/event_queue.hh"
#include "noc/mesh.hh"

namespace protozoa {
namespace {

SystemConfig
cfg4x4()
{
    SystemConfig cfg;
    return cfg;
}

TEST(Mesh, HopCountsAreManhattan)
{
    EventQueue eq;
    SystemConfig cfg = cfg4x4();
    Mesh mesh(eq, cfg);

    EXPECT_EQ(mesh.hops(0, 0), 0u);
    EXPECT_EQ(mesh.hops(0, 1), 1u);    // same row
    EXPECT_EQ(mesh.hops(0, 4), 1u);    // same column
    EXPECT_EQ(mesh.hops(0, 5), 2u);    // diagonal neighbour
    EXPECT_EQ(mesh.hops(0, 15), 6u);   // corner to corner
    EXPECT_EQ(mesh.hops(15, 0), 6u);   // symmetric
    EXPECT_EQ(mesh.hops(3, 12), 6u);   // other diagonal
}

TEST(Mesh, FlitsRoundUp)
{
    EventQueue eq;
    SystemConfig cfg = cfg4x4();
    Mesh mesh(eq, cfg);
    EXPECT_EQ(mesh.flitsFor(1), 1u);
    EXPECT_EQ(mesh.flitsFor(16), 1u);
    EXPECT_EQ(mesh.flitsFor(17), 2u);
    EXPECT_EQ(mesh.flitsFor(72), 5u);   // 8B header + 64B data
}

TEST(Mesh, SendAccumulatesStats)
{
    EventQueue eq;
    SystemConfig cfg = cfg4x4();
    Mesh mesh(eq, cfg);

    mesh.send(0, 15, 72, [] {});      // 5 flits x 6 hops
    mesh.send(1, 2, 8, [] {});        // 1 flit x 1 hop
    eq.run();

    const NetStats &s = mesh.netStats();
    EXPECT_EQ(s.messages, 2u);
    EXPECT_EQ(s.bytes, 80u);
    EXPECT_EQ(s.flits, 6u);
    EXPECT_EQ(s.flitHops, 5u * 6u + 1u);
}

TEST(Mesh, LocalDeliveryCountsNoFlitHops)
{
    EventQueue eq;
    SystemConfig cfg = cfg4x4();
    Mesh mesh(eq, cfg);
    bool delivered = false;
    mesh.send(3, 3, 64, [&] { delivered = true; });
    eq.run();
    EXPECT_TRUE(delivered);
    EXPECT_EQ(mesh.netStats().flitHops, 0u);
}

TEST(Mesh, LatencyGrowsWithDistanceAndSize)
{
    EventQueue eq;
    SystemConfig cfg = cfg4x4();
    Mesh mesh(eq, cfg);

    const Cycle near_small = mesh.send(0, 1, 8, [] {});
    const Cycle far_small = mesh.send(0, 15, 8, [] {});
    const Cycle far_big = mesh.send(0, 15, 72, [] {});
    EXPECT_LT(near_small, far_small);
    EXPECT_LT(far_small, far_big);
    eq.run();
}

TEST(Mesh, PerPairFifoOrderIsPreserved)
{
    EventQueue eq;
    SystemConfig cfg = cfg4x4();
    Mesh mesh(eq, cfg);

    std::vector<int> order;
    // A big (slow) message followed by a small (fast) one on the same
    // channel must not reorder.
    mesh.send(0, 15, 1000, [&] { order.push_back(1); });
    mesh.send(0, 15, 8, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Mesh, DistinctPairsMayOvertake)
{
    EventQueue eq;
    SystemConfig cfg = cfg4x4();
    Mesh mesh(eq, cfg);

    std::vector<int> order;
    mesh.send(0, 15, 4000, [&] { order.push_back(1); });  // slow, far
    mesh.send(5, 6, 8, [&] { order.push_back(2); });      // fast, near
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(Mesh, ClearStatsResets)
{
    EventQueue eq;
    SystemConfig cfg = cfg4x4();
    Mesh mesh(eq, cfg);
    mesh.send(0, 1, 8, [] {});
    eq.run();
    EXPECT_GT(mesh.netStats().messages, 0u);
    mesh.clearStats();
    EXPECT_EQ(mesh.netStats().messages, 0u);
    EXPECT_EQ(mesh.netStats().flitHops, 0u);
}

} // namespace
} // namespace protozoa
