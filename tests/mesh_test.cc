/**
 * @file
 * Unit tests for the 4x4 mesh model: XY hop counts, flit accounting
 * (the Fig. 15 energy proxy), latency, and per-pair FIFO ordering.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/config.hh"
#include "common/event_queue.hh"
#include "noc/mesh.hh"

namespace protozoa {
namespace {

SystemConfig
cfg4x4()
{
    SystemConfig cfg;
    return cfg;
}

TEST(Mesh, HopCountsAreManhattan)
{
    EventQueue eq;
    SystemConfig cfg = cfg4x4();
    Mesh mesh(eq, cfg);

    EXPECT_EQ(mesh.hops(0, 0), 0u);
    EXPECT_EQ(mesh.hops(0, 1), 1u);    // same row
    EXPECT_EQ(mesh.hops(0, 4), 1u);    // same column
    EXPECT_EQ(mesh.hops(0, 5), 2u);    // diagonal neighbour
    EXPECT_EQ(mesh.hops(0, 15), 6u);   // corner to corner
    EXPECT_EQ(mesh.hops(15, 0), 6u);   // symmetric
    EXPECT_EQ(mesh.hops(3, 12), 6u);   // other diagonal
}

TEST(Mesh, FlitsRoundUp)
{
    EventQueue eq;
    SystemConfig cfg = cfg4x4();
    Mesh mesh(eq, cfg);
    EXPECT_EQ(mesh.flitsFor(1), 1u);
    EXPECT_EQ(mesh.flitsFor(16), 1u);
    EXPECT_EQ(mesh.flitsFor(17), 2u);
    EXPECT_EQ(mesh.flitsFor(72), 5u);   // 8B header + 64B data
}

TEST(Mesh, SendAccumulatesStats)
{
    EventQueue eq;
    SystemConfig cfg = cfg4x4();
    Mesh mesh(eq, cfg);

    mesh.send(0, 15, 72, [] {});      // 5 flits x 6 hops
    mesh.send(1, 2, 8, [] {});        // 1 flit x 1 hop
    eq.run();

    const NetStats &s = mesh.netStats();
    EXPECT_EQ(s.messages, 2u);
    EXPECT_EQ(s.bytes, 80u);
    EXPECT_EQ(s.flits, 6u);
    EXPECT_EQ(s.flitHops, 5u * 6u + 1u);
}

TEST(Mesh, LocalDeliveryCountsNoFlitHops)
{
    EventQueue eq;
    SystemConfig cfg = cfg4x4();
    Mesh mesh(eq, cfg);
    bool delivered = false;
    mesh.send(3, 3, 64, [&] { delivered = true; });
    eq.run();
    EXPECT_TRUE(delivered);
    EXPECT_EQ(mesh.netStats().flitHops, 0u);
}

TEST(Mesh, LatencyGrowsWithDistanceAndSize)
{
    EventQueue eq;
    SystemConfig cfg = cfg4x4();
    Mesh mesh(eq, cfg);

    const Cycle near_small = mesh.send(0, 1, 8, [] {});
    const Cycle far_small = mesh.send(0, 15, 8, [] {});
    const Cycle far_big = mesh.send(0, 15, 72, [] {});
    EXPECT_LT(near_small, far_small);
    EXPECT_LT(far_small, far_big);
    eq.run();
}

TEST(Mesh, PerPairFifoOrderIsPreserved)
{
    EventQueue eq;
    SystemConfig cfg = cfg4x4();
    Mesh mesh(eq, cfg);

    std::vector<int> order;
    // A big (slow) message followed by a small (fast) one on the same
    // channel must not reorder.
    mesh.send(0, 15, 1000, [&] { order.push_back(1); });
    mesh.send(0, 15, 8, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Mesh, DistinctPairsMayOvertake)
{
    EventQueue eq;
    SystemConfig cfg = cfg4x4();
    Mesh mesh(eq, cfg);

    std::vector<int> order;
    mesh.send(0, 15, 4000, [&] { order.push_back(1); });  // slow, far
    mesh.send(5, 6, 8, [&] { order.push_back(2); });      // fast, near
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(Mesh, ClearStatsResets)
{
    EventQueue eq;
    SystemConfig cfg = cfg4x4();
    Mesh mesh(eq, cfg);
    mesh.send(0, 1, 8, [] {});
    eq.run();
    EXPECT_GT(mesh.netStats().messages, 0u);
    mesh.clearStats();
    EXPECT_EQ(mesh.netStats().messages, 0u);
    EXPECT_EQ(mesh.netStats().flitHops, 0u);
}

// Satellite regression: clearStats() must also reset the per-pair
// FIFO arrival clamps, or a post-reset fast message would still be
// held behind a pre-reset slow one.
TEST(Mesh, ClearStatsResetsFifoState)
{
    EventQueue eq;
    SystemConfig cfg = cfg4x4();
    Mesh mesh(eq, cfg);

    std::vector<int> order;
    mesh.send(0, 15, 4000, [&] { order.push_back(1); });  // slow
    mesh.clearStats();
    mesh.send(0, 15, 8, [&] { order.push_back(2); });     // fast
    eq.run();
    // With the FIFO clamp reset the fast message is free to arrive
    // on its natural (earlier) schedule.
    EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

// In-flight tracking backs the deadlock watchdog's message census: a
// recorded message is visible until its arrival cycle passes, then
// pruned lazily.
TEST(Mesh, TracksInFlightMessagesUntilArrival)
{
    EventQueue eq;
    SystemConfig cfg = cfg4x4();
    Mesh mesh(eq, cfg);
    mesh.enableTracking();

    const Cycle delay = mesh.send(0, 15, 72, [] {});
    Mesh::QueuedMsg q;
    q.src = 0;
    q.dst = 15;
    q.arrival = eq.now() + delay;
    q.type = "DATA";
    q.region = 0x40;
    q.range = WordRange(0, 7);
    mesh.noteQueued(q);

    unsigned seen = 0;
    mesh.forEachQueued([&](const Mesh::QueuedMsg &m) {
        ++seen;
        EXPECT_EQ(m.src, 0u);
        EXPECT_EQ(m.dst, 15u);
        EXPECT_STREQ(m.type, "DATA");
        EXPECT_EQ(m.region, 0x40u);
    });
    EXPECT_EQ(seen, 1u);

    eq.run();
    eq.schedule(1, [] {});   // advance now past the arrival cycle
    eq.run();
    seen = 0;
    mesh.forEachQueued([&](const Mesh::QueuedMsg &) { ++seen; });
    EXPECT_EQ(seen, 0u);
}

TEST(Mesh, TrackingIsOffByDefault)
{
    EventQueue eq;
    SystemConfig cfg = cfg4x4();
    Mesh mesh(eq, cfg);
    EXPECT_FALSE(mesh.trackingEnabled());

    Mesh::QueuedMsg q;
    q.arrival = 100;
    mesh.noteQueued(q);   // dropped: the measurement path records nothing
    unsigned seen = 0;
    mesh.forEachQueued([&](const Mesh::QueuedMsg &) { ++seen; });
    EXPECT_EQ(seen, 0u);
}

TEST(MeshDeath, RejectsOutOfRangeNodes)
{
    EventQueue eq;
    SystemConfig cfg = cfg4x4();
    Mesh mesh(eq, cfg);
    EXPECT_DEATH(mesh.send(16, 0, 8, [] {}), "out of range");
    EXPECT_DEATH(mesh.send(0, 99, 8, [] {}), "out of range");
}

SystemConfig
jitterCfg(std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.faultInjection = true;
    cfg.faultJitterMax = 16;
    cfg.faultReorderProb = 0.25;
    cfg.seed = seed;
    return cfg;
}

// Fault injection must preserve same-(src,dst) FIFO order: it is the
// one network ordering property the protocol relies on.
TEST(Mesh, JitterPreservesSamePairFifo)
{
    EventQueue eq;
    SystemConfig cfg = jitterCfg(42);
    Mesh mesh(eq, cfg);

    std::vector<int> order;
    for (int i = 0; i < 200; ++i)
        mesh.send(0, 15, 8, [&order, i] { order.push_back(i); });
    eq.run();
    ASSERT_EQ(order.size(), 200u);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(order[i], i);
}

// ... while messages on distinct pairs do get reordered by the long
// holds (that is the point of the injector).
TEST(Mesh, JitterReordersAcrossPairs)
{
    EventQueue eq;
    SystemConfig cfg = jitterCfg(42);
    Mesh mesh(eq, cfg);

    // Same hop count and size for every pair: without injection these
    // deliver in issue order.
    std::vector<int> order;
    for (int i = 0; i < 64; ++i) {
        const unsigned src = i % 4;
        const unsigned dst = 4 + i % 4;
        mesh.send(src, dst, 8, [&order, i] { order.push_back(i); });
    }
    eq.run();
    ASSERT_EQ(order.size(), 64u);
    bool inverted = false;
    for (std::size_t i = 1; i < order.size(); ++i)
        inverted |= order[i] < order[i - 1];
    EXPECT_TRUE(inverted);
}

TEST(Mesh, JitterIsDeterministicPerSeed)
{
    auto schedule = [](std::uint64_t seed) {
        EventQueue eq;
        SystemConfig cfg = jitterCfg(seed);
        Mesh mesh(eq, cfg);
        std::vector<Cycle> lat;
        for (int i = 0; i < 100; ++i)
            lat.push_back(mesh.send(i % 16, (i * 7) % 16, 8, [] {}));
        eq.run();
        return lat;
    };
    EXPECT_EQ(schedule(7), schedule(7));
    EXPECT_NE(schedule(7), schedule(8));
}

// The injector draws from a counter-based hash of (seed, pair, seq),
// so a pair's fault schedule depends only on how many messages that
// pair has carried — not on how sends across different pairs happen to
// interleave globally. This is what lets the sharded parallel engine
// (where per-shard execution order is not a single global sequence)
// reproduce exactly the fault schedules of a sequential run.
TEST(Mesh, JitterScheduleIsOrderIndependentAcrossPairs)
{
    // Two interleavings of the same per-pair send sequences: pairwise
    // round-robin vs all of pair A first, then all of pair B.
    auto latencies = [](bool roundRobin) {
        EventQueue eq;
        SystemConfig cfg = jitterCfg(1234);
        Mesh mesh(eq, cfg);
        std::vector<Cycle> a, b;
        if (roundRobin) {
            for (int i = 0; i < 100; ++i) {
                a.push_back(mesh.send(0, 5, 8, [] {}));
                b.push_back(mesh.send(2, 7, 8, [] {}));
            }
        } else {
            for (int i = 0; i < 100; ++i)
                a.push_back(mesh.send(0, 5, 8, [] {}));
            for (int i = 0; i < 100; ++i)
                b.push_back(mesh.send(2, 7, 8, [] {}));
        }
        eq.run();
        return std::make_pair(a, b);
    };
    EXPECT_EQ(latencies(true), latencies(false));
}

// Committed digest of one fault schedule: any change to the draw
// function, hash constants, or per-pair stream layout shows up here.
// Update kGoldenFaultDigest only for a deliberate injector change.
TEST(Mesh, FaultScheduleDigestIsStable)
{
    constexpr std::uint64_t kGoldenFaultDigest = 0x91f359970e34a7d1ULL;

    EventQueue eq;
    SystemConfig cfg = jitterCfg(42);
    Mesh mesh(eq, cfg);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (int i = 0; i < 256; ++i) {
        const Cycle lat =
            mesh.send(i % 16, (i * 7 + 3) % 16, 8 + 8 * (i % 3), [] {});
        for (unsigned byte = 0; byte < 8; ++byte) {
            h ^= (lat >> (8 * byte)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    }
    eq.run();
    EXPECT_EQ(h, kGoldenFaultDigest)
        << "fault schedule digest changed: 0x" << std::hex << h;
}

TEST(Mesh, InjectionOffMatchesDefaultLatency)
{
    EventQueue eq1, eq2;
    SystemConfig plain = cfg4x4();
    SystemConfig off = jitterCfg(3);
    off.faultInjection = false;
    Mesh a(eq1, plain), b(eq2, off);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(a.send(i % 16, (i * 5) % 16, 8 + 8 * (i % 4), [] {}),
                  b.send(i % 16, (i * 5) % 16, 8 + 8 * (i % 4), [] {}));
    }
    eq1.run();
    eq2.run();
}

} // namespace
} // namespace protozoa
