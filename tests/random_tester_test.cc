/**
 * @file
 * Random protocol fuzzing (paper Sec. 3.6). Tiny L1s and L2 tiles
 * force evictions, inclusive recalls, and writeback races; the golden
 * oracle checks every load and the invariant scanner runs frequently.
 */

#include <gtest/gtest.h>

#include "sim/random_tester.hh"

namespace protozoa {
namespace {

struct TesterCase
{
    ProtocolKind protocol;
    std::uint64_t seed;
};

class RandomTesterSweep : public ::testing::TestWithParam<TesterCase>
{
};

TEST_P(RandomTesterSweep, NoViolations)
{
    RandomTester::Params p;
    p.protocol = GetParam().protocol;
    p.seed = GetParam().seed;
    p.accessesPerCore = 1500;
    p.regions = 12;
    p.checkPeriod = 50;

    const auto result = RandomTester::run(p);
    EXPECT_EQ(result.valueViolations, 0u);
    EXPECT_EQ(result.invariantViolations, 0u);
    EXPECT_GT(result.stats.l1.misses, 0u);
}

std::vector<TesterCase>
sweepCases()
{
    std::vector<TesterCase> cases;
    for (auto protocol :
         {ProtocolKind::MESI, ProtocolKind::ProtozoaSW,
          ProtocolKind::ProtozoaSWMR, ProtocolKind::ProtozoaMW}) {
        for (std::uint64_t seed = 1; seed <= 5; ++seed)
            cases.push_back({protocol, seed});
    }
    return cases;
}

std::string
caseName(const ::testing::TestParamInfo<TesterCase> &info)
{
    std::string name = protocolName(info.param.protocol);
    for (auto &ch : name) {
        if (ch == '-' || ch == '+')
            ch = '_';
    }
    return name + "_seed" + std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(Protocols, RandomTesterSweep,
                         ::testing::ValuesIn(sweepCases()), caseName);

/** Two-region pool: extreme conflict pressure. */
TEST(RandomTesterEdge, TinyRegionPool)
{
    RandomTester::Params p;
    p.protocol = ProtocolKind::ProtozoaMW;
    p.regions = 2;
    p.accessesPerCore = 1200;
    p.writeFraction = 0.6;
    p.checkPeriod = 16;
    const auto result = RandomTester::run(p);
    EXPECT_EQ(result.valueViolations, 0u);
    EXPECT_EQ(result.invariantViolations, 0u);
}

/** Read-only pool: everyone should end up a stable sharer. */
TEST(RandomTesterEdge, ReadOnlyPool)
{
    RandomTester::Params p;
    p.protocol = ProtocolKind::ProtozoaMW;
    p.writeFraction = 0.0;
    p.accessesPerCore = 800;
    const auto result = RandomTester::run(p);
    EXPECT_EQ(result.valueViolations, 0u);
    EXPECT_EQ(result.invariantViolations, 0u);
}

/** Write-storm: continuous ownership migration. */
TEST(RandomTesterEdge, WriteStorm)
{
    for (auto protocol :
         {ProtocolKind::ProtozoaSW, ProtocolKind::ProtozoaSWMR,
          ProtocolKind::ProtozoaMW}) {
        RandomTester::Params p;
        p.protocol = protocol;
        p.writeFraction = 1.0;
        p.accessesPerCore = 1000;
        p.regions = 6;
        p.checkPeriod = 32;
        const auto result = RandomTester::run(p);
        EXPECT_EQ(result.valueViolations, 0u)
            << protocolName(protocol);
        EXPECT_EQ(result.invariantViolations, 0u)
            << protocolName(protocol);
    }
}

/** Alternative predictor policies must be equally correct. */
TEST(RandomTesterEdge, PredictorPolicies)
{
    for (auto predictor :
         {PredictorKind::FullRegion, PredictorKind::Fixed,
          PredictorKind::PcSpatial, PredictorKind::WordOnly}) {
        RandomTester::Params p;
        p.protocol = ProtocolKind::ProtozoaMW;
        p.predictor = predictor;
        p.accessesPerCore = 900;
        p.checkPeriod = 40;
        const auto result = RandomTester::run(p);
        EXPECT_EQ(result.valueViolations, 0u);
        EXPECT_EQ(result.invariantViolations, 0u);
    }
}

} // namespace
} // namespace protozoa
