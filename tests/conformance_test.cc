/**
 * @file
 * Tests for the conformance harness: transition-coverage tracking
 * (documented-inventory checks, merge, report), the deadlock watchdog
 * (firing with a diagnostic dump on a deliberately wedged transaction),
 * network fault injection determinism at the System level, the
 * 128-byte-region regression, and a small stress-campaign smoke run.
 */

#include <gtest/gtest.h>

#include "protocol_driver.hh"
#include "sim/stress_campaign.hh"

namespace protozoa {
namespace {

TEST(ConformanceCoverage, RecordsDocumentedTransitions)
{
    ConformanceCoverage cov(ProtocolKind::MESI);
    EXPECT_EQ(cov.l1Count(L1State::I, L1Event::Load, L1State::IS), 0u);
    cov.recordL1(L1State::I, L1Event::Load, L1State::IS);
    cov.recordL1(L1State::I, L1Event::Load, L1State::IS);
    EXPECT_EQ(cov.l1Count(L1State::I, L1Event::Load, L1State::IS), 2u);

    cov.recordDir(DirState::NP, DirEvent::GetS, DirState::W);
    EXPECT_EQ(cov.dirCount(DirState::NP, DirEvent::GetS, DirState::W),
              1u);

    EXPECT_GT(cov.documentedRows(), 0u);
    EXPECT_EQ(cov.hitRows(), 2u);
    EXPECT_FALSE(cov.complete());   // plenty of note-less rows unhit
}

TEST(ConformanceCoverageDeath, UndocumentedL1TransitionPanics)
{
    ConformanceCoverage cov(ProtocolKind::MESI);
    // A dirty block cannot silently lose its data: M never goes to I
    // on a Data fill.
    EXPECT_DEATH(cov.recordL1(L1State::M, L1Event::Data, L1State::I),
                 "undocumented L1 transition");
}

TEST(ConformanceCoverageDeath, ProtocolMaskIsEnforced)
{
    // Multiple concurrent writers exist only under Protozoa-MW; the
    // same directory tuple is legal there but undocumented under MESI.
    ConformanceCoverage mw(ProtocolKind::ProtozoaMW);
    mw.recordDir(DirState::MW, DirEvent::GetX, DirState::MW);
    EXPECT_EQ(mw.dirCount(DirState::MW, DirEvent::GetX, DirState::MW),
              1u);

    ConformanceCoverage mesi(ProtocolKind::MESI);
    EXPECT_DEATH(
        mesi.recordDir(DirState::MW, DirEvent::GetX, DirState::MW),
        "undocumented directory transition");
}

TEST(ConformanceCoverage, MergeAccumulates)
{
    ConformanceCoverage a(ProtocolKind::ProtozoaMW);
    ConformanceCoverage b(ProtocolKind::ProtozoaMW);
    a.recordL1(L1State::I, L1Event::Load, L1State::IS);
    b.recordL1(L1State::I, L1Event::Load, L1State::IS);
    b.recordL1(L1State::S, L1Event::Store, L1State::SM);
    a.merge(b);
    EXPECT_EQ(a.l1Count(L1State::I, L1Event::Load, L1State::IS), 2u);
    EXPECT_EQ(a.l1Count(L1State::S, L1Event::Store, L1State::SM), 1u);
    EXPECT_EQ(a.hitRows(), 2u);
}

TEST(ConformanceCoverage, ReportListsMissedRows)
{
    ConformanceCoverage cov(ProtocolKind::ProtozoaSWMR);
    cov.recordL1(L1State::I, L1Event::Load, L1State::IS);
    const std::string rep = cov.report();
    EXPECT_NE(rep.find("documented rows hit"), std::string::npos);
    EXPECT_NE(rep.find("MISSED"), std::string::npos);
    // Noted rows carry their explanation.
    EXPECT_NE(rep.find("explained:"), std::string::npos);
}

TEST(ConformanceCoverage, InventoryIsWellFormed)
{
    std::size_t n = 0;
    const L1TransitionDoc *l1 = ConformanceCoverage::l1Inventory(n);
    ASSERT_GT(n, 0u);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NE(l1[i].protocols & P_ALL, 0u) << i;
        EXPECT_NE(l1[i].note, nullptr) << i;
    }
    const DirTransitionDoc *dir = ConformanceCoverage::dirInventory(n);
    ASSERT_GT(n, 0u);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NE(dir[i].protocols & P_ALL, 0u) << i;
        EXPECT_NE(dir[i].note, nullptr) << i;
    }
}

TEST(ConformanceCoverage, SystemRunsRecordTransitions)
{
    SystemConfig cfg;
    cfg.protocol = ProtocolKind::ProtozoaMW;
    ProtocolDriver d(cfg);
    const Addr a = 0x7000;
    d.load(0, a);
    d.store(1, a, 42);
    d.load(2, a);

    const ConformanceCoverage &cov = d.sys.conformance();
    EXPECT_GE(cov.l1Count(L1State::I, L1Event::Load, L1State::IS), 2u);
    EXPECT_GE(cov.l1Count(L1State::I, L1Event::Store, L1State::IM), 1u);
    EXPECT_GE(cov.dirCount(DirState::NP, DirEvent::GetS, DirState::W),
              1u);
    EXPECT_GE(cov.l1Count(L1State::M, L1Event::FwdGetS, L1State::S),
              1u);
}

// The acceptance scenario for the watchdog: drop the DATA response of
// a read miss so the transaction wedges, and check that the watchdog
// fires with a diagnostic dump instead of hanging.
TEST(DeadlockWatchdog, FiresOnWedgedTransaction)
{
    SystemConfig cfg;
    cfg.protocol = ProtocolKind::ProtozoaMW;
    ProtocolDriver d(cfg);

    std::string diagnostic;
    d.sys.enableWatchdog(500, [&](const std::string &report) {
        diagnostic = report;
    });
    d.sys.setMessageFilter([](const CoherenceMsg &msg) {
        return msg.type != MsgType::DATA;   // wedge every fill
    });

    d.issue(0, 0x9000, false);
    d.drain();   // terminates because the one-shot handler disarms

    EXPECT_EQ(d.sys.watchdogFirings(), 1u);
    EXPECT_EQ(d.sys.droppedMessages(), 1u);
    EXPECT_NE(diagnostic.find("deadlock watchdog"), std::string::npos);
    EXPECT_NE(diagnostic.find("MSHR"), std::string::npos);
    EXPECT_NE(diagnostic.find("9000"), std::string::npos);
    // The dump includes the home directory's view of the region.
    EXPECT_NE(diagnostic.find("dir"), std::string::npos);
    EXPECT_NE(diagnostic.find("waiting UNBLOCK"), std::string::npos);
    // ... and the in-flight message census (empty here: the wedging
    // filter dropped the DATA before it entered the mesh).
    EXPECT_NE(diagnostic.find("in-flight messages: 0"),
              std::string::npos);
}

// The census must list a message that is genuinely on the wire when
// the watchdog fires: hold the fill hostage by inflating its latency
// via the message-size path is not possible, so instead enqueue a
// message with a far-future arrival directly and scan the tracker.
TEST(DeadlockWatchdog, InFlightCensusListsQueuedMessages)
{
    SystemConfig cfg;
    cfg.protocol = ProtocolKind::ProtozoaMW;
    ProtocolDriver d(cfg);

    std::string diagnostic;
    d.sys.enableWatchdog(500, [&](const std::string &report) {
        diagnostic = report;
    });
    d.sys.setMessageFilter([](const CoherenceMsg &msg) {
        return msg.type != MsgType::DATA;
    });

    Mesh::QueuedMsg q;
    q.src = 2;
    q.dst = 5;
    q.arrival = 1'000'000;   // far beyond the watchdog horizon
    q.type = "DATA";
    q.region = 0x9000;
    q.range = WordRange(0, 7);
    d.sys.mesh().noteQueued(q);

    d.issue(0, 0x9000, false);
    d.drain();

    EXPECT_NE(diagnostic.find("in-flight messages: 1"),
              std::string::npos);
    EXPECT_NE(diagnostic.find("2 -> 5 (l1): DATA region 0x9000"),
              std::string::npos);
}

TEST(DeadlockWatchdog, StaysQuietOnHealthyRuns)
{
    SystemConfig cfg;
    cfg.protocol = ProtocolKind::ProtozoaSWMR;
    cfg.watchdogCycles = 2000;   // auto-enabled via config
    ProtocolDriver d(cfg);
    for (unsigned i = 0; i < 8; ++i) {
        d.store(i % 4, 0xa000 + i * 8, i);
        EXPECT_EQ(d.load((i + 1) % 4, 0xa000 + i * 8), i);
    }
    EXPECT_EQ(d.sys.watchdogFirings(), 0u);
    d.expectClean();
}

// Satellite regression: 128-byte regions exercise word index 15, which
// the old literal-32/31u mask code silently mishandled on alternative
// WordMask widths.
TEST(RegionBytes128, FullRegionProtocolRoundTrip)
{
    for (auto protocol :
         {ProtocolKind::MESI, ProtocolKind::ProtozoaMW}) {
        SystemConfig cfg;
        cfg.protocol = protocol;
        cfg.regionBytes = 128;
        ProtocolDriver d(cfg);

        const Addr region = 0xb000;
        const Addr top_word = region + 15 * kWordBytes;
        d.store(0, top_word, 777);
        EXPECT_EQ(d.load(1, top_word), 777u) << protocolName(protocol);
        d.store(2, top_word, 888);
        EXPECT_EQ(d.load(3, top_word), 888u) << protocolName(protocol);
        d.expectClean();
    }
}

TEST(StressCampaign, SmokeRunPassesAndMergesCoverage)
{
    CampaignSpec spec;
    spec.protocols = {ProtocolKind::ProtozoaMW};
    spec.profiles = {{"mild", true, 4, 0.02}};
    spec.patterns = {RandomTester::Pattern::Uniform,
                     RandomTester::Pattern::UpgradeHeavy};
    spec.seeds = {1, 2};
    spec.accessesPerCore = 300;
    spec.workers = 2;

    const CampaignResult res = runCampaign(spec);
    EXPECT_EQ(res.jobs, 4u);
    EXPECT_EQ(res.accesses, 4u * 300u * 16u);   // 16 cores per system
    EXPECT_EQ(res.valueViolations, 0u);
    EXPECT_EQ(res.invariantViolations, 0u);
    ASSERT_EQ(res.coverage.size(), 1u);
    EXPECT_GT(res.coverage[0].hitRows(), 0u);
    EXPECT_NE(res.report().find("stress campaign"), std::string::npos);
}

TEST(StressCampaign, SmallSystemGridRunsFourCoreJobs)
{
    CampaignSpec spec = CampaignSpec::smallSystem();
    EXPECT_EQ(spec.numCores, 4u);
    EXPECT_EQ(spec.meshCols * spec.meshRows, 4u);
    EXPECT_EQ(spec.seeds.size(), 80u);   // ~10x the default seed count

    // Shrink the grid for a smoke run; the per-job system size is the
    // point under test.
    spec.protocols = {ProtocolKind::ProtozoaMW};
    spec.profiles = {{"wild", true, 16, 0.10}};
    spec.patterns = {RandomTester::Pattern::FalseShareBoundary};
    spec.seeds = {1, 2, 3};
    spec.accessesPerCore = 300;
    spec.workers = 2;

    const CampaignResult res = runCampaign(spec);
    EXPECT_EQ(res.jobs, 3u);
    EXPECT_EQ(res.accesses, 3u * 300u * 4u);   // 4 cores per system
    EXPECT_EQ(res.valueViolations, 0u);
    EXPECT_EQ(res.invariantViolations, 0u);
}

TEST(FaultInjection, RandomTesterIsSeedDeterministic)
{
    RandomTester::Params p;
    p.protocol = ProtocolKind::ProtozoaMW;
    p.accessesPerCore = 300;
    p.faultInjection = true;
    p.faultJitterMax = 8;
    p.faultReorderProb = 0.1;
    p.seed = 3;

    const auto a = RandomTester::run(p);
    const auto b = RandomTester::run(p);
    EXPECT_EQ(a.valueViolations, 0u);
    EXPECT_EQ(a.invariantViolations, 0u);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.net.flitHops, b.stats.net.flitHops);
    EXPECT_EQ(a.coverage.hitRows(), b.coverage.hitRows());
}

} // namespace
} // namespace protozoa
