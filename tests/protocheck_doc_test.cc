/**
 * @file
 * Locks docs/PROTOCHECK.md to reality. The playbook's minimized-repro
 * example lives in tests/snippets/protocheck_repro.inc, which is (a)
 * #included below so it compiles and runs as real code, and (b)
 * compared character-for-character against the fenced block in the
 * doc — so the example in the playbook is guaranteed to compile and
 * pass exactly as pasted.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "protocol_driver.hh"

using namespace protozoa;

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

TEST(ProtocheckDoc, ReproExampleCompilesAndRunsClean)
{
#include "snippets/protocheck_repro.inc"
}

TEST(ProtocheckDoc, ReproExampleMatchesDocVerbatim)
{
    const std::string root = PROTOZOA_SOURCE_DIR;
    const std::string doc = readFile(root + "/docs/PROTOCHECK.md");
    const std::string snip =
        readFile(root + "/tests/snippets/protocheck_repro.inc");
    ASSERT_FALSE(doc.empty()) << "docs/PROTOCHECK.md missing";
    ASSERT_FALSE(snip.empty())
        << "tests/snippets/protocheck_repro.inc missing";
    EXPECT_NE(doc.find(snip), std::string::npos)
        << "the fenced repro example in docs/PROTOCHECK.md has "
           "drifted from tests/snippets/protocheck_repro.inc";
}

TEST(ProtocheckDoc, PlaybookIsLinkedFromReadmeAndDesign)
{
    const std::string root = PROTOZOA_SOURCE_DIR;
    EXPECT_NE(readFile(root + "/README.md").find("docs/PROTOCHECK.md"),
              std::string::npos);
    EXPECT_NE(readFile(root + "/DESIGN.md").find("docs/PROTOCHECK.md"),
              std::string::npos);
}
