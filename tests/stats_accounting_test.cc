/**
 * @file
 * Cross-module accounting invariants.
 *
 * Every coherence message has exactly one L1 endpoint (the other end
 * is a directory tile), and the L1s classify exactly the bytes that
 * crossed the mesh: header bytes at send/receive, payload bytes at
 * block death (fills) or at transmission (writebacks). Therefore,
 * after finalization:
 *
 *     sum over L1s (ctrlBytes + used + unused)  ==  mesh bytes
 *
 * This ties the Fig. 9/10 numbers to the Fig. 15 numbers and catches
 * any unclassified or double-counted traffic.
 */

#include <gtest/gtest.h>

#include "protozoa/protozoa.hh"

namespace protozoa {
namespace {

void
expectBalanced(const char *bench, ProtocolKind protocol, double scale)
{
    SystemConfig cfg;
    cfg.protocol = protocol;
    const BenchSpec &spec = findBenchmark(bench);
    System sys(cfg, spec.gen(cfg, scale));
    sys.run();

    const RunStats stats = sys.report();
    EXPECT_EQ(stats.l1.totalBytes(), stats.net.bytes)
        << bench << " under " << protocolName(protocol);
}

TEST(TrafficAccounting, L1BytesMatchMeshBytes)
{
    for (auto protocol :
         {ProtocolKind::MESI, ProtocolKind::ProtozoaSW,
          ProtocolKind::ProtozoaSWMR, ProtocolKind::ProtozoaMW}) {
        expectBalanced("histogram", protocol, 0.2);
        expectBalanced("canneal", protocol, 0.1);
        expectBalanced("x264", protocol, 0.2);
    }
}

TEST(TrafficAccounting, BalancedUnderCachePressure)
{
    SystemConfig cfg;
    cfg.protocol = ProtocolKind::ProtozoaMW;
    cfg.l1Sets = 2;
    cfg.l2BytesPerTile = 2048;   // recalls guaranteed

    Rng rng(31);
    TraceBuilder tb(cfg.numCores, 8);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        for (unsigned i = 0; i < 800; ++i) {
            const Addr a =
                0x30000000 + rng.below(4096) * cfg.regionBytes +
                rng.below(8) * kWordBytes;
            if (rng.chance(0.4))
                tb.store(c, a, 0x20, 2);
            else
                tb.load(c, a, 0x20, 2);
        }
    }
    System sys(cfg, tb.build());
    sys.run();
    const RunStats stats = sys.report();
    EXPECT_GT(stats.dir.recalls, 0u);
    EXPECT_EQ(stats.l1.totalBytes(), stats.net.bytes);
}

TEST(TrafficAccounting, HitsGenerateNoTraffic)
{
    SystemConfig cfg;
    cfg.protocol = ProtocolKind::MESI;
    TraceBuilder tb(cfg.numCores, 9);
    // Each core hammers one private word: 1 miss, N-1 hits per core.
    for (unsigned c = 0; c < cfg.numCores; ++c)
        for (unsigned i = 0; i < 200; ++i)
            tb.load(c, 0x40000000 + c * 4096, 0x30, 1);
    System sys(cfg, tb.build());
    sys.run();
    const RunStats stats = sys.report();
    EXPECT_EQ(stats.l1.misses, cfg.numCores);
    // Traffic: exactly one GETS + DATA + UNBLOCK per core.
    EXPECT_EQ(stats.net.messages, 3u * cfg.numCores);
    EXPECT_EQ(stats.l1.totalBytes(), stats.net.bytes);
}

TEST(TrafficAccounting, DataBytesAreWordMultiples)
{
    SystemConfig cfg;
    cfg.protocol = ProtocolKind::ProtozoaMW;
    const RunStats stats = runBenchmark(cfg, "string-match", 0.2);
    EXPECT_EQ(stats.l1.usedDataBytes % kWordBytes, 0u);
    EXPECT_EQ(stats.l1.unusedDataBytes % kWordBytes, 0u);
}

TEST(TrafficAccounting, InstructionAndRefCountsExact)
{
    SystemConfig cfg;
    cfg.protocol = ProtocolKind::MESI;
    TraceBuilder tb(cfg.numCores, 10);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        tb.load(c, 0x1000, 0x40, 5);   // 5 gap + 1 ref
        tb.store(c, 0x2000, 0x44, 3);  // 3 gap + 1 ref
    }
    System sys(cfg, tb.build());
    sys.run();
    const RunStats stats = sys.report();
    EXPECT_EQ(stats.instructions, (5u + 1 + 3 + 1) * cfg.numCores);
    EXPECT_EQ(stats.l1.loads, cfg.numCores);
    EXPECT_EQ(stats.l1.stores, cfg.numCores);
}

} // namespace
} // namespace protozoa
