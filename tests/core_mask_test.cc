/**
 * @file
 * Property tests for the multi-word CoreSet (common/core_mask.hh) at
 * the widths the wide-mesh configurations actually exercise — 1, 63,
 * 64, 65 and 255 cores — plus a differential check that every <=64-
 * core mask keeps raw() bit-identical to the old single-uint64_t
 * representation (the state-fingerprint and bit-identity guards feed
 * raw() into their digests, so this compatibility is load-bearing).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/core_mask.hh"

namespace protozoa {
namespace {

const unsigned kWidths[] = {1, 63, 64, 65, 255};

/** Deterministic xorshift for reproducible random core picks. */
std::uint64_t
nextRand(std::uint64_t &s)
{
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
}

TEST(CoreSetProperty, FirstNMatchesPerBitConstruction)
{
    for (const unsigned n : kWidths) {
        const CoreSet mask = CoreSet::firstN(n);
        EXPECT_EQ(mask.count(), n) << "width " << n;
        CoreSet manual;
        for (unsigned c = 0; c < n; ++c) {
            EXPECT_TRUE(mask.test(c)) << "width " << n << " core " << c;
            manual.set(c);
        }
        if (n < kMaxCores)
            EXPECT_FALSE(mask.test(n));
        EXPECT_EQ(mask, manual);
    }
    EXPECT_TRUE(CoreSet::firstN(0).none());
    EXPECT_EQ(CoreSet::firstN(kMaxCores).count(), kMaxCores);
}

TEST(CoreSetProperty, SetResetRoundTripAtBoundaries)
{
    for (const unsigned n : kWidths) {
        const unsigned c = n - 1; // the top core of each width
        CoreSet mask;
        EXPECT_FALSE(mask.test(c));
        mask.set(c);
        EXPECT_TRUE(mask.test(c));
        EXPECT_TRUE(mask.any());
        EXPECT_TRUE(mask.only(c));
        EXPECT_EQ(mask.count(), 1u);
        // Boundary neighbours stay clear (word-crossing off-by-ones).
        if (c > 0)
            EXPECT_FALSE(mask.test(c - 1));
        if (c + 1 < kMaxCores)
            EXPECT_FALSE(mask.test(c + 1));
        mask.reset(c);
        EXPECT_TRUE(mask.none());
        EXPECT_EQ(mask, CoreSet());
    }
}

TEST(CoreSetProperty, ForEachVisitsAscendingExactly)
{
    for (const unsigned n : kWidths) {
        CoreSet mask;
        std::vector<unsigned> want;
        // A spread of cores including both word boundaries.
        for (unsigned c = 0; c < n; c += (n > 8 ? 7 : 1)) {
            mask.set(c);
            want.push_back(c);
        }
        mask.set(n - 1);
        if (want.empty() || want.back() != n - 1)
            want.push_back(n - 1);

        std::vector<unsigned> got;
        mask.forEach([&](CoreId c) { got.push_back(c); });
        EXPECT_EQ(got, want) << "width " << n;
        EXPECT_EQ(mask.count(), want.size());
    }
}

TEST(CoreSetProperty, AlgebraMatchesPerBitSemantics)
{
    std::uint64_t seed = 0x5eedULL;
    for (const unsigned n : kWidths) {
        CoreSet a, b;
        for (unsigned i = 0; i < 48; ++i) {
            a.set(static_cast<CoreId>(nextRand(seed) % n));
            b.set(static_cast<CoreId>(nextRand(seed) % n));
        }
        const CoreSet uni = a | b;
        const CoreSet diff = a.minus(b);
        bool overlap = false;
        for (unsigned c = 0; c < n; ++c) {
            EXPECT_EQ(uni.test(c), a.test(c) || b.test(c));
            EXPECT_EQ(diff.test(c), a.test(c) && !b.test(c));
            overlap = overlap || (a.test(c) && b.test(c));
        }
        EXPECT_EQ(a.intersects(b), overlap) << "width " << n;
        EXPECT_FALSE(diff.intersects(b));

        CoreSet acc = a;
        acc |= b;
        EXPECT_EQ(acc, uni);
    }
}

TEST(CoreSetProperty, HighAnyTracksWordsAboveTheFirst)
{
    CoreSet low;
    low.set(0);
    low.set(63);
    EXPECT_FALSE(low.highAny());

    CoreSet high = low;
    high.set(64);
    EXPECT_TRUE(high.highAny());
    high.reset(64);
    EXPECT_FALSE(high.highAny());

    CoreSet top;
    top.set(kMaxCores - 1);
    EXPECT_TRUE(top.highAny());
    EXPECT_EQ(top.raw(), 0u); // nothing in word 0
}

/**
 * Differential check against the retired representation: for every
 * <=64-core mask, raw() must equal the plain uint64_t the old CoreSet
 * held, operation by operation.
 */
TEST(CoreSetDifferential, RawBitIdenticalToUint64ForNarrowMasks)
{
    for (const unsigned n : {1u, 17u, 63u, 64u}) {
        CoreSet mask;
        std::uint64_t ref = 0;
        std::uint64_t seed = 0xd1ffULL + n;
        for (unsigned step = 0; step < 512; ++step) {
            const unsigned c =
                static_cast<unsigned>(nextRand(seed) % n);
            if (nextRand(seed) & 1) {
                mask.set(static_cast<CoreId>(c));
                ref |= std::uint64_t(1) << c;
            } else {
                mask.reset(static_cast<CoreId>(c));
                ref &= ~(std::uint64_t(1) << c);
            }
            ASSERT_EQ(mask.raw(), ref)
                << "width " << n << " step " << step;
            ASSERT_EQ(mask.count(),
                      static_cast<unsigned>(__builtin_popcountll(ref)));
            ASSERT_EQ(mask.none(), ref == 0);
        }
        // firstN mirrors the old ((1 << n) - 1) idiom without the
        // n == 64 shift overflow.
        const std::uint64_t all =
            n >= 64 ? ~std::uint64_t(0)
                    : (std::uint64_t(1) << n) - 1;
        EXPECT_EQ(CoreSet::firstN(n).raw(), all);
    }
}

TEST(CoreSetDifferential, FromRawRoundTrips)
{
    const std::uint64_t patterns[] = {
        0, 1, 0x8000000000000000ULL, 0xdeadbeefcafebabeULL,
        ~std::uint64_t(0)};
    for (const std::uint64_t p : patterns) {
        const CoreSet mask = CoreSet::fromRaw(p);
        EXPECT_EQ(mask.raw(), p);
        EXPECT_FALSE(mask.highAny());
        EXPECT_EQ(mask.count(),
                  static_cast<unsigned>(__builtin_popcountll(p)));
    }
}

TEST(CoreSetProperty, ToHexMatchesPlainUint64Formatting)
{
    char buf[32];
    const std::uint64_t patterns[] = {0, 0x1, 0xff0addbeULL,
                                      0x8000000000000000ULL};
    for (const std::uint64_t p : patterns) {
        std::snprintf(buf, sizeof(buf), "%llx",
                      static_cast<unsigned long long>(p));
        EXPECT_EQ(CoreSet::fromRaw(p).toHex(), buf);
    }
    // Wide masks print the high word first, zero-padded below.
    CoreSet wide;
    wide.set(64);
    wide.set(0);
    EXPECT_EQ(wide.toHex(), "10000000000000001");
}

} // namespace
} // namespace protozoa
