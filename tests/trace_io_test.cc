/**
 * @file
 * Unit tests for trace file I/O: format round-trip, comment and
 * error handling, and end-to-end simulation from a parsed trace.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hh"
#include "protozoa/protozoa.hh"
#include "workload/trace_io.hh"

namespace protozoa {
namespace {

TEST(TraceIo, ParsesRecords)
{
    std::istringstream in(
        "# comment line\n"
        "\n"
        "0 L 10000000 4d00 16\n"
        "2 S 80000040 4d08 3\n");
    Workload wl = readTrace(in, 4);
    ASSERT_EQ(wl.size(), 4u);

    TraceRecord rec;
    ASSERT_TRUE(wl[0]->next(rec));
    EXPECT_EQ(rec.addr, 0x10000000u);
    EXPECT_EQ(rec.pc, 0x4d00u);
    EXPECT_FALSE(rec.isWrite);
    EXPECT_EQ(rec.gapInstrs, 16u);
    EXPECT_FALSE(wl[0]->next(rec));

    ASSERT_TRUE(wl[2]->next(rec));
    EXPECT_EQ(rec.addr, 0x80000040u);
    EXPECT_TRUE(rec.isWrite);
    EXPECT_EQ(rec.gapInstrs, 3u);

    EXPECT_FALSE(wl[1]->next(rec));
    EXPECT_FALSE(wl[3]->next(rec));
}

TEST(TraceIo, WordAlignsAddresses)
{
    std::istringstream in("0 L 1003 0 1\n");
    Workload wl = readTrace(in, 1);
    TraceRecord rec;
    ASSERT_TRUE(wl[0]->next(rec));
    EXPECT_EQ(rec.addr, 0x1000u);
}

TEST(TraceIo, RoundTrip)
{
    SystemConfig cfg;
    TraceBuilder tb(cfg.numCores, 4);
    genFalseShareCounters(tb, cfg.numCores, 0x2000, 25, 1, 3, 0x40);
    genPrivateStream(tb, cfg.numCores, 0x100000, 10, 8, 4, 0.5, 2,
                     0x80);

    std::ostringstream out;
    writeTrace(out, tb.build());

    std::istringstream in(out.str());
    Workload restored = readTrace(in, cfg.numCores);

    // Regenerate the original for comparison.
    TraceBuilder tb2(cfg.numCores, 4);
    genFalseShareCounters(tb2, cfg.numCores, 0x2000, 25, 1, 3, 0x40);
    genPrivateStream(tb2, cfg.numCores, 0x100000, 10, 8, 4, 0.5, 2,
                     0x80);
    Workload original = tb2.build();

    for (unsigned c = 0; c < cfg.numCores; ++c) {
        TraceRecord a, b;
        while (true) {
            const bool more_a = original[c]->next(a);
            const bool more_b = restored[c]->next(b);
            ASSERT_EQ(more_a, more_b);
            if (!more_a)
                break;
            EXPECT_EQ(a.addr, b.addr);
            EXPECT_EQ(a.pc, b.pc);
            EXPECT_EQ(a.isWrite, b.isWrite);
            EXPECT_EQ(a.gapInstrs, b.gapInstrs);
        }
    }
}

TEST(TraceIo, SimulatesParsedTrace)
{
    // A two-line trace per core exercising real sharing.
    std::ostringstream text;
    for (unsigned c = 0; c < 16; ++c) {
        text << c << " L 90000000 100 2\n";
        text << c << " S " << std::hex << (0x90000040 + c * 8)
             << std::dec << " 104 2\n";
    }
    std::istringstream in(text.str());

    SystemConfig cfg;
    cfg.protocol = ProtocolKind::ProtozoaMW;
    System sys(cfg, readTrace(in, cfg.numCores));
    sys.run();
    EXPECT_EQ(sys.valueViolations(), 0u);
    const RunStats stats = sys.report();
    EXPECT_EQ(stats.l1.loads, 16u);
    EXPECT_EQ(stats.l1.stores, 16u);
}

TEST(TraceIoDeath, RejectsBadCore)
{
    std::istringstream in("9 L 1000 0 1\n");
    EXPECT_DEATH(readTrace(in, 4), "out of range");
}

TEST(TraceIoDeath, RejectsBadOp)
{
    std::istringstream in("0 X 1000 0 1\n");
    EXPECT_DEATH(readTrace(in, 4), "op must be L or S");
}

TEST(TraceIoDeath, RejectsMalformedLine)
{
    std::istringstream in("0 L zz\n");
    EXPECT_DEATH(readTrace(in, 4), "malformed");
}

// Satellite hardening: a record followed by extra tokens used to parse
// silently, hiding column mistakes (e.g. a shifted field).
TEST(TraceIoDeath, RejectsTrailingGarbage)
{
    std::istringstream in("0 L 1000 0 1 oops\n");
    EXPECT_DEATH(readTrace(in, 4), "trailing garbage");
}

TEST(TraceIoDeath, RejectsDuplicatedRecordOnOneLine)
{
    std::istringstream in("0 L 1000 0 1 0 S 2000 0 1\n");
    EXPECT_DEATH(readTrace(in, 4), "trailing garbage");
}

// Property test: randomized workloads survive a write -> read round
// trip exactly (comments and formatting are the writer's own).
TEST(TraceIo, RandomizedRoundTripProperty)
{
    Rng rng(0xfeed);
    const unsigned cores = 4;
    std::vector<std::vector<TraceRecord>> original(cores);

    Workload wl;
    for (unsigned c = 0; c < cores; ++c) {
        const std::size_t n = 50 + rng.below(100);
        for (std::size_t i = 0; i < n; ++i) {
            TraceRecord rec;
            rec.addr = wordAlign(rng.next() & 0xffffffffffull);
            rec.pc = rng.next() & 0xffffffffull;
            rec.isWrite = rng.chance(0.5);
            rec.gapInstrs = static_cast<std::uint16_t>(rng.below(
                0x10000));
            original[c].push_back(rec);
        }
        wl.push_back(std::make_unique<VectorTrace>(
            std::vector<TraceRecord>(original[c])));
    }

    std::ostringstream out;
    writeTrace(out, std::move(wl));
    std::istringstream in(out.str());
    Workload restored = readTrace(in, cores);

    for (unsigned c = 0; c < cores; ++c) {
        TraceRecord rec;
        for (const TraceRecord &want : original[c]) {
            ASSERT_TRUE(restored[c]->next(rec));
            EXPECT_EQ(rec.addr, want.addr);
            EXPECT_EQ(rec.pc, want.pc);
            EXPECT_EQ(rec.isWrite, want.isWrite);
            EXPECT_EQ(rec.gapInstrs, want.gapInstrs);
        }
        EXPECT_FALSE(restored[c]->next(rec));
    }
}

TEST(TraceIoDeath, RejectsMissingFile)
{
    EXPECT_DEATH(readTraceFile("/nonexistent/trace.txt", 4),
                 "cannot open");
}

} // namespace
} // namespace protozoa
