/**
 * @file
 * Bit-identical output guard for the word-mask data path.
 *
 * The bulk mask/segment operations are pure strength reduction: they
 * must not change a single statistic of any run. This test locks a
 * small (scale 0.05, the CI smoke scale) MESI and Protozoa-MW paper
 * benchmark run to a committed digest of every deterministic RunStats
 * field. Any change to protocol behavior, message ordering, fill
 * contents, or stats accounting moves the digest; wall-clock metrics
 * are excluded.
 *
 * If a deliberate behavioral change lands, rerun this test and update
 * kGoldenDigest to the value printed in the failure message.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "protozoa/protozoa.hh"

namespace protozoa {
namespace {

class Digest
{
  public:
    void
    add(std::uint64_t v)
    {
        // FNV-1a over the value's bytes, 64-bit folded.
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    }

    std::uint64_t value() const { return h; }

  private:
    std::uint64_t h = 0xcbf29ce484222325ULL;
};

void
addStats(Digest &d, const RunStats &s)
{
    d.add(s.l1.loads);
    d.add(s.l1.stores);
    d.add(s.l1.hits);
    d.add(s.l1.misses);
    d.add(s.l1.invMsgsReceived);
    d.add(s.l1.blocksInvalidated);
    d.add(s.l1.usedDataBytes);
    d.add(s.l1.unusedDataBytes);
    for (const std::uint64_t v : s.l1.ctrlBytes)
        d.add(v);
    for (const std::uint64_t v : s.l1.blockSizeHist)
        d.add(v);
    d.add(s.dir.requests);
    d.add(s.dir.l2Misses);
    d.add(s.dir.recalls);
    d.add(s.dir.memReadBytes);
    d.add(s.dir.memWriteBytes);
    d.add(s.dir.bloomFalseProbes);
    d.add(s.dir.threeHopDirect);
    d.add(s.dir.ownedOneOwnerOnly);
    d.add(s.dir.ownedOneOwnerPlusSharers);
    d.add(s.dir.ownedMultiOwner);
    d.add(s.net.messages);
    d.add(s.net.bytes);
    d.add(s.net.flits);
    d.add(s.net.flitHops);
    // Kernel counters are deterministic; wallSeconds is not.
    d.add(s.kernel.eventsScheduled);
    d.add(s.kernel.eventsExecuted);
    d.add(s.kernel.bucketScheduled);
    d.add(s.kernel.heapScheduled);
    d.add(s.kernel.maxQueueDepth);
    d.add(s.instructions);
    d.add(s.cycles);
}

TEST(BitIdenticalGuard, SmallRunDigestIsStable)
{
    constexpr double kScale = 0.05;
    constexpr std::uint64_t kGoldenDigest = 0xff0addbe33116b92ULL;

    Digest d;
    for (ProtocolKind kind :
         {ProtocolKind::MESI, ProtocolKind::ProtozoaMW}) {
        for (const char *bench : {"apache", "canneal"}) {
            SystemConfig cfg;
            cfg.protocol = kind;
            addStats(d, runBenchmark(cfg, bench, kScale));
        }
    }

    EXPECT_EQ(d.value(), kGoldenDigest)
        << "stats digest changed: 0x" << std::hex << d.value()
        << " (update kGoldenDigest only for a deliberate behavioral "
           "change)";
}

} // namespace
} // namespace protozoa
