/**
 * @file
 * Bit-identical output guard for the word-mask data path.
 *
 * The bulk mask/segment operations are pure strength reduction: they
 * must not change a single statistic of any run. This test locks a
 * small (scale 0.05, the CI smoke scale) MESI and Protozoa-MW paper
 * benchmark run to a committed digest of every deterministic RunStats
 * field. Any change to protocol behavior, message ordering, fill
 * contents, or stats accounting moves the digest; wall-clock metrics
 * are excluded.
 *
 * If a deliberate behavioral change lands, rerun this test and update
 * kGoldenDigest to the value printed in the failure message.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "protozoa/protozoa.hh"
#include "stats_digest.hh"

namespace protozoa {
namespace {

TEST(BitIdenticalGuard, SmallRunDigestIsStable)
{
    constexpr double kScale = 0.05;
    constexpr std::uint64_t kGoldenDigest = 0xff0addbe33116b92ULL;

    Digest d;
    for (ProtocolKind kind :
         {ProtocolKind::MESI, ProtocolKind::ProtozoaMW}) {
        for (const char *bench : {"apache", "canneal"}) {
            SystemConfig cfg;
            cfg.protocol = kind;
            addStats(d, runBenchmark(cfg, bench, kScale));
        }
    }

    EXPECT_EQ(d.value(), kGoldenDigest)
        << "stats digest changed: 0x" << std::hex << d.value()
        << " (update kGoldenDigest only for a deliberate behavioral "
           "change)";
}

} // namespace
} // namespace protozoa
