/**
 * @file
 * Determinism guarantees of the sharded parallel engine.
 *
 * The engine's contract is that the event history is a pure function
 * of the configuration and seed — never of the worker-thread count or
 * of OS scheduling. These tests pin that down empirically:
 *
 *  - the full stats digest (protocol + kernel counters) is identical
 *    at 1, 2, and 4 worker threads, for both MESI and Protozoa-MW,
 *    with fault-injection jitter off and on;
 *  - repeating a multi-threaded run reproduces the same digest
 *    (no hidden wall-clock or scheduling dependence);
 *  - against the sequential oracle kernel, the workload-invariant
 *    statistics (instructions, loads, stores) match exactly, and the
 *    race- and timing-sensitive counters (hits/misses, directory
 *    requests, cycles, network traffic) agree to within 1%. Bit-exact
 *    equality across the two kernels is structurally out of reach:
 *    the sequential kernel interleaves same-cycle events at different
 *    tiles by global insertion order, while the sharded engine orders
 *    them per tile, so races that resolve within one cycle can take
 *    the other (equally legal) branch — which can also flip an
 *    individual access between hit and miss. See DESIGN.md §12;
 *  - coherence stays clean under the parallel engine (golden-memory
 *    value checking on, zero violations).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "protozoa/protozoa.hh"
#include "stats_digest.hh"

namespace protozoa {
namespace {

constexpr double kScale = 0.05;

std::uint64_t
digestAt(ProtocolKind kind, unsigned threads, bool jitter)
{
    SystemConfig cfg;
    cfg.protocol = kind;
    cfg.simThreads = threads;
    cfg.faultInjection = jitter;
    cfg.seed = 77;
    Digest d;
    for (const char *bench : {"apache", "canneal"})
        addStats(d, runBenchmark(cfg, bench, kScale));
    return d.value();
}

TEST(ParallelDeterminism, DigestIndependentOfThreadCount)
{
    for (ProtocolKind kind :
         {ProtocolKind::MESI, ProtocolKind::ProtozoaMW}) {
        for (bool jitter : {false, true}) {
            const std::uint64_t one = digestAt(kind, 1, jitter);
            EXPECT_EQ(one, digestAt(kind, 2, jitter))
                << "2-thread digest diverged (jitter=" << jitter << ")";
            EXPECT_EQ(one, digestAt(kind, 4, jitter))
                << "4-thread digest diverged (jitter=" << jitter << ")";
        }
    }
}

/**
 * The per-(src,dst) lookahead matrix gives far tile pairs wider safe
 * windows than the old scalar minimum; an 8x8 mesh maximizes that
 * spread (corner-to-corner is 14 hops, adjacent is 1). The digest must
 * stay a pure function of config+seed there too.
 */
TEST(ParallelDeterminism, LookaheadMatrixDigestLockedOnWideMesh)
{
    SystemConfig base;
    base.protocol = ProtocolKind::ProtozoaMW;
    base.numCores = 64;
    base.l2Tiles = 64;
    base.meshCols = 8;
    base.meshRows = 8;
    base.seed = 41;

    std::uint64_t first = 0;
    for (unsigned threads : {1u, 2u, 4u}) {
        SystemConfig cfg = base;
        cfg.simThreads = threads;
        Digest d;
        addStats(d, runBenchmark(cfg, "apache", 0.01));
        if (threads == 1)
            first = d.value();
        else
            EXPECT_EQ(first, d.value())
                << "wide-mesh digest diverged at " << threads
                << " threads";
    }
}

TEST(ParallelDeterminism, RepeatedRunReproduces)
{
    const std::uint64_t a = digestAt(ProtocolKind::ProtozoaMW, 4, true);
    const std::uint64_t b = digestAt(ProtocolKind::ProtozoaMW, 4, true);
    EXPECT_EQ(a, b);
}

TEST(ParallelDeterminism, DemandStatsMatchSequentialKernel)
{
    for (ProtocolKind kind :
         {ProtocolKind::MESI, ProtocolKind::ProtozoaMW}) {
        SystemConfig cfg;
        cfg.protocol = kind;
        cfg.seed = 77;
        cfg.simThreads = 0; // sequential oracle kernel
        const RunStats seq = runBenchmark(cfg, "apache", kScale);
        cfg.simThreads = 2;
        const RunStats par = runBenchmark(cfg, "apache", kScale);

        // Workload invariants are identical: every access is issued
        // and retired regardless of interleaving...
        EXPECT_EQ(seq.instructions, par.instructions);
        EXPECT_EQ(seq.l1.loads, par.l1.loads);
        EXPECT_EQ(seq.l1.stores, par.l1.stores);

        // ...while within-cycle tie-break differences leave only a
        // sub-percent wobble in the race- and timing-sensitive
        // counters (a race resolving the other way can flip an access
        // between hit and miss).
        const auto near = [](std::uint64_t a, std::uint64_t b) {
            const std::uint64_t hi = std::max(a, b);
            const std::uint64_t lo = std::min(a, b);
            return (hi - lo) * 100 <= hi;
        };
        EXPECT_TRUE(near(seq.l1.hits, par.l1.hits))
            << seq.l1.hits << " vs " << par.l1.hits;
        EXPECT_TRUE(near(seq.l1.misses, par.l1.misses))
            << seq.l1.misses << " vs " << par.l1.misses;
        EXPECT_TRUE(near(seq.dir.requests, par.dir.requests))
            << seq.dir.requests << " vs " << par.dir.requests;
        EXPECT_TRUE(near(seq.dir.l2Misses, par.dir.l2Misses))
            << seq.dir.l2Misses << " vs " << par.dir.l2Misses;
        EXPECT_TRUE(near(seq.dir.recalls, par.dir.recalls))
            << seq.dir.recalls << " vs " << par.dir.recalls;
        EXPECT_TRUE(near(seq.cycles, par.cycles))
            << seq.cycles << " vs " << par.cycles;
        EXPECT_TRUE(near(seq.net.messages, par.net.messages))
            << seq.net.messages << " vs " << par.net.messages;
        EXPECT_TRUE(near(seq.net.bytes, par.net.bytes))
            << seq.net.bytes << " vs " << par.net.bytes;
    }
}

TEST(ParallelDeterminism, ValueCheckingCleanUnderParallelEngine)
{
    SystemConfig cfg;
    cfg.protocol = ProtocolKind::ProtozoaMW;
    cfg.simThreads = 4;
    cfg.checkValues = true;
    cfg.seed = 99;
    const BenchSpec &spec = findBenchmark("canneal");
    System sys(cfg, spec.gen(cfg, kScale));
    sys.run();
    EXPECT_EQ(sys.valueViolations(), 0u);
    EXPECT_EQ(sys.report().instructions,
              [&] {
                  SystemConfig s = cfg;
                  s.simThreads = 0;
                  System ref(s, spec.gen(s, kScale));
                  ref.run();
                  return ref.report().instructions;
              }());
}

} // namespace
} // namespace protozoa
