/**
 * @file
 * Unit tests for stats containers, derived metrics, and the trend
 * arrows used to render Table 1.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"
#include "sim/stats_report.hh"

namespace protozoa {
namespace {

TEST(L1Stats, MergeAccumulates)
{
    L1Stats a, b;
    a.loads = 10;
    a.misses = 2;
    a.usedDataBytes = 100;
    a.ctrlBytes[0] = 8;
    a.blockSizeHist[1] = 3;
    b.loads = 5;
    b.misses = 1;
    b.unusedDataBytes = 50;
    b.ctrlBytes[0] = 16;
    b.blockSizeHist[8] = 2;

    a.merge(b);
    EXPECT_EQ(a.loads, 15u);
    EXPECT_EQ(a.misses, 3u);
    EXPECT_EQ(a.usedDataBytes, 100u);
    EXPECT_EQ(a.unusedDataBytes, 50u);
    EXPECT_EQ(a.dataBytes(), 150u);
    EXPECT_EQ(a.ctrlBytes[0], 24u);
    EXPECT_EQ(a.blockSizeHist[1], 3u);
    EXPECT_EQ(a.blockSizeHist[8], 2u);
}

TEST(L1Stats, CtrlBytesTotalSumsAllClasses)
{
    L1Stats s;
    for (unsigned i = 0; i < kNumCtrlClasses; ++i)
        s.ctrlBytes[i] = i + 1;
    EXPECT_EQ(s.ctrlBytesTotal(), 1u + 2 + 3 + 4 + 5 + 6);
    EXPECT_EQ(s.totalBytes(), s.ctrlBytesTotal());
}

TEST(RunStats, MpkiComputation)
{
    RunStats r;
    r.l1.misses = 50;
    r.instructions = 10'000;
    EXPECT_DOUBLE_EQ(r.mpki(), 5.0);
    r.instructions = 0;
    EXPECT_DOUBLE_EQ(r.mpki(), 0.0);
}

TEST(RunStats, UsedDataFraction)
{
    RunStats r;
    r.l1.usedDataBytes = 30;
    r.l1.unusedDataBytes = 70;
    EXPECT_DOUBLE_EQ(r.usedDataFraction(), 0.3);

    RunStats empty;
    EXPECT_DOUBLE_EQ(empty.usedDataFraction(), 1.0);
}

TEST(TrafficBreakdown, SplitsControlAndData)
{
    RunStats r;
    r.l1.usedDataBytes = 100;
    r.l1.unusedDataBytes = 60;
    r.l1.ctrlBytes[0] = 40;
    const TrafficBreakdown tb = trafficBreakdown(r);
    EXPECT_DOUBLE_EQ(tb.usedData, 100.0);
    EXPECT_DOUBLE_EQ(tb.unusedData, 60.0);
    EXPECT_DOUBLE_EQ(tb.control, 40.0);
    EXPECT_DOUBLE_EQ(tb.total(), 200.0);
}

TEST(Geomean, KnownValues)
{
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-9);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Mean, KnownValues)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(TrendArrow, Bands)
{
    // Paper Table 1 bands: = within 10%, ^ 10-33%, ^^ >33%, ^^^ >50%.
    EXPECT_EQ(trendArrow(100, 100), "=");
    EXPECT_EQ(trendArrow(100, 109), "=");
    EXPECT_EQ(trendArrow(100, 120), "^");
    EXPECT_EQ(trendArrow(100, 140), "^^");
    EXPECT_EQ(trendArrow(100, 160), "^^^");
    EXPECT_EQ(trendArrow(100, 85), "v");
    EXPECT_EQ(trendArrow(100, 50), "vv");
    EXPECT_EQ(trendArrow(0, 0), "=");
    EXPECT_EQ(trendArrow(0, 5), "++");
}

TEST(TextTable, FormatsAlignedColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "22222"});
    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
    // Every row has the same line length (fixed-width columns).
    std::istringstream is(out);
    std::string line;
    std::vector<std::size_t> lens;
    while (std::getline(is, line))
        lens.push_back(line.size());
    ASSERT_GE(lens.size(), 4u);
}

TEST(TextTable, HelpersFormatNumbers)
{
    EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
    EXPECT_EQ(TextTable::pct(0.5), "50%");
    EXPECT_EQ(TextTable::pct(0.123, 1), "12.3%");
}

TEST(CtrlClassNames, Stable)
{
    EXPECT_STREQ(ctrlClassName(CtrlClass::Req), "REQ");
    EXPECT_STREQ(ctrlClassName(CtrlClass::Fwd), "FWD");
    EXPECT_STREQ(ctrlClassName(CtrlClass::Inv), "INV");
    EXPECT_STREQ(ctrlClassName(CtrlClass::Ack), "ACK");
    EXPECT_STREQ(ctrlClassName(CtrlClass::Nack), "NACK");
    EXPECT_STREQ(ctrlClassName(CtrlClass::DataHdr), "DHDR");
}

} // namespace
} // namespace protozoa
