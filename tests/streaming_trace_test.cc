/**
 * @file
 * Streaming trace front end tests: PZTR binary round-trip against the
 * in-memory reference, text/binary writer equivalence, chunk-level
 * corruption and truncation detection, generator-stream determinism
 * and seek semantics, and an end-to-end simulation digest lock between
 * a fully materialized workload and its streamed twin.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "protozoa/protozoa.hh"
#include "stats_digest.hh"
#include "workload/streaming_trace.hh"
#include "workload/trace_io.hh"

namespace protozoa {
namespace {

std::vector<std::vector<TraceRecord>>
randomRecords(unsigned cores, std::uint64_t seed, std::size_t lo,
              std::size_t hi)
{
    Rng rng(seed);
    std::vector<std::vector<TraceRecord>> recs(cores);
    for (unsigned c = 0; c < cores; ++c) {
        const std::size_t n = lo + rng.below(hi - lo);
        for (std::size_t i = 0; i < n; ++i) {
            TraceRecord r;
            r.addr = wordAlign(rng.next() & 0xffffffffffull);
            r.pc = rng.next() & 0xffffffffull;
            r.isWrite = rng.chance(0.4);
            r.gapInstrs = static_cast<std::uint16_t>(rng.below(0x100));
            recs[c].push_back(r);
        }
    }
    return recs;
}

void
writeBinaryFile(const std::string &path,
                const std::vector<std::vector<TraceRecord>> &recs,
                std::size_t chunk_records = 64)
{
    std::ofstream out(path, std::ios::binary);
    TraceWriter w(out, TraceWriter::Format::Binary,
                  static_cast<unsigned>(recs.size()), chunk_records);
    // Interleave cores so chunks from different cores alternate in the
    // file — the reader must route chunks, not assume grouping.
    std::size_t longest = 0;
    for (const auto &v : recs)
        longest = std::max(longest, v.size());
    for (std::size_t i = 0; i < longest; ++i)
        for (unsigned c = 0; c < recs.size(); ++c)
            if (i < recs[c].size())
                w.append(c, recs[c][i]);
    w.finish();
}

void
expectSameStream(TraceSource &got,
                 const std::vector<TraceRecord> &want)
{
    TraceRecord r;
    for (const TraceRecord &w : want) {
        ASSERT_TRUE(got.next(r));
        EXPECT_EQ(r.addr, w.addr);
        EXPECT_EQ(r.pc, w.pc);
        EXPECT_EQ(r.isWrite, w.isWrite);
        EXPECT_EQ(r.gapInstrs, w.gapInstrs);
    }
    EXPECT_FALSE(got.next(r));
}

TEST(StreamingTrace, BinaryRoundTrip)
{
    const unsigned cores = 4;
    const auto recs = randomRecords(cores, 0xbeef, 100, 400);
    const std::string path = "streaming_trace_test_rt.pztr";
    writeBinaryFile(path, recs);

    std::string err;
    auto file = StreamingTraceFile::open(path, &err);
    ASSERT_NE(file, nullptr) << err;
    EXPECT_EQ(file->cores(), cores);
    Workload wl = file->makeWorkload();
    ASSERT_EQ(wl.size(), cores);
    for (unsigned c = 0; c < cores; ++c)
        expectSameStream(*wl[c], recs[c]);
    std::remove(path.c_str());
}

TEST(StreamingTrace, TextWriterMatchesLegacyFormat)
{
    // The incremental text writer must produce a stream readTrace()
    // parses back to the identical records.
    const unsigned cores = 3;
    const auto recs = randomRecords(cores, 0xf00d, 20, 60);

    std::ostringstream out;
    {
        TraceWriter w(out, TraceWriter::Format::Text, cores);
        for (unsigned c = 0; c < cores; ++c)
            for (const TraceRecord &r : recs[c])
                w.append(c, r);
    } // dtor finishes
    std::istringstream in(out.str());
    Workload wl = readTrace(in, cores);
    for (unsigned c = 0; c < cores; ++c)
        expectSameStream(*wl[c], recs[c]);
}

TEST(StreamingTrace, RecordsWrittenCounts)
{
    std::ostringstream out;
    TraceWriter w(out, TraceWriter::Format::Binary, 2, 8);
    TraceRecord r;
    for (int i = 0; i < 21; ++i)
        w.append(i % 2, r);
    w.finish();
    EXPECT_EQ(w.recordsWritten(), 21u);
}

TEST(StreamingTrace, SeekToReplaysForwardAndBackward)
{
    const unsigned cores = 2;
    const auto recs = randomRecords(cores, 0xcafe, 200, 300);
    const std::string path = "streaming_trace_test_seek.pztr";
    writeBinaryFile(path, recs, 32);

    std::string err;
    auto file = StreamingTraceFile::open(path, &err);
    ASSERT_NE(file, nullptr) << err;
    Workload wl = file->makeWorkload();

    // Consume some records on both cores, then seek core 0 backwards
    // (which rewinds the shared file) and core 1 forward again.
    TraceRecord r;
    for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(wl[0]->next(r));
        ASSERT_TRUE(wl[1]->next(r));
    }
    ASSERT_TRUE(wl[0]->seekTo(10));
    ASSERT_TRUE(wl[1]->seekTo(50));
    EXPECT_EQ(wl[0]->cursor(), 10u);
    EXPECT_EQ(wl[1]->cursor(), 50u);

    ASSERT_TRUE(wl[0]->next(r));
    EXPECT_EQ(r.addr, recs[0][10].addr);
    ASSERT_TRUE(wl[1]->next(r));
    EXPECT_EQ(r.addr, recs[1][50].addr);
    std::remove(path.c_str());
}

TEST(StreamingTrace, OpenRejectsBadHeader)
{
    const std::string path = "streaming_trace_test_bad.pztr";
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a trace file";
    }
    std::string err;
    EXPECT_EQ(StreamingTraceFile::open(path, &err), nullptr);
    EXPECT_NE(err.find("magic"), std::string::npos) << err;
    std::remove(path.c_str());

    EXPECT_EQ(StreamingTraceFile::open("no_such_file.pztr", &err),
              nullptr);
    EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
}

TEST(StreamingTraceDeath, DetectsPayloadCorruption)
{
    const auto recs = randomRecords(2, 0xd00d, 100, 200);
    const std::string path = "streaming_trace_test_crc.pztr";
    writeBinaryFile(path, recs, 32);

    // Flip one payload byte well past the first chunk header.
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(16 + 20 + 11); // header + chunk header + into payload
        char b;
        f.seekg(16 + 20 + 11);
        f.get(b);
        f.seekp(16 + 20 + 11);
        f.put(static_cast<char>(b ^ 0x40));
    }
    std::string err;
    auto file = StreamingTraceFile::open(path, &err);
    ASSERT_NE(file, nullptr) << err;
    Workload wl = file->makeWorkload();
    TraceRecord r;
    EXPECT_DEATH(
        {
            while (wl[0]->next(r)) {
            }
        },
        "CRC mismatch");
    std::remove(path.c_str());
}

TEST(StreamingTraceDeath, DetectsTruncatedChunk)
{
    const auto recs = randomRecords(2, 0xd11d, 100, 200);
    const std::string path = "streaming_trace_test_trunc.pztr";
    writeBinaryFile(path, recs, 32);

    // Truncate mid-payload of the final chunk.
    std::uintmax_t size;
    {
        std::ifstream f(path, std::ios::binary | std::ios::ate);
        size = static_cast<std::uintmax_t>(f.tellg());
    }
    ASSERT_EQ(truncate(path.c_str(), static_cast<long>(size - 7)), 0);

    std::string err;
    auto file = StreamingTraceFile::open(path, &err);
    ASSERT_NE(file, nullptr) << err;
    Workload wl = file->makeWorkload();
    TraceRecord r;
    EXPECT_DEATH(
        {
            while (wl[0]->next(r) || wl[1]->next(r)) {
            }
        },
        "truncated chunk");
    std::remove(path.c_str());
}

TEST(StreamingTrace, GeneratorIsDeterministicAndSeekable)
{
    const auto refill = syntheticStreamRefill(42, 1, 4, 128);
    GeneratorTraceSource a(refill, 1000, 128);
    GeneratorTraceSource b(refill, 1000, 128);

    // Same stream regardless of consumption pattern.
    std::vector<TraceRecord> first;
    TraceRecord r;
    while (a.next(r))
        first.push_back(r);
    EXPECT_EQ(first.size(), 1000u);

    ASSERT_TRUE(b.seekTo(500));
    ASSERT_TRUE(b.next(r));
    EXPECT_EQ(r.addr, first[500].addr);
    EXPECT_EQ(r.pc, first[500].pc);
    ASSERT_TRUE(b.seekTo(3));
    ASSERT_TRUE(b.next(r));
    EXPECT_EQ(r.addr, first[3].addr);
    EXPECT_FALSE(b.seekTo(1001));
}

TEST(StreamingTrace, StreamedSimulationMatchesMaterialized)
{
    // Digest lock: running from StreamingTraceSource views must be
    // bit-identical to running the same records from VectorTraces.
    SystemConfig cfg;
    cfg.protocol = ProtocolKind::ProtozoaMW;
    cfg.seed = 77;

    // Materialize the synthetic stream per core.
    std::vector<std::vector<TraceRecord>> recs(cfg.numCores);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        GeneratorTraceSource g(
            syntheticStreamRefill(9, c, cfg.numCores, 256), 2000, 256);
        TraceRecord r;
        while (g.next(r))
            recs[c].push_back(r);
    }

    Workload vec;
    for (unsigned c = 0; c < cfg.numCores; ++c)
        vec.push_back(std::make_unique<VectorTrace>(
            std::vector<TraceRecord>(recs[c])));
    System ref(cfg, std::move(vec));
    ref.run();
    Digest dref;
    addStats(dref, ref.report());

    const std::string path = "streaming_trace_test_sim.pztr";
    writeBinaryFile(path, recs, 256);
    std::string err;
    auto file = StreamingTraceFile::open(path, &err);
    ASSERT_NE(file, nullptr) << err;
    System sys(cfg, file->makeWorkload());
    sys.run();
    Digest dstream;
    addStats(dstream, sys.report());

    EXPECT_EQ(dref.value(), dstream.value());
    std::remove(path.c_str());
}

} // namespace
} // namespace protozoa
