/**
 * @file
 * Unit tests for the broken-upgrade retry path (Sec. 3.3): a probe
 * invalidates the to-be-upgraded S block while the permission-only
 * upgrade GETX is in flight, so the payload-free DATA grant cannot be
 * used and the miss must be retried as a full GETX. The transition
 * coverage matrix verifies the exact abstract path taken; the golden
 * memory verifies the values.
 */

#include <gtest/gtest.h>

#include "protocol_driver.hh"

namespace protozoa {
namespace {

const ProtocolKind kAllProtocols[] = {
    ProtocolKind::MESI, ProtocolKind::ProtozoaSW,
    ProtocolKind::ProtozoaSWMR, ProtocolKind::ProtozoaMW};

std::uint64_t
brokenUpgrades(const ConformanceCoverage &cov)
{
    return cov.l1Count(L1State::SM, L1Event::Inv, L1State::SM_B) +
           cov.l1Count(L1State::SM, L1Event::FwdGetX, L1State::SM_B);
}

std::uint64_t
brokenRecoveries(const ConformanceCoverage &cov)
{
    // Either the payload-free grant is consumed and refetched (SM_B ->
    // IM -> M) or the denied upgrade already carried a payload.
    return cov.l1Count(L1State::SM_B, L1Event::DataUpgrade,
                       L1State::IM) +
           cov.l1Count(L1State::SM_B, L1Event::Data, L1State::M);
}

// A remote store invalidates the sharer's block while the sharer's own
// upgrade is in flight. The region is homed next to the remote core so
// its full GETX reaches the directory first, deterministically.
TEST(UpgradeRetry, ProbeBreaksInFlightUpgrade)
{
    for (auto protocol : kAllProtocols) {
        SystemConfig cfg;
        cfg.protocol = protocol;
        cfg.predictor = PredictorKind::WordOnly;
        ProtocolDriver d(cfg);

        // Homed at tile 15: adjacent to core 15, far from core 0.
        const Addr a = 15 * 64;

        // Two readers, so both hold S (a lone reader would be granted
        // E and store silently instead of upgrading).
        d.load(0, a);
        d.load(1, a);
        d.issue(15, a, true, 900, 0x100, 0);   // full GETX, wins
        d.issue(0, a, true, 100, 0x104, 0);    // upgrade, broken
        d.drain();

        const ConformanceCoverage &cov = d.sys.conformance();
        EXPECT_EQ(brokenUpgrades(cov), 1u) << protocolName(protocol);
        EXPECT_EQ(brokenRecoveries(cov), 1u) << protocolName(protocol);
        // The upgrade was re-served as a full fetch, so core 0 must
        // have observed core 15's 900 before storing 100 over it; the
        // golden memory flags any lost update.
        EXPECT_EQ(d.load(7, a), 100u) << protocolName(protocol);
        EXPECT_EQ(d.stateOf(15, a), std::nullopt);
        d.expectClean();
    }
}

// The same race from the directory's perspective: the loser's upgrade
// arrives after its reader tracking was cleared, so the dataless grant
// is denied and the response carries a payload.
TEST(UpgradeRetry, DeniedUpgradeIsServedWithPayload)
{
    for (auto protocol : kAllProtocols) {
        SystemConfig cfg;
        cfg.protocol = protocol;
        cfg.predictor = PredictorKind::WordOnly;
        ProtocolDriver d(cfg);

        const Addr a = 15 * 64 + 1024;
        d.load(0, a);
        d.load(1, a);
        d.issue(15, a, true, 900, 0x200, 0);
        d.issue(0, a, true, 100, 0x204, 0);
        d.drain();

        const ConformanceCoverage &cov = d.sys.conformance();
        const std::uint64_t denied =
            cov.dirCount(DirState::W, DirEvent::Upgrade, DirState::W) +
            cov.dirCount(DirState::W, DirEvent::Upgrade, DirState::WR) +
            cov.dirCount(DirState::W, DirEvent::Upgrade, DirState::MW) +
            cov.dirCount(DirState::I, DirEvent::Upgrade, DirState::W);
        EXPECT_EQ(denied, 1u) << protocolName(protocol);
        EXPECT_EQ(d.load(3, a), 100u) << protocolName(protocol);
        d.expectClean();
    }
}

// Two resident sharers race upgrades on the same word: exactly one
// breaks, and the values stay coherent under every protocol.
TEST(UpgradeRetry, RacingUpgradesBreakExactlyOne)
{
    for (auto protocol : kAllProtocols) {
        SystemConfig cfg;
        cfg.protocol = protocol;
        cfg.predictor = PredictorKind::WordOnly;
        ProtocolDriver d(cfg);

        const Addr a = 0x5000;
        d.load(0, a);
        d.load(15, a);
        d.issue(0, a, true, 100, 0x300, 0);
        d.issue(15, a, true, 200, 0x304, 0);
        d.drain();

        const ConformanceCoverage &cov = d.sys.conformance();
        EXPECT_EQ(brokenUpgrades(cov), 1u) << protocolName(protocol);
        EXPECT_EQ(brokenRecoveries(cov), 1u) << protocolName(protocol);
        // One successful dataless upgrade for the winner.
        EXPECT_EQ(cov.l1Count(L1State::SM, L1Event::DataUpgrade,
                              L1State::M),
                  1u)
            << protocolName(protocol);
        const auto v = d.load(7, a);
        EXPECT_TRUE(v == 100u || v == 200u) << protocolName(protocol);
        d.expectClean();
    }
}

// An upgrade that is NOT broken must never take the retry path: the
// common case stays on the dataless fast path.
TEST(UpgradeRetry, CleanUpgradeStaysDataless)
{
    for (auto protocol : kAllProtocols) {
        SystemConfig cfg;
        cfg.protocol = protocol;
        cfg.predictor = PredictorKind::WordOnly;
        ProtocolDriver d(cfg);

        const Addr a = 0x6000;
        d.load(0, a);
        d.load(1, a);        // both demoted to S
        d.store(0, a, 55);   // unbroken S -> SM -> M upgrade

        const ConformanceCoverage &cov = d.sys.conformance();
        EXPECT_EQ(cov.l1Count(L1State::SM, L1Event::DataUpgrade,
                              L1State::M),
                  1u)
            << protocolName(protocol);
        EXPECT_EQ(brokenUpgrades(cov), 0u) << protocolName(protocol);
        EXPECT_EQ(d.load(1, a), 55u);
        d.expectClean();
    }
}

} // namespace
} // namespace protozoa
