/**
 * @file
 * Unit tests for the protocheck subsystem: state-fingerprint
 * canonicalization, explorer sanity on library scenarios, schedule
 * replay determinism, and the knob-profile dimension of the
 * transition-coverage matrix.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "check/explorer.hh"
#include "check/minimizer.hh"
#include "check/scenario.hh"
#include "check/state_fingerprint.hh"
#include "protocol_driver.hh"

using namespace protozoa;
using namespace protozoa::check;

namespace {

/**
 * Build a 2-core oracle-enabled system, issue one store per core in
 * the given order, run to quiescence (every message parks), and
 * fingerprint. Issue order across cores must not affect the hash:
 * the parked messages land in distinct (src,dst) channels either way.
 */
std::uint64_t
fingerprintAfterStores(bool swapIssueOrder, Addr a0, Addr a1,
                       std::uint64_t v0, std::uint64_t v1)
{
    Scenario s;
    s.name = "fp-harness";
    s.numCores = 2;
    const SystemConfig cfg = s.toConfig(ProtocolKind::ProtozoaMW);
    System sys(cfg, emptyWorkload(cfg.numCores));

    auto issue = [&](CoreId c, Addr a, std::uint64_t v) {
        MemAccess acc;
        acc.addr = a;
        acc.isWrite = true;
        acc.storeValue = v;
        acc.pc = 0x3000;
        sys.l1(c).requestAccess(acc, [](std::uint64_t) {});
    };
    if (swapIssueOrder) {
        issue(1, a1, v1);
        issue(0, a0, v0);
    } else {
        issue(0, a0, v0);
        issue(1, a1, v1);
    }
    sys.eventQueue().run();
    EXPECT_GT(sys.mesh().parkedMessages(), 0u);

    std::vector<Addr> regions{regionBase(a0, cfg.regionBytes),
                              regionBase(a1, cfg.regionBytes)};
    std::sort(regions.begin(), regions.end());
    regions.erase(std::unique(regions.begin(), regions.end()),
                  regions.end());
    const std::vector<unsigned> progress{0, 0};
    return fingerprintSystem(sys, regions, progress);
}

constexpr Addr kBase = 0x40000000;

} // namespace

TEST(StateFingerprint, PermutedIssueOrderHashesEqual)
{
    const std::uint64_t a =
        fingerprintAfterStores(false, kBase, kBase + 64 + 8, 0xa1, 0xb1);
    const std::uint64_t b =
        fingerprintAfterStores(true, kBase, kBase + 64 + 8, 0xa1, 0xb1);
    EXPECT_EQ(a, b);
}

TEST(StateFingerprint, DifferentExtentsHashDistinct)
{
    const std::uint64_t a =
        fingerprintAfterStores(false, kBase, kBase + 64 + 8, 0xa1, 0xb1);
    // Same regions, different word within core 1's region.
    const std::uint64_t b =
        fingerprintAfterStores(false, kBase, kBase + 64 + 16, 0xa1, 0xb1);
    // Same words, different store value (golden memory differs).
    const std::uint64_t c =
        fingerprintAfterStores(false, kBase, kBase + 64 + 8, 0xa1, 0xb2);
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
}

TEST(Explorer, UpgradeRaceCleanUnderAllProtocols)
{
    const Scenario *s = findScenario("upgrade-race");
    ASSERT_NE(s, nullptr);
    for (ProtocolKind proto :
         {ProtocolKind::MESI, ProtocolKind::ProtozoaSW,
          ProtocolKind::ProtozoaSWMR, ProtocolKind::ProtozoaMW}) {
        const ExploreResult r = explore(*s, proto);
        EXPECT_FALSE(r.violation.has_value())
            << protocolName(proto) << ": [" << r.violation->kind
            << "] " << r.violation->detail;
        EXPECT_FALSE(r.budgetExhausted) << protocolName(proto);
        EXPECT_GT(r.schedulesCompleted, 0u) << protocolName(proto);
    }
}

TEST(Explorer, MemoizationCollapsesPingpong)
{
    const Scenario *s = findScenario("false-share-pingpong");
    ASSERT_NE(s, nullptr);
    const ExploreResult r = explore(*s, ProtocolKind::ProtozoaMW);
    EXPECT_FALSE(r.violation.has_value());
    EXPECT_FALSE(r.budgetExhausted);
    // Different interleavings converge to identical quiescent states;
    // without memo hits the run would re-expand whole subtrees.
    EXPECT_GT(r.memoHits, 0u);
}

/**
 * POR soundness: sleep sets only ever skip redundant re-orderings of
 * commuting deliveries, never a reachable quiescent state. For every
 * fast-tier scenario and protocol, the reduced search must reach
 * exactly the full enumeration's fingerprint set with the same
 * verdict.
 */
TEST(Explorer, PorPreservesFingerprintsAndVerdicts)
{
    ExploreLimits on;
    on.collectFingerprints = true;
    ExploreLimits off = on;
    off.por = false;
    for (const Scenario &s : scenarioLibrary()) {
        if (s.deep && s.name != "mw-word-churn")
            continue; // deep full enumerations blow the unit-test budget
        for (ProtocolKind proto :
             {ProtocolKind::MESI, ProtocolKind::ProtozoaSW,
              ProtocolKind::ProtozoaSWMR, ProtocolKind::ProtozoaMW}) {
            const ExploreResult a = explore(s, proto, on);
            const ExploreResult b = explore(s, proto, off);
            ASSERT_FALSE(a.budgetExhausted)
                << s.name << " " << protocolName(proto);
            ASSERT_FALSE(b.budgetExhausted)
                << s.name << " " << protocolName(proto);
            EXPECT_EQ(a.violation.has_value(), b.violation.has_value())
                << s.name << " " << protocolName(proto);
            EXPECT_EQ(a.fingerprints, b.fingerprints)
                << s.name << " " << protocolName(proto)
                << ": POR reached " << a.fingerprints.size()
                << " distinct states, full enumeration "
                << b.fingerprints.size();
        }
    }
}

/**
 * The soundness matrix past 8 mesh nodes: the sleep-set channel
 * bitmap is a multi-word ChanMask (nodes^2 bits), so POR stays active
 * on the 8x8 large-tier scenarios, where a single-uint64 bitmap used
 * to force full enumeration. Same contract as the fast-tier matrix —
 * identical fingerprint sets and verdicts with POR on and off — plus
 * proof the reduction is actually engaged at 64 nodes (commutations
 * detected and subtrees pruned somewhere in the matrix).
 */
TEST(Explorer, PorSoundPastEightNodes)
{
    ExploreLimits on;
    on.collectFingerprints = true;
    ExploreLimits off = on;
    off.por = false;
    std::uint64_t commutations = 0;
    std::uint64_t pruned = 0;
    for (const char *name : {"upgrade-race-8x8", "recall-storm-8x8"}) {
        const Scenario *s = findScenario(name);
        ASSERT_NE(s, nullptr) << name;
        ASSERT_GT(s->numCores, 8u) << name;
        for (ProtocolKind proto :
             {ProtocolKind::MESI, ProtocolKind::ProtozoaMW}) {
            const ExploreResult a = explore(*s, proto, on);
            const ExploreResult b = explore(*s, proto, off);
            ASSERT_FALSE(a.budgetExhausted)
                << name << " " << protocolName(proto);
            ASSERT_FALSE(b.budgetExhausted)
                << name << " " << protocolName(proto);
            EXPECT_EQ(a.violation.has_value(), b.violation.has_value())
                << name << " " << protocolName(proto);
            EXPECT_EQ(a.fingerprints, b.fingerprints)
                << name << " " << protocolName(proto)
                << ": POR reached " << a.fingerprints.size()
                << " distinct states, full enumeration "
                << b.fingerprints.size();
            commutations += a.porCommutations;
            pruned += a.porPruned;
            EXPECT_EQ(b.porCommutations, 0u)
                << name << " " << protocolName(proto);
        }
    }
    EXPECT_GT(commutations, 0u);
    EXPECT_GT(pruned, 0u);
}

/**
 * POR effectiveness, locked with memoization off on both sides so
 * schedulesCompleted counts exactly what each search enumerated: the
 * reduced search explores at least 3x fewer complete schedules than
 * full enumeration on these pre-existing library scenarios, while
 * reaching the identical fingerprint set.
 */
TEST(Explorer, PorReducesSchedulesAtLeast3x)
{
    const struct
    {
        const char *scenario;
        ProtocolKind proto;
    } cases[] = {
        {"evict-vs-partial-probe", ProtocolKind::ProtozoaSW},
        {"recall-inclusive", ProtocolKind::ProtozoaSWMR},
        {"recall-inclusive", ProtocolKind::ProtozoaMW},
    };
    ExploreLimits on;
    on.memo = false;
    on.collectFingerprints = true;
    ExploreLimits off = on;
    off.por = false;
    for (const auto &c : cases) {
        const Scenario *s = findScenario(c.scenario);
        ASSERT_NE(s, nullptr) << c.scenario;
        const ExploreResult por = explore(*s, c.proto, on);
        const ExploreResult full = explore(*s, c.proto, off);
        ASSERT_FALSE(por.violation.has_value()) << c.scenario;
        ASSERT_FALSE(full.violation.has_value()) << c.scenario;
        EXPECT_GE(full.schedulesCompleted, 3 * por.schedulesCompleted)
            << c.scenario << " " << protocolName(c.proto) << ": full="
            << full.schedulesCompleted
            << " por=" << por.schedulesCompleted;
        EXPECT_EQ(por.fingerprints, full.fingerprints)
            << c.scenario << " " << protocolName(c.proto);
        // Counter sanity: the reduction above must come from sleep-set
        // pruning of detected commutations, not from budget effects.
        EXPECT_GT(por.porCommutations, 0u) << c.scenario;
        EXPECT_GT(por.porPruned, 0u) << c.scenario;
        EXPECT_EQ(full.porCommutations, 0u) << c.scenario;
        EXPECT_EQ(full.porPruned, 0u) << c.scenario;
    }
}

/**
 * The 12-access PcSpatial stride scenario is only explorable because
 * of POR: the predictor's history makes memoization unsound (and the
 * explorer disables it), so full enumeration must walk every
 * interleaving of the three access streams and exhausts the CI state
 * budget, while the reduced search completes well inside it.
 */
TEST(Explorer, PorCompletesWhereFullEnumerationCannot)
{
    const Scenario *s = findScenario("pcspatial-stride-3core");
    ASSERT_NE(s, nullptr);
    ASSERT_GE(s->accesses.size(), 10u);
    const ExploreResult por = explore(*s, ProtocolKind::ProtozoaMW);
    EXPECT_FALSE(por.violation.has_value());
    EXPECT_FALSE(por.budgetExhausted);
    EXPECT_EQ(por.memoHits, 0u); // PcSpatial: memoization is off
    ExploreLimits noPor;
    noPor.por = false;
    const ExploreResult full =
        explore(*s, ProtocolKind::ProtozoaMW, noPor);
    EXPECT_TRUE(full.budgetExhausted);
}

/**
 * Regression lock for the cross-region waiter livelock in
 * DirController::busy(): with 3+ cores storming a one-entry L2 set,
 * two waiters deferred behind different regions of the same set used
 * to re-defer behind each other forever during drainQueue. The
 * bounded-quiesce oracle reports such a spin as a "livelock"
 * violation; the storm scenarios must complete clean.
 */
TEST(Explorer, RecallStormCompletesWithoutLivelock)
{
    const Scenario *s = findScenario("recall-storm-3core");
    ASSERT_NE(s, nullptr);
    for (ProtocolKind proto :
         {ProtocolKind::MESI, ProtocolKind::ProtozoaSW,
          ProtocolKind::ProtozoaSWMR, ProtocolKind::ProtozoaMW}) {
        const ExploreResult r = explore(*s, proto);
        EXPECT_FALSE(r.violation.has_value())
            << protocolName(proto) << ": [" << r.violation->kind
            << "] " << r.violation->detail;
        EXPECT_FALSE(r.budgetExhausted) << protocolName(proto);
    }
}

/**
 * Snapshot-backtracking soundness and effectiveness: restoring the
 * branch-point snapshot must visit exactly the states replay-from-root
 * visits (same verdicts, same fingerprint sets — the simulator is
 * deterministic given a schedule), while executing strictly fewer
 * deliveries (a restore replays none of the choice prefix).
 */
TEST(Explorer, SnapshotBacktrackMatchesReplayWithFewerDeliveries)
{
    ExploreLimits snap;
    snap.collectFingerprints = true;
    ExploreLimits replay = snap;
    replay.snapshotBacktrack = false;
    for (const char *name :
         {"upgrade-race", "false-share-pingpong", "recall-inclusive"}) {
        const Scenario *s = findScenario(name);
        ASSERT_NE(s, nullptr) << name;
        for (ProtocolKind proto :
             {ProtocolKind::MESI, ProtocolKind::ProtozoaMW}) {
            const ExploreResult a = explore(*s, proto, snap);
            const ExploreResult b = explore(*s, proto, replay);
            ASSERT_FALSE(a.budgetExhausted)
                << name << " " << protocolName(proto);
            ASSERT_FALSE(b.budgetExhausted)
                << name << " " << protocolName(proto);
            EXPECT_EQ(a.violation.has_value(), b.violation.has_value())
                << name << " " << protocolName(proto);
            EXPECT_EQ(a.statesVisited, b.statesVisited)
                << name << " " << protocolName(proto);
            EXPECT_EQ(a.fingerprints, b.fingerprints)
                << name << " " << protocolName(proto);
            EXPECT_LT(a.deliveriesExecuted, b.deliveriesExecuted)
                << name << " " << protocolName(proto)
                << ": snapshot=" << a.deliveriesExecuted
                << " replay=" << b.deliveriesExecuted;
        }
    }
}

/**
 * The found-violation path must survive snapshot-backtracking too:
 * the re-injected lost-store bug is rediscovered with an identical
 * minimized schedule either way.
 */
TEST(Explorer, SnapshotBacktrackFindsSameViolation)
{
    const Scenario *s = findScenario("evict-vs-partial-probe");
    ASSERT_NE(s, nullptr);
    Scenario buggy = *s;
    buggy.debugLostStoreBug = true;
    ExploreLimits snap;
    ExploreLimits replay;
    replay.snapshotBacktrack = false;
    const ExploreResult a =
        explore(buggy, ProtocolKind::ProtozoaMW, snap);
    const ExploreResult b =
        explore(buggy, ProtocolKind::ProtozoaMW, replay);
    ASSERT_TRUE(a.violation.has_value());
    ASSERT_TRUE(b.violation.has_value());
    EXPECT_EQ(a.violation->kind, b.violation->kind);
    EXPECT_EQ(a.violation->schedule, b.violation->schedule);
}

TEST(ScenarioLibrary, SizeTiersAndStressTags)
{
    const std::vector<Scenario> &lib = scenarioLibrary();
    EXPECT_GE(lib.size(), 14u);
    unsigned deep = 0;
    for (const Scenario &s : lib) {
        EXPECT_FALSE(s.stresses.empty()) << s.name;
        EXPECT_FALSE(s.note.empty()) << s.name;
        deep += s.deep ? 1 : 0;
    }
    EXPECT_GE(deep, 2u);
    EXPECT_GE(lib.size() - deep, 6u); // fast PR-gating tier
}

TEST(Explorer, ReplayEmptyScheduleIsCanonicalAndClean)
{
    const Scenario *s = findScenario("upgrade-race");
    ASSERT_NE(s, nullptr);
    EXPECT_FALSE(
        replaySchedule(*s, ProtocolKind::ProtozoaMW, {}).has_value());
}

TEST(ScenarioLibrary, LookupAndFootprint)
{
    ASSERT_FALSE(scenarioLibrary().empty());
    EXPECT_EQ(findScenario("no-such-scenario"), nullptr);
    const Scenario *s = findScenario("evict-vs-partial-probe");
    ASSERT_NE(s, nullptr);
    EXPECT_LE(s->accesses.size(), 8u);
    EXPECT_LE(s->regionFootprint().size(), 2u);
    const SystemConfig cfg = s->toConfig(ProtocolKind::ProtozoaMW);
    EXPECT_TRUE(cfg.scheduleOracle);
    EXPECT_FALSE(cfg.faultInjection);
    EXPECT_FALSE(cfg.occupancyJitter);
}

TEST(KnobProfile, OfConfig)
{
    SystemConfig cfg;
    EXPECT_EQ(knobProfileOf(cfg), KnobProfile::Base);
    cfg.threeHop = true;
    EXPECT_EQ(knobProfileOf(cfg), KnobProfile::ThreeHop);
    cfg.directory = DirectoryKind::TaglessBloom;
    EXPECT_EQ(knobProfileOf(cfg), KnobProfile::ThreeHopBloom);
    cfg.threeHop = false;
    EXPECT_EQ(knobProfileOf(cfg), KnobProfile::BloomDir);
}

TEST(KnobProfile, PerProfilePlanesAndMerge)
{
    ConformanceCoverage base(ProtocolKind::ProtozoaMW);
    ConformanceCoverage hop(ProtocolKind::ProtozoaMW,
                            KnobProfile::ThreeHop);

    base.recordL1(L1State::I, L1Event::Load, L1State::IS);
    hop.recordL1(L1State::I, L1Event::Load, L1State::IS);
    hop.recordL1(L1State::I, L1Event::Load, L1State::IS);

    EXPECT_EQ(base.l1CountAt(KnobProfile::Base, L1State::I,
                             L1Event::Load, L1State::IS),
              1u);
    EXPECT_EQ(hop.l1CountAt(KnobProfile::ThreeHop, L1State::I,
                            L1Event::Load, L1State::IS),
              2u);
    EXPECT_EQ(hop.l1CountAt(KnobProfile::Base, L1State::I,
                            L1Event::Load, L1State::IS),
              0u);
    // The aggregate accessor sums the profile planes.
    EXPECT_EQ(hop.l1Count(L1State::I, L1Event::Load, L1State::IS), 2u);
    EXPECT_TRUE(hop.profileSeen(KnobProfile::ThreeHop));
    EXPECT_FALSE(hop.profileSeen(KnobProfile::Base));

    base.merge(hop);
    EXPECT_EQ(base.l1Count(L1State::I, L1Event::Load, L1State::IS), 3u);
    EXPECT_TRUE(base.profileSeen(KnobProfile::Base));
    EXPECT_TRUE(base.profileSeen(KnobProfile::ThreeHop));
    EXPECT_EQ(base.hitRowsAt(KnobProfile::Base), 1u);
    EXPECT_EQ(base.hitRowsAt(KnobProfile::ThreeHop), 1u);
    EXPECT_EQ(base.hitRowsAt(KnobProfile::BloomDir), 0u);
}

TEST(ScheduleOracle, DisabledMeshParksNothing)
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.l2Tiles = 2;
    cfg.meshCols = 2;
    cfg.meshRows = 1;
    ProtocolDriver d(cfg);
    EXPECT_FALSE(d.sys.mesh().scheduleOracleEnabled());
    d.store(0, kBase, 0x1);
    EXPECT_EQ(d.sys.mesh().parkedMessages(), 0u);
    EXPECT_EQ(d.load(1, kBase), 0x1u);
    d.expectClean();
}
