/**
 * @file
 * Unit tests for the protocheck subsystem: state-fingerprint
 * canonicalization, explorer sanity on library scenarios, schedule
 * replay determinism, and the knob-profile dimension of the
 * transition-coverage matrix.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "check/explorer.hh"
#include "check/minimizer.hh"
#include "check/scenario.hh"
#include "check/state_fingerprint.hh"
#include "protocol_driver.hh"

using namespace protozoa;
using namespace protozoa::check;

namespace {

/**
 * Build a 2-core oracle-enabled system, issue one store per core in
 * the given order, run to quiescence (every message parks), and
 * fingerprint. Issue order across cores must not affect the hash:
 * the parked messages land in distinct (src,dst) channels either way.
 */
std::uint64_t
fingerprintAfterStores(bool swapIssueOrder, Addr a0, Addr a1,
                       std::uint64_t v0, std::uint64_t v1)
{
    Scenario s;
    s.name = "fp-harness";
    s.numCores = 2;
    const SystemConfig cfg = s.toConfig(ProtocolKind::ProtozoaMW);
    System sys(cfg, emptyWorkload(cfg.numCores));

    auto issue = [&](CoreId c, Addr a, std::uint64_t v) {
        MemAccess acc;
        acc.addr = a;
        acc.isWrite = true;
        acc.storeValue = v;
        acc.pc = 0x3000;
        sys.l1(c).requestAccess(acc, [](std::uint64_t) {});
    };
    if (swapIssueOrder) {
        issue(1, a1, v1);
        issue(0, a0, v0);
    } else {
        issue(0, a0, v0);
        issue(1, a1, v1);
    }
    sys.eventQueue().run();
    EXPECT_GT(sys.mesh().parkedMessages(), 0u);

    std::vector<Addr> regions{regionBase(a0, cfg.regionBytes),
                              regionBase(a1, cfg.regionBytes)};
    std::sort(regions.begin(), regions.end());
    regions.erase(std::unique(regions.begin(), regions.end()),
                  regions.end());
    const std::vector<unsigned> progress{0, 0};
    return fingerprintSystem(sys, regions, progress);
}

constexpr Addr kBase = 0x40000000;

} // namespace

TEST(StateFingerprint, PermutedIssueOrderHashesEqual)
{
    const std::uint64_t a =
        fingerprintAfterStores(false, kBase, kBase + 64 + 8, 0xa1, 0xb1);
    const std::uint64_t b =
        fingerprintAfterStores(true, kBase, kBase + 64 + 8, 0xa1, 0xb1);
    EXPECT_EQ(a, b);
}

TEST(StateFingerprint, DifferentExtentsHashDistinct)
{
    const std::uint64_t a =
        fingerprintAfterStores(false, kBase, kBase + 64 + 8, 0xa1, 0xb1);
    // Same regions, different word within core 1's region.
    const std::uint64_t b =
        fingerprintAfterStores(false, kBase, kBase + 64 + 16, 0xa1, 0xb1);
    // Same words, different store value (golden memory differs).
    const std::uint64_t c =
        fingerprintAfterStores(false, kBase, kBase + 64 + 8, 0xa1, 0xb2);
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
}

TEST(Explorer, UpgradeRaceCleanUnderAllProtocols)
{
    const Scenario *s = findScenario("upgrade-race");
    ASSERT_NE(s, nullptr);
    for (ProtocolKind proto :
         {ProtocolKind::MESI, ProtocolKind::ProtozoaSW,
          ProtocolKind::ProtozoaSWMR, ProtocolKind::ProtozoaMW}) {
        const ExploreResult r = explore(*s, proto);
        EXPECT_FALSE(r.violation.has_value())
            << protocolName(proto) << ": [" << r.violation->kind
            << "] " << r.violation->detail;
        EXPECT_FALSE(r.budgetExhausted) << protocolName(proto);
        EXPECT_GT(r.schedulesCompleted, 0u) << protocolName(proto);
    }
}

TEST(Explorer, MemoizationCollapsesPingpong)
{
    const Scenario *s = findScenario("false-share-pingpong");
    ASSERT_NE(s, nullptr);
    const ExploreResult r = explore(*s, ProtocolKind::ProtozoaMW);
    EXPECT_FALSE(r.violation.has_value());
    EXPECT_FALSE(r.budgetExhausted);
    // Different interleavings converge to identical quiescent states;
    // without memo hits the run would re-expand whole subtrees.
    EXPECT_GT(r.memoHits, 0u);
}

TEST(Explorer, ReplayEmptyScheduleIsCanonicalAndClean)
{
    const Scenario *s = findScenario("upgrade-race");
    ASSERT_NE(s, nullptr);
    EXPECT_FALSE(
        replaySchedule(*s, ProtocolKind::ProtozoaMW, {}).has_value());
}

TEST(ScenarioLibrary, LookupAndFootprint)
{
    ASSERT_FALSE(scenarioLibrary().empty());
    EXPECT_EQ(findScenario("no-such-scenario"), nullptr);
    const Scenario *s = findScenario("evict-vs-partial-probe");
    ASSERT_NE(s, nullptr);
    EXPECT_LE(s->accesses.size(), 8u);
    EXPECT_LE(s->regionFootprint().size(), 2u);
    const SystemConfig cfg = s->toConfig(ProtocolKind::ProtozoaMW);
    EXPECT_TRUE(cfg.scheduleOracle);
    EXPECT_FALSE(cfg.faultInjection);
    EXPECT_FALSE(cfg.occupancyJitter);
}

TEST(KnobProfile, OfConfig)
{
    SystemConfig cfg;
    EXPECT_EQ(knobProfileOf(cfg), KnobProfile::Base);
    cfg.threeHop = true;
    EXPECT_EQ(knobProfileOf(cfg), KnobProfile::ThreeHop);
    cfg.directory = DirectoryKind::TaglessBloom;
    EXPECT_EQ(knobProfileOf(cfg), KnobProfile::ThreeHopBloom);
    cfg.threeHop = false;
    EXPECT_EQ(knobProfileOf(cfg), KnobProfile::BloomDir);
}

TEST(KnobProfile, PerProfilePlanesAndMerge)
{
    ConformanceCoverage base(ProtocolKind::ProtozoaMW);
    ConformanceCoverage hop(ProtocolKind::ProtozoaMW,
                            KnobProfile::ThreeHop);

    base.recordL1(L1State::I, L1Event::Load, L1State::IS);
    hop.recordL1(L1State::I, L1Event::Load, L1State::IS);
    hop.recordL1(L1State::I, L1Event::Load, L1State::IS);

    EXPECT_EQ(base.l1CountAt(KnobProfile::Base, L1State::I,
                             L1Event::Load, L1State::IS),
              1u);
    EXPECT_EQ(hop.l1CountAt(KnobProfile::ThreeHop, L1State::I,
                            L1Event::Load, L1State::IS),
              2u);
    EXPECT_EQ(hop.l1CountAt(KnobProfile::Base, L1State::I,
                            L1Event::Load, L1State::IS),
              0u);
    // The aggregate accessor sums the profile planes.
    EXPECT_EQ(hop.l1Count(L1State::I, L1Event::Load, L1State::IS), 2u);
    EXPECT_TRUE(hop.profileSeen(KnobProfile::ThreeHop));
    EXPECT_FALSE(hop.profileSeen(KnobProfile::Base));

    base.merge(hop);
    EXPECT_EQ(base.l1Count(L1State::I, L1Event::Load, L1State::IS), 3u);
    EXPECT_TRUE(base.profileSeen(KnobProfile::Base));
    EXPECT_TRUE(base.profileSeen(KnobProfile::ThreeHop));
    EXPECT_EQ(base.hitRowsAt(KnobProfile::Base), 1u);
    EXPECT_EQ(base.hitRowsAt(KnobProfile::ThreeHop), 1u);
    EXPECT_EQ(base.hitRowsAt(KnobProfile::BloomDir), 0u);
}

TEST(ScheduleOracle, DisabledMeshParksNothing)
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.l2Tiles = 2;
    cfg.meshCols = 2;
    cfg.meshRows = 1;
    ProtocolDriver d(cfg);
    EXPECT_FALSE(d.sys.mesh().scheduleOracleEnabled());
    d.store(0, kBase, 0x1);
    EXPECT_EQ(d.sys.mesh().parkedMessages(), 0u);
    EXPECT_EQ(d.load(1, kBase), 0x1u);
    d.expectClean();
}
