/**
 * @file
 * Fig. 14 reproduction: execution time relative to MESI. The paper
 * plots only applications with more than a 3% change; the harness
 * prints the full set and marks the >3% ones.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace protozoa;
using namespace protozoa::bench;

int
main()
{
    const double scale = envScale();
    std::printf("Fig. 14: execution time normalized to MESI "
                "(scale=%.2f)\n\n", scale);

    const auto rows = sweepAllBenchmarks(allProtocols(), scale);

    TextTable table({"app", "SW", "SW+MR", "MW", ">3%?"});
    std::vector<double> ratio_sw, ratio_mr, ratio_mw;

    for (const auto &row : rows) {
        const double mesi =
            static_cast<double>(row[ProtocolKind::MESI].cycles);
        const double sw =
            static_cast<double>(row[ProtocolKind::ProtozoaSW].cycles) /
            mesi;
        const double mr =
            static_cast<double>(
                row[ProtocolKind::ProtozoaSWMR].cycles) /
            mesi;
        const double mw =
            static_cast<double>(row[ProtocolKind::ProtozoaMW].cycles) /
            mesi;
        const bool notable = std::abs(sw - 1) > 0.03 ||
            std::abs(mr - 1) > 0.03 || std::abs(mw - 1) > 0.03;
        table.addRow({row.bench, TextTable::fmt(sw),
                      TextTable::fmt(mr), TextTable::fmt(mw),
                      notable ? "*" : ""});
        ratio_sw.push_back(sw);
        ratio_mr.push_back(mr);
        ratio_mw.push_back(mw);
    }
    table.print(std::cout);

    std::printf("\nMean execution time vs MESI: SW=%.2f  SW+MR=%.2f  "
                "MW=%.2f\n",
                mean(ratio_sw), mean(ratio_mr), mean(ratio_mw));
    std::printf("Paper reference: ~4%% average improvement; "
                "linear-regression speeds up 2.2x under MW while SW "
                "slows it 17%%; apache slows ~7%% under MW.\n");
    return 0;
}
