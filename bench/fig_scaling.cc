/**
 * @file
 * fig_scaling: beyond the paper's 16-core machine. Sweeps three
 * representative benchmarks across 16-, 64- and 256-core meshes (4x4,
 * 8x8, 16x16) for all four protocols, and reports execution time,
 * network traffic bytes and flit-hops per point, plus each adaptive
 * protocol's ratio to MESI at the same core count.
 *
 * The aggregate shared L2 is held at the paper's 32 MB (2 MB/tile x
 * 16) across every point — l2BytesPerTile shrinks as the tile count
 * grows — so the sweep scales the machine, not the cache budget.
 *
 * A second section measures the Sec. 6 TaglessBloom directory with
 * its default fixed 256-bucket geometry at every core count. The
 * filter is per-tile, so growing the tile count shards each
 * workload's regions across more filters and aliasing *falls* — the
 * scaling cost shows up in the probe fan-out and flit-hop columns of
 * the main table instead, not in the filter.
 *
 *   fig_scaling                     # full sweep, table + JSON
 *   fig_scaling --json out.json     # JSON artifact path
 *   PROTOZOA_SCALE=0.05 fig_scaling # CI smoke
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "sim/sweep_runner.hh"

using namespace protozoa;
using namespace protozoa::bench;

namespace {

struct MeshPoint
{
    unsigned cores;
    unsigned cols;
    unsigned rows;
};

const MeshPoint kPoints[] = {{16, 4, 4}, {64, 8, 8}, {256, 16, 16}};

const char *const kBenches[] = {"apache", "canneal",
                                "linear-regression"};

/** Paper machine resized to @p pt with the 32 MB aggregate L2. */
SystemConfig
configFor(const MeshPoint &pt)
{
    SystemConfig cfg;
    cfg.numCores = pt.cores;
    cfg.l2Tiles = pt.cores;
    cfg.meshCols = pt.cols;
    cfg.meshRows = pt.rows;
    cfg.l2BytesPerTile = (2ull * 1024 * 1024 * 16) / pt.cores;
    return cfg;
}

struct PointStat
{
    const char *bench;
    unsigned cores;
    ProtocolKind proto;
    RunStats stats;
};

struct BloomStat
{
    unsigned cores;
    std::uint64_t falseProbes;
    std::uint64_t requests;
};

void
writeJson(const std::string &path, double scale,
          const std::vector<PointStat> &points,
          const std::vector<BloomStat> &bloom)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"scale\": %.3f,\n"
                    "  \"aggregateL2Bytes\": %llu,\n  \"points\": [\n",
                 scale, 2ull * 1024 * 1024 * 16);
    for (std::size_t i = 0; i < points.size(); ++i) {
        const PointStat &p = points[i];
        std::fprintf(
            f,
            "    {\"bench\": \"%s\", \"cores\": %u, "
            "\"protocol\": \"%s\", \"cycles\": %llu, "
            "\"trafficBytes\": %llu, \"flitHops\": %llu}%s\n",
            p.bench, p.cores, shortName(p.proto),
            static_cast<unsigned long long>(p.stats.cycles),
            static_cast<unsigned long long>(p.stats.net.bytes),
            static_cast<unsigned long long>(p.stats.net.flitHops),
            i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"bloomFixed256Buckets\": [\n");
    for (std::size_t i = 0; i < bloom.size(); ++i) {
        const BloomStat &b = bloom[i];
        const double rate =
            b.requests ? static_cast<double>(b.falseProbes) / b.requests
                       : 0.0;
        std::fprintf(f,
                     "    {\"cores\": %u, \"falseProbes\": %llu, "
                     "\"requests\": %llu, \"falseProbeRate\": %.4f}%s\n",
                     b.cores,
                     static_cast<unsigned long long>(b.falseProbes),
                     static_cast<unsigned long long>(b.requests), rate,
                     i + 1 < bloom.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonPath = "BENCH_scaling.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
    }
    const double scale = envScale();
    std::printf("fig_scaling: 16/64/256-core meshes, aggregate L2 "
                "fixed at 32 MB (scale=%.2f)\n\n", scale);

    // One sweep job per (bench, mesh point, protocol); the jobs are
    // independent Systems, so they fan across PROTOZOA_JOBS workers.
    std::vector<SweepJob> jobs;
    for (const char *bench : kBenches) {
        for (const MeshPoint &pt : kPoints) {
            for (ProtocolKind kind : allProtocols()) {
                SweepJob job;
                job.bench = bench;
                job.cfg = configFor(pt);
                job.cfg.protocol = kind;
                job.scale = scale;
                jobs.push_back(std::move(job));
            }
        }
    }
    // The Bloom-geometry section: MW with the default fixed 256-bucket
    // TaglessBloom directory at every core count.
    const std::size_t bloomBase = jobs.size();
    for (const MeshPoint &pt : kPoints) {
        SweepJob job;
        job.bench = "apache";
        job.cfg = configFor(pt);
        job.cfg.protocol = ProtocolKind::ProtozoaMW;
        job.cfg.directory = DirectoryKind::TaglessBloom;
        job.scale = scale;
        jobs.push_back(std::move(job));
    }

    const unsigned workers = envJobs();
    std::fprintf(stderr, "  sweep: %zu runs on %u worker thread(s)\n",
                 jobs.size(), workers);
    auto stats =
        runSweep(jobs, workers, [](std::size_t, const SweepJob &job) {
            std::fprintf(stderr, "  running %-18s %3u cores %-8s...\n",
                         job.bench.c_str(), job.cfg.numCores,
                         shortName(job.cfg.protocol));
        });

    std::vector<PointStat> points;
    std::size_t j = 0;
    for (const char *bench : kBenches) {
        for (const MeshPoint &pt : kPoints) {
            for (ProtocolKind kind : allProtocols())
                points.push_back({bench, pt.cores, kind,
                                  std::move(stats[j++])});
        }
    }

    for (const char *bench : kBenches) {
        std::printf("%s\n", bench);
        TextTable table({"cores", "proto", "cycles", "MBytes",
                         "MFlitHops", "cyc/MESI", "byte/MESI"});
        for (const MeshPoint &pt : kPoints) {
            const PointStat *mesi = nullptr;
            for (const PointStat &p : points) {
                if (p.bench == bench && p.cores == pt.cores &&
                    p.proto == ProtocolKind::MESI)
                    mesi = &p;
            }
            for (const PointStat &p : points) {
                if (p.bench != bench || p.cores != pt.cores)
                    continue;
                const double cr = static_cast<double>(p.stats.cycles) /
                                  static_cast<double>(mesi->stats.cycles);
                const double br =
                    static_cast<double>(p.stats.net.bytes) /
                    static_cast<double>(mesi->stats.net.bytes);
                table.addRow(
                    {std::to_string(p.cores), shortName(p.proto),
                     std::to_string(p.stats.cycles),
                     TextTable::fmt(p.stats.net.bytes / 1.0e6),
                     TextTable::fmt(p.stats.net.flitHops / 1.0e6),
                     TextTable::fmt(cr), TextTable::fmt(br)});
            }
        }
        table.print(std::cout);
        std::printf("\n");
    }

    std::vector<BloomStat> bloom;
    std::printf("TaglessBloom, fixed 256-bucket geometry (MW, apache)\n");
    TextTable btable({"cores", "falseProbes", "requests", "rate"});
    for (std::size_t i = 0; i < 3; ++i) {
        const RunStats &s = stats[bloomBase + i];
        bloom.push_back({kPoints[i].cores, s.dir.bloomFalseProbes,
                         s.dir.requests});
        const double rate =
            s.dir.requests ? static_cast<double>(s.dir.bloomFalseProbes) /
                                 static_cast<double>(s.dir.requests)
                           : 0.0;
        btable.addRow({std::to_string(kPoints[i].cores),
                       std::to_string(s.dir.bloomFalseProbes),
                       std::to_string(s.dir.requests),
                       TextTable::fmt(rate)});
    }
    btable.print(std::cout);
    std::printf("\nPer-tile filters shard the footprint: more tiles "
                "mean fewer regions per filter, so the fixed 256-bucket "
                "geometry aliases *less* as the mesh grows. The scaling "
                "cost lives in the traffic columns above (flit-hops "
                "grow superlinearly with the mesh diameter), not in "
                "the filter.\n");

    writeJson(jsonPath, scale, points, bloom);
    std::printf("wrote %s\n", jsonPath.c_str());
    return 0;
}
