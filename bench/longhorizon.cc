/**
 * @file
 * longhorizon: the nightly long-horizon CI driver. Streams a generated
 * multi-million-record synthetic trace (O(chunk) memory — no file, no
 * materialized workload) through a full system, in one of three
 * phases:
 *
 *   --phase reference    uninterrupted run; prints the stats digest.
 *   --phase checkpoint   run to --stop, save --snapshot, exit — the
 *                        "kill" half of a kill/restore cycle.
 *   --phase restore      fresh process: load --snapshot, run to end;
 *                        prints the stats digest.
 *
 * Every phase prints `digest=0x...` and `maxrss_mb=...` on stdout; the
 * workflow gates on the restore digest matching the reference digest
 * (the checkpoint/restore contract) and on peak RSS staying under
 * --rss-limit-mb (the streaming front end's bounded-memory contract —
 * RSS must not scale with --records). Windowed stats are enabled in
 * all phases (identical event streams) and written as a JSON artifact
 * wherever --window-json is given.
 */

#include <sys/resource.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "protozoa/protozoa.hh"
#include "workload/streaming_trace.hh"

using namespace protozoa;

namespace {

// FNV-1a over the deterministic stats (mirrors tests/stats_digest.hh;
// bench/ cannot include test headers).
class Digest
{
  public:
    void
    add(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    }
    std::uint64_t value() const { return h; }

  private:
    std::uint64_t h = 0xcbf29ce484222325ULL;
};

std::uint64_t
digestOf(const RunStats &s)
{
    Digest d;
    d.add(s.l1.loads);
    d.add(s.l1.stores);
    d.add(s.l1.hits);
    d.add(s.l1.misses);
    d.add(s.l1.invMsgsReceived);
    d.add(s.l1.blocksInvalidated);
    d.add(s.dir.requests);
    d.add(s.dir.l2Misses);
    d.add(s.dir.recalls);
    d.add(s.net.messages);
    d.add(s.net.bytes);
    d.add(s.net.flits);
    d.add(s.instructions);
    d.add(s.cycles);
    return d.value();
}

double
maxRssMb()
{
    struct rusage ru;
    getrusage(RUSAGE_SELF, &ru);
    return ru.ru_maxrss / 1024.0; // Linux: ru_maxrss is in KB
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: longhorizon --phase reference|checkpoint|restore\n"
        "         [--records N] [--cores N] [--seed S] [--stop C]\n"
        "         [--snapshot path] [--window-json path]\n"
        "         [--window-period C] [--rss-limit-mb M]\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string phase;
    std::string snapshotPath;
    std::string windowJson;
    std::uint64_t recordsPerCore = 2'000'000;
    unsigned cores = 16;
    std::uint64_t seed = 2013;
    Cycle stop = 0;
    Cycle windowPeriod = 1'000'000;
    double rssLimitMb = 0.0;

    for (int i = 1; i < argc; ++i) {
        const auto arg = [&](const char *name) {
            if (std::strcmp(argv[i], name) != 0 || i + 1 >= argc)
                return (const char *)nullptr;
            return (const char *)argv[++i];
        };
        if (const char *v = arg("--phase"))
            phase = v;
        else if (const char *v = arg("--records"))
            recordsPerCore = std::strtoull(v, nullptr, 10);
        else if (const char *v = arg("--cores"))
            cores = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        else if (const char *v = arg("--seed"))
            seed = std::strtoull(v, nullptr, 10);
        else if (const char *v = arg("--stop"))
            stop = std::strtoull(v, nullptr, 10);
        else if (const char *v = arg("--snapshot"))
            snapshotPath = v;
        else if (const char *v = arg("--window-json"))
            windowJson = v;
        else if (const char *v = arg("--window-period"))
            windowPeriod = std::strtoull(v, nullptr, 10);
        else if (const char *v = arg("--rss-limit-mb"))
            rssLimitMb = std::atof(v);
        else
            usage();
    }
    if (phase.empty())
        usage();

    SystemConfig cfg;
    cfg.protocol = ProtocolKind::ProtozoaMW;
    cfg.numCores = cores;
    cfg.l2Tiles = cores;
    cfg.seed = seed;

    System sys(cfg, makeSyntheticStreamWorkload(seed, cores,
                                                recordsPerCore));
    sys.enableWindowStats(windowPeriod, windowJson);

    if (phase == "reference") {
        sys.run();
    } else if (phase == "checkpoint") {
        if (stop == 0 || snapshotPath.empty())
            usage();
        sys.runTo(stop);
        std::string err;
        if (!sys.saveSnapshotFile(snapshotPath, &err)) {
            std::fprintf(stderr, "checkpoint failed: %s\n",
                          err.c_str());
            return 1;
        }
        std::printf("checkpointed_at=%llu\n",
                     (unsigned long long)stop);
        std::printf("maxrss_mb=%.1f\n", maxRssMb());
        return 0;
    } else if (phase == "restore") {
        if (snapshotPath.empty())
            usage();
        std::string err;
        if (!sys.restoreSnapshotFile(snapshotPath, &err)) {
            std::fprintf(stderr, "restore failed: %s\n", err.c_str());
            return 1;
        }
        sys.run();
    } else {
        usage();
    }

    const RunStats stats = sys.report();
    std::printf("digest=0x%016llx\n",
                 (unsigned long long)digestOf(stats));
    std::printf("instructions=%llu cycles=%llu\n",
                 (unsigned long long)stats.instructions,
                 (unsigned long long)stats.cycles);
    std::printf("maxrss_mb=%.1f\n", maxRssMb());
    if (sys.valueViolations() != 0) {
        std::fprintf(stderr, "value violations: %llu\n",
                      (unsigned long long)sys.valueViolations());
        return 1;
    }
    if (rssLimitMb > 0 && maxRssMb() > rssLimitMb) {
        std::fprintf(stderr, "peak RSS %.1f MB exceeds limit %.1f MB\n",
                      maxRssMb(), rssLimitMb);
        return 1;
    }
    return 0;
}
