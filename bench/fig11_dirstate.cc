/**
 * @file
 * Fig. 11 reproduction: for Protozoa-MW, the share of directory
 * accesses that found the region in Owned state with
 * {exactly one owner}, {one owner plus sharers}, {more than one
 * owner} — the sharing-behaviour census of the multiple-owner
 * directory.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace protozoa;
using namespace protozoa::bench;

int
main()
{
    const double scale = envScale();
    std::printf("Fig. 11: directory Owned-state census under "
                "Protozoa-MW (scale=%.2f)\n\n", scale);

    TextTable table({"app", "1owner", "1owner+sharers", ">1owner",
                     "owned-accesses"});

    for (const auto &spec : paperBenchmarks()) {
        std::fprintf(stderr, "  running %-18s MW...\n",
                     spec.name.c_str());
        SystemConfig cfg;
        cfg.protocol = ProtocolKind::ProtozoaMW;
        const RunStats stats = runBenchmark(cfg, spec.name, scale);

        const double total = static_cast<double>(
            stats.dir.ownedOneOwnerOnly +
            stats.dir.ownedOneOwnerPlusSharers +
            stats.dir.ownedMultiOwner);
        auto pct = [&](std::uint64_t v) {
            return total > 0
                ? TextTable::pct(static_cast<double>(v) / total)
                : std::string("-");
        };
        table.addRow({spec.name, pct(stats.dir.ownedOneOwnerOnly),
                      pct(stats.dir.ownedOneOwnerPlusSharers),
                      pct(stats.dir.ownedMultiOwner),
                      std::to_string(static_cast<std::uint64_t>(total))});
    }

    table.print(std::cout);
    std::printf("\nPaper reference: mat-mul/word-count/linear-"
                "regression have (almost) no Owned-state lookups; "
                "raytrace is single-owner; string-match finds >1 "
                "owner in over 90%% of lookups.\n");
    return 0;
}
