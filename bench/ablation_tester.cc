/**
 * @file
 * Sec. 3.6 verification experiment: the random protocol tester, run
 * per protocol with shrunken caches (forcing evictions, writeback
 * races, and inclusive recalls), reporting load-value and SWMR
 * invariant violations — both must be zero — plus activity counters
 * proving the hard paths were exercised.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "sim/random_tester.hh"

using namespace protozoa;
using namespace protozoa::bench;

int
main()
{
    const double scale = envScale();
    const auto accesses =
        static_cast<std::uint64_t>(12000 * scale);

    std::printf("Sec. 3.6: random protocol tester "
                "(%llu accesses/core x 16 cores per protocol)\n\n",
                static_cast<unsigned long long>(accesses));

    TextTable table({"protocol", "value-violations", "swmr-violations",
                     "misses", "invalidations", "recalls"});

    bool all_clean = true;
    for (ProtocolKind kind : allProtocols()) {
        std::fprintf(stderr, "  fuzzing %s...\n", shortName(kind));
        RandomTester::Params p;
        p.protocol = kind;
        p.accessesPerCore = accesses;
        p.regions = 16;
        p.checkPeriod = 128;
        p.seed = 2026;
        const auto result = RandomTester::run(p);

        all_clean &= result.valueViolations == 0 &&
            result.invariantViolations == 0;
        table.addRow({shortName(kind),
                      std::to_string(result.valueViolations),
                      std::to_string(result.invariantViolations),
                      std::to_string(result.stats.l1.misses),
                      std::to_string(result.stats.l1.invMsgsReceived),
                      std::to_string(result.stats.dir.recalls)});
    }

    table.print(std::cout);
    std::printf("\n%s\n", all_clean
                              ? "PASS: all protocols clean."
                              : "FAIL: violations detected!");
    return all_clean ? 0 : 1;
}
