/**
 * @file
 * Component micro-benchmarks (google-benchmark): hot-path costs of
 * the simulator's data structures — Amoeba set lookups, predictor
 * operations, event-queue scheduling, mesh accounting — plus a small
 * end-to-end simulation throughput measurement.
 */

#include <benchmark/benchmark.h>

#include "cache/amoeba_cache.hh"
#include "cache/spatial_predictor.hh"
#include "common/event_queue.hh"
#include "common/flat_table.hh"
#include "common/rng.hh"
#include "mem/golden_memory.hh"
#include "noc/mesh.hh"
#include "protocol/coherence_msg.hh"
#include "protozoa/protozoa.hh"

namespace protozoa {
namespace {

AmoebaBlock
makeBlock(Addr region, WordRange range)
{
    AmoebaBlock blk;
    blk.region = region;
    blk.range = range;
    blk.words.assign(range.words(), 0);
    return blk;
}

void
BM_AmoebaLookupHit(benchmark::State &state)
{
    SystemConfig cfg;
    AmoebaCache cache(cfg);
    // Populate one set with mixed-granularity blocks.
    const Addr base = 0;
    for (unsigned i = 0; i < 8; ++i)
        cache.insert(makeBlock(base + i * cfg.l1Sets * 64,
                               WordRange(i % 4, i % 4 + 2)));
    Rng rng(1);
    for (auto _ : state) {
        const unsigned i = static_cast<unsigned>(rng.below(8));
        benchmark::DoNotOptimize(
            cache.findCovering(base + i * cfg.l1Sets * 64, i % 4 + 1));
    }
}
BENCHMARK(BM_AmoebaLookupHit);

void
BM_AmoebaOverlapScan(benchmark::State &state)
{
    SystemConfig cfg;
    AmoebaCache cache(cfg);
    const Addr region = 0x1000 * cfg.l1Sets;
    for (unsigned w = 0; w < 8; w += 2)
        cache.insert(makeBlock(region, WordRange(w, w)));
    AmoebaCache::BlockPtrs hits;
    for (auto _ : state) {
        hits.clear();
        cache.overlapping(region, WordRange(0, 7), hits);
        benchmark::DoNotOptimize(hits.size());
    }
}
BENCHMARK(BM_AmoebaOverlapScan);

void
BM_AmoebaInsertEvict(benchmark::State &state)
{
    SystemConfig cfg;
    AmoebaCache cache(cfg);
    Addr next = 0;
    AmoebaCache::Evicted evicted;
    for (auto _ : state) {
        const Addr region = next;
        next += cfg.l1Sets * 64;   // always the same set
        evicted.clear();
        cache.makeRoom(region, WordRange(0, 7), evicted);
        benchmark::DoNotOptimize(evicted.size());
        cache.insert(makeBlock(region, WordRange(0, 7)));
    }
}
BENCHMARK(BM_AmoebaInsertEvict);

void
BM_PredictorPredict(benchmark::State &state)
{
    PcSpatialPredictor pred;
    for (Pc pc = 0; pc < 64; ++pc)
        pred.learn(pc * 4, 2, 0b11100, WordRange(0, 7));
    Rng rng(2);
    for (auto _ : state) {
        const Pc pc = 4 * rng.below(64);
        const unsigned w = static_cast<unsigned>(rng.below(8));
        benchmark::DoNotOptimize(
            pred.predict(pc, w, WordRange(w, w), 8));
    }
}
BENCHMARK(BM_PredictorPredict);

void
BM_PredictorLearn(benchmark::State &state)
{
    PcSpatialPredictor pred;
    Rng rng(3);
    for (auto _ : state) {
        const Pc pc = 4 * rng.below(64);
        pred.learn(pc, 1, static_cast<WordMask>(rng.below(256)),
                   WordRange(0, 7));
    }
}
BENCHMARK(BM_PredictorLearn);

void
BM_EventQueueScheduleStep(benchmark::State &state)
{
    EventQueue eq;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            eq.schedule(static_cast<Cycle>(i % 7), [] {});
        while (eq.step()) {
        }
    }
}
BENCHMARK(BM_EventQueueScheduleStep);

void
BM_MeshSend(benchmark::State &state)
{
    EventQueue eq;
    SystemConfig cfg;
    Mesh mesh(eq, cfg);
    Rng rng(4);
    for (auto _ : state) {
        mesh.send(static_cast<unsigned>(rng.below(16)),
                  static_cast<unsigned>(rng.below(16)), 72, [] {});
        while (eq.step()) {
        }
    }
}
BENCHMARK(BM_MeshSend);

void
BM_GoldenMemoryWriteRead(benchmark::State &state)
{
    // Store-commit + load-check hot path over a steady working set:
    // after warmup every access hits an existing page (no allocation).
    WordStore store;
    const unsigned kRegions = 256;
    for (unsigned r = 0; r < kRegions; ++r)
        store.write(static_cast<Addr>(r) * 128, 0);
    Rng rng(5);
    for (auto _ : state) {
        const Addr addr = (rng.below(kRegions) * 128) + 8 * rng.below(16);
        store.write(addr, addr);
        benchmark::DoNotOptimize(store.read(addr));
    }
}
BENCHMARK(BM_GoldenMemoryWriteRead);

void
BM_MsgPayloadBuild(benchmark::State &state)
{
    // Assemble and drain a multi-segment DATA payload, as the directory
    // and the 3-hop direct-supply path do per miss.
    const std::uint64_t run1[] = {1, 2, 3};
    const std::uint64_t run2[] = {4, 5};
    for (auto _ : state) {
        MsgData data;
        data.addRun(WordRange(0, 2), run1);
        data.addRun(WordRange(5, 6), run2);
        std::uint64_t sum = 0;
        data.forEachWord(
            [&](unsigned, std::uint64_t v) { sum += v; });
        benchmark::DoNotOptimize(sum);
    }
}
BENCHMARK(BM_MsgPayloadBuild);

void
BM_MsgPayloadBulkBuild(benchmark::State &state)
{
    // The post-mask data path of the same payload assembly: whole
    // segments land with setRange (one mask check + one memcpy) and
    // drain run-wise via forEachRun instead of word-at-a-time.
    const std::uint64_t run1[] = {1, 2, 3};
    const std::uint64_t run2[] = {4, 5};
    for (auto _ : state) {
        MsgData data;
        data.setRange(WordRange(0, 2), run1);
        data.setRange(WordRange(5, 6), run2);
        std::uint64_t sum = 0;
        data.forEachRun(
            [&](const WordRange &r, const std::uint64_t *src) {
                for (unsigned i = 0; i < r.words(); ++i)
                    sum += src[i];
            });
        benchmark::DoNotOptimize(sum);
    }
}
BENCHMARK(BM_MsgPayloadBulkBuild);

void
BM_MaskRunDecode(benchmark::State &state)
{
    // Sparse-mask -> contiguous-run decomposition (probe payload
    // gather, payload merge): countr_zero/countr_one run splitting
    // over a mix of dense, sparse, and fragmented masks.
    const WordMask masks[] = {0xffff, 0x00f3, 0x5555, 0x8001,
                              0x0ff0, 0xa5a5, 0x0001, 0xfffe};
    unsigned i = 0;
    for (auto _ : state) {
        const WordMask m = masks[i++ & 7];
        unsigned words = 0;
        forEachMaskRun(m, [&](const WordRange &r) {
            words += r.words();
        });
        benchmark::DoNotOptimize(words);
        benchmark::DoNotOptimize(maskRunCount(m));
    }
}
BENCHMARK(BM_MaskRunDecode);

void
BM_SetCoverageSnoop(benchmark::State &state)
{
    // Multi-block coherence snoops against a set whose word-coverage
    // bitmap rejects most probes with one AND: the set holds blocks
    // of the low half of each region, and half the probes ask for
    // words nothing in the set covers.
    SystemConfig cfg;
    AmoebaCache cache(cfg);
    const Addr stride = cfg.l1Sets * 64;   // always the same set
    for (unsigned i = 0; i < 6; ++i)
        cache.insert(makeBlock(stride * i, WordRange(0, 3)));
    AmoebaCache::BlockPtrs hits;
    Rng rng(6);
    for (auto _ : state) {
        const Addr region = stride * rng.below(6);
        const unsigned lo = rng.chance(0.5) ? 0 : 4;
        hits.clear();
        cache.overlapping(region, WordRange(lo, lo + 3), hits);
        benchmark::DoNotOptimize(hits.size());
    }
}
BENCHMARK(BM_SetCoverageSnoop);

void
BM_FlatTableChurn(benchmark::State &state)
{
    // Directory-style transaction churn: begin (emplace), look up,
    // finish (erase) over a rotating set of live regions.
    AddrTable<std::uint64_t> table;
    const unsigned kLive = 32;
    for (unsigned i = 0; i < kLive; ++i)
        table.emplace(static_cast<Addr>(i) * 512, i);
    Addr next = static_cast<Addr>(kLive) * 512;
    Addr oldest = 0;
    for (auto _ : state) {
        table.emplace(next, next);
        benchmark::DoNotOptimize(table.find(next));
        table.erase(oldest);
        next += 512;
        oldest += 512;
    }
}
BENCHMARK(BM_FlatTableChurn);

void
BM_PooledFifoPushPop(benchmark::State &state)
{
    // Waiting-queue traffic: enqueue behind a busy region, drain later.
    PooledFifo<std::uint64_t> pool;
    PooledFifo<std::uint64_t>::Queue q;
    for (auto _ : state) {
        for (std::uint64_t i = 0; i < 4; ++i)
            pool.push(q, i);
        std::uint64_t sum = 0;
        while (!q.empty())
            sum += pool.popFront(q);
        benchmark::DoNotOptimize(sum);
    }
}
BENCHMARK(BM_PooledFifoPushPop);

void
BM_EndToEndFalseSharing(benchmark::State &state)
{
    // Simulated references per second for the Fig. 1 workload.
    for (auto _ : state) {
        SystemConfig cfg;
        cfg.protocol = ProtocolKind::ProtozoaMW;
        TraceBuilder tb(cfg.numCores, 1);
        genFalseShareCounters(tb, cfg.numCores, 0x1000, 200, 1, 2,
                              0x40);
        System sys(cfg, tb.build());
        sys.run();
        benchmark::DoNotOptimize(sys.report().l1.misses);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 200 * 2 * 16);
}
BENCHMARK(BM_EndToEndFalseSharing)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace protozoa

BENCHMARK_MAIN();
