/**
 * @file
 * Component micro-benchmarks (google-benchmark): hot-path costs of
 * the simulator's data structures — Amoeba set lookups, predictor
 * operations, event-queue scheduling, mesh accounting — plus a small
 * end-to-end simulation throughput measurement.
 */

#include <benchmark/benchmark.h>

#include "cache/amoeba_cache.hh"
#include "cache/spatial_predictor.hh"
#include "common/event_queue.hh"
#include "common/rng.hh"
#include "noc/mesh.hh"
#include "protozoa/protozoa.hh"

namespace protozoa {
namespace {

AmoebaBlock
makeBlock(Addr region, WordRange range)
{
    AmoebaBlock blk;
    blk.region = region;
    blk.range = range;
    blk.words.assign(range.words(), 0);
    return blk;
}

void
BM_AmoebaLookupHit(benchmark::State &state)
{
    SystemConfig cfg;
    AmoebaCache cache(cfg);
    // Populate one set with mixed-granularity blocks.
    const Addr base = 0;
    for (unsigned i = 0; i < 8; ++i)
        cache.insert(makeBlock(base + i * cfg.l1Sets * 64,
                               WordRange(i % 4, i % 4 + 2)));
    Rng rng(1);
    for (auto _ : state) {
        const unsigned i = static_cast<unsigned>(rng.below(8));
        benchmark::DoNotOptimize(
            cache.findCovering(base + i * cfg.l1Sets * 64, i % 4 + 1));
    }
}
BENCHMARK(BM_AmoebaLookupHit);

void
BM_AmoebaOverlapScan(benchmark::State &state)
{
    SystemConfig cfg;
    AmoebaCache cache(cfg);
    const Addr region = 0x1000 * cfg.l1Sets;
    for (unsigned w = 0; w < 8; w += 2)
        cache.insert(makeBlock(region, WordRange(w, w)));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache.overlapping(region, WordRange(0, 7)));
}
BENCHMARK(BM_AmoebaOverlapScan);

void
BM_AmoebaInsertEvict(benchmark::State &state)
{
    SystemConfig cfg;
    AmoebaCache cache(cfg);
    Addr next = 0;
    for (auto _ : state) {
        const Addr region = next;
        next += cfg.l1Sets * 64;   // always the same set
        auto evicted = cache.makeRoom(region, WordRange(0, 7));
        benchmark::DoNotOptimize(evicted);
        cache.insert(makeBlock(region, WordRange(0, 7)));
    }
}
BENCHMARK(BM_AmoebaInsertEvict);

void
BM_PredictorPredict(benchmark::State &state)
{
    PcSpatialPredictor pred;
    for (Pc pc = 0; pc < 64; ++pc)
        pred.learn(pc * 4, 2, 0b11100, WordRange(0, 7));
    Rng rng(2);
    for (auto _ : state) {
        const Pc pc = 4 * rng.below(64);
        const unsigned w = static_cast<unsigned>(rng.below(8));
        benchmark::DoNotOptimize(
            pred.predict(pc, w, WordRange(w, w), 8));
    }
}
BENCHMARK(BM_PredictorPredict);

void
BM_PredictorLearn(benchmark::State &state)
{
    PcSpatialPredictor pred;
    Rng rng(3);
    for (auto _ : state) {
        const Pc pc = 4 * rng.below(64);
        pred.learn(pc, 1, static_cast<WordMask>(rng.below(256)),
                   WordRange(0, 7));
    }
}
BENCHMARK(BM_PredictorLearn);

void
BM_EventQueueScheduleStep(benchmark::State &state)
{
    EventQueue eq;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            eq.schedule(static_cast<Cycle>(i % 7), [] {});
        while (eq.step()) {
        }
    }
}
BENCHMARK(BM_EventQueueScheduleStep);

void
BM_MeshSend(benchmark::State &state)
{
    EventQueue eq;
    SystemConfig cfg;
    Mesh mesh(eq, cfg);
    Rng rng(4);
    for (auto _ : state) {
        mesh.send(static_cast<unsigned>(rng.below(16)),
                  static_cast<unsigned>(rng.below(16)), 72, [] {});
        while (eq.step()) {
        }
    }
}
BENCHMARK(BM_MeshSend);

void
BM_EndToEndFalseSharing(benchmark::State &state)
{
    // Simulated references per second for the Fig. 1 workload.
    for (auto _ : state) {
        SystemConfig cfg;
        cfg.protocol = ProtocolKind::ProtozoaMW;
        TraceBuilder tb(cfg.numCores, 1);
        genFalseShareCounters(tb, cfg.numCores, 0x1000, 200, 1, 2,
                              0x40);
        System sys(cfg, tb.build());
        sys.run();
        benchmark::DoNotOptimize(sys.report().l1.misses);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 200 * 2 * 16);
}
BENCHMARK(BM_EndToEndFalseSharing)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace protozoa

BENCHMARK_MAIN();
