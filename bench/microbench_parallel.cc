/**
 * @file
 * microbench_parallel: wall-clock scaling of the sharded parallel
 * simulation engine against its own 1-thread configuration.
 *
 * Measures the 16-core (4x4) and 64-core (8x8) fig_scaling machines
 * (aggregate L2 fixed at 32 MB) running the apache profile under
 * Protozoa-MW, once on the sequential oracle kernel (simThreads=0,
 * context) and once per worker-thread point {1, 2, 4, 8}. Speedup at
 * N threads is wall(1 thread) / wall(N threads) *within the same
 * binary on the same host* — the same machine-independent in-run
 * ratio idiom as the MW/MESI throughput gate — so it is meaningful on
 * any runner with at least N hardware threads. The digest-identity
 * guarantee (parallel_determinism_test) means every point simulates
 * the exact same event history; only the wall clock varies.
 *
 *   microbench_parallel                        # table + JSON
 *   microbench_parallel --json out.json
 *   microbench_parallel --gate-threads 4 --gate-speedup 1.8
 *       # exit 1 unless the 64-core config reaches the given speedup
 *   PROTOZOA_SCALE=0.05 microbench_parallel    # CI smoke
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"

using namespace protozoa;
using namespace protozoa::bench;

namespace {

struct MeshPoint
{
    unsigned cores;
    unsigned cols;
    unsigned rows;
};

const MeshPoint kPoints[] = {{16, 4, 4}, {64, 8, 8}};
const unsigned kThreadPoints[] = {0, 1, 2, 4, 8};
const char *const kBench = "apache";

/** Paper machine resized to @p pt with the 32 MB aggregate L2. */
SystemConfig
configFor(const MeshPoint &pt)
{
    SystemConfig cfg;
    cfg.protocol = ProtocolKind::ProtozoaMW;
    cfg.numCores = pt.cores;
    cfg.l2Tiles = pt.cores;
    cfg.meshCols = pt.cols;
    cfg.meshRows = pt.rows;
    cfg.l2BytesPerTile = (2ull * 1024 * 1024 * 16) / pt.cores;
    return cfg;
}

struct Point
{
    unsigned cores = 0;
    unsigned threads = 0; // 0 = sequential oracle kernel
    double wall = 0.0;
    std::uint64_t events = 0;
    Cycle cycles = 0;
};

void
writeJson(const std::string &path, double scale,
          const std::vector<Point> &points)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f,
                 "{\n  \"scale\": %.3f,\n  \"bench\": \"%s\",\n"
                 "  \"hostThreads\": %u,\n  \"points\": [\n",
                 scale, kBench, std::thread::hardware_concurrency());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        double base = 0.0;
        for (const Point &q : points) {
            if (q.cores == p.cores && q.threads == 1)
                base = q.wall;
        }
        std::fprintf(
            f,
            "    {\"cores\": %u, \"simThreads\": %u, "
            "\"wallSeconds\": %.4f, \"events\": %llu, "
            "\"eventsPerSecond\": %.0f, \"speedupVs1Thread\": %.3f}%s\n",
            p.cores, p.threads, p.wall,
            static_cast<unsigned long long>(p.events),
            p.wall > 0 ? static_cast<double>(p.events) / p.wall : 0.0,
            p.threads >= 1 && p.wall > 0 ? base / p.wall : 0.0,
            i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonPath = "BENCH_parallel.json";
    unsigned gateThreads = 0;
    double gateSpeedup = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
        else if (std::strcmp(argv[i], "--gate-threads") == 0 &&
                 i + 1 < argc)
            gateThreads = static_cast<unsigned>(std::atoi(argv[++i]));
        else if (std::strcmp(argv[i], "--gate-speedup") == 0 &&
                 i + 1 < argc)
            gateSpeedup = std::atof(argv[++i]);
    }
    const double scale = envScale();
    std::printf("microbench_parallel: sharded-engine scaling, %s, "
                "scale=%.2f, host threads=%u\n\n",
                kBench, scale, std::thread::hardware_concurrency());

    std::vector<Point> points;
    for (const MeshPoint &pt : kPoints) {
        for (unsigned threads : kThreadPoints) {
            SystemConfig cfg = configFor(pt);
            cfg.simThreads = threads;
            std::fprintf(stderr,
                         "  running %3u cores, simThreads=%u...\n",
                         pt.cores, threads);
            const RunStats stats = runBenchmark(cfg, kBench, scale);
            Point p;
            p.cores = pt.cores;
            p.threads = threads;
            p.wall = stats.kernel.wallSeconds;
            p.events = stats.kernel.eventsExecuted;
            p.cycles = stats.cycles;
            points.push_back(p);
        }
    }

    double gated = 0.0;
    for (const MeshPoint &pt : kPoints) {
        std::printf("%u cores (%ux%u)\n", pt.cores, pt.cols, pt.rows);
        TextTable table({"simThreads", "wall(s)", "Mevents/s",
                         "speedup/1T"});
        double base = 0.0;
        for (const Point &p : points) {
            if (p.cores == pt.cores && p.threads == 1)
                base = p.wall;
        }
        for (const Point &p : points) {
            if (p.cores != pt.cores)
                continue;
            const double speedup =
                p.threads >= 1 && p.wall > 0 ? base / p.wall : 0.0;
            table.addRow(
                {p.threads == 0 ? "seq" : std::to_string(p.threads),
                 TextTable::fmt(p.wall, 2),
                 TextTable::fmt(p.events / p.wall / 1e6, 2),
                 p.threads == 0 ? "-" : TextTable::fmt(speedup, 2)});
            if (pt.cores == 64 && p.threads == gateThreads)
                gated = speedup;
        }
        table.print(std::cout);
        std::printf("\n");
    }

    writeJson(jsonPath, scale, points);
    std::printf("wrote %s\n", jsonPath.c_str());

    if (gateThreads > 0) {
        std::printf("gate: 64-core speedup at %u threads = %.2fx "
                    "(need >= %.2fx)\n",
                    gateThreads, gated, gateSpeedup);
        if (gated < gateSpeedup) {
            std::fprintf(stderr,
                         "FAIL: parallel engine speedup regressed\n");
            return 1;
        }
    }
    return 0;
}
