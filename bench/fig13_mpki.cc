/**
 * @file
 * Fig. 13 reproduction: miss rate (MPKI) for MESI, Protozoa-SW,
 * Protozoa-SW+MR, Protozoa-MW across all applications.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace protozoa;
using namespace protozoa::bench;

int
main()
{
    const double scale = envScale();
    std::printf("Fig. 13: miss rate in MPKI (scale=%.2f)\n\n", scale);

    const auto rows = sweepAllBenchmarks(allProtocols(), scale);

    TextTable table({"app", "MESI", "SW", "SW+MR", "MW", "MW vs MESI"});
    std::vector<double> reduction_sw, reduction_mw, reduction_mr;
    std::vector<double> hot_sw, hot_mw, hot_mr;   // MPKI >= 6 subset

    for (const auto &row : rows) {
        const double mesi = row[ProtocolKind::MESI].mpki();
        const double sw = row[ProtocolKind::ProtozoaSW].mpki();
        const double mr = row[ProtocolKind::ProtozoaSWMR].mpki();
        const double mw = row[ProtocolKind::ProtozoaMW].mpki();
        table.addRow({row.bench, TextTable::fmt(mesi),
                      TextTable::fmt(sw), TextTable::fmt(mr),
                      TextTable::fmt(mw),
                      TextTable::pct(mesi > 0 ? (mesi - mw) / mesi : 0,
                                     1)});
        if (mesi > 0) {
            reduction_sw.push_back(sw / mesi);
            reduction_mr.push_back(mr / mesi);
            reduction_mw.push_back(mw / mesi);
            if (mesi >= 6.0) {
                hot_sw.push_back(sw / mesi);
                hot_mr.push_back(mr / mesi);
                hot_mw.push_back(mw / mesi);
            }
        }
    }
    table.print(std::cout);

    std::printf("\nMean miss-rate vs MESI: SW=%.0f%%  SW+MR=%.0f%%  "
                "MW=%.0f%%\n",
                100 * mean(reduction_sw), 100 * mean(reduction_mr),
                100 * mean(reduction_mw));
    std::printf("Miss-heavy subset (MESI MPKI >= 6, %zu apps): "
                "SW=%.0f%%  SW+MR=%.0f%%  MW=%.0f%%  (paper: SW 65%%, "
                "SW+MR/MW 40%% on its 10-app subset)\n",
                hot_sw.size(), 100 * mean(hot_sw), 100 * mean(hot_mr),
                100 * mean(hot_mw));
    std::printf("Paper reference: SW reduces misses 19%% on average; "
                "SW+MR and MW reduce them 36%% on average; "
                "linear-regression falls by 99%% and histogram by 71%% "
                "under MW.\n");
    return 0;
}
