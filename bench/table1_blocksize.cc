/**
 * @file
 * Table 1 reproduction: application behaviour under the baseline MESI
 * protocol as the fixed block size varies 16 -> 32 -> 64 -> 128 bytes.
 *
 * For each application the harness prints the paper's trend arrows
 * for MPKI and invalidations across each size step, the optimal block
 * size (minimizing MPKI, breaking ties toward fewer invalidations),
 * and USED% at 64 bytes.
 *
 * Arrow legend (matching Table 1):  = within 10%,  ^ 10-33% increase,
 * ^^ >33%, ^^^ >50%, v/vv the decreasing counterparts.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/stats.hh"
#include "sim/stats_report.hh"

using namespace protozoa;

int
main()
{
    const double scale = envScale();
    const unsigned sizes[4] = {16, 32, 64, 128};

    TextTable table({"app", "16->32 MPK", "INV", "32->64 MPK", "INV",
                     "64->128 MPK", "INV", "opt", "USED%@64"});

    std::printf("Table 1: MESI block-size sensitivity "
                "(scale=%.2f)\n\n", scale);

    for (const auto &spec : paperBenchmarks()) {
        double mpki[4];
        double inv[4];
        double used64 = 0;
        for (unsigned i = 0; i < 4; ++i) {
            std::fprintf(stderr, "  running %-18s %3uB...\n",
                         spec.name.c_str(), sizes[i]);
            SystemConfig cfg;
            cfg.protocol = ProtocolKind::MESI;
            cfg.regionBytes = sizes[i];
            const RunStats stats = runBenchmark(cfg, spec.name, scale);
            mpki[i] = stats.mpki();
            inv[i] = static_cast<double>(stats.l1.invMsgsReceived);
            if (sizes[i] == 64)
                used64 = stats.usedDataFraction();
        }

        unsigned best = 0;
        for (unsigned i = 1; i < 4; ++i) {
            if (mpki[i] < mpki[best] * 0.98 ||
                (mpki[i] < mpki[best] * 1.02 && inv[i] < inv[best]))
                best = i;
        }

        table.addRow({spec.name,
                      trendArrow(mpki[0], mpki[1]),
                      trendArrow(inv[0], inv[1]),
                      trendArrow(mpki[1], mpki[2]),
                      trendArrow(inv[1], inv[2]),
                      trendArrow(mpki[2], mpki[3]),
                      trendArrow(inv[2], inv[3]),
                      std::to_string(sizes[best]),
                      TextTable::pct(used64)});
    }

    table.print(std::cout);
    std::printf("\nPaper reference: most dense-stream apps prefer "
                "64/128 B; false-sharing apps (blackscholes, "
                "linear-regression, bodytrack) prefer 16 B; USED%% at "
                "64 B spans ~16%% (canneal) to ~99%% (mat-mul).\n");
    return 0;
}
