/**
 * @file
 * Fig. 10 reproduction: control bytes sent/received at the L1s by
 * message class (REQ / FWD / INV / ACK / NACK, plus the data-message
 * headers the paper folds into "message and data identifiers"),
 * normalized to each application's MESI *total* traffic.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace protozoa;
using namespace protozoa::bench;

int
main()
{
    const double scale = envScale();
    std::printf("Fig. 10: control traffic by class, %% of MESI total "
                "(scale=%.2f)\n\n", scale);

    const auto rows = sweepAllBenchmarks(allProtocols(), scale);

    TextTable table({"app", "proto", "REQ", "FWD", "INV", "ACK", "NACK",
                     "DHDR", "ctrl-total"});
    std::vector<double> ctrlBytes[4];

    for (const auto &row : rows) {
        const double base =
            trafficBreakdown(row[ProtocolKind::MESI]).total();
        for (ProtocolKind kind : allProtocols()) {
            const L1Stats &l1 = row[kind].l1;
            std::vector<std::string> cells = {axisName(row.bench),
                                              shortName(kind)};
            for (unsigned c = 0; c < kNumCtrlClasses; ++c) {
                cells.push_back(TextTable::fmt(
                    100.0 * static_cast<double>(l1.ctrlBytes[c]) / base,
                    2));
            }
            cells.push_back(TextTable::fmt(
                100.0 * static_cast<double>(l1.ctrlBytesTotal()) / base,
                2));
            table.addRow(std::move(cells));
            ctrlBytes[static_cast<unsigned>(kind)].push_back(
                static_cast<double>(l1.ctrlBytesTotal()));
        }
    }
    table.print(std::cout);

    // Paper summary: control traffic of SW / SW+MR / MW relative to
    // MESI's control traffic (90% / 86% / 82%).
    std::printf("\nMean control bytes vs MESI control:");
    const auto &mesi = ctrlBytes[0];
    for (ProtocolKind kind : allProtocols()) {
        const auto &v = ctrlBytes[static_cast<unsigned>(kind)];
        std::vector<double> ratios;
        for (std::size_t i = 0; i < v.size(); ++i)
            ratios.push_back(mesi[i] > 0 ? v[i] / mesi[i] : 1.0);
        std::printf("  %s=%.0f%%", shortName(kind), 100 * mean(ratios));
    }
    std::printf("\nPaper reference: SW 90%%, SW+MR 86%%, MW 82%%.\n");
    return 0;
}
