/**
 * @file
 * Shared plumbing for the experiment harnesses in bench/: protocol
 * sweeps over the 28-benchmark roster with progress reporting.
 *
 * Every harness honours PROTOZOA_SCALE (workload size multiplier,
 * default 1.0) so a quick smoke pass and a high-fidelity pass use the
 * same binaries.
 */

#ifndef PROTOZOA_BENCH_BENCH_UTIL_HH
#define PROTOZOA_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "protozoa/protozoa.hh"

namespace protozoa {
namespace bench {

/** The four protocols in the paper's bar order. */
inline const std::vector<ProtocolKind> &
allProtocols()
{
    static const std::vector<ProtocolKind> kinds = {
        ProtocolKind::MESI, ProtocolKind::ProtozoaSW,
        ProtocolKind::ProtozoaSWMR, ProtocolKind::ProtozoaMW};
    return kinds;
}

/** Short column labels matching the paper's figures. */
inline const char *
shortName(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::MESI:         return "MESI";
      case ProtocolKind::ProtozoaSW:   return "SW";
      case ProtocolKind::ProtozoaSWMR: return "SW+MR";
      case ProtocolKind::ProtozoaMW:   return "MW";
    }
    return "?";
}

/** One benchmark's results across the four protocols. */
struct ProtocolSweepRow
{
    std::string bench;
    RunStats stats[4];

    const RunStats &
    operator[](ProtocolKind kind) const
    {
        return stats[static_cast<unsigned>(kind)];
    }
};

/**
 * Run every paper benchmark under the given protocols.
 * Progress goes to stderr so stdout stays a clean table.
 */
inline std::vector<ProtocolSweepRow>
sweepAllBenchmarks(const std::vector<ProtocolKind> &protocols,
                   double scale)
{
    std::vector<ProtocolSweepRow> rows;
    for (const auto &spec : paperBenchmarks()) {
        ProtocolSweepRow row;
        row.bench = spec.name;
        for (ProtocolKind kind : protocols) {
            std::fprintf(stderr, "  running %-18s %-8s...\n",
                         spec.name.c_str(), shortName(kind));
            SystemConfig cfg;
            cfg.protocol = kind;
            row.stats[static_cast<unsigned>(kind)] =
                runBenchmark(cfg, spec.name, scale);
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

/** Abbreviate a benchmark name to the paper's axis style. */
inline std::string
axisName(const std::string &name)
{
    if (name.size() <= 6)
        return name;
    return name.substr(0, 6) + ".";
}

} // namespace bench
} // namespace protozoa

#endif // PROTOZOA_BENCH_BENCH_UTIL_HH
