/**
 * @file
 * Shared plumbing for the experiment harnesses in bench/: protocol
 * sweeps over the 28-benchmark roster with progress reporting.
 *
 * Every harness honours PROTOZOA_SCALE (workload size multiplier,
 * default 1.0) and PROTOZOA_JOBS (sweep worker threads, default
 * hardware concurrency) so a quick smoke pass and a high-fidelity
 * pass use the same binaries. Sweeps fan out through runSweep(); the
 * row order — and every statistic — is identical to a serial run.
 */

#ifndef PROTOZOA_BENCH_BENCH_UTIL_HH
#define PROTOZOA_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "protozoa/protozoa.hh"

namespace protozoa {
namespace bench {

/** The four protocols in the paper's bar order. */
inline const std::vector<ProtocolKind> &
allProtocols()
{
    static const std::vector<ProtocolKind> kinds = {
        ProtocolKind::MESI, ProtocolKind::ProtozoaSW,
        ProtocolKind::ProtozoaSWMR, ProtocolKind::ProtozoaMW};
    return kinds;
}

/** Short column labels matching the paper's figures. */
inline const char *
shortName(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::MESI:         return "MESI";
      case ProtocolKind::ProtozoaSW:   return "SW";
      case ProtocolKind::ProtozoaSWMR: return "SW+MR";
      case ProtocolKind::ProtozoaMW:   return "MW";
    }
    return "?";
}

/** One benchmark's results across the four protocols. */
struct ProtocolSweepRow
{
    std::string bench;
    RunStats stats[4];

    const RunStats &
    operator[](ProtocolKind kind) const
    {
        return stats[static_cast<unsigned>(kind)];
    }
};

/**
 * Run every paper benchmark under the given protocols, fanned across
 * PROTOZOA_JOBS worker threads (one System per job; results land in
 * deterministic row order). Progress and the kernel-health summary go
 * to stderr so stdout stays a clean table.
 */
inline std::vector<ProtocolSweepRow>
sweepAllBenchmarks(const std::vector<ProtocolKind> &protocols,
                   double scale)
{
    const auto &specs = paperBenchmarks();

    std::vector<SweepJob> jobs;
    jobs.reserve(specs.size() * protocols.size());
    for (const auto &spec : specs) {
        for (ProtocolKind kind : protocols) {
            SweepJob job;
            job.bench = spec.name;
            job.cfg.protocol = kind;
            job.scale = scale;
            jobs.push_back(std::move(job));
        }
    }

    const unsigned workers = envJobs();
    std::fprintf(stderr, "  sweep: %zu runs on %u worker thread(s)\n",
                 jobs.size(), workers);
    auto stats = runSweep(
        jobs, workers, [](std::size_t, const SweepJob &job) {
            std::fprintf(stderr, "  running %-18s %-8s...\n",
                         job.bench.c_str(), shortName(job.cfg.protocol));
        });

    std::vector<ProtocolSweepRow> rows;
    rows.reserve(specs.size());
    KernelStats kernel;
    std::size_t j = 0;
    for (const auto &spec : specs) {
        ProtocolSweepRow row;
        row.bench = spec.name;
        for (ProtocolKind kind : protocols) {
            kernel.merge(stats[j].kernel);
            row.stats[static_cast<unsigned>(kind)] = std::move(stats[j]);
            ++j;
        }
        rows.push_back(std::move(row));
    }
    std::fprintf(stderr, "  %s\n", kernelSummary(kernel).c_str());
    return rows;
}

/** Abbreviate a benchmark name to the paper's axis style. */
inline std::string
axisName(const std::string &name)
{
    if (name.size() <= 6)
        return name;
    return name.substr(0, 6) + ".";
}

} // namespace bench
} // namespace protozoa

#endif // PROTOZOA_BENCH_BENCH_UTIL_HH
