/**
 * @file
 * Ablation (paper Sec. 6, "3-hop vs 4-hop"): enable direct
 * owner-to-requester forwarding and measure the latency benefit on
 * sharing-heavy workloads. Falls back to 4-hop whenever the owner
 * cannot cover the requested words — the corner case the paper calls
 * out for Protozoa's partial-overlap forwards.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace protozoa;
using namespace protozoa::bench;

int
main()
{
    const double scale = envScale();
    const char *apps[] = {"cholesky", "water", "x264", "histogram",
                          "raytrace", "linear-regression"};

    std::printf("Ablation: 3-hop direct forwarding (scale=%.2f)\n\n",
                scale);

    TextTable table({"app", "proto", "3hop-xfers", "cycles-4hop",
                     "cycles-3hop", "speedup", "traffic-ratio"});

    for (const char *name : apps) {
        for (auto kind : {ProtocolKind::MESI, ProtocolKind::ProtozoaMW}) {
            RunStats runs[2];
            for (int mode = 0; mode < 2; ++mode) {
                std::fprintf(stderr, "  running %-18s %-5s %u-hop...\n",
                             name, shortName(kind), mode ? 3 : 4);
                SystemConfig cfg;
                cfg.protocol = kind;
                cfg.threeHop = mode == 1;
                runs[mode] = runBenchmark(cfg, name, scale);
            }
            const double t4 =
                trafficBreakdown(runs[0]).total();
            const double t3 =
                trafficBreakdown(runs[1]).total();
            table.addRow(
                {name, shortName(kind),
                 std::to_string(runs[1].dir.threeHopDirect),
                 std::to_string(runs[0].cycles),
                 std::to_string(runs[1].cycles),
                 TextTable::fmt(static_cast<double>(runs[0].cycles) /
                                    static_cast<double>(runs[1].cycles)),
                 TextTable::fmt(t3 / t4)});
        }
    }

    table.print(std::cout);
    std::printf("\nExpectation: migratory and producer/consumer "
                "sharing benefit most (the extra hop sat on the\n"
                "critical path); traffic is near-neutral because the "
                "directory still collects writebacks.\n");
    return 0;
}
