/**
 * @file
 * protocheck: bounded schedule explorer CLI.
 *
 * Exhaustively enumerates cross-pair message-delivery interleavings
 * for the curated scenario library (src/check/scenario.cc) and reports
 * states, complete schedules and memoization hits per (scenario,
 * protocol) pair. Exits nonzero on any invariant violation (printing
 * the minimized counterexample) or when a run blows its state budget.
 *
 *   protocheck --scenario all --protocol all          # CI entry point
 *   protocheck --scenario evict-vs-partial-probe --protocol mw -v
 *   protocheck --list
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "check/explorer.hh"
#include "check/minimizer.hh"
#include "check/scenario.hh"
#include "protozoa/protozoa.hh"

using namespace protozoa;
using namespace protozoa::check;

namespace {

struct ProtoOpt
{
    const char *flag;
    ProtocolKind kind;
};

const ProtoOpt kProtocols[] = {
    {"mesi", ProtocolKind::MESI},
    {"sw", ProtocolKind::ProtozoaSW},
    {"swmr", ProtocolKind::ProtozoaSWMR},
    {"mw", ProtocolKind::ProtozoaMW},
};

void
usage()
{
    std::puts(
        "usage: protocheck [--scenario <name>|all] "
        "[--protocol mesi|sw|swmr|mw|all]\n"
        "                  [--max-states N] [--list] [-v]");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scenarioArg = "all";
    std::string protocolArg = "all";
    ExploreLimits lim;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
            scenarioArg = argv[++i];
        } else if (std::strcmp(argv[i], "--protocol") == 0 &&
                   i + 1 < argc) {
            protocolArg = argv[++i];
        } else if (std::strcmp(argv[i], "--max-states") == 0 &&
                   i + 1 < argc) {
            lim.maxStates = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--list") == 0) {
            for (const Scenario &s : scenarioLibrary())
                std::printf("%-24s %s\n", s.name.c_str(),
                            s.note.c_str());
            return 0;
        } else if (std::strcmp(argv[i], "-v") == 0) {
            verbose = true;
        } else {
            usage();
            return 2;
        }
    }

    std::vector<Scenario> scenarios;
    if (scenarioArg == "all") {
        scenarios = scenarioLibrary();
    } else if (const Scenario *s = findScenario(scenarioArg)) {
        scenarios.push_back(*s);
    } else {
        std::fprintf(stderr, "unknown scenario '%s' (try --list)\n",
                     scenarioArg.c_str());
        return 2;
    }

    std::vector<ProtocolKind> protocols;
    for (const ProtoOpt &p : kProtocols) {
        if (protocolArg == "all" || protocolArg == p.flag)
            protocols.push_back(p.kind);
    }
    if (protocols.empty()) {
        usage();
        return 2;
    }

    std::printf("%-24s %-6s %10s %10s %10s  %s\n", "scenario", "proto",
                "states", "schedules", "memo-hits", "result");

    int rc = 0;
    std::uint64_t totalStates = 0;
    std::uint64_t totalSchedules = 0;
    for (const Scenario &s : scenarios) {
        for (ProtocolKind proto : protocols) {
            const ExploreResult r = explore(s, proto, lim);
            totalStates += r.statesVisited;
            totalSchedules += r.schedulesCompleted;
            const char *result = "ok";
            if (r.violation)
                result = "VIOLATION";
            else if (r.budgetExhausted)
                result = "BUDGET EXHAUSTED";
            std::printf("%-24s %-6s %10llu %10llu %10llu  %s\n",
                        s.name.c_str(), protocolName(proto),
                        static_cast<unsigned long long>(r.statesVisited),
                        static_cast<unsigned long long>(
                            r.schedulesCompleted),
                        static_cast<unsigned long long>(r.memoHits),
                        result);
            if (verbose && r.violation) {
                std::printf("  [%s] %s\n", r.violation->kind.c_str(),
                            r.violation->detail.c_str());
                for (std::size_t k = 0; k < r.violation->steps.size();
                     ++k)
                    std::printf("    [%zu] choice %u: %s\n", k,
                                r.violation->schedule[k],
                                r.violation->steps[k].desc.c_str());
            }
            if (r.violation) {
                rc = 1;
                if (auto min = minimize(s, proto, lim)) {
                    std::printf(
                        "minimized to %zu accesses, %zu schedule "
                        "choices (%llu states across probes):\n%s\n",
                        min->scenario.accesses.size(),
                        min->schedule.size(),
                        static_cast<unsigned long long>(
                            min->statesExplored),
                        min->repro.c_str());
                }
            } else if (r.budgetExhausted) {
                rc = 1;
            }
        }
    }
    std::printf("total: %llu states, %llu complete schedules across "
                "%zu scenario/protocol pairs\n",
                static_cast<unsigned long long>(totalStates),
                static_cast<unsigned long long>(totalSchedules),
                scenarios.size() * protocols.size());
    if (rc == 0)
        std::puts("protocheck: all scenarios clean");
    return rc;
}
