/**
 * @file
 * protocheck: bounded schedule explorer CLI.
 *
 * Enumerates cross-pair message-delivery interleavings for the curated
 * scenario library (src/check/scenario.cc) — with sleep-set partial-
 * order reduction by default — and reports states, complete schedules,
 * memoization hits and POR counters per (scenario, protocol) pair.
 * Exits nonzero on any invariant violation (printing the minimized
 * counterexample) or when a run blows its state budget.
 *
 *   protocheck --tier fast                      # PR-gating CI entry
 *   protocheck --tier deep --max-states 2000000 # scheduled CI entry
 *   protocheck --tier large                     # 64/256-core meshes
 *   protocheck --scenario evict-vs-partial-probe --protocol mw -v
 *   protocheck --no-por --scenario upgrade-race # full enumeration
 *   protocheck --json stats.json --tier all     # machine-readable
 *   protocheck --list
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/explorer.hh"
#include "check/minimizer.hh"
#include "check/scenario.hh"
#include "protozoa/protozoa.hh"

using namespace protozoa;
using namespace protozoa::check;

namespace {

struct ProtoOpt
{
    const char *flag;
    ProtocolKind kind;
};

const ProtoOpt kProtocols[] = {
    {"mesi", ProtocolKind::MESI},
    {"sw", ProtocolKind::ProtozoaSW},
    {"swmr", ProtocolKind::ProtozoaSWMR},
    {"mw", ProtocolKind::ProtozoaMW},
};

void
usage()
{
    std::puts(
        "usage: protocheck [--scenario <name>|all]\n"
        "                  [--tier fast|deep|large|all]\n"
        "                  [--protocol mesi|sw|swmr|mw|all]\n"
        "                  [--max-states N] [--no-por] [--no-memo]\n"
        "                  [--json FILE]\n"
        "                  [--list] [-v]");
}

std::string
joinStresses(const Scenario &s)
{
    std::string out;
    for (const std::string &t : s.stresses) {
        if (!out.empty())
            out += ",";
        out += t;
    }
    return out;
}

/** One finished (scenario, protocol) run, for the JSON artifact. */
struct RunStat
{
    std::string scenario;
    const char *proto;
    ExploreResult res;
    double wallMs = 0;
};

void
writeJson(const std::string &path, const std::vector<RunStat> &stats,
          const ExploreLimits &lim)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"por\": %s,\n  \"maxStates\": %llu,\n"
                    "  \"runs\": [\n",
                 lim.por ? "true" : "false",
                 static_cast<unsigned long long>(lim.maxStates));
    for (std::size_t i = 0; i < stats.size(); ++i) {
        const RunStat &r = stats[i];
        const char *result = "ok";
        if (r.res.violation)
            result = "violation";
        else if (r.res.budgetExhausted)
            result = "budget-exhausted";
        std::fprintf(
            f,
            "    {\"scenario\": \"%s\", \"protocol\": \"%s\", "
            "\"states\": %llu, \"schedules\": %llu, "
            "\"memoHits\": %llu, \"porPruned\": %llu, "
            "\"porCommutations\": %llu, \"wallMs\": %.1f, "
            "\"result\": \"%s\"}%s\n",
            r.scenario.c_str(), r.proto,
            static_cast<unsigned long long>(r.res.statesVisited),
            static_cast<unsigned long long>(r.res.schedulesCompleted),
            static_cast<unsigned long long>(r.res.memoHits),
            static_cast<unsigned long long>(r.res.porPruned),
            static_cast<unsigned long long>(r.res.porCommutations),
            r.wallMs, result, i + 1 < stats.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scenarioArg;
    std::string protocolArg = "all";
    std::string tierArg = "all";
    std::string jsonPath;
    ExploreLimits lim;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
            scenarioArg = argv[++i];
        } else if (std::strcmp(argv[i], "--protocol") == 0 &&
                   i + 1 < argc) {
            protocolArg = argv[++i];
        } else if (std::strcmp(argv[i], "--tier") == 0 && i + 1 < argc) {
            tierArg = argv[++i];
        } else if (std::strcmp(argv[i], "--max-states") == 0 &&
                   i + 1 < argc) {
            lim.maxStates = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--no-por") == 0) {
            lim.por = false;
        } else if (std::strcmp(argv[i], "--no-memo") == 0) {
            lim.memo = false;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            jsonPath = argv[++i];
        } else if (std::strcmp(argv[i], "--list") == 0) {
            for (const Scenario &s : scenarioLibrary())
                std::printf("%-24s %-5s %-40s [%s]\n", s.name.c_str(),
                            s.large ? "large" : s.deep ? "deep" : "fast",
                            s.note.c_str(), joinStresses(s).c_str());
            return 0;
        } else if (std::strcmp(argv[i], "-v") == 0) {
            verbose = true;
        } else {
            usage();
            return 2;
        }
    }
    if (tierArg != "fast" && tierArg != "deep" && tierArg != "large" &&
        tierArg != "all") {
        usage();
        return 2;
    }

    std::vector<Scenario> scenarios;
    if (scenarioArg.empty() || scenarioArg == "all") {
        for (const Scenario &s : scenarioLibrary()) {
            if (tierArg == "fast" && (s.deep || s.large))
                continue;
            if (tierArg == "deep" && !s.deep)
                continue;
            if (tierArg == "large" && !s.large)
                continue;
            scenarios.push_back(s);
        }
    } else if (const Scenario *s = findScenario(scenarioArg)) {
        scenarios.push_back(*s);
    } else {
        std::fprintf(stderr, "unknown scenario '%s' (try --list)\n",
                     scenarioArg.c_str());
        return 2;
    }

    std::vector<ProtocolKind> protocols;
    for (const ProtoOpt &p : kProtocols) {
        if (protocolArg == "all" || protocolArg == p.flag)
            protocols.push_back(p.kind);
    }
    if (protocols.empty()) {
        usage();
        return 2;
    }

    std::printf("%-24s %-6s %9s %9s %9s %9s %9s  %s\n", "scenario",
                "proto", "states", "scheds", "memo", "pruned",
                "commute", "result");

    int rc = 0;
    std::uint64_t totalStates = 0;
    std::uint64_t totalSchedules = 0;
    std::vector<RunStat> stats;
    for (const Scenario &s : scenarios) {
        for (ProtocolKind proto : protocols) {
            const auto t0 = std::chrono::steady_clock::now();
            const ExploreResult r = explore(s, proto, lim);
            const double wallMs =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            totalStates += r.statesVisited;
            totalSchedules += r.schedulesCompleted;
            stats.push_back({s.name, protocolName(proto), r, wallMs});
            const char *result = "ok";
            if (r.violation)
                result = "VIOLATION";
            else if (r.budgetExhausted)
                result = "BUDGET EXHAUSTED";
            std::printf("%-24s %-6s %9llu %9llu %9llu %9llu %9llu  %s\n",
                        s.name.c_str(), protocolName(proto),
                        static_cast<unsigned long long>(r.statesVisited),
                        static_cast<unsigned long long>(
                            r.schedulesCompleted),
                        static_cast<unsigned long long>(r.memoHits),
                        static_cast<unsigned long long>(r.porPruned),
                        static_cast<unsigned long long>(
                            r.porCommutations),
                        result);
            if (verbose && r.violation) {
                std::printf("  [%s] %s\n", r.violation->kind.c_str(),
                            r.violation->detail.c_str());
                for (std::size_t k = 0; k < r.violation->steps.size();
                     ++k)
                    std::printf("    [%zu] choice %u: %s\n", k,
                                r.violation->schedule[k],
                                r.violation->steps[k].desc.c_str());
            }
            if (r.violation) {
                rc = 1;
                if (auto min = minimize(s, proto, lim)) {
                    std::printf(
                        "minimized to %zu accesses, %zu schedule "
                        "choices (%llu states across probes):\n%s\n",
                        min->scenario.accesses.size(),
                        min->schedule.size(),
                        static_cast<unsigned long long>(
                            min->statesExplored),
                        min->repro.c_str());
                }
            } else if (r.budgetExhausted) {
                rc = 1;
            }
        }
    }
    std::printf("total: %llu states, %llu complete schedules across "
                "%zu scenario/protocol pairs\n",
                static_cast<unsigned long long>(totalStates),
                static_cast<unsigned long long>(totalSchedules),
                scenarios.size() * protocols.size());
    if (!jsonPath.empty())
        writeJson(jsonPath, stats, lim);
    if (rc == 0)
        std::puts("protocheck: all scenarios clean");
    return rc;
}
