/**
 * @file
 * Ablation (DESIGN.md): how does the REGION size — the coherence-
 * metadata granularity and maximum block size — affect Protozoa-MW?
 *
 * The paper fixes REGION at 64 B; this sweep shows the trade-off it
 * navigates: smaller regions cap spatial prefetching, larger regions
 * raise directory reach per entry and widen false-sharing exposure in
 * the region-granularity protocols.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace protozoa;
using namespace protozoa::bench;

int
main()
{
    const double scale = envScale();
    const unsigned regions[3] = {32, 64, 128};
    const char *apps[] = {"canneal", "histogram", "linear-regression",
                          "mat-mul", "streamcluster", "x264"};

    std::printf("Ablation: REGION size sweep under Protozoa-MW "
                "(scale=%.2f)\n\n", scale);

    TextTable table({"app", "region", "MPKI", "used%", "traffic-bytes",
                     "flit-hops"});

    for (const char *name : apps) {
        for (unsigned region : regions) {
            std::fprintf(stderr, "  running %-18s region=%u...\n",
                         name, region);
            SystemConfig cfg;
            cfg.protocol = ProtocolKind::ProtozoaMW;
            cfg.regionBytes = region;
            const RunStats stats = runBenchmark(cfg, name, scale);
            const auto tb = trafficBreakdown(stats);
            table.addRow({name, std::to_string(region),
                          TextTable::fmt(stats.mpki()),
                          TextTable::pct(stats.usedDataFraction()),
                          TextTable::fmt(tb.total(), 0),
                          std::to_string(stats.net.flitHops)});
        }
    }

    table.print(std::cout);
    std::printf("\nExpectation: dense streams (mat-mul) want large "
                "regions for spatial reach; adaptive fetch makes MW "
                "far less sensitive to region size than MESI is to "
                "block size (compare Table 1).\n");
    return 0;
}
