/**
 * @file
 * microbench_stream: throughput of the long-horizon runtime's two I/O
 * paths.
 *
 *  - Trace ingest (records/s): the legacy load-it-all text format
 *    parsed by readTrace() vs the chunked PZTR binary streamed through
 *    StreamingTraceFile, writer included for context. Both sides
 *    consume every record through the TraceSource interface, so the
 *    numbers compare end-to-end ingest, not just decode.
 *
 *  - Snapshot save/restore latency and image size vs system size
 *    (16-core 4x4 and 64-core 8x8 machines, mid-run checkpoint of the
 *    apache profile).
 *
 * Results go to stdout as a table and to BENCH_stream.json. Honours
 * PROTOZOA_SCALE: record counts and the snapshot workloads shrink for
 * CI smoke runs.
 *
 *   microbench_stream                  # table + BENCH_stream.json
 *   microbench_stream --json out.json
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/serialize.hh"
#include "workload/streaming_trace.hh"
#include "workload/trace_io.hh"

using namespace protozoa;
using namespace protozoa::bench;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct IngestPoint
{
    const char *format = "";
    std::uint64_t records = 0;
    double writeSec = 0.0;
    double readSec = 0.0;
};

struct SnapshotPoint
{
    unsigned cores = 0;
    std::uint64_t bytes = 0;
    double saveMs = 0.0;
    double restoreMs = 0.0;
};

std::vector<std::vector<TraceRecord>>
materialize(unsigned cores, std::uint64_t per_core)
{
    std::vector<std::vector<TraceRecord>> recs(cores);
    for (unsigned c = 0; c < cores; ++c) {
        GeneratorTraceSource g(syntheticStreamRefill(7, c, cores, 4096),
                               per_core, 4096);
        recs[c].reserve(per_core);
        TraceRecord r;
        while (g.next(r))
            recs[c].push_back(r);
    }
    return recs;
}

std::uint64_t
consumeAll(Workload &wl)
{
    std::uint64_t n = 0;
    TraceRecord r;
    for (auto &src : wl)
        while (src->next(r))
            ++n;
    return n;
}

IngestPoint
benchText(const std::vector<std::vector<TraceRecord>> &recs,
          std::uint64_t total)
{
    IngestPoint p;
    p.format = "text";
    p.records = total;
    const std::string path = "microbench_stream.trace.txt";

    double t0 = now();
    {
        std::ofstream out(path);
        TraceWriter w(out, TraceWriter::Format::Text,
                      static_cast<unsigned>(recs.size()));
        for (unsigned c = 0; c < recs.size(); ++c)
            for (const TraceRecord &r : recs[c])
                w.append(c, r);
    }
    p.writeSec = now() - t0;

    t0 = now();
    Workload wl =
        readTraceFile(path, static_cast<unsigned>(recs.size()));
    const std::uint64_t got = consumeAll(wl);
    p.readSec = now() - t0;
    if (got != total)
        std::fprintf(stderr, "text ingest lost records: %llu/%llu\n",
                      (unsigned long long)got, (unsigned long long)total);
    std::remove(path.c_str());
    return p;
}

IngestPoint
benchBinary(const std::vector<std::vector<TraceRecord>> &recs,
            std::uint64_t total)
{
    IngestPoint p;
    p.format = "binary";
    p.records = total;
    const std::string path = "microbench_stream.trace.pztr";

    double t0 = now();
    {
        std::ofstream out(path, std::ios::binary);
        TraceWriter w(out, TraceWriter::Format::Binary,
                      static_cast<unsigned>(recs.size()));
        for (unsigned c = 0; c < recs.size(); ++c)
            for (const TraceRecord &r : recs[c])
                w.append(c, r);
    }
    p.writeSec = now() - t0;

    t0 = now();
    std::string err;
    auto file = StreamingTraceFile::open(path, &err);
    if (!file) {
        std::fprintf(stderr, "%s\n", err.c_str());
        std::exit(1);
    }
    Workload wl = file->makeWorkload();
    const std::uint64_t got = consumeAll(wl);
    p.readSec = now() - t0;
    if (got != total)
        std::fprintf(stderr, "binary ingest lost records: %llu/%llu\n",
                      (unsigned long long)got, (unsigned long long)total);
    std::remove(path.c_str());
    return p;
}

SnapshotPoint
benchSnapshot(unsigned cores, unsigned cols, unsigned rows, double scale)
{
    SystemConfig cfg;
    cfg.protocol = ProtocolKind::ProtozoaMW;
    cfg.numCores = cores;
    cfg.l2Tiles = cores;
    cfg.meshCols = cols;
    cfg.meshRows = rows;
    const BenchSpec &spec = findBenchmark("apache");

    System donor(cfg, spec.gen(cfg, scale));
    donor.runTo(50000);

    SnapshotPoint p;
    p.cores = cores;
    Serializer img;
    std::string err;
    double t0 = now();
    if (!donor.saveSnapshot(img, &err)) {
        std::fprintf(stderr, "save failed: %s\n", err.c_str());
        std::exit(1);
    }
    p.saveMs = (now() - t0) * 1e3;
    p.bytes = img.size();

    System fresh(cfg, spec.gen(cfg, scale));
    Deserializer d(img.bytes().data(), img.size());
    t0 = now();
    if (!fresh.restoreSnapshot(d, &err)) {
        std::fprintf(stderr, "restore failed: %s\n", err.c_str());
        std::exit(1);
    }
    p.restoreMs = (now() - t0) * 1e3;
    return p;
}

void
writeJson(const std::string &path, double scale,
          const std::vector<IngestPoint> &ingest,
          const std::vector<SnapshotPoint> &snaps)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"scale\": %g,\n  \"ingest\": [\n", scale);
    for (std::size_t i = 0; i < ingest.size(); ++i) {
        const IngestPoint &p = ingest[i];
        std::fprintf(f,
                     "    {\"format\": \"%s\", \"records\": %llu, "
                     "\"write_sec\": %.6f, \"read_sec\": %.6f, "
                     "\"read_records_per_sec\": %.0f}%s\n",
                     p.format, (unsigned long long)p.records,
                     p.writeSec, p.readSec,
                     p.readSec > 0 ? p.records / p.readSec : 0.0,
                     i + 1 < ingest.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"snapshot\": [\n");
    for (std::size_t i = 0; i < snaps.size(); ++i) {
        const SnapshotPoint &p = snaps[i];
        std::fprintf(f,
                     "    {\"cores\": %u, \"bytes\": %llu, "
                     "\"save_ms\": %.3f, \"restore_ms\": %.3f}%s\n",
                     p.cores, (unsigned long long)p.bytes, p.saveMs,
                     p.restoreMs, i + 1 < snaps.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonPath = "BENCH_stream.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            jsonPath = argv[++i];
    }
    double scale = 1.0;
    if (const char *s = std::getenv("PROTOZOA_SCALE"))
        scale = std::atof(s);

    const unsigned cores = 16;
    const std::uint64_t perCore =
        static_cast<std::uint64_t>(200000 * scale) + 1000;
    const auto recs = materialize(cores, perCore);
    const std::uint64_t total = perCore * cores;

    std::vector<IngestPoint> ingest;
    ingest.push_back(benchText(recs, total));
    ingest.push_back(benchBinary(recs, total));

    std::printf("%-8s %12s %12s %12s %16s\n", "format", "records",
                "write s", "read s", "read rec/s");
    for (const IngestPoint &p : ingest)
        std::printf("%-8s %12llu %12.3f %12.3f %16.0f\n", p.format,
                    (unsigned long long)p.records, p.writeSec, p.readSec,
                    p.readSec > 0 ? p.records / p.readSec : 0.0);

    std::vector<SnapshotPoint> snaps;
    snaps.push_back(benchSnapshot(16, 4, 4, 0.2 * scale + 0.01));
    snaps.push_back(benchSnapshot(64, 8, 8, 0.05 * scale + 0.01));

    std::printf("\n%-8s %12s %12s %12s\n", "cores", "image B",
                "save ms", "restore ms");
    for (const SnapshotPoint &p : snaps)
        std::printf("%-8u %12llu %12.3f %12.3f\n", p.cores,
                    (unsigned long long)p.bytes, p.saveMs, p.restoreMs);

    writeJson(jsonPath, scale, ingest, snaps);
    return 0;
}
