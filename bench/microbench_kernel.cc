/**
 * @file
 * Kernel micro-benchmark: events/sec of the calendar/bucket scheduler
 * vs the previous binary-heap + std::function kernel, on a workload
 * mix shaped like the simulator's (mostly small fixed latencies, a
 * 300-cycle memory tier, and a long tail past the ring horizon), with
 * CoherenceMsg-sized callback captures.
 *
 * The legacy scheduler is replicated here verbatim-in-spirit so the
 * comparison stays in one binary under identical flags; the numbers
 * are recorded in EXPERIMENTS.md.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/event_queue.hh"
#include "common/rng.hh"
#include "sim/random_tester.hh"

namespace protozoa {
namespace {

/**
 * The pre-calendar kernel: one global binary heap of heap-allocated
 * std::function callbacks (the seed implementation of EventQueue).
 */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    Cycle now() const { return curCycle; }

    void
    schedule(Cycle delay, Callback cb)
    {
        events.push(Event{curCycle + delay, nextSeq++, std::move(cb)});
    }

    bool
    step()
    {
        if (events.empty())
            return false;
        Event ev = std::move(events.top().self());
        events.pop();
        curCycle = ev.when;
        ev.cb();
        return true;
    }

    void
    run()
    {
        while (step()) {
        }
    }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        mutable Callback cb;

        /** Move-enable top(): same trick, without the const_cast. */
        Event &self() const { return const_cast<Event &>(*this); }

        bool
        operator>(const Event &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
    Cycle curCycle = 0;
    std::uint64_t nextSeq = 0;
};

/**
 * Simulator-shaped delay mix (see mesh/L1/memory latencies): one raw
 * draw, masks and shifts only, so the generator does not drown out the
 * scheduler cost being measured.
 */
Cycle
mixedDelay(Rng &rng)
{
    const std::uint64_t r = rng.next();
    const unsigned sel = r & 127;
    if (sel < 90)
        return 1 + ((r >> 8) & 7);           // cache hit / mesh hop
    if (sel < 122)
        return 1 + ((r >> 8) & 255);         // directory / memory tier
    return EventQueue::kRingHorizon + ((r >> 8) & 8191); // long tail
}

/** A CoherenceMsg-sized payload carried by every callback. */
struct Payload
{
    std::uint64_t words[10];
};

/**
 * Self-rescheduling event chain: each firing touches its payload and
 * schedules a successor, exactly like a controller pipeline stage.
 */
template <typename Queue>
struct Chain
{
    Queue *q;
    Rng *rng;
    std::uint64_t *sink;
    std::uint64_t remaining;
    Payload payload;

    void
    operator()()
    {
        *sink += payload.words[0];
        if (remaining == 0)
            return;
        Chain next = *this;
        --next.remaining;
        next.payload.words[0] ^= *sink;
        q->schedule(mixedDelay(*rng), std::move(next));
    }
};

template <typename Queue>
void
runKernelMix(benchmark::State &state)
{
    constexpr unsigned kChains = 64;
    constexpr std::uint64_t kHops = 64;
    for (auto _ : state) {
        Queue q;
        Rng rng(1);
        std::uint64_t sink = 0;
        for (unsigned c = 0; c < kChains; ++c) {
            Chain<Queue> chain{&q, &rng, &sink, kHops, Payload{}};
            chain.payload.words[0] = c + 1;
            q.schedule(mixedDelay(rng), std::move(chain));
        }
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            kChains * (kHops + 1));
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * kChains * (kHops + 1),
        benchmark::Counter::kIsRate);
}

void
BM_LegacyHeapKernel(benchmark::State &state)
{
    runKernelMix<LegacyEventQueue>(state);
}
BENCHMARK(BM_LegacyHeapKernel);

void
BM_CalendarKernel(benchmark::State &state)
{
    runKernelMix<EventQueue>(state);
}
BENCHMARK(BM_CalendarKernel);

// Trivial empty-capture variant isolating pure scheduler overhead.
template <typename Queue>
void
runTrivial(benchmark::State &state)
{
    for (auto _ : state) {
        Queue q;
        Rng rng(2);
        for (int i = 0; i < 4096; ++i)
            q.schedule(mixedDelay(rng), [] {});
        q.run();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            4096);
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * 4096,
        benchmark::Counter::kIsRate);
}

void
BM_LegacyHeapKernelTrivial(benchmark::State &state)
{
    runTrivial<LegacyEventQueue>(state);
}
BENCHMARK(BM_LegacyHeapKernelTrivial);

void
BM_CalendarKernelTrivial(benchmark::State &state)
{
    runTrivial<EventQueue>(state);
}
BENCHMARK(BM_CalendarKernelTrivial);

/**
 * End-to-end system benchmark: a full 16-core System driven by the
 * random tester (hot/cold pools, golden-memory oracle on), reporting
 * simulated accesses per wall-clock second. This is the number the
 * data-path work (inline storage, pooled tables) is judged against.
 */
void
runSystemThroughput(benchmark::State &state, ProtocolKind proto)
{
    RandomTester::Params p;
    p.protocol = proto;
    p.accessesPerCore = 2000;
    p.seed = 7;
    std::uint64_t accesses = 0;
    for (auto _ : state) {
        auto res = RandomTester::run(p);
        accesses += res.accesses;
        benchmark::DoNotOptimize(res.stats.l1.misses);
        if (res.valueViolations || res.invariantViolations)
            state.SkipWithError("coherence violation during benchmark");
    }
    state.counters["accesses/s"] = benchmark::Counter(
        static_cast<double>(accesses), benchmark::Counter::kIsRate);
}

void
BM_SystemMESI(benchmark::State &state)
{
    runSystemThroughput(state, ProtocolKind::MESI);
}
BENCHMARK(BM_SystemMESI)->Unit(benchmark::kMillisecond);

void
BM_SystemProtozoaMW(benchmark::State &state)
{
    runSystemThroughput(state, ProtocolKind::ProtozoaMW);
}
BENCHMARK(BM_SystemProtozoaMW)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace protozoa

BENCHMARK_MAIN();
