/**
 * @file
 * Ablation (paper Sec. 6, "Coherence directory"): replace the
 * in-cache exact sharer sets with Bloom-summarized tracking and sweep
 * the filter size.
 *
 * The interesting trade-off for Protozoa: the number of variable-
 * granularity amoeba blocks per L1 is workload-dependent, so shadow
 * tags are awkward — a Bloom summary has fixed cost, paid in
 * false-positive probes (answered with NACKs).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace protozoa;
using namespace protozoa::bench;

int
main()
{
    const double scale = envScale();
    const char *apps[] = {"histogram", "canneal", "streamcluster",
                          "barnes"};

    std::printf("Ablation: Bloom-summarized directory under "
                "Protozoa-MW (scale=%.2f)\n\n", scale);

    TextTable table({"app", "directory", "bits/tile", "false-probes",
                     "inv-msgs", "ctrl-bytes", "MPKI"});

    for (const char *name : apps) {
        struct Setup
        {
            const char *label;
            DirectoryKind kind;
            unsigned buckets;
        };
        const Setup setups[] = {
            {"exact", DirectoryKind::InCacheExact, 0},
            {"bloom-64", DirectoryKind::TaglessBloom, 64},
            {"bloom-256", DirectoryKind::TaglessBloom, 256},
            {"bloom-1024", DirectoryKind::TaglessBloom, 1024},
        };
        for (const Setup &setup : setups) {
            std::fprintf(stderr, "  running %-14s %-10s...\n", name,
                         setup.label);
            SystemConfig cfg;
            cfg.protocol = ProtocolKind::ProtozoaMW;
            cfg.directory = setup.kind;
            cfg.bloomBuckets = setup.buckets ? setup.buckets : 256;
            const RunStats stats = runBenchmark(cfg, name, scale);

            const std::uint64_t bits = setup.kind ==
                    DirectoryKind::TaglessBloom
                ? 2ull * setup.buckets * cfg.bloomHashes * cfg.numCores
                : 0;   // exact sets ride in the L2 tags ("free")
            table.addRow({name, setup.label, std::to_string(bits),
                          std::to_string(stats.dir.bloomFalseProbes),
                          std::to_string(stats.l1.invMsgsReceived),
                          std::to_string(stats.l1.ctrlBytesTotal()),
                          TextTable::fmt(stats.mpki())});
        }
    }

    table.print(std::cout);
    std::printf("\nExpectation: misses are identical in every row "
                "(imprecision costs probes, not correctness); "
                "false-positive probes shrink rapidly with filter "
                "size.\n");
    return 0;
}
