/**
 * @file
 * Fig. 9 reproduction: bytes sent/received at the L1s, split into
 * Control / Unused-data / Used-data, for MESI, Protozoa-SW,
 * Protozoa-SW+MR and Protozoa-MW, normalized to each application's
 * MESI total (=100%).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace protozoa;
using namespace protozoa::bench;

int
main()
{
    const double scale = envScale();
    std::printf("Fig. 9: L1 traffic breakdown, %% of MESI total "
                "(scale=%.2f)\n\n", scale);

    const auto rows = sweepAllBenchmarks(allProtocols(), scale);

    TextTable table({"app", "proto", "ctrl%", "unused%", "used%",
                     "total%"});
    std::vector<double> totals[4];

    for (const auto &row : rows) {
        const double base =
            trafficBreakdown(row[ProtocolKind::MESI]).total();
        for (ProtocolKind kind : allProtocols()) {
            const TrafficBreakdown tb = trafficBreakdown(row[kind]);
            table.addRow({axisName(row.bench), shortName(kind),
                          TextTable::fmt(100 * tb.control / base, 1),
                          TextTable::fmt(100 * tb.unusedData / base, 1),
                          TextTable::fmt(100 * tb.usedData / base, 1),
                          TextTable::fmt(100 * tb.total() / base, 1)});
            totals[static_cast<unsigned>(kind)].push_back(tb.total() /
                                                          base);
        }
    }
    table.print(std::cout);

    std::printf("\nGeomean total traffic vs MESI:");
    for (ProtocolKind kind : allProtocols()) {
        std::printf("  %s=%.0f%%", shortName(kind),
                    100 * geomean(totals[static_cast<unsigned>(kind)]));
    }
    std::printf("\nPaper reference: SW 74%%, SW+MR 66%%, MW 63%% "
                "(reductions of 26%%/34%%/37%%).\n");
    return 0;
}
