/**
 * @file
 * Fig. 12 reproduction: distribution of cache-block granularities
 * fetched into the L1s under Protozoa-MW, bucketed as in the paper
 * (1-2 / 3-4 / 5-6 / 7-8 words).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace protozoa;
using namespace protozoa::bench;

int
main()
{
    const double scale = envScale();
    std::printf("Fig. 12: L1 block-size distribution under Protozoa-MW "
                "(scale=%.2f)\n\n", scale);

    TextTable table({"app", "1-2 words", "3-4 words", "5-6 words",
                     "7-8 words", "blocks"});

    for (const auto &spec : paperBenchmarks()) {
        std::fprintf(stderr, "  running %-18s MW...\n",
                     spec.name.c_str());
        SystemConfig cfg;
        cfg.protocol = ProtocolKind::ProtozoaMW;
        const RunStats stats = runBenchmark(cfg, spec.name, scale);

        double bucket[4] = {0, 0, 0, 0};
        double total = 0;
        for (unsigned w = 1; w <= 8; ++w) {
            bucket[(w - 1) / 2] +=
                static_cast<double>(stats.l1.blockSizeHist[w]);
            total += static_cast<double>(stats.l1.blockSizeHist[w]);
        }
        auto pct = [&](double v) {
            return total > 0 ? TextTable::pct(v / total)
                             : std::string("-");
        };
        table.addRow({spec.name, pct(bucket[0]), pct(bucket[1]),
                      pct(bucket[2]), pct(bucket[3]),
                      std::to_string(static_cast<std::uint64_t>(total))});
    }

    table.print(std::cout);
    std::printf("\nPaper reference: blackscholes/bodytrack/canneal "
                "mostly 1-2 word blocks; linear-regression, mat-mul "
                "and kmeans mostly 8-word blocks.\n");
    return 0;
}
