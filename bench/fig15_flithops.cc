/**
 * @file
 * Fig. 15 reproduction: interconnect dynamic energy proxy — traffic
 * in flit-hops across the 4x4 mesh, normalized to MESI.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace protozoa;
using namespace protozoa::bench;

int
main()
{
    const double scale = envScale();
    std::printf("Fig. 15: flit-hops (network dynamic energy proxy) "
                "relative to MESI (scale=%.2f)\n\n", scale);

    const auto rows = sweepAllBenchmarks(allProtocols(), scale);

    TextTable table({"app", "SW", "SW+MR", "MW"});
    std::vector<double> r_sw, r_mr, r_mw;

    for (const auto &row : rows) {
        const double mesi =
            static_cast<double>(row[ProtocolKind::MESI].net.flitHops);
        const double sw =
            static_cast<double>(
                row[ProtocolKind::ProtozoaSW].net.flitHops) /
            mesi;
        const double mr =
            static_cast<double>(
                row[ProtocolKind::ProtozoaSWMR].net.flitHops) /
            mesi;
        const double mw =
            static_cast<double>(
                row[ProtocolKind::ProtozoaMW].net.flitHops) /
            mesi;
        table.addRow({row.bench, TextTable::fmt(sw),
                      TextTable::fmt(mr), TextTable::fmt(mw)});
        r_sw.push_back(sw);
        r_mr.push_back(mr);
        r_mw.push_back(mw);
    }
    table.print(std::cout);

    std::printf("\nMean flit-hops vs MESI: SW=%.0f%%  SW+MR=%.0f%%  "
                "MW=%.0f%%\n",
                100 * mean(r_sw), 100 * mean(r_mr), 100 * mean(r_mw));
    std::printf("Paper reference: SW eliminates 33%%, SW+MR 38%%, and "
                "MW 49%% of flit-hops on average.\n");
    return 0;
}
