/**
 * @file
 * Ablation (DESIGN.md): the fetch-granularity predictor. Protozoa's
 * gains hinge on predicting each miss's useful extent; this sweep
 * compares the Amoeba PC predictor against always-full-region,
 * fixed-4-word, and exact-word policies under Protozoa-MW.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace protozoa;
using namespace protozoa::bench;

namespace {

const char *
predictorName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::FullRegion: return "full-region";
      case PredictorKind::Fixed:      return "fixed-4w";
      case PredictorKind::PcSpatial:  return "pc-spatial";
      case PredictorKind::WordOnly:   return "word-only";
    }
    return "?";
}

} // namespace

int
main()
{
    const double scale = envScale();
    const PredictorKind predictors[] = {
        PredictorKind::FullRegion, PredictorKind::Fixed,
        PredictorKind::PcSpatial, PredictorKind::WordOnly};
    const char *apps[] = {"canneal", "facesim", "histogram", "mat-mul",
                          "swaptions", "x264"};

    std::printf("Ablation: fetch-granularity predictor under "
                "Protozoa-MW (scale=%.2f)\n\n", scale);

    TextTable table({"app", "predictor", "MPKI", "used%",
                     "traffic-bytes"});

    for (const char *name : apps) {
        for (PredictorKind predictor : predictors) {
            std::fprintf(stderr, "  running %-18s %-12s...\n", name,
                         predictorName(predictor));
            SystemConfig cfg;
            cfg.protocol = ProtocolKind::ProtozoaMW;
            cfg.predictor = predictor;
            cfg.fixedFetchWords = 4;
            const RunStats stats = runBenchmark(cfg, name, scale);
            table.addRow({name, predictorName(predictor),
                          TextTable::fmt(stats.mpki()),
                          TextTable::pct(stats.usedDataFraction()),
                          TextTable::fmt(
                              trafficBreakdown(stats).total(), 0)});
        }
    }

    table.print(std::cout);
    std::printf("\nExpectation: word-only maximizes utilization but "
                "forfeits spatial prefetching (worst MPKI on dense "
                "apps); full-region is MESI-like; pc-spatial tracks "
                "whichever is better per access site.\n");
    return 0;
}
