/**
 * @file
 * Protocol race-hunting stress campaign (Sec. 3.6: random tester).
 *
 * Fans (protocol x jitter profile x access pattern x seed) RandomTester
 * jobs across the thread pool, with golden-value checks, periodic SWMR
 * invariant scans, the deadlock watchdog and transition-coverage
 * tracking. Exits nonzero on any violation or unexplained coverage gap.
 *
 * PROTOZOA_SCALE scales accesses per core (1.0 = 2000/core/job, which
 * with the default 3x4x8 grid exceeds 1.5M accesses per protocol).
 * PROTOZOA_JOBS sets the worker count. Argument "-v" lists every
 * documented transition with its hit count. Argument "--small" runs
 * the hostile 4-core 2x2 grid instead: ~10x the seeds for the same
 * wall-clock, trading system size for interleaving diversity.
 * Argument "--large" runs the 64-core 8x8 grid: fewer seeds, but
 * recall/invalidation fan-outs span 64-wide sharer masks.
 */

#include <cstdio>
#include <cstring>
#include <iostream>

#include "check/campaign_shrink.hh"
#include "protozoa/protozoa.hh"
#include "sim/stress_campaign.hh"

using namespace protozoa;

int
main(int argc, char **argv)
{
    bool verbose = false;
    bool small = false;
    bool large = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-v") == 0)
            verbose = true;
        else if (std::strcmp(argv[i], "--small") == 0)
            small = true;
        else if (std::strcmp(argv[i], "--large") == 0)
            large = true;
    }
    const double scale = envScale();

    CampaignSpec spec = small   ? CampaignSpec::smallSystem()
                        : large ? CampaignSpec::largeMesh()
                                : CampaignSpec();
    spec.accessesPerCore =
        static_cast<std::uint64_t>(2000 * scale) + 1;
    spec.progress = false;

    std::uint64_t per_proto = spec.accessesPerCore * spec.numCores;
    per_proto *= spec.profiles.size() * spec.patterns.size() *
                 spec.seeds.size();
    std::printf("stress campaign: %zu protocols x %zu profiles x %zu "
                "patterns x %zu seeds (~%llu accesses/protocol)\n",
                spec.protocols.size(), spec.profiles.size(),
                spec.patterns.size(), spec.seeds.size(),
                static_cast<unsigned long long>(per_proto));

    const CampaignResult res = runCampaign(spec);
    std::cout << res.report(verbose);
    if (!res.failures.empty()) {
        // Auto-shrink the first (canonically ordered) failure so the
        // console already carries a small repro.
        std::printf("auto-shrinking first failure...\n");
        if (auto shrunk = check::shrinkCampaignFailure(res.failures[0])) {
            std::cout << shrunk->summary;
            if (shrunk->minimized)
                std::cout << shrunk->minimized->repro;
        } else {
            std::printf("failure did not reproduce serially; "
                        "re-run the grid point by hand\n");
        }
    }
    return res.passed() ? 0 : 1;
}
