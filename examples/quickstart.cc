/**
 * @file
 * Quickstart: the smallest useful protozoa program.
 *
 * Configure a machine (Table 4 defaults), pick a protocol, run one of
 * the paper's benchmarks, and read the statistics back. Here we run
 * the paper's headline case — linear-regression, whose false sharing
 * MESI cannot escape — under the baseline and under Protozoa-MW.
 *
 * Build & run:  ./quickstart
 */

#include <cstdio>

#include "protozoa/protozoa.hh"

using namespace protozoa;

int
main()
{
    // 1. Describe the machine. Defaults reproduce the paper's Table 4:
    //    16 in-order cores, Amoeba L1s, 4x4 mesh, 16-tile shared L2.
    SystemConfig cfg;

    // 2. Run the baseline.
    cfg.protocol = ProtocolKind::MESI;
    const RunStats mesi = runBenchmark(cfg, "linear-regression");

    // 3. Run the same workload under Protozoa-MW.
    cfg.protocol = ProtocolKind::ProtozoaMW;
    const RunStats mw = runBenchmark(cfg, "linear-regression");

    // 4. Compare.
    std::printf("linear-regression, 16 cores\n\n");
    std::printf("%-24s %14s %14s\n", "", "MESI", "Protozoa-MW");
    std::printf("%-24s %14.2f %14.2f\n", "miss rate (MPKI)",
                mesi.mpki(), mw.mpki());
    std::printf("%-24s %14.0f %14.0f\n", "L1 traffic (bytes)",
                trafficBreakdown(mesi).total(),
                trafficBreakdown(mw).total());
    std::printf("%-24s %13.0f%% %13.0f%%\n", "data bytes used",
                100 * mesi.usedDataFraction(),
                100 * mw.usedDataFraction());
    std::printf("%-24s %14llu %14llu\n", "flit-hops",
                static_cast<unsigned long long>(mesi.net.flitHops),
                static_cast<unsigned long long>(mw.net.flitHops));
    std::printf("%-24s %14llu %14llu\n", "execution cycles",
                static_cast<unsigned long long>(mesi.cycles),
                static_cast<unsigned long long>(mw.cycles));
    std::printf("\nspeedup: %.2fx (paper: 2.2x)\n",
                static_cast<double>(mesi.cycles) /
                    static_cast<double>(mw.cycles));
    return 0;
}
