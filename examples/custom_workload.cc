/**
 * @file
 * Building a custom workload against the public API.
 *
 * Models a small in-memory key-value store: 16 server threads share a
 * hash-bucket array (fine-grain read-write sharing), a read-mostly
 * configuration table, and per-thread connection scratch buffers
 * (dense private streams). The example composes the workload three
 * ways — from archetype generators, from a hand-rolled TraceBuilder
 * loop, and mixed — and compares the four protocols on it.
 *
 * Build & run:  ./custom_workload
 */

#include <cstdio>

#include "protozoa/protozoa.hh"

using namespace protozoa;

namespace {

constexpr Addr kBuckets = 0x80000000;      // shared hash buckets
constexpr Addr kConfig = 0x90000000;       // read-mostly config table
constexpr Addr kScratch = 0x20000000;      // per-thread scratch

Workload
kvStoreWorkload(const SystemConfig &cfg)
{
    TraceBuilder tb(cfg.numCores, cfg.seed);

    // 1) Archetype: dense private scratch processing (high locality).
    genPrivateStream(tb, cfg.numCores, kScratch, /*elems=*/400,
                     /*record_words=*/8, /*touch_words=*/6,
                     /*write_frac=*/0.4, /*gap=*/4, /*pc_base=*/0x900,
                     /*passes=*/2);

    // 2) Archetype: shared read-mostly config lookups.
    genSharedReadOnly(tb, cfg.numCores, kConfig, /*table_words=*/1024,
                      /*priv_base=*/kScratch + 0x1000000,
                      /*accesses=*/300, /*run_words=*/4, /*gap=*/5,
                      /*pc_base=*/0xa00);

    // 3) Hand-rolled: per-request bucket updates. Each thread mostly
    //    hits its own shard of the bucket array (words interleaved by
    //    thread), with an occasional cross-shard hit -> the same
    //    false-sharing-with-rare-conflicts shape as real bucket locks.
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        for (unsigned req = 0; req < 600; ++req) {
            const bool cross = tb.rng().chance(0.05);
            const unsigned slot = cross
                ? static_cast<unsigned>(tb.rng().below(256))
                : c + cfg.numCores *
                      static_cast<unsigned>(tb.rng().below(16));
            const Addr bucket = kBuckets + slot * kWordBytes;
            tb.load(c, bucket, 0xb00, 6);        // read bucket head
            tb.store(c, bucket, 0xb04, 6);       // link in the entry
        }
    }

    return tb.build();
}

} // namespace

int
main()
{
    std::printf("Custom workload: 16-thread in-memory KV store\n");
    std::printf("(private scratch + read-mostly config + fine-grain "
                "shared buckets)\n\n");

    std::printf("%-16s %8s %8s %12s %10s %12s\n", "protocol", "MPKI",
                "used%", "traffic-B", "flit-hops", "cycles");

    for (auto kind :
         {ProtocolKind::MESI, ProtocolKind::ProtozoaSW,
          ProtocolKind::ProtozoaSWMR, ProtocolKind::ProtozoaMW}) {
        SystemConfig cfg;
        cfg.protocol = kind;

        // runWorkload() is the one-call public entry point.
        const RunStats stats = runWorkload(cfg, kvStoreWorkload(cfg));
        const TrafficBreakdown tb = trafficBreakdown(stats);

        std::printf("%-16s %8.2f %7.0f%% %12.0f %10llu %12llu\n",
                    protocolName(kind), stats.mpki(),
                    100 * stats.usedDataFraction(), tb.total(),
                    static_cast<unsigned long long>(stats.net.flitHops),
                    static_cast<unsigned long long>(stats.cycles));
    }

    std::printf("\nThe bucket array is the interesting part: threads "
                "write disjoint words of shared regions, so MESI "
                "ping-pongs where Protozoa-MW keeps every shard "
                "cached for writing.\n");
    return 0;
}
