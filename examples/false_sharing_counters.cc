/**
 * @file
 * The paper's Fig. 1 walkthrough: an array of per-thread counters
 * packed into two cache regions, incremented concurrently by 16
 * threads (the classic OpenMP false-sharing anti-pattern).
 *
 * Demonstrates, protocol by protocol, how MESI ping-pongs the lines,
 * how Protozoa-SW moves less data but still misses, and how
 * Protozoa-MW caches disjoint dirty words concurrently and makes the
 * misses disappear.
 *
 * Build & run:  ./false_sharing_counters
 */

#include <cstdio>

#include "protozoa/protozoa.hh"

using namespace protozoa;

namespace {

constexpr Addr kCounterArray = 0x10000000;
constexpr unsigned kIterations = 2000;

Workload
counterWorkload(const SystemConfig &cfg)
{
    // volatile int Item[MAX_THREADS];
    // worker(i): for (...) Item[i]++;        (Listing 1 of the paper)
    TraceBuilder tb(cfg.numCores, cfg.seed);
    genFalseShareCounters(tb, cfg.numCores, kCounterArray, kIterations,
                          /*spacing_words=*/1, /*gap=*/4,
                          /*pc_base=*/0x400);
    return tb.build();
}

} // namespace

int
main()
{
    std::printf("Fig. 1 counter example: 16 threads x %u increments "
                "of adjacent counters\n\n", kIterations);
    std::printf("%-16s %10s %10s %12s %12s %10s\n", "protocol",
                "misses", "inv-msgs", "data-bytes", "ctrl-bytes",
                "speedup");

    double mesi_cycles = 0;
    for (auto kind :
         {ProtocolKind::MESI, ProtocolKind::ProtozoaSW,
          ProtocolKind::ProtozoaSWMR, ProtocolKind::ProtozoaMW}) {
        SystemConfig cfg;
        cfg.protocol = kind;

        System sys(cfg, counterWorkload(cfg));
        sys.run();
        if (sys.valueViolations() != 0)
            std::printf("  !! value violations detected\n");

        const RunStats stats = sys.report();
        if (kind == ProtocolKind::MESI)
            mesi_cycles = static_cast<double>(stats.cycles);

        std::printf("%-16s %10llu %10llu %12llu %12llu %9.2fx\n",
                    protocolName(kind),
                    static_cast<unsigned long long>(stats.l1.misses),
                    static_cast<unsigned long long>(
                        stats.l1.invMsgsReceived),
                    static_cast<unsigned long long>(
                        stats.l1.dataBytes()),
                    static_cast<unsigned long long>(
                        stats.l1.ctrlBytesTotal()),
                    mesi_cycles / static_cast<double>(stats.cycles));
    }

    std::printf(
        "\nReading the table:\n"
        " - MESI invalidates the whole 64-byte line on every remote\n"
        "   increment: every counter update misses and moves 64 B.\n"
        " - Protozoa-SW fetches single words (data bytes collapse)\n"
        "   but still invalidates at region granularity, so the\n"
        "   misses stay.\n"
        " - Protozoa-MW invalidates at the written words only: after\n"
        "   warmup each thread keeps its counter in M state and the\n"
        "   program stops missing entirely (the paper's 99%% miss\n"
        "   reduction and 2.2x speedup).\n");
    return 0;
}
