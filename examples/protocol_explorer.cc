/**
 * @file
 * Protocol explorer: run any paper benchmark under any protocol and
 * print the full statistics panel the evaluation figures are built
 * from — traffic breakdown, control classes, block-size histogram,
 * and the directory's Owned-state census.
 *
 * Usage:
 *   ./protocol_explorer [benchmark] [mesi|sw|swmr|mw] [scale]
 *   ./protocol_explorer                 # histogram under MW
 *   ./protocol_explorer canneal sw 0.5
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "protozoa/protozoa.hh"

using namespace protozoa;

namespace {

ProtocolKind
parseProtocol(const char *arg)
{
    if (std::strcmp(arg, "mesi") == 0)
        return ProtocolKind::MESI;
    if (std::strcmp(arg, "sw") == 0)
        return ProtocolKind::ProtozoaSW;
    if (std::strcmp(arg, "swmr") == 0)
        return ProtocolKind::ProtozoaSWMR;
    if (std::strcmp(arg, "mw") == 0)
        return ProtocolKind::ProtozoaMW;
    fatal("unknown protocol '%s' (use mesi|sw|swmr|mw)", arg);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string bench = argc > 1 ? argv[1] : "histogram";
    const ProtocolKind protocol =
        argc > 2 ? parseProtocol(argv[2]) : ProtocolKind::ProtozoaMW;
    const double scale = argc > 3 ? std::atof(argv[3]) : envScale();

    SystemConfig cfg;
    cfg.protocol = protocol;

    const BenchSpec &spec = findBenchmark(bench);
    std::printf("benchmark : %s (%s suite)\n", spec.name.c_str(),
                spec.suite.c_str());
    std::printf("protocol  : %s\n", protocolName(protocol));
    std::printf("machine   : %u cores, %u B regions, %u-set Amoeba "
                "L1, %u-tile L2\n\n",
                cfg.numCores, cfg.regionBytes, cfg.l1Sets, cfg.l2Tiles);

    System sys(cfg, spec.gen(cfg, scale));
    sys.run();
    const RunStats stats = sys.report();

    std::printf("=== core ===\n");
    std::printf("instructions   %12llu\n",
                static_cast<unsigned long long>(stats.instructions));
    std::printf("cycles         %12llu\n",
                static_cast<unsigned long long>(stats.cycles));
    std::printf("loads/stores   %12llu / %llu\n",
                static_cast<unsigned long long>(stats.l1.loads),
                static_cast<unsigned long long>(stats.l1.stores));
    std::printf("L1 misses      %12llu  (%.2f MPKI)\n",
                static_cast<unsigned long long>(stats.l1.misses),
                stats.mpki());

    const TrafficBreakdown tb = trafficBreakdown(stats);
    std::printf("\n=== L1 traffic (Fig. 9 categories) ===\n");
    std::printf("used data      %12.0f B  (%4.1f%%)\n", tb.usedData,
                100 * tb.usedData / tb.total());
    std::printf("unused data    %12.0f B  (%4.1f%%)\n", tb.unusedData,
                100 * tb.unusedData / tb.total());
    std::printf("control        %12.0f B  (%4.1f%%)\n", tb.control,
                100 * tb.control / tb.total());

    std::printf("\n=== control classes (Fig. 10) ===\n");
    for (unsigned c = 0; c < kNumCtrlClasses; ++c) {
        std::printf("%-5s %12llu B\n",
                    ctrlClassName(static_cast<CtrlClass>(c)),
                    static_cast<unsigned long long>(
                        stats.l1.ctrlBytes[c]));
    }

    std::printf("\n=== block sizes fetched (Fig. 12) ===\n");
    for (unsigned w = 1; w <= cfg.regionWords(); ++w) {
        std::printf("%u words  %12llu blocks\n", w,
                    static_cast<unsigned long long>(
                        stats.l1.blockSizeHist[w]));
    }

    std::printf("\n=== directory (Fig. 11) ===\n");
    std::printf("requests              %12llu\n",
                static_cast<unsigned long long>(stats.dir.requests));
    std::printf("owned: 1 owner        %12llu\n",
                static_cast<unsigned long long>(
                    stats.dir.ownedOneOwnerOnly));
    std::printf("owned: 1 owner+shrs   %12llu\n",
                static_cast<unsigned long long>(
                    stats.dir.ownedOneOwnerPlusSharers));
    std::printf("owned: >1 owner       %12llu\n",
                static_cast<unsigned long long>(
                    stats.dir.ownedMultiOwner));
    std::printf("L2 misses / recalls   %12llu / %llu\n",
                static_cast<unsigned long long>(stats.dir.l2Misses),
                static_cast<unsigned long long>(stats.dir.recalls));

    std::printf("\n=== interconnect (Fig. 15) ===\n");
    std::printf("messages       %12llu\n",
                static_cast<unsigned long long>(stats.net.messages));
    std::printf("flits          %12llu\n",
                static_cast<unsigned long long>(stats.net.flits));
    std::printf("flit-hops      %12llu\n",
                static_cast<unsigned long long>(stats.net.flitHops));

    if (auto err = sys.checkCoherenceInvariant())
        std::printf("\nCOHERENCE VIOLATION: %s\n", err->c_str());
    std::printf("\nvalue violations: %llu\n",
                static_cast<unsigned long long>(sys.valueViolations()));
    return 0;
}
