/**
 * @file
 * Full-system checkpoint/restore (DESIGN.md §13).
 *
 * A snapshot is a dense little-endian binary image of every piece of
 * mutable simulation state: header (magic, format version, config
 * fingerprint, engine mode), the two value stores, conformance
 * coverage, every core / L1 / directory tile, the mesh, the windowed
 * stats series, and finally the calendar queue(s) — clock, sequence
 * counter, kernel stats, and every pending event as a (when, seq,
 * EventKind, payload) record sorted by (when, seq).
 *
 * The contract is digest-locked resumption: save at cycle C, restore
 * into a freshly constructed System (same SystemConfig, same engine
 * mode, nothing run yet), run to completion, and the stats digest is
 * bit-identical to the uninterrupted run — for both the sequential and
 * the sharded engine. Snapshots are only taken at quiescent points
 * (between events at a runTo() stop boundary), so no C++ closure is
 * ever on the wire: every pending event is one of the saveable named
 * event structs tagged in common/snapshot_tags.hh, and the restore
 * factory here rebinds each record to the fresh system's components.
 *
 * Corrupt, truncated, or version-skewed images are rejected with a
 * clear error string; nothing is partially applied to a system whose
 * restore failed (callers discard the System on failure).
 *
 * The entry points live on System (saveSnapshot / restoreSnapshot and
 * the *File convenience wrappers); this file only adds the config
 * fingerprint used in the header.
 */

#ifndef PROTOZOA_SNAPSHOT_SNAPSHOT_HH
#define PROTOZOA_SNAPSHOT_SNAPSHOT_HH

#include <cstdint>

#include "common/config.hh"

namespace protozoa {

/**
 * Order-sensitive hash of every SystemConfig field that shapes
 * serialized state. A snapshot can only be restored into a system
 * whose fingerprint matches — geometry or protocol skew would
 * otherwise deserialize garbage into mismatched tables.
 */
std::uint64_t configFingerprint(const SystemConfig &cfg);

} // namespace protozoa

#endif // PROTOZOA_SNAPSHOT_SNAPSHOT_HH
