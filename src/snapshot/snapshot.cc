/**
 * @file
 * System checkpoint/restore implementation: the byte layout lives
 * here and nowhere else (see snapshot.hh for the contract).
 *
 * Layout (version 1, all little-endian, dense):
 *
 *   u32 magic "PZSN"        u32 version        u64 configFingerprint
 *   u8  engineMode (0 sequential, 1 sharded)
 *   -- system misc: started, finalized, coresRunning, invariant and
 *      watchdog records, dropped-message count, runtime-enable knobs
 *      (checkPeriod, watchdogBound)
 *   -- golden memory, backing memory image
 *   -- conformance coverage (per-shard trackers in sharded mode)
 *   -- cores, L1s (pending-completion flag inside), directory tiles
 *   -- mesh (+ per-shard NetStats slabs in sharded mode)
 *   -- windowed-stats state (period, delta base, recorded samples)
 *   -- calendar queue(s): clock, nextSeq, kernel stats, then every
 *      pending event as (when, seq, EventKind, payload) sorted by
 *      (when, seq); sharded mode prefixes the engine's service
 *      cadence and writes one queue section per shard
 *
 * Any layout change here or in a component's saveState/saveEvent must
 * bump kSnapshotVersion (snapshot_tags.hh).
 */

#include "snapshot/snapshot.hh"

#include <algorithm>
#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "common/log.hh"
#include "common/serialize.hh"
#include "common/snapshot_tags.hh"
#include "sim/core_model.hh"
#include "sim/sharded_engine.hh"
#include "sim/system.hh"

namespace protozoa {

namespace {

/** splitmix64 finalizer: decorrelates sequentially-mixed fields. */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

void
fold(std::uint64_t &h, std::uint64_t v)
{
    h = mix64(h ^ v);
}

std::uint64_t
bitsOf(double v)
{
    std::uint64_t b = 0;
    static_assert(sizeof(b) == sizeof(v), "double must be 64-bit");
    std::memcpy(&b, &v, sizeof(b));
    return b;
}

/** Minimum serialized size of one event record (when + seq + kind):
 *  used as a sanity bound on the event count of a corrupt image. */
constexpr std::uint64_t kMinEventBytes = 8 + 8 + 1;

bool
setError(std::string *error, std::string msg)
{
    if (error)
        *error = std::move(msg);
    return false;
}

/**
 * Serialize one calendar queue: scheduler registers plus every pending
 * event in deterministic (when, seq) order. Fails (with the offending
 * cycle in *error) if any pending callback is not a saveable named
 * event — e.g. an ad-hoc test lambda.
 */
bool
saveQueue(const EventQueue &q, Serializer &s, std::string *error)
{
    s.writeU64(q.now());
    s.writeU64(q.nextSeqValue());
    s.writeRaw(q.kernelStats());

    struct Ref
    {
        Cycle when;
        std::uint64_t seq;
        const EventCallback *cb;
    };
    std::vector<Ref> refs;
    refs.reserve(static_cast<std::size_t>(q.size()));
    q.forEachPending([&](Cycle when, std::uint64_t seq,
                         const EventCallback &cb) {
        refs.push_back(Ref{when, seq, &cb});
    });
    std::sort(refs.begin(), refs.end(), [](const Ref &a, const Ref &b) {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    });

    s.writeU64(refs.size());
    for (const Ref &r : refs) {
        if (!r.cb->saveable()) {
            return setError(error,
                            "pending event at cycle " +
                                std::to_string(r.when) +
                                " is not checkpointable (ad-hoc "
                                "callback in the queue)");
        }
        s.writeU64(r.when);
        s.writeU64(r.seq);
        r.cb->save(s);
    }
    return true;
}

/**
 * Rebuild one calendar queue from its serialized image, rebinding each
 * event record to @p sys's freshly-constructed components.
 */
bool
restoreQueue(System &sys, EventQueue &q, Deserializer &d,
             std::string *error)
{
    const Cycle clock = d.readU64();
    const std::uint64_t next_seq = d.readU64();
    KernelStats kstats;
    d.readRaw(kstats);
    const std::uint64_t count = d.readU64();
    if (d.failed())
        return setError(error, "snapshot truncated in queue header");
    if (count * kMinEventBytes > d.remaining())
        return setError(error,
                        "corrupt snapshot: queue claims more events "
                        "than the image can hold");

    const SystemConfig &cfg = sys.config();
    q.setClock(clock);

    Cycle prev_when = 0;
    std::uint64_t prev_seq = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        const Cycle when = d.readU64();
        const std::uint64_t seq = d.readU64();
        const std::uint8_t kind = d.readU8();
        if (d.failed())
            return setError(error, "snapshot truncated in event list");
        if (when < clock ||
            (i > 0 && (when < prev_when ||
                       (when == prev_when && seq <= prev_seq)))) {
            return setError(error,
                            "corrupt snapshot: event order violated");
        }
        prev_when = when;
        prev_seq = seq;

        switch (static_cast<EventKind>(kind)) {
        case EventKind::CoreStep: {
            const std::uint16_t c = d.readU16();
            if (d.failed() || c >= cfg.numCores)
                return setError(error, "corrupt CoreStep event");
            q.restoreEvent(when, seq, CoreModel::StepEvent{&sys.core(c)});
            break;
        }
        case EventKind::CoreIssue: {
            const std::uint16_t c = d.readU16();
            MemAccess acc;
            if (!d.readRaw(acc) || c >= cfg.numCores)
                return setError(error, "corrupt CoreIssue event");
            q.restoreEvent(when, seq,
                           CoreModel::IssueEvent{&sys.core(c), acc});
            break;
        }
        case EventKind::L1Complete: {
            const std::uint16_t c = d.readU16();
            const std::uint64_t value = d.readU64();
            if (d.failed() || c >= cfg.numCores)
                return setError(error, "corrupt L1Complete event");
            q.restoreEvent(when, seq,
                           L1Controller::CompleteEvent{&sys.l1(c), value});
            break;
        }
        case EventKind::L1Send: {
            const std::uint16_t c = d.readU16();
            CoherenceMsg msg;
            if (!d.readRaw(msg) || c >= cfg.numCores)
                return setError(error, "corrupt L1Send event");
            q.restoreEvent(when, seq,
                           L1Controller::SendEvent{&sys.l1(c),
                                                   std::move(msg)});
            break;
        }
        case EventKind::DirSend: {
            const std::uint16_t t = d.readU16();
            CoherenceMsg msg;
            if (!d.readRaw(msg) || t >= cfg.l2Tiles)
                return setError(error, "corrupt DirSend event");
            q.restoreEvent(when, seq,
                           DirController::SendEvent{&sys.dir(t),
                                                    std::move(msg)});
            break;
        }
        case EventKind::DirFill: {
            const std::uint16_t t = d.readU16();
            const Addr region = d.readU64();
            if (d.failed() || t >= cfg.l2Tiles)
                return setError(error, "corrupt DirFill event");
            q.restoreEvent(when, seq,
                           DirController::FillEvent{&sys.dir(t), region});
            break;
        }
        case EventKind::MeshDeliver:
        case EventKind::SysDeliver: {
            CoherenceMsg msg;
            if (!d.readRaw(msg))
                return setError(error, "corrupt delivery event");
            q.restoreEvent(when, seq,
                           System::DeliverEvent{&sys, std::move(msg)});
            break;
        }
        case EventKind::InvariantTick:
            q.restoreEvent(when, seq, System::InvariantTickEvent{&sys});
            break;
        case EventKind::WatchdogTick:
            q.restoreEvent(when, seq, System::WatchdogTickEvent{&sys});
            break;
        case EventKind::WindowTick:
            q.restoreEvent(when, seq, System::WindowTickEvent{&sys});
            break;
        default:
            return setError(error,
                            "corrupt snapshot: unknown event kind " +
                                std::to_string(kind));
        }
    }

    q.setNextSeq(next_seq);
    q.setKernelStats(kstats);
    return true;
}

} // namespace

std::uint64_t
configFingerprint(const SystemConfig &cfg)
{
    // simThreads is deliberately excluded: a sharded snapshot restores
    // under any worker count (the shard structure, not the thread
    // count, defines the state). The engine *mode* is checked by its
    // own header byte.
    std::uint64_t h = 0x70726f746f7a6f61ULL; // "protozoa"
    fold(h, static_cast<std::uint64_t>(cfg.protocol));
    fold(h, static_cast<std::uint64_t>(cfg.predictor));
    fold(h, static_cast<std::uint64_t>(cfg.directory));
    fold(h, static_cast<std::uint64_t>(cfg.sliceHash));
    fold(h, cfg.bloomBuckets);
    fold(h, cfg.bloomHashes);
    fold(h, cfg.threeHop);
    fold(h, cfg.numCores);
    fold(h, cfg.regionBytes);
    fold(h, cfg.l1Sets);
    fold(h, cfg.l1BytesPerSet);
    fold(h, cfg.l1Latency);
    fold(h, cfg.l1GatherPerBlock);
    fold(h, cfg.fixedFetchWords);
    fold(h, cfg.l2Tiles);
    fold(h, cfg.l2BytesPerTile);
    fold(h, cfg.l2Assoc);
    fold(h, cfg.l2Latency);
    fold(h, cfg.meshCols);
    fold(h, cfg.meshRows);
    fold(h, cfg.flitBytes);
    fold(h, cfg.hopLatency);
    fold(h, cfg.flitSerialization);
    fold(h, cfg.memLatency);
    fold(h, cfg.controlBytes);
    fold(h, cfg.checkValues);
    fold(h, cfg.faultInjection);
    fold(h, cfg.faultJitterMax);
    fold(h, bitsOf(cfg.faultReorderProb));
    fold(h, cfg.occupancyJitter);
    fold(h, cfg.occupancyJitterMax);
    fold(h, cfg.scheduleOracle);
    fold(h, cfg.debugLostStoreBug);
    fold(h, cfg.watchdogCycles);
    fold(h, cfg.seed);
    return h;
}

bool
System::saveSnapshot(Serializer &s, std::string *error) const
{
    if (engine && !engine->quiescent()) {
        return setError(error,
                        "sharded engine has undrained channels; "
                        "snapshot only at a runTo() stop boundary");
    }

    s.writeU32(kSnapshotMagic);
    s.writeU32(kSnapshotVersion);
    s.writeU64(configFingerprint(cfg));
    s.writeU8(engine ? 1 : 0);

    s.writeU8(started ? 1 : 0);
    s.writeU8(finalized ? 1 : 0);
    s.writeU32(coresRunning.load(std::memory_order_relaxed));
    s.writeU64(invariantErrors);
    s.writeString(firstInvariantError);
    s.writeU8(watchdogArmed ? 1 : 0);
    s.writeU8(watchdogTripped ? 1 : 0);
    s.writeU64(watchdogFired);
    s.writeU64(dropped.load(std::memory_order_relaxed));
    s.writeU64(checkPeriod);
    s.writeU64(watchdogBound);

    golden.saveState(s);
    memImage.saveState(s);

    if (engine) {
        for (const auto &cov : shardCov)
            cov->saveState(s);
    } else {
        coverage->saveState(s);
    }

    for (const auto &core : cores)
        core->saveState(s);
    for (const auto &l1c : l1s)
        l1c->saveState(s);
    for (const auto &dc : dirs)
        dc->saveState(s);

    net->saveState(s);
    if (engine) {
        for (const NetSlab &slab : shardNet)
            s.writeRaw(slab.stats);
    }

    static_assert(std::is_trivially_copyable_v<WindowSample>,
                  "WindowSample must stay raw-serializable");
    s.writeU64(windowPeriod);
    s.writeRaw(winPrev);
    s.writeVecRaw(windows);

    if (engine) {
        s.writeU64(engine->checkCadence());
        s.writeU64(engine->watchdogCadence());
        s.writeU64(engine->windowCadence());
        for (const auto &q : shardQs) {
            if (!saveQueue(*q, s, error))
                return false;
        }
    } else {
        if (!saveQueue(eventq, s, error))
            return false;
    }
    return true;
}

bool
System::restoreSnapshot(Deserializer &d, std::string *error)
{
    if (started)
        return setError(error,
                        "restore target must be a freshly constructed "
                        "System (nothing run yet)");

    if (d.readU32() != kSnapshotMagic)
        return setError(error, "not a snapshot (bad magic)");
    const std::uint32_t ver = d.readU32();
    if (ver != kSnapshotVersion) {
        return setError(error,
                        "snapshot format v" + std::to_string(ver) +
                            " does not match this build (v" +
                            std::to_string(kSnapshotVersion) +
                            "); re-checkpoint from the source run");
    }
    if (d.readU64() != configFingerprint(cfg))
        return setError(error,
                        "snapshot was taken under a different system "
                        "configuration");
    const std::uint8_t mode = d.readU8();
    if (d.failed())
        return setError(error, "snapshot truncated in header");
    if ((mode != 0) != (engine != nullptr)) {
        return setError(error,
                        mode ? "snapshot is from the sharded engine; "
                               "this system runs the sequential one"
                             : "snapshot is from the sequential engine; "
                               "this system runs the sharded one");
    }

    started = d.readU8() != 0;
    finalized = d.readU8() != 0;
    coresRunning.store(d.readU32(), std::memory_order_relaxed);
    invariantErrors = d.readU64();
    if (!d.readString(firstInvariantError))
        return setError(error, "snapshot truncated in system section");
    watchdogArmed = d.readU8() != 0;
    watchdogTripped = d.readU8() != 0;
    watchdogFired = d.readU64();
    dropped.store(d.readU64(), std::memory_order_relaxed);
    checkPeriod = d.readU64();
    watchdogBound = d.readU64();
    if (d.failed())
        return setError(error, "snapshot truncated in system section");
    // Match enableWatchdog()'s side effect so a post-restore firing
    // can still dump the in-flight census. The handler itself is not
    // serializable; the restoring process keeps its own (default:
    // panic), installable via enableWatchdog before restoring.
    if (watchdogBound > 0)
        net->enableTracking();

    if (!golden.restoreState(d))
        return setError(error, "corrupt golden-memory section");
    if (!memImage.restoreState(d))
        return setError(error, "corrupt memory-image section");

    if (engine) {
        for (auto &cov : shardCov) {
            if (!cov->restoreState(d))
                return setError(error, "corrupt coverage section");
        }
    } else if (!coverage->restoreState(d)) {
        return setError(error, "corrupt coverage section");
    }

    for (auto &core : cores) {
        if (!core->restoreState(d))
            return setError(error, "corrupt core section");
    }
    for (CoreId c = 0; c < cfg.numCores; ++c) {
        bool had_pending = false;
        if (!l1s[c]->restoreState(d, had_pending))
            return setError(error, "corrupt L1 section");
        if (had_pending)
            l1s[c]->restorePendingDone(cores[c]->completionCallback());
    }
    for (auto &dc : dirs) {
        if (!dc->restoreState(d))
            return setError(error, "corrupt directory section");
    }

    if (!net->restoreState(d))
        return setError(error, "corrupt mesh section");
    if (engine) {
        for (NetSlab &slab : shardNet) {
            if (!d.readRaw(slab.stats))
                return setError(error, "corrupt net-slab section");
        }
    }

    windowPeriod = d.readU64();
    if (!d.readRaw(winPrev) || !d.readVecRaw(windows))
        return setError(error, "corrupt window-stats section");

    if (engine) {
        const Cycle check = d.readU64();
        const Cycle watchdog = d.readU64();
        const Cycle window = d.readU64();
        if (d.failed())
            return setError(error, "snapshot truncated in cadence");
        engine->setResumeCadence(check, watchdog, window);
        for (auto &q : shardQs) {
            if (!restoreQueue(*this, *q, d, error))
                return false;
        }
    } else if (!restoreQueue(*this, eventq, d, error)) {
        return false;
    }

    if (d.failed())
        return setError(error, "snapshot truncated");
    if (!d.atEnd())
        return setError(error,
                        "trailing bytes after the snapshot payload "
                        "(corrupt or mismatched image)");
    return true;
}

bool
System::saveSnapshotFile(const std::string &path, std::string *error) const
{
    Serializer s;
    if (!saveSnapshot(s, error))
        return false;
    return s.writeFile(path, error);
}

bool
System::restoreSnapshotFile(const std::string &path, std::string *error)
{
    std::vector<std::uint8_t> bytes;
    if (!Deserializer::readFileInto(path, bytes, error))
        return false;
    Deserializer d(bytes);
    return restoreSnapshot(d, error);
}

} // namespace protozoa
