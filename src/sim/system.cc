#include "sim/system.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "common/log.hh"
#include "sim/sharded_engine.hh"

namespace protozoa {

System::System(const SystemConfig &config, Workload workload)
    : cfg(config), traces(std::move(workload))
{
    // The MESI baseline is the degenerate fixed-granularity case:
    // whole-region fetches, whole-region coherence.
    if (cfg.protocol == ProtocolKind::MESI)
        cfg.predictor = PredictorKind::FullRegion;
    cfg.validate();
    PROTO_ASSERT(traces.size() == cfg.numCores,
                 "workload must supply one trace per core");

    coverage = std::make_unique<ConformanceCoverage>(cfg.protocol,
                                                     knobProfileOf(cfg));
    net = std::make_unique<Mesh>(eventq, cfg);
    net->setDeliverHook(
        [this](CoherenceMsg &&m) { deliver(std::move(m)); });

    // The schedule oracle records and replays a single global event
    // order, so it always runs on the sequential kernel.
    const unsigned simThreads =
        net->scheduleOracleEnabled() ? 0 : cfg.resolvedSimThreads();
    const bool sharded = simThreads > 0;
    if (sharded) {
        golden.enableConcurrent();
        memImage.enableConcurrent();
        shardNet.resize(cfg.numCores);
        for (CoreId c = 0; c < cfg.numCores; ++c) {
            shardQs.push_back(std::make_unique<EventQueue>());
            shardCov.push_back(std::make_unique<ConformanceCoverage>(
                cfg.protocol, knobProfileOf(cfg)));
        }
    }
    auto queueFor = [&](unsigned node) -> EventQueue & {
        return sharded ? *shardQs[node] : eventq;
    };
    auto covFor = [&](unsigned node) {
        return sharded ? shardCov[node].get() : coverage.get();
    };

    for (CoreId c = 0; c < cfg.numCores; ++c) {
        l1s.push_back(std::make_unique<L1Controller>(
            c, cfg, queueFor(c), *this, &golden, covFor(c)));
    }
    for (TileId t = 0; t < cfg.l2Tiles; ++t) {
        dirs.push_back(std::make_unique<DirController>(
            t, cfg, queueFor(t), *this, memImage, covFor(t)));
    }
    for (CoreId c = 0; c < cfg.numCores; ++c) {
        cores.push_back(std::make_unique<CoreModel>(
            c, queueFor(c), *l1s[c], *traces[c],
            [this](CoreId id) { onCoreDone(id); }));
    }

    if (sharded)
        engine = std::make_unique<ShardedEngine>(*this, simThreads);

    // The configured bound is calibrated for the paper's 4x4 mesh;
    // bigger fabrics get a geometry-scaled horizon (explicit
    // enableWatchdog() calls keep their raw bound).
    if (cfg.watchdogCycles > 0)
        enableWatchdog(cfg.watchdogHorizon());
}

System::~System() = default;

void
System::send(CoherenceMsg msg)
{
    if (engine) {
        engineSend(std::move(msg));
        return;
    }
    armWatchdog();
    if (filter && !filter(msg)) {
        dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    const unsigned bytes = msg.sizeBytes(cfg.controlBytes);
    const unsigned src = msg.srcNode;
    const unsigned dst = msg.dstNode;
    const bool to_dir = msg.dstIsDir;

    // Snapshot the identifying fields before the message moves into the
    // delivery event, for the watchdog's in-flight tracking.
    const MsgType type = msg.type;
    const Addr region = msg.region;
    const WordRange range = msg.range;

    // The delivery event must fit the event queue's inline buffer or
    // every message send costs a heap allocation.
    static_assert(sizeof(DeliverEvent) <= EventCallback::kInlineBytes,
                  "mesh delivery event spills to the heap");

    Cycle delay;
    if (net->scheduleOracleEnabled()) {
        delay = net->park(src, dst, bytes, std::move(msg));
    } else {
        const Cycle arrival = net->routeMessage(src, dst, bytes,
                                                eventq.now(),
                                                net->statsSlab());
        delay = arrival - eventq.now();
        eventq.scheduleAt(arrival, DeliverEvent{this, std::move(msg)});
    }

    if (net->trackingEnabled()) {
        Mesh::QueuedMsg q;
        q.src = src;
        q.dst = dst;
        q.arrival = eventq.now() + delay;
        q.type = msgTypeName(type);
        q.region = region;
        q.range = range;
        q.dstIsDir = to_dir;
        net->noteQueued(q);
    }
}

/**
 * Sharded-mode send. The caller is the source tile's controller,
 * running on that shard's thread, so the source shard's clock and
 * per-pair mesh state (FIFO clamp, jitter counters) are touched only
 * from here. Same-tile traffic (an L1 and its co-located bank) stays a
 * local calendar event; cross-tile traffic enters the destination's
 * inbox channel and is folded in at the next window boundary.
 */
void
System::engineSend(CoherenceMsg msg)
{
    if (filter && !filter(msg)) {
        dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    const unsigned src = msg.srcNode;
    const unsigned dst = msg.dstNode;
    PROTO_ASSERT(ShardedEngine::runningShard() == src,
                 "message injected off its source shard's thread");

    EventQueue &q = *shardQs[src];
    const Cycle now = q.now();
    const Cycle arrival = net->routeMessage(
        src, dst, msg.sizeBytes(cfg.controlBytes), now,
        shardNet[src].stats);

    if (net->trackingEnabled()) {
        Mesh::QueuedMsg qm;
        qm.src = src;
        qm.dst = dst;
        qm.arrival = arrival;
        qm.type = msgTypeName(msg.type);
        qm.region = msg.region;
        qm.range = msg.range;
        qm.dstIsDir = msg.dstIsDir;
        net->noteQueued(qm, now);
    }

    if (dst == src) {
        q.scheduleAt(arrival, DeliverEvent{this, std::move(msg)});
    } else {
        engine->postCrossShard(src, dst, arrival, std::move(msg));
    }
}

void
System::onCoreDone(CoreId)
{
    const unsigned prev =
        coresRunning.fetch_sub(1, std::memory_order_acq_rel);
    PROTO_ASSERT(prev > 0, "core finished twice");
}

void
System::enablePeriodicInvariantCheck(Cycle period)
{
    PROTO_ASSERT(period > 0, "zero check period");
    checkPeriod = period;
}

void
System::scheduleInvariantCheck()
{
    eventq.schedule(checkPeriod, InvariantTickEvent{this});
}

void
System::invariantTick()
{
    if (auto err = checkCoherenceInvariant()) {
        ++invariantErrors;
        if (firstInvariantError.empty())
            firstInvariantError = *err;
    }
    if (coresRunning > 0)
        scheduleInvariantCheck();
}

void
System::run(Cycle max_cycles)
{
    runTo(kNoStop, max_cycles);
}

void
System::runTo(Cycle stop_at, Cycle max_cycles)
{
    if (!started) {
        started = true;
        coresRunning.store(cfg.numCores, std::memory_order_relaxed);
        for (auto &core : cores)
            core->start();

        // In sharded mode the engine itself services the periodic
        // check and the stats window at boundaries (they need all
        // shards quiescent).
        if (checkPeriod > 0 && !engine)
            scheduleInvariantCheck();
        if (windowPeriod > 0 && !engine)
            eventq.schedule(windowPeriod, WindowTickEvent{this});
    }

    const auto wall_start = std::chrono::steady_clock::now();
    if (engine) {
        engine->run(max_cycles, stop_at);
    } else if (stop_at == kNoStop) {
        eventq.run(max_cycles);
    } else {
        eventq.runUntil(stop_at);
    }
    runWallSeconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    // A bounded run may stop mid-workload; only a drained run
    // finalizes.
    if (stop_at != kNoStop &&
        coresRunning.load(std::memory_order_acquire) != 0)
        return;
    PROTO_ASSERT(coresRunning.load(std::memory_order_acquire) == 0,
                 "event queue drained with live cores");

    if (!finalized) {
        for (auto &l1c : l1s)
            l1c->finalizeStats();
        // Close the trailing partial stats window.
        if (windowPeriod > 0)
            windowRollover(engine ? report().cycles : eventq.now());
        finalized = true;
        if (windowPeriod > 0 && !windowPath.empty())
            writeWindowJson();
    }
}

void
System::enableWindowStats(Cycle period, std::string json_path)
{
    PROTO_ASSERT(period > 0, "zero stats window");
    windowPeriod = period;
    windowPath = std::move(json_path);
}

void
System::windowTick()
{
    windowRollover(eventq.now());
    if (coresRunning > 0)
        eventq.schedule(windowPeriod, WindowTickEvent{this});
}

void
System::windowRollover(Cycle now)
{
    const RunStats cur = report();
    WindowSample w;
    w.endCycle = now;
    w.instructions = cur.instructions - winPrev.instructions;
    w.loads = cur.l1.loads - winPrev.l1.loads;
    w.stores = cur.l1.stores - winPrev.l1.stores;
    w.hits = cur.l1.hits - winPrev.l1.hits;
    w.misses = cur.l1.misses - winPrev.l1.misses;
    w.blocksInvalidated =
        cur.l1.blocksInvalidated - winPrev.l1.blocksInvalidated;
    w.usedDataBytes = cur.l1.usedDataBytes - winPrev.l1.usedDataBytes;
    w.unusedDataBytes =
        cur.l1.unusedDataBytes - winPrev.l1.unusedDataBytes;
    w.netMessages = cur.net.messages - winPrev.net.messages;
    w.netBytes = cur.net.bytes - winPrev.net.bytes;
    w.flitHops = cur.net.flitHops - winPrev.net.flitHops;
    w.dirRequests = cur.dir.requests - winPrev.dir.requests;
    w.l2Misses = cur.dir.l2Misses - winPrev.dir.l2Misses;
    w.recalls = cur.dir.recalls - winPrev.dir.recalls;
    for (std::size_t i = 0; i < w.blockSizeHist.size(); ++i)
        w.blockSizeHist[i] = cur.l1.blockSizeHist[i] -
            winPrev.l1.blockSizeHist[i];
    for (const auto &d : dirs) {
        d->forEachEntry(
            [&](const DirController::EntrySnap &) { ++w.dirOccupancy; });
    }
    windows.push_back(w);
    winPrev = cur;
}

void
System::writeWindowJson() const
{
    std::FILE *f = std::fopen(windowPath.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "window stats: cannot open %s\n",
                     windowPath.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"windowCycles\": %llu,\n  \"windows\": [\n",
                 static_cast<unsigned long long>(windowPeriod));
    for (std::size_t i = 0; i < windows.size(); ++i) {
        const WindowSample &w = windows[i];
        std::fprintf(
            f,
            "    {\"endCycle\": %llu, \"instructions\": %llu, "
            "\"loads\": %llu, \"stores\": %llu, \"hits\": %llu, "
            "\"misses\": %llu, \"blocksInvalidated\": %llu, "
            "\"usedDataBytes\": %llu, \"unusedDataBytes\": %llu, "
            "\"netMessages\": %llu, \"netBytes\": %llu, "
            "\"flitHops\": %llu, \"dirRequests\": %llu, "
            "\"l2Misses\": %llu, \"recalls\": %llu, "
            "\"dirOccupancy\": %llu, \"blockSizeHist\": [",
            static_cast<unsigned long long>(w.endCycle),
            static_cast<unsigned long long>(w.instructions),
            static_cast<unsigned long long>(w.loads),
            static_cast<unsigned long long>(w.stores),
            static_cast<unsigned long long>(w.hits),
            static_cast<unsigned long long>(w.misses),
            static_cast<unsigned long long>(w.blocksInvalidated),
            static_cast<unsigned long long>(w.usedDataBytes),
            static_cast<unsigned long long>(w.unusedDataBytes),
            static_cast<unsigned long long>(w.netMessages),
            static_cast<unsigned long long>(w.netBytes),
            static_cast<unsigned long long>(w.flitHops),
            static_cast<unsigned long long>(w.dirRequests),
            static_cast<unsigned long long>(w.l2Misses),
            static_cast<unsigned long long>(w.recalls),
            static_cast<unsigned long long>(w.dirOccupancy));
        for (std::size_t b = 0; b < w.blockSizeHist.size(); ++b) {
            std::fprintf(f, "%s%llu", b ? ", " : "",
                         static_cast<unsigned long long>(
                             w.blockSizeHist[b]));
        }
        std::fprintf(f, "]}%s\n",
                     i + 1 < windows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

void
System::enableWatchdog(Cycle bound, WatchdogHandler handler)
{
    PROTO_ASSERT(bound > 0, "zero watchdog bound");
    watchdogBound = bound;
    watchdogHandler = std::move(handler);
    // Record in-flight messages so a deadlock dump can show what is
    // still on the wire per channel.
    net->enableTracking();
}

void
System::armWatchdog()
{
    // Sharded runs drive the scan from the engine's window service.
    if (engine || watchdogBound == 0 || watchdogArmed || watchdogTripped)
        return;
    watchdogArmed = true;
    const Cycle interval = std::max<Cycle>(watchdogBound / 2, 1);
    eventq.schedule(interval, WatchdogTickEvent{this});
}

void
System::watchdogScan(Cycle now)
{
    watchdogArmed = false;
    if (watchdogTripped)
        return;

    bool outstanding = false;
    std::vector<std::pair<Addr, std::string>> overdue;

    for (CoreId c = 0; c < cfg.numCores; ++c) {
        l1s[c]->mshrFile().forEach([&](const MshrEntry &e) {
            outstanding = true;
            if (now > e.issued + watchdogBound) {
                std::ostringstream os;
                os << "L1." << c << " MSHR for region 0x" << std::hex
                   << e.region << std::dec << " ("
                   << (e.isWrite ? "store" : "load") << " word "
                   << e.need.start << (e.upgrade ? ", upgrade" : "")
                   << (e.upgradeBroken ? ", broken" : "")
                   << ") outstanding since cycle " << e.issued;
                overdue.emplace_back(e.region, os.str());
            }
        });
        if (l1s[c]->writebackBuffer().pendingCount() > 0)
            outstanding = true;
    }
    for (TileId t = 0; t < cfg.l2Tiles; ++t) {
        for (const auto &v : dirs[t]->activeTxns()) {
            outstanding = true;
            if (now > v.start + watchdogBound) {
                std::ostringstream os;
                os << "dir" << t << " "
                   << (v.recall ? "recall" : "request")
                   << " txn for region 0x" << std::hex << v.region
                   << std::dec << " outstanding since cycle " << v.start
                   << " (pending probes=" << v.pending
                   << (v.waitingUnblock ? ", waiting UNBLOCK" : "")
                   << ", queued=" << v.queued << ")";
                overdue.emplace_back(v.region, os.str());
            }
        }
    }

    if (!overdue.empty()) {
        std::ostringstream os;
        os << "deadlock watchdog: " << overdue.size()
           << " transaction(s) outstanding past " << watchdogBound
           << " cycles at cycle " << now << "\n";
        for (const auto &[region, what] : overdue)
            os << "  " << what << "\n" << dumpRegionDiagnostic(region);

        // In-flight message census, grouped per (src,dst) channel: a
        // message the dump does not show as queued at a controller is
        // either on the wire here or genuinely lost.
        std::vector<Mesh::QueuedMsg> inflight;
        net->forEachQueued(
            now, [&](const Mesh::QueuedMsg &m) { inflight.push_back(m); });
        std::stable_sort(inflight.begin(), inflight.end(),
                         [](const Mesh::QueuedMsg &a,
                            const Mesh::QueuedMsg &b) {
                             if (a.src != b.src)
                                 return a.src < b.src;
                             return a.dst < b.dst;
                         });
        os << "  in-flight messages: " << inflight.size() << "\n";
        for (const auto &m : inflight) {
            os << "    " << m.src << " -> " << m.dst
               << (m.dstIsDir ? " (dir)" : " (l1)") << ": " << m.type
               << " region 0x" << std::hex << m.region << std::dec
               << " range " << m.range.toString() << ", arrives @"
               << m.arrival << "\n";
        }
        ++watchdogFired;
        if (watchdogHandler) {
            // One-shot: disarm so a deliberately wedged run drains.
            watchdogTripped = true;
            watchdogHandler(os.str());
            return;
        }
        panic("%s", os.str().c_str());
    }

    if (outstanding)
        armWatchdog();
}

std::string
System::dumpRegionDiagnostic(Addr region)
{
    std::ostringstream os;
    const TileId home = static_cast<TileId>(cfg.homeTileOf(region));
    os << "    " << dirs[home]->describeRegion(region) << "\n";
    for (CoreId c = 0; c < cfg.numCores; ++c) {
        std::ostringstream line;
        bool any = false;
        l1s[c]->cacheStorage().forEach([&](const AmoebaBlock &blk) {
            if (blk.region != region)
                return;
            line << " " << blockStateName(blk.state)
                 << blk.range.toString();
            any = true;
        });
        if (const MshrEntry *e = l1s[c]->mshrFile().find(region)) {
            line << " mshr(" << (e->isWrite ? "W" : "R") << " word "
                 << e->need.start << (e->upgrade ? " upgrade" : "")
                 << (e->upgradeBroken ? " broken" : "") << " issued @"
                 << e->issued << ")";
            any = true;
        }
        std::size_t wbs = 0;
        l1s[c]->writebackBuffer().forEachOverlapping(
            region, WordRange::full(cfg.regionWords()),
            [&](const PendingWb &) { ++wbs; });
        if (wbs > 0) {
            line << " wb-pending x" << wbs;
            any = true;
        }
        if (any)
            os << "    L1." << c << ":" << line.str() << "\n";
    }
    return os.str();
}

ConformanceCoverage &
System::conformance()
{
    // Sharded mode records into per-shard trackers; rebuild the
    // aggregate from scratch on every call so repeated queries never
    // double-count and always see the latest transitions.
    if (!shardCov.empty()) {
        coverage = std::make_unique<ConformanceCoverage>(
            cfg.protocol, knobProfileOf(cfg));
        for (const auto &c : shardCov)
            coverage->merge(*c);
    }
    return *coverage;
}

unsigned
System::engineThreads() const
{
    return engine ? engine->threadCount() : 0;
}

EventQueue &
System::shardQueue(unsigned s)
{
    PROTO_ASSERT(engine && s < shardQs.size(),
                 "shardQueue() outside sharded mode");
    return *shardQs[s];
}

RunStats
System::report() const
{
    RunStats out;
    if (engine) {
        // Deterministic ascending-shard merge: kernel counters are
        // sums/maxes of per-shard values, themselves identical for
        // every thread count.
        for (const auto &q : shardQs)
            out.kernel.merge(q->kernelStats());
    } else {
        out.kernel = eventq.kernelStats();
    }
    out.kernel.wallSeconds = runWallSeconds;
    for (const auto &l1c : l1s)
        out.l1.merge(l1c->stats);
    for (const auto &d : dirs)
        out.dir.merge(d->stats);
    out.net.merge(net->netStats());
    for (const auto &slab : shardNet)
        out.net.merge(slab.stats);
    for (const auto &core : cores) {
        out.instructions += core->instructions();
        out.cycles = std::max(out.cycles, core->finishCycle());
    }
    return out;
}

System::InvAcc &
System::invFindOrCreate(Addr region)
{
    auto mixAddr = [](Addr key) {
        std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    };
    for (;;) {
        std::size_t i = static_cast<std::size_t>(mixAddr(region)) &
                        (invTable.size() - 1);
        std::size_t probes = 0;
        while (invTable[i].epoch == invEpoch) {
            if (invTable[i].region == region)
                return invTable[i];
            i = (i + 1) & (invTable.size() - 1);
            // Growth happens during warmup only: once the resident
            // block population peaks, the table size is sticky and
            // the check allocates nothing.
            if (++probes * 2 > invTable.size())
                break;
        }
        if (invTable[i].epoch != invEpoch) {
            InvAcc &acc = invTable[i];
            acc.region = region;
            acc.epoch = invEpoch;
            acc.all = acc.multi = acc.cur = acc.writerWords = 0;
            acc.distinctCores = 0;
            acc.writers = CoreSet();
            return acc;
        }
        std::vector<InvAcc> old = std::move(invTable);
        invTable.assign(old.size() * 2, InvAcc());
        for (InvAcc &acc : old) {
            if (acc.epoch != invEpoch)
                continue;
            std::size_t j = static_cast<std::size_t>(
                                mixAddr(acc.region)) &
                            (invTable.size() - 1);
            while (invTable[j].epoch == invEpoch)
                j = (j + 1) & (invTable.size() - 1);
            invTable[j] = acc;
        }
    }
}

std::optional<std::string>
System::checkCoherenceInvariant()
{
    const bool region_granularity =
        cfg.protocol == ProtocolKind::MESI ||
        cfg.protocol == ProtocolKind::ProtozoaSW;
    const bool single_writer =
        cfg.protocol != ProtocolKind::ProtozoaMW;

    // One O(blocks) streaming pass: fold every resident block's word
    // mask into its region's accumulator. Blocks arrive core-major
    // (cores scanned in order), so each region sees one core's blocks
    // as a contiguous run; folding the per-core aggregate into
    // `multi` at core boundaries yields the words held by two or more
    // distinct cores — no sorting, no per-pair scan.
    if (invTable.empty())
        invTable.assign(1024, InvAcc());
    ++invEpoch;
    for (CoreId c = 0; c < cfg.numCores; ++c) {
        l1s[c]->cacheStorage().forEach([&](const AmoebaBlock &blk) {
            InvAcc &acc = invFindOrCreate(blk.region);
            const WordMask m = blk.range.mask();
            if (acc.distinctCores == 0) {
                acc.lastCore = c;
                acc.distinctCores = 1;
            } else if (acc.lastCore != c) {
                acc.multi |= acc.all & acc.cur;
                acc.all |= acc.cur;
                acc.cur = 0;
                acc.lastCore = c;
                ++acc.distinctCores;
            }
            acc.cur |= m;
            if (blk.state != BlockState::S) {
                acc.writers.set(c);
                acc.writerWords |= m;
            }
        });
    }

    // Word granularity: a conflict is a word inside some non-S block
    // that a second core also covers. Region granularity: a writer
    // plus any other holder conflicts regardless of words. The former
    // map-of-vectors scan reported the lowest violating region, so
    // take the minimum before building the message.
    bool found = false;
    Addr badRegion = 0;
    for (InvAcc &acc : invTable) {
        if (acc.epoch != invEpoch)
            continue;
        const WordMask multi = acc.multi | (acc.all & acc.cur);
        const bool violation =
            (single_writer && acc.writers.count() > 1) ||
            (region_granularity
                 ? (acc.writers.any() && acc.distinctCores >= 2)
                 : (acc.writerWords & multi) != 0);
        if (violation && (!found || acc.region < badRegion)) {
            found = true;
            badRegion = acc.region;
        }
    }
    if (found)
        return reportViolation(badRegion);
    return std::nullopt;
}

/**
 * Violating runs only: re-gather the region's holders in the original
 * core-major order and rerun the exact checks of the former pairwise
 * scan, so the reported message is identical to the pre-mask checker.
 */
std::optional<std::string>
System::reportViolation(Addr region)
{
    auto &holders = invScratch;
    holders.clear();
    for (CoreId c = 0; c < cfg.numCores; ++c) {
        l1s[c]->cacheStorage().forEach([&](const AmoebaBlock &blk) {
            if (blk.region == region)
                holders.push_back(InvHolder{c, blk.state, blk.range});
        });
    }

    const bool region_granularity =
        cfg.protocol == ProtocolKind::MESI ||
        cfg.protocol == ProtocolKind::ProtozoaSW;
    const bool single_writer =
        cfg.protocol != ProtocolKind::ProtozoaMW;

    CoreSet writers;
    for (const auto &h : holders) {
        if (h.state != BlockState::S)
            writers.set(h.core);
    }
    if (single_writer && writers.count() > 1) {
        std::ostringstream os;
        os << "region 0x" << std::hex << region << std::dec << ": "
           << writers.count() << " concurrent writers under "
           << protocolName(cfg.protocol);
        return os.str();
    }

    for (std::size_t i = 0; i < holders.size(); ++i) {
        for (std::size_t j = i + 1; j < holders.size(); ++j) {
            const InvHolder &a = holders[i];
            const InvHolder &b = holders[j];
            if (a.core == b.core)
                continue;
            const bool writer_involved = a.state != BlockState::S ||
                                         b.state != BlockState::S;
            if (!writer_involved)
                continue;
            const bool conflict = region_granularity
                ? true
                : a.range.overlaps(b.range);
            if (conflict) {
                std::ostringstream os;
                os << "region 0x" << std::hex << region << std::dec
                   << ": core " << a.core << " "
                   << blockStateName(a.state) << a.range.toString()
                   << " vs core " << b.core << " "
                   << blockStateName(b.state) << b.range.toString()
                   << " violates SWMR under "
                   << protocolName(cfg.protocol);
                return os.str();
            }
        }
    }
    // The mask sweep flagged this region, so one of the paths above
    // must fire.
    panic("invariant sweep flagged region 0x%llx but no pair conflicts",
          static_cast<unsigned long long>(region));
}

} // namespace protozoa
