#include "sim/core_model.hh"

namespace protozoa {

CoreModel::CoreModel(CoreId id, EventQueue &eq, L1Controller &l1c,
                     TraceSource &tr, std::function<void(CoreId)> cb)
    : coreId(id), eventq(eq), l1(l1c), trace(tr), onDone(std::move(cb))
{
}

void
CoreModel::start()
{
    eventq.schedule(0, StepEvent{this});
}

L1Controller::AccessCallback
CoreModel::completionCallback()
{
    return [this](std::uint64_t) { step(); };
}

void
CoreModel::issue(const MemAccess &acc)
{
    l1.requestAccess(acc, completionCallback());
}

void
CoreModel::saveState(Serializer &s) const
{
    s.writeU64(instrCount);
    s.writeU64(storeSeq);
    s.writeU8(finished ? 1 : 0);
    s.writeU64(finishedAt);
    s.writeU64(trace.cursor());
}

bool
CoreModel::restoreState(Deserializer &d)
{
    instrCount = d.readU64();
    storeSeq = d.readU64();
    finished = d.readU8() != 0;
    finishedAt = d.readU64();
    const std::uint64_t cur = d.readU64();
    if (d.failed())
        return false;
    return trace.seekTo(cur);
}

void
CoreModel::step()
{
    TraceRecord rec;
    if (!trace.next(rec)) {
        finished = true;
        finishedAt = eventq.now();
        if (onDone)
            onDone(coreId);
        return;
    }

    instrCount += rec.gapInstrs + 1;

    MemAccess acc;
    acc.addr = rec.addr;
    acc.isWrite = rec.isWrite;
    acc.pc = rec.pc;
    if (rec.isWrite) {
        // Unique store value: (core, sequence) tagged for the checker.
        acc.storeValue =
            (static_cast<std::uint64_t>(coreId) << 48) | ++storeSeq;
    }

    eventq.schedule(rec.gapInstrs, IssueEvent{this, acc});
}

} // namespace protozoa
