#include "sim/core_model.hh"

namespace protozoa {

CoreModel::CoreModel(CoreId id, EventQueue &eq, L1Controller &l1c,
                     TraceSource &tr, std::function<void(CoreId)> cb)
    : coreId(id), eventq(eq), l1(l1c), trace(tr), onDone(std::move(cb))
{
}

void
CoreModel::start()
{
    eventq.schedule(0, [this] { step(); });
}

void
CoreModel::step()
{
    TraceRecord rec;
    if (!trace.next(rec)) {
        finished = true;
        finishedAt = eventq.now();
        if (onDone)
            onDone(coreId);
        return;
    }

    instrCount += rec.gapInstrs + 1;

    MemAccess acc;
    acc.addr = rec.addr;
    acc.isWrite = rec.isWrite;
    acc.pc = rec.pc;
    if (rec.isWrite) {
        // Unique store value: (core, sequence) tagged for the checker.
        acc.storeValue =
            (static_cast<std::uint64_t>(coreId) << 48) | ++storeSeq;
    }

    eventq.schedule(rec.gapInstrs, [this, acc] {
        l1.requestAccess(acc, [this](std::uint64_t) { step(); });
    });
}

} // namespace protozoa
