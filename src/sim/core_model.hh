/**
 * @file
 * In-order core model (Table 4: 16-way, 3 GHz, in order).
 *
 * Retires one non-memory instruction per cycle and blocks on every
 * memory reference until the L1 completes it. Store values are unique
 * per (core, store-sequence) so the golden-memory checker can detect
 * any stale or misrouted data.
 */

#ifndef PROTOZOA_SIM_CORE_MODEL_HH
#define PROTOZOA_SIM_CORE_MODEL_HH

#include <cstdint>
#include <functional>

#include "common/event_queue.hh"
#include "common/serialize.hh"
#include "common/snapshot_tags.hh"
#include "common/types.hh"
#include "protocol/l1_controller.hh"
#include "workload/trace.hh"

namespace protozoa {

class CoreModel
{
  public:
    CoreModel(CoreId id, EventQueue &eq, L1Controller &l1,
              TraceSource &trace, std::function<void(CoreId)> on_done);

    /** Begin executing the trace. */
    void start();

    bool done() const { return finished; }
    std::uint64_t instructions() const { return instrCount; }
    Cycle finishCycle() const { return finishedAt; }

    // --- saveable events (snapshot subsystem) ---

    /** Issue-loop trampoline: fetch + decode the next trace record. */
    struct StepEvent
    {
        CoreModel *core;

        void operator()() const { core->step(); }

        void
        saveEvent(Serializer &s) const
        {
            s.writeU8(static_cast<std::uint8_t>(EventKind::CoreStep));
            s.writeU16(core->coreId);
        }
    };

    /** Gap-delayed hand-off of one decoded access to the L1. */
    struct IssueEvent
    {
        CoreModel *core;
        MemAccess acc;

        void operator()() const { core->issue(acc); }

        void
        saveEvent(Serializer &s) const
        {
            s.writeU8(static_cast<std::uint8_t>(EventKind::CoreIssue));
            s.writeU16(core->coreId);
            s.writeRaw(acc);
        }
    };

    /**
     * The completion callback this core installs into its L1 with
     * every access. Snapshot restore reinstalls it for an L1 whose
     * saved state had a parked completion.
     */
    L1Controller::AccessCallback completionCallback();

    /** Serialize progress state (the trace cursor rides along). */
    void saveState(Serializer &s) const;
    bool restoreState(Deserializer &d);

  private:
    void step();
    void issue(const MemAccess &acc);

    CoreId coreId;
    EventQueue &eventq;
    L1Controller &l1;
    TraceSource &trace;
    std::function<void(CoreId)> onDone;

    std::uint64_t instrCount = 0;
    std::uint64_t storeSeq = 0;
    bool finished = false;
    Cycle finishedAt = 0;
};

} // namespace protozoa

#endif // PROTOZOA_SIM_CORE_MODEL_HH
