/**
 * @file
 * System: wires cores, private Amoeba L1s, the mesh, the tiled shared
 * L2/directory, and the two value stores into a runnable simulation.
 *
 * Also hosts the whole-system coherence-invariant checker used by the
 * random tester and the property tests: at any instant, blocks cached
 * at different cores must obey the protocol's SWMR contract
 * (region-granularity for MESI/Protozoa-SW, single-writer for SW+MR,
 * word-granularity for MW).
 */

#ifndef PROTOZOA_SIM_SYSTEM_HH
#define PROTOZOA_SIM_SYSTEM_HH

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/event_queue.hh"
#include "common/serialize.hh"
#include "common/snapshot_tags.hh"
#include "common/stats.hh"
#include "mem/golden_memory.hh"
#include "noc/mesh.hh"
#include "protocol/conformance.hh"
#include "protocol/dir_controller.hh"
#include "protocol/l1_controller.hh"
#include "protocol/router.hh"
#include "sim/core_model.hh"
#include "workload/trace.hh"

namespace protozoa {

class ShardedEngine;

class System : public Router
{
  public:
    System(const SystemConfig &cfg, Workload workload);
    ~System() override;

    /**
     * Run the workload to completion.
     * @param max_cycles deadlock safety net (panics when exceeded).
     */
    void run(Cycle max_cycles = 2'000'000'000ULL);

    /** No-stop sentinel for runTo(). */
    static constexpr Cycle kNoStop = ~Cycle(0);

    /**
     * Run until simulated time reaches @p stop_at or the workload
     * completes, whichever is first. Callable repeatedly; the first
     * call starts the cores, later calls resume. The system is
     * quiescent between calls (no event mid-flight), which is exactly
     * the state saveSnapshot() serializes.
     */
    void runTo(Cycle stop_at, Cycle max_cycles = 2'000'000'000ULL);

    /** True once the workload has fully drained and stats finalized. */
    bool finished() const { return finalized; }

    // ---- checkpoint / restore (src/snapshot) ------------------------

    /**
     * Serialize the complete mutable simulation state — every cache,
     * controller, core, queue and pending event — so a fresh System
     * built from the same config can resume bit-identically.
     * @return false (with *error set) if any pending event is not
     *         checkpointable.
     */
    bool saveSnapshot(Serializer &s, std::string *error = nullptr) const;

    /**
     * Restore a snapshot into this freshly-constructed System (same
     * config, nothing run yet). On success the system resumes from the
     * saved cycle via run()/runTo() and produces a stats digest
     * bit-identical to the uninterrupted run.
     */
    bool restoreSnapshot(Deserializer &d, std::string *error = nullptr);

    bool saveSnapshotFile(const std::string &path,
                          std::string *error = nullptr) const;
    bool restoreSnapshotFile(const std::string &path,
                             std::string *error = nullptr);

    // ---- windowed online statistics ---------------------------------

    /** One windowed-stats epoch: counter deltas over the window plus an
     *  instantaneous directory-occupancy probe at rollover. */
    struct WindowSample
    {
        Cycle endCycle = 0;
        std::uint64_t instructions = 0;
        std::uint64_t loads = 0;
        std::uint64_t stores = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t blocksInvalidated = 0;
        std::uint64_t usedDataBytes = 0;
        std::uint64_t unusedDataBytes = 0;
        std::uint64_t netMessages = 0;
        std::uint64_t netBytes = 0;
        std::uint64_t flitHops = 0;
        std::uint64_t dirRequests = 0;
        std::uint64_t l2Misses = 0;
        std::uint64_t recalls = 0;
        /** Granularity mix: blocks inserted this window, by word count. */
        std::array<std::uint64_t, kMaxRegionWords + 1> blockSizeHist{};
        /** Valid L2/directory entries across all tiles at rollover. */
        std::uint64_t dirOccupancy = 0;
    };

    /**
     * Record a WindowSample every @p period cycles (phase-over-time
     * series for long-horizon runs). Off by default — the measurement
     * path and the stats digest are untouched unless enabled. When
     * @p json_path is non-empty the series is written there as JSON
     * when the run completes.
     */
    void enableWindowStats(Cycle period, std::string json_path = {});

    const std::vector<WindowSample> &windowSamples() const
    {
        return windows;
    }

    /** Aggregate statistics (valid after run()). */
    RunStats report() const;

    /**
     * Scan all caches and directory entries for violations of the
     * protocol's sharing invariant. @return a description of the first
     * violation found, or nullopt when coherent.
     */
    std::optional<std::string> checkCoherenceInvariant();

    /** Run the invariant checker every @p period cycles during run(). */
    void enablePeriodicInvariantCheck(Cycle period);

    /** Invariant violations observed by the periodic checker. */
    std::uint64_t invariantViolations() const { return invariantErrors; }

    /** Load-value violations flagged by the golden-memory oracle. */
    std::uint64_t valueViolations() const { return golden.violations(); }

    /** Per-run transition-coverage matrix (always recording). In
     *  sharded mode this merges the per-shard trackers on demand. */
    ConformanceCoverage &conformance();

    /** Backing memory image (protocheck golden-word fingerprinting). */
    WordStore &memoryImage() { return memImage; }

    /**
     * Deadlock watchdog: flag any MSHR entry or directory transaction
     * outstanding for more than @p bound cycles and hand @p handler a
     * diagnostic dump of the stuck region (L1 block states, MSHR and
     * writeback-buffer contents, directory sets, queued requests).
     *
     * The default handler panics. A custom handler is one-shot: after
     * the first firing the watchdog disarms, so a deliberately wedged
     * test run still drains its event queue.
     *
     * Also enabled automatically when cfg.watchdogCycles > 0.
     */
    using WatchdogHandler = std::function<void(const std::string &)>;
    void enableWatchdog(Cycle bound, WatchdogHandler handler = nullptr);

    /** Overdue transactions flagged by the watchdog so far. */
    std::uint64_t watchdogFirings() const { return watchdogFired; }

    /** Diagnostic description of one region across all controllers. */
    std::string dumpRegionDiagnostic(Addr region);

    /**
     * Test hook: when set, every coherence message is offered to the
     * filter before entering the mesh; returning false drops it (to
     * wedge a transaction deliberately for the watchdog tests).
     */
    using MessageFilter = std::function<bool(const CoherenceMsg &)>;
    void setMessageFilter(MessageFilter f) { filter = std::move(f); }

    /** Messages dropped by the filter. */
    std::uint64_t droppedMessages() const { return dropped; }

    // Router interface.
    void send(CoherenceMsg msg) override;

    // White-box accessors for tests and benches.
    L1Controller &l1(CoreId c) { return *l1s[c]; }
    DirController &dir(TileId t) { return *dirs[t]; }
    CoreModel &core(CoreId c) { return *cores[c]; }
    Mesh &mesh() { return *net; }
    /** Sequential-engine calendar queue (unused in sharded mode). */
    EventQueue &eventQueue() { return eventq; }
    GoldenMemory &goldenMemory() { return golden; }
    const SystemConfig &config() const { return cfg; }

    /** True when the sharded parallel engine drives this system
     *  (cfg.simThreads / PROTOZOA_SIM_THREADS > 0, no schedule
     *  oracle). */
    bool parallelEngine() const { return engine != nullptr; }

    /** Worker threads the sharded engine will use (0 = sequential). */
    unsigned engineThreads() const;

    /** Shard @p s's calendar queue (sharded mode only). */
    EventQueue &shardQueue(unsigned s);

    // --- saveable events (snapshot subsystem) ------------------------

    /** In-flight delivery of one coherence message (either engine:
     *  sequential mesh arrivals and sharded local/cross-shard
     *  deliveries all land here). */
    struct DeliverEvent
    {
        System *sys;
        CoherenceMsg msg;

        void operator()() { sys->deliver(std::move(msg)); }

        void
        saveEvent(Serializer &s) const
        {
            s.writeU8(static_cast<std::uint8_t>(EventKind::SysDeliver));
            s.writeRaw(msg);
        }
    };

    /** Periodic whole-system coherence sweep (sequential engine). */
    struct InvariantTickEvent
    {
        System *sys;

        void operator()() const { sys->invariantTick(); }

        void
        saveEvent(Serializer &s) const
        {
            s.writeU8(
                static_cast<std::uint8_t>(EventKind::InvariantTick));
        }
    };

    /** Deadlock-watchdog scan (sequential engine). */
    struct WatchdogTickEvent
    {
        System *sys;

        void operator()() const { sys->watchdogTick(); }

        void
        saveEvent(Serializer &s) const
        {
            s.writeU8(
                static_cast<std::uint8_t>(EventKind::WatchdogTick));
        }
    };

    /** Windowed-stats epoch rollover (sequential engine). */
    struct WindowTickEvent
    {
        System *sys;

        void operator()() const { sys->windowTick(); }

        void
        saveEvent(Serializer &s) const
        {
            s.writeU8(static_cast<std::uint8_t>(EventKind::WindowTick));
        }
    };

  private:
    friend class ShardedEngine;

    void onCoreDone(CoreId c);
    void scheduleInvariantCheck();
    /** InvariantTickEvent body: sweep + reschedule while cores run. */
    void invariantTick();
    void armWatchdog();
    /** WatchdogTickEvent body. */
    void watchdogTick() { watchdogScan(eventq.now()); }
    void watchdogScan(Cycle now);
    /** WindowTickEvent body: rollover + reschedule while cores run. */
    void windowTick();
    /** Record one WindowSample at the current cycle (both engines). */
    void windowRollover(Cycle now);
    void writeWindowJson() const;
    /** Sharded-mode send: route via the source shard's clock, deliver
     *  locally or through the destination shard's inbox channel. */
    void engineSend(CoherenceMsg msg);
    /** Hand an arrived cross-shard message to its destination
     *  controller (runs on the destination shard's thread). */
    void
    deliver(CoherenceMsg m)
    {
        if (m.dstIsDir)
            dirs[m.dstNode]->receive(std::move(m));
        else
            l1s[m.dstNode]->receive(std::move(m));
    }

    SystemConfig cfg;
    EventQueue eventq;
    std::unique_ptr<ConformanceCoverage> coverage;
    std::unique_ptr<Mesh> net;
    GoldenMemory golden;
    WordStore memImage;

    /**
     * Sharded-engine state (empty in sequential mode): one calendar
     * queue and one padded NetStats slab per tile, plus per-shard
     * conformance trackers so the hot recording path never crosses
     * threads. conformance() folds the trackers together on demand.
     */
    std::vector<std::unique_ptr<EventQueue>> shardQs;
    struct alignas(64) NetSlab
    {
        NetStats stats;
    };
    std::vector<NetSlab> shardNet;
    std::vector<std::unique_ptr<ConformanceCoverage>> shardCov;
    std::unique_ptr<ShardedEngine> engine;

    Workload traces;
    std::vector<std::unique_ptr<L1Controller>> l1s;
    std::vector<std::unique_ptr<DirController>> dirs;
    std::vector<std::unique_ptr<CoreModel>> cores;

    /** Decremented from shard threads in parallel runs. */
    std::atomic<unsigned> coresRunning{0};
    /** First runTo()/run() call has started the cores. */
    bool started = false;
    bool finalized = false;
    double runWallSeconds = 0.0;

    // Windowed online stats (off unless enableWindowStats ran).
    Cycle windowPeriod = 0;
    std::string windowPath;
    std::vector<WindowSample> windows;
    /** Cumulative counters at the previous rollover (delta base). */
    RunStats winPrev;

    Cycle checkPeriod = 0;
    std::uint64_t invariantErrors = 0;
    std::string firstInvariantError;

    /**
     * Per-region accumulator of the invariant sweep: whole-mask
     * coverage folded core by core (blocks stream in core-major
     * order), so conflicts fall out of a few ANDs per region with no
     * sorting and no per-pair scan. Slots are recycled across checks
     * via the epoch stamp; the table only grows (warmup), never
     * clears.
     */
    struct InvAcc
    {
        Addr region = 0;
        std::uint64_t epoch = 0;
        /** Words covered by cores folded so far / by >=2 cores. */
        WordMask all = 0;
        WordMask multi = 0;
        /** Aggregate mask of the core currently streaming in. */
        WordMask cur = 0;
        WordMask writerWords = 0;
        CoreId lastCore = 0;
        unsigned distinctCores = 0;
        CoreSet writers;
    };
    std::vector<InvAcc> invTable;
    std::uint64_t invEpoch = 0;

    /** One resident L1 block (violation fallback path only). */
    struct InvHolder
    {
        CoreId core;
        BlockState state;
        WordRange range;
    };
    /** Reusable scratch of checkCoherenceInvariant (capacity sticks). */
    std::vector<InvHolder> invScratch;

    InvAcc &invFindOrCreate(Addr region);
    std::optional<std::string> reportViolation(Addr region);

    Cycle watchdogBound = 0;
    WatchdogHandler watchdogHandler;
    bool watchdogArmed = false;
    bool watchdogTripped = false;
    std::uint64_t watchdogFired = 0;

    MessageFilter filter;
    std::atomic<std::uint64_t> dropped{0};
};

} // namespace protozoa

#endif // PROTOZOA_SIM_SYSTEM_HH
