/**
 * @file
 * System: wires cores, private Amoeba L1s, the mesh, the tiled shared
 * L2/directory, and the two value stores into a runnable simulation.
 *
 * Also hosts the whole-system coherence-invariant checker used by the
 * random tester and the property tests: at any instant, blocks cached
 * at different cores must obey the protocol's SWMR contract
 * (region-granularity for MESI/Protozoa-SW, single-writer for SW+MR,
 * word-granularity for MW).
 */

#ifndef PROTOZOA_SIM_SYSTEM_HH
#define PROTOZOA_SIM_SYSTEM_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/event_queue.hh"
#include "common/stats.hh"
#include "mem/golden_memory.hh"
#include "noc/mesh.hh"
#include "protocol/dir_controller.hh"
#include "protocol/l1_controller.hh"
#include "protocol/router.hh"
#include "sim/core_model.hh"
#include "workload/trace.hh"

namespace protozoa {

class System : public Router
{
  public:
    System(const SystemConfig &cfg, Workload workload);
    ~System() override;

    /**
     * Run the workload to completion.
     * @param max_cycles deadlock safety net (panics when exceeded).
     */
    void run(Cycle max_cycles = 2'000'000'000ULL);

    /** Aggregate statistics (valid after run()). */
    RunStats report() const;

    /**
     * Scan all caches and directory entries for violations of the
     * protocol's sharing invariant. @return a description of the first
     * violation found, or nullopt when coherent.
     */
    std::optional<std::string> checkCoherenceInvariant();

    /** Run the invariant checker every @p period cycles during run(). */
    void enablePeriodicInvariantCheck(Cycle period);

    /** Invariant violations observed by the periodic checker. */
    std::uint64_t invariantViolations() const { return invariantErrors; }

    /** Load-value violations flagged by the golden-memory oracle. */
    std::uint64_t valueViolations() const { return golden.violations(); }

    // Router interface.
    void send(CoherenceMsg msg) override;

    // White-box accessors for tests and benches.
    L1Controller &l1(CoreId c) { return *l1s[c]; }
    DirController &dir(TileId t) { return *dirs[t]; }
    CoreModel &core(CoreId c) { return *cores[c]; }
    Mesh &mesh() { return *net; }
    EventQueue &eventQueue() { return eventq; }
    GoldenMemory &goldenMemory() { return golden; }
    const SystemConfig &config() const { return cfg; }

  private:
    void onCoreDone(CoreId c);
    void scheduleInvariantCheck();

    SystemConfig cfg;
    EventQueue eventq;
    std::unique_ptr<Mesh> net;
    GoldenMemory golden;
    WordStore memImage;

    Workload traces;
    std::vector<std::unique_ptr<L1Controller>> l1s;
    std::vector<std::unique_ptr<DirController>> dirs;
    std::vector<std::unique_ptr<CoreModel>> cores;

    unsigned coresRunning = 0;
    bool finalized = false;
    double runWallSeconds = 0.0;

    Cycle checkPeriod = 0;
    std::uint64_t invariantErrors = 0;
    std::string firstInvariantError;
};

} // namespace protozoa

#endif // PROTOZOA_SIM_SYSTEM_HH
