/**
 * @file
 * System: wires cores, private Amoeba L1s, the mesh, the tiled shared
 * L2/directory, and the two value stores into a runnable simulation.
 *
 * Also hosts the whole-system coherence-invariant checker used by the
 * random tester and the property tests: at any instant, blocks cached
 * at different cores must obey the protocol's SWMR contract
 * (region-granularity for MESI/Protozoa-SW, single-writer for SW+MR,
 * word-granularity for MW).
 */

#ifndef PROTOZOA_SIM_SYSTEM_HH
#define PROTOZOA_SIM_SYSTEM_HH

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/event_queue.hh"
#include "common/stats.hh"
#include "mem/golden_memory.hh"
#include "noc/mesh.hh"
#include "protocol/conformance.hh"
#include "protocol/dir_controller.hh"
#include "protocol/l1_controller.hh"
#include "protocol/router.hh"
#include "sim/core_model.hh"
#include "workload/trace.hh"

namespace protozoa {

class ShardedEngine;

class System : public Router
{
  public:
    System(const SystemConfig &cfg, Workload workload);
    ~System() override;

    /**
     * Run the workload to completion.
     * @param max_cycles deadlock safety net (panics when exceeded).
     */
    void run(Cycle max_cycles = 2'000'000'000ULL);

    /** Aggregate statistics (valid after run()). */
    RunStats report() const;

    /**
     * Scan all caches and directory entries for violations of the
     * protocol's sharing invariant. @return a description of the first
     * violation found, or nullopt when coherent.
     */
    std::optional<std::string> checkCoherenceInvariant();

    /** Run the invariant checker every @p period cycles during run(). */
    void enablePeriodicInvariantCheck(Cycle period);

    /** Invariant violations observed by the periodic checker. */
    std::uint64_t invariantViolations() const { return invariantErrors; }

    /** Load-value violations flagged by the golden-memory oracle. */
    std::uint64_t valueViolations() const { return golden.violations(); }

    /** Per-run transition-coverage matrix (always recording). In
     *  sharded mode this merges the per-shard trackers on demand. */
    ConformanceCoverage &conformance();

    /** Backing memory image (protocheck golden-word fingerprinting). */
    WordStore &memoryImage() { return memImage; }

    /**
     * Deadlock watchdog: flag any MSHR entry or directory transaction
     * outstanding for more than @p bound cycles and hand @p handler a
     * diagnostic dump of the stuck region (L1 block states, MSHR and
     * writeback-buffer contents, directory sets, queued requests).
     *
     * The default handler panics. A custom handler is one-shot: after
     * the first firing the watchdog disarms, so a deliberately wedged
     * test run still drains its event queue.
     *
     * Also enabled automatically when cfg.watchdogCycles > 0.
     */
    using WatchdogHandler = std::function<void(const std::string &)>;
    void enableWatchdog(Cycle bound, WatchdogHandler handler = nullptr);

    /** Overdue transactions flagged by the watchdog so far. */
    std::uint64_t watchdogFirings() const { return watchdogFired; }

    /** Diagnostic description of one region across all controllers. */
    std::string dumpRegionDiagnostic(Addr region);

    /**
     * Test hook: when set, every coherence message is offered to the
     * filter before entering the mesh; returning false drops it (to
     * wedge a transaction deliberately for the watchdog tests).
     */
    using MessageFilter = std::function<bool(const CoherenceMsg &)>;
    void setMessageFilter(MessageFilter f) { filter = std::move(f); }

    /** Messages dropped by the filter. */
    std::uint64_t droppedMessages() const { return dropped; }

    // Router interface.
    void send(CoherenceMsg msg) override;

    // White-box accessors for tests and benches.
    L1Controller &l1(CoreId c) { return *l1s[c]; }
    DirController &dir(TileId t) { return *dirs[t]; }
    CoreModel &core(CoreId c) { return *cores[c]; }
    Mesh &mesh() { return *net; }
    /** Sequential-engine calendar queue (unused in sharded mode). */
    EventQueue &eventQueue() { return eventq; }
    GoldenMemory &goldenMemory() { return golden; }
    const SystemConfig &config() const { return cfg; }

    /** True when the sharded parallel engine drives this system
     *  (cfg.simThreads / PROTOZOA_SIM_THREADS > 0, no schedule
     *  oracle). */
    bool parallelEngine() const { return engine != nullptr; }

    /** Worker threads the sharded engine will use (0 = sequential). */
    unsigned engineThreads() const;

    /** Shard @p s's calendar queue (sharded mode only). */
    EventQueue &shardQueue(unsigned s);

  private:
    friend class ShardedEngine;

    void onCoreDone(CoreId c);
    void scheduleInvariantCheck();
    void armWatchdog();
    void watchdogScan(Cycle now);
    /** Sharded-mode send: route via the source shard's clock, deliver
     *  locally or through the destination shard's inbox channel. */
    void engineSend(CoherenceMsg msg);
    /** Hand an arrived cross-shard message to its destination
     *  controller (runs on the destination shard's thread). */
    void
    deliver(CoherenceMsg m)
    {
        if (m.dstIsDir)
            dirs[m.dstNode]->receive(std::move(m));
        else
            l1s[m.dstNode]->receive(std::move(m));
    }

    SystemConfig cfg;
    EventQueue eventq;
    std::unique_ptr<ConformanceCoverage> coverage;
    std::unique_ptr<Mesh> net;
    GoldenMemory golden;
    WordStore memImage;

    /**
     * Sharded-engine state (empty in sequential mode): one calendar
     * queue and one padded NetStats slab per tile, plus per-shard
     * conformance trackers so the hot recording path never crosses
     * threads. conformance() folds the trackers together on demand.
     */
    std::vector<std::unique_ptr<EventQueue>> shardQs;
    struct alignas(64) NetSlab
    {
        NetStats stats;
    };
    std::vector<NetSlab> shardNet;
    std::vector<std::unique_ptr<ConformanceCoverage>> shardCov;
    std::unique_ptr<ShardedEngine> engine;

    Workload traces;
    std::vector<std::unique_ptr<L1Controller>> l1s;
    std::vector<std::unique_ptr<DirController>> dirs;
    std::vector<std::unique_ptr<CoreModel>> cores;

    /** Decremented from shard threads in parallel runs. */
    std::atomic<unsigned> coresRunning{0};
    bool finalized = false;
    double runWallSeconds = 0.0;

    Cycle checkPeriod = 0;
    std::uint64_t invariantErrors = 0;
    std::string firstInvariantError;

    /**
     * Per-region accumulator of the invariant sweep: whole-mask
     * coverage folded core by core (blocks stream in core-major
     * order), so conflicts fall out of a few ANDs per region with no
     * sorting and no per-pair scan. Slots are recycled across checks
     * via the epoch stamp; the table only grows (warmup), never
     * clears.
     */
    struct InvAcc
    {
        Addr region = 0;
        std::uint64_t epoch = 0;
        /** Words covered by cores folded so far / by >=2 cores. */
        WordMask all = 0;
        WordMask multi = 0;
        /** Aggregate mask of the core currently streaming in. */
        WordMask cur = 0;
        WordMask writerWords = 0;
        CoreId lastCore = 0;
        unsigned distinctCores = 0;
        CoreSet writers;
    };
    std::vector<InvAcc> invTable;
    std::uint64_t invEpoch = 0;

    /** One resident L1 block (violation fallback path only). */
    struct InvHolder
    {
        CoreId core;
        BlockState state;
        WordRange range;
    };
    /** Reusable scratch of checkCoherenceInvariant (capacity sticks). */
    std::vector<InvHolder> invScratch;

    InvAcc &invFindOrCreate(Addr region);
    std::optional<std::string> reportViolation(Addr region);

    Cycle watchdogBound = 0;
    WatchdogHandler watchdogHandler;
    bool watchdogArmed = false;
    bool watchdogTripped = false;
    std::uint64_t watchdogFired = 0;

    MessageFilter filter;
    std::atomic<std::uint64_t> dropped{0};
};

} // namespace protozoa

#endif // PROTOZOA_SIM_SYSTEM_HH
