/**
 * @file
 * Random protocol tester (Sec. 3.6: "we have tested protozoa
 * extensively with the random tester (1 million accesses)").
 *
 * Drives all cores with random reads/writes over a small, hot region
 * pool to maximize protocol race coverage, while
 *  - the golden-memory oracle checks every load value, and
 *  - the System invariant checker scans for SWMR violations
 *    periodically.
 */

#ifndef PROTOZOA_SIM_RANDOM_TESTER_HH
#define PROTOZOA_SIM_RANDOM_TESTER_HH

#include <cstdint>

#include "common/config.hh"
#include "common/stats.hh"

namespace protozoa {

class RandomTester
{
  public:
    struct Params
    {
        ProtocolKind protocol = ProtocolKind::ProtozoaMW;
        PredictorKind predictor = PredictorKind::PcSpatial;
        /** Hot pool size, in regions. */
        unsigned regions = 16;
        /**
         * Fraction of accesses aimed at a large cold pool instead of
         * the hot pool, to force L1 evictions and inclusive-L2
         * recalls alongside the conflict races.
         */
        double coldFraction = 0.1;
        /** Cold pool size, in regions. */
        unsigned coldRegions = 4096;
        std::uint64_t accessesPerCore = 2000;
        double writeFraction = 0.4;
        std::uint64_t seed = 1;
        /** Invariant-scan period in cycles (0 = only at the end). */
        Cycle checkPeriod = 64;
        /** Shrink the L1 to force evictions and writeback races. */
        unsigned l1Sets = 4;
        /** Shrink the L2 to force inclusive recalls. */
        std::uint64_t l2BytesPerTile = 4096;
    };

    struct Result
    {
        std::uint64_t valueViolations = 0;
        std::uint64_t invariantViolations = 0;
        RunStats stats;
    };

    static Result run(const Params &params);
};

} // namespace protozoa

#endif // PROTOZOA_SIM_RANDOM_TESTER_HH
