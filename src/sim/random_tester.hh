/**
 * @file
 * Random protocol tester (Sec. 3.6: "we have tested protozoa
 * extensively with the random tester (1 million accesses)").
 *
 * Drives all cores with random reads/writes over a small, hot region
 * pool to maximize protocol race coverage, while
 *  - the golden-memory oracle checks every load value, and
 *  - the System invariant checker scans for SWMR violations
 *    periodically.
 */

#ifndef PROTOZOA_SIM_RANDOM_TESTER_HH
#define PROTOZOA_SIM_RANDOM_TESTER_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "protocol/conformance.hh"
#include "workload/trace.hh"

namespace protozoa {

class RandomTester
{
  public:
    /** Access-pattern archetypes targeting specific protocol races. */
    enum class Pattern : std::uint8_t
    {
        /** Uniform random over hot + cold pools (the classic tester). */
        Uniform,
        /**
         * Cores hammer the words straddling region boundaries from
         * opposite sides (even cores the top words, odd cores the
         * bottom), so partial-granularity protocols see non-overlapping
         * writer/reader ranges in the same region while MESI sees
         * maximal false sharing.
         */
        FalseShareBoundary,
        /**
         * Mostly cold-pool traffic through a tiny L1/L2, maximizing
         * evictions, writeback PUT/probe races and inclusive recalls.
         */
        EvictionPressure,
        /**
         * Load-then-store pairs to the same word, maximizing S->M
         * permission upgrades and the probe-breaks-upgrade retry path.
         */
        UpgradeHeavy,
    };

    static const char *patternName(Pattern p);

    struct Params
    {
        ProtocolKind protocol = ProtocolKind::ProtozoaMW;
        PredictorKind predictor = PredictorKind::PcSpatial;
        /** System size (l2Tiles follows numCores; tiled design). */
        unsigned numCores = 16;
        unsigned meshCols = 4;
        unsigned meshRows = 4;
        /** Hot pool size, in regions. */
        unsigned regions = 16;
        /**
         * Fraction of accesses aimed at a large cold pool instead of
         * the hot pool, to force L1 evictions and inclusive-L2
         * recalls alongside the conflict races.
         */
        double coldFraction = 0.1;
        /** Cold pool size, in regions. */
        unsigned coldRegions = 4096;
        std::uint64_t accessesPerCore = 2000;
        double writeFraction = 0.4;
        std::uint64_t seed = 1;
        /** Invariant-scan period in cycles (0 = only at the end). */
        Cycle checkPeriod = 64;
        /** Shrink the L1 to force evictions and writeback races. */
        unsigned l1Sets = 4;
        /** Shrink the L2 to force inclusive recalls. */
        std::uint64_t l2BytesPerTile = 4096;

        Pattern pattern = Pattern::Uniform;
        /** Network fault injection (see SystemConfig::faultInjection). */
        bool faultInjection = false;
        Cycle faultJitterMax = 8;
        double faultReorderProb = 0.05;
        /** Controller occupancy jitter (SystemConfig::occupancyJitter). */
        bool occupancyJitter = false;
        Cycle occupancyJitterMax = 4;
        /** Coherence knobs (conformance KnobProfile dimensions). */
        bool threeHop = false;
        DirectoryKind directory = DirectoryKind::InCacheExact;
        /** Test-only lost-store bug re-injection (campaign-shrink). */
        bool debugLostStoreBug = false;
        /** Deadlock-watchdog bound in cycles (0 = off). */
        Cycle watchdogCycles = 0;
    };

    struct Result
    {
        std::uint64_t valueViolations = 0;
        std::uint64_t invariantViolations = 0;
        /** Total accesses driven (all cores). */
        std::uint64_t accesses = 0;
        RunStats stats;
        /** Transition coverage observed by the run. */
        ConformanceCoverage coverage{ProtocolKind::MESI};
    };

    static Result run(const Params &params);

    /**
     * The deterministic pieces a run is assembled from, exposed so the
     * campaign-failure shrinker (src/check) can rebuild, truncate, and
     * replay the exact workload of a failing parameter point.
     */
    static SystemConfig buildConfig(const Params &params);
    static std::vector<std::vector<TraceRecord>>
    buildTraces(const Params &params);

    /** Run a (possibly edited) trace set under @p params' config. */
    static Result
    runTraces(const Params &params,
              const std::vector<std::vector<TraceRecord>> &traces);
};

} // namespace protozoa

#endif // PROTOZOA_SIM_RANDOM_TESTER_HH
