#include "sim/sweep_runner.hh"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "sim/system.hh"
#include "workload/benchmarks.hh"

namespace protozoa {

unsigned
envJobs(unsigned fallback)
{
    if (const char *env = std::getenv("PROTOZOA_JOBS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    if (fallback > 0)
        return fallback;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

std::vector<RunStats>
runSweep(const std::vector<SweepJob> &jobs, unsigned workers,
         std::function<void(std::size_t, const SweepJob &)> progress)
{
    std::vector<RunStats> results(jobs.size());
    if (jobs.empty())
        return results;

    if (workers == 0)
        workers = envJobs();
    if (workers > jobs.size())
        workers = static_cast<unsigned>(jobs.size());

    std::mutex progress_mutex;
    auto runOne = [&](std::size_t i) {
        const SweepJob &job = jobs[i];
        if (progress) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            progress(i, job);
        }
        const BenchSpec &spec = findBenchmark(job.bench);
        System sys(job.cfg, spec.gen(job.cfg, job.scale));
        sys.run();
        results[i] = sys.report();
    };

    if (workers <= 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            runOne(i);
        return results;
    }

    std::atomic<std::size_t> next_job{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
            for (std::size_t i = next_job.fetch_add(1); i < jobs.size();
                 i = next_job.fetch_add(1))
                runOne(i);
        });
    }
    for (auto &t : pool)
        t.join();
    return results;
}

} // namespace protozoa
