#include "sim/sweep_runner.hh"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "sim/system.hh"
#include "workload/benchmarks.hh"

namespace protozoa {

unsigned
envJobs(unsigned fallback)
{
    if (const char *env = std::getenv("PROTOZOA_JOBS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    if (fallback > 0)
        return fallback;
    const unsigned hw = std::thread::hardware_concurrency();
    // When PROTOZOA_SIM_THREADS turns on the sharded engine, every
    // sweep job is itself a multi-threaded simulation; divide the
    // default pool so jobs x engine-threads still fits the machine.
    // An explicit PROTOZOA_JOBS (above) is always taken verbatim.
    const unsigned per = std::max(1u, envSimThreads(0));
    return std::max(1u, (hw > 0 ? hw : 1) / per);
}

void
parallelFor(std::size_t count, unsigned workers,
            const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (workers == 0)
        workers = envJobs();
    if (workers > count)
        workers = static_cast<unsigned>(count);

    if (workers <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
            for (std::size_t i = next.fetch_add(1); i < count;
                 i = next.fetch_add(1))
                fn(i);
        });
    }
    for (auto &t : pool)
        t.join();
}

std::vector<RunStats>
runSweep(const std::vector<SweepJob> &jobs, unsigned workers,
         std::function<void(std::size_t, const SweepJob &)> progress)
{
    std::vector<RunStats> results(jobs.size());
    if (jobs.empty())
        return results;

    std::mutex progress_mutex;
    parallelFor(jobs.size(), workers, [&](std::size_t i) {
        const SweepJob &job = jobs[i];
        if (progress) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            progress(i, job);
        }
        const BenchSpec &spec = findBenchmark(job.bench);
        System sys(job.cfg, spec.gen(job.cfg, job.scale));
        sys.run();
        results[i] = sys.report();
    });
    return results;
}

} // namespace protozoa
