#include "sim/stress_campaign.hh"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <string_view>
#include <tuple>

#include "common/log.hh"
#include "sim/sweep_runner.hh"

namespace protozoa {

const std::vector<JitterProfile> &
standardJitterProfiles()
{
    static const std::vector<JitterProfile> profiles{
        {"off", false, 0, 0.0},
        {"mild", true, 4, 0.02},
        {"wild", true, 16, 0.10},
        {"occ", true, 4, 0.02, 4},
    };
    return profiles;
}

CampaignSpec
CampaignSpec::smallSystem()
{
    CampaignSpec spec;
    spec.numCores = 4;
    spec.meshCols = 2;
    spec.meshRows = 2;
    spec.seeds.clear();
    for (std::uint64_t s = 1; s <= 80; ++s)
        spec.seeds.push_back(s);
    return spec;
}

CampaignSpec
CampaignSpec::largeMesh()
{
    CampaignSpec spec;
    spec.numCores = 64;
    spec.meshCols = 8;
    spec.meshRows = 8;
    spec.seeds.clear();
    for (std::uint64_t s = 1; s <= 20; ++s)
        spec.seeds.push_back(s);
    // Quarter the per-tile L2 so 4x the tiles keeps the same
    // aggregate conflict pressure (two 8-way sets per tile), and
    // grow the hot pool 4x so per-region sharer counts match the
    // 16-core grid (one core per hot region on average).
    spec.l2BytesPerTile = 1024;
    spec.hotRegions = 64;
    // Violations gate this grid; matrix completeness stays with the
    // 16/4-core grids. 64 cores dilute per-(core, region) density
    // until the multi-block-writer rows ((WR, Put) -> WR) need far
    // more than a CI budget of accesses to appear.
    spec.requireFullCoverage = false;
    return spec;
}

bool
CampaignResult::passed() const
{
    if (valueViolations != 0 || invariantViolations != 0)
        return false;
    if (requireFullCoverage) {
        for (const auto &cov : coverage) {
            if (!cov.complete())
                return false;
        }
    }
    return true;
}

std::string
CampaignResult::report(bool verbose) const
{
    std::ostringstream os;
    os << "stress campaign: " << jobs << " jobs, " << accesses
       << " accesses, " << valueViolations << " value violations, "
       << invariantViolations << " invariant violations\n";
    for (const auto &f : failures) {
        os << "  FAILED " << protocolName(f.params.protocol) << " "
           << f.profile << " knobs=" << f.knobs << " "
           << RandomTester::patternName(f.params.pattern) << " seed="
           << f.params.seed << " (" << f.valueViolations << " value, "
           << f.invariantViolations << " invariant)\n";
    }
    for (const auto &cov : coverage)
        os << cov.report(verbose);
    os << (passed() ? "campaign PASSED" : "campaign FAILED") << "\n";
    return os.str();
}

CampaignResult
runCampaign(const CampaignSpec &spec)
{
    struct Job
    {
        std::size_t protoIdx;
        RandomTester::Params params;
        const char *profile;
        const char *knobs;
    };

    std::vector<Job> jobs;
    for (std::size_t p = 0; p < spec.protocols.size(); ++p) {
        for (const auto &prof : spec.profiles) {
            for (const auto &knob : spec.knobs) {
                for (const auto pattern : spec.patterns) {
                    for (const auto seed : spec.seeds) {
                        Job job;
                        job.protoIdx = p;
                        job.profile = prof.name;
                        job.knobs = knob.name;
                        auto &rp = job.params;
                        rp.protocol = spec.protocols[p];
                        rp.pattern = pattern;
                        rp.seed = seed;
                        rp.numCores = spec.numCores;
                        rp.meshCols = spec.meshCols;
                        rp.meshRows = spec.meshRows;
                        rp.accessesPerCore = spec.accessesPerCore;
                        rp.l2BytesPerTile = spec.l2BytesPerTile;
                        rp.regions = spec.hotRegions;
                        rp.checkPeriod = spec.checkPeriod;
                        rp.faultInjection = prof.faultInjection;
                        rp.faultJitterMax = prof.jitterMax;
                        rp.faultReorderProb = prof.reorderProb;
                        rp.occupancyJitter = prof.occJitterMax > 0;
                        rp.occupancyJitterMax = prof.occJitterMax;
                        rp.threeHop = knob.threeHop;
                        rp.directory = knob.directory;
                        rp.watchdogCycles = spec.watchdogCycles;
                        jobs.push_back(job);
                    }
                }
            }
        }
    }

    CampaignResult res;
    res.jobs = jobs.size();
    res.requireFullCoverage = spec.requireFullCoverage;
    res.coverage.reserve(spec.protocols.size());
    for (const auto proto : spec.protocols)
        res.coverage.emplace_back(proto);

    std::mutex merge_mutex;
    parallelFor(jobs.size(), spec.workers, [&](std::size_t i) {
        const Job &job = jobs[i];
        if (spec.progress) {
            std::lock_guard<std::mutex> lock(merge_mutex);
            std::fprintf(stderr,
                         "[campaign %zu/%zu] %s %s %s seed=%llu\n",
                         i + 1, jobs.size(),
                         protocolName(job.params.protocol),
                         job.profile,
                         RandomTester::patternName(job.params.pattern),
                         static_cast<unsigned long long>(
                             job.params.seed));
        }
        const RandomTester::Result r = RandomTester::run(job.params);
        std::lock_guard<std::mutex> lock(merge_mutex);
        res.accesses += r.accesses;
        res.valueViolations += r.valueViolations;
        res.invariantViolations += r.invariantViolations;
        if (r.valueViolations != 0 || r.invariantViolations != 0) {
            CampaignFailure f;
            f.params = job.params;
            f.profile = job.profile;
            f.knobs = job.knobs;
            f.valueViolations = r.valueViolations;
            f.invariantViolations = r.invariantViolations;
            res.failures.push_back(f);
        }
        res.coverage[job.protoIdx].merge(r.coverage);
    });

    // Worker completion order is nondeterministic; canonicalize the
    // failure list so reports and the shrinker see a stable order.
    std::sort(res.failures.begin(), res.failures.end(),
              [](const CampaignFailure &a, const CampaignFailure &b) {
                  const auto key = [](const CampaignFailure &f) {
                      return std::make_tuple(
                          static_cast<int>(f.params.protocol),
                          std::string_view(f.profile),
                          std::string_view(f.knobs),
                          static_cast<int>(f.params.pattern),
                          f.params.seed);
                  };
                  return key(a) < key(b);
              });
    return res;
}

} // namespace protozoa
