#include "sim/random_tester.hh"

#include "common/rng.hh"
#include "sim/system.hh"
#include "workload/trace.hh"

namespace protozoa {

const char *
RandomTester::patternName(Pattern p)
{
    switch (p) {
      case Pattern::Uniform: return "uniform";
      case Pattern::FalseShareBoundary: return "false-share";
      case Pattern::EvictionPressure: return "evict-pressure";
      case Pattern::UpgradeHeavy: return "upgrade-heavy";
    }
    return "?";
}

SystemConfig
RandomTester::buildConfig(const Params &params)
{
    SystemConfig cfg;
    cfg.protocol = params.protocol;
    cfg.predictor = params.predictor;
    cfg.numCores = params.numCores;
    cfg.l2Tiles = params.numCores;
    cfg.meshCols = params.meshCols;
    cfg.meshRows = params.meshRows;
    cfg.seed = params.seed;
    cfg.checkValues = true;
    cfg.l1Sets = params.l1Sets;
    cfg.l2BytesPerTile = params.l2BytesPerTile;
    cfg.faultInjection = params.faultInjection;
    cfg.faultJitterMax = params.faultJitterMax;
    cfg.faultReorderProb = params.faultReorderProb;
    cfg.occupancyJitter = params.occupancyJitter;
    cfg.occupancyJitterMax = params.occupancyJitterMax;
    cfg.threeHop = params.threeHop;
    cfg.directory = params.directory;
    cfg.debugLostStoreBug = params.debugLostStoreBug;
    cfg.watchdogCycles = params.watchdogCycles;
    return cfg;
}

std::vector<std::vector<TraceRecord>>
RandomTester::buildTraces(const Params &params)
{
    const SystemConfig cfg = buildConfig(params);
    Rng rng(params.seed * 0x5851f42d4c957f2dULL + 7);
    const Addr base = 0x40000000;
    const unsigned region_words = cfg.regionWords();

    // Pattern knobs layered on the shared hot/cold pool machinery.
    double cold_fraction = params.coldFraction;
    double write_fraction = params.writeFraction;
    switch (params.pattern) {
      case Pattern::Uniform:
        break;
      case Pattern::FalseShareBoundary:
        write_fraction = 0.6;
        break;
      case Pattern::EvictionPressure:
        cold_fraction = 0.7;
        break;
      case Pattern::UpgradeHeavy:
        break;
    }

    std::vector<std::vector<TraceRecord>> traces;
    traces.reserve(cfg.numCores);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        std::vector<TraceRecord> recs;
        recs.reserve(params.accessesPerCore);
        bool upgrade_store_next = false;
        Addr upgrade_addr = 0;
        for (std::uint64_t i = 0; i < params.accessesPerCore; ++i) {
            TraceRecord rec;
            if (upgrade_store_next) {
                // Second half of a load-then-store upgrade pair.
                rec.addr = upgrade_addr;
                rec.pc = 0x2000;
                rec.isWrite = true;
                rec.gapInstrs =
                    static_cast<std::uint16_t>(rng.range(1, 4));
                recs.push_back(rec);
                upgrade_store_next = false;
                continue;
            }

            const bool cold = rng.chance(cold_fraction);
            const Addr area = cold ? base + 0x10000000 : base;
            const std::uint64_t region = rng.below(
                cold ? params.coldRegions : params.regions);
            unsigned word =
                static_cast<unsigned>(rng.below(region_words));
            if (params.pattern == Pattern::FalseShareBoundary && !cold) {
                // Even cores take the top of the region, odd cores the
                // bottom, biased hard toward the boundary words so the
                // same region carries disjoint per-core word ranges.
                const unsigned half = region_words / 2;
                const unsigned off =
                    rng.chance(0.75)
                        ? 0
                        : static_cast<unsigned>(rng.below(half));
                word = (c % 2 == 0) ? region_words - 1 - off : off;
            }
            rec.addr = area + region * cfg.regionBytes +
                       static_cast<Addr>(word) * kWordBytes;
            // A small PC pool exercises predictor training/aliasing.
            rec.pc = 0x1000 + 4 * rng.below(16);
            rec.isWrite = rng.chance(write_fraction);
            rec.gapInstrs = static_cast<std::uint16_t>(rng.range(1, 4));
            if (params.pattern == Pattern::UpgradeHeavy && !rec.isWrite &&
                rng.chance(0.6)) {
                // Queue a store to the same word right behind the load,
                // so the load installs S and the store must upgrade.
                upgrade_store_next = true;
                upgrade_addr = rec.addr;
            }
            recs.push_back(rec);
        }
        traces.push_back(std::move(recs));
    }
    return traces;
}

RandomTester::Result
RandomTester::runTraces(const Params &params,
                        const std::vector<std::vector<TraceRecord>> &traces)
{
    const SystemConfig cfg = buildConfig(params);

    Workload wl;
    std::uint64_t accesses = 0;
    for (const auto &recs : traces) {
        accesses += recs.size();
        wl.push_back(std::make_unique<VectorTrace>(recs));
    }
    // Every core needs a trace source, even once shrinking empties it.
    while (wl.size() < cfg.numCores)
        wl.push_back(
            std::make_unique<VectorTrace>(std::vector<TraceRecord>{}));

    System sys(cfg, std::move(wl));
    if (params.checkPeriod > 0)
        sys.enablePeriodicInvariantCheck(params.checkPeriod);
    sys.run();

    Result res;
    res.valueViolations = sys.valueViolations();
    res.invariantViolations = sys.invariantViolations();
    if (auto err = sys.checkCoherenceInvariant())
        ++res.invariantViolations;
    res.accesses = accesses;
    res.stats = sys.report();
    res.coverage = sys.conformance();
    return res;
}

RandomTester::Result
RandomTester::run(const Params &params)
{
    return runTraces(params, buildTraces(params));
}

} // namespace protozoa
