#include "sim/random_tester.hh"

#include "common/rng.hh"
#include "sim/system.hh"
#include "workload/trace.hh"

namespace protozoa {

RandomTester::Result
RandomTester::run(const Params &params)
{
    SystemConfig cfg;
    cfg.protocol = params.protocol;
    cfg.predictor = params.predictor;
    cfg.seed = params.seed;
    cfg.checkValues = true;
    cfg.l1Sets = params.l1Sets;
    cfg.l2BytesPerTile = params.l2BytesPerTile;

    Rng rng(params.seed * 0x5851f42d4c957f2dULL + 7);
    const Addr base = 0x40000000;
    const unsigned region_words = cfg.regionWords();

    Workload wl;
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        std::vector<TraceRecord> recs;
        recs.reserve(params.accessesPerCore);
        for (std::uint64_t i = 0; i < params.accessesPerCore; ++i) {
            const bool cold = rng.chance(params.coldFraction);
            const Addr area = cold ? base + 0x10000000 : base;
            const std::uint64_t region = rng.below(
                cold ? params.coldRegions : params.regions);
            const unsigned word =
                static_cast<unsigned>(rng.below(region_words));
            TraceRecord rec;
            rec.addr = area + region * cfg.regionBytes +
                       static_cast<Addr>(word) * kWordBytes;
            // A small PC pool exercises predictor training/aliasing.
            rec.pc = 0x1000 + 4 * rng.below(16);
            rec.isWrite = rng.chance(params.writeFraction);
            rec.gapInstrs = static_cast<std::uint16_t>(rng.range(1, 4));
            recs.push_back(rec);
        }
        wl.push_back(std::make_unique<VectorTrace>(std::move(recs)));
    }

    System sys(cfg, std::move(wl));
    if (params.checkPeriod > 0)
        sys.enablePeriodicInvariantCheck(params.checkPeriod);
    sys.run();

    Result res;
    res.valueViolations = sys.valueViolations();
    res.invariantViolations = sys.invariantViolations();
    if (auto err = sys.checkCoherenceInvariant())
        ++res.invariantViolations;
    res.stats = sys.report();
    return res;
}

} // namespace protozoa
