/**
 * @file
 * Parallel experiment sweep runner.
 *
 * Every paper figure re-runs the 28-benchmark roster under several
 * protocols; each (benchmark, config) pair is an independent System
 * with its own event queue, caches and statistics, so the sweep is
 * embarrassingly parallel. runSweep() fans the job list across a
 * fixed pool of worker threads and returns RunStats in job order, so
 * results are deterministic and identical to a serial sweep.
 *
 * Worker count comes from PROTOZOA_JOBS when set (benchmarks honour it
 * the same way they honour PROTOZOA_SCALE), otherwise from
 * std::thread::hardware_concurrency().
 */

#ifndef PROTOZOA_SIM_SWEEP_RUNNER_HH
#define PROTOZOA_SIM_SWEEP_RUNNER_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"

namespace protozoa {

/** One independent simulation in a sweep. */
struct SweepJob
{
    /** Paper benchmark name (see workload/benchmarks.hh). */
    std::string bench;
    SystemConfig cfg;
    /** Workload size multiplier, as in runBenchmark(). */
    double scale = 1.0;
};

/**
 * Worker count for sweeps: PROTOZOA_JOBS when set and positive, else
 * @p fallback when nonzero, else the hardware thread count divided by
 * the active PROTOZOA_SIM_THREADS engine width (min 1), so sweeps of
 * multi-threaded simulations never oversubscribe by default.
 */
unsigned envJobs(unsigned fallback = 0);

/**
 * Run @p fn(i) for every i in [0, count) across a pool of @p workers
 * threads (0 = envJobs(); 1 = inline on the calling thread, the exact
 * serial path). Work-stealing by atomic index; returns when every
 * index has completed. @p fn must be thread-safe across indices.
 */
void parallelFor(std::size_t count, unsigned workers,
                 const std::function<void(std::size_t)> &fn);

/**
 * Run every job to completion and return one RunStats per job, in job
 * order regardless of completion order.
 *
 * @param workers thread count; 0 means envJobs(). With one worker the
 *        jobs run inline on the calling thread (the exact serial path).
 * @param progress optional callback invoked as each job starts; calls
 *        are serialized, so it may write to stderr freely.
 */
std::vector<RunStats>
runSweep(const std::vector<SweepJob> &jobs, unsigned workers = 0,
         std::function<void(std::size_t, const SweepJob &)> progress = {});

} // namespace protozoa

#endif // PROTOZOA_SIM_SWEEP_RUNNER_HH
