#include "sim/stats_report.hh"

#include <cmath>
#include <cstdio>

namespace protozoa {

TrafficBreakdown
trafficBreakdown(const RunStats &stats)
{
    TrafficBreakdown out;
    out.control = static_cast<double>(stats.l1.ctrlBytesTotal());
    out.usedData = static_cast<double>(stats.l1.usedDataBytes);
    out.unusedData = static_cast<double>(stats.l1.unusedDataBytes);
    return out;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v > 1e-12 ? v : 1e-12);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

std::string
trendArrow(double before, double after)
{
    if (before <= 1e-12)
        return after <= 1e-12 ? "=" : "++";
    const double ratio = after / before;
    if (ratio > 1.50)
        return "^^^";      // paper's double up-arrow (> 50% increase)
    if (ratio > 1.33)
        return "^^";       // > 33% increase
    if (ratio > 1.10)
        return "^";        // 10-33% increase
    if (ratio >= 0.90)
        return "=";        // within 10%
    if (ratio >= 0.67)
        return "v";        // 10-33% decrease
    return "vv";           // > 33% decrease
}

std::string
kernelSummary(const KernelStats &k)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "kernel: %llu events executed (%.1f%% bucket, "
                  "max depth %llu, %.1f Mev/s)",
                  static_cast<unsigned long long>(k.eventsExecuted),
                  100.0 * k.bucketHitRate(),
                  static_cast<unsigned long long>(k.maxQueueDepth),
                  k.eventsPerSec() / 1e6);
    return buf;
}

} // namespace protozoa
