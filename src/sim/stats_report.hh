/**
 * @file
 * Derived metrics and small numeric helpers shared by the experiment
 * harnesses in bench/.
 */

#ifndef PROTOZOA_SIM_STATS_REPORT_HH
#define PROTOZOA_SIM_STATS_REPORT_HH

#include <string>
#include <vector>

#include "common/stats.hh"

namespace protozoa {

/** Fig. 9 decomposition of L1 traffic, in bytes. */
struct TrafficBreakdown
{
    double control = 0;
    double usedData = 0;
    double unusedData = 0;

    double total() const { return control + usedData + unusedData; }
};

TrafficBreakdown trafficBreakdown(const RunStats &stats);

/** Geometric mean (values must be positive; zeros are clamped). */
double geomean(const std::vector<double> &values);

/** Arithmetic mean. */
double mean(const std::vector<double> &values);

/** Trend arrow in the style of Table 1: ≈ ↓ ⇓ ↑ ⇑ ⇑⇑. */
std::string trendArrow(double before, double after);

/**
 * One-line scheduler-health summary of the kernel counters, e.g.
 * "kernel: 1234567 events executed (99.8% bucket, max depth 421,
 * 12.3 Mev/s)". For stats aggregated over a sweep, events/sec is the
 * per-worker throughput (wall seconds are summed across jobs).
 */
std::string kernelSummary(const KernelStats &k);

} // namespace protozoa

#endif // PROTOZOA_SIM_STATS_REPORT_HH
