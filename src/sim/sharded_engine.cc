#include "sim/sharded_engine.hh"

#include <algorithm>
#include <thread>

#include "common/log.hh"
#include "sim/system.hh"

namespace protozoa {

namespace {

/**
 * Shard whose queue the calling thread is currently draining or
 * executing. Lets System::send assert that every message really is
 * injected from its source tile's thread — the property the whole
 * no-locks channel design rests on.
 */
thread_local unsigned tlsRunningShard = ShardedEngine::kInvalidShard;

} // namespace

unsigned
ShardedEngine::runningShard()
{
    return tlsRunningShard;
}

ShardedEngine::ShardedEngine(System &system, unsigned threads)
    : sys(system),
      nShards(system.cfg.numCores),
      nThreads(std::min(std::max(threads, 1u), system.cfg.numCores)),
      lookahead(system.net->minCrossTileLatency()),
      channels(static_cast<std::size_t>(system.cfg.numCores) *
               system.cfg.numCores),
      shardNext(system.cfg.numCores),
      barrier(nThreads)
{
    PROTO_ASSERT(lookahead >= 1, "mesh lookahead must be positive");

    // Warm the steady-state footprint up front: per-shard calendar
    // pools/spill heaps and the inbox vectors all reach their
    // high-water marks without a single mid-run allocation (the
    // alloc_regression_test runs against this engine too).
    constexpr std::size_t kNodeReserve = 1024;
    constexpr std::size_t kChannelReserve = 16;
    for (auto &q : sys.shardQs)
        q->reserve(kNodeReserve);
    for (auto &ch : channels)
        ch.buf.reserve(kChannelReserve);
}

void
ShardedEngine::run(Cycle max_cycles)
{
    maxCycles = max_cycles;
    // First invariant check lands at `checkPeriod`, matching the
    // sequential engine's schedule(now + period) cadence; the watchdog
    // mirrors armWatchdog()'s bound/2 interval from cycle zero (a scan
    // with nothing outstanding is a no-op, so starting before the
    // first send is harmless).
    nextCheckAt = sys.checkPeriod;
    nextWatchdogAt = std::max<Cycle>(sys.watchdogBound / 2, 1);

    std::vector<std::thread> workers;
    workers.reserve(nThreads - 1);
    for (unsigned t = 1; t < nThreads; ++t)
        workers.emplace_back([this, t] { threadMain(t); });
    threadMain(0);
    for (auto &w : workers)
        w.join();
}

void
ShardedEngine::drainShard(unsigned s)
{
    EventQueue &q = *sys.shardQs[s];
    const std::size_t row = static_cast<std::size_t>(s) * nShards;
    // Ascending-source order is part of the deterministic event order:
    // arrivals within one channel are strictly increasing (per-pair
    // FIFO clamp), and any cross-channel same-cycle tie is broken by
    // this insertion order, identically for every thread count.
    for (unsigned src = 0; src < nShards; ++src) {
        if (src == s)
            continue;
        auto &buf = channels[row + src].buf;
        for (Envelope &e : buf) {
            static_assert(sizeof(CoherenceMsg) + 2 * sizeof(void *) <=
                          EventCallback::kInlineBytes,
                          "cross-shard delivery closure spills to heap");
            q.scheduleAt(e.arrival,
                         [sysp = &sys, m = std::move(e.msg)]() mutable {
                             sysp->deliver(std::move(m));
                         });
        }
        buf.clear();
    }
}

bool
ShardedEngine::serviceDue(Cycle window_end) const
{
    return (sys.checkPeriod > 0 && nextCheckAt < window_end) ||
           (sys.watchdogBound > 0 && !sys.watchdogTripped &&
            nextWatchdogAt < window_end);
}

void
ShardedEngine::serviceWindow(Cycle now, Cycle window_end)
{
    while (sys.checkPeriod > 0 && nextCheckAt < window_end) {
        if (auto err = sys.checkCoherenceInvariant()) {
            ++sys.invariantErrors;
            if (sys.firstInvariantError.empty())
                sys.firstInvariantError = *err;
        }
        nextCheckAt += sys.checkPeriod;
    }
    if (sys.watchdogBound > 0 && nextWatchdogAt < window_end) {
        const Cycle interval =
            std::max<Cycle>(sys.watchdogBound / 2, 1);
        while (nextWatchdogAt < window_end)
            nextWatchdogAt += interval;
        if (!sys.watchdogTripped)
            sys.watchdogScan(now);
    }
}

void
ShardedEngine::threadMain(unsigned tid)
{
    for (;;) {
        // Barrier A: the previous run phase's channel writes (and, on
        // the very first iteration, all setup) happen-before the
        // drain below.
        barrier.arriveAndWait();

        for (unsigned s = tid; s < nShards; s += nThreads) {
            drainShard(s);
            Cycle c;
            shardNext[s].v =
                sys.shardQs[s]->nextEventCycle(c) ? c : kInf;
        }

        // Barrier B: every shardNext slot is published; channel
        // vectors are all empty from here until the next run phase.
        barrier.arriveAndWait();

        // Each thread computes the identical global minimum from the
        // same inputs — no designated coordinator, no extra barrier.
        Cycle nextT = kInf;
        for (unsigned s = 0; s < nShards; ++s)
            nextT = std::min(nextT, shardNext[s].v);
        if (nextT == kInf)
            return; // all queues and channels empty: workload done
        if (nextT > maxCycles) {
            if (tid != 0) {
                // Park until thread 0's panic aborts the process.
                for (;;)
                    std::this_thread::yield();
            }
            panic("sharded engine still busy at cycle %llu "
                  "(deadlock or livelock?)",
                  static_cast<unsigned long long>(nextT));
        }
        const Cycle windowEnd = nextT + lookahead;

        // Rare path: run the watchdog/invariant sweep single-threaded
        // while every shard is quiescent at the window boundary. The
        // first barrier guarantees every thread has evaluated
        // serviceDue() from the still-unmutated cadence state (they
        // all agree on taking this branch) before thread 0 advances
        // it; the second holds the run phase back until the sweep is
        // done reading controller state.
        if (serviceDue(windowEnd)) {
            barrier.arriveAndWait();
            if (tid == 0)
                serviceWindow(nextT, windowEnd);
            barrier.arriveAndWait();
        }

        for (unsigned s = tid; s < nShards; s += nThreads) {
            tlsRunningShard = s;
            sys.shardQs[s]->runUntil(windowEnd);
        }
        tlsRunningShard = kInvalidShard;
    }
}

} // namespace protozoa
