#include "sim/sharded_engine.hh"

#include <algorithm>
#include <thread>

#include "common/log.hh"
#include "sim/system.hh"

namespace protozoa {

namespace {

/**
 * Shard whose queue the calling thread is currently draining or
 * executing. Lets System::send assert that every message really is
 * injected from its source tile's thread — the property the whole
 * no-locks channel design rests on.
 */
thread_local unsigned tlsRunningShard = ShardedEngine::kInvalidShard;

} // namespace

unsigned
ShardedEngine::runningShard()
{
    return tlsRunningShard;
}

ShardedEngine::ShardedEngine(System &system, unsigned threads)
    : sys(system),
      nShards(system.cfg.numCores),
      nThreads(std::min(std::max(threads, 1u), system.cfg.numCores)),
      selfLookahead(2 * system.net->minCrossTileLatency()),
      pairLookahead(static_cast<std::size_t>(system.cfg.numCores) *
                    system.cfg.numCores),
      channels(static_cast<std::size_t>(system.cfg.numCores) *
               system.cfg.numCores),
      shardNext(system.cfg.numCores),
      barrier(nThreads)
{
    PROTO_ASSERT(selfLookahead >= 2, "mesh lookahead must be positive");
    for (unsigned src = 0; src < nShards; ++src) {
        for (unsigned dst = 0; dst < nShards; ++dst) {
            pairLookahead[static_cast<std::size_t>(src) * nShards + dst] =
                sys.net->pairLatencyBound(src, dst);
        }
    }

    // Warm the steady-state footprint up front: per-shard calendar
    // pools/spill heaps and the inbox vectors all reach their
    // high-water marks without a single mid-run allocation (the
    // alloc_regression_test runs against this engine too).
    constexpr std::size_t kNodeReserve = 1024;
    constexpr std::size_t kChannelReserve = 16;
    for (auto &q : sys.shardQs)
        q->reserve(kNodeReserve);
    for (auto &ch : channels)
        ch.buf.reserve(kChannelReserve);
}

void
ShardedEngine::run(Cycle max_cycles, Cycle stop_at)
{
    maxCycles = max_cycles;
    stopAt = stop_at;
    // First invariant check lands at `checkPeriod`, matching the
    // sequential engine's schedule(now + period) cadence; the watchdog
    // mirrors armWatchdog()'s bound/2 interval from cycle zero (a scan
    // with nothing outstanding is a no-op, so starting before the
    // first send is harmless). A resumed run (second run() call, or a
    // snapshot restore that called setResumeCadence) keeps the cadence
    // it paused with.
    if (!cadenceSet) {
        nextCheckAt = sys.checkPeriod;
        nextWatchdogAt = std::max<Cycle>(sys.watchdogBound / 2, 1);
        nextWindowAt = sys.windowPeriod;
        cadenceSet = true;
    }

    std::vector<std::thread> workers;
    workers.reserve(nThreads - 1);
    for (unsigned t = 1; t < nThreads; ++t)
        workers.emplace_back([this, t] { threadMain(t); });
    threadMain(0);
    for (auto &w : workers)
        w.join();
}

void
ShardedEngine::drainShard(unsigned s)
{
    EventQueue &q = *sys.shardQs[s];
    const std::size_t row = static_cast<std::size_t>(s) * nShards;
    // Ascending-source order is part of the deterministic event order:
    // arrivals within one channel are strictly increasing (per-pair
    // FIFO clamp), and any cross-channel same-cycle tie is broken by
    // this insertion order, identically for every thread count.
    for (unsigned src = 0; src < nShards; ++src) {
        if (src == s)
            continue;
        auto &buf = channels[row + src].buf;
        for (Envelope &e : buf) {
            static_assert(sizeof(System::DeliverEvent) <=
                          EventCallback::kInlineBytes,
                          "cross-shard delivery event spills to heap");
            q.scheduleAt(e.arrival,
                         System::DeliverEvent{&sys, std::move(e.msg)});
        }
        buf.clear();
    }
}

Cycle
ShardedEngine::serviceBound() const
{
    Cycle bound = kInf;
    if (sys.checkPeriod > 0)
        bound = std::min(bound, nextCheckAt);
    if (sys.watchdogBound > 0 && !sys.watchdogTripped)
        bound = std::min(bound, nextWatchdogAt);
    if (sys.windowPeriod > 0)
        bound = std::min(bound, nextWindowAt);
    return bound;
}

void
ShardedEngine::serviceWindow(Cycle now, Cycle window_end)
{
    while (sys.checkPeriod > 0 && nextCheckAt < window_end) {
        if (auto err = sys.checkCoherenceInvariant()) {
            ++sys.invariantErrors;
            if (sys.firstInvariantError.empty())
                sys.firstInvariantError = *err;
        }
        nextCheckAt += sys.checkPeriod;
    }
    if (sys.watchdogBound > 0 && nextWatchdogAt < window_end) {
        const Cycle interval =
            std::max<Cycle>(sys.watchdogBound / 2, 1);
        while (nextWatchdogAt < window_end)
            nextWatchdogAt += interval;
        if (!sys.watchdogTripped)
            sys.watchdogScan(now);
    }
    // Stats-window rollover at the nearest quiescent boundary at or
    // past the nominal cadence point (shards are all parked here, so
    // the sampled counters are a consistent cross-shard cut).
    while (sys.windowPeriod > 0 && nextWindowAt < window_end) {
        sys.windowRollover(now);
        nextWindowAt += sys.windowPeriod;
    }
}

Cycle
ShardedEngine::shardWindowEnd(unsigned s) const
{
    // Self round-trip term: a reply chain this shard originates can
    // come back no earlier than two minimum-latency legs after its
    // earliest possible send.
    Cycle end = kInf;
    if (shardNext[s].v != kInf)
        end = shardNext[s].v + selfLookahead;
    // Direct (and, via the triangle inequality, every multi-hop)
    // bound from each other shard's published earliest event.
    for (unsigned src = 0; src < nShards; ++src) {
        if (src == s || shardNext[src].v == kInf)
            continue;
        end = std::min(
            end,
            shardNext[src].v +
                pairLookahead[static_cast<std::size_t>(src) * nShards +
                              s]);
    }
    return end;
}

void
ShardedEngine::threadMain(unsigned tid)
{
    for (;;) {
        // Barrier A: the previous run phase's channel writes (and, on
        // the very first iteration, all setup) happen-before the
        // drain below.
        barrier.arriveAndWait();

        for (unsigned s = tid; s < nShards; s += nThreads) {
            drainShard(s);
            Cycle c;
            shardNext[s].v =
                sys.shardQs[s]->nextEventCycle(c) ? c : kInf;
        }

        // Barrier B: every shardNext slot is published; channel
        // vectors are all empty from here until the next run phase.
        barrier.arriveAndWait();

        // Each thread computes the identical global minimum from the
        // same inputs — no designated coordinator, no extra barrier.
        Cycle nextT = kInf;
        for (unsigned s = 0; s < nShards; ++s)
            nextT = std::min(nextT, shardNext[s].v);
        if (nextT == kInf)
            return; // all queues and channels empty: workload done
        if (nextT >= stopAt)
            return; // bounded run: paused quiescent at the stop cycle
        if (nextT > maxCycles) {
            if (tid != 0) {
                // Park until thread 0's panic aborts the process.
                for (;;)
                    std::this_thread::yield();
            }
            panic("sharded engine still busy at cycle %llu "
                  "(deadlock or livelock?)",
                  static_cast<unsigned long long>(nextT));
        }

        // Rare path: run the watchdog/invariant/stats-window sweep
        // single-threaded while every shard is quiescent at the
        // window boundary. The first barrier guarantees every thread
        // has evaluated serviceBound() from the still-unmutated
        // cadence state (they all agree on taking this branch) before
        // thread 0 advances it; the second holds the run phase back
        // until the sweep is done reading controller state — and
        // publishes the advanced cadence for the recompute below.
        Cycle service = serviceBound();
        if (service <= nextT) {
            barrier.arriveAndWait();
            if (tid == 0)
                serviceWindow(nextT, nextT + 1);
            barrier.arriveAndWait();
            service = serviceBound();
        }

        // Free-run each shard to its own lookahead horizon, additionally
        // clamped so no shard crosses an unserviced cadence point or
        // the stop cycle. Every bound is a pure function of the
        // published shardNext snapshot and the cadence state, so the
        // event history is identical for every thread count.
        for (unsigned s = tid; s < nShards; s += nThreads) {
            const Cycle end =
                std::min({shardWindowEnd(s), service, stopAt});
            tlsRunningShard = s;
            sys.shardQs[s]->runUntil(end);
        }
        tlsRunningShard = kInvalidShard;
    }
}

} // namespace protozoa
