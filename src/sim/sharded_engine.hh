/**
 * @file
 * Sharded parallel simulation engine: conservative time-window PDES
 * over per-tile calendar queues.
 *
 * Topology. The system is sharded by mesh tile: shard t owns core t,
 * L1 t, the co-located L2/directory bank t, and its own two-level
 * calendar EventQueue (the PR 1 kernel, one instance per shard). The
 * shard count always equals the tile count regardless of how many
 * worker threads drive them — threads are interchangeable workers over
 * a fixed shard structure, which is what makes N-thread runs
 * digest-identical for every N.
 *
 * Lookahead. The minimum delivery latency from tile s' to tile s is
 * L[s'][s] = 1 + hopLatency * hops(s', s) (Mesh::pairLatencyBound;
 * jitter, flit serialization and the per-pair FIFO clamp only ever
 * add). Each iteration publishes every shard's earliest pending cycle
 * n[s'] and opens a PER-SHARD window
 *
 *   end[s] = min( min_{s' != s}  n[s'] + L[s'][s],
 *                 n[s] + 2 * minCrossTileLatency() )
 *
 * The first group bounds the earliest cross-shard message any other
 * shard could still send here: a direct send from s' lands no earlier
 * than n[s'] + L[s'][s], and a multi-hop chain s' -> k -> s lands no
 * earlier still, because L is a metric (1 + hop * XY-distance obeys
 * the triangle inequality, and every relay adds its own +1). The
 * second, self round-trip term is what makes the matrix form sound: a
 * chain *originating here* (s sends at >= n[s], some k replies) can
 * land at n[s] + L[s][k] + L[k][s] >= n[s] + 2*(1 + hopLatency) — a
 * bound no n[s'] term covers, since the reply was not yet in k's
 * queue when n[k] was published. Distant shard pairs therefore earn
 * windows proportional to their mesh distance instead of everyone
 * stopping at the flat global minimum + 1 hop — same event history,
 * fewer barrier rounds. Same-tile messages (an L1 talking to its
 * co-located bank) bypass the window machinery entirely — they are
 * ordinary local events.
 *
 * Window protocol (two barriers per active window):
 *
 *   barrier A
 *   drain:  each shard empties its inbound channels in ascending
 *           source order into its calendar queue, then publishes its
 *           earliest pending cycle.
 *   barrier B
 *   control: every thread independently computes T = min over shards
 *           (identical inputs, identical result). T = +inf means all
 *           queues and channels are empty: the run is over; T past
 *           the stop cycle means the engine pauses with every channel
 *           drained — the quiescent state a checkpoint serializes.
 *   run:    each shard executes runUntil(end[s]) — additionally
 *           clamped to the next due periodic-service cycle and the
 *           stop cycle — routing cross-shard sends into the
 *           destination's channel.
 *
 * Channels are plain per-(dst,src) vectors, written only in the run
 * phase (by the unique source shard) and read only in the drain phase
 * (by the unique destination shard); the barriers provide the
 * happens-before, so no per-message atomics are needed, and clear()
 * keeps capacity — steady state allocates nothing. Empty stretches
 * (e.g. a 300-cycle memory round trip with nothing else pending) cost
 * one barrier pair, not 60 windows: T jumps straight to the next
 * pending event.
 *
 * Determinism. Everything order-sensitive is structural: arrivals come
 * from Mesh::routeMessage on per-pair state owned by the source,
 * channel contents are each source shard's deterministic send order,
 * the drain visits sources in ascending order, and local execution is
 * the sequential kernel's (cycle, seq) order. No step depends on which
 * thread ran what when, so for a fixed seed every thread count
 * produces the same event history and the same stats digest.
 */

#ifndef PROTOZOA_SIM_SHARDED_ENGINE_HH
#define PROTOZOA_SIM_SHARDED_ENGINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/spin_sync.hh"
#include "common/types.hh"
#include "protocol/coherence_msg.hh"

namespace protozoa {

class System;

class ShardedEngine
{
  public:
    /** Sentinel "no pending event" time. */
    static constexpr Cycle kInf = ~Cycle(0);

    /**
     * @param sys     the owning system; shard queues and controllers
     *                must already exist.
     * @param threads requested worker count (clamped to the shard
     *                count; 1 runs everything on the calling thread).
     */
    ShardedEngine(System &sys, unsigned threads);

    /**
     * Drive the workload until it completes or simulated time reaches
     * @p stop_at (kInf = run to completion). Callable repeatedly; a
     * stopped engine resumes where it paused. At a stop boundary every
     * inbox channel is drained and every shard queue's next event is
     * at or past the boundary — the quiescent state saveSnapshot()
     * serializes.
     */
    void run(Cycle max_cycles, Cycle stop_at = kInf);

    // ---- snapshot hooks (src/snapshot) ------------------------------

    /** Restore the periodic-service cadence saved at checkpoint. */
    void
    setResumeCadence(Cycle check, Cycle watchdog, Cycle window)
    {
        nextCheckAt = check;
        nextWatchdogAt = watchdog;
        nextWindowAt = window;
        cadenceSet = true;
    }

    Cycle checkCadence() const { return nextCheckAt; }
    Cycle watchdogCadence() const { return nextWatchdogAt; }
    Cycle windowCadence() const { return nextWindowAt; }

    /** True when every inbox channel is drained — the state the engine
     *  pauses in at a stop boundary, required before a checkpoint. */
    bool
    quiescent() const
    {
        for (const Channel &ch : channels) {
            if (!ch.buf.empty())
                return false;
        }
        return true;
    }

    /**
     * Queue a cross-shard message for delivery at @p arrival. Called
     * by System::send from the source shard's thread during the run
     * phase; the destination drains it at the next window boundary.
     */
    void
    postCrossShard(unsigned src, unsigned dst, Cycle arrival,
                   CoherenceMsg msg)
    {
        channels[static_cast<std::size_t>(dst) * nShards + src]
            .buf.push_back(Envelope{arrival, std::move(msg)});
    }

    unsigned threadCount() const { return nThreads; }

    /**
     * Shard whose events the calling thread is currently executing
     * (kInvalidShard outside a run phase). Debug hook: System::send
     * asserts that messages are injected only from their source
     * shard's thread.
     */
    static constexpr unsigned kInvalidShard = ~0u;
    static unsigned runningShard();

  private:
    struct Envelope
    {
        Cycle arrival;
        CoherenceMsg msg;
    };

    /** One (dst,src) inbox. Padded: distinct sources push
     *  concurrently to adjacent channels of the same destination. */
    struct alignas(64) Channel
    {
        std::vector<Envelope> buf;
    };

    struct alignas(64) PaddedCycle
    {
        Cycle v = kInf;
    };

    void threadMain(unsigned tid);
    void drainShard(unsigned s);
    /** Single-threaded (tid 0) watchdog + invariant + window service. */
    void serviceWindow(Cycle now, Cycle window_end);
    /** Earliest cycle at which any periodic service is due (kInf when
     *  none is armed). Pure function of the cadence state, so every
     *  thread computes the identical value between barriers. */
    Cycle serviceBound() const;
    /** Conservative free-run horizon of shard @p s given the published
     *  shardNext snapshot (the per-shard window formula above). */
    Cycle shardWindowEnd(unsigned s) const;

    System &sys;
    unsigned nShards;
    unsigned nThreads;
    /** Self round-trip bound 2 * Mesh::minCrossTileLatency(). */
    Cycle selfLookahead;
    /** Flat src-major (src*nShards + dst) matrix of per-pair minimum
     *  delivery latencies L[src][dst] = Mesh::pairLatencyBound. */
    std::vector<Cycle> pairLookahead;
    Cycle maxCycles = kInf;
    Cycle stopAt = kInf;

    /** Flat dst-major (dst*nShards + src) inbox matrix. */
    std::vector<Channel> channels;
    /** Post-drain earliest pending cycle per shard. */
    std::vector<PaddedCycle> shardNext;
    SpinBarrier barrier;

    /** Periodic-service cadence (advanced only by tid 0 inside a
     *  barrier-protected section; read by all threads between
     *  barriers, so every thread sees the same values). */
    Cycle nextCheckAt = 0;
    Cycle nextWatchdogAt = 0;
    Cycle nextWindowAt = 0;
    /** Cadence pre-seeded by a snapshot restore: run() must not
     *  re-initialize it. */
    bool cadenceSet = false;
};

} // namespace protozoa

#endif // PROTOZOA_SIM_SHARDED_ENGINE_HH
