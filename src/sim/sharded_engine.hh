/**
 * @file
 * Sharded parallel simulation engine: conservative time-window PDES
 * over per-tile calendar queues.
 *
 * Topology. The system is sharded by mesh tile: shard t owns core t,
 * L1 t, the co-located L2/directory bank t, and its own two-level
 * calendar EventQueue (the PR 1 kernel, one instance per shard). The
 * shard count always equals the tile count regardless of how many
 * worker threads drive them — threads are interchangeable workers over
 * a fixed shard structure, which is what makes N-thread runs
 * digest-identical for every N.
 *
 * Lookahead. The minimum delivery latency between two distinct tiles
 * is Mesh::minCrossTileLatency() = 1 + hopLatency (one base cycle plus
 * at least one hop; jitter and the per-pair FIFO clamp only ever add).
 * Hence a message sent at local time t lands no earlier than t + H.
 * Each iteration establishes the global minimum pending cycle T and
 * opens the window [T, T + H): no event inside the window can be
 * affected by a cross-shard message sent inside the same window, so
 * shards free-run to the window edge with no communication at all.
 * Same-tile messages (an L1 talking to its co-located bank) bypass the
 * window machinery entirely — they are ordinary local events.
 *
 * Window protocol (two barriers per active window):
 *
 *   barrier A
 *   drain:  each shard empties its inbound channels in ascending
 *           source order into its calendar queue, then publishes its
 *           earliest pending cycle.
 *   barrier B
 *   control: every thread independently computes T = min over shards
 *           (identical inputs, identical result). T = +inf means all
 *           queues and channels are empty: the run is over.
 *   run:    each shard executes runUntil(T + H), routing cross-shard
 *           sends into the destination's channel.
 *
 * Channels are plain per-(dst,src) vectors, written only in the run
 * phase (by the unique source shard) and read only in the drain phase
 * (by the unique destination shard); the barriers provide the
 * happens-before, so no per-message atomics are needed, and clear()
 * keeps capacity — steady state allocates nothing. Empty stretches
 * (e.g. a 300-cycle memory round trip with nothing else pending) cost
 * one barrier pair, not 60 windows: T jumps straight to the next
 * pending event.
 *
 * Determinism. Everything order-sensitive is structural: arrivals come
 * from Mesh::routeMessage on per-pair state owned by the source,
 * channel contents are each source shard's deterministic send order,
 * the drain visits sources in ascending order, and local execution is
 * the sequential kernel's (cycle, seq) order. No step depends on which
 * thread ran what when, so for a fixed seed every thread count
 * produces the same event history and the same stats digest.
 */

#ifndef PROTOZOA_SIM_SHARDED_ENGINE_HH
#define PROTOZOA_SIM_SHARDED_ENGINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/spin_sync.hh"
#include "common/types.hh"
#include "protocol/coherence_msg.hh"

namespace protozoa {

class System;

class ShardedEngine
{
  public:
    /** Sentinel "no pending event" time. */
    static constexpr Cycle kInf = ~Cycle(0);

    /**
     * @param sys     the owning system; shard queues and controllers
     *                must already exist.
     * @param threads requested worker count (clamped to the shard
     *                count; 1 runs everything on the calling thread).
     */
    ShardedEngine(System &sys, unsigned threads);

    /** Drive the whole workload to completion (one call per run). */
    void run(Cycle max_cycles);

    /**
     * Queue a cross-shard message for delivery at @p arrival. Called
     * by System::send from the source shard's thread during the run
     * phase; the destination drains it at the next window boundary.
     */
    void
    postCrossShard(unsigned src, unsigned dst, Cycle arrival,
                   CoherenceMsg msg)
    {
        channels[static_cast<std::size_t>(dst) * nShards + src]
            .buf.push_back(Envelope{arrival, std::move(msg)});
    }

    unsigned threadCount() const { return nThreads; }

    /**
     * Shard whose events the calling thread is currently executing
     * (kInvalidShard outside a run phase). Debug hook: System::send
     * asserts that messages are injected only from their source
     * shard's thread.
     */
    static constexpr unsigned kInvalidShard = ~0u;
    static unsigned runningShard();

  private:
    struct Envelope
    {
        Cycle arrival;
        CoherenceMsg msg;
    };

    /** One (dst,src) inbox. Padded: distinct sources push
     *  concurrently to adjacent channels of the same destination. */
    struct alignas(64) Channel
    {
        std::vector<Envelope> buf;
    };

    struct alignas(64) PaddedCycle
    {
        Cycle v = kInf;
    };

    void threadMain(unsigned tid);
    void drainShard(unsigned s);
    /** Single-threaded (tid 0) watchdog + invariant service. */
    void serviceWindow(Cycle now, Cycle window_end);
    bool serviceDue(Cycle window_end) const;

    System &sys;
    unsigned nShards;
    unsigned nThreads;
    /** Conservative lookahead H = Mesh::minCrossTileLatency(). */
    Cycle lookahead;
    Cycle maxCycles = kInf;

    /** Flat dst-major (dst*nShards + src) inbox matrix. */
    std::vector<Channel> channels;
    /** Post-drain earliest pending cycle per shard. */
    std::vector<PaddedCycle> shardNext;
    SpinBarrier barrier;

    /** Periodic-service cadence (advanced only by tid 0 inside a
     *  barrier-protected section; read by all threads between
     *  barriers, so every thread sees the same values). */
    Cycle nextCheckAt = 0;
    Cycle nextWatchdogAt = 0;
};

} // namespace protozoa

#endif // PROTOZOA_SIM_SHARDED_ENGINE_HH
