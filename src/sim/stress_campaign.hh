/**
 * @file
 * Protocol race-hunting stress campaign.
 *
 * Fans a (protocol x jitter profile x access pattern x seed) grid of
 * RandomTester jobs across the sweep_runner thread pool. Each job runs
 * with the golden-memory value oracle, the periodic SWMR invariant
 * scan, the deadlock watchdog, and transition-coverage recording; the
 * campaign merges per-job coverage into one matrix per protocol so the
 * final report can show which documented transitions the interleavings
 * actually reached (Sec. 3.6 of the paper: "we have tested protozoa
 * extensively with the random tester (1 million accesses)").
 *
 * Jitter profiles modulate the Mesh fault injector: "off" keeps the
 * default deterministic network; the others add bounded per-message
 * jitter plus occasional long holds that reorder messages between
 * different (src,dst) pairs (same-pair FIFO is preserved — the
 * protocol's one real network ordering assumption).
 */

#ifndef PROTOZOA_SIM_STRESS_CAMPAIGN_HH
#define PROTOZOA_SIM_STRESS_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "protocol/conformance.hh"
#include "sim/random_tester.hh"

namespace protozoa {

/** One fault profile in the campaign grid. */
struct JitterProfile
{
    const char *name;
    bool faultInjection;
    Cycle jitterMax;
    double reorderProb;
    /** Controller occupancy jitter bound (0 = off). */
    Cycle occJitterMax = 0;
};

/**
 * The four standard profiles: off, mild jitter, wild reordering, and
 * "occ" (mild network jitter plus controller occupancy jitter).
 */
const std::vector<JitterProfile> &standardJitterProfiles();

/** One coherence-knob combination in the campaign grid. */
struct KnobSetting
{
    const char *name;
    bool threeHop;
    DirectoryKind directory;
};

struct CampaignSpec
{
    /** Protocols to stress (default: the full family). */
    std::vector<ProtocolKind> protocols{
        ProtocolKind::MESI, ProtocolKind::ProtozoaSW,
        ProtocolKind::ProtozoaSWMR, ProtocolKind::ProtozoaMW};
    /** Jitter profiles (default: standardJitterProfiles()). */
    std::vector<JitterProfile> profiles = standardJitterProfiles();
    /**
     * Coherence-knob combinations; every grid point runs once per
     * setting and the merged coverage matrix records which knob
     * profile reached each documented transition.
     */
    std::vector<KnobSetting> knobs{
        {"base", false, DirectoryKind::InCacheExact}};
    /** Access-pattern archetypes. */
    std::vector<RandomTester::Pattern> patterns{
        RandomTester::Pattern::Uniform,
        RandomTester::Pattern::FalseShareBoundary,
        RandomTester::Pattern::EvictionPressure,
        RandomTester::Pattern::UpgradeHeavy};
    /** Seeds; each grid point runs once per seed. */
    std::vector<std::uint64_t> seeds{1, 2, 3, 4, 5, 6, 7, 8};
    /** System size per job (l2Tiles follows numCores). */
    unsigned numCores = 16;
    unsigned meshCols = 4;
    unsigned meshRows = 4;
    /**
     * Shared-L2 bytes per tile. The tester default (4 KB) keeps
     * inclusion recalls frequent at 16 tiles; wider meshes shrink
     * this further so the per-tile conflict pressure (and thus the
     * recall rate) does not dilute with the tile count.
     */
    std::uint64_t l2BytesPerTile = 4096;
    /**
     * Hot-pool size in regions (the tester default). Scaled with the
     * core count for wide meshes: 64 cores on a 16-region pool bury
     * every region under dozens of sharers, which starves the
     * single-writer directory states (WR, last-writer evictions)
     * that the coverage matrix requires.
     */
    unsigned hotRegions = 16;
    /** Accesses per core per job. */
    std::uint64_t accessesPerCore = 2000;
    /** Invariant-scan period forwarded to RandomTester. */
    Cycle checkPeriod = 64;
    /**
     * Deadlock-watchdog bound per job. Generous: jitter holds stretch
     * latencies but a healthy protocol still completes every
     * transaction within a few hundred cycles.
     */
    Cycle watchdogCycles = 50000;
    /** Worker threads (0 = envJobs()). */
    unsigned workers = 0;
    /** Serialized per-job progress lines on stderr. */
    bool progress = false;
    /**
     * Gate passed() on full transition-matrix coverage. The default
     * and small grids own that gate; the large-mesh grid turns it
     * off, because 64 cores dilute the per-(core, region) access
     * density until multi-block-writer transitions like
     * (WR, Put) -> WR stop occurring within any CI-sized budget (see
     * EXPERIMENTS.md). Unexplained gaps are still reported.
     */
    bool requireFullCoverage = true;

    /**
     * Hostile 4-core 2x2 variant: each job costs ~1/10 of a 16-core
     * one, so the same wall-clock budget covers ~10x the seeds. Fewer
     * cores means each region's contenders collide more often per
     * access, so per-seed race density does not drop with system size.
     */
    static CampaignSpec smallSystem();

    /**
     * 64-core 8x8 variant: each job costs ~4x a 16-core one, so the
     * grid keeps the full profile x pattern matrix but trims the seed
     * list. Large meshes trade per-region collision density for
     * fan-out width — recalls and invalidation storms touch up to 64
     * sharers and the sharer masks exercise the full first word — so
     * this grid hunts a different class of bug (mask-boundary,
     * fan-out-collection) than the hostile small grid.
     */
    static CampaignSpec largeMesh();
};

/** One failing grid point, with everything needed to reproduce it. */
struct CampaignFailure
{
    RandomTester::Params params;
    const char *profile = "?";
    const char *knobs = "?";
    std::uint64_t valueViolations = 0;
    std::uint64_t invariantViolations = 0;
};

/** Aggregated campaign outcome. */
struct CampaignResult
{
    std::uint64_t jobs = 0;
    std::uint64_t accesses = 0;
    std::uint64_t valueViolations = 0;
    std::uint64_t invariantViolations = 0;
    /** Failing grid points, canonically sorted (shrinker input). */
    std::vector<CampaignFailure> failures;
    /** One merged coverage matrix per CampaignSpec protocol, in order. */
    std::vector<ConformanceCoverage> coverage;
    /** Copied from CampaignSpec::requireFullCoverage. */
    bool requireFullCoverage = true;

    /**
     * No value or SWMR violations, and — when the spec requires full
     * coverage — every documented transition of every protocol was
     * hit or carries an explanatory note.
     */
    bool passed() const;

    /** Campaign summary plus per-protocol coverage reports. */
    std::string report(bool verbose = false) const;
};

/**
 * Run the full grid. Jobs are independent Systems, so the fan-out uses
 * parallelFor(); results merge deterministically in job order.
 */
CampaignResult runCampaign(const CampaignSpec &spec);

} // namespace protozoa

#endif // PROTOZOA_SIM_STRESS_CAMPAIGN_HH
