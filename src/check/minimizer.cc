#include "check/minimizer.hh"

#include <sstream>

namespace protozoa::check {

namespace {

const char *
protocolEnumName(ProtocolKind p)
{
    switch (p) {
      case ProtocolKind::MESI: return "ProtocolKind::MESI";
      case ProtocolKind::ProtozoaSW: return "ProtocolKind::ProtozoaSW";
      case ProtocolKind::ProtozoaSWMR:
        return "ProtocolKind::ProtozoaSWMR";
      case ProtocolKind::ProtozoaMW: return "ProtocolKind::ProtozoaMW";
    }
    return "ProtocolKind::MESI";
}

const char *
predictorEnumName(PredictorKind p)
{
    switch (p) {
      case PredictorKind::FullRegion:
        return "PredictorKind::FullRegion";
      case PredictorKind::Fixed: return "PredictorKind::Fixed";
      case PredictorKind::PcSpatial: return "PredictorKind::PcSpatial";
      case PredictorKind::WordOnly: return "PredictorKind::WordOnly";
    }
    return "PredictorKind::WordOnly";
}

} // namespace

std::string
buildRepro(const Scenario &s, ProtocolKind proto, const Violation &v)
{
    std::ostringstream os;
    os << "// protocheck counterexample: " << s.name << " under "
       << protocolName(proto) << "\n";
    os << "// violation [" << v.kind << "]: " << v.detail << "\n";
    os << "// delivery schedule (choice at each quiescent point):\n";
    for (std::size_t i = 0; i < v.steps.size(); ++i)
        os << "//   [" << i << "] choice " << v.schedule[i] << ": "
           << v.steps[i].desc << "\n";
    os << "// The drain() below runs the default delivery order; to\n"
       << "// replay this exact interleaving, pass the schedule to\n"
       << "// check::replaySchedule(scenario, proto, {";
    for (std::size_t i = 0; i < v.schedule.size(); ++i)
        os << (i ? ", " : "") << v.schedule[i];
    os << "}).\n";

    os << "SystemConfig cfg;\n";
    os << "cfg.protocol = " << protocolEnumName(proto) << ";\n";
    os << "cfg.predictor = " << predictorEnumName(s.predictor) << ";\n";
    if (s.predictor == PredictorKind::Fixed)
        os << "cfg.fixedFetchWords = " << s.fixedFetchWords << ";\n";
    os << "cfg.numCores = " << s.numCores << ";\n";
    os << "cfg.l2Tiles = " << s.numCores << ";\n";
    os << "cfg.meshCols = " << s.numCores << ";\n";
    os << "cfg.meshRows = 1;\n";
    os << "cfg.regionBytes = " << s.regionBytes << ";\n";
    os << "cfg.l1Sets = " << s.l1Sets << ";\n";
    const SystemConfig full = s.toConfig(proto);
    os << "cfg.l1BytesPerSet = " << full.l1BytesPerSet << ";\n";
    os << "cfg.l2BytesPerTile = " << s.l2BytesPerTile << ";\n";
    os << "cfg.l2Assoc = " << s.l2Assoc << ";\n";
    if (s.threeHop)
        os << "cfg.threeHop = true;\n";
    if (s.directory == DirectoryKind::TaglessBloom) {
        os << "cfg.directory = DirectoryKind::TaglessBloom;\n";
        os << "cfg.bloomBuckets = " << s.bloomBuckets << ";\n";
        os << "cfg.bloomHashes = " << s.bloomHashes << ";\n";
    }
    if (s.debugLostStoreBug)
        os << "cfg.debugLostStoreBug = true;\n";
    os << "ProtocolDriver d(cfg);\n";
    for (const auto &a : s.accesses) {
        os << "d.issue(" << unsigned(a.core) << ", 0x" << std::hex
           << a.addr << std::dec << ", "
           << (a.isWrite ? "true" : "false");
        if (a.isWrite)
            os << ", 0x" << std::hex << a.value << std::dec;
        os << ");\n";
    }
    os << "d.drain();\n";
    return os.str();
}

std::optional<MinimizeResult>
minimize(const Scenario &s, ProtocolKind proto, const ExploreLimits &lim)
{
    ExploreResult base = explore(s, proto, lim);
    std::uint64_t states = base.statesVisited;
    if (!base.violation)
        return std::nullopt;

    // Greedy single-access removal to a local fixpoint. Any violation
    // in the reduced scenario counts: the goal is the smallest failing
    // program, not necessarily the same failing schedule.
    Scenario cur = s;
    Violation best = *base.violation;
    bool improved = true;
    while (improved && cur.accesses.size() > 1) {
        improved = false;
        for (std::size_t i = 0; i < cur.accesses.size(); ++i) {
            Scenario cand = cur;
            cand.accesses.erase(cand.accesses.begin() +
                                static_cast<std::ptrdiff_t>(i));
            ExploreResult r = explore(cand, proto, lim);
            states += r.statesVisited;
            if (r.violation) {
                cur = std::move(cand);
                best = *r.violation;
                improved = true;
                break;
            }
        }
    }

    // Schedule shrink: the shortest prefix of the found schedule whose
    // canonical completion still fails. The full schedule reproduces
    // by construction, so the loop always terminates with a hit.
    std::vector<unsigned> found = best.schedule;
    std::vector<unsigned> sched = found;
    for (std::size_t len = 0; len <= found.size(); ++len) {
        std::vector<unsigned> prefix(
            found.begin(),
            found.begin() + static_cast<std::ptrdiff_t>(len));
        if (auto v = replaySchedule(cur, proto, prefix)) {
            best = *v;
            sched = prefix;
            break;
        }
    }

    MinimizeResult out;
    out.scenario = std::move(cur);
    out.schedule = std::move(sched);
    out.repro = buildRepro(out.scenario, proto, best);
    out.violation = std::move(best);
    out.statesExplored = states;
    return out;
}

} // namespace protozoa::check
