#include "check/campaign_shrink.hh"

#include <algorithm>
#include <sstream>

namespace protozoa::check {

namespace {

std::uint64_t
totalAccesses(const std::vector<std::vector<TraceRecord>> &traces)
{
    std::uint64_t n = 0;
    for (const auto &t : traces)
        n += t.size();
    return n;
}

} // namespace

std::optional<CampaignShrinkResult>
shrinkCampaignFailure(const CampaignFailure &failure)
{
    const RandomTester::Params &params = failure.params;
    auto fails = [&](const std::vector<std::vector<TraceRecord>> &t) {
        const RandomTester::Result r = RandomTester::runTraces(params, t);
        return r.valueViolations + r.invariantViolations > 0;
    };

    auto traces = RandomTester::buildTraces(params);
    const std::uint64_t before = totalAccesses(traces);
    if (!fails(traces))
        return std::nullopt;

    std::ostringstream log;
    log << "shrinking " << protocolName(params.protocol) << " "
        << RandomTester::patternName(params.pattern) << " seed="
        << params.seed << " (" << before << " accesses)\n";

    // 1. Halve every core's trace (prefix truncation) to a fixpoint.
    for (;;) {
        auto cand = traces;
        bool any = false;
        for (auto &t : cand) {
            if (t.size() > 1) {
                t.resize((t.size() + 1) / 2);
                any = true;
            }
        }
        if (!any || !fails(cand))
            break;
        traces = std::move(cand);
    }
    log << "  after prefix halving: " << totalAccesses(traces)
        << " accesses\n";

    // 2. Drop whole cores greedily.
    for (std::size_t c = 0; c < traces.size(); ++c) {
        if (traces[c].empty())
            continue;
        auto cand = traces;
        cand[c].clear();
        if (fails(cand))
            traces = std::move(cand);
    }

    // 3. Pop accesses off each core's tail while the failure persists.
    bool improved = true;
    while (improved) {
        improved = false;
        for (std::size_t c = 0; c < traces.size(); ++c) {
            while (!traces[c].empty()) {
                auto cand = traces;
                cand[c].pop_back();
                if (!fails(cand))
                    break;
                traces = std::move(cand);
                improved = true;
            }
        }
    }
    const std::uint64_t after = totalAccesses(traces);
    log << "  after core dropping and tail popping: " << after
        << " accesses\n";

    CampaignShrinkResult out;
    out.failure = failure;
    out.params = params;
    out.accessesBefore = before;
    out.accessesAfter = after;

    // 4. Small enough for the bounded explorer? Convert and let the
    // minimizer search for a schedule-exact counterexample. Bounded
    // best effort: the campaign failure may need occupancy or network
    // timing the explorer does not model, so nullopt here is fine.
    const SystemConfig cfg = RandomTester::buildConfig(params);
    std::vector<int> coreMap(traces.size(), -1);
    unsigned active = 0;
    for (std::size_t c = 0; c < traces.size(); ++c) {
        if (!traces[c].empty())
            coreMap[c] = static_cast<int>(active++);
    }
    std::vector<Addr> regions;
    for (const auto &t : traces)
        for (const TraceRecord &rec : t)
            regions.push_back(regionBase(rec.addr, cfg.regionBytes));
    std::sort(regions.begin(), regions.end());
    regions.erase(std::unique(regions.begin(), regions.end()),
                  regions.end());

    out.explorerEligible = after > 0 && after <= 12 && active >= 1 &&
                           active <= 4 && regions.size() <= 2;
    if (out.explorerEligible) {
        Scenario sc;
        sc.name = "campaign-shrink";
        sc.note = "converted from a failing stress-campaign point";
        sc.numCores = std::max(active, 2u);
        sc.regionBytes = cfg.regionBytes;
        sc.predictor = cfg.predictor;
        sc.fixedFetchWords = cfg.fixedFetchWords;
        sc.l1Sets = cfg.l1Sets;
        sc.l1BytesPerSet = cfg.l1BytesPerSet;
        sc.l2BytesPerTile = cfg.l2BytesPerTile;
        sc.l2Assoc = cfg.l2Assoc;
        sc.threeHop = cfg.threeHop;
        sc.directory = cfg.directory;
        sc.bloomBuckets = cfg.bloomBuckets;
        sc.bloomHashes = cfg.bloomHashes;
        sc.debugLostStoreBug = cfg.debugLostStoreBug;
        // Interleave cores round-robin; only per-core order matters to
        // the explorer (it enumerates the cross-core interleavings).
        std::uint64_t value = 1;
        std::vector<std::size_t> pos(traces.size(), 0);
        for (bool more = true; more;) {
            more = false;
            for (std::size_t c = 0; c < traces.size(); ++c) {
                if (pos[c] >= traces[c].size())
                    continue;
                const TraceRecord &rec = traces[c][pos[c]++];
                more = true;
                ScenarioAccess acc;
                acc.core = static_cast<CoreId>(coreMap[c]);
                acc.addr = rec.addr;
                acc.isWrite = rec.isWrite;
                acc.value = rec.isWrite ? value++ : 0;
                acc.pc = rec.pc;
                sc.accesses.push_back(acc);
            }
        }
        out.minimized = minimize(sc, params.protocol);
        log << "  explorer conversion: "
            << (out.minimized ? "violation reproduced and minimized"
                              : "violation not reproduced (timing-"
                                "dependent); trace-level shrink kept")
            << "\n";
    } else {
        // The survivor is still too large for the bounded explorer;
        // say which limit blocked it and keep the campaign-failure
        // record as the durable repro (params rebuild the workload).
        log << "  shrunk survivor still exceeds the explorer limits:";
        if (after > 12)
            log << " " << after << " accesses (max 12);";
        if (active > 4)
            log << " " << active << " cores (max 4);";
        if (regions.size() > 2)
            log << " " << regions.size() << " regions (max 2);";
        if (after == 0)
            log << " empty survivor;";
        log << " keeping the campaign failure record (seed="
            << params.seed << ")\n";
    }

    out.traces = std::move(traces);
    out.summary = log.str();
    return out;
}

} // namespace protozoa::check
