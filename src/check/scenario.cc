#include "check/scenario.hh"

#include <algorithm>

#include "cache/amoeba_cache.hh"

namespace protozoa::check {

SystemConfig
Scenario::toConfig(ProtocolKind proto) const
{
    SystemConfig cfg;
    cfg.protocol = proto;
    cfg.predictor = predictor;
    cfg.fixedFetchWords = fixedFetchWords;
    cfg.directory = directory;
    cfg.bloomBuckets = bloomBuckets;
    cfg.bloomHashes = bloomHashes;
    cfg.threeHop = threeHop;
    cfg.debugLostStoreBug = debugLostStoreBug;

    cfg.numCores = numCores;
    cfg.l2Tiles = numCores;
    // Legacy scenarios use an N x 1 mesh (geometry only affects hop
    // latency, not reachable protocol states); large-mesh scenarios
    // pick a real 2-D grid.
    cfg.meshCols = meshCols != 0 ? meshCols : numCores;
    cfg.meshRows = meshRows != 0 ? meshRows : 1;

    cfg.regionBytes = regionBytes;
    cfg.l1Sets = l1Sets;
    cfg.l1BytesPerSet =
        l1BytesPerSet != 0
            ? l1BytesPerSet
            : 4 * (regionBytes + AmoebaCache::kTagBytes);
    cfg.l2BytesPerTile = l2BytesPerTile;
    cfg.l2Assoc = l2Assoc;

    cfg.scheduleOracle = true;
    cfg.checkValues = true;
    cfg.faultInjection = false;
    cfg.occupancyJitter = false;
    cfg.watchdogCycles = 0;
    cfg.seed = 1;
    return cfg;
}

std::vector<Addr>
Scenario::regionFootprint() const
{
    std::vector<Addr> regions;
    for (const auto &acc : accesses)
        regions.push_back(regionBase(acc.addr, regionBytes));
    std::sort(regions.begin(), regions.end());
    regions.erase(std::unique(regions.begin(), regions.end()),
                  regions.end());
    return regions;
}

namespace {

constexpr Addr kBase = 0x40000000;

/** Word @p w of region @p r (64-byte regions unless noted). */
Addr
wordAddr(unsigned region_bytes, unsigned r, unsigned w)
{
    return kBase + static_cast<Addr>(r) * region_bytes +
           static_cast<Addr>(w) * kWordBytes;
}

std::vector<Scenario>
buildLibrary()
{
    std::vector<Scenario> lib;

    {
        // Sec. 3.3: both cores load a word into S, then both try to
        // upgrade it. One upgrade must lose, get invalidated
        // mid-flight (SM_B), and retry as a full GETX.
        Scenario s;
        s.name = "upgrade-race";
        s.note = "two cores race S->M upgrades on the same word";
        s.stresses = {"swmr", "value", "upgrade"};
        s.numCores = 2;
        s.accesses = {
            {0, wordAddr(64, 0, 0), false, 0},
            {1, wordAddr(64, 0, 0), false, 0},
            {0, wordAddr(64, 0, 0), true, 0x0a},
            {1, wordAddr(64, 0, 0), true, 0x0b},
        };
        lib.push_back(std::move(s));
    }

    {
        // False sharing: disjoint words of one region ping-pong
        // between writers. Adaptive protocols keep both writers
        // resident; MESI serializes the whole region.
        Scenario s;
        s.name = "false-share-pingpong";
        s.note = "disjoint-word writers of one region, cross reads";
        s.stresses = {"swmr", "value", "mw-split"};
        s.numCores = 2;
        s.accesses = {
            {0, wordAddr(64, 0, 0), true, 0x1a},
            {1, wordAddr(64, 0, 7), true, 0x1b},
            {0, wordAddr(64, 0, 0), true, 0x2a},
            {1, wordAddr(64, 0, 7), true, 0x2b},
            {0, wordAddr(64, 0, 7), false, 0},
            {1, wordAddr(64, 0, 0), false, 0},
        };
        lib.push_back(std::move(s));
    }

    {
        // The PR 2 lost-store shape: a dirty single-word block is
        // evicted (PUT in flight) while a partial-range probe for the
        // *other* word of the region races it to the directory. The
        // probe response must keep the evictor tracked or the PUT is
        // classified stale and the store is lost.
        Scenario s;
        s.name = "evict-vs-partial-probe";
        s.note = "in-flight eviction PUT races a non-overlapping probe";
        s.stresses = {"value", "writeback", "mr-overlap"};
        s.numCores = 2;
        s.regionBytes = 16;
        s.l1Sets = 1;
        // One single-word block (8 B payload + 8 B tag) fits; the
        // second store's fill must evict the first block.
        s.l1BytesPerSet = 24;
        s.accesses = {
            {0, wordAddr(16, 0, 0), true, 0xa1},
            {0, wordAddr(16, 0, 1), true, 0xa2},
            {1, wordAddr(16, 0, 1), true, 0xb1},
            {1, wordAddr(16, 0, 0), false, 0},
        };
        lib.push_back(std::move(s));
    }

    {
        // A load installs S, the following store upgrades, and a
        // third-party writer races the upgrade: the FWD_GETX may
        // invalidate the upgrade target mid-flight (SM_B retry).
        Scenario s;
        s.name = "upgrade-retry";
        s.note = "probe invalidates an in-flight S->M upgrade target";
        s.stresses = {"swmr", "value", "upgrade"};
        s.numCores = 2;
        s.accesses = {
            {0, wordAddr(64, 0, 0), false, 0},
            {0, wordAddr(64, 0, 0), true, 0x3a},
            {1, wordAddr(64, 0, 0), true, 0x3b},
            {1, wordAddr(64, 0, 0), false, 0},
        };
        lib.push_back(std::move(s));
    }

    {
        // Inclusive-eviction recall: a one-entry L2 tile forces the
        // second region's fill to recall the first region from its
        // sharers while their traffic is still in flight.
        Scenario s;
        s.name = "recall-inclusive";
        s.note = "L2 conflict recall races the victim's live sharers";
        s.stresses = {"inclusion", "recall", "value"};
        s.numCores = 2;
        s.l2BytesPerTile = 64;
        s.l2Assoc = 1;
        s.accesses = {
            {0, wordAddr(64, 0, 0), true, 0x4a},
            // Region index 2 (= l2Tiles) homes on tile 0 as well and
            // conflicts with region 0 in the single-entry tile.
            {0, wordAddr(64, 2, 0), true, 0x4b},
            {1, wordAddr(64, 0, 1), true, 0x4c},
            {1, wordAddr(64, 0, 0), false, 0},
        };
        lib.push_back(std::move(s));
    }

    {
        // 3-hop direct supply: the probed owner sends DATA straight to
        // the requester while the directory still awaits collection.
        Scenario s;
        s.name = "threehop-direct";
        s.note = "owner-to-requester direct DATA with late collection";
        s.stresses = {"3hop", "value", "swmr"};
        s.numCores = 2;
        s.threeHop = true;
        s.accesses = {
            {0, wordAddr(64, 0, 0), true, 0x5a},
            {1, wordAddr(64, 0, 0), false, 0},
            {1, wordAddr(64, 0, 0), true, 0x5b},
            {0, wordAddr(64, 0, 0), false, 0},
        };
        lib.push_back(std::move(s));
    }

    {
        // Bloom false positive: with one bucket per hash table every
        // region aliases every other, so core 1's residency in region
        // 2 makes the directory falsely probe it for region 0. The
        // probe must come back as a clean NACK (bloomFalseProbes
        // stat) without deadlocking the requester.
        Scenario s;
        s.name = "bloom-false-probe";
        s.note = "fully-aliased Bloom filter forces false probe/NACK";
        s.stresses = {"bloom-nack", "value"};
        s.numCores = 2;
        s.directory = DirectoryKind::TaglessBloom;
        s.bloomBuckets = 1;
        s.bloomHashes = 1;
        s.accesses = {
            // Region 2 homes on tile 0 (even index) and pollutes the
            // tile-0 filter with core 1.
            {1, wordAddr(64, 2, 0), false, 0},
            {0, wordAddr(64, 0, 0), true, 0x6a},
            {1, wordAddr(64, 0, 0), false, 0},
            {0, wordAddr(64, 0, 1), true, 0x6b},
        };
        lib.push_back(std::move(s));
    }

    {
        // Bloom NACK under an upgrade: core 0's S->M upgrade collects
        // a false-positive probe NACK from core 1 (aliased in via
        // region 2) concurrently with the genuine invalidation, so
        // the collection logic must count NACKs and real acks against
        // the same expected-response tally.
        Scenario s;
        s.name = "bloom-nack-upgrade";
        s.note = "upgrade collects a false-probe NACK plus a real ack";
        s.stresses = {"bloom-nack", "upgrade", "swmr"};
        s.numCores = 2;
        s.directory = DirectoryKind::TaglessBloom;
        s.bloomBuckets = 1;
        s.bloomHashes = 1;
        s.accesses = {
            {0, wordAddr(64, 0, 0), false, 0},
            {1, wordAddr(64, 2, 0), true, 0x7a},
            {0, wordAddr(64, 0, 0), true, 0x7b},
            {1, wordAddr(64, 0, 0), false, 0},
        };
        lib.push_back(std::move(s));
    }

    {
        // Three writers storm a one-entry L2 tile: regions 0, 3 and 6
        // all home on tile 0 and collide in its only set, so every
        // fill recalls the previous region while its traffic is still
        // live, and late requesters hit the PR 4 pinned-set deferral.
        Scenario s;
        s.name = "recall-storm-3core";
        s.note = "3 cores churn one-entry L2 set, serial recalls";
        s.stresses = {"recall", "pinning", "inclusion", "value"};
        s.numCores = 3;
        s.l2BytesPerTile = 64;
        s.l2Assoc = 1;
        s.accesses = {
            {0, wordAddr(64, 0, 0), true, 0x8a},
            {1, wordAddr(64, 3, 0), true, 0x8b},
            {2, wordAddr(64, 6, 0), true, 0x8c},
            {0, wordAddr(64, 3, 1), false, 0},
            {1, wordAddr(64, 0, 0), false, 0},
        };
        lib.push_back(std::move(s));
    }

    {
        // Four-core recall storm, 10 accesses: regions 0, 4 and 8 all
        // collide in tile 0's only set while cross-reads keep the
        // victims' sharer sets live. Full enumeration exhausts the CI
        // state budget; the POR-reduced space completes. Regression-
        // locks the PR 4 fully-pinned-set deferral fix at 4 cores.
        Scenario s;
        s.name = "recall-storm-4core";
        s.note = "4-core recall storm on a one-entry L2 set (deep)";
        s.stresses = {"recall", "pinning", "inclusion", "value"};
        s.deep = true;
        s.numCores = 4;
        s.l2BytesPerTile = 64;
        s.l2Assoc = 1;
        s.accesses = {
            {0, wordAddr(64, 0, 0), true, 0x9a},
            {1, wordAddr(64, 4, 0), true, 0x9b},
            {2, wordAddr(64, 8, 0), true, 0x9c},
            {3, wordAddr(64, 0, 1), true, 0x9d},
            {0, wordAddr(64, 4, 1), false, 0},
            {1, wordAddr(64, 8, 1), false, 0},
            {2, wordAddr(64, 0, 0), false, 0},
            {3, wordAddr(64, 4, 0), false, 0},
            {0, wordAddr(64, 0, 1), true, 0x9e},
            {1, wordAddr(64, 0, 1), false, 0},
        };
        lib.push_back(std::move(s));
    }

    {
        // MW churn: two writers hammer disjoint words (0 and 7, then
        // 3) of one region across 10 accesses with word-boundary
        // writes, ending in cross reads. Under Protozoa-MW both stay
        // M-resident on their word ranges; the word-level SWMR split
        // and the final cross-read values must hold through the
        // churn. Full enumeration exceeds the CI budget.
        Scenario s;
        s.name = "mw-word-churn";
        s.note = "10-access disjoint-word writer churn, cross reads";
        s.stresses = {"mw-split", "swmr", "value"};
        s.deep = true;
        s.numCores = 2;
        // PcSpatial folds the access history into its pattern table,
        // which the state fingerprint does not cover, so memoization
        // is off for this scenario: the run measures raw search-tree
        // size. Distinct pcs per (core, word) stream keep the
        // predictor's table non-trivial.
        s.predictor = PredictorKind::PcSpatial;
        s.accesses = {
            {0, wordAddr(64, 0, 0), true, 0xa0, 0x100},
            {1, wordAddr(64, 0, 7), true, 0xb0, 0x200},
            {0, wordAddr(64, 0, 0), true, 0xa1, 0x100},
            {1, wordAddr(64, 0, 7), true, 0xb1, 0x200},
            {0, wordAddr(64, 0, 3), true, 0xa2, 0x110},
            {1, wordAddr(64, 0, 7), true, 0xb2, 0x200},
            {0, wordAddr(64, 0, 7), false, 0, 0x120},
            {1, wordAddr(64, 0, 3), false, 0, 0x210},
            {0, wordAddr(64, 0, 0), false, 0, 0x100},
            {1, wordAddr(64, 0, 0), false, 0, 0x220},
        };
        lib.push_back(std::move(s));
    }

    {
        // Three cores stride over three regions homed on three
        // different tiles under the PcSpatial predictor, ending in
        // cross reads. The predictor folds access history into its
        // pattern table, so memoization is (soundly) unavailable and
        // the runs measure raw search-tree size: the streams are
        // pairwise independent almost everywhere, so sleep sets
        // collapse the schedule space to near one order per
        // dependent suffix, while full enumeration of the
        // interleaved streams exhausts any CI state budget.
        Scenario s;
        s.name = "pcspatial-stride-3core";
        s.note = "3 striding cores, 3 home tiles, PcSpatial (deep)";
        s.stresses = {"value", "swmr", "predictor"};
        s.deep = true;
        s.numCores = 3;
        s.predictor = PredictorKind::PcSpatial;
        s.accesses = {
            {0, wordAddr(64, 0, 0), true, 0x51, 0x400},
            {1, wordAddr(64, 1, 0), true, 0x61, 0x500},
            {2, wordAddr(64, 2, 0), true, 0x71, 0x600},
            {0, wordAddr(64, 0, 1), true, 0x52, 0x404},
            {1, wordAddr(64, 1, 1), true, 0x62, 0x504},
            {2, wordAddr(64, 2, 1), true, 0x72, 0x604},
            {0, wordAddr(64, 0, 2), true, 0x53, 0x408},
            {1, wordAddr(64, 1, 2), true, 0x63, 0x508},
            {2, wordAddr(64, 2, 2), true, 0x73, 0x608},
            {0, wordAddr(64, 1, 0), false, 0, 0x40c},
            {1, wordAddr(64, 2, 0), false, 0, 0x50c},
            {2, wordAddr(64, 0, 0), false, 0, 0x60c},
        };
        lib.push_back(std::move(s));
    }

    {
        // MR overlap vs eviction: both cores read word 0 (overlapping
        // reader ranges), core 0's second fill evicts its block while
        // core 1 upgrades the word the clean eviction still covers.
        // The directory's reader-overlap probe filter must not skip
        // the evicting reader or the stale copy survives.
        Scenario s;
        s.name = "mr-reader-overlap-evict";
        s.note = "overlapping readers race a clean eviction vs upgrade";
        s.stresses = {"mr-overlap", "value", "writeback"};
        s.numCores = 2;
        s.regionBytes = 16;
        s.l1Sets = 1;
        s.l1BytesPerSet = 24;
        s.accesses = {
            {0, wordAddr(16, 0, 0), false, 0},
            {1, wordAddr(16, 0, 0), false, 0},
            {0, wordAddr(16, 0, 1), false, 0},
            {1, wordAddr(16, 0, 0), true, 0xc1},
            {0, wordAddr(16, 0, 0), false, 0},
        };
        lib.push_back(std::move(s));
    }

    {
        // Writeback/upgrade crossing under 3-hop forwarding: core 0's
        // dirty eviction PUT is in flight when core 1's GETX arrives,
        // so the directory forwards the probe straight at the evictor
        // and the 3-hop direct DATA path crosses the writeback.
        Scenario s;
        s.name = "wb-upgrade-cross-3hop";
        s.note = "dirty eviction PUT crosses a 3-hop forwarded GETX";
        s.stresses = {"writeback", "3hop", "value", "upgrade"};
        s.numCores = 2;
        s.regionBytes = 16;
        s.l1Sets = 1;
        s.l1BytesPerSet = 24;
        s.threeHop = true;
        s.accesses = {
            {0, wordAddr(16, 0, 0), true, 0xd0},
            {0, wordAddr(16, 0, 1), true, 0xd1},
            {1, wordAddr(16, 0, 0), true, 0xd2},
            {0, wordAddr(16, 0, 0), false, 0},
        };
        lib.push_back(std::move(s));
    }

    {
        // 3-hop forwarding on a fully-aliased Bloom directory: the
        // forwarded probe set includes a false-positive target, so
        // the single-probe 3-hop fast path must fall back cleanly
        // when the "owner" answers NACK instead of DATA.
        Scenario s;
        s.name = "threehop-bloom-cross";
        s.note = "3-hop fast path meets a Bloom false-positive owner";
        s.stresses = {"3hop", "bloom-nack", "value"};
        s.numCores = 2;
        s.threeHop = true;
        s.directory = DirectoryKind::TaglessBloom;
        s.bloomBuckets = 1;
        s.bloomHashes = 1;
        s.accesses = {
            {1, wordAddr(64, 2, 0), true, 0xe0},
            {0, wordAddr(64, 0, 0), true, 0xe1},
            {1, wordAddr(64, 0, 0), false, 0},
            {0, wordAddr(64, 2, 0), false, 0},
        };
        lib.push_back(std::move(s));
    }

    {
        // Wide-mask boundary race on a real 8x8 mesh: the corner
        // cores 0 and 63 (bit 0 and bit 63 of sharer-mask word 0)
        // race S->M upgrades on one word. Same race as
        // "upgrade-race", but the 64-node geometry drives every
        // sharer set to the top of the first mask word and exercises
        // the multi-word sleep-set channel bitmap (4096 channel bits
        // on 64 nodes), so this also regression-locks POR at scale.
        Scenario s;
        s.name = "upgrade-race-8x8";
        s.note = "corner cores 0/63 race upgrades on an 8x8 mesh";
        s.stresses = {"swmr", "value", "upgrade", "large-mesh"};
        s.large = true;
        s.numCores = 64;
        s.meshCols = 8;
        s.meshRows = 8;
        s.accesses = {
            {0, wordAddr(64, 0, 0), false, 0},
            {63, wordAddr(64, 0, 0), false, 0},
            {0, wordAddr(64, 0, 0), true, 0xf0},
            {63, wordAddr(64, 0, 0), true, 0xf1},
        };
        lib.push_back(std::move(s));
    }

    {
        // Recall storm across an 8x8 mesh: four corner cores populate
        // tile 0's only L2 entry with three colliding regions (region
        // indices 0, 64, 128 all home on tile 0 and share its single
        // set), so each fill recalls the previous region from sharers
        // on opposite corners of the mesh. Exercises recall fan-out
        // with 64-wide sharer masks and the pinned-set deferral at
        // scale.
        Scenario s;
        s.name = "recall-storm-8x8";
        s.note = "corner cores churn tile 0's one-entry set on 8x8";
        s.stresses = {"recall", "pinning", "inclusion", "value",
                      "large-mesh"};
        s.large = true;
        s.numCores = 64;
        s.meshCols = 8;
        s.meshRows = 8;
        s.l2BytesPerTile = 64;
        s.l2Assoc = 1;
        s.accesses = {
            {0, wordAddr(64, 0, 0), true, 0xc0},
            {63, wordAddr(64, 0, 1), false, 0},
            {7, wordAddr(64, 64, 0), true, 0xc1},
            {56, wordAddr(64, 128, 0), true, 0xc2},
            {63, wordAddr(64, 0, 0), false, 0},
        };
        lib.push_back(std::move(s));
    }

    {
        // Minimal 16x16 widest-mask smoke: cores 0 and 255 (bit 63 of
        // mask word 3) share then split one region. Keeps the
        // schedule space tiny — the point is that a 256-core Run
        // (65536 potential mesh channels, 4-word sharer sets) builds,
        // explores, and fingerprints correctly at the top of the
        // supported range.
        Scenario s;
        s.name = "wide-mask-16x16";
        s.note = "cores 0/255 share one word on a 16x16 mesh";
        s.stresses = {"swmr", "value", "large-mesh"};
        s.large = true;
        s.numCores = 256;
        s.meshCols = 16;
        s.meshRows = 16;
        s.accesses = {
            {0, wordAddr(64, 0, 0), false, 0},
            {255, wordAddr(64, 0, 0), false, 0},
            {255, wordAddr(64, 0, 0), true, 0xff},
        };
        lib.push_back(std::move(s));
    }

    return lib;
}

} // namespace

const std::vector<Scenario> &
scenarioLibrary()
{
    static const std::vector<Scenario> lib = buildLibrary();
    return lib;
}

const Scenario *
findScenario(const std::string &name)
{
    for (const auto &s : scenarioLibrary()) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

} // namespace protozoa::check
