#include "check/scenario.hh"

#include <algorithm>

#include "cache/amoeba_cache.hh"

namespace protozoa::check {

SystemConfig
Scenario::toConfig(ProtocolKind proto) const
{
    SystemConfig cfg;
    cfg.protocol = proto;
    cfg.predictor = predictor;
    cfg.fixedFetchWords = fixedFetchWords;
    cfg.directory = directory;
    cfg.threeHop = threeHop;
    cfg.debugLostStoreBug = debugLostStoreBug;

    cfg.numCores = numCores;
    cfg.l2Tiles = numCores;
    cfg.meshCols = numCores;
    cfg.meshRows = 1;

    cfg.regionBytes = regionBytes;
    cfg.l1Sets = l1Sets;
    cfg.l1BytesPerSet =
        l1BytesPerSet != 0
            ? l1BytesPerSet
            : 4 * (regionBytes + AmoebaCache::kTagBytes);
    cfg.l2BytesPerTile = l2BytesPerTile;
    cfg.l2Assoc = l2Assoc;

    cfg.scheduleOracle = true;
    cfg.checkValues = true;
    cfg.faultInjection = false;
    cfg.occupancyJitter = false;
    cfg.watchdogCycles = 0;
    cfg.seed = 1;
    return cfg;
}

std::vector<Addr>
Scenario::regionFootprint() const
{
    std::vector<Addr> regions;
    for (const auto &acc : accesses)
        regions.push_back(regionBase(acc.addr, regionBytes));
    std::sort(regions.begin(), regions.end());
    regions.erase(std::unique(regions.begin(), regions.end()),
                  regions.end());
    return regions;
}

namespace {

constexpr Addr kBase = 0x40000000;

/** Word @p w of region @p r (64-byte regions unless noted). */
Addr
wordAddr(unsigned region_bytes, unsigned r, unsigned w)
{
    return kBase + static_cast<Addr>(r) * region_bytes +
           static_cast<Addr>(w) * kWordBytes;
}

std::vector<Scenario>
buildLibrary()
{
    std::vector<Scenario> lib;

    {
        // Sec. 3.3: both cores load a word into S, then both try to
        // upgrade it. One upgrade must lose, get invalidated
        // mid-flight (SM_B), and retry as a full GETX.
        Scenario s;
        s.name = "upgrade-race";
        s.note = "two cores race S->M upgrades on the same word";
        s.numCores = 2;
        s.accesses = {
            {0, wordAddr(64, 0, 0), false, 0},
            {1, wordAddr(64, 0, 0), false, 0},
            {0, wordAddr(64, 0, 0), true, 0x0a},
            {1, wordAddr(64, 0, 0), true, 0x0b},
        };
        lib.push_back(std::move(s));
    }

    {
        // False sharing: disjoint words of one region ping-pong
        // between writers. Adaptive protocols keep both writers
        // resident; MESI serializes the whole region.
        Scenario s;
        s.name = "false-share-pingpong";
        s.note = "disjoint-word writers of one region, cross reads";
        s.numCores = 2;
        s.accesses = {
            {0, wordAddr(64, 0, 0), true, 0x1a},
            {1, wordAddr(64, 0, 7), true, 0x1b},
            {0, wordAddr(64, 0, 0), true, 0x2a},
            {1, wordAddr(64, 0, 7), true, 0x2b},
            {0, wordAddr(64, 0, 7), false, 0},
            {1, wordAddr(64, 0, 0), false, 0},
        };
        lib.push_back(std::move(s));
    }

    {
        // The PR 2 lost-store shape: a dirty single-word block is
        // evicted (PUT in flight) while a partial-range probe for the
        // *other* word of the region races it to the directory. The
        // probe response must keep the evictor tracked or the PUT is
        // classified stale and the store is lost.
        Scenario s;
        s.name = "evict-vs-partial-probe";
        s.note = "in-flight eviction PUT races a non-overlapping probe";
        s.numCores = 2;
        s.regionBytes = 16;
        s.l1Sets = 1;
        // One single-word block (8 B payload + 8 B tag) fits; the
        // second store's fill must evict the first block.
        s.l1BytesPerSet = 24;
        s.accesses = {
            {0, wordAddr(16, 0, 0), true, 0xa1},
            {0, wordAddr(16, 0, 1), true, 0xa2},
            {1, wordAddr(16, 0, 1), true, 0xb1},
            {1, wordAddr(16, 0, 0), false, 0},
        };
        lib.push_back(std::move(s));
    }

    {
        // A load installs S, the following store upgrades, and a
        // third-party writer races the upgrade: the FWD_GETX may
        // invalidate the upgrade target mid-flight (SM_B retry).
        Scenario s;
        s.name = "upgrade-retry";
        s.note = "probe invalidates an in-flight S->M upgrade target";
        s.numCores = 2;
        s.accesses = {
            {0, wordAddr(64, 0, 0), false, 0},
            {0, wordAddr(64, 0, 0), true, 0x3a},
            {1, wordAddr(64, 0, 0), true, 0x3b},
            {1, wordAddr(64, 0, 0), false, 0},
        };
        lib.push_back(std::move(s));
    }

    {
        // Inclusive-eviction recall: a one-entry L2 tile forces the
        // second region's fill to recall the first region from its
        // sharers while their traffic is still in flight.
        Scenario s;
        s.name = "recall-inclusive";
        s.note = "L2 conflict recall races the victim's live sharers";
        s.numCores = 2;
        s.l2BytesPerTile = 64;
        s.l2Assoc = 1;
        s.accesses = {
            {0, wordAddr(64, 0, 0), true, 0x4a},
            // Region index 2 (= l2Tiles) homes on tile 0 as well and
            // conflicts with region 0 in the single-entry tile.
            {0, wordAddr(64, 2, 0), true, 0x4b},
            {1, wordAddr(64, 0, 1), true, 0x4c},
            {1, wordAddr(64, 0, 0), false, 0},
        };
        lib.push_back(std::move(s));
    }

    {
        // 3-hop direct supply: the probed owner sends DATA straight to
        // the requester while the directory still awaits collection.
        Scenario s;
        s.name = "threehop-direct";
        s.note = "owner-to-requester direct DATA with late collection";
        s.numCores = 2;
        s.threeHop = true;
        s.accesses = {
            {0, wordAddr(64, 0, 0), true, 0x5a},
            {1, wordAddr(64, 0, 0), false, 0},
            {1, wordAddr(64, 0, 0), true, 0x5b},
            {0, wordAddr(64, 0, 0), false, 0},
        };
        lib.push_back(std::move(s));
    }

    return lib;
}

} // namespace

const std::vector<Scenario> &
scenarioLibrary()
{
    static const std::vector<Scenario> lib = buildLibrary();
    return lib;
}

const Scenario *
findScenario(const std::string &name)
{
    for (const auto &s : scenarioLibrary()) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

} // namespace protozoa::check
