#include "check/explorer.hh"

#include <memory>
#include <sstream>
#include <unordered_set>

#include "check/state_fingerprint.hh"
#include "sim/system.hh"

namespace protozoa::check {

namespace {

Workload
emptyWorkload(unsigned cores)
{
    Workload wl;
    for (unsigned c = 0; c < cores; ++c)
        wl.push_back(
            std::make_unique<VectorTrace>(std::vector<TraceRecord>{}));
    return wl;
}

/**
 * One live execution of a scenario: a System driven access-by-access,
 * advanced from quiescent point to quiescent point by delivering one
 * parked message at a time. Heap-allocated and pinned: the per-core
 * completion callbacks capture `this`.
 */
class Run
{
  public:
    Run(const Scenario &s, ProtocolKind proto)
        : scenario(s), cfg(s.toConfig(proto)),
          sys(cfg, emptyWorkload(cfg.numCores))
    {
        perCore.resize(cfg.numCores);
        for (std::size_t i = 0; i < s.accesses.size(); ++i)
            perCore[s.accesses[i].core].push_back(i);
        issued.assign(cfg.numCores, 0);
        completed.assign(cfg.numCores, 0);
        regions = s.regionFootprint();

        for (CoreId c = 0; c < cfg.numCores; ++c)
            issueNext(c);
        quiesce();
    }

    Run(const Run &) = delete;
    Run &operator=(const Run &) = delete;

    /** Deliverable channels at this quiescent point. */
    unsigned width() const { return static_cast<unsigned>(frontier.size()); }

    /** Describe the head message of frontier channel @p k. */
    ScheduleStep
    describe(unsigned k)
    {
        ScheduleStep step;
        step.src = frontier[k].first;
        step.dst = frontier[k].second;
        sys.mesh().forEachParkedChannel([&](unsigned src, unsigned dst,
                                            const std::deque<Mesh::Parked>
                                                &chan) {
            if (src != step.src || dst != step.dst)
                return;
            const Mesh::Parked &p = chan.front();
            std::ostringstream os;
            os << p.type << " region=0x" << std::hex << p.region
               << std::dec << " words=" << p.range.toString() << " n"
               << src << " -> " << (p.dstIsDir ? "dir" : "l1") << dst;
            step.desc = os.str();
        });
        return step;
    }

    /** Deliver the head of frontier channel @p k and run to quiescence. */
    void
    step(unsigned k)
    {
        sys.mesh().deliverParked(frontier[k].first, frontier[k].second);
        quiesce();
    }

    std::uint64_t
    fingerprint()
    {
        return fingerprintSystem(sys, regions, completed);
    }

    /**
     * Run the invariant oracles. @p terminal marks an empty frontier,
     * where unfinished work means deadlock rather than in-flight state.
     */
    std::optional<Violation>
    check(bool terminal)
    {
        if (auto err = sys.checkCoherenceInvariant()) {
            Violation v;
            v.kind = "swmr";
            v.detail = *err;
            return v;
        }
        if (sys.valueViolations() > 0) {
            Violation v;
            v.kind = "value";
            std::ostringstream os;
            GoldenMemory &g = sys.goldenMemory();
            os << "load of 0x" << std::hex << g.lastViolationAddr()
               << " observed 0x" << g.lastObservedValue()
               << ", golden memory expects 0x" << g.lastExpectedValue();
            v.detail = os.str();
            return v;
        }
        for (CoreId c = 0; c < cfg.numCores; ++c) {
            std::optional<Violation> bad;
            sys.l1(c).cacheStorage().forEach([&](const AmoebaBlock &b) {
                if (bad)
                    return;
                const TileId home = static_cast<TileId>(
                    (b.region / cfg.regionBytes) % cfg.l2Tiles);
                if (sys.dir(home).view(b.region).present ||
                    sys.dir(home).hasActiveTxn(b.region))
                    return;
                Violation v;
                v.kind = "inclusion";
                std::ostringstream os;
                os << "core " << unsigned(c) << " caches region 0x"
                   << std::hex << b.region
                   << " unknown to its home directory tile "
                   << std::dec << unsigned(home);
                v.detail = os.str();
                bad = std::move(v);
            });
            if (bad)
                return bad;
        }
        if (terminal) {
            if (auto v = deadlockCheck())
                return v;
        }
        return std::nullopt;
    }

  private:
    std::optional<Violation>
    deadlockCheck()
    {
        std::ostringstream os;
        bool stuck = false;
        for (CoreId c = 0; c < cfg.numCores; ++c) {
            if (completed[c] < perCore[c].size()) {
                os << " core " << unsigned(c) << " finished "
                   << completed[c] << "/" << perCore[c].size()
                   << " accesses;";
                stuck = true;
            }
            if (sys.l1(c).mshrFile().size() > 0) {
                os << " core " << unsigned(c) << " has an outstanding "
                   << "MSHR;";
                stuck = true;
            }
            if (sys.l1(c).writebackBuffer().pendingCount() > 0) {
                os << " core " << unsigned(c)
                   << " has an unacknowledged writeback;";
                stuck = true;
            }
        }
        for (TileId t = 0; t < cfg.l2Tiles; ++t) {
            if (!sys.dir(t).activeTxns().empty()) {
                os << " tile " << unsigned(t)
                   << " has an active transaction;";
                stuck = true;
            }
        }
        if (!stuck)
            return std::nullopt;
        Violation v;
        v.kind = "deadlock";
        v.detail = "no deliverable message left but:" + os.str();
        return v;
    }

    void
    issueNext(CoreId c)
    {
        if (issued[c] >= perCore[c].size())
            return;
        const ScenarioAccess &sa = scenario.accesses[perCore[c][issued[c]]];
        ++issued[c];
        MemAccess acc;
        acc.addr = sa.addr;
        acc.isWrite = sa.isWrite;
        acc.storeValue = sa.value;
        acc.pc = sa.pc;
        sys.l1(c).requestAccess(acc, [this, c](std::uint64_t) {
            ++completed[c];
            issueNext(c);
        });
    }

    /** Drain the event queue, then recompute the frontier. */
    void
    quiesce()
    {
        sys.eventQueue().run();
        frontier.clear();
        sys.mesh().forEachParkedChannel(
            [&](unsigned src, unsigned dst,
                const std::deque<Mesh::Parked> &) {
                frontier.emplace_back(src, dst);
            });
    }

    const Scenario &scenario;
    const SystemConfig cfg;
    System sys;

    /** Scenario access indices per core, in program order. */
    std::vector<std::vector<std::size_t>> perCore;
    std::vector<std::size_t> issued;
    std::vector<unsigned> completed;
    std::vector<Addr> regions;

    /** Non-empty channels at the current quiescent point, canonical. */
    std::vector<std::pair<unsigned, unsigned>> frontier;
};

} // namespace

ExploreResult
explore(const Scenario &s, ProtocolKind proto, const ExploreLimits &lim)
{
    ExploreResult res;
    // The PcSpatial predictor folds the whole access history into its
    // table, which the fingerprint does not cover; two fingerprints
    // may then collide across genuinely different futures. Fall back
    // to budget-bounded exhaustive search without memoization.
    const bool memo_ok = s.predictor != PredictorKind::PcSpatial;
    std::unordered_set<std::uint64_t> memo;

    std::vector<unsigned> path;
    std::vector<unsigned> widths;
    std::vector<ScheduleStep> steps;
    auto run = std::make_unique<Run>(s, proto);

    for (;;) {
        const unsigned width = run->width();
        if (auto v = run->check(width == 0)) {
            v->schedule = path;
            v->steps = steps;
            res.violation = std::move(v);
            return res;
        }

        bool leaf = (width == 0);
        if (leaf)
            ++res.schedulesCompleted;
        if (!leaf && memo_ok && !memo.insert(run->fingerprint()).second) {
            ++res.memoHits;
            leaf = true;
        }

        if (!leaf) {
            if (++res.statesVisited > lim.maxStates ||
                path.size() >= lim.maxDepth) {
                res.budgetExhausted = true;
                return res;
            }
            path.push_back(0);
            widths.push_back(width);
            steps.push_back(run->describe(0));
            run->step(0);
            continue;
        }

        // Backtrack to the deepest level with an untried choice, then
        // rebuild a fresh run and replay the prefix (deterministic).
        while (!path.empty() && path.back() + 1 >= widths.back()) {
            path.pop_back();
            widths.pop_back();
            steps.pop_back();
        }
        if (path.empty())
            return res;
        ++path.back();
        run = std::make_unique<Run>(s, proto);
        for (std::size_t i = 0; i + 1 < path.size(); ++i)
            run->step(path[i]);
        steps.back() = run->describe(path.back());
        run->step(path.back());
    }
}

std::optional<Violation>
replaySchedule(const Scenario &s, ProtocolKind proto,
               const std::vector<unsigned> &prefix)
{
    auto run = std::make_unique<Run>(s, proto);
    std::vector<unsigned> path;
    std::vector<ScheduleStep> steps;
    std::size_t i = 0;
    const ExploreLimits lim;
    for (;;) {
        const unsigned width = run->width();
        if (auto v = run->check(width == 0)) {
            v->schedule = path;
            v->steps = steps;
            return v;
        }
        if (width == 0 || path.size() >= lim.maxDepth)
            return std::nullopt;
        unsigned k = (i < prefix.size()) ? prefix[i] : 0;
        if (k >= width)
            k = 0;
        ++i;
        path.push_back(k);
        steps.push_back(run->describe(k));
        run->step(k);
    }
}

} // namespace protozoa::check
