#include "check/explorer.hh"

#include <algorithm>
#include <cstring>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "check/state_fingerprint.hh"
#include "common/log.hh"
#include "common/serialize.hh"
#include "sim/system.hh"

namespace protozoa::check {

namespace {

Workload
emptyWorkload(unsigned cores)
{
    Workload wl;
    for (unsigned c = 0; c < cores; ++c)
        wl.push_back(
            std::make_unique<VectorTrace>(std::vector<TraceRecord>{}));
    return wl;
}

/**
 * One deliverable channel head at a quiescent point, with everything
 * the POR independence rule needs. A delivery's only effects outside
 * its destination *controller* are on the two global word stores —
 * golden memory (written/validated when an access completes at an L1)
 * and the memory image (fetched/flushed by a directory tile) — and
 * the messages its cascade emits into the destination node's outgoing
 * channels. `golden` and `image` are conservative bitmask footprints
 * over the scenario's region set; `emit` over-approximates the mesh
 * nodes the cascade can send to.
 */
struct ChannelInfo
{
    unsigned src = 0;
    unsigned dst = 0;
    bool dstIsDir = false;
    const char *type = "?";
    Addr region = 0;
    WordRange range;
    /** Golden-memory words (footprint-region-major word bits). */
    std::uint64_t golden = 0;
    /** Memory-image regions (footprint-region bits). */
    std::uint64_t image = 0;
    /** Mesh nodes the delivery cascade can emit messages to. */
    CoreSet emit;
};

/**
 * Multi-word (src,dst)-channel bitmask for sleep sets and memo masks —
 * CoreSet's widening applied to the POR plane. A mesh has nodes^2
 * channels, which stopped fitting one uint64 past 8 nodes and used to
 * auto-disable POR on the large-tier 8x8 scenarios; masks are now
 * runtime-sized word arrays (64 words for an 8x8 mesh) with the same
 * bulk word-parallel algebra. Search bookkeeping only — never on the
 * simulator hot path — so vector storage is fine.
 */
class ChanMask
{
  public:
    ChanMask() = default;
    explicit ChanMask(unsigned bits) : w((bits + 63) / 64, 0) {}

    bool
    test(unsigned b) const
    {
        return (w[b >> 6] >> (b & 63)) & 1;
    }

    void set(unsigned b) { w[b >> 6] |= std::uint64_t(1) << (b & 63); }

    /** this ⊆ o, one AND-NOT per word. */
    bool
    isSubsetOf(const ChanMask &o) const
    {
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i < w.size(); ++i)
            acc |= w[i] & ~o.w[i];
        return acc == 0;
    }

    ChanMask &
    operator|=(const ChanMask &o)
    {
        for (std::size_t i = 0; i < w.size(); ++i)
            w[i] |= o.w[i];
        return *this;
    }

    ChanMask &
    operator&=(const ChanMask &o)
    {
        for (std::size_t i = 0; i < w.size(); ++i)
            w[i] &= o.w[i];
        return *this;
    }

  private:
    std::vector<std::uint64_t> w;
};

/**
 * Two channel heads commute when delivering them in either order
 * reaches the same quiescent state. They must target different
 * controllers (an L1 and its co-located directory tile are distinct
 * controllers sharing a node) and touch disjoint global-memory
 * footprints: an L1-bound delivery never touches the memory image
 * and a directory-bound one never touches golden memory, so the two
 * planes are tested independently. Controller state changes are then
 * confined to the respective destinations, and the only remaining
 * interaction is through emitted messages. A cascade's emissions all
 * originate at the delivery's destination node, so two heads bound
 * for different nodes can never emit into the same (src,dst) channel
 * and commute outright; a co-located L1/dir pair additionally needs
 * disjoint emission *targets* — per-pair FIFO channels are node-
 * granular, so one message into a channel the sibling also feeds
 * would be ordered differently by the two delivery orders.
 */
bool
independent(const ChannelInfo &a, const ChannelInfo &b)
{
    if (a.dst == b.dst && a.dstIsDir == b.dstIsDir)
        return false; // same controller
    if ((a.golden & b.golden) != 0 || (a.image & b.image) != 0)
        return false;
    if (a.dst != b.dst)
        return true; // emissions originate at different nodes
    return !a.emit.intersects(b.emit);
}

/**
 * One live execution of a scenario: a System driven access-by-access,
 * advanced from quiescent point to quiescent point by delivering one
 * parked message at a time. Heap-allocated and pinned: the per-core
 * completion callbacks capture `this`.
 */
class Run
{
  public:
    /**
     * @param fresh_start issue the scenario's first accesses and run
     *        to the root quiescent point. Pass false only to follow up
     *        with restore() — the system must stay untouched for
     *        System::restoreSnapshot.
     */
    Run(const Scenario &s, ProtocolKind proto, bool fresh_start = true)
        : scenario(s), cfg(s.toConfig(proto)),
          sys(cfg, emptyWorkload(cfg.numCores))
    {
        perCore.resize(cfg.numCores);
        for (std::size_t i = 0; i < s.accesses.size(); ++i)
            perCore[s.accesses[i].core].push_back(i);
        issued.assign(cfg.numCores, 0);
        completed.assign(cfg.numCores, 0);
        regions = s.regionFootprint();
        setsPerTile = static_cast<unsigned>(
            cfg.l2BytesPerTile / cfg.regionBytes / cfg.l2Assoc);
        for (Addr r : regions)
            homeTiles.set(static_cast<CoreId>(cfg.homeTileOf(r)));
        allNodes = CoreSet::firstN(cfg.numCores);

        if (!fresh_start)
            return;
        for (CoreId c = 0; c < cfg.numCores; ++c)
            issueNext(c);
        quiesce();
    }

    Run(const Run &) = delete;
    Run &operator=(const Run &) = delete;

    /**
     * Serialize this quiescent point: the full system image
     * (length-prefixed, so the run's own trailer does not trip the
     * snapshot layer's trailing-bytes check) plus the scenario-issue
     * progress counters.
     */
    void
    snapshot(std::vector<std::uint8_t> &out) const
    {
        Serializer img;
        std::string err;
        if (!sys.saveSnapshot(img, &err))
            panic("explorer snapshot failed: %s", err.c_str());
        Serializer s;
        s.writeU64(img.size());
        s.writeBytes(img.bytes().data(), img.size());
        for (std::size_t v : issued)
            s.writeU64(v);
        for (unsigned v : completed)
            s.writeU64(v);
        out = s.bytes();
    }

    /**
     * Rebuild the snapshotted quiescent point into this
     * freshly-constructed (fresh_start = false) run.
     */
    void
    restore(const std::vector<std::uint8_t> &img)
    {
        Deserializer hdr(img.data(), img.size());
        const std::uint64_t sys_len = hdr.readU64();
        PROTO_ASSERT(!hdr.failed() && sys_len <= img.size() - 8,
                     "corrupt explorer snapshot header");
        Deserializer dsys(img.data() + 8,
                          static_cast<std::size_t>(sys_len));
        std::string err;
        if (!sys.restoreSnapshot(dsys, &err))
            panic("explorer snapshot restore failed: %s", err.c_str());
        Deserializer d(img.data() + 8 + sys_len,
                       img.size() - 8 - static_cast<std::size_t>(sys_len));
        for (std::size_t c = 0; c < issued.size(); ++c)
            issued[c] = static_cast<std::size_t>(d.readU64());
        for (std::size_t c = 0; c < completed.size(); ++c)
            completed[c] = static_cast<unsigned>(d.readU64());
        PROTO_ASSERT(!d.failed() && d.atEnd(),
                     "corrupt explorer snapshot trailer");
        // The system restore rebinds parked L1 completions to the
        // CoreModel path; this run drives the L1s directly, so rebind
        // them to the scenario-issue chain instead.
        for (CoreId c = 0; c < cfg.numCores; ++c) {
            if (sys.l1(c).hasPendingDone()) {
                sys.l1(c).restorePendingDone([this, c](std::uint64_t) {
                    ++completed[c];
                    issueNext(c);
                });
            }
        }
        quiesce();
    }

    /** Deliverable channel heads at this quiescent point, canonical. */
    const std::vector<ChannelInfo> &frontier() const { return front; }

    /** Mesh nodes (channel ids are src * nodes + dst). */
    unsigned nodes() const { return cfg.numCores; }

    /** Describe the head message of frontier channel @p k. */
    ScheduleStep
    describe(unsigned k) const
    {
        const ChannelInfo &ci = front[k];
        ScheduleStep step;
        step.src = ci.src;
        step.dst = ci.dst;
        std::ostringstream os;
        os << ci.type << " region=0x" << std::hex << ci.region
           << std::dec << " words=" << ci.range.toString() << " n"
           << ci.src << " -> " << (ci.dstIsDir ? "dir" : "l1")
           << ci.dst;
        step.desc = os.str();
        return step;
    }

    /** Deliver the head of frontier channel @p k and run to quiescence. */
    void
    step(unsigned k)
    {
        sys.mesh().deliverParked(front[k].src, front[k].dst);
        quiesce();
    }

    std::uint64_t
    fingerprint()
    {
        return fingerprintSystem(sys, regions, completed);
    }

    /**
     * Run the invariant oracles. @p terminal marks an empty frontier,
     * where unfinished work means deadlock rather than in-flight state.
     */
    std::optional<Violation>
    check(bool terminal)
    {
        if (livelocked) {
            Violation v;
            v.kind = "livelock";
            v.detail = "delivery cascade still busy after " +
                       std::to_string(kMaxCascadeEvents) +
                       " events without reaching quiescence";
            return v;
        }
        if (auto err = sys.checkCoherenceInvariant()) {
            Violation v;
            v.kind = "swmr";
            v.detail = *err;
            return v;
        }
        if (sys.valueViolations() > 0) {
            Violation v;
            v.kind = "value";
            std::ostringstream os;
            GoldenMemory &g = sys.goldenMemory();
            os << "load of 0x" << std::hex << g.lastViolationAddr()
               << " observed 0x" << g.lastObservedValue()
               << ", golden memory expects 0x" << g.lastExpectedValue();
            v.detail = os.str();
            return v;
        }
        for (CoreId c = 0; c < cfg.numCores; ++c) {
            std::optional<Violation> bad;
            sys.l1(c).cacheStorage().forEach([&](const AmoebaBlock &b) {
                if (bad)
                    return;
                const TileId home =
                    static_cast<TileId>(cfg.homeTileOf(b.region));
                if (sys.dir(home).view(b.region).present ||
                    sys.dir(home).hasActiveTxn(b.region))
                    return;
                Violation v;
                v.kind = "inclusion";
                std::ostringstream os;
                os << "core " << unsigned(c) << " caches region 0x"
                   << std::hex << b.region
                   << " unknown to its home directory tile "
                   << std::dec << unsigned(home);
                v.detail = os.str();
                bad = std::move(v);
            });
            if (bad)
                return bad;
        }
        if (terminal) {
            if (auto v = deadlockCheck())
                return v;
        }
        return std::nullopt;
    }

  private:
    std::optional<Violation>
    deadlockCheck()
    {
        std::ostringstream os;
        bool stuck = false;
        for (CoreId c = 0; c < cfg.numCores; ++c) {
            if (completed[c] < perCore[c].size()) {
                os << " core " << unsigned(c) << " finished "
                   << completed[c] << "/" << perCore[c].size()
                   << " accesses;";
                stuck = true;
            }
            if (sys.l1(c).mshrFile().size() > 0) {
                os << " core " << unsigned(c) << " has an outstanding "
                   << "MSHR;";
                stuck = true;
            }
            if (sys.l1(c).writebackBuffer().pendingCount() > 0) {
                os << " core " << unsigned(c)
                   << " has an unacknowledged writeback;";
                stuck = true;
            }
        }
        for (TileId t = 0; t < cfg.l2Tiles; ++t) {
            if (!sys.dir(t).activeTxns().empty()) {
                os << " tile " << unsigned(t)
                   << " has an active transaction;";
                stuck = true;
            }
        }
        if (!stuck)
            return std::nullopt;
        Violation v;
        v.kind = "deadlock";
        v.detail = "no deliverable message left but:" + os.str();
        return v;
    }

    void
    issueNext(CoreId c)
    {
        if (issued[c] >= perCore[c].size())
            return;
        const ScenarioAccess &sa = scenario.accesses[perCore[c][issued[c]]];
        ++issued[c];
        MemAccess acc;
        acc.addr = sa.addr;
        acc.isWrite = sa.isWrite;
        acc.storeValue = sa.value;
        acc.pc = sa.pc;
        sys.l1(c).requestAccess(acc, [this, c](std::uint64_t) {
            ++completed[c];
            issueNext(c);
        });
    }

    /** Footprint index of @p region, or regions.size() if unknown. */
    std::size_t
    regionIndex(Addr region) const
    {
        const auto it =
            std::lower_bound(regions.begin(), regions.end(), region);
        if (it != regions.end() && *it == region)
            return static_cast<std::size_t>(it - regions.begin());
        return regions.size();
    }

    /**
     * Golden-memory words a DATA grant to core @p c (for @p dregion
     * words @p drange) can touch. Delivering the grant completes the
     * outstanding access and a chain of local hits can complete
     * following ones — but only while each access's word is available
     * locally: a word neither resident in the L1 now nor carried by
     * this grant cannot be read or written without *another* delivery
     * (whose own footprint covers the later effects), so the chain —
     * and the mask — stops at the first such access. Availability is
     * over-approximated (any resident block counts, regardless of
     * permissions or later evictions), which only adds dependence.
     */
    std::uint64_t
    goldenFootprint(CoreId c, Addr dregion, const WordRange &drange)
    {
        const unsigned rw = cfg.regionWords();
        if (regions.size() * rw > 64)
            return ~std::uint64_t(0); // footprint too wide: pessimize

        std::uint64_t avail = 0;
        const auto addWords = [&](Addr region, std::uint64_t words) {
            const std::size_t r = regionIndex(region);
            if (r < regions.size())
                avail |= words << (r * rw);
        };
        addWords(dregion, drange.mask());
        sys.l1(c).cacheStorage().forEach([&](const AmoebaBlock &b) {
            addWords(b.region, b.range.mask());
        });

        std::uint64_t mask = 0;
        for (std::size_t i = completed[c]; i < perCore[c].size(); ++i) {
            const ScenarioAccess &a =
                scenario.accesses[perCore[c][i]];
            const std::size_t r =
                regionIndex(regionBase(a.addr, cfg.regionBytes));
            const unsigned bit = static_cast<unsigned>(r) * rw +
                wordIndexIn(a.addr, cfg.regionBytes);
            if (((avail >> bit) & 1) == 0)
                break; // next completion needs another delivery
            mask |= std::uint64_t(1) << bit;
        }
        return mask;
    }

    /**
     * Memory-image regions a delivery to directory tile @p tile for
     * @p region can fetch or flush: the region itself plus every
     * scenario region homed on the tile in the same L2 set — any of
     * them can become a recall victim or be dispatched from the
     * pinned-set deferral queue inside this delivery's cascade.
     */
    std::uint64_t
    imageFootprint(Addr region, unsigned tile) const
    {
        if (regions.size() > 64)
            return ~std::uint64_t(0);
        std::uint64_t mask = 0;
        const Addr idx = region / cfg.regionBytes;
        const Addr set = (idx / cfg.l2Tiles) % setsPerTile;
        for (std::size_t r = 0; r < regions.size(); ++r) {
            const Addr ridx = regions[r] / cfg.regionBytes;
            if (regions[r] != region &&
                (cfg.homeTileOf(regions[r]) != tile ||
                 (ridx / cfg.l2Tiles) % setsPerTile != set))
                continue;
            mask |= std::uint64_t(1) << r;
        }
        return mask;
    }

    /**
     * Mesh nodes an L1-bound delivery's cascade can emit to. Every
     * message an L1 originates — UNBLOCK, eviction PUTs, request
     * (re)issues from chained accesses, probe responses — goes to the
     * home tile of some footprint region, except that under 3-hop
     * forwarding a probe makes the owner supply DATA directly to the
     * requesting core, which can be any node.
     */
    CoreSet
    l1EmitTargets(const char *type) const
    {
        if (cfg.threeHop && (std::strncmp(type, "FWD", 3) == 0 ||
                             std::strcmp(type, "INV") == 0))
            return allNodes | homeTiles;
        return homeTiles;
    }

    /**
     * Mesh nodes a directory-bound delivery's cascade can emit to,
     * from the delivered message plus current directory ownership. A
     * PUT answers its evictor and nothing else (it never probes and
     * never drains the deferral queue), so it gets an exact singleton.
     * Anything else can probe the readers/writers of any entry in the
     * delivered region's L2 set (recall victims included), answer the
     * requester of any active transaction, and — through finishTxn's
     * queue drain — re-dispatch any queued request, whose own probes
     * stay within the same set by the pinned-set deferral rule. A
     * Bloom directory's probe set is a superset of the true sharers
     * bounded only by the filter, so it pessimizes to every core.
     */
    CoreSet
    dirEmitTargets(unsigned tile, Addr region, unsigned src,
                   const char *type)
    {
        DirController &d = sys.dir(static_cast<TileId>(tile));
        const bool request = std::strcmp(type, "GETS") == 0 ||
                             std::strcmp(type, "GETX") == 0 ||
                             std::strcmp(type, "PUT") == 0;
        // A request for a region with an active transaction parks in
        // the deferral queue — no emissions at all. The classification
        // is stable for as long as this head can stay asleep: any
        // delivery to this tile is same-controller dependent and
        // wakes it, and no other delivery changes the active set.
        if (request && d.hasActiveTxn(region))
            return CoreSet();
        CoreSet m;
        m.set(static_cast<CoreId>(src));
        if (std::strcmp(type, "PUT") == 0)
            return m;
        if (cfg.directory == DirectoryKind::TaglessBloom)
            return allNodes | homeTiles;
        const Addr set =
            (region / cfg.regionBytes / cfg.l2Tiles) % setsPerTile;
        d.forEachEntry([&](const DirController::EntrySnap &e) {
            if (e.setIndex == set) {
                m |= e.readers;
                m |= e.writers;
            }
        });
        d.forEachTxn([&](const DirController::TxnSnap &t) {
            m.set(t.requester);
        });
        d.forEachWaitingMsg([&](Addr, const CoherenceMsg &w) {
            m.set(w.sender);
            m.set(w.requester);
        });
        return m;
    }

    /** Drain the event queue, then recompute the frontier. */
    void
    quiesce()
    {
        // Bounded drain: a delivery cascade that never quiesces is a
        // protocol livelock (e.g. a retry loop that makes no
        // progress). Far beyond any legal cascade for <=16-access
        // scenarios, so a trip is a genuine bug, reported via
        // check(), not a tuning knob.
        std::uint64_t steps = 0;
        while (sys.eventQueue().step()) {
            if (++steps > kMaxCascadeEvents) {
                livelocked = true;
                break;
            }
        }
        front.clear();
        sys.mesh().forEachParkedChannel(
            [&](unsigned src, unsigned dst,
                const std::deque<Mesh::Parked> &chan) {
                const Mesh::Parked &p = chan.front();
                ChannelInfo ci;
                ci.src = src;
                ci.dst = dst;
                ci.dstIsDir = p.dstIsDir;
                ci.type = p.type;
                ci.region = p.region;
                ci.range = p.range;
                if (p.dstIsDir) {
                    ci.image = imageFootprint(p.region, dst);
                    ci.emit =
                        dirEmitTargets(dst, p.region, src, p.type);
                } else {
                    if (p.isData)
                        ci.golden = goldenFootprint(
                            static_cast<CoreId>(dst), p.region,
                            p.range);
                    ci.emit = l1EmitTargets(p.type);
                }
                front.push_back(ci);
            });
    }

    static constexpr std::uint64_t kMaxCascadeEvents = 1000000;

    const Scenario &scenario;
    const SystemConfig cfg;
    System sys;
    /** One cascade blew kMaxCascadeEvents: protocol livelock. */
    bool livelocked = false;

    /** Scenario access indices per core, in program order. */
    std::vector<std::vector<std::size_t>> perCore;
    std::vector<std::size_t> issued;
    std::vector<unsigned> completed;
    std::vector<Addr> regions;
    unsigned setsPerTile = 1;
    /** Home-tile node bits of every footprint region. */
    CoreSet homeTiles;
    /** All core-node bits (3-hop / Bloom emission pessimization). */
    CoreSet allNodes;

    /** Non-empty channels at the current quiescent point, canonical. */
    std::vector<ChannelInfo> front;
};

} // namespace

ExploreResult
explore(const Scenario &s, ProtocolKind proto, const ExploreLimits &lim)
{
    ExploreResult res;
    // The PcSpatial predictor folds the whole access history into its
    // table, which the fingerprint does not cover; two fingerprints
    // may then collide across genuinely different futures. Fall back
    // to budget-bounded search without memoization (sleep sets do not
    // depend on fingerprints and stay active).
    const bool memo_ok =
        lim.memo && s.predictor != PredictorKind::PcSpatial;
    // Fingerprint -> intersection of the sleep masks it was expanded
    // under. A revisit is covered iff its sleep mask is a superset of
    // the stored mask: prior visits explored every enabled channel
    // outside the stored mask, which includes everything this visit
    // would explore.
    std::unordered_map<std::uint64_t, ChanMask> memo;
    std::unordered_map<std::uint64_t, bool> seen; // fingerprint set

    /** One expanded quiescent point on the DFS stack. */
    struct Level
    {
        std::vector<ChannelInfo> frontier;
        /** Explorable frontier indices (not asleep on entry). */
        std::vector<unsigned> order;
        /** Position in `order` currently being explored. */
        std::size_t pos = 0;
        /** Sleep mask (channel-id bits) this state was entered with. */
        ChanMask sleepIn;
        /** Channel-id bits of already fully explored siblings. */
        ChanMask explored;
        /** This quiescent point's image (snapshot backtracking). */
        std::vector<std::uint8_t> snap;
    };
    std::vector<Level> stack;
    std::vector<unsigned> path;
    std::vector<ScheduleStep> steps;

    auto run = std::make_unique<Run>(s, proto);
    const unsigned nodes = run->nodes();
    // One sleep bit per (src,dst) channel: nodes^2 bits, multi-word
    // (ChanMask), so POR stays on for every supported geometry —
    // 64-node 8x8 scenarios included, where the old single-uint64
    // bitmap forced full enumeration.
    const unsigned chanBits = nodes * nodes;
    const bool por = lim.por;
    const auto chanIndex = [nodes](const ChannelInfo &c) {
        return c.src * nodes + c.dst;
    };
    // Sleep set of the next explored child: every earlier-explored or
    // inherited-asleep channel that commutes with the chosen delivery
    // stays asleep below it; dependent channels wake up.
    const auto childSleep = [&](const Level &lv, unsigned k) {
        ChanMask out(chanBits);
        if (!por)
            return out;
        ChanMask candidates = lv.sleepIn;
        candidates |= lv.explored;
        const ChannelInfo &chosen = lv.frontier[k];
        for (const ChannelInfo &c : lv.frontier) {
            if (&c == &chosen || !candidates.test(chanIndex(c)))
                continue;
            if (independent(c, chosen)) {
                out.set(chanIndex(c));
                ++res.porCommutations;
            }
        }
        return out;
    };

    ChanMask sleep(chanBits); // mask entering the current state

    for (;;) {
        const std::vector<ChannelInfo> &frontier = run->frontier();
        const unsigned width = static_cast<unsigned>(frontier.size());
        if (auto v = run->check(width == 0)) {
            v->schedule = path;
            v->steps = steps;
            res.violation = std::move(v);
            return res;
        }

        bool leaf = (width == 0);
        if (leaf)
            ++res.schedulesCompleted;

        std::vector<unsigned> order;
        if (!leaf) {
            for (unsigned k = 0; k < width; ++k) {
                if (por && sleep.test(chanIndex(frontier[k]))) {
                    ++res.porPruned;
                    continue;
                }
                order.push_back(k);
            }
            // Every enabled delivery is asleep: each commutes with an
            // already-explored sibling schedule that covers this
            // subtree, so the state is a cut, not a completed leaf.
            if (order.empty())
                leaf = true;
        }

        std::uint64_t fp = 0;
        if (memo_ok || lim.collectFingerprints)
            fp = run->fingerprint();
        if (lim.collectFingerprints)
            seen.emplace(fp, true);
        if (!leaf && memo_ok) {
            auto [it, fresh] = memo.try_emplace(fp, sleep);
            if (!fresh) {
                if (it->second.isSubsetOf(sleep)) {
                    ++res.memoHits;
                    leaf = true;
                } else {
                    it->second &= sleep;
                }
            }
        }

        if (!leaf) {
            if (++res.statesVisited > lim.maxStates ||
                path.size() >= lim.maxDepth) {
                res.budgetExhausted = true;
                break;
            }
            Level lv;
            lv.frontier = frontier;
            lv.order = std::move(order);
            lv.sleepIn = sleep;
            lv.explored = ChanMask(chanBits);
            if (lim.snapshotBacktrack && lv.order.size() > 1)
                run->snapshot(lv.snap);
            const unsigned k = lv.order[0];
            sleep = childSleep(lv, k);
            path.push_back(k);
            steps.push_back(run->describe(k));
            stack.push_back(std::move(lv));
            run->step(k);
            ++res.deliveriesExecuted;
            continue;
        }

        // Backtrack to the deepest level with an untried choice, then
        // rebuild a fresh run and replay the prefix (deterministic).
        bool done = false;
        for (;;) {
            if (stack.empty()) {
                done = true;
                break;
            }
            Level &lv = stack.back();
            if (por)
                lv.explored.set(chanIndex(lv.frontier[lv.order[lv.pos]]));
            ++lv.pos;
            if (lv.pos < lv.order.size())
                break;
            stack.pop_back();
            path.pop_back();
            steps.pop_back();
        }
        if (done)
            break;
        Level &lv = stack.back();
        const unsigned k = lv.order[lv.pos];
        path.back() = k;
        if (lim.snapshotBacktrack) {
            // One restore replaces the whole prefix replay.
            run = std::make_unique<Run>(s, proto, /*fresh_start=*/false);
            run->restore(lv.snap);
        } else {
            run = std::make_unique<Run>(s, proto);
            for (std::size_t i = 0; i + 1 < path.size(); ++i) {
                run->step(path[i]);
                ++res.deliveriesExecuted;
            }
        }
        sleep = childSleep(lv, k);
        steps.back() = run->describe(k);
        run->step(k);
        ++res.deliveriesExecuted;
    }

    if (lim.collectFingerprints) {
        res.fingerprints.reserve(seen.size());
        for (const auto &kv : seen)
            res.fingerprints.push_back(kv.first);
        std::sort(res.fingerprints.begin(), res.fingerprints.end());
    }
    return res;
}

std::optional<Violation>
replaySchedule(const Scenario &s, ProtocolKind proto,
               const std::vector<unsigned> &prefix)
{
    auto run = std::make_unique<Run>(s, proto);
    std::vector<unsigned> path;
    std::vector<ScheduleStep> steps;
    std::size_t i = 0;
    const ExploreLimits lim;
    for (;;) {
        const unsigned width =
            static_cast<unsigned>(run->frontier().size());
        if (auto v = run->check(width == 0)) {
            v->schedule = path;
            v->steps = steps;
            return v;
        }
        if (width == 0 || path.size() >= lim.maxDepth)
            return std::nullopt;
        unsigned k = (i < prefix.size()) ? prefix[i] : 0;
        if (k >= width)
            k = 0;
        ++i;
        path.push_back(k);
        steps.push_back(run->describe(k));
        run->step(k);
    }
}

} // namespace protozoa::check
