/**
 * @file
 * Canonical 64-bit fingerprint of a quiescent System state, for the
 * explorer's state-space memoization.
 *
 * Two states that will behave identically under every future schedule
 * must hash equal; the fingerprint therefore canonicalizes every
 * container whose iteration order is an implementation artifact
 * (hash-table order of the flat address tables, insertion order of
 * cache sets) and strips absolute time (LRU stamps become per-set
 * ranks; controller busy-until horizons have already passed at a
 * quiescent point, because the event queue is drained).
 *
 * Covered state: per-core access progress, every L1 block (extent,
 * state, touched mask, payload, per-set LRU rank), MSHR and
 * writeback-buffer entries, every directory entry (sharer sets, fill
 * and dirty flags, payload, per-set LRU rank), active transactions and
 * queued requests, the parked in-flight message multiset (per-channel
 * FIFO order preserved, channels in canonical ascending order), and
 * the golden/main-memory words of the scenario's region footprint.
 *
 * Not covered: predictor history. The PcSpatial predictor folds the
 * whole access history into its table, so the explorer disables
 * memoization for scenarios that use it.
 */

#ifndef PROTOZOA_CHECK_STATE_FINGERPRINT_HH
#define PROTOZOA_CHECK_STATE_FINGERPRINT_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace protozoa {
class System;
}

namespace protozoa::check {

/**
 * Fingerprint @p sys at a quiescent point (event queue drained, only
 * parked messages in flight).
 *
 * @param regions  sorted region bases whose memory words to cover
 *                 (Scenario::regionFootprint()).
 * @param progress completed accesses per core.
 */
std::uint64_t fingerprintSystem(System &sys,
                                const std::vector<Addr> &regions,
                                const std::vector<unsigned> &progress);

} // namespace protozoa::check

#endif // PROTOZOA_CHECK_STATE_FINGERPRINT_HH
