/**
 * @file
 * Counterexample minimizer: shrink a violating scenario to a locally
 * minimal access set, then shrink its schedule to the shortest
 * violating choice prefix, and emit a ready-to-paste repro.
 *
 * Access shrinking is greedy delta debugging: repeatedly drop any
 * single access whose removal keeps *some* violation reachable (each
 * probe is a full bounded exploration, so the violation may move — any
 * violation counts). Schedule shrinking replays increasing prefixes of
 * the found schedule with canonical (first-channel) completion and
 * keeps the shortest prefix that still fails.
 */

#ifndef PROTOZOA_CHECK_MINIMIZER_HH
#define PROTOZOA_CHECK_MINIMIZER_HH

#include <optional>
#include <string>

#include "check/explorer.hh"
#include "check/scenario.hh"

namespace protozoa::check {

struct MinimizeResult
{
    /** Locally minimal scenario (no single access can be dropped). */
    Scenario scenario;
    /** The violation the minimized scenario reaches. */
    Violation violation;
    /** Minimal choice prefix that forces it (see replaySchedule). */
    std::vector<unsigned> schedule;
    /** Ready-to-paste ProtocolDriver-style reproduction. */
    std::string repro;
    /** States expanded across all shrinking probes. */
    std::uint64_t statesExplored = 0;
};

/**
 * Minimize @p s under @p proto. @return nullopt when the initial
 * exploration finds no violation within the limits.
 */
std::optional<MinimizeResult> minimize(const Scenario &s,
                                       ProtocolKind proto,
                                       const ExploreLimits &lim = {});

/** Render the repro text (also used by minimize()). */
std::string buildRepro(const Scenario &s, ProtocolKind proto,
                       const Violation &v);

} // namespace protozoa::check

#endif // PROTOZOA_CHECK_MINIMIZER_HH
