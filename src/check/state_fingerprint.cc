#include "check/state_fingerprint.hh"

#include <algorithm>
#include <tuple>

#include "sim/system.hh"

namespace protozoa::check {

namespace {

struct Hasher
{
    std::uint64_t h = 0x70726f746f7a6f61ULL; // "protozoa"

    void
    feed(std::uint64_t v)
    {
        std::uint64_t z = (h ^ v) + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        h = z ^ (z >> 31);
    }
};

/** One L1 block, keyed for canonical (set, LRU-rank) ordering. */
struct BlockSnap
{
    unsigned set;
    std::uint64_t lruStamp;
    const AmoebaBlock *blk;
};

void
feedL1(Hasher &hx, L1Controller &l1, const SystemConfig &cfg)
{
    AmoebaCache &cache = l1.cacheStorage();
    std::vector<BlockSnap> blocks;
    cache.forEach([&](const AmoebaBlock &b) {
        blocks.push_back(BlockSnap{cache.setOf(b.region), b.lruStamp, &b});
    });
    // Per-set LRU order canonicalizes the absolute stamps: only the
    // relative recency within a set affects future evictions.
    std::sort(blocks.begin(), blocks.end(),
              [](const BlockSnap &a, const BlockSnap &b) {
                  return std::tie(a.set, a.lruStamp) <
                         std::tie(b.set, b.lruStamp);
              });
    hx.feed(blocks.size());
    for (const BlockSnap &s : blocks) {
        const AmoebaBlock &b = *s.blk;
        hx.feed(s.set);
        hx.feed(b.region);
        hx.feed((std::uint64_t(b.range.start) << 8) | b.range.end);
        hx.feed(static_cast<std::uint64_t>(b.state));
        hx.feed(b.touched);
        for (unsigned w = 0; w < b.words.size(); ++w)
            hx.feed(b.words[w]);
    }

    std::vector<const MshrEntry *> mshrs;
    l1.mshrFile().forEach(
        [&](const MshrEntry &e) { mshrs.push_back(&e); });
    std::sort(mshrs.begin(), mshrs.end(),
              [](const MshrEntry *a, const MshrEntry *b) {
                  return a->region < b->region;
              });
    hx.feed(mshrs.size());
    for (const MshrEntry *e : mshrs) {
        hx.feed(e->region);
        hx.feed((std::uint64_t(e->need.start) << 40) |
                (std::uint64_t(e->need.end) << 32) |
                (std::uint64_t(e->pred.start) << 8) | e->pred.end);
        hx.feed((std::uint64_t(e->isWrite) << 2) |
                (std::uint64_t(e->upgrade) << 1) |
                std::uint64_t(e->upgradeBroken));
        hx.feed(e->pc);
        hx.feed(e->accessAddr);
        hx.feed(e->storeValue);
    }

    struct WbSnap
    {
        Addr region;
        unsigned seq;
        const PendingWb *wb;
    };
    std::vector<WbSnap> wbs;
    Addr last_region = 0;
    unsigned seq = 0;
    l1.writebackBuffer().forEach([&](Addr region, const PendingWb &wb) {
        // forEach is FIFO within a region; a sequence number keeps
        // that order while the sort canonicalizes the region order.
        seq = (wbs.empty() || region != last_region) ? 0 : seq + 1;
        last_region = region;
        wbs.push_back(WbSnap{region, seq, &wb});
    });
    std::sort(wbs.begin(), wbs.end(),
              [](const WbSnap &a, const WbSnap &b) {
                  return std::tie(a.region, a.seq) <
                         std::tie(b.region, b.seq);
              });
    hx.feed(wbs.size());
    for (const WbSnap &s : wbs) {
        const PendingWb &wb = *s.wb;
        hx.feed(s.region);
        hx.feed((std::uint64_t(wb.seg.range.start) << 8) |
                wb.seg.range.end);
        for (unsigned w = 0; w < wb.seg.words.size(); ++w)
            hx.feed(wb.seg.words[w]);
        hx.feed((std::uint64_t(wb.touched) << 2) |
                (std::uint64_t(wb.last) << 1) |
                std::uint64_t(wb.demoteOwner));
    }
    (void)cfg;
}

void
feedDir(Hasher &hx, DirController &dir)
{
    std::vector<DirController::EntrySnap> entries;
    dir.forEachEntry([&](const DirController::EntrySnap &e) {
        entries.push_back(e);
    });
    std::sort(entries.begin(), entries.end(),
              [](const DirController::EntrySnap &a,
                 const DirController::EntrySnap &b) {
                  return std::tie(a.setIndex, a.lruStamp) <
                         std::tie(b.setIndex, b.lruStamp);
              });
    // Sharer sets: word 0 always (bit-identical to the old single-
    // uint64_t feed for <=64-core scenarios, so memoization digests
    // are unchanged), high words only when a core above 63 is set.
    const auto feedSet = [&hx](const CoreSet &s) {
        hx.feed(s.raw());
        if (s.highAny()) {
            for (unsigned i = 1; i < CoreSet::kWords; ++i)
                hx.feed(s.word(i));
        }
    };
    hx.feed(entries.size());
    for (const auto &e : entries) {
        hx.feed(e.setIndex);
        hx.feed(e.region);
        hx.feed((std::uint64_t(e.filling) << 1) | std::uint64_t(e.dirty));
        feedSet(e.readers);
        feedSet(e.writers);
        for (unsigned w = 0; w < e.wordCount; ++w)
            hx.feed(e.words[w]);
    }

    std::vector<DirController::TxnSnap> txns;
    dir.forEachTxn(
        [&](const DirController::TxnSnap &t) { txns.push_back(t); });
    std::sort(txns.begin(), txns.end(),
              [](const DirController::TxnSnap &a,
                 const DirController::TxnSnap &b) {
                  return a.region < b.region;
              });
    hx.feed(txns.size());
    for (const auto &t : txns) {
        hx.feed(t.region);
        hx.feed(static_cast<std::uint64_t>(t.reqType));
        hx.feed((std::uint64_t(t.requester) << 24) |
                (std::uint64_t(t.reqRange.start) << 16) |
                (std::uint64_t(t.reqRange.end) << 8) | t.pending);
        hx.feed((std::uint64_t(t.recall) << 4) |
                (std::uint64_t(t.upgrade) << 3) |
                (std::uint64_t(t.waitingUnblock) << 2) |
                (std::uint64_t(t.directSupplied) << 1) |
                std::uint64_t(t.unblocked));
        hx.feed(t.parentRegion);
    }

    struct WaitSnap
    {
        Addr region;
        unsigned seq;
        std::uint64_t hash;
    };
    std::vector<WaitSnap> waits;
    Addr last_region = 0;
    unsigned seq = 0;
    dir.forEachWaitingMsg([&](Addr region, const CoherenceMsg &m) {
        seq = (waits.empty() || region != last_region) ? 0 : seq + 1;
        last_region = region;
        waits.push_back(WaitSnap{region, seq, m.fingerprint()});
    });
    std::sort(waits.begin(), waits.end(),
              [](const WaitSnap &a, const WaitSnap &b) {
                  return std::tie(a.region, a.seq) <
                         std::tie(b.region, b.seq);
              });
    hx.feed(waits.size());
    for (const auto &w : waits) {
        hx.feed(w.region);
        hx.feed(w.hash);
    }
}

} // namespace

std::uint64_t
fingerprintSystem(System &sys, const std::vector<Addr> &regions,
                  const std::vector<unsigned> &progress)
{
    const SystemConfig &cfg = sys.config();
    Hasher hx;

    hx.feed(progress.size());
    for (const unsigned p : progress)
        hx.feed(p);

    for (CoreId c = 0; c < cfg.numCores; ++c)
        feedL1(hx, sys.l1(c), cfg);
    for (TileId t = 0; t < cfg.l2Tiles; ++t)
        feedDir(hx, sys.dir(t));

    // Parked messages: channels in ascending (src,dst) order, FIFO
    // within a channel — the canonical in-flight multiset.
    sys.mesh().forEachParkedChannel(
        [&](unsigned src, unsigned dst, const std::deque<Mesh::Parked> &chan) {
            hx.feed((std::uint64_t(src) << 32) | dst);
            hx.feed(chan.size());
            for (const Mesh::Parked &p : chan)
                hx.feed(p.hash);
        });

    for (const Addr region : regions) {
        for (unsigned w = 0; w < cfg.regionWords(); ++w) {
            const Addr addr = region + static_cast<Addr>(w) * kWordBytes;
            hx.feed(sys.goldenMemory().expected(addr));
            hx.feed(sys.memoryImage().read(addr));
        }
    }
    return hx.h;
}

} // namespace protozoa::check
