/**
 * @file
 * Bounded schedule explorer ("protocheck"): enumeration of
 * cross-channel message-delivery interleavings for one scenario, with
 * sleep-set partial-order reduction.
 *
 * The mesh's schedule oracle parks every sent message on its
 * per-(src,dst) FIFO channel. Between deliveries the event queue runs
 * dry — a *quiescent point* where the only pending work is the parked
 * message set. The explorer's choice point is which channel head to
 * deliver next; same-channel FIFO order is preserved by construction
 * (the one network ordering assumption the protocol makes), so the
 * explored space is exactly the set of legal network behaviours.
 *
 * Search is depth-first. Descending extends the live System in place;
 * backtracking restores the in-memory snapshot taken when the level
 * was first expanded (the src/snapshot serialization of the full
 * quiescent state, plus the run's progress counters), so revisiting a
 * sibling costs one restore instead of replaying the whole choice
 * prefix from the root. ExploreLimits::snapshotBacktrack turns the
 * old replay-from-root backtracking back on — the simulator is
 * deterministic given a schedule, so both modes visit the same states
 * and return identical verdicts; ExploreResult::deliveriesExecuted
 * counts the work each actually did. Visited states are memoized by
 * canonical fingerprint (state_fingerprint.hh), collapsing confluent
 * interleavings.
 *
 * Partial-order reduction (ExploreLimits::por, on by default): two
 * pending deliveries *commute* when they target different controllers
 * (an L1 and its co-located directory tile count as different) and
 * their global-memory footprints are disjoint — golden-memory words a
 * DATA grant's completion chain can commit or validate on the L1
 * side, memory-image regions a directory delivery can fetch or flush
 * (the delivered region plus any scenario region that collides in the
 * same L2 set of that tile, the recall/deferral closure). Every other
 * effect of a delivery is local to the destination controller or
 * lands in the destination node's send channels; deliveries bound for
 * different nodes therefore never emit into the same per-(src,dst)
 * FIFO, while a co-located L1/dir pair additionally needs disjoint
 * emission *targets*, over-approximated from the message type plus
 * directory ownership (an L1 emits only toward footprint home tiles;
 * a directory reaches its request's sender, the readers/writers of
 * the addressed L2 set, active-transaction requesters and queued
 * senders — or any core under a Bloom directory, whose probe set is
 * bounded only by the filter).
 * Sleep sets carry the already-explored independent siblings down the
 * tree and prune the symmetric interleavings; because sleep sets
 * alone never skip a *state* (only redundant transitions into
 * already-covered subtrees), the reduced search still visits every
 * reachable quiescent state and reports identical verdicts — locked
 * by tests comparing fingerprint sets against full enumeration.
 * Memoization composes with POR by storing, per fingerprint, the
 * intersection of the sleep masks it was expanded under; a revisit
 * prunes only when its own sleep mask covers that stored mask.
 *
 * At every quiescent point the invariant oracles run:
 *  - word-level SWMR (System::checkCoherenceInvariant),
 *  - load values against golden memory,
 *  - L1/L2 inclusion (every cached region is directory-present or has
 *    an active transaction),
 *  - no-deadlock (an empty frontier with incomplete accesses or
 *    outstanding MSHR/writeback/transaction state).
 */

#ifndef PROTOZOA_CHECK_EXPLORER_HH
#define PROTOZOA_CHECK_EXPLORER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/scenario.hh"

namespace protozoa::check {

struct ExploreLimits
{
    /** Expanded-state budget; exceeding it aborts the search. */
    std::uint64_t maxStates = 200000;
    /** Schedule-depth bound (messages delivered along one path). */
    unsigned maxDepth = 512;
    /** Sleep-set partial-order reduction (off = full enumeration). */
    bool por = true;
    /**
     * Fingerprint memoization. Off, every interleaving is walked to
     * a leaf, so schedulesCompleted counts the schedules the search
     * actually enumerated — the honest denominator when measuring
     * POR's reduction. (Automatically off under PcSpatial, whose
     * predictor history the fingerprint does not cover.)
     */
    bool memo = true;
    /**
     * Collect every visited quiescent fingerprint in
     * ExploreResult::fingerprints (POR soundness tests; costs a hash
     * per state even for scenarios that cannot memoize).
     */
    bool collectFingerprints = false;
    /**
     * Backtrack by restoring per-level in-memory snapshots instead of
     * replaying the choice prefix from the root. Off = the legacy
     * replay backtracker (kept for comparison tests; verdicts and
     * fingerprint sets are identical either way).
     */
    bool snapshotBacktrack = true;
};

/** One delivery decision, for human-readable counterexamples. */
struct ScheduleStep
{
    unsigned src = 0;
    unsigned dst = 0;
    std::string desc;
};

struct Violation
{
    /** "swmr", "value", "inclusion", or "deadlock". */
    std::string kind;
    std::string detail;
    /** Channel-choice index at each quiescent point from the root. */
    std::vector<unsigned> schedule;
    /** One description per schedule entry. */
    std::vector<ScheduleStep> steps;
};

struct ExploreResult
{
    std::uint64_t statesVisited = 0;
    std::uint64_t schedulesCompleted = 0;
    std::uint64_t memoHits = 0;
    /** Deliveries suppressed by sleep sets (pruned subtrees). */
    std::uint64_t porPruned = 0;
    /** Independent delivery pairs detected while building sleep sets. */
    std::uint64_t porCommutations = 0;
    /**
     * Message deliveries actually executed, fresh steps and replayed
     * ones alike — the search-cost denominator the snapshot
     * backtracker shrinks (replay-from-root re-executes the whole
     * prefix on every backtrack; a restore executes none).
     */
    std::uint64_t deliveriesExecuted = 0;
    bool budgetExhausted = false;
    std::optional<Violation> violation;
    /**
     * Sorted distinct quiescent-state fingerprints, filled only when
     * ExploreLimits::collectFingerprints is set.
     */
    std::vector<std::uint64_t> fingerprints;
};

/** Explore @p s under @p proto (up to the limits; POR per lim.por). */
ExploreResult explore(const Scenario &s, ProtocolKind proto,
                      const ExploreLimits &lim = {});

/**
 * Deterministically replay @p prefix (clamping stale indices), then
 * complete with first-channel choices; @return the violation hit, if
 * any. The returned schedule covers the full executed path. Replay
 * never reduces: a minimized schedule prefix replays identically
 * whether it was found with POR on or off.
 */
std::optional<Violation>
replaySchedule(const Scenario &s, ProtocolKind proto,
               const std::vector<unsigned> &prefix);

} // namespace protozoa::check

#endif // PROTOZOA_CHECK_EXPLORER_HH
