/**
 * @file
 * Bounded schedule explorer ("protocheck"): exhaustive enumeration of
 * cross-channel message-delivery interleavings for one scenario.
 *
 * The mesh's schedule oracle parks every sent message on its
 * per-(src,dst) FIFO channel. Between deliveries the event queue runs
 * dry — a *quiescent point* where the only pending work is the parked
 * message set. The explorer's choice point is which channel head to
 * deliver next; same-channel FIFO order is preserved by construction
 * (the one network ordering assumption the protocol makes), so the
 * explored space is exactly the set of legal network behaviours.
 *
 * Search is depth-first with replay-based backtracking: descending
 * extends the live System in place; backtracking rebuilds a fresh
 * System and replays the choice prefix (the simulator is deterministic
 * given a schedule, so replay is exact). Visited states are memoized
 * by canonical fingerprint (state_fingerprint.hh), collapsing
 * confluent interleavings.
 *
 * At every quiescent point the invariant oracles run:
 *  - word-level SWMR (System::checkCoherenceInvariant),
 *  - load values against golden memory,
 *  - L1/L2 inclusion (every cached region is directory-present or has
 *    an active transaction),
 *  - no-deadlock (an empty frontier with incomplete accesses or
 *    outstanding MSHR/writeback/transaction state).
 */

#ifndef PROTOZOA_CHECK_EXPLORER_HH
#define PROTOZOA_CHECK_EXPLORER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/scenario.hh"

namespace protozoa::check {

struct ExploreLimits
{
    /** Expanded-state budget; exceeding it aborts the search. */
    std::uint64_t maxStates = 200000;
    /** Schedule-depth bound (messages delivered along one path). */
    unsigned maxDepth = 512;
};

/** One delivery decision, for human-readable counterexamples. */
struct ScheduleStep
{
    unsigned src = 0;
    unsigned dst = 0;
    std::string desc;
};

struct Violation
{
    /** "swmr", "value", "inclusion", or "deadlock". */
    std::string kind;
    std::string detail;
    /** Channel-choice index at each quiescent point from the root. */
    std::vector<unsigned> schedule;
    /** One description per schedule entry. */
    std::vector<ScheduleStep> steps;
};

struct ExploreResult
{
    std::uint64_t statesVisited = 0;
    std::uint64_t schedulesCompleted = 0;
    std::uint64_t memoHits = 0;
    bool budgetExhausted = false;
    std::optional<Violation> violation;
};

/** Exhaustively explore @p s under @p proto (up to the limits). */
ExploreResult explore(const Scenario &s, ProtocolKind proto,
                      const ExploreLimits &lim = {});

/**
 * Deterministically replay @p prefix (clamping stale indices), then
 * complete with first-channel choices; @return the violation hit, if
 * any. The returned schedule covers the full executed path.
 */
std::optional<Violation>
replaySchedule(const Scenario &s, ProtocolKind proto,
               const std::vector<unsigned> &prefix);

} // namespace protozoa::check

#endif // PROTOZOA_CHECK_EXPLORER_HH
