/**
 * @file
 * Automatic shrinking of stress-campaign failures.
 *
 * A failing campaign grid point is a (protocol, knob, jitter, pattern,
 * seed) tuple whose RandomTester run reported value or invariant
 * violations. The shrinker rebuilds the exact workload from the
 * parameters (RandomTester::buildTraces is deterministic), then
 * reduces it while the failure persists:
 *
 *  1. halve every core's trace (prefix truncation) to a fixpoint,
 *  2. drop whole cores greedily,
 *  3. pop single accesses off each core's tail,
 *  4. if the survivor is small enough for the bounded explorer
 *     (<= 4 cores, <= 12 accesses, <= 2 regions), convert it to a
 *     protocheck Scenario and hand it to the minimizer for a
 *     schedule-exact counterexample.
 *
 * Truncation is not perfectly prefix-stable (removing accesses shifts
 * every later message's timing), so each step re-runs the tester and
 * only keeps reductions that still fail — the ddmin acceptance rule
 * tolerates the non-monotonicity.
 */

#ifndef PROTOZOA_CHECK_CAMPAIGN_SHRINK_HH
#define PROTOZOA_CHECK_CAMPAIGN_SHRINK_HH

#include <optional>
#include <string>
#include <vector>

#include "check/minimizer.hh"
#include "sim/stress_campaign.hh"

namespace protozoa::check {

struct CampaignShrinkResult
{
    /** The original failing record, kept verbatim for re-runs. */
    CampaignFailure failure;
    /** Parameters of the failing point (workload rebuild key). */
    RandomTester::Params params;
    /** Shrunk per-core traces that still fail. */
    std::vector<std::vector<TraceRecord>> traces;
    std::uint64_t accessesBefore = 0;
    std::uint64_t accessesAfter = 0;
    /** Human-readable stage-by-stage log. */
    std::string summary;
    /**
     * The shrunk survivor fit the bounded explorer's limits and a
     * conversion was attempted. False means the survivor stayed too
     * large (the summary names the exceeded limits) — the failure
     * record above is the durable repro in that case.
     */
    bool explorerEligible = false;
    /** Explorer-minimized counterexample, when conversion succeeded. */
    std::optional<MinimizeResult> minimized;
};

/**
 * Shrink @p failure. @return nullopt when the failure does not
 * reproduce in a serial re-run (it then needs the original thread
 * interleaving, which only affects the progress output, so this
 * indicates a campaign bug rather than flaky shrinking).
 */
std::optional<CampaignShrinkResult>
shrinkCampaignFailure(const CampaignFailure &failure);

} // namespace protozoa::check

#endif // PROTOZOA_CHECK_CAMPAIGN_SHRINK_HH
