/**
 * @file
 * Protocheck scenarios: small, fully-specified concurrent access
 * programs for the bounded schedule explorer.
 *
 * A scenario fixes everything about a run except the cross-channel
 * message delivery order: the system geometry, the per-core access
 * sequences, and the protocol knobs. The explorer (explorer.hh) then
 * enumerates every reachable cross-(src,dst) delivery interleaving and
 * checks the protocol invariants at every quiescent point.
 *
 * Scenarios are deliberately tiny (2-4 cores, 1-2 regions, <= 8
 * accesses): state-space size is exponential in the number of
 * in-flight messages, and the races of interest (Sec. 3.3 of the
 * paper, the eviction/probe writeback races) all fit in this budget.
 */

#ifndef PROTOZOA_CHECK_SCENARIO_HH
#define PROTOZOA_CHECK_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"

namespace protozoa::check {

/** One access of a scenario program (per-core order is preserved). */
struct ScenarioAccess
{
    CoreId core = 0;
    Addr addr = 0;
    bool isWrite = false;
    std::uint64_t value = 0;
    Pc pc = 0x3000;
};

struct Scenario
{
    std::string name;
    /** What race the scenario targets (one line, for --list). */
    std::string note;
    /**
     * Invariants and mechanisms the scenario stresses, e.g. "swmr",
     * "mw-split", "mr-overlap", "bloom-nack", "recall", "pinning",
     * "writeback", "upgrade", "3hop" (shown by --list, greppable).
     */
    std::vector<std::string> stresses;
    /**
     * Deep-tier scenario: too wide for the PR-gating CI budget under
     * full enumeration; run by the scheduled deep tier (and by the
     * fast tier with POR where the reduced space fits).
     */
    bool deep = false;
    /**
     * Large-mesh tier: 64+ core geometries that stress the wide
     * sharer masks and boundary cores rather than schedule breadth.
     * Sleep-set POR stays active here — the channel bitmap is a
     * multi-word ChanMask (one bit per (src,dst) channel), widened
     * past 8 nodes the same way CoreSet widened sharer masks.
     */
    bool large = false;

    unsigned numCores = 2;
    /** Mesh geometry; 0 = legacy numCores x 1 row. */
    unsigned meshCols = 0;
    unsigned meshRows = 0;
    unsigned regionBytes = 64;
    PredictorKind predictor = PredictorKind::WordOnly;
    unsigned fixedFetchWords = 8;
    unsigned l1Sets = 1;
    /** 0 = roomy default (four full-region blocks per set). */
    unsigned l1BytesPerSet = 0;
    std::uint64_t l2BytesPerTile = 4096;
    unsigned l2Assoc = 8;
    bool threeHop = false;
    DirectoryKind directory = DirectoryKind::InCacheExact;
    /** TaglessBloom geometry (buckets=1 forces full aliasing). */
    unsigned bloomBuckets = 256;
    unsigned bloomHashes = 2;
    /** Re-inject the fixed lost-store eviction race (regression). */
    bool debugLostStoreBug = false;

    std::vector<ScenarioAccess> accesses;

    /**
     * Full system configuration for one protocol: an N x 1 mesh with
     * the schedule oracle and the golden-memory value oracle enabled,
     * and every nondeterminism source other than delivery order
     * (network/occupancy fault injection) disabled.
     */
    SystemConfig toConfig(ProtocolKind proto) const;

    /** Sorted, deduplicated region bases the accesses touch. */
    std::vector<Addr> regionFootprint() const;
};

/** The curated scenario library (bench/protocheck and CI). */
const std::vector<Scenario> &scenarioLibrary();

/** Library scenario by name, or nullptr. */
const Scenario *findScenario(const std::string &name);

} // namespace protozoa::check

#endif // PROTOZOA_CHECK_SCENARIO_HH
