/**
 * @file
 * Analytic 2-D mesh interconnect (Table 4: 4x4 mesh, 16-byte flits,
 * 2-network-cycle links at half the core clock).
 *
 * Every L1 and its co-located L2 tile share a mesh node. The model is
 * XY-routed and contention-free except for per-(src,dst) FIFO ordering,
 * which the coherence protocol relies on for correctness (e.g. an
 * eviction PUT never overtakes the WB_RESP that superseded it).
 *
 * The mesh owns the Fig. 15 statistics: flit-hops are the paper's
 * dynamic-energy proxy for the interconnect.
 *
 * When `cfg.faultInjection` is set the mesh adds seeded random delay to
 * every message ("jitter"), and occasionally a long hold that all but
 * guarantees messages on *other* (src,dst) pairs overtake it. The
 * per-pair FIFO clamp is applied after the perturbation, so the ordering
 * invariant the protocol relies on is never violated — only cross-pair
 * interleavings change. Jitter draws are counter-based: sample k on
 * channel (src,dst) is a pure hash of (seed, channel, k), never a pull
 * from a shared sequential stream, so the fault schedule each channel
 * sees depends only on the seed and that channel's traffic — not on how
 * sends interleave across channels, and not on which engine (sequential
 * or sharded parallel) is driving the mesh. Runs are deterministic for
 * a given seed.
 */

#ifndef PROTOZOA_NOC_MESH_HH
#define PROTOZOA_NOC_MESH_HH

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "common/event_queue.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "common/word_range.hh"
#include "protocol/coherence_msg.hh"

namespace protozoa {

class Mesh
{
  public:
    Mesh(EventQueue &eq, const SystemConfig &cfg)
        : eventq(eq), cols(cfg.meshCols), rows(cfg.meshRows),
          flitBytes(cfg.flitBytes), hopLatency(cfg.hopLatency),
          flitSerialization(cfg.flitSerialization),
          faultInjection(cfg.faultInjection),
          jitterMax(cfg.faultJitterMax),
          reorderProb(cfg.faultReorderProb),
          faultSeed(cfg.seed ^ 0x6d657368ULL),  // "mesh"
          lastArrival(static_cast<std::size_t>(cols) * rows * cols * rows, 0)
    {
        if (faultInjection)
            pairSeq.assign(lastArrival.size(), 0);
        if (cfg.scheduleOracle)
            enableScheduleOracle();
    }

    /** Manhattan distance between two mesh nodes under XY routing. */
    unsigned
    hops(unsigned src, unsigned dst) const
    {
        const int sx = static_cast<int>(src % cols);
        const int sy = static_cast<int>(src / cols);
        const int dx = static_cast<int>(dst % cols);
        const int dy = static_cast<int>(dst / cols);
        return static_cast<unsigned>(std::abs(sx - dx) + std::abs(sy - dy));
    }

    /** Number of flits needed to carry @p bytes. */
    unsigned
    flitsFor(unsigned bytes) const
    {
        return (bytes + flitBytes - 1) / flitBytes;
    }

    /**
     * Send @p bytes from node @p src to node @p dst; runs @p deliver at
     * the arrival cycle. Same-(src,dst) messages never reorder.
     * Non-oracle only: under the schedule oracle System::send parks the
     * message itself via park().
     *
     * @return the delivery delay in core cycles.
     */
    Cycle
    send(unsigned src, unsigned dst, unsigned bytes,
         EventQueue::Callback deliver)
    {
        PROTO_ASSERT(!oracleOn, "send() bypasses the schedule oracle");
        const Cycle arrival =
            routeMessage(src, dst, bytes, eventq.now(), stats);
        eventq.scheduleAt(arrival, std::move(deliver));
        return arrival - eventq.now();
    }

    /**
     * Schedule-oracle send: account the message and park it on its
     * (src,dst) channel instead of scheduling a delivery; the external
     * chooser (src/check explorer) fires channels one head at a time
     * via deliverParked(), so per-pair FIFO order holds by
     * construction. Identifying metadata (fingerprint, type, region)
     * is derived from the message here.
     *
     * @return the nominal delivery delay in core cycles.
     */
    Cycle
    park(unsigned src, unsigned dst, unsigned bytes, CoherenceMsg msg)
    {
        PROTO_ASSERT(oracleOn, "park() requires the schedule oracle");
        const unsigned nodes = cols * rows;
        PROTO_ASSERT(src < nodes && dst < nodes,
                     "mesh node out of range: src=%u dst=%u nodes=%u",
                     src, dst, nodes);
        const unsigned h = hops(src, dst);
        const unsigned flits = flitsFor(bytes);
        stats.messages += 1;
        stats.bytes += bytes;
        stats.flits += flits;
        stats.flitHops += static_cast<std::uint64_t>(flits) * h;
        const Cycle latency = 1 + hopLatency * h +
            flitSerialization * (flits > 0 ? flits - 1 : 0);

        auto &chan = parked[static_cast<std::size_t>(src) * nodes + dst];
        Parked p;
        p.hash = msg.fingerprint();
        p.type = msgTypeName(msg.type);
        p.region = msg.region;
        p.range = msg.range;
        p.dstIsDir = msg.dstIsDir;
        p.isData = msg.type == MsgType::DATA;
        p.msg = std::move(msg);
        chan.push_back(std::move(p));
        ++parkedTotal;
        return latency;
    }

    /**
     * Engine-neutral half of send(): account the message in @p slab,
     * apply fault jitter and the per-pair FIFO clamp, and return the
     * absolute delivery cycle for a message leaving @p src at @p now.
     * The sharded engine calls this from shard threads — every mutable
     * cell it touches (the pair's jitter counter and FIFO clamp, the
     * caller-supplied stats slab) is indexed by (src,dst) and owned by
     * src's shard, so concurrent sends from distinct sources never
     * share state.
     */
    Cycle
    routeMessage(unsigned src, unsigned dst, unsigned bytes, Cycle now,
                 NetStats &slab)
    {
        const unsigned nodes = cols * rows;
        PROTO_ASSERT(src < nodes && dst < nodes,
                     "mesh node out of range: src=%u dst=%u nodes=%u",
                     src, dst, nodes);
        PROTO_ASSERT(!oracleOn, "schedule oracle is sequential-only");

        const unsigned h = hops(src, dst);
        const unsigned flits = flitsFor(bytes);

        slab.messages += 1;
        slab.bytes += bytes;
        slab.flits += flits;
        slab.flitHops += static_cast<std::uint64_t>(flits) * h;

        Cycle latency = 1 + hopLatency * h +
            flitSerialization * (flits > 0 ? flits - 1 : 0);

        const std::size_t pair =
            static_cast<std::size_t>(src) * nodes + dst;
        if (faultInjection)
            latency += faultDelay(pair);

        Cycle arrival = now + latency;

        // Per-pair FIFO: never deliver before the previous message on
        // this (src,dst) channel. Applied after fault injection so the
        // ordering invariant survives any perturbation.
        Cycle &last = lastArrival[pair];
        if (arrival <= last)
            arrival = last + 1;
        last = arrival;

        return arrival;
    }

    /**
     * Smallest possible delivery delay between two *distinct* tiles:
     * one base cycle plus at least one hop. The sharded engine's
     * conservative lookahead window — events inside a window cannot be
     * affected by cross-shard messages sent in the same window —
     * equals exactly this bound (jitter and the FIFO clamp only ever
     * increase a delay).
     */
    Cycle minCrossTileLatency() const { return 1 + hopLatency; }

    /**
     * Smallest possible delivery delay from @p src to @p dst
     * specifically: one base cycle plus the XY-routed hop count at
     * hopLatency per hop (jitter, serialization and the FIFO clamp only
     * ever increase a delay). The sharded engine's per-(src,dst)
     * lookahead matrix is built from this — distant shard pairs earn a
     * wider window than the flat minCrossTileLatency() bound.
     */
    Cycle
    pairLatencyBound(unsigned src, unsigned dst) const
    {
        return 1 + hopLatency * hops(src, dst);
    }

    const NetStats &netStats() const { return stats; }

    /** The mesh-owned stats slab (sequential engine's routeMessage). */
    NetStats &statsSlab() { return stats; }

    /** One tracked in-flight message (deadlock-watchdog diagnostics). */
    struct QueuedMsg
    {
        unsigned src = 0;
        unsigned dst = 0;
        Cycle arrival = 0;
        /** Static message-type name (from msgTypeName). */
        const char *type = "?";
        Addr region = 0;
        WordRange range;
        bool dstIsDir = false;
    };

    /**
     * Start recording every sent message until its arrival cycle, so a
     * deadlock dump can enumerate the in-flight set per channel. Off by
     * default: tracking touches a deque per message and is meant for
     * watchdog-enabled debug runs, not the measurement path.
     */
    void
    enableTracking()
    {
        tracking = true;
        if (inFlight.empty())
            inFlight.resize(static_cast<std::size_t>(cols) * rows);
    }
    bool trackingEnabled() const { return tracking; }

    /**
     * Record one sent message (caller supplies the arrival cycle and
     * its local notion of now). Tracked messages live in per-source
     * deques so concurrent shards never share one; @p now prunes only
     * the source's own deque.
     */
    void
    noteQueued(QueuedMsg msg, Cycle now)
    {
        if (!tracking)
            return;
        auto &q = inFlight[msg.src];
        prune(q, now);
        q.push_back(msg);
    }

    void noteQueued(QueuedMsg msg) { noteQueued(msg, eventq.now()); }

    /**
     * Visit every message still in flight (arrival >= @p now), source
     * by source in send order. Not safe concurrently with senders —
     * call it from the sequential engine or at a barrier.
     */
    template <typename F>
    void
    forEachQueued(Cycle now, F &&fn)
    {
        for (auto &q : inFlight) {
            prune(q, now);
            for (const QueuedMsg &m : q) {
                if (m.arrival >= now)
                    fn(m);
            }
        }
    }

    template <typename F>
    void
    forEachQueued(F &&fn)
    {
        forEachQueued(eventq.now(), std::forward<F>(fn));
    }

    // ---- schedule oracle (protocheck) -------------------------------

    /** One message parked under the schedule oracle. */
    struct Parked
    {
        /** The parked message itself — delivered via the deliver
         *  hook when the explorer fires this channel head. Holding
         *  the message (not a type-erased closure) is what lets the
         *  explorer snapshot and restore parked channels byte-wise. */
        CoherenceMsg msg;
        /** Canonical content hash (state fingerprinting). */
        std::uint64_t hash = 0;
        /** Static message-type name (repro / diagnostics). */
        const char *type = "?";
        Addr region = 0;
        WordRange range;
        bool dstIsDir = false;
        /**
         * DATA grant: delivering it can complete the destination
         * core's access and chain into its next ones. The explorer's
         * partial-order reduction keys its independence rule on this.
         */
        bool isData = false;
    };

    /**
     * Divert every subsequent send() into per-(src,dst) parking
     * channels; deliveries then happen only via deliverParked(). The
     * oracle costs one branch when disabled and allocates nothing
     * until enabled, so the measurement path stays untouched.
     */
    void
    enableScheduleOracle()
    {
        oracleOn = true;
        parked.resize(static_cast<std::size_t>(cols) * rows * cols *
                      rows);
    }

    bool scheduleOracleEnabled() const { return oracleOn; }

    /** Messages currently parked across all channels. */
    std::size_t parkedMessages() const { return parkedTotal; }

    /**
     * Install the delivery sink for parked messages: deliverParked()
     * hands the popped message to this hook (System::deliver). Must be
     * set before the first deliverParked() under the oracle.
     */
    void
    setDeliverHook(std::function<void(CoherenceMsg &&)> hook)
    {
        deliverHook = std::move(hook);
    }

    /**
     * Visit every non-empty channel in ascending (src,dst) order —
     * the canonical enumeration the explorer's choice indices and the
     * state fingerprint both rely on.
     */
    template <typename F>
    void
    forEachParkedChannel(F &&fn) const
    {
        const unsigned nodes = cols * rows;
        for (std::size_t i = 0; i < parked.size(); ++i) {
            if (parked[i].empty())
                continue;
            fn(static_cast<unsigned>(i / nodes),
               static_cast<unsigned>(i % nodes), parked[i]);
        }
    }

    /** Deliver the FIFO head of channel (src,dst) now. */
    void
    deliverParked(unsigned src, unsigned dst)
    {
        auto &chan = parkedChannel(src, dst);
        PROTO_ASSERT(!chan.empty(), "delivering from an empty channel");
        PROTO_ASSERT(deliverHook, "deliverParked without a deliver hook");
        CoherenceMsg msg = std::move(chan.front().msg);
        chan.pop_front();
        --parkedTotal;
        eventq.schedule(0, [this, m = std::move(msg)]() mutable {
            deliverHook(std::move(m));
        });
    }

    /**
     * Reset the measurement counters *and* the per-pair FIFO history, so
     * a measurement interval starting here sees no warmup ordering state.
     */
    void
    clearStats()
    {
        stats = NetStats();
        std::fill(lastArrival.begin(), lastArrival.end(), 0);
    }

    /**
     * Serialize all mutable mesh state: counters, the per-pair FIFO
     * clamp and jitter-draw matrices, and (under the oracle) every
     * parked channel. In-flight *tracking* deques are diagnostics only
     * and are not saved.
     */
    void
    saveState(Serializer &s) const
    {
        static_assert(std::is_trivially_copyable<NetStats>::value,
                      "NetStats must stay raw-serializable");
        s.writeRaw(stats);
        s.writeVecRaw(lastArrival);
        s.writeVecRaw(pairSeq);
        s.writeU8(oracleOn ? 1 : 0);
        if (oracleOn) {
            s.writeU32(static_cast<std::uint32_t>(parked.size()));
            for (const auto &chan : parked) {
                s.writeU32(static_cast<std::uint32_t>(chan.size()));
                for (const Parked &p : chan) {
                    s.writeRaw(p.msg);
                    s.writeU64(p.hash);
                }
            }
        }
    }

    /**
     * Restore into a freshly constructed mesh of the same geometry and
     * fault configuration. Parked-message metadata (type name, region,
     * range, data flag) is recomputed from the message content.
     */
    bool
    restoreState(Deserializer &d)
    {
        NetStats st;
        if (!d.readRaw(st))
            return false;
        std::vector<Cycle> la;
        std::vector<std::uint64_t> ps;
        if (!d.readVecRaw(la) || la.size() != lastArrival.size())
            return false;
        if (!d.readVecRaw(ps) || ps.size() != pairSeq.size())
            return false;
        std::uint8_t oracle = 0;
        if (!d.readRaw(oracle) || (oracle != 0) != oracleOn)
            return false;
        stats = st;
        lastArrival = std::move(la);
        pairSeq = std::move(ps);
        if (oracleOn) {
            std::uint32_t chans = 0;
            if (!d.readRaw(chans) || chans != parked.size())
                return false;
            parkedTotal = 0;
            for (auto &chan : parked) {
                chan.clear();
                std::uint32_t n = 0;
                if (!d.readRaw(n))
                    return false;
                for (std::uint32_t i = 0; i < n; ++i) {
                    Parked p;
                    if (!d.readRaw(p.msg) || !d.readRaw(p.hash))
                        return false;
                    p.type = msgTypeName(p.msg.type);
                    p.region = p.msg.region;
                    p.range = p.msg.range;
                    p.dstIsDir = p.msg.dstIsDir;
                    p.isData = p.msg.type == MsgType::DATA;
                    chan.push_back(std::move(p));
                    ++parkedTotal;
                }
            }
        }
        return !d.failed();
    }

  private:
    std::deque<Parked> &
    parkedChannel(unsigned src, unsigned dst)
    {
        const unsigned nodes = cols * rows;
        PROTO_ASSERT(oracleOn, "schedule oracle is not enabled");
        PROTO_ASSERT(src < nodes && dst < nodes, "channel out of range");
        return parked[static_cast<std::size_t>(src) * nodes + dst];
    }

    /** Drop tracked messages that were delivered before @p now. */
    static void
    prune(std::deque<QueuedMsg> &q, Cycle now)
    {
        while (!q.empty() && q.front().arrival < now)
            q.pop_front();
    }

    /**
     * Counter-based fault perturbation for the next message on
     * @p pair: extra delay uniform in [0, jitterMax], plus the long
     * reorder hold with probability reorderProb. Each draw hashes
     * (seed, pair, per-pair message index) — no shared stream, so the
     * schedule is independent of cross-pair send interleaving.
     */
    Cycle
    faultDelay(std::size_t pair)
    {
        const std::uint64_t seq = pairSeq[pair]++;
        Cycle extra = counterHash64(faultSeed, pair, 2 * seq) %
                      (jitterMax + 1);
        const double hold =
            static_cast<double>(
                counterHash64(faultSeed, pair, 2 * seq + 1) >> 11) *
            0x1.0p-53;
        if (hold < reorderProb)
            extra += 4 * jitterMax + 16;
        return extra;
    }

    EventQueue &eventq;
    unsigned cols;
    unsigned rows;
    unsigned flitBytes;
    Cycle hopLatency;
    Cycle flitSerialization;

    bool faultInjection;
    Cycle jitterMax;
    double reorderProb;
    /** Base seed of the counter-based jitter hash. */
    std::uint64_t faultSeed;

    NetStats stats;
    /** Flat nodes*nodes matrix of last delivery cycle per (src,dst). */
    std::vector<Cycle> lastArrival;
    /** Flat nodes*nodes matrix of jitter draws made per (src,dst). */
    std::vector<std::uint64_t> pairSeq;

    bool tracking = false;
    /** Per-source sent-but-undelivered messages, in send order
     *  (tracking only; indexed by src so shards never share a deque). */
    std::vector<std::deque<QueuedMsg>> inFlight;

    bool oracleOn = false;
    /** Flat nodes*nodes array of parked-delivery channels (oracle). */
    std::vector<std::deque<Parked>> parked;
    std::size_t parkedTotal = 0;
    /** Delivery sink for parked messages (set by System). */
    std::function<void(CoherenceMsg &&)> deliverHook;
};

} // namespace protozoa

#endif // PROTOZOA_NOC_MESH_HH
