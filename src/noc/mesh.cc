// Mesh is header-only; this translation unit verifies the header is
// self-contained.
#include "noc/mesh.hh"
