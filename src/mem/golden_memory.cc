// WordStore and GoldenMemory are header-only; this translation unit
// exists to give the module a home for future out-of-line growth and to
// verify the header is self-contained.
#include "mem/golden_memory.hh"
