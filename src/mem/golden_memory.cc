#include "mem/golden_memory.hh"

#include <algorithm>
#include <cstring>

namespace protozoa {

void
WordStore::readRange(Addr addr, std::uint64_t *dst, unsigned nwords) const
{
    if (conc) {
        concReadRange(addr, dst, nwords);
        return;
    }
    Addr wa = wordAlign(addr);
    while (nwords > 0) {
        const unsigned w0 = wordIndex(wa);
        const unsigned chunk = std::min(nwords, kPageWords - w0);
        if (const Page *page = findPage(pageBase(wa))) {
            std::memcpy(dst, &page->words[w0],
                        std::size_t(chunk) * sizeof(std::uint64_t));
        } else {
            for (unsigned i = 0; i < chunk; ++i)
                dst[i] = initialValue(wa + Addr(i) * kWordBytes);
        }
        dst += chunk;
        wa += Addr(chunk) * kWordBytes;
        nwords -= chunk;
    }
}

void
WordStore::writeRange(Addr addr, const std::uint64_t *src, unsigned nwords)
{
    if (conc) {
        concWriteRange(addr, src, nwords);
        return;
    }
    Addr wa = wordAlign(addr);
    while (nwords > 0) {
        const unsigned w0 = wordIndex(wa);
        const unsigned chunk = std::min(nwords, kPageWords - w0);
        Page &page = findOrCreatePage(pageBase(wa));
        std::memcpy(&page.words[w0], src,
                    std::size_t(chunk) * sizeof(std::uint64_t));
        static_assert(kPageWords <= 16,
                      "written bitmap narrower than a page");
        const unsigned run = chunk >= kPageWords
            ? 0xffffu
            : ((1u << chunk) - 1u) << w0;
        written += static_cast<std::size_t>(
            std::popcount(run & ~unsigned(page.written)));
        page.written |= static_cast<std::uint16_t>(run);
        src += chunk;
        wa += Addr(chunk) * kWordBytes;
        nwords -= chunk;
    }
}

// Concurrent-mode range ops: chunk at page boundaries (like the plain
// paths above) and take each page's stripe lock around the sub-store
// operation, so a range spanning two pages may touch two stripes but
// never holds two locks at once.

void
WordStore::concReadRange(Addr addr, std::uint64_t *dst,
                         unsigned nwords) const
{
    Addr wa = wordAlign(addr);
    while (nwords > 0) {
        const unsigned w0 = wordIndex(wa);
        const unsigned chunk = std::min(nwords, kPageWords - w0);
        auto &s = Concurrent::stripeFor(conc->stripes, pageBase(wa));
        s.lock.lock();
        s.store.readRange(wa, dst, chunk);
        s.lock.unlock();
        dst += chunk;
        wa += Addr(chunk) * kWordBytes;
        nwords -= chunk;
    }
}

void
WordStore::concWriteRange(Addr addr, const std::uint64_t *src,
                          unsigned nwords)
{
    Addr wa = wordAlign(addr);
    while (nwords > 0) {
        const unsigned w0 = wordIndex(wa);
        const unsigned chunk = std::min(nwords, kPageWords - w0);
        auto &s = Concurrent::stripeFor(conc->stripes, pageBase(wa));
        s.lock.lock();
        s.store.writeRange(wa, src, chunk);
        s.lock.unlock();
        src += chunk;
        wa += Addr(chunk) * kWordBytes;
        nwords -= chunk;
    }
}

} // namespace protozoa
