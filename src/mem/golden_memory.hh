/**
 * @file
 * Word-granularity value storage.
 *
 * WordStore is a sparse map from word-aligned addresses to 64-bit
 * values with a deterministic initial image (a hash of the address), so
 * untouched memory has a well-defined, reproducible content.
 *
 * Two instances exist per simulation:
 *  - the MainMemory image behind the shared L2 (updated only by L2
 *    dirty evictions), and
 *  - the GoldenMemory oracle (updated at every store commit point),
 *    used to check that each load observes the most-recent store —
 *    i.e. that the protocol enforces word-level SWMR end to end.
 */

#ifndef PROTOZOA_MEM_GOLDEN_MEMORY_HH
#define PROTOZOA_MEM_GOLDEN_MEMORY_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace protozoa {

class WordStore
{
  public:
    /** Deterministic initial content of a word (before any store). */
    static std::uint64_t
    initialValue(Addr word_addr)
    {
        std::uint64_t z = word_addr + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Read the word containing @p addr. */
    std::uint64_t
    read(Addr addr) const
    {
        const Addr wa = wordAlign(addr);
        auto it = words.find(wa);
        return it == words.end() ? initialValue(wa) : it->second;
    }

    /** Write the word containing @p addr. */
    void
    write(Addr addr, std::uint64_t value)
    {
        words[wordAlign(addr)] = value;
    }

    std::size_t touchedWords() const { return words.size(); }

    void clear() { words.clear(); }

  private:
    std::unordered_map<Addr, std::uint64_t> words;
};

/**
 * Oracle for load-value checking.
 *
 * Stores commit here at the instant the simulated core performs them;
 * loads are checked against the current oracle value. Violations are
 * counted (and optionally reported) rather than aborting, so tests can
 * assert on the violation count.
 */
class GoldenMemory
{
  public:
    void
    commitStore(Addr addr, std::uint64_t value)
    {
        store.write(addr, value);
    }

    /** @return true if @p observed matches the oracle for @p addr. */
    bool
    checkLoad(Addr addr, std::uint64_t observed)
    {
        const std::uint64_t expect = store.read(addr);
        if (expect == observed)
            return true;
        ++violationCount;
        lastBadAddr = addr;
        lastExpect = expect;
        lastObserved = observed;
        return false;
    }

    std::uint64_t expected(Addr addr) const { return store.read(addr); }

    std::uint64_t violations() const { return violationCount; }
    Addr lastViolationAddr() const { return lastBadAddr; }
    std::uint64_t lastExpectedValue() const { return lastExpect; }
    std::uint64_t lastObservedValue() const { return lastObserved; }

  private:
    WordStore store;
    std::uint64_t violationCount = 0;
    Addr lastBadAddr = 0;
    std::uint64_t lastExpect = 0;
    std::uint64_t lastObserved = 0;
};

} // namespace protozoa

#endif // PROTOZOA_MEM_GOLDEN_MEMORY_HH
