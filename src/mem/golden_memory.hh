/**
 * @file
 * Word-granularity value storage.
 *
 * WordStore is a sparse map from word-aligned addresses to 64-bit
 * values with a deterministic initial image (a hash of the address), so
 * untouched memory has a well-defined, reproducible content.
 *
 * Storage is paged at region granularity: an open-addressing table maps
 * the page base address to a 16-word payload. Compared to the former
 * per-word unordered_map this amortizes one table entry (and any growth
 * allocation) over a whole region, turns the store-commit and
 * load-check hot path into a single probe plus an array index, and —
 * because simulated footprints touch most words of each region — keeps
 * steady-state operation allocation-free once the working set's pages
 * exist.
 *
 * Two instances exist per simulation:
 *  - the MainMemory image behind the shared L2 (updated only by L2
 *    dirty evictions), and
 *  - the GoldenMemory oracle (updated at every store commit point),
 *    used to check that each load observes the most-recent store —
 *    i.e. that the protocol enforces word-level SWMR end to end.
 */

#ifndef PROTOZOA_MEM_GOLDEN_MEMORY_HH
#define PROTOZOA_MEM_GOLDEN_MEMORY_HH

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/serialize.hh"
#include "common/spin_sync.hh"
#include "common/types.hh"

namespace protozoa {

class WordStore
{
  public:
    /** Words per page; pages are aligned to kPageWords * kWordBytes. */
    static constexpr unsigned kPageWords = kMaxRegionWords;

    WordStore() { reset(64); }

    /**
     * Switch into concurrent mode: accesses route to one of 64
     * independently spin-locked sub-stores hashed by page base, so
     * shard threads whose footprints meet on one page (a 128-byte page
     * spans two 64-byte regions with different home tiles) serialize
     * on a stripe instead of racing on the open-addressing table.
     * Values and the deterministic initial image are unchanged. Call
     * it before the first access (the sharded engine enables it at
     * System construction); the sequential path keeps its zero-cost
     * single-table layout when this is never called.
     */
    void enableConcurrent();

    bool concurrent() const { return conc != nullptr; }

    /** Deterministic initial content of a word (before any store). */
    static std::uint64_t
    initialValue(Addr word_addr)
    {
        std::uint64_t z = word_addr + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Read the word containing @p addr. */
    std::uint64_t
    read(Addr addr) const
    {
        if (conc)
            return concRead(addr);
        const Addr wa = wordAlign(addr);
        const Page *page = findPage(pageBase(wa));
        return page ? page->words[wordIndex(wa)] : initialValue(wa);
    }

    /** Write the word containing @p addr. */
    void
    write(Addr addr, std::uint64_t value)
    {
        if (conc) {
            concWrite(addr, value);
            return;
        }
        const Addr wa = wordAlign(addr);
        Page &page = findOrCreatePage(pageBase(wa));
        const unsigned w = wordIndex(wa);
        if (!(page.written & (std::uint16_t(1) << w))) {
            page.written |= std::uint16_t(1) << w;
            ++written;
        }
        page.words[w] = value;
    }

    /**
     * Bulk-read @p nwords consecutive words starting at the word
     * containing @p addr. The common case — a region-sized range
     * inside one page — is a single probe plus one memcpy, replacing
     * the per-word read() loop of the directory fill path.
     */
    void readRange(Addr addr, std::uint64_t *dst, unsigned nwords) const;

    /**
     * Bulk-write @p nwords consecutive words starting at the word
     * containing @p addr: one probe, one memcpy, and one popcount
     * update of the written bitmap per touched page.
     */
    void writeRange(Addr addr, const std::uint64_t *src, unsigned nwords);

    /** Words ever written (not merely residing on a touched page). */
    std::size_t touchedWords() const;

    void clear();

    /**
     * Visit every explicitly-written word as (addr, value), in
     * unspecified order. Reads of never-written words return the
     * deterministic initial image, so the written set IS the store's
     * entire observable state.
     */
    template <typename F>
    void forEachWritten(F &&fn) const;

    /** Serialize the written-word set (snapshot subsystem). */
    void
    saveState(Serializer &s) const
    {
        s.writeU64(touchedWords());
        forEachWritten([&](Addr a, std::uint64_t v) {
            s.writeU64(a);
            s.writeU64(v);
        });
    }

    /**
     * Restore into a fresh store (same concurrency mode). Replays the
     * written set through write(), which reproduces page population,
     * the written bitmaps, and touchedWords() exactly.
     */
    bool
    restoreState(Deserializer &d)
    {
        if (touchedWords() != 0)
            return false;
        std::uint64_t n = 0;
        if (!d.readRaw(n))
            return false;
        for (std::uint64_t i = 0; i < n; ++i) {
            std::uint64_t a = 0, v = 0;
            if (!d.readRaw(a) || !d.readRaw(v))
                return false;
            write(a, v);
        }
        return !d.failed();
    }

  private:
    struct Page
    {
        Addr base = 0;
        /** Bitmap of explicitly written words (touchedWords stat). */
        std::uint16_t written = 0;
        std::uint64_t words[kPageWords];
    };

    static Addr
    pageBase(Addr word_addr)
    {
        return word_addr & ~Addr(kPageWords * kWordBytes - 1);
    }

    static unsigned
    wordIndex(Addr word_addr)
    {
        return static_cast<unsigned>(
            (word_addr / kWordBytes) % kPageWords);
    }

    static std::uint64_t
    mix(Addr key)
    {
        std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::size_t slotOf(Addr base) const
    {
        return static_cast<std::size_t>(mix(base)) & (pages.size() - 1);
    }

    const Page *
    findPage(Addr base) const
    {
        std::size_t i = slotOf(base);
        while (used[i]) {
            if (pages[i].base == base)
                return &pages[i];
            i = (i + 1) & (pages.size() - 1);
        }
        return nullptr;
    }

    Page &
    findOrCreatePage(Addr base)
    {
        if ((count + 1) * 10 >= pages.size() * 7)
            grow();
        std::size_t i = slotOf(base);
        while (used[i]) {
            if (pages[i].base == base)
                return pages[i];
            i = (i + 1) & (pages.size() - 1);
        }
        used[i] = 1;
        ++count;
        Page &page = pages[i];
        page.base = base;
        page.written = 0;
        // Pre-fill with the deterministic initial image so reads need
        // no per-word presence check.
        for (unsigned w = 0; w < kPageWords; ++w)
            page.words[w] = initialValue(base + w * kWordBytes);
        return page;
    }

    void
    grow()
    {
        std::vector<Page> old_pages = std::move(pages);
        std::vector<std::uint8_t> old_used = std::move(used);
        pages.assign(old_pages.size() * 2, Page());
        used.assign(old_used.size() * 2, 0);
        for (std::size_t i = 0; i < old_pages.size(); ++i) {
            if (!old_used[i])
                continue;
            std::size_t j = slotOf(old_pages[i].base);
            while (used[j])
                j = (j + 1) & (pages.size() - 1);
            used[j] = 1;
            pages[j] = old_pages[i];
        }
    }

    void
    reset(std::size_t capacity)
    {
        pages.assign(capacity, Page());
        used.assign(capacity, 0);
        count = 0;
        written = 0;
    }

    std::vector<Page> pages;
    std::vector<std::uint8_t> used;
    std::size_t count = 0;
    std::size_t written = 0;

    struct Concurrent;
    std::unique_ptr<Concurrent> conc;

    std::uint64_t concRead(Addr addr) const;
    void concWrite(Addr addr, std::uint64_t value);
    void concReadRange(Addr addr, std::uint64_t *dst,
                       unsigned nwords) const;
    void concWriteRange(Addr addr, const std::uint64_t *src,
                        unsigned nwords);
};

/**
 * Concurrent-mode stripes: 64 plain WordStores, each behind its own
 * spinlock, selected by a hash of the page base. The sub-stores are
 * ordinary sequential-mode WordStores (their `conc` stays null), so
 * every table operation reuses the single-threaded code verbatim.
 */
struct WordStore::Concurrent
{
    static constexpr unsigned kStripes = 64;

    struct alignas(64) Stripe
    {
        mutable SpinLock lock;
        WordStore store;
    };

    std::array<Stripe, kStripes> stripes;

    static Stripe &
    stripeFor(std::array<Stripe, kStripes> &s, Addr page_base)
    {
        return s[static_cast<std::size_t>(mix(page_base)) &
                 (kStripes - 1)];
    }
};

inline void
WordStore::enableConcurrent()
{
    if (!conc)
        conc = std::make_unique<Concurrent>();
}

inline std::size_t
WordStore::touchedWords() const
{
    if (!conc)
        return written;
    std::size_t total = 0;
    for (auto &s : conc->stripes) {
        s.lock.lock();
        total += s.store.written;
        s.lock.unlock();
    }
    return total;
}

inline void
WordStore::clear()
{
    reset(64);
    if (conc)
        conc = std::make_unique<Concurrent>();
}

template <typename F>
void
WordStore::forEachWritten(F &&fn) const
{
    if (conc) {
        for (auto &s : conc->stripes) {
            s.lock.lock();
            s.store.forEachWritten(fn);
            s.lock.unlock();
        }
        return;
    }
    for (std::size_t i = 0; i < pages.size(); ++i) {
        if (!used[i])
            continue;
        const Page &page = pages[i];
        for (unsigned w = 0; w < kPageWords; ++w) {
            if (page.written & (std::uint16_t(1) << w))
                fn(page.base + w * kWordBytes, page.words[w]);
        }
    }
}

inline std::uint64_t
WordStore::concRead(Addr addr) const
{
    const Addr wa = wordAlign(addr);
    auto &s = Concurrent::stripeFor(conc->stripes, pageBase(wa));
    s.lock.lock();
    const std::uint64_t v = s.store.read(addr);
    s.lock.unlock();
    return v;
}

inline void
WordStore::concWrite(Addr addr, std::uint64_t value)
{
    const Addr wa = wordAlign(addr);
    auto &s = Concurrent::stripeFor(conc->stripes, pageBase(wa));
    s.lock.lock();
    s.store.write(addr, value);
    s.lock.unlock();
}

/**
 * Oracle for load-value checking.
 *
 * Stores commit here at the instant the simulated core performs them;
 * loads are checked against the current oracle value. Violations are
 * counted (and optionally reported) rather than aborting, so tests can
 * assert on the violation count.
 */
class GoldenMemory
{
  public:
    /**
     * Concurrent mode for the sharded engine: stripe the backing
     * store and serialize the (cold) violation record. Commit/check
     * remain wait-free apart from one uncontended stripe spinlock.
     */
    void enableConcurrent() { store.enableConcurrent(); }

    void
    commitStore(Addr addr, std::uint64_t value)
    {
        store.write(addr, value);
    }

    /** @return true if @p observed matches the oracle for @p addr. */
    bool
    checkLoad(Addr addr, std::uint64_t observed)
    {
        const std::uint64_t expect = store.read(addr);
        if (expect == observed)
            return true;
        violationLock.lock();
        ++violationCount;
        lastBadAddr = addr;
        lastExpect = expect;
        lastObserved = observed;
        violationLock.unlock();
        return false;
    }

    std::uint64_t expected(Addr addr) const { return store.read(addr); }

    std::uint64_t violations() const { return violationCount; }
    Addr lastViolationAddr() const { return lastBadAddr; }
    std::uint64_t lastExpectedValue() const { return lastExpect; }
    std::uint64_t lastObservedValue() const { return lastObserved; }

    /** Serialize the oracle image and violation record. */
    void
    saveState(Serializer &s) const
    {
        store.saveState(s);
        s.writeU64(violationCount.load(std::memory_order_relaxed));
        s.writeU64(lastBadAddr);
        s.writeU64(lastExpect);
        s.writeU64(lastObserved);
    }

    /** Restore into a fresh oracle (same concurrency mode). */
    bool
    restoreState(Deserializer &d)
    {
        if (!store.restoreState(d))
            return false;
        violationCount.store(d.readU64(), std::memory_order_relaxed);
        lastBadAddr = d.readU64();
        lastExpect = d.readU64();
        lastObserved = d.readU64();
        return !d.failed();
    }

  private:
    WordStore store;
    /** Guards the violation record (touched only on failing loads). */
    SpinLock violationLock;
    std::atomic<std::uint64_t> violationCount{0};
    Addr lastBadAddr = 0;
    std::uint64_t lastExpect = 0;
    std::uint64_t lastObserved = 0;
};

} // namespace protozoa

#endif // PROTOZOA_MEM_GOLDEN_MEMORY_HH
