/**
 * @file
 * Statistics containers for the simulated memory system.
 *
 * Counters are plain structs (cheap to bump in hot paths) that the
 * System aggregates into a StatsReport at the end of a run. The
 * categories mirror the paper's evaluation:
 *
 *  - data bytes split into Used / Unused (Fig. 9),
 *  - control bytes split by message class REQ/FWD/INV/ACK/NACK plus
 *    data-message headers (Fig. 10),
 *  - directory Owned-state sharer census (Fig. 11),
 *  - L1 block-size distribution (Fig. 12),
 *  - misses and invalidations (Table 1, Fig. 13),
 *  - flit-hops (Fig. 15) and execution cycles (Fig. 14).
 */

#ifndef PROTOZOA_COMMON_STATS_HH
#define PROTOZOA_COMMON_STATS_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"

namespace protozoa {

/** Control-traffic classes used in Fig. 10 (+ data-message headers). */
enum class CtrlClass : unsigned
{
    Req,      ///< GETS/GETX issued by an L1
    Fwd,      ///< forwarded requests (FWD_GETS/FWD_GETX) arriving at an L1
    Inv,      ///< invalidations arriving at an L1
    Ack,      ///< ACK/ACK_S/WB_ACK/UNBLOCK control responses
    Nack,     ///< negative acknowledgements
    DataHdr,  ///< header ("message and data identifiers") of data messages
    NumClasses
};

constexpr unsigned kNumCtrlClasses =
    static_cast<unsigned>(CtrlClass::NumClasses);

const char *ctrlClassName(CtrlClass c);

/** Per-L1 statistics, summed over all cores by the System. */
struct L1Stats
{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    /** Invalidation-type messages (INV or FWD-GETX) received. */
    std::uint64_t invMsgsReceived = 0;
    /** Cache blocks actually killed by remote coherence activity. */
    std::uint64_t blocksInvalidated = 0;

    /** Data bytes moved to/from this L1 that the core did touch. */
    std::uint64_t usedDataBytes = 0;
    /** Data bytes moved to/from this L1 never touched before death. */
    std::uint64_t unusedDataBytes = 0;

    /** Control bytes sent+received, by class. */
    std::array<std::uint64_t, kNumCtrlClasses> ctrlBytes{};

    /** Histogram of inserted block sizes, indexed by word count. */
    std::array<std::uint64_t, kMaxRegionWords + 1> blockSizeHist{};

    void merge(const L1Stats &o);

    std::uint64_t dataBytes() const { return usedDataBytes + unusedDataBytes; }
    std::uint64_t ctrlBytesTotal() const;
    std::uint64_t totalBytes() const { return dataBytes() + ctrlBytesTotal(); }
};

/** Per-directory-tile statistics. */
struct DirStats
{
    std::uint64_t requests = 0;       ///< GETS/GETX processed
    std::uint64_t l2Misses = 0;       ///< region fetches from memory
    std::uint64_t recalls = 0;        ///< inclusive-L2 eviction recalls
    std::uint64_t memReadBytes = 0;
    std::uint64_t memWriteBytes = 0;

    /** Probes sent to cores the exact sets do not list (Bloom FPs). */
    std::uint64_t bloomFalseProbes = 0;

    /** Transactions served by 3-hop owner-to-requester forwarding. */
    std::uint64_t threeHopDirect = 0;

    /** Fig. 11 census: requests that found the region Owned. */
    std::uint64_t ownedOneOwnerOnly = 0;
    std::uint64_t ownedOneOwnerPlusSharers = 0;
    std::uint64_t ownedMultiOwner = 0;

    void merge(const DirStats &o);
};

/** Network statistics (whole mesh). */
struct NetStats
{
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t flits = 0;
    std::uint64_t flitHops = 0;   ///< Fig. 15 dynamic-energy proxy

    void merge(const NetStats &o);
};

/**
 * Discrete-event kernel observability counters (scheduler health).
 *
 * Maintained by the EventQueue; wall-clock time is stamped by
 * System::run(). `bucketScheduled` counts events that landed in the
 * near-future calendar ring, `heapScheduled` those that spilled to the
 * far-future heap — the ring should absorb almost everything.
 */
struct KernelStats
{
    std::uint64_t eventsScheduled = 0;
    std::uint64_t eventsExecuted = 0;
    std::uint64_t bucketScheduled = 0;
    std::uint64_t heapScheduled = 0;
    std::uint64_t maxQueueDepth = 0;
    /** Wall-clock seconds spent inside EventQueue::run(). */
    double wallSeconds = 0.0;

    /** Fraction of scheduled events absorbed by the calendar ring. */
    double bucketHitRate() const;
    /** Executed events per wall-clock second (0 when not timed). */
    double eventsPerSec() const;

    void merge(const KernelStats &o);
};

/** Whole-run aggregate produced by System::report(). */
struct RunStats
{
    L1Stats l1;
    DirStats dir;
    NetStats net;
    KernelStats kernel;
    std::uint64_t instructions = 0;
    Cycle cycles = 0;

    double mpki() const;
    /** Fraction of data bytes that were actually used. */
    double usedDataFraction() const;
};

/**
 * Fixed-width text table used by the bench harnesses to print
 * paper-style rows.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    void print(std::ostream &os) const;

    static std::string fmt(double v, int prec = 2);
    static std::string pct(double v, int prec = 0);

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

} // namespace protozoa

#endif // PROTOZOA_COMMON_STATS_HH
