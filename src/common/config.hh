/**
 * @file
 * System configuration: one struct gathers every knob of the simulated
 * CMP. Defaults reproduce Table 4 of the Protozoa paper.
 */

#ifndef PROTOZOA_COMMON_CONFIG_HH
#define PROTOZOA_COMMON_CONFIG_HH

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/core_mask.hh"
#include "common/log.hh"
#include "common/types.hh"

namespace protozoa {

/** The coherence protocols evaluated in the paper (Section 4). */
enum class ProtocolKind
{
    MESI,            ///< fixed-granularity 4-hop directory baseline
    ProtozoaSW,      ///< adaptive storage/comm, single writer per region
    ProtozoaSWMR,    ///< single writer + non-overlapping concurrent readers
    ProtozoaMW,      ///< multiple non-overlapping writers (word-level SWMR)
};

const char *protocolName(ProtocolKind kind);

/**
 * Parallel-engine thread count from PROTOZOA_SIM_THREADS: positive
 * values select the sharded engine with that many workers, anything
 * else (including unset) returns @p fallback. Unlike PROTOZOA_JOBS
 * there is no hardware-concurrency default: a single simulation stays
 * on the sequential oracle kernel unless explicitly asked otherwise.
 */
unsigned envSimThreads(unsigned fallback = 0);

/** Sharer-tracking organization at the directory. */
enum class DirectoryKind
{
    InCacheExact,    ///< precise per-entry reader/writer sets (paper)
    TaglessBloom,    ///< Sec. 6: Bloom-summarized sharers (TL-style)
};

/** Region -> home-tile (L2 slice) mapping function. */
enum class SliceHashKind
{
    Modulo,          ///< region index mod l2Tiles (paper's interleave)
    Spread,          ///< multiplicative spread hash (FlexiCAS slicehash
                     ///< idiom): decorrelates strided footprints from
                     ///< the tile count
};

/** Fetch-granularity policy used by the L1 on a miss. */
enum class PredictorKind
{
    FullRegion,      ///< always fetch the whole region (MESI behaviour)
    Fixed,           ///< always fetch a fixed number of words
    PcSpatial,       ///< Amoeba-Cache PC-indexed spatial predictor
    WordOnly,        ///< fetch exactly the referenced words (lower bound)
};

/**
 * Complete configuration of the simulated system.
 *
 * Defaults follow Table 4: 16 in-order cores at 3 GHz, 4x4 mesh at
 * 1.5 GHz with 16-byte flits and 2-cycle links, Amoeba L1 with 256 sets
 * and 288 bytes per set, 16-tile inclusive shared L2 (2 MB/tile),
 * 300-cycle main memory.
 */
struct SystemConfig
{
    ProtocolKind protocol = ProtocolKind::ProtozoaMW;
    PredictorKind predictor = PredictorKind::PcSpatial;
    DirectoryKind directory = DirectoryKind::InCacheExact;
    /** Region -> home-tile mapping (Modulo reproduces the paper). */
    SliceHashKind sliceHash = SliceHashKind::Modulo;

    /** TaglessBloom geometry: buckets per hash table, hash tables. */
    unsigned bloomBuckets = 256;
    unsigned bloomHashes = 2;

    /**
     * Sec. 6 "3-hop vs 4-hop": when a request has exactly one probe
     * target and that owner can cover the requested words, it sends
     * DATA directly to the requester (the directory still collects
     * the writeback and finishes the transaction). Falls back to
     * 4-hop whenever the owner cannot supply the full range.
     */
    bool threeHop = false;

    unsigned numCores = 16;

    /** REGION size: coherence-metadata granularity (and MESI block size). */
    unsigned regionBytes = 64;

    // ---- L1 (Amoeba) ----
    unsigned l1Sets = 256;
    unsigned l1BytesPerSet = 288;
    Cycle l1Latency = 2;
    /** Extra L1 cycles per additional block processed in a gather step. */
    Cycle l1GatherPerBlock = 1;
    /** Words fetched by the Fixed predictor policy. */
    unsigned fixedFetchWords = 8;

    // ---- shared L2 / directory ----
    unsigned l2Tiles = 16;
    std::uint64_t l2BytesPerTile = 2ull * 1024 * 1024;
    unsigned l2Assoc = 8;
    Cycle l2Latency = 14;

    // ---- interconnect (4x4 mesh) ----
    unsigned meshCols = 4;
    unsigned meshRows = 4;
    unsigned flitBytes = 16;
    /** Per-hop latency in core cycles (2 net cycles x 2 core/net ratio). */
    Cycle hopLatency = 4;
    /** Core cycles to serialize one additional flit. */
    Cycle flitSerialization = 2;

    // ---- main memory ----
    Cycle memLatency = 300;

    /** Control-message / data-header size in bytes (paper: 8 B). */
    unsigned controlBytes = 8;

    /** Verify every load against the golden memory (cheap; default on). */
    bool checkValues = true;

    // ---- conformance-harness knobs (all default off: figure harnesses
    // ---- stay bit-identical to a build without the harness) ----

    /**
     * Network fault injection: perturb message delivery times with
     * seeded random jitter so the protocol sees hostile interleavings.
     * Same-(src,dst) FIFO order is always preserved (the protocol
     * relies on it); only cross-pair order is shuffled.
     */
    bool faultInjection = false;
    /** Max extra per-message delay in core cycles (uniform [0, max]). */
    Cycle faultJitterMax = 8;
    /**
     * Probability that a message is additionally held for a long burst
     * (4*faultJitterMax + 16 cycles), virtually guaranteeing messages
     * on other (src,dst) pairs overtake it.
     */
    double faultReorderProb = 0.05;

    /**
     * Occupancy fault injection: seeded random jitter added to every
     * L1/directory occupy() reservation, so controller-side timing
     * races get the same treatment as network races. Off by default:
     * the occupancy model stays deterministic.
     */
    bool occupancyJitter = false;
    /** Max extra occupancy cycles per reservation (uniform [0, max]). */
    Cycle occupancyJitterMax = 4;

    /**
     * Schedule oracle (protocheck): the mesh parks every message in
     * per-(src,dst) FIFO channels instead of scheduling its delivery,
     * and an external chooser (the src/check explorer) decides which
     * channel fires next. Zero overhead when off.
     */
    bool scheduleOracle = false;

    /**
     * Test-only: re-inject the lost-store eviction race that the
     * WbBuffer::hasUncollected probe patch-up fixed, so the protocheck
     * regression test can prove the explorer rediscovers it.
     */
    bool debugLostStoreBug = false;

    /**
     * Deadlock watchdog: flag any MSHR entry or directory transaction
     * outstanding for more than this many cycles and dump a diagnostic
     * instead of hanging until the event-queue safety net. 0 = off.
     */
    Cycle watchdogCycles = 0;

    /**
     * Worker threads for the sharded parallel engine (one calendar
     * queue per mesh tile, conservative link-latency lookahead).
     * 0 = consult PROTOZOA_SIM_THREADS, and when that is unset too,
     * run the sequential single-queue oracle kernel (the default and
     * the bit-identical reference). 1 runs the sharded engine on the
     * calling thread — same event order as any other thread count.
     * Forced to sequential when the schedule oracle is enabled (the
     * protocheck explorer needs one global queue to steer).
     */
    unsigned simThreads = 0;

    /** Seed for workload generation and the random tester. */
    std::uint64_t seed = 1;

    /** Words per region. */
    unsigned regionWords() const { return regionBytes / kWordBytes; }

    /**
     * Home tile (shared-L2 slice / directory bank) of @p region. Every
     * component that needs a region's home — L1 request routing, the
     * directory's recall diagnostics, the protocheck inclusion oracle —
     * goes through this one mapping so the slice hash stays consistent
     * system-wide. Modulo is the paper's address interleave; Spread
     * multiplies the region index by a fixed odd constant and takes
     * high bits (the FlexiCAS slicehash idiom), so footprints strided
     * by a multiple of l2Tiles no longer pile onto one tile.
     */
    unsigned
    homeTileOf(Addr region) const
    {
        const Addr idx = region / regionBytes;
        if (sliceHash == SliceHashKind::Spread) {
            std::uint64_t z = idx * 0x9e3779b97f4a7c15ULL;
            z ^= z >> 32;
            return static_cast<unsigned>(z % l2Tiles);
        }
        return static_cast<unsigned>(idx % l2Tiles);
    }

    /**
     * Deadlock-watchdog horizon scaled to the machine geometry.
     * watchdogCycles bounds are calibrated against the paper's 4x4
     * 16-core reference machine; the worst-case cost of one
     * transaction — a probe fan-out across the mesh diameter, a
     * memory fetch, and per-core response collection — grows with the
     * mesh, so a flat bound that is sane at 4x4 false-positives at
     * 16x16. The configured bound scales by the ratio of the two
     * worst-case transaction costs (exactly watchdogCycles at or
     * below the reference geometry) and never drops below one full
     * transaction cost, so a tight bound cannot fire on a lone
     * memory-latency fetch either.
     */
    Cycle
    watchdogHorizon() const
    {
        if (watchdogCycles == 0)
            return 0;
        const auto txnCost = [this](unsigned cols, unsigned rows,
                                    unsigned cores) {
            const Cycle diameter = (cols - 1) + (rows - 1);
            return 2 * hopLatency * diameter + memLatency +
                   Cycle(cores) * l2Latency;
        };
        const Cycle ref = txnCost(4, 4, 16);
        const Cycle mine = txnCost(meshCols, meshRows, numCores);
        const Cycle scaled =
            mine <= ref ? watchdogCycles
                        : (watchdogCycles * mine + ref - 1) / ref;
        return std::max(scaled, mine);
    }

    /** Abort with a clear message if the configuration is inconsistent. */
    void
    validate() const
    {
        if (regionBytes % kWordBytes != 0 || regionWords() < 1 ||
            regionWords() > kMaxRegionWords)
            fatal("regionBytes=%u unsupported", regionBytes);
        if ((regionBytes & (regionBytes - 1)) != 0)
            fatal("regionBytes must be a power of two");
        if (numCores == 0 || numCores > kMaxCores)
            fatal("numCores=%u out of range [1, %u]: sharer sets are "
                  "kMaxCores wide (widen kMaxCores to go bigger)",
                  numCores, kMaxCores);
        if (meshCols == 0 || meshRows == 0)
            fatal("mesh geometry %ux%u needs at least one column and "
                  "one row", meshCols, meshRows);
        if (numCores != meshCols * meshRows)
            fatal("numCores (%u) must equal meshCols*meshRows (%u)",
                  numCores, meshCols * meshRows);
        if (l2Tiles != numCores)
            fatal("l2Tiles must equal numCores (tiled design)");
        if (l2BytesPerTile < std::uint64_t(regionBytes) * l2Assoc)
            fatal("l2BytesPerTile=%llu cannot hold one %u-way set of "
                  "%u-byte regions",
                  static_cast<unsigned long long>(l2BytesPerTile),
                  l2Assoc, regionBytes);
        if (l1BytesPerSet < regionBytes)
            fatal("l1BytesPerSet must hold at least one region");
        if (directory == DirectoryKind::TaglessBloom &&
            (bloomBuckets == 0 ||
             (bloomBuckets & (bloomBuckets - 1)) != 0))
            fatal("bloomBuckets=%u must be a nonzero power of two",
                  bloomBuckets);
        if (faultReorderProb < 0.0 || faultReorderProb > 1.0)
            fatal("faultReorderProb must be within [0,1]");
    }

    /**
     * Effective parallel-engine thread count: the explicit simThreads
     * knob, else PROTOZOA_SIM_THREADS, else 0 (sequential kernel).
     */
    unsigned resolvedSimThreads() const
    {
        return simThreads > 0 ? simThreads : envSimThreads(0);
    }
};

} // namespace protozoa

#endif // PROTOZOA_COMMON_CONFIG_HH
