#include "common/stats.hh"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <ostream>

namespace protozoa {

const char *
ctrlClassName(CtrlClass c)
{
    switch (c) {
      case CtrlClass::Req:     return "REQ";
      case CtrlClass::Fwd:     return "FWD";
      case CtrlClass::Inv:     return "INV";
      case CtrlClass::Ack:     return "ACK";
      case CtrlClass::Nack:    return "NACK";
      case CtrlClass::DataHdr: return "DHDR";
      default:                 return "?";
    }
}

void
L1Stats::merge(const L1Stats &o)
{
    loads += o.loads;
    stores += o.stores;
    hits += o.hits;
    misses += o.misses;
    invMsgsReceived += o.invMsgsReceived;
    blocksInvalidated += o.blocksInvalidated;
    usedDataBytes += o.usedDataBytes;
    unusedDataBytes += o.unusedDataBytes;
    for (unsigned i = 0; i < kNumCtrlClasses; ++i)
        ctrlBytes[i] += o.ctrlBytes[i];
    for (unsigned i = 0; i <= kMaxRegionWords; ++i)
        blockSizeHist[i] += o.blockSizeHist[i];
}

std::uint64_t
L1Stats::ctrlBytesTotal() const
{
    return std::accumulate(ctrlBytes.begin(), ctrlBytes.end(),
                           std::uint64_t(0));
}

void
DirStats::merge(const DirStats &o)
{
    requests += o.requests;
    l2Misses += o.l2Misses;
    recalls += o.recalls;
    bloomFalseProbes += o.bloomFalseProbes;
    threeHopDirect += o.threeHopDirect;
    memReadBytes += o.memReadBytes;
    memWriteBytes += o.memWriteBytes;
    ownedOneOwnerOnly += o.ownedOneOwnerOnly;
    ownedOneOwnerPlusSharers += o.ownedOneOwnerPlusSharers;
    ownedMultiOwner += o.ownedMultiOwner;
}

void
NetStats::merge(const NetStats &o)
{
    messages += o.messages;
    bytes += o.bytes;
    flits += o.flits;
    flitHops += o.flitHops;
}

double
KernelStats::bucketHitRate() const
{
    return eventsScheduled == 0
        ? 1.0
        : static_cast<double>(bucketScheduled) /
              static_cast<double>(eventsScheduled);
}

double
KernelStats::eventsPerSec() const
{
    return wallSeconds > 0.0
        ? static_cast<double>(eventsExecuted) / wallSeconds
        : 0.0;
}

void
KernelStats::merge(const KernelStats &o)
{
    eventsScheduled += o.eventsScheduled;
    eventsExecuted += o.eventsExecuted;
    bucketScheduled += o.bucketScheduled;
    heapScheduled += o.heapScheduled;
    maxQueueDepth = std::max(maxQueueDepth, o.maxQueueDepth);
    wallSeconds += o.wallSeconds;
}

double
RunStats::mpki() const
{
    return instructions == 0
        ? 0.0
        : 1000.0 * static_cast<double>(l1.misses) /
              static_cast<double>(instructions);
}

double
RunStats::usedDataFraction() const
{
    const auto total = l1.dataBytes();
    return total == 0
        ? 1.0
        : static_cast<double>(l1.usedDataBytes) / static_cast<double>(total);
}

TextTable::TextTable(std::vector<std::string> hdrs)
    : headers(std::move(hdrs))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    cells.resize(headers.size());
    rows.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        width[c] = headers[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            for (std::size_t p = cells[c].size(); p < width[c] + 2; ++p)
                os << ' ';
        }
        os << '\n';
    };

    emit(headers);
    std::size_t total = 0;
    for (auto w : width)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows)
        emit(row);
}

std::string
TextTable::fmt(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
TextTable::pct(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", prec, 100.0 * v);
    return buf;
}

} // namespace protozoa
