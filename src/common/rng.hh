/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Every stochastic element of the simulator (workload generators, the
 * random protocol tester) draws from an explicitly seeded Rng so that
 * runs are exactly reproducible across machines and build modes.
 */

#ifndef PROTOZOA_COMMON_RNG_HH
#define PROTOZOA_COMMON_RNG_HH

#include <cstdint>

namespace protozoa {

class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // splitmix64 expansion of the seed into the xoshiro state.
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /** Snapshot hooks: expose the raw xoshiro state so a checkpoint
     *  can resume the stream mid-sequence bit-identically. */
    void
    stateWords(std::uint64_t out[4]) const
    {
        for (int i = 0; i < 4; ++i)
            out[i] = state[i];
    }

    void
    setStateWords(const std::uint64_t in[4])
    {
        for (int i = 0; i < 4; ++i)
            state[i] = in[i];
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

/** splitmix64 finalizer: the avalanche stage used throughout for
 *  deterministic address/seed hashing. */
inline std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * Stateless counter-based draw: hash an explicit (seed, stream,
 * counter) triple into a uniform 64-bit value.
 *
 * Unlike a sequential generator, the value of draw k on stream s does
 * not depend on how draws are interleaved across streams — only on
 * (seed, s, k). The mesh fault injector keys streams by (src,dst) pair
 * and counts messages per pair, so a fault schedule is a pure function
 * of the seed and each pair's traffic, identical under the sequential
 * kernel and any sharded/threaded engine.
 */
inline std::uint64_t
counterHash64(std::uint64_t seed, std::uint64_t stream,
              std::uint64_t counter)
{
    return mix64(seed ^ mix64(stream ^ mix64(counter)));
}

} // namespace protozoa

#endif // PROTOZOA_COMMON_RNG_HH
