#include "common/word_range.hh"

#include <bit>
#include <sstream>

namespace protozoa {

std::string
WordRange::toString() const
{
    std::ostringstream os;
    if (empty())
        os << "[empty]";
    else
        os << "[" << start << "-" << end << "]";
    return os.str();
}

unsigned
maskRunCount(WordMask mask)
{
    // A run starts at every 0->1 transition scanning upward; those
    // transitions are exactly the set bits of mask & ~(mask << 1).
    return static_cast<unsigned>(
        std::popcount(mask & ~(mask << 1)));
}

WordRange
clipAgainst(const WordRange &pred, const WordRange &need,
            const WordRange &obstacle)
{
    assert(pred.covers(need));
    assert(!obstacle.overlaps(need));
    if (!pred.overlaps(obstacle))
        return pred;

    WordRange out = pred;
    if (obstacle.start > need.end) {
        // Obstacle sits to the right of the needed words.
        out.end = std::min(out.end, obstacle.start - 1);
    }
    if (obstacle.end < need.start) {
        // Obstacle sits to the left of the needed words.
        out.start = std::max(out.start, obstacle.end + 1);
    }
    assert(out.covers(need));
    assert(!out.overlaps(obstacle));
    return out;
}

} // namespace protozoa
