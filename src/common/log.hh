/**
 * @file
 * Logging and error-reporting helpers, patterned after gem5's
 * panic()/fatal()/warn() trio.
 *
 *  - panic():  an internal simulator invariant was violated (a bug).
 *  - fatal():  the user supplied an impossible configuration.
 *  - warn():   something suspicious but survivable happened.
 *  - PROTO_DTRACE(): compiled-in debug tracing, gated by a runtime flag.
 */

#ifndef PROTOZOA_COMMON_LOG_HH
#define PROTOZOA_COMMON_LOG_HH

#include <atomic>
#include <cstdarg>
#include <string>

namespace protozoa {

[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Debug-trace control: when true, PROTO_DTRACE statements print.
 * Atomic so parallel sweep workers may race a toggle without UB
 * (trace lines themselves may still interleave).
 */
extern std::atomic<bool> debugTraceEnabled;

/** Print a debug-trace line (no-op unless debugTraceEnabled). */
void dtrace(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Lazy debug trace: the arguments are NOT evaluated unless tracing is
 * enabled. Hot paths must use this instead of calling dtrace()
 * directly — dtrace("%s", msg.toString().c_str()) would pay for the
 * string construction on every message even with tracing off.
 */
#define PROTO_DTRACE(...)                                                 \
    do {                                                                  \
        if (::protozoa::debugTraceEnabled.load(                           \
                std::memory_order_relaxed)) [[unlikely]]                  \
            ::protozoa::dtrace(__VA_ARGS__);                              \
    } while (0)

/**
 * Assert-like invariant check that survives NDEBUG builds.
 * Use for protocol invariants whose violation must never be silent.
 */
#define PROTO_ASSERT(cond, fmt, ...)                                      \
    do {                                                                  \
        if (!(cond))                                                      \
            ::protozoa::panic("assertion '%s' failed at %s:%d: " fmt,    \
                              #cond, __FILE__, __LINE__,                  \
                              ##__VA_ARGS__);                             \
    } while (0)

} // namespace protozoa

#endif // PROTOZOA_COMMON_LOG_HH
