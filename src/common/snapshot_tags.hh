/**
 * @file
 * Shared tags for the snapshot subsystem.
 *
 * Lives in common/ so that every component can tag its saveable events
 * without depending on src/snapshot/ (the snapshot layer depends on
 * the components, never the other way around).
 *
 * Versioning rule: kSnapshotVersion must be bumped whenever the byte
 * layout of any serialized section changes — a snapshot is a dense
 * binary image, not a schema'd document, so cross-version reads are
 * rejected outright rather than migrated (DESIGN.md §13).
 */

#ifndef PROTOZOA_COMMON_SNAPSHOT_TAGS_HH
#define PROTOZOA_COMMON_SNAPSHOT_TAGS_HH

#include <cstdint>

namespace protozoa {

/** Snapshot file magic: "PZSN". */
constexpr std::uint32_t kSnapshotMagic = 0x4e535a50u;

/** Bump on any serialized-layout change. */
constexpr std::uint32_t kSnapshotVersion = 1;

/**
 * Discriminator for every event class that can be in flight at a
 * checkpoint. Each saveable event struct writes its kind byte followed
 * by a fixed POD payload; the restore factory (snapshot.cc) switches
 * on the kind and rebinds the payload to the freshly-built system.
 */
enum class EventKind : std::uint8_t {
    CoreStep = 1,      ///< core issue-loop trampoline        {coreId}
    CoreIssue = 2,     ///< gap-delayed access issue           {coreId, MemAccess}
    L1Complete = 3,    ///< L1 fires its parked completion     {coreId, value}
    L1Send = 4,        ///< L1 pipeline handing msg to router  {coreId, CoherenceMsg}
    DirSend = 5,       ///< directory pipeline ditto           {tileId, CoherenceMsg}
    DirFill = 6,       ///< memory fill completing at the dir  {tileId, region}
    MeshDeliver = 7,   ///< in-flight mesh message (sequential){CoherenceMsg}
    SysDeliver = 8,    ///< in-flight delivery (sharded path)  {CoherenceMsg}
    InvariantTick = 9, ///< periodic coherence sweep           {}
    WatchdogTick = 10, ///< deadlock watchdog scan             {}
    WindowTick = 11,   ///< windowed-stats epoch rollover      {}
};

} // namespace protozoa

#endif // PROTOZOA_COMMON_SNAPSHOT_TAGS_HH
