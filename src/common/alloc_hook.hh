/**
 * @file
 * Heap-allocation counting hook for the zero-allocation regression
 * tests.
 *
 * A test binary opts in by placing PROTOZOA_DEFINE_COUNTING_NEW in one
 * translation unit: this replaces the global operator new/delete for
 * that binary with counting wrappers. The library itself never defines
 * the operators, so production binaries keep the system allocator
 * untouched.
 *
 * Counters are monotonically increasing; a test snapshots
 * allocCount() around a window of simulation and asserts the delta.
 */

#ifndef PROTOZOA_COMMON_ALLOC_HOOK_HH
#define PROTOZOA_COMMON_ALLOC_HOOK_HH

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace protozoa {

/** Allocation counters bumped by the interposed operators. */
struct AllocHook
{
    static std::atomic<std::uint64_t> news;
    static std::atomic<std::uint64_t> deletes;

    static std::uint64_t allocCount()
    {
        return news.load(std::memory_order_relaxed);
    }
};

} // namespace protozoa

/**
 * Define counting replacements of the global allocation functions.
 * Place exactly once, at namespace scope, in the test's main TU.
 */
#define PROTOZOA_DEFINE_COUNTING_NEW                                      \
    std::atomic<std::uint64_t> protozoa::AllocHook::news{0};              \
    std::atomic<std::uint64_t> protozoa::AllocHook::deletes{0};           \
    void *operator new(std::size_t sz)                                    \
    {                                                                     \
        protozoa::AllocHook::news.fetch_add(1,                            \
                                            std::memory_order_relaxed);   \
        if (void *p = std::malloc(sz ? sz : 1))                           \
            return p;                                                     \
        throw std::bad_alloc();                                           \
    }                                                                     \
    void *operator new[](std::size_t sz) { return ::operator new(sz); }   \
    void operator delete(void *p) noexcept                                \
    {                                                                     \
        protozoa::AllocHook::deletes.fetch_add(                           \
            1, std::memory_order_relaxed);                                \
        std::free(p);                                                     \
    }                                                                     \
    void operator delete[](void *p) noexcept                              \
    {                                                                     \
        protozoa::AllocHook::deletes.fetch_add(                           \
            1, std::memory_order_relaxed);                                \
        std::free(p);                                                     \
    }                                                                     \
    void operator delete(void *p, std::size_t) noexcept                   \
    {                                                                     \
        protozoa::AllocHook::deletes.fetch_add(                           \
            1, std::memory_order_relaxed);                                \
        std::free(p);                                                     \
    }                                                                     \
    void operator delete[](void *p, std::size_t) noexcept                 \
    {                                                                     \
        protozoa::AllocHook::deletes.fetch_add(                           \
            1, std::memory_order_relaxed);                                \
        std::free(p);                                                     \
    }

#endif // PROTOZOA_COMMON_ALLOC_HOOK_HH
