/**
 * @file
 * Discrete-event simulation kernel.
 *
 * Events are (cycle, sequence, callback) triples; ties at the same
 * cycle execute in scheduling order, which keeps the simulation
 * deterministic. Two pieces make the hot path allocation-free:
 *
 *  - EventCallback, a move-only callable with a large inline buffer.
 *    Every callback the simulator schedules (mesh deliveries carrying a
 *    CoherenceMsg, core steps, controller pipeline stages) fits inline;
 *    oversized captures fall back to the heap transparently.
 *
 *  - A two-level calendar scheduler. Near-future events — almost all of
 *    them: cache latencies, mesh hops, directory occupancy, the
 *    300-cycle memory round trip — land in a power-of-two ring of
 *    per-cycle FIFO buckets (O(1) schedule, O(1) amortized dispatch via
 *    an occupancy bitmap). Far-future events spill to a small binary
 *    heap of plain (cycle, seq, node) references and migrate into the
 *    ring when their cycle comes due. Event nodes live in a pooled
 *    free-list, so steady-state scheduling performs zero allocations.
 *
 * Ordering guarantee: events run in strictly ascending (cycle, seq)
 * order regardless of which level they were scheduled into. A spilled
 * event is always scheduled from a strictly earlier cycle than any
 * ring event for the same target cycle (otherwise it would have been
 * within the ring horizon), so prepending migrated spill events ahead
 * of the resident bucket FIFO preserves global seq order exactly.
 */

#ifndef PROTOZOA_COMMON_EVENT_QUEUE_HH
#define PROTOZOA_COMMON_EVENT_QUEUE_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace protozoa {

class Serializer;

/**
 * Detects `void T::saveEvent(Serializer&) const` — the opt-in hook a
 * scheduled callable implements to make itself checkpointable. The
 * hook writes an EventKind tag plus a POD payload; the snapshot layer
 * rebuilds the callable from that record (snapshot_tags.hh).
 */
template <typename T, typename = void>
struct HasSaveEvent : std::false_type
{
};

template <typename T>
struct HasSaveEvent<T, std::void_t<decltype(std::declval<const T &>()
                                                .saveEvent(
                                                    std::declval<Serializer &>()))>>
    : std::true_type
{
};

/**
 * Move-only type-erased void() callable with inline small-buffer
 * storage sized for the simulator's largest common capture (a mesh
 * delivery closure holding a whole CoherenceMsg).
 */
class EventCallback
{
  public:
    /** Inline capture budget; larger callables are heap-boxed. */
    static constexpr std::size_t kInlineBytes = 256;

    EventCallback() noexcept = default;

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, EventCallback> &&
                  std::is_invocable_r_v<void, D &>>>
    EventCallback(F &&f)
    {
        if constexpr (sizeof(D) <= kInlineBytes &&
                      alignof(D) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<D>) {
            ::new (static_cast<void *>(buf)) D(std::forward<F>(f));
            vt = &kInlineVtable<D>;
        } else {
            ::new (static_cast<void *>(buf)) D *(new D(std::forward<F>(f)));
            vt = &kHeapVtable<D>;
        }
    }

    EventCallback(EventCallback &&o) noexcept : vt(o.vt)
    {
        if (vt) {
            vt->relocate(buf, o.buf);
            o.vt = nullptr;
        }
    }

    EventCallback &
    operator=(EventCallback &&o) noexcept
    {
        if (this != &o) {
            reset();
            vt = o.vt;
            if (vt) {
                vt->relocate(buf, o.buf);
                o.vt = nullptr;
            }
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    explicit operator bool() const { return vt != nullptr; }

    void operator()() { vt->invoke(buf); }

    /** True when the callable lives in the inline buffer (no heap). */
    bool inlined() const { return vt != nullptr && vt->inlineStored; }

    /** True when the stored callable implements saveEvent(). */
    bool saveable() const { return vt != nullptr && vt->save != nullptr; }

    /** Serialize the stored callable (must be saveable()). */
    void save(Serializer &s) const { vt->save(buf, s); }

  private:
    struct VTable
    {
        void (*invoke)(void *);
        /** Move storage from @p src to raw @p dst; leaves src dead. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
        /** Serialize; nullptr for non-checkpointable callables. */
        void (*save)(const void *, Serializer &);
        bool inlineStored;
    };

    template <typename D, bool Inline>
    static constexpr auto
    saveFn()
    {
        using Fn = void (*)(const void *, Serializer &);
        if constexpr (HasSaveEvent<D>::value) {
            if constexpr (Inline)
                return Fn([](const void *p, Serializer &s) {
                    std::launder(reinterpret_cast<const D *>(p))
                        ->saveEvent(s);
                });
            else
                return Fn([](const void *p, Serializer &s) {
                    (*std::launder(
                        reinterpret_cast<D *const *>(p)))->saveEvent(s);
                });
        } else {
            return Fn(nullptr);
        }
    }

    template <typename T>
    static T *
    as(void *p)
    {
        return std::launder(reinterpret_cast<T *>(p));
    }

    template <typename D>
    static constexpr VTable kInlineVtable = {
        [](void *p) { (*as<D>(p))(); },
        [](void *dst, void *src) {
            ::new (dst) D(std::move(*as<D>(src)));
            as<D>(src)->~D();
        },
        [](void *p) { as<D>(p)->~D(); },
        saveFn<D, true>(),
        true,
    };

    template <typename D>
    static constexpr VTable kHeapVtable = {
        [](void *p) { (**as<D *>(p))(); },
        [](void *dst, void *src) {
            ::new (dst) D *(*as<D *>(src));
        },
        [](void *p) { delete *as<D *>(p); },
        saveFn<D, false>(),
        false,
    };

    void
    reset()
    {
        if (vt) {
            vt->destroy(buf);
            vt = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf[kInlineBytes];
    const VTable *vt = nullptr;
};

class EventQueue
{
  public:
    using Callback = EventCallback;

    /** Current simulated time. */
    Cycle now() const { return curCycle; }

    /** Schedule @p cb to run @p delay cycles from now. */
    void
    schedule(Cycle delay, Callback cb)
    {
        insert(curCycle + delay, std::move(cb));
    }

    /** Schedule @p cb at absolute cycle @p when (>= now). */
    void
    scheduleAt(Cycle when, Callback cb)
    {
        PROTO_ASSERT(when >= curCycle, "scheduling into the past");
        insert(when, std::move(cb));
    }

    bool empty() const { return pending == 0; }

    /** Events currently queued. */
    std::uint64_t size() const { return pending; }

    /**
     * Earliest pending cycle across both scheduler levels.
     * @return false when the queue is dry.
     */
    bool
    nextEventCycle(Cycle &out) const
    {
        if (pending == 0)
            return false;
        Cycle c;
        if (!nextRingCycle(c) ||
            (!spill.empty() && spill.front().when <= c))
            c = spill.front().when;
        out = c;
        return true;
    }

    /**
     * Run queued events with cycle strictly below @p limit, advancing
     * local time as they execute. Events scheduled at or past the limit
     * stay queued; this is the shard-horizon primitive of the parallel
     * engine: a shard free-runs inside its window and stops exactly at
     * the conservative lookahead boundary.
     * @return number of events executed.
     */
    std::uint64_t
    runUntil(Cycle limit)
    {
        std::uint64_t n = 0;
        Cycle c;
        while (nextEventCycle(c) && c < limit) {
            dispatch(c);
            ++n;
        }
        return n;
    }

    /** Pop and run the next event. @return false when the queue is dry. */
    bool
    step()
    {
        Cycle c;
        if (!nextEventCycle(c))
            return false;
        dispatch(c);
        return true;
    }

    /**
     * Run until the queue is empty.
     * @param max_cycles safety net against protocol deadlock/livelock;
     *        panics when exceeded.
     */
    void
    run(Cycle max_cycles = ~Cycle(0))
    {
        while (step()) {
            if (curCycle > max_cycles)
                panic("event queue still busy at cycle %llu "
                      "(deadlock or livelock?)",
                      static_cast<unsigned long long>(curCycle));
        }
    }

    /**
     * Pre-size the node pool and spill heap for @p events concurrent
     * events, so reaching that depth never allocates mid-run. The
     * sharded engine warms every shard queue this way: per-shard
     * high-water marks are reached later than a global queue's (an
     * idle shard's clock lags, so late traffic can first-touch pool
     * and spill capacity deep into a run).
     */
    void
    reserve(std::size_t events)
    {
        pool.reserve(events);
        spill.reserve(events);
    }

    /** Scheduler observability counters. */
    const KernelStats &kernelStats() const { return kstats; }

    // ---- Snapshot hooks (src/snapshot) --------------------------------
    //
    // A checkpoint serializes the queue as (clock, nextSeq, kstats) plus
    // every pending (when, seq, callback) triple; restore rebuilds the
    // exact scheduler state so the continued run is bit-identical —
    // including the kernel counters, which the stats digest covers.

    /**
     * Visit every pending event as (when, seq, const Callback&), in no
     * particular order. The snapshot writer sorts by (when, seq) before
     * serializing.
     */
    template <typename F>
    void
    forEachPending(F &&fn) const
    {
        for (unsigned b = 0; b < kNumBuckets; ++b)
            for (std::uint32_t n = bucketHead[b]; n != kNil;
                 n = pool[n].next)
                fn(pool[n].when, pool[n].seq, pool[n].cb);
        for (const SpillRef &r : spill)
            fn(r.when, r.seq, pool[r.node].cb);
    }

    /**
     * Re-insert a saved event with its original sequence number.
     * Restore-only: does not advance nextSeq and does not touch the
     * kernel counters (those are restored wholesale via setKernelStats,
     * so re-counting here would double them). Events MUST be restored
     * in ascending (when, seq) order onto an empty queue whose clock
     * has already been set — bucket FIFOs are append-only, so that
     * order is what keeps same-cycle chains sorted by seq.
     */
    void
    restoreEvent(Cycle when, std::uint64_t seq, Callback cb)
    {
        PROTO_ASSERT(when >= curCycle, "restoring event into the past");
        const std::uint32_t n = acquireNode();
        Node &node = pool[n];
        node.when = when;
        node.seq = seq;
        node.next = kNil;
        node.cb = std::move(cb);

        if (when - curCycle < kNumBuckets) {
            const unsigned b = static_cast<unsigned>(when) & kBucketMask;
            if (bucketHead[b] == kNil) {
                bucketHead[b] = bucketTail[b] = n;
                occupancy[b >> 6] |= std::uint64_t(1) << (b & 63);
            } else {
                pool[bucketTail[b]].next = n;
                bucketTail[b] = n;
            }
        } else {
            spill.push_back(SpillRef{when, seq, n});
            std::push_heap(spill.begin(), spill.end(), std::greater<>());
        }
        ++pending;
    }

    /** Set the clock (restore-only; queue must be empty). */
    void
    setClock(Cycle c)
    {
        PROTO_ASSERT(pending == 0, "clock set on a non-empty queue");
        curCycle = c;
    }

    std::uint64_t nextSeqValue() const { return nextSeq; }
    void setNextSeq(std::uint64_t s) { nextSeq = s; }
    void setKernelStats(const KernelStats &k) { kstats = k; }

    /**
     * Calendar-ring horizon in cycles: events at least this far in the
     * future spill to the far-future heap. Exposed for the boundary
     * property tests and the kernel micro-benchmark.
     */
    static constexpr unsigned kRingHorizon = 1u << 10;

  private:
    /** One bucket per cycle within the horizon (power of two). */
    static constexpr unsigned kNumBuckets = kRingHorizon;
    static constexpr unsigned kBucketMask = kNumBuckets - 1;
    static constexpr std::uint32_t kNil = ~std::uint32_t(0);

    struct Node
    {
        Cycle when = 0;
        std::uint64_t seq = 0;
        std::uint32_t next = kNil;
        Callback cb;
    };

    /** Far-future reference; the payload stays in the node pool. */
    struct SpillRef
    {
        Cycle when;
        std::uint64_t seq;
        std::uint32_t node;

        bool
        operator>(const SpillRef &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    /** Pop and run the already-located earliest event at cycle @p c. */
    void
    dispatch(Cycle c)
    {
        if (!spill.empty() && spill.front().when == c)
            migrateSpill(c);

        const unsigned b = static_cast<unsigned>(c) & kBucketMask;
        const std::uint32_t n = bucketHead[b];
        bucketHead[b] = pool[n].next;
        if (bucketHead[b] == kNil) {
            bucketTail[b] = kNil;
            occupancy[b >> 6] &= ~(std::uint64_t(1) << (b & 63));
        }

        // Move the callback out before running it: the callback may
        // schedule new events, which can grow the pool and invalidate
        // references into it.
        Callback cb = std::move(pool[n].cb);
        releaseNode(n);
        --pending;
        ++kstats.eventsExecuted;
        curCycle = c;
        cb();
    }

    void
    insert(Cycle when, Callback cb)
    {
        const std::uint32_t n = acquireNode();
        Node &node = pool[n];
        node.when = when;
        node.seq = nextSeq++;
        node.next = kNil;
        node.cb = std::move(cb);

        if (when - curCycle < kNumBuckets) {
            const unsigned b = static_cast<unsigned>(when) & kBucketMask;
            if (bucketHead[b] == kNil) {
                bucketHead[b] = bucketTail[b] = n;
                occupancy[b >> 6] |= std::uint64_t(1) << (b & 63);
            } else {
                pool[bucketTail[b]].next = n;
                bucketTail[b] = n;
            }
            ++kstats.bucketScheduled;
        } else {
            spill.push_back(SpillRef{when, node.seq, n});
            std::push_heap(spill.begin(), spill.end(), std::greater<>());
            ++kstats.heapScheduled;
        }

        ++pending;
        ++kstats.eventsScheduled;
        if (pending > kstats.maxQueueDepth)
            kstats.maxQueueDepth = pending;
    }

    /**
     * Earliest cycle with a non-empty ring bucket. All ring events lie
     * within [curCycle, curCycle + kNumBuckets), so an occupancy-bitmap
     * scan of one ring lap starting at curCycle's bucket finds it.
     */
    bool
    nextRingCycle(Cycle &out) const
    {
        const unsigned base = static_cast<unsigned>(curCycle) & kBucketMask;
        unsigned off = 0;
        while (off < kNumBuckets) {
            const unsigned idx = (base + off) & kBucketMask;
            const unsigned bit = idx & 63;
            const std::uint64_t word = occupancy[idx >> 6] >> bit;
            if (word != 0) {
                out = curCycle + off +
                      static_cast<unsigned>(std::countr_zero(word));
                return true;
            }
            off += 64 - bit;
        }
        return false;
    }

    /**
     * Pull every spilled event due at cycle @p c into its bucket,
     * *ahead* of resident ring events (spilled events always carry
     * smaller seq numbers — see the file comment).
     */
    void
    migrateSpill(Cycle c)
    {
        std::uint32_t head = kNil, tail = kNil;
        while (!spill.empty() && spill.front().when == c) {
            const std::uint32_t n = spill.front().node;
            std::pop_heap(spill.begin(), spill.end(), std::greater<>());
            spill.pop_back();
            pool[n].next = kNil;
            if (head == kNil)
                head = n;
            else
                pool[tail].next = n;
            tail = n;
        }
        if (head == kNil)
            return;

        const unsigned b = static_cast<unsigned>(c) & kBucketMask;
        if (bucketHead[b] == kNil) {
            bucketHead[b] = head;
            bucketTail[b] = tail;
            occupancy[b >> 6] |= std::uint64_t(1) << (b & 63);
        } else {
            pool[tail].next = bucketHead[b];
            bucketHead[b] = head;
        }
    }

    std::uint32_t
    acquireNode()
    {
        if (freeHead != kNil) {
            const std::uint32_t n = freeHead;
            freeHead = pool[n].next;
            return n;
        }
        pool.emplace_back();
        return static_cast<std::uint32_t>(pool.size() - 1);
    }

    void
    releaseNode(std::uint32_t n)
    {
        pool[n].cb = Callback();
        pool[n].next = freeHead;
        freeHead = n;
    }

    std::vector<Node> pool;
    std::uint32_t freeHead = kNil;
    std::array<std::uint32_t, kNumBuckets> bucketHead = [] {
        std::array<std::uint32_t, kNumBuckets> a{};
        a.fill(kNil);
        return a;
    }();
    std::array<std::uint32_t, kNumBuckets> bucketTail = bucketHead;
    std::array<std::uint64_t, kNumBuckets / 64> occupancy{};
    /** Min-heap over (when, seq) kept with std::push_heap/pop_heap so
     *  the snapshot writer can iterate it (a priority_queue hides its
     *  container). front() is the earliest spilled event. */
    std::vector<SpillRef> spill;

    std::uint64_t pending = 0;
    Cycle curCycle = 0;
    std::uint64_t nextSeq = 0;
    KernelStats kstats;
};

} // namespace protozoa

#endif // PROTOZOA_COMMON_EVENT_QUEUE_HH
