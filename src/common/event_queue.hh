/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global-ordered queue of (cycle, sequence, callback) events.
 * Ties at the same cycle execute in scheduling order, which keeps the
 * simulation deterministic.
 */

#ifndef PROTOZOA_COMMON_EVENT_QUEUE_HH
#define PROTOZOA_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace protozoa {

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Cycle now() const { return curCycle; }

    /** Schedule @p cb to run @p delay cycles from now. */
    void
    schedule(Cycle delay, Callback cb)
    {
        events.push(Event{curCycle + delay, nextSeq++, std::move(cb)});
    }

    /** Schedule @p cb at absolute cycle @p when (>= now). */
    void
    scheduleAt(Cycle when, Callback cb)
    {
        PROTO_ASSERT(when >= curCycle, "scheduling into the past");
        events.push(Event{when, nextSeq++, std::move(cb)});
    }

    bool empty() const { return events.empty(); }

    /** Pop and run the next event. @return false when the queue is dry. */
    bool
    step()
    {
        if (events.empty())
            return false;
        // Moving out of the priority queue requires a const_cast; the
        // element is popped immediately afterwards so this is safe.
        Event ev = std::move(const_cast<Event &>(events.top()));
        events.pop();
        PROTO_ASSERT(ev.when >= curCycle, "time went backwards");
        curCycle = ev.when;
        ev.cb();
        return true;
    }

    /**
     * Run until the queue is empty.
     * @param max_cycles safety net against protocol deadlock/livelock;
     *        panics when exceeded.
     */
    void
    run(Cycle max_cycles = ~Cycle(0))
    {
        while (step()) {
            if (curCycle > max_cycles)
                panic("event queue still busy at cycle %llu "
                      "(deadlock or livelock?)",
                      static_cast<unsigned long long>(curCycle));
        }
    }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Event &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
    Cycle curCycle = 0;
    std::uint64_t nextSeq = 0;
};

} // namespace protozoa

#endif // PROTOZOA_COMMON_EVENT_QUEUE_HH
