/**
 * @file
 * Flat hash containers for the controllers' hot-path bookkeeping.
 *
 *  - AddrTable<V>: an open-addressing map from Addr to V with linear
 *    probing and backshift deletion (no tombstones). Replaces the
 *    per-node unordered_map instances of the directory (active
 *    transactions, waiting queues) and the L1 writeback buffer, whose
 *    node allocations dominated the steady-state heap traffic.
 *
 *  - PooledFifo<T>: an arena of singly-linked FIFO nodes shared by many
 *    queues (one Queue handle per table entry). Nodes recycle through a
 *    free list, so steady-state push/pop performs no allocation.
 *
 * Both containers grow geometrically when they outgrow their initial
 * capacity; growth is a warmup cost, not a steady-state one.
 */

#ifndef PROTOZOA_COMMON_FLAT_TABLE_HH
#define PROTOZOA_COMMON_FLAT_TABLE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace protozoa {

template <typename V>
class AddrTable
{
  public:
    explicit AddrTable(std::size_t initial_capacity = 16)
    {
        std::size_t cap = 8;
        while (cap < initial_capacity * 2)
            cap *= 2;
        slots.resize(cap);
        states.assign(cap, 0);
    }

    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }

    V *
    find(Addr key)
    {
        std::size_t i = indexOf(key);
        while (states[i]) {
            if (slots[i].first == key)
                return &slots[i].second;
            i = (i + 1) & (slots.size() - 1);
        }
        return nullptr;
    }

    const V *
    find(Addr key) const
    {
        return const_cast<AddrTable *>(this)->find(key);
    }

    bool contains(Addr key) const { return find(key) != nullptr; }

    /**
     * Insert (key, value); the key must not be present.
     * @return pointer to the stored value (valid until the next
     *         insert/erase on this table).
     */
    V *
    emplace(Addr key, V value)
    {
        maybeGrow();
        std::size_t i = indexOf(key);
        while (states[i]) {
            PROTO_ASSERT(slots[i].first != key,
                         "AddrTable: duplicate key");
            i = (i + 1) & (slots.size() - 1);
        }
        states[i] = 1;
        slots[i].first = key;
        slots[i].second = std::move(value);
        ++count;
        return &slots[i].second;
    }

    /** Find the value for @p key, default-constructing it if absent. */
    V *
    findOrCreate(Addr key)
    {
        if (V *v = find(key))
            return v;
        return emplace(key, V());
    }

    /** Remove @p key (must be present). Backshift keeps probes intact. */
    void
    erase(Addr key)
    {
        std::size_t i = indexOf(key);
        while (states[i]) {
            if (slots[i].first == key)
                break;
            i = (i + 1) & (slots.size() - 1);
        }
        PROTO_ASSERT(states[i], "AddrTable: erasing absent key");

        const std::size_t mask = slots.size() - 1;
        std::size_t hole = i;
        std::size_t j = (i + 1) & mask;
        while (states[j]) {
            const std::size_t home = indexOf(slots[j].first);
            // Shift j back into the hole iff the hole lies within j's
            // probe path (cyclic interval [home, j)).
            const bool in_path = hole <= j
                ? (home <= hole || home > j)
                : (home <= hole && home > j);
            if (in_path) {
                slots[hole] = std::move(slots[j]);
                hole = j;
            }
            j = (j + 1) & mask;
        }
        states[hole] = 0;
        slots[hole].second = V();
        --count;
    }

    /** Visit every (key, value); iteration order is unspecified. */
    template <typename F>
    void
    forEach(F &&fn) const
    {
        for (std::size_t i = 0; i < slots.size(); ++i) {
            if (states[i])
                fn(slots[i].first, slots[i].second);
        }
    }

  private:
    static std::uint64_t
    mix(Addr key)
    {
        std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::size_t
    indexOf(Addr key) const
    {
        return static_cast<std::size_t>(mix(key)) & (slots.size() - 1);
    }

    void
    maybeGrow()
    {
        if ((count + 1) * 10 < slots.size() * 7)
            return;
        std::vector<std::pair<Addr, V>> old = std::move(slots);
        std::vector<std::uint8_t> old_states = std::move(states);
        slots.clear();
        slots.resize(old.size() * 2);
        states.assign(old.size() * 2, 0);
        count = 0;
        for (std::size_t i = 0; i < old.size(); ++i) {
            if (old_states[i])
                emplace(old[i].first, std::move(old[i].second));
        }
    }

    std::vector<std::pair<Addr, V>> slots;
    std::vector<std::uint8_t> states;
    std::size_t count = 0;
};

/**
 * Arena of FIFO nodes shared by many queues. A Queue is a plain handle
 * (head/tail indices into the pool) that can live inside an AddrTable
 * value and be relocated freely.
 */
template <typename T>
class PooledFifo
{
  public:
    static constexpr std::uint32_t kNil = ~std::uint32_t(0);

    struct Queue
    {
        std::uint32_t head = kNil;
        std::uint32_t tail = kNil;
        std::uint32_t count = 0;

        bool empty() const { return count == 0; }
        std::size_t size() const { return count; }
    };

    explicit PooledFifo(std::size_t initial_nodes = 16)
    {
        nodes.reserve(initial_nodes);
    }

    void
    push(Queue &q, T item)
    {
        const std::uint32_t n = acquire(std::move(item));
        if (q.tail == kNil)
            q.head = n;
        else
            nodes[q.tail].next = n;
        q.tail = n;
        ++q.count;
    }

    T
    popFront(Queue &q)
    {
        PROTO_ASSERT(q.count > 0, "popFront on empty pooled FIFO");
        const std::uint32_t n = q.head;
        q.head = nodes[n].next;
        if (q.head == kNil)
            q.tail = kNil;
        --q.count;
        T out = std::move(nodes[n].item);
        release(n);
        return out;
    }

    const T &front(const Queue &q) const { return nodes[q.head].item; }

    /** Visit the queue front to back. */
    template <typename F>
    void
    forEach(const Queue &q, F &&fn) const
    {
        for (std::uint32_t n = q.head; n != kNil; n = nodes[n].next)
            fn(nodes[n].item);
    }

  private:
    struct Node
    {
        T item;
        std::uint32_t next = kNil;
    };

    std::uint32_t
    acquire(T &&item)
    {
        if (freeHead != kNil) {
            const std::uint32_t n = freeHead;
            freeHead = nodes[n].next;
            nodes[n].item = std::move(item);
            nodes[n].next = kNil;
            return n;
        }
        nodes.push_back(Node{std::move(item), kNil});
        return static_cast<std::uint32_t>(nodes.size() - 1);
    }

    void
    release(std::uint32_t n)
    {
        nodes[n].item = T();
        nodes[n].next = freeHead;
        freeHead = n;
    }

    std::vector<Node> nodes;
    std::uint32_t freeHead = kNil;
};

} // namespace protozoa

#endif // PROTOZOA_COMMON_FLAT_TABLE_HH
