/**
 * @file
 * Fundamental scalar types and address arithmetic shared by every module.
 *
 * The simulator models a 16-core CMP whose memory system operates on
 * 8-byte words grouped into aligned REGIONs (the fixed coherence-metadata
 * granularity of the Protozoa paper, 64 bytes by default).
 */

#ifndef PROTOZOA_COMMON_TYPES_HH
#define PROTOZOA_COMMON_TYPES_HH

#include <cstdint>
#include <cstddef>

namespace protozoa {

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Simulated time in core clock cycles. */
using Cycle = std::uint64_t;

/** Core / L1 identifier. Also indexes mesh nodes. */
using CoreId = std::uint16_t;

/** Tile (shared-L2 slice / directory bank) identifier. */
using TileId = std::uint16_t;

/** Program counter of the instruction performing a memory access. */
using Pc = std::uint64_t;

/** Size of a machine word in bytes; the finest coherence granularity. */
constexpr unsigned kWordBytes = 8;

/** log2(kWordBytes), for shifting addresses to word indices. */
constexpr unsigned kWordShift = 3;

/** Hard upper bound on region size (words) used for fixed-size bitmaps. */
constexpr unsigned kMaxRegionWords = 16;   // supports regions up to 128 B

/** A bitmap with one bit per word of a region. */
using WordMask = std::uint32_t;

/** Bit width of WordMask; all shift guards derive from this, never from
 *  a literal, so widening WordMask for larger regions is a 1-line change. */
constexpr unsigned kWordMaskBits = 8 * sizeof(WordMask);

static_assert(kMaxRegionWords <= kWordMaskBits,
              "WordMask too narrow for kMaxRegionWords; widen WordMask");

/** Round an address down to its containing word. */
constexpr Addr
wordAlign(Addr a)
{
    return a & ~static_cast<Addr>(kWordBytes - 1);
}

/** Index of the word containing @p a within a region of @p region_bytes. */
constexpr unsigned
wordIndexIn(Addr a, unsigned region_bytes)
{
    return static_cast<unsigned>((a & (region_bytes - 1)) >> kWordShift);
}

/** Base (aligned) address of the region containing @p a. */
constexpr Addr
regionBase(Addr a, unsigned region_bytes)
{
    return a & ~static_cast<Addr>(region_bytes - 1);
}

} // namespace protozoa

#endif // PROTOZOA_COMMON_TYPES_HH
