/**
 * @file
 * SmallVec: a vector with inline storage for the first N elements.
 *
 * The simulator's hot-path containers (Amoeba block payloads, snoop
 * scratch buffers, MSHR files) hold a small, statically-bounded number
 * of elements; SmallVec keeps them in-object so the steady-state loop
 * performs no heap allocation. Growth past the inline capacity spills
 * to the heap transparently, so correctness never depends on the
 * bound — only the zero-allocation property does.
 */

#ifndef PROTOZOA_COMMON_SMALL_VEC_HH
#define PROTOZOA_COMMON_SMALL_VEC_HH

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <utility>

#include "common/log.hh"

namespace protozoa {

template <typename T, unsigned N>
class SmallVec
{
  public:
    using value_type = T;
    using iterator = T *;
    using const_iterator = const T *;

    SmallVec() = default;

    SmallVec(std::initializer_list<T> init)
    {
        for (const T &v : init)
            push_back(v);
    }

    SmallVec(const SmallVec &o) { appendAll(o); }

    SmallVec(SmallVec &&o) noexcept { stealOrMove(std::move(o)); }

    SmallVec &
    operator=(const SmallVec &o)
    {
        if (this != &o) {
            clear();
            appendAll(o);
        }
        return *this;
    }

    SmallVec &
    operator=(SmallVec &&o) noexcept
    {
        if (this != &o) {
            destroyAll();
            stealOrMove(std::move(o));
        }
        return *this;
    }

    ~SmallVec() { destroyAll(); }

    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }
    std::size_t capacity() const { return cap; }
    /** True while the elements still live in the inline buffer. */
    bool inlined() const { return data_ == inlineData(); }

    T *data() { return data_; }
    const T *data() const { return data_; }
    iterator begin() { return data_; }
    iterator end() { return data_ + count; }
    const_iterator begin() const { return data_; }
    const_iterator end() const { return data_ + count; }

    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }
    T &front() { return data_[0]; }
    const T &front() const { return data_[0]; }
    T &back() { return data_[count - 1]; }
    const T &back() const { return data_[count - 1]; }

    void
    push_back(const T &v)
    {
        emplace_back(v);
    }

    void
    push_back(T &&v)
    {
        emplace_back(std::move(v));
    }

    template <typename... Args>
    T &
    emplace_back(Args &&...args)
    {
        if (count == cap)
            grow(cap * 2);
        T *slot = data_ + count;
        ::new (static_cast<void *>(slot)) T(std::forward<Args>(args)...);
        ++count;
        return *slot;
    }

    void
    pop_back()
    {
        PROTO_ASSERT(count > 0, "pop_back on empty SmallVec");
        data_[--count].~T();
    }

    void
    clear()
    {
        for (std::size_t i = 0; i < count; ++i)
            data_[i].~T();
        count = 0;
    }

    void
    assign(std::size_t n, const T &v)
    {
        clear();
        reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            push_back(v);
    }

    void
    resize(std::size_t n, const T &v = T())
    {
        while (count > n)
            pop_back();
        reserve(n);
        while (count < n)
            push_back(v);
    }

    void
    reserve(std::size_t n)
    {
        if (n > cap)
            grow(n);
    }

    /** Order-preserving removal of the element at @p idx. */
    void
    erase_at(std::size_t idx)
    {
        PROTO_ASSERT(idx < count, "erase_at out of range");
        for (std::size_t i = idx + 1; i < count; ++i)
            data_[i - 1] = std::move(data_[i]);
        pop_back();
    }

    bool
    operator==(const SmallVec &o) const
    {
        if (count != o.count)
            return false;
        for (std::size_t i = 0; i < count; ++i) {
            if (!(data_[i] == o.data_[i]))
                return false;
        }
        return true;
    }

  private:
    T *inlineData() { return std::launder(reinterpret_cast<T *>(buf)); }
    const T *
    inlineData() const
    {
        return std::launder(reinterpret_cast<const T *>(buf));
    }

    void
    appendAll(const SmallVec &o)
    {
        reserve(o.count);
        for (std::size_t i = 0; i < o.count; ++i)
            push_back(o.data_[i]);
    }

    /** Take o's heap buffer, or move elements out of its inline one. */
    void
    stealOrMove(SmallVec &&o) noexcept
    {
        if (!o.inlined()) {
            data_ = o.data_;
            count = o.count;
            cap = o.cap;
            o.data_ = o.inlineData();
            o.count = 0;
            o.cap = N;
            return;
        }
        data_ = inlineData();
        count = o.count;
        cap = N;
        for (std::size_t i = 0; i < count; ++i) {
            ::new (static_cast<void *>(data_ + i))
                T(std::move(o.data_[i]));
            o.data_[i].~T();
        }
        o.count = 0;
    }

    void
    destroyAll()
    {
        clear();
        if (!inlined())
            ::operator delete(data_);
        data_ = inlineData();
        cap = N;
    }

    void
    grow(std::size_t new_cap)
    {
        if (new_cap < count + 1)
            new_cap = count + 1;
        T *fresh = static_cast<T *>(
            ::operator new(new_cap * sizeof(T)));
        for (std::size_t i = 0; i < count; ++i) {
            ::new (static_cast<void *>(fresh + i))
                T(std::move(data_[i]));
            data_[i].~T();
        }
        if (!inlined())
            ::operator delete(data_);
        data_ = fresh;
        cap = new_cap;
    }

    alignas(T) unsigned char buf[N * sizeof(T)];
    T *data_ = inlineData();
    std::size_t count = 0;
    std::size_t cap = N;
};

} // namespace protozoa

#endif // PROTOZOA_COMMON_SMALL_VEC_HH
