/**
 * @file
 * Busy-wait synchronization primitives for the sharded parallel engine.
 *
 * The engine's windows are microseconds long, so both primitives are
 * built for short critical sections and short waits: a test-and-set
 * spinlock (guards the striped value stores, whose critical section is
 * one page probe) and a centralized sense-reversing barrier (the
 * per-window rendezvous). Both spin with a CPU relax hint and fall back
 * to yielding after a bounded number of spins, so oversubscribed runs
 * (more shard threads than cores, e.g. the 8-thread benchmark point on
 * a 4-core host) degrade gracefully instead of livelocking the
 * scheduler.
 *
 * Memory ordering: SpinBarrier::arriveAndWait() establishes
 * happens-before from every write sequenced before any party's arrival
 * to every read after any party's return (acquire/release through the
 * arrival counter's RMW chain and the generation word). The engine
 * leans on this: cross-shard inbox vectors are plain unsynchronized
 * containers, written only in the phase before a barrier and read only
 * in the phase after it.
 */

#ifndef PROTOZOA_COMMON_SPIN_SYNC_HH
#define PROTOZOA_COMMON_SPIN_SYNC_HH

#include <atomic>
#include <cstdint>
#include <thread>

namespace protozoa {

/** Pause/yield hint inside a busy-wait loop. */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/** Minimal test-and-set spinlock (BasicLockable). */
class SpinLock
{
  public:
    void
    lock()
    {
        unsigned spins = 0;
        while (flag.test_and_set(std::memory_order_acquire)) {
            if (++spins >= kSpinsBeforeYield) {
                spins = 0;
                std::this_thread::yield();
            } else {
                cpuRelax();
            }
        }
    }

    void unlock() { flag.clear(std::memory_order_release); }

  private:
    static constexpr unsigned kSpinsBeforeYield = 1u << 12;

    std::atomic_flag flag = ATOMIC_FLAG_INIT;
};

/**
 * Centralized generation-counting barrier for a fixed party count.
 * Reusable: each arriveAndWait() call is one rendezvous.
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(unsigned parties_) : parties(parties_) {}

    void
    arriveAndWait()
    {
        if (parties <= 1)
            return;
        const std::uint64_t gen =
            generation.load(std::memory_order_acquire);
        if (arrived.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            parties) {
            arrived.store(0, std::memory_order_relaxed);
            generation.store(gen + 1, std::memory_order_release);
            return;
        }
        unsigned spins = 0;
        while (generation.load(std::memory_order_acquire) == gen) {
            if (++spins >= kSpinsBeforeYield) {
                spins = 0;
                std::this_thread::yield();
            } else {
                cpuRelax();
            }
        }
    }

  private:
    static constexpr unsigned kSpinsBeforeYield = 1u << 12;

    unsigned parties;
    std::atomic<unsigned> arrived{0};
    std::atomic<std::uint64_t> generation{0};
};

} // namespace protozoa

#endif // PROTOZOA_COMMON_SPIN_SYNC_HH
