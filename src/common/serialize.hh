/**
 * @file
 * Byte-level serialization primitives for the snapshot subsystem.
 *
 * Deliberately minimal: a Serializer appends raw little-endian bytes to
 * a growable buffer (or straight to a file), a Deserializer reads them
 * back with bounds checking. No exceptions — a short or corrupt input
 * flips a sticky fail flag and every subsequent read returns zeroed
 * values, so callers validate once at the end (or at section
 * boundaries) and surface a clear error string instead of UB.
 *
 * Only trivially-copyable types may cross this boundary raw; anything
 * with internal pointers (flat tables, pools, SmallVecs) is serialized
 * element-wise by its owner. Format compatibility is governed by
 * kSnapshotVersion in snapshot_tags.hh: any layout change to a
 * serialized struct must bump it (see DESIGN.md §13).
 */

#ifndef PROTOZOA_COMMON_SERIALIZE_HH
#define PROTOZOA_COMMON_SERIALIZE_HH

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

namespace protozoa {

class Serializer
{
  public:
    void
    writeBytes(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const std::uint8_t *>(p);
        buf.insert(buf.end(), b, b + n);
    }

    template <typename T>
    void
    writeRaw(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "raw serialization needs a trivially copyable type");
        writeBytes(&v, sizeof(T));
    }

    void writeU8(std::uint8_t v) { writeRaw(v); }
    void writeU16(std::uint16_t v) { writeRaw(v); }
    void writeU32(std::uint32_t v) { writeRaw(v); }
    void writeU64(std::uint64_t v) { writeRaw(v); }

    void
    writeString(const std::string &s)
    {
        writeU64(s.size());
        writeBytes(s.data(), s.size());
    }

    /** Length-prefixed vector of trivially-copyable elements. */
    template <typename T>
    void
    writeVecRaw(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "raw serialization needs a trivially copyable type");
        writeU64(v.size());
        if (!v.empty())
            writeBytes(v.data(), v.size() * sizeof(T));
    }

    const std::vector<std::uint8_t> &bytes() const { return buf; }
    std::size_t size() const { return buf.size(); }

    /** Atomically-ish persist the buffer (write temp + rename). */
    bool
    writeFile(const std::string &path, std::string *err = nullptr) const
    {
        const std::string tmp = path + ".tmp";
        std::FILE *f = std::fopen(tmp.c_str(), "wb");
        if (!f) {
            if (err)
                *err = "cannot open " + tmp + " for writing";
            return false;
        }
        const bool ok =
            buf.empty() ||
            std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
        const bool closed = std::fclose(f) == 0;
        if (!ok || !closed) {
            if (err)
                *err = "short write to " + tmp;
            std::remove(tmp.c_str());
            return false;
        }
        if (std::rename(tmp.c_str(), path.c_str()) != 0) {
            if (err)
                *err = "cannot rename " + tmp + " to " + path;
            std::remove(tmp.c_str());
            return false;
        }
        return true;
    }

  private:
    std::vector<std::uint8_t> buf;
};

class Deserializer
{
  public:
    Deserializer(const std::uint8_t *data, std::size_t n)
        : base(data), len(n)
    {
    }

    explicit Deserializer(const std::vector<std::uint8_t> &v)
        : Deserializer(v.data(), v.size())
    {
    }

    static bool
    readFileInto(const std::string &path, std::vector<std::uint8_t> &out,
                 std::string *err = nullptr)
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        if (!f) {
            if (err)
                *err = "cannot open " + path;
            return false;
        }
        std::fseek(f, 0, SEEK_END);
        const long sz = std::ftell(f);
        std::fseek(f, 0, SEEK_SET);
        if (sz < 0) {
            std::fclose(f);
            if (err)
                *err = "cannot size " + path;
            return false;
        }
        out.resize(static_cast<std::size_t>(sz));
        const bool ok =
            out.empty() ||
            std::fread(out.data(), 1, out.size(), f) == out.size();
        std::fclose(f);
        if (!ok) {
            if (err)
                *err = "short read from " + path;
            return false;
        }
        return true;
    }

    bool
    readBytes(void *p, std::size_t n)
    {
        if (fail || n > len - pos) {
            fail = true;
            std::memset(p, 0, n);
            return false;
        }
        std::memcpy(p, base + pos, n);
        pos += n;
        return true;
    }

    template <typename T>
    bool
    readRaw(T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "raw serialization needs a trivially copyable type");
        return readBytes(&v, sizeof(T));
    }

    std::uint8_t readU8() { std::uint8_t v = 0; readRaw(v); return v; }
    std::uint16_t readU16() { std::uint16_t v = 0; readRaw(v); return v; }
    std::uint32_t readU32() { std::uint32_t v = 0; readRaw(v); return v; }
    std::uint64_t readU64() { std::uint64_t v = 0; readRaw(v); return v; }

    bool
    readString(std::string &s)
    {
        const std::uint64_t n = readU64();
        if (fail || n > remaining()) {
            fail = true;
            s.clear();
            return false;
        }
        s.assign(reinterpret_cast<const char *>(base + pos),
                 static_cast<std::size_t>(n));
        pos += static_cast<std::size_t>(n);
        return true;
    }

    template <typename T>
    bool
    readVecRaw(std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const std::uint64_t n = readU64();
        if (fail || n * sizeof(T) > remaining()) {
            fail = true;
            v.clear();
            return false;
        }
        v.resize(static_cast<std::size_t>(n));
        if (n)
            readBytes(v.data(), v.size() * sizeof(T));
        return !fail;
    }

    std::size_t remaining() const { return len - pos; }
    bool atEnd() const { return pos == len; }
    bool failed() const { return fail; }
    /** Mark the stream bad (caller-detected inconsistency). */
    void setFailed() { fail = true; }

  private:
    const std::uint8_t *base;
    std::size_t len;
    std::size_t pos = 0;
    bool fail = false;
};

} // namespace protozoa

#endif // PROTOZOA_COMMON_SERIALIZE_HH
