/**
 * @file
 * WordRange: closed interval of word indices within one region.
 *
 * Amoeba blocks, coherence probes, and data messages all name the words
 * they cover with a WordRange, exactly like the <START, END> markers of
 * the Amoeba-Cache 4-tuple in the paper (Fig. 2). Ranges never span a
 * region boundary.
 */

#ifndef PROTOZOA_COMMON_WORD_RANGE_HH
#define PROTOZOA_COMMON_WORD_RANGE_HH

#include <algorithm>
#include <bit>
#include <cassert>
#include <string>

#include "common/types.hh"

namespace protozoa {

/**
 * Closed interval [start, end] of word indices inside a region.
 *
 * A default-constructed range is the canonical empty range. All word
 * indices are region-relative (0 .. regionWords-1).
 */
struct WordRange
{
    /** First word covered (inclusive). */
    unsigned start = 1;
    /** Last word covered (inclusive). */
    unsigned end = 0;

    constexpr WordRange() = default;

    constexpr WordRange(unsigned s, unsigned e) : start(s), end(e) {}

    /** True when the range covers no words. */
    constexpr bool empty() const { return end < start; }

    /** Number of words covered. */
    constexpr unsigned words() const { return empty() ? 0 : end - start + 1; }

    /** Number of bytes covered. */
    constexpr unsigned bytes() const { return words() * kWordBytes; }

    /** True when word @p w lies within the range. */
    constexpr bool
    contains(unsigned w) const
    {
        return !empty() && w >= start && w <= end;
    }

    /** True when @p o is entirely within this range. */
    constexpr bool
    covers(const WordRange &o) const
    {
        return !o.empty() && !empty() && o.start >= start && o.end <= end;
    }

    /** True when the two ranges share at least one word. */
    constexpr bool
    overlaps(const WordRange &o) const
    {
        return !empty() && !o.empty() &&
            start <= o.end && o.start <= end;
    }

    /** Intersection of the two ranges (possibly empty). */
    constexpr WordRange
    intersect(const WordRange &o) const
    {
        if (!overlaps(o))
            return WordRange();
        return WordRange(std::max(start, o.start), std::min(end, o.end));
    }

    /** Smallest range covering both inputs (inputs may be disjoint). */
    constexpr WordRange
    span(const WordRange &o) const
    {
        if (empty())
            return o;
        if (o.empty())
            return *this;
        return WordRange(std::min(start, o.start), std::max(end, o.end));
    }

    /** Bitmask with one bit set per covered word. */
    constexpr WordMask
    mask() const
    {
        if (empty())
            return 0;
        assert(end < kMaxRegionWords);
        WordMask all = (end + 1 >= kWordMaskBits)
                           ? ~WordMask(0)
                           : ((WordMask(1) << (end + 1)) - 1);
        return all & ~((WordMask(1) << start) - 1);
    }

    constexpr bool
    operator==(const WordRange &o) const
    {
        return (empty() && o.empty()) ||
            (start == o.start && end == o.end);
    }

    /** A full-region range for a region of @p region_words words. */
    static constexpr WordRange
    full(unsigned region_words)
    {
        return WordRange(0, region_words - 1);
    }

    /** Human-readable "[s-e]" form for logs and tests. */
    std::string toString() const;
};

// ---- WordMask algebra -------------------------------------------------
//
// The bit-parallel data path works on WordMasks directly: a mask is
// the canonical set-of-words representation, a WordRange names one
// contiguous run of it. These helpers convert between the two without
// per-bit loops, so every bulk copy can be a handful of memcpy calls.

/** True when @p mask is one contiguous run of set bits (or empty). */
constexpr bool
maskIsContiguous(WordMask mask)
{
    if (mask == 0)
        return true;
    const WordMask norm =
        mask >> static_cast<unsigned>(std::countr_zero(mask));
    return (norm & (norm + 1)) == 0;
}

/** The single contiguous run of @p mask (must be contiguous, non-0). */
constexpr WordRange
rangeOfMask(WordMask mask)
{
    assert(mask != 0 && maskIsContiguous(mask));
    const unsigned start =
        static_cast<unsigned>(std::countr_zero(mask));
    const unsigned end = kWordMaskBits - 1 -
        static_cast<unsigned>(std::countl_zero(mask));
    return WordRange(start, end);
}

/**
 * Decompose @p mask into its maximal contiguous runs, ascending, and
 * call @p fn with each run as a WordRange. A dense mask costs one
 * callback; a fully sparse one degrades to popcount(mask) callbacks.
 */
template <typename F>
constexpr void
forEachMaskRun(WordMask mask, F &&fn)
{
    while (mask) {
        const unsigned start =
            static_cast<unsigned>(std::countr_zero(mask));
        const unsigned len =
            static_cast<unsigned>(std::countr_one(mask >> start));
        const WordRange run(start, start + len - 1);
        fn(run);
        mask &= ~run.mask();
    }
}

/** Number of maximal contiguous runs in @p mask. */
unsigned maskRunCount(WordMask mask);

/**
 * Shrink @p pred so that it still covers @p need but does not overlap
 * @p obstacle.
 *
 * Used when clipping a predicted fetch range against blocks already
 * present in the cache. @p obstacle must not itself overlap @p need.
 *
 * @return the clipped range (always a superset of @p need).
 */
WordRange clipAgainst(const WordRange &pred, const WordRange &need,
                      const WordRange &obstacle);

} // namespace protozoa

#endif // PROTOZOA_COMMON_WORD_RANGE_HH
