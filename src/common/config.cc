#include "common/config.hh"

namespace protozoa {

const char *
protocolName(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::MESI:         return "MESI";
      case ProtocolKind::ProtozoaSW:   return "Protozoa-SW";
      case ProtocolKind::ProtozoaSWMR: return "Protozoa-SW+MR";
      case ProtocolKind::ProtozoaMW:   return "Protozoa-MW";
    }
    return "?";
}

} // namespace protozoa
