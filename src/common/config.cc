#include "common/config.hh"

#include <cstdlib>

namespace protozoa {

unsigned
envSimThreads(unsigned fallback)
{
    if (const char *env = std::getenv("PROTOZOA_SIM_THREADS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return fallback;
}

const char *
protocolName(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::MESI:         return "MESI";
      case ProtocolKind::ProtozoaSW:   return "Protozoa-SW";
      case ProtocolKind::ProtozoaSWMR: return "Protozoa-SW+MR";
      case ProtocolKind::ProtozoaMW:   return "Protozoa-MW";
    }
    return "?";
}

} // namespace protozoa
