/**
 * @file
 * Wide core/node masks: the one set type for every per-core bitmask in
 * the simulator (directory sharer sets, explorer emission targets,
 * Bloom query results, invariant-sweep writer sets).
 *
 * The machine scales past the paper's 16-core 4x4 mesh up to
 * kMaxCores, so a single uint64_t no longer fits a sharer set. CoreSet
 * is a fixed array of words with bulk word-parallel algebra (union,
 * difference, intersection tests run one AND/OR per word, never per
 * core) and no heap storage, so it can live inside L2 directory
 * entries and on the probe hot path without allocating.
 *
 * Fingerprint compatibility: word 0 of a CoreSet is bit-identical to
 * the old single-uint64_t representation, so <=64-core protocheck
 * memoization digests and the bitident_guard stats digest are
 * unchanged — consumers feed raw() (word 0) always and the high words
 * only when highAny() (see check/state_fingerprint.cc).
 */

#ifndef PROTOZOA_COMMON_CORE_MASK_HH
#define PROTOZOA_COMMON_CORE_MASK_HH

#include <array>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>

#include "common/log.hh"
#include "common/types.hh"

namespace protozoa {

/** Hard upper bound on cores (= mesh nodes = L2 tiles) per system. */
constexpr unsigned kMaxCores = 256;

/** A set of cores, stored as a fixed multi-word bitmask. */
class CoreSet
{
  public:
    static constexpr unsigned kWords = kMaxCores / 64;

    bool
    test(CoreId c) const
    {
        PROTO_ASSERT(c < kMaxCores, "core %u out of CoreSet range",
                     unsigned(c));
        return (w[c >> 6] >> (c & 63)) & 1;
    }

    void
    set(CoreId c)
    {
        PROTO_ASSERT(c < kMaxCores, "core %u out of CoreSet range",
                     unsigned(c));
        w[c >> 6] |= std::uint64_t(1) << (c & 63);
    }

    void
    reset(CoreId c)
    {
        PROTO_ASSERT(c < kMaxCores, "core %u out of CoreSet range",
                     unsigned(c));
        w[c >> 6] &= ~(std::uint64_t(1) << (c & 63));
    }

    bool
    none() const
    {
        std::uint64_t acc = 0;
        for (const std::uint64_t v : w)
            acc |= v;
        return acc == 0;
    }

    bool any() const { return !none(); }

    unsigned
    count() const
    {
        unsigned n = 0;
        for (const std::uint64_t v : w)
            n += static_cast<unsigned>(std::popcount(v));
        return n;
    }

    /** True when the set is exactly { @p c }. */
    bool
    only(CoreId c) const
    {
        PROTO_ASSERT(c < kMaxCores, "core %u out of CoreSet range",
                     unsigned(c));
        for (unsigned i = 0; i < kWords; ++i) {
            const std::uint64_t want =
                i == (c >> 6) ? std::uint64_t(1) << (c & 63) : 0;
            if (w[i] != want)
                return false;
        }
        return true;
    }

    /** Visit members in ascending core order. */
    template <typename F>
    void
    forEach(F &&fn) const
    {
        for (unsigned i = 0; i < kWords; ++i) {
            std::uint64_t rest = w[i];
            while (rest) {
                const int c = __builtin_ctzll(rest);
                rest &= rest - 1;
                fn(static_cast<CoreId>(i * 64 + c));
            }
        }
    }

    /**
     * Word 0 as a plain mask: bit-identical to the retired
     * single-uint64_t representation for <=64-core systems
     * (fingerprints, diagnostics). Wider sets report their high words
     * via word()/highAny().
     */
    std::uint64_t raw() const { return w[0]; }

    /** Word @p i of the mask (cores 64*i .. 64*i+63). */
    std::uint64_t
    word(unsigned i) const
    {
        PROTO_ASSERT(i < kWords, "CoreSet word index out of range");
        return w[i];
    }

    /** Any member above core 63? (fingerprint high-word gate). */
    bool
    highAny() const
    {
        std::uint64_t acc = 0;
        for (unsigned i = 1; i < kWords; ++i)
            acc |= w[i];
        return acc != 0;
    }

    static CoreSet
    fromRaw(std::uint64_t mask)
    {
        CoreSet out;
        out.w[0] = mask;
        return out;
    }

    /** The set {0, 1, ..., n-1}; well-defined for every n <= kMaxCores
     *  (replaces the shift-overflow-prone `(1 << n) - 1` idiom). */
    static CoreSet
    firstN(unsigned n)
    {
        PROTO_ASSERT(n <= kMaxCores, "firstN(%u) exceeds kMaxCores", n);
        CoreSet out;
        for (unsigned i = 0; i < kWords; ++i) {
            if (n >= (i + 1) * 64)
                out.w[i] = ~std::uint64_t(0);
            else if (n > i * 64)
                out.w[i] =
                    (std::uint64_t(1) << (n - i * 64)) - 1;
        }
        return out;
    }

    /** Set difference: members of this set not in @p o. */
    CoreSet
    minus(const CoreSet &o) const
    {
        CoreSet out;
        for (unsigned i = 0; i < kWords; ++i)
            out.w[i] = w[i] & ~o.w[i];
        return out;
    }

    /** Non-empty intersection test, one AND per word. */
    bool
    intersects(const CoreSet &o) const
    {
        std::uint64_t acc = 0;
        for (unsigned i = 0; i < kWords; ++i)
            acc |= w[i] & o.w[i];
        return acc != 0;
    }

    CoreSet &
    operator|=(const CoreSet &o)
    {
        for (unsigned i = 0; i < kWords; ++i)
            w[i] |= o.w[i];
        return *this;
    }

    friend CoreSet
    operator|(CoreSet a, const CoreSet &b)
    {
        a |= b;
        return a;
    }

    bool operator==(const CoreSet &) const = default;

    /**
     * Minimal hex image for diagnostics: identical to printing raw()
     * in hex for <=64-core sets; wider sets prepend their high words
     * zero-padded. Allocates — cold paths only.
     */
    std::string
    toHex() const
    {
        unsigned top = 0;
        for (unsigned i = 1; i < kWords; ++i) {
            if (w[i] != 0)
                top = i;
        }
        char buf[kWords * 16 + 1];
        int len = std::snprintf(buf, sizeof(buf), "%llx",
                                static_cast<unsigned long long>(w[top]));
        for (unsigned i = top; i-- > 0;) {
            len += std::snprintf(buf + len, sizeof(buf) - len,
                                 "%016llx",
                                 static_cast<unsigned long long>(w[i]));
        }
        return std::string(buf, static_cast<std::size_t>(len));
    }

  private:
    std::array<std::uint64_t, kWords> w{};
};

} // namespace protozoa

#endif // PROTOZOA_COMMON_CORE_MASK_HH
