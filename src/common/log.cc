#include "common/log.hh"

#include <cstdio>
#include <cstdlib>

namespace protozoa {

std::atomic<bool> debugTraceEnabled{false};

namespace {

void
vreport(const char *tag, const char *fmt, std::va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

} // namespace

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

void
dtrace(const char *fmt, ...)
{
    if (!debugTraceEnabled.load(std::memory_order_relaxed))
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
    va_end(ap);
}

} // namespace protozoa
