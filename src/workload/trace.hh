/**
 * @file
 * Trace records and trace sources: the execution front end.
 *
 * The paper drives GEMS with Pin traces of real applications; we drive
 * the same protocol machinery with deterministic synthetic traces (see
 * DESIGN.md for the substitution argument). A TraceRecord is one
 * memory reference plus the number of non-memory instructions retired
 * since the previous one.
 */

#ifndef PROTOZOA_WORKLOAD_TRACE_HH
#define PROTOZOA_WORKLOAD_TRACE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"

namespace protozoa {

/** One memory reference in a core's instruction stream. */
struct TraceRecord
{
    Addr addr = 0;
    Pc pc = 0;
    bool isWrite = false;
    /** Non-memory instructions executed before this reference. */
    std::uint16_t gapInstrs = 2;
};

/** Pull-based source of trace records for one core. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** @return false when the trace is exhausted. */
    virtual bool next(TraceRecord &out) = 0;

    /** Records consumed so far (the snapshot cursor). */
    virtual std::uint64_t cursor() const { return 0; }

    /**
     * Reposition so the next() call returns record @p n of the stream.
     * Used by snapshot restore to resume a trace mid-stream.
     * @return false when the source cannot seek.
     */
    virtual bool seekTo(std::uint64_t n) { return n == 0; }
};

/** A trace fully materialized in memory. */
class VectorTrace : public TraceSource
{
  public:
    explicit VectorTrace(std::vector<TraceRecord> recs)
        : records(std::move(recs))
    {
    }

    bool
    next(TraceRecord &out) override
    {
        if (pos >= records.size())
            return false;
        out = records[pos++];
        return true;
    }

    std::uint64_t cursor() const override { return pos; }

    bool
    seekTo(std::uint64_t n) override
    {
        if (n > records.size())
            return false;
        pos = static_cast<std::size_t>(n);
        return true;
    }

    std::size_t size() const { return records.size(); }

  private:
    std::vector<TraceRecord> records;
    std::size_t pos = 0;
};

/** Per-core traces for a whole system run. */
using Workload = std::vector<std::unique_ptr<TraceSource>>;

} // namespace protozoa

#endif // PROTOZOA_WORKLOAD_TRACE_HH
