/**
 * @file
 * The paper's 28-application benchmark roster (Table 5), synthesized
 * from the archetypes in archetypes.hh.
 *
 * Each profile is calibrated to the qualitative properties the paper
 * reports for the real application (Table 1: optimal block size,
 * USED%, presence of false sharing; Fig. 11/12 sharing and granularity
 * character). Absolute miss rates are not expected to match the
 * paper's; the protocol-vs-protocol *shape* is.
 */

#ifndef PROTOZOA_WORKLOAD_BENCHMARKS_HH
#define PROTOZOA_WORKLOAD_BENCHMARKS_HH

#include <functional>
#include <string>
#include <vector>

#include "common/config.hh"
#include "workload/trace.hh"

namespace protozoa {

struct BenchSpec
{
    std::string name;
    /** Originating suite in the paper (Table 5). */
    std::string suite;
    /** Build the per-core traces; @p scale multiplies reference counts. */
    std::function<Workload(const SystemConfig &, double)> gen;
};

/** All 28 profiles, in the paper's figure order. */
const std::vector<BenchSpec> &paperBenchmarks();

/** Look up a profile by name; fatal() when unknown. */
const BenchSpec &findBenchmark(const std::string &name);

} // namespace protozoa

#endif // PROTOZOA_WORKLOAD_BENCHMARKS_HH
