#include "workload/archetypes.hh"

#include <algorithm>

#include "common/log.hh"

namespace protozoa {

TraceBuilder::TraceBuilder(unsigned cores, std::uint64_t seed)
    : perCore(cores), generator(seed)
{
}

void
TraceBuilder::load(unsigned core, Addr addr, Pc pc, unsigned gap)
{
    TraceRecord rec;
    rec.addr = wordAlign(addr);
    rec.pc = pc;
    rec.isWrite = false;
    rec.gapInstrs = static_cast<std::uint16_t>(gap);
    perCore[core].push_back(rec);
}

void
TraceBuilder::store(unsigned core, Addr addr, Pc pc, unsigned gap)
{
    TraceRecord rec;
    rec.addr = wordAlign(addr);
    rec.pc = pc;
    rec.isWrite = true;
    rec.gapInstrs = static_cast<std::uint16_t>(gap);
    perCore[core].push_back(rec);
}

Workload
TraceBuilder::build()
{
    Workload out;
    for (auto &recs : perCore)
        out.push_back(std::make_unique<VectorTrace>(std::move(recs)));
    perCore.clear();
    return out;
}

namespace {

Addr
wordAddr(Addr base, std::uint64_t word_index)
{
    return base + word_index * kWordBytes;
}

} // namespace

void
genPrivateStream(TraceBuilder &tb, unsigned cores, Addr base,
                 std::uint64_t elems, unsigned record_words,
                 unsigned touch_words, double write_frac, unsigned gap,
                 Pc pc_base, unsigned passes)
{
    PROTO_ASSERT(touch_words >= 1 && touch_words <= record_words,
                 "bad stream shape");
    for (unsigned c = 0; c < cores; ++c) {
        const Addr my_base =
            base + static_cast<Addr>(c) * elems * record_words *
                       kWordBytes;
        for (unsigned pass = 0; pass < passes; ++pass) {
            for (std::uint64_t e = 0; e < elems; ++e) {
                const Addr rec_base =
                    wordAddr(my_base, e * record_words);
                const bool write_last = tb.rng().chance(write_frac);
                for (unsigned w = 0; w < touch_words; ++w) {
                    const Pc pc = pc_base + 4 * w;
                    const Addr a = wordAddr(rec_base, w);
                    if (write_last && w == touch_words - 1)
                        tb.store(c, a, pc, gap);
                    else
                        tb.load(c, a, pc, gap);
                }
            }
        }
    }
}

void
genFalseShareCounters(TraceBuilder &tb, unsigned cores, Addr base,
                      std::uint64_t iters, unsigned spacing_words,
                      unsigned gap, Pc pc_base)
{
    for (unsigned c = 0; c < cores; ++c) {
        const Addr counter =
            wordAddr(base, static_cast<std::uint64_t>(c) * spacing_words);
        for (std::uint64_t i = 0; i < iters; ++i) {
            tb.load(c, counter, pc_base, gap);
            tb.store(c, counter, pc_base + 4, gap);
        }
    }
}

void
genHistogram(TraceBuilder &tb, unsigned cores, Addr input_base,
             Addr bucket_base, std::uint64_t elems, unsigned buckets,
             double preference, unsigned gap, Pc pc_base)
{
    const unsigned window = std::max(1u, buckets / cores);
    for (unsigned c = 0; c < cores; ++c) {
        const Addr my_input =
            input_base + static_cast<Addr>(c) * elems * kWordBytes;
        for (std::uint64_t e = 0; e < elems; ++e) {
            tb.load(c, wordAddr(my_input, e), pc_base, gap);
            unsigned b;
            if (tb.rng().chance(preference)) {
                // Core-interleaved buckets: cores update disjoint
                // words that share regions (pure false sharing).
                b = c + cores *
                    static_cast<unsigned>(tb.rng().below(window));
            } else {
                b = static_cast<unsigned>(tb.rng().below(buckets));
            }
            const Addr bucket = wordAddr(bucket_base, b % buckets);
            tb.load(c, bucket, pc_base + 4, gap);
            tb.store(c, bucket, pc_base + 8, gap);
        }
    }
}

void
genSharedReadOnly(TraceBuilder &tb, unsigned cores, Addr table_base,
                  std::uint64_t table_words, Addr priv_base,
                  std::uint64_t accesses, unsigned run_words,
                  unsigned gap, Pc pc_base)
{
    for (unsigned c = 0; c < cores; ++c) {
        const Addr my_acc = priv_base + static_cast<Addr>(c) * 1024;
        for (std::uint64_t i = 0; i < accesses; ++i) {
            const std::uint64_t start =
                tb.rng().below(std::max<std::uint64_t>(
                    1, table_words - run_words));
            for (unsigned w = 0; w < run_words; ++w)
                tb.load(c, wordAddr(table_base, start + w),
                        pc_base + 4 * w, gap);
            // Private accumulator update.
            tb.load(c, my_acc, pc_base + 64, gap);
            tb.store(c, my_acc, pc_base + 68, gap);
        }
    }
}

void
genProducerConsumer(TraceBuilder &tb, unsigned cores, Addr base,
                    unsigned buf_records, unsigned record_words,
                    unsigned produce_words, unsigned consume_words,
                    unsigned rounds, unsigned gap, Pc pc_base)
{
    PROTO_ASSERT(produce_words <= record_words &&
                 consume_words <= record_words,
                 "bad producer/consumer shape");
    const unsigned buf_words = buf_records * record_words;
    auto buf_of = [&](unsigned core) {
        return base + static_cast<Addr>(core) * buf_words * kWordBytes;
    };
    for (unsigned c = 0; c < cores; ++c) {
        const unsigned producer = (c + cores - 1) % cores;
        for (unsigned r = 0; r < rounds; ++r) {
            // Produce into own buffer.
            for (unsigned rec = 0; rec < buf_records; ++rec)
                for (unsigned w = 0; w < produce_words; ++w)
                    tb.store(c,
                             wordAddr(buf_of(c), rec * record_words + w),
                             pc_base + 4 * w, gap);
            // Consume the predecessor's buffer.
            for (unsigned rec = 0; rec < buf_records; ++rec)
                for (unsigned w = 0; w < consume_words; ++w)
                    tb.load(c,
                            wordAddr(buf_of(producer),
                                     rec * record_words + w),
                            pc_base + 256 + 4 * w, gap);
        }
    }
}

void
genIrregular(TraceBuilder &tb, unsigned cores, Addr shared_base,
             std::uint64_t shared_words, Addr priv_base,
             std::uint64_t priv_words, std::uint64_t accesses,
             double shared_frac, unsigned max_run, double write_frac,
             unsigned gap, Pc pc_base)
{
    for (unsigned c = 0; c < cores; ++c) {
        const Addr my_priv =
            priv_base + static_cast<Addr>(c) * priv_words * kWordBytes;
        for (std::uint64_t i = 0; i < accesses; ++i) {
            const bool shared = tb.rng().chance(shared_frac);
            const std::uint64_t space =
                shared ? shared_words : priv_words;
            const Addr area = shared ? shared_base : my_priv;
            // The heap is a soup of fixed-size records: the record
            // slot determines the object's size deterministically, as
            // allocation does in a real program.
            const std::uint64_t records =
                std::max<std::uint64_t>(1, space / max_run);
            const std::uint64_t rec = tb.rng().below(records);
            const std::uint64_t start = rec * max_run;
            const unsigned run = 1 + static_cast<unsigned>(
                (rec * 0x9e3779b97f4a7c15ULL >> 32) % max_run);
            for (unsigned w = 0; w < run; ++w) {
                const Addr a = wordAddr(area, start + w);
                // Distinct code site per (area, run length, position):
                // real applications touch records of different sizes
                // from different loops.
                const Pc pc = pc_base + (shared ? 1024 : 0) +
                    64 * run + 4 * w;
                if (tb.rng().chance(write_frac))
                    tb.store(c, a, pc, gap);
                else
                    tb.load(c, a, pc, gap);
            }
        }
    }
}

void
genStencil(TraceBuilder &tb, unsigned cores, Addr base,
           unsigned rows_per_core, unsigned cols_words, unsigned iters,
           unsigned gap, Pc pc_base)
{
    const unsigned total_rows = cores * rows_per_core;
    auto row_addr = [&](unsigned row) {
        return base + static_cast<Addr>(row) * cols_words * kWordBytes;
    };
    for (unsigned c = 0; c < cores; ++c) {
        for (unsigned it = 0; it < iters; ++it) {
            for (unsigned r = c * rows_per_core;
                 r < (c + 1) * rows_per_core; ++r) {
                const unsigned up = r == 0 ? total_rows - 1 : r - 1;
                const unsigned down = (r + 1) % total_rows;
                for (unsigned w = 0; w < cols_words; ++w) {
                    tb.load(c, wordAddr(row_addr(up), w), pc_base, gap);
                    tb.load(c, wordAddr(row_addr(down), w), pc_base + 4,
                            gap);
                    tb.load(c, wordAddr(row_addr(r), w), pc_base + 8,
                            gap);
                    tb.store(c, wordAddr(row_addr(r), w), pc_base + 12,
                             gap);
                }
            }
        }
    }
}

void
genPointerChase(TraceBuilder &tb, unsigned cores, Addr base,
                std::uint64_t nodes, unsigned node_words,
                unsigned touch_words, std::uint64_t steps,
                double write_frac, double shared_frac, unsigned gap,
                Pc pc_base)
{
    for (unsigned c = 0; c < cores; ++c) {
        const Addr my_base =
            base + (static_cast<Addr>(c) + 1) * nodes * node_words *
                       kWordBytes;
        for (std::uint64_t s = 0; s < steps; ++s) {
            const bool shared = tb.rng().chance(shared_frac);
            const Addr area = shared ? base : my_base;
            const std::uint64_t node = tb.rng().below(nodes);
            const Addr node_base =
                wordAddr(area, node * node_words);
            for (unsigned w = 0; w < touch_words; ++w) {
                const Addr a = wordAddr(node_base, w);
                const Pc pc = pc_base + (shared ? 64 : 0) + 4 * w;
                if (w == touch_words - 1 && tb.rng().chance(write_frac))
                    tb.store(c, a, pc, gap);
                else
                    tb.load(c, a, pc, gap);
            }
        }
    }
}

void
genMigratory(TraceBuilder &tb, unsigned cores, Addr base,
             unsigned objects, unsigned obj_words, unsigned rounds,
             unsigned gap, Pc pc_base)
{
    for (unsigned c = 0; c < cores; ++c) {
        for (unsigned r = 0; r < rounds; ++r) {
            // Visit objects in a per-core rotated order so ownership
            // migrates between cores over time.
            for (unsigned o = 0; o < objects; ++o) {
                const unsigned obj = (o + c + r) % objects;
                const Addr obj_base =
                    wordAddr(base,
                             static_cast<std::uint64_t>(obj) * obj_words);
                for (unsigned w = 0; w < obj_words; ++w)
                    tb.load(c, wordAddr(obj_base, w), pc_base + 4 * w,
                            gap);
                for (unsigned w = 0; w < obj_words; ++w)
                    tb.store(c, wordAddr(obj_base, w),
                             pc_base + 64 + 4 * w, gap);
            }
        }
    }
}

} // namespace protozoa
