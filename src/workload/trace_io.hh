/**
 * @file
 * Trace file I/O: serialize workloads to a portable text format and
 * load them back, so the simulator can consume externally captured
 * traces (e.g. from a Pin tool, as the paper's authors did) instead
 * of the built-in synthetic generators.
 *
 * Format: one record per line, `#` comments and blank lines ignored.
 *
 *   <core> <L|S> <hex-addr> <hex-pc> <gap>
 *
 * Example:
 *   # core op addr pc gap
 *   0 L 10000000 4d00 16
 *   0 S 80000000 4d08 16
 */

#ifndef PROTOZOA_WORKLOAD_TRACE_IO_HH
#define PROTOZOA_WORKLOAD_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "workload/trace.hh"

namespace protozoa {

/**
 * Parse a workload from a trace stream.
 *
 * @param in         the text stream.
 * @param num_cores  number of cores the workload must cover; records
 *                   naming cores beyond this are a fatal error.
 * @return one VectorTrace per core (possibly empty).
 */
Workload readTrace(std::istream &in, unsigned num_cores);

/** Parse a workload from a trace file; fatal() on open failure. */
Workload readTraceFile(const std::string &path, unsigned num_cores);

/**
 * Serialize a workload to the text format. Consumes the workload
 * (trace sources are drained).
 *
 * @deprecated Drains its input as a side effect and requires the whole
 * workload materialized; new code should append records incrementally
 * through TraceWriter (workload/streaming_trace.hh), which this
 * function is now a thin draining wrapper around.
 */
void writeTrace(std::ostream &out, Workload workload);

/**
 * Serialize a workload to a file; fatal() on open failure.
 * @deprecated See writeTrace().
 */
void writeTraceFile(const std::string &path, Workload workload);

} // namespace protozoa

#endif // PROTOZOA_WORKLOAD_TRACE_IO_HH
