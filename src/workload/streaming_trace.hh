/**
 * @file
 * Streaming trace front end: bounded-memory trace ingest for
 * long-horizon runs.
 *
 * The load-it-all `readTrace`/`VectorTrace` path tops out at what fits
 * in RAM; "millions of users" means billions of accesses. This layer
 * adds:
 *
 *  - PZTR, a binary chunked trace format. A file is a fixed header
 *    followed by self-framed chunks, each carrying up to a few thousand
 *    packed records for ONE core plus a CRC32, so a reader can route a
 *    whole chunk to its core queue without touching individual records
 *    and can detect truncation/corruption at chunk granularity.
 *
 *  - TraceWriter, an append-records-incrementally writer (text or
 *    binary) replacing the consume-the-workload `writeTrace` API: a
 *    capture tool can emit records as they happen with O(chunk) memory.
 *
 *  - StreamingTraceFile / StreamingTraceSource: per-core TraceSource
 *    views over one shared chunked reader. Each core scans the file
 *    with its own chunk cursor via positional pread(), skipping other
 *    cores' payloads, so a ring never holds more than one decoded
 *    chunk regardless of consumption-rate skew — ring capacities pin
 *    after the first decode and the steady-state refill loop performs
 *    zero allocations (alloc_regression_test locks this). All mutable
 *    state is per-ring and the fd has no shared position, so distinct
 *    cores' sources may be pulled from distinct threads (the sharded
 *    engine's shards).
 *
 *  - GeneratorTraceSource: chunk-indexed deterministic generation, so
 *    synthetic archetypes run unbounded with O(chunk) memory and can
 *    be repositioned (snapshot restore) by regenerating a chunk.
 *
 * Record layout (packed, little-endian, kRecordBytes = 20):
 *   addr u64 | pc u64 | gapInstrs u16 | isWrite u8 | pad u8
 * Chunk header (kChunkHeaderBytes = 20):
 *   magic "PZCK" u32 | core u32 | recordCount u32 | byteLen u32 | crc32 u32
 * File header (kFileHeaderBytes = 16):
 *   magic "PZTR" u32 | version u32 | numCores u32 | reserved u32
 */

#ifndef PROTOZOA_WORKLOAD_STREAMING_TRACE_HH
#define PROTOZOA_WORKLOAD_STREAMING_TRACE_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "workload/trace.hh"

namespace protozoa {

/** File magic "PZTR" (little-endian). */
constexpr std::uint32_t kTraceMagic = 0x52545a50u;
/** Chunk magic "PZCK". */
constexpr std::uint32_t kTraceChunkMagic = 0x4b435a50u;
/** Format version; bump on any layout change. */
constexpr std::uint32_t kTraceVersion = 1;
/** Packed on-disk record size. */
constexpr std::size_t kTraceRecordBytes = 20;
/** Records per chunk a TraceWriter batches before flushing. */
constexpr std::size_t kDefaultChunkRecords = 4096;
/** Reader sanity bound on a chunk payload (corruption guard). */
constexpr std::size_t kMaxChunkRecords = 1u << 20;

/** CRC-32 (IEEE 802.3, reflected 0xEDB88320) over @p n bytes. */
std::uint32_t crc32(const void *data, std::size_t n);

/**
 * Incremental trace writer: append records one at a time, in any core
 * order, with O(cores * chunk) memory. This replaces the draining
 * `writeTrace(ostream, Workload)` overload (now deprecated), which
 * required the whole workload materialized and consumed it as a side
 * effect.
 */
class TraceWriter
{
  public:
    enum class Format { Text, Binary };

    /**
     * @param out           destination stream (binary mode for Binary).
     * @param fmt           text (human-readable) or PZTR binary.
     * @param num_cores     cores the trace covers; appends for cores
     *                      beyond this are a fatal error.
     * @param chunk_records batching granularity for the binary format.
     */
    TraceWriter(std::ostream &out, Format fmt, unsigned num_cores,
                std::size_t chunk_records = kDefaultChunkRecords);

    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one record for @p core. */
    void append(unsigned core, const TraceRecord &rec);

    /** Flush all pending chunks; idempotent, called by the dtor. */
    void finish();

    std::uint64_t recordsWritten() const { return written; }

  private:
    void flushChunk(unsigned core);

    std::ostream &out;
    Format fmt;
    unsigned cores;
    std::size_t chunkRecords;
    std::uint64_t written = 0;
    std::vector<std::vector<TraceRecord>> pending;
    std::vector<std::uint8_t> encodeBuf;
    bool finished = false;
};

class StreamingTraceSource;

/**
 * Shared chunked reader over one PZTR file. Create with open(), then
 * call makeWorkload() exactly once to get per-core TraceSource views;
 * the file object must outlive them (System holds the Workload, the
 * caller holds the file).
 */
class StreamingTraceFile
{
  public:
    /** Open + validate the header. @return nullptr with @p err set. */
    static std::unique_ptr<StreamingTraceFile>
    open(const std::string &path, std::string *err);

    ~StreamingTraceFile();

    StreamingTraceFile(const StreamingTraceFile &) = delete;
    StreamingTraceFile &operator=(const StreamingTraceFile &) = delete;

    unsigned cores() const { return nCores; }

    /** Build one StreamingTraceSource per core (call once). */
    Workload makeWorkload();

  private:
    friend class StreamingTraceSource;

    struct Ring
    {
        /** Decoded records of the current chunk; [head, buf.size())
         *  are unconsumed. A ring holds at most ONE chunk — capacity
         *  is pinned after the first decode, so refills never
         *  allocate. */
        std::vector<TraceRecord> buf;
        /** Per-ring chunk payload buffer (capacity sticky). */
        std::vector<std::uint8_t> chunkBuf;
        std::size_t head = 0;
        /** Total records handed to next() on this core. */
        std::uint64_t consumed = 0;
        /** File offset of the next chunk header to scan. */
        std::uint64_t nextOff = 0;
        /** This core's chunk stream hit clean EOF. */
        bool exhausted = false;
    };

    StreamingTraceFile() = default;

    /** Refill @p core's ring (scanning past other cores' chunks).
     *  @return false when the core's stream is exhausted. */
    bool fillFor(unsigned core);

    /** Scan from the core's cursor to its next chunk and decode it.
     *  @return false at clean EOF; fatal() on a malformed chunk. */
    bool readChunkFor(unsigned core);

    int fd = -1;
    std::string path;
    unsigned nCores = 0;
    std::uint64_t dataStart = 0;
    std::vector<Ring> rings;
};

/** One core's pull view over a shared StreamingTraceFile. */
class StreamingTraceSource : public TraceSource
{
  public:
    StreamingTraceSource(StreamingTraceFile &file, unsigned core)
        : file(file), core(core)
    {
    }

    bool next(TraceRecord &out) override;
    std::uint64_t cursor() const override;

    /**
     * Reposition to record @p n. Cores keep independent chunk
     * cursors, so a backward seek resets only THIS core's scan to the
     * first chunk and replays forward — other cores' positions are
     * untouched, and snapshot restore can seek every core once in any
     * order.
     */
    bool seekTo(std::uint64_t n) override;

  private:
    StreamingTraceFile &file;
    unsigned core;
};

/**
 * Unbounded (or capped) chunk-indexed generated stream. The refill
 * callback must be a pure function of (chunk_index) — typically seeded
 * by counterHash64(seed, core, chunk_index) — so any chunk can be
 * regenerated for seekTo() and the stream is identical regardless of
 * consumption pattern.
 */
class GeneratorTraceSource : public TraceSource
{
  public:
    /** Fill @p out with up to the chunk's records; fewer ends the
     *  stream at that point. */
    using Refill =
        std::function<void(std::uint64_t chunk_index,
                           std::vector<TraceRecord> &out)>;

    /**
     * @param refill        deterministic chunk generator.
     * @param total_records stream length; 0 means unbounded.
     * @param chunk_records generation granularity.
     */
    GeneratorTraceSource(Refill refill, std::uint64_t total_records,
                         std::size_t chunk_records = kDefaultChunkRecords);

    bool next(TraceRecord &out) override;
    std::uint64_t cursor() const override { return consumed; }
    bool seekTo(std::uint64_t n) override;

  private:
    bool loadChunkFor(std::uint64_t n);

    Refill refill;
    std::uint64_t total;
    std::size_t chunkRecords;
    std::vector<TraceRecord> chunk;
    std::uint64_t chunkIndex = ~std::uint64_t(0);
    std::uint64_t consumed = 0;
};

/**
 * Deterministic synthetic stream for long-horizon runs: a per-core mix
 * of private streaming, hot shared-region reads and occasional shared
 * writes, generated chunk-at-a-time from (seed, core, chunk_index).
 * The long-horizon CI job and bench/microbench_stream use this to
 * drive multi-100M-record runs without a trace file.
 */
GeneratorTraceSource::Refill
syntheticStreamRefill(std::uint64_t seed, unsigned core,
                      unsigned num_cores, std::size_t chunk_records);

/** Whole-system synthetic stream workload (one generator per core). */
Workload
makeSyntheticStreamWorkload(std::uint64_t seed, unsigned num_cores,
                            std::uint64_t records_per_core,
                            std::size_t chunk_records =
                                kDefaultChunkRecords);

} // namespace protozoa

#endif // PROTOZOA_WORKLOAD_STREAMING_TRACE_HH
