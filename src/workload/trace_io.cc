#include "workload/trace_io.hh"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/log.hh"
#include "workload/streaming_trace.hh"

namespace protozoa {

Workload
readTrace(std::istream &in, unsigned num_cores)
{
    std::vector<std::vector<TraceRecord>> per_core(num_cores);

    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto first = line.find_first_not_of(" \t");
        if (first == std::string::npos || line[first] == '#')
            continue;

        std::istringstream is(line);
        unsigned core;
        std::string op;
        std::uint64_t addr, pc;
        unsigned gap;
        if (!(is >> core >> op >> std::hex >> addr >> pc >> std::dec >>
              gap))
            fatal("trace line %zu: malformed record '%s'", line_no,
                  line.c_str());
        if (core >= num_cores)
            fatal("trace line %zu: core %u out of range (%u cores)",
                  line_no, core, num_cores);
        if (op != "L" && op != "S")
            fatal("trace line %zu: op must be L or S, got '%s'",
                  line_no, op.c_str());
        if (gap > 0xffff)
            fatal("trace line %zu: gap %u too large", line_no, gap);
        std::string rest;
        if (is >> rest)
            fatal("trace line %zu: trailing garbage '%s' after record",
                  line_no, rest.c_str());

        TraceRecord rec;
        rec.addr = wordAlign(addr);
        rec.pc = pc;
        rec.isWrite = op == "S";
        rec.gapInstrs = static_cast<std::uint16_t>(gap);
        per_core[core].push_back(rec);
    }

    Workload out;
    for (auto &recs : per_core)
        out.push_back(std::make_unique<VectorTrace>(std::move(recs)));
    return out;
}

Workload
readTraceFile(const std::string &path, unsigned num_cores)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file '%s'", path.c_str());
    return readTrace(in, num_cores);
}

void
writeTrace(std::ostream &out, Workload workload)
{
    // Deprecated draining wrapper: kept for existing callers, now a
    // thin loop over the incremental TraceWriter.
    TraceWriter w(out, TraceWriter::Format::Text,
                  static_cast<unsigned>(workload.size()));
    for (unsigned c = 0; c < workload.size(); ++c) {
        TraceRecord rec;
        while (workload[c]->next(rec))
            w.append(c, rec);
    }
    w.finish();
}

void
writeTraceFile(const std::string &path, Workload workload)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    writeTrace(out, std::move(workload));
}

} // namespace protozoa
