#include "workload/streaming_trace.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <ostream>

#include "common/log.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace protozoa {

namespace {

constexpr std::size_t kFileHeaderBytes = 16;
constexpr std::size_t kChunkHeaderBytes = 20;

struct Crc32Table
{
    std::uint32_t t[256];

    Crc32Table()
    {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
    }
};

const Crc32Table &
crcTable()
{
    static const Crc32Table table;
    return table;
}

void
put32(std::uint8_t *p, std::uint32_t v)
{
    std::memcpy(p, &v, 4);
}

std::uint32_t
get32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

void
encodeRecord(std::uint8_t *p, const TraceRecord &r)
{
    std::memcpy(p, &r.addr, 8);
    std::memcpy(p + 8, &r.pc, 8);
    std::memcpy(p + 16, &r.gapInstrs, 2);
    p[18] = r.isWrite ? 1 : 0;
    p[19] = 0;
}

TraceRecord
decodeRecord(const std::uint8_t *p)
{
    TraceRecord r;
    std::memcpy(&r.addr, p, 8);
    std::memcpy(&r.pc, p + 8, 8);
    std::memcpy(&r.gapInstrs, p + 16, 2);
    r.isWrite = p[18] != 0;
    return r;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t n)
{
    const auto &tab = crcTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < n; ++i)
        c = tab.t[(c ^ p[i]) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

// ---- TraceWriter ------------------------------------------------------

TraceWriter::TraceWriter(std::ostream &out, Format fmt,
                         unsigned num_cores, std::size_t chunk_records)
    : out(out), fmt(fmt), cores(num_cores), chunkRecords(chunk_records)
{
    PROTO_ASSERT(chunkRecords > 0 && chunkRecords <= kMaxChunkRecords,
                 "bad chunk size");
    if (fmt == Format::Binary) {
        pending.resize(cores);
        for (auto &v : pending)
            v.reserve(chunkRecords);
        encodeBuf.resize(kChunkHeaderBytes +
                         chunkRecords * kTraceRecordBytes);
        std::uint8_t hdr[kFileHeaderBytes];
        put32(hdr, kTraceMagic);
        put32(hdr + 4, kTraceVersion);
        put32(hdr + 8, cores);
        put32(hdr + 12, 0);
        out.write(reinterpret_cast<const char *>(hdr), sizeof(hdr));
    } else {
        out << "# protozoa trace: <core> <L|S> <hex-addr> <hex-pc> "
               "<gap>\n";
    }
}

TraceWriter::~TraceWriter() { finish(); }

void
TraceWriter::append(unsigned core, const TraceRecord &rec)
{
    PROTO_ASSERT(!finished, "append after finish()");
    if (core >= cores)
        fatal("trace writer: core %u out of range (%u cores)", core,
              cores);
    ++written;
    if (fmt == Format::Text) {
        out << core << ' ' << (rec.isWrite ? 'S' : 'L') << ' '
            << std::hex << rec.addr << ' ' << rec.pc << std::dec << ' '
            << rec.gapInstrs << '\n';
        return;
    }
    pending[core].push_back(rec);
    if (pending[core].size() >= chunkRecords)
        flushChunk(core);
}

void
TraceWriter::flushChunk(unsigned core)
{
    auto &recs = pending[core];
    if (recs.empty())
        return;
    const std::uint32_t count = static_cast<std::uint32_t>(recs.size());
    const std::uint32_t byteLen =
        count * static_cast<std::uint32_t>(kTraceRecordBytes);
    std::uint8_t *payload = encodeBuf.data() + kChunkHeaderBytes;
    for (std::uint32_t i = 0; i < count; ++i)
        encodeRecord(payload + i * kTraceRecordBytes, recs[i]);

    std::uint8_t *hdr = encodeBuf.data();
    put32(hdr, kTraceChunkMagic);
    put32(hdr + 4, core);
    put32(hdr + 8, count);
    put32(hdr + 12, byteLen);
    put32(hdr + 16, crc32(payload, byteLen));
    out.write(reinterpret_cast<const char *>(encodeBuf.data()),
              kChunkHeaderBytes + byteLen);
    recs.clear();
}

void
TraceWriter::finish()
{
    if (finished)
        return;
    finished = true;
    if (fmt == Format::Binary)
        for (unsigned c = 0; c < cores; ++c)
            flushChunk(c);
    out.flush();
}

// ---- StreamingTraceFile ----------------------------------------------

std::unique_ptr<StreamingTraceFile>
StreamingTraceFile::open(const std::string &path, std::string *err)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        if (err)
            *err = "cannot open trace file '" + path + "'";
        return nullptr;
    }
    std::uint8_t hdr[kFileHeaderBytes];
    if (::pread(fd, hdr, sizeof(hdr), 0) !=
        static_cast<ssize_t>(sizeof(hdr))) {
        ::close(fd);
        if (err)
            *err = "'" + path + "': truncated PZTR header";
        return nullptr;
    }
    if (get32(hdr) != kTraceMagic) {
        ::close(fd);
        if (err)
            *err = "'" + path + "': not a PZTR trace (bad magic)";
        return nullptr;
    }
    if (get32(hdr + 4) != kTraceVersion) {
        ::close(fd);
        if (err)
            *err = "'" + path + "': PZTR version " +
                   std::to_string(get32(hdr + 4)) + ", expected " +
                   std::to_string(kTraceVersion);
        return nullptr;
    }
    const std::uint32_t cores = get32(hdr + 8);
    if (cores == 0 || cores > 4096) {
        ::close(fd);
        if (err)
            *err = "'" + path + "': implausible core count " +
                   std::to_string(cores);
        return nullptr;
    }

    auto file = std::unique_ptr<StreamingTraceFile>(
        new StreamingTraceFile());
    file->fd = fd;
    file->path = path;
    file->nCores = cores;
    file->dataStart = kFileHeaderBytes;
    file->rings.resize(cores);
    for (Ring &r : file->rings) {
        r.nextOff = file->dataStart;
        r.chunkBuf.reserve(kDefaultChunkRecords * kTraceRecordBytes);
    }
    return file;
}

StreamingTraceFile::~StreamingTraceFile()
{
    if (fd >= 0)
        ::close(fd);
}

Workload
StreamingTraceFile::makeWorkload()
{
    Workload out;
    for (unsigned c = 0; c < nCores; ++c)
        out.push_back(std::make_unique<StreamingTraceSource>(*this, c));
    return out;
}

bool
StreamingTraceFile::readChunkFor(unsigned target)
{
    // Each core keeps its own chunk cursor and scans the file for its
    // own chunks, skipping over other cores' payloads — so a ring
    // never buffers more than one chunk no matter how skewed per-core
    // consumption rates are, which pins every ring's capacity after
    // its first decode (alloc_regression_test locks this). All reads
    // are positional pread()s and all mutable state is per-ring, so
    // distinct cores may refill from distinct threads.
    Ring &ring = rings[target];
    for (;;) {
        std::uint8_t hdr[kChunkHeaderBytes];
        const ssize_t got = ::pread(fd, hdr, sizeof(hdr),
                                    static_cast<off_t>(ring.nextOff));
        if (got == 0) {
            ring.exhausted = true;
            return false;
        }
        if (got != static_cast<ssize_t>(sizeof(hdr)))
            fatal("'%s': truncated chunk header", path.c_str());
        if (get32(hdr) != kTraceChunkMagic)
            fatal("'%s': bad chunk magic (corrupt trace)",
                  path.c_str());
        const std::uint32_t core = get32(hdr + 4);
        const std::uint32_t count = get32(hdr + 8);
        const std::uint32_t byteLen = get32(hdr + 12);
        const std::uint32_t crc = get32(hdr + 16);
        if (core >= nCores)
            fatal("'%s': chunk names core %u of %u", path.c_str(),
                  core, nCores);
        if (count == 0 || count > kMaxChunkRecords ||
            byteLen != count * kTraceRecordBytes)
            fatal("'%s': implausible chunk framing (count %u, bytes "
                  "%u)",
                  path.c_str(), count, byteLen);

        const std::uint64_t payloadOff =
            ring.nextOff + kChunkHeaderBytes;
        ring.nextOff = payloadOff + byteLen;
        if (core != target)
            continue; // skip a foreign chunk without touching payload

        ring.chunkBuf.resize(byteLen); // capacity sticky
        if (::pread(fd, ring.chunkBuf.data(), byteLen,
                    static_cast<off_t>(payloadOff)) !=
            static_cast<ssize_t>(byteLen))
            fatal("'%s': truncated chunk payload", path.c_str());
        if (crc32(ring.chunkBuf.data(), byteLen) != crc)
            fatal("'%s': chunk CRC mismatch (corrupt trace)",
                  path.c_str());

        ring.buf.clear(); // fully drained before refill; keeps capacity
        ring.head = 0;
        for (std::uint32_t i = 0; i < count; ++i)
            ring.buf.push_back(decodeRecord(ring.chunkBuf.data() +
                                            i * kTraceRecordBytes));
        return true;
    }
}

bool
StreamingTraceFile::fillFor(unsigned core)
{
    Ring &ring = rings[core];
    while (ring.head == ring.buf.size()) {
        if (ring.exhausted)
            return false;
        if (!readChunkFor(core))
            return false;
    }
    return true;
}

// ---- StreamingTraceSource --------------------------------------------

bool
StreamingTraceSource::next(TraceRecord &out)
{
    if (!file.fillFor(core))
        return false;
    StreamingTraceFile::Ring &ring = file.rings[core];
    out = ring.buf[ring.head++];
    ++ring.consumed;
    return true;
}

std::uint64_t
StreamingTraceSource::cursor() const
{
    return file.rings[core].consumed;
}

bool
StreamingTraceSource::seekTo(std::uint64_t n)
{
    StreamingTraceFile::Ring &ring = file.rings[core];
    if (n < ring.consumed) {
        // Per-core cursors make a backward seek purely local: reset
        // this core's scan to the first chunk and replay forward.
        ring.buf.clear();
        ring.head = 0;
        ring.consumed = 0;
        ring.nextOff = file.dataStart;
        ring.exhausted = false;
    }
    TraceRecord tmp;
    while (ring.consumed < n)
        if (!next(tmp))
            return false;
    return true;
}

// ---- GeneratorTraceSource --------------------------------------------

GeneratorTraceSource::GeneratorTraceSource(Refill refill,
                                           std::uint64_t total_records,
                                           std::size_t chunk_records)
    : refill(std::move(refill)),
      total(total_records),
      chunkRecords(chunk_records)
{
    PROTO_ASSERT(chunkRecords > 0, "bad chunk size");
    chunk.reserve(chunkRecords);
}

bool
GeneratorTraceSource::loadChunkFor(std::uint64_t n)
{
    const std::uint64_t idx = n / chunkRecords;
    if (idx != chunkIndex) {
        chunk.clear(); // keeps capacity: refills stay allocation-free
        refill(idx, chunk);
        chunkIndex = idx;
    }
    return (n % chunkRecords) < chunk.size();
}

bool
GeneratorTraceSource::next(TraceRecord &out)
{
    if (total != 0 && consumed >= total)
        return false;
    if (!loadChunkFor(consumed))
        return false;
    out = chunk[static_cast<std::size_t>(consumed % chunkRecords)];
    ++consumed;
    return true;
}

bool
GeneratorTraceSource::seekTo(std::uint64_t n)
{
    if (total != 0 && n > total)
        return false;
    consumed = n;
    return true;
}

// ---- Synthetic long-horizon stream -----------------------------------

GeneratorTraceSource::Refill
syntheticStreamRefill(std::uint64_t seed, unsigned core,
                      unsigned num_cores, std::size_t chunk_records)
{
    return [seed, core, num_cores,
            chunk_records](std::uint64_t chunk_index,
                           std::vector<TraceRecord> &out) {
        Rng rng(counterHash64(seed, (std::uint64_t(core) << 32) | 1,
                              chunk_index));
        // Per-core private window walks forward with the chunk index so
        // the footprint stays cache-sized but the address stream never
        // repeats; a small set of hot shared regions carries real
        // cross-core coherence traffic.
        const Addr privBase = 0x100000000ULL +
                              (Addr(core) << 24) +
                              (chunk_index % 4096) * 0x1000;
        const Addr sharedBase = 0x200000000ULL;
        const unsigned kSharedRegions = 16;
        for (std::size_t i = 0; i < chunk_records; ++i) {
            TraceRecord r;
            const std::uint64_t roll = rng.below(100);
            if (roll < 70) {
                // private streaming read/write
                r.addr = privBase + (rng.below(512) << kWordShift);
                r.isWrite = rng.chance(0.3);
                r.pc = 0x4000 + (core << 8);
            } else if (roll < 95) {
                // hot shared read
                r.addr = sharedBase +
                         rng.below(kSharedRegions) * 64 +
                         (rng.below(8) << kWordShift);
                r.isWrite = false;
                r.pc = 0x5000;
            } else {
                // shared write (false-sharing pressure: word keyed by
                // core, region shared by all)
                r.addr = sharedBase +
                         rng.below(kSharedRegions) * 64 +
                         ((core % 8) << kWordShift);
                r.isWrite = true;
                r.pc = 0x6000;
            }
            r.addr = wordAlign(r.addr);
            r.gapInstrs =
                static_cast<std::uint16_t>(2 + rng.below(6));
            out.push_back(r);
        }
        (void)num_cores;
    };
}

Workload
makeSyntheticStreamWorkload(std::uint64_t seed, unsigned num_cores,
                            std::uint64_t records_per_core,
                            std::size_t chunk_records)
{
    Workload out;
    for (unsigned c = 0; c < num_cores; ++c)
        out.push_back(std::make_unique<GeneratorTraceSource>(
            syntheticStreamRefill(seed, c, num_cores, chunk_records),
            records_per_core, chunk_records));
    return out;
}

} // namespace protozoa
