#include "workload/benchmarks.hh"

#include "common/log.hh"
#include "workload/archetypes.hh"

namespace protozoa {

namespace {

/** Address-map constants: disjoint arenas per data structure. */
constexpr Addr kPrivArena = 0x10000000;
constexpr Addr kPrivArena2 = 0x30000000;
constexpr Addr kSharedArena = 0x80000000;
constexpr Addr kSharedArena2 = 0xa0000000;
constexpr Addr kSharedArena3 = 0xc0000000;

std::uint64_t
scaled(double scale, std::uint64_t n)
{
    const auto v = static_cast<std::uint64_t>(scale * n);
    return v == 0 ? 1 : v;
}

unsigned
scaledU(double scale, unsigned n)
{
    return static_cast<unsigned>(scaled(scale, n));
}

std::uint64_t
seedFor(const SystemConfig &cfg, const char *name)
{
    std::uint64_t h = cfg.seed;
    for (const char *p = name; *p; ++p)
        h = h * 1099511628211ULL + static_cast<unsigned char>(*p);
    return h;
}

} // namespace

const std::vector<BenchSpec> &
paperBenchmarks()
{
    static const std::vector<BenchSpec> specs = {
        // Irregular request mix over a shared heap: modest locality,
        // some read-write sharing (Table 1: USED 37%, optimal 128 B).
        {"apache", "commercial",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "apache"));
             genIrregular(tb, cfg.numCores, kSharedArena, 8192,
                          kPrivArena, 4096, scaled(s, 6000), 0.35, 4,
                          0.25, 10, 0x4000);
             return tb.build();
         }},
        // Tree walk over small bodies; moderate sharing (USED 37%).
        {"barnes", "SPLASH2",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "barnes"));
             genPointerChase(tb, cfg.numCores, kSharedArena, 2048, 4, 3,
                             scaled(s, 8000), 0.2, 0.3, 8, 0x4100);
             return tb.build();
         }},
        // Sparse option records + a pinch of false sharing (USED 26%,
        // optimal 16 B).
        {"blackscholes", "PARSEC",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "blackscholes"));
             genPrivateStream(tb, cfg.numCores, kPrivArena,
                              scaled(s, 1400), 8, 2, 0.3, 18, 0x4200, 3);
             genFalseShareCounters(tb, cfg.numCores, kSharedArena,
                                   scaled(s, 400), 1, 18, 0x4240);
             return tb.build();
         }},
        // Low-spatial-locality body model (USED 21%, optimal 16 B).
        {"bodytrack", "PARSEC",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "bodytrack"));
             genPointerChase(tb, cfg.numCores, kSharedArena, 4096, 8, 2,
                             scaled(s, 8000), 0.15, 0.2, 16, 0x4300);
             return tb.build();
         }},
        // Nearly-random single-word netlist updates (USED 16%).
        {"canneal", "PARSEC",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "canneal"));
             genIrregular(tb, cfg.numCores, kSharedArena, 16384,
                          kPrivArena, 4096, scaled(s, 10000), 0.5, 1,
                          0.3, 16, 0x4400);
             return tb.build();
         }},
        // Migratory panel factorization (USED 62%).
        {"cholesky", "SPLASH2",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "cholesky"));
             genMigratory(tb, cfg.numCores, kSharedArena, 96, 8,
                          scaledU(s, 8), 4, 0x4500);
             return tb.build();
         }},
        // Dense per-particle records (USED 80%).
        {"facesim", "PARSEC",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "facesim"));
             genPrivateStream(tb, cfg.numCores, kPrivArena,
                              scaled(s, 1200), 8, 6, 0.3, 6, 0x4600, 3);
             return tb.build();
         }},
        // Blocked butterfly sweeps (USED 67%, optimal 128 B).
        {"fft", "SPLASH2",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "fft"));
             genStencil(tb, cfg.numCores, kSharedArena, 2, 64,
                        scaledU(s, 10), 4, 0x4700);
             return tb.build();
         }},
        // Grid sweeps plus cell-list false sharing (USED 54%).
        {"fluidanimate", "PARSEC",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "fluidanimate"));
             genStencil(tb, cfg.numCores, kSharedArena, 2, 48,
                        scaledU(s, 8), 5, 0x4800);
             genFalseShareCounters(tb, cfg.numCores, kSharedArena2,
                                   scaled(s, 400), 2, 5, 0x4840);
             return tb.build();
         }},
        // Managed-heap pointer chasing + allocator false sharing
        // (USED 59%, strong INV growth at 64 B).
        {"h2", "DaCapo",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "h2"));
             genPointerChase(tb, cfg.numCores, kSharedArena, 1024, 8, 3,
                             scaled(s, 5000), 0.3, 0.5, 10, 0x4900);
             genFalseShareCounters(tb, cfg.numCores, kSharedArena2,
                                   scaled(s, 500), 1, 10, 0x4940);
             return tb.build();
         }},
        // Shared bucket array updated at word granularity: the paper's
        // flagship false-sharing reduction case (USED 53%).
        {"histogram", "Phoenix",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "histogram"));
             genHistogram(tb, cfg.numCores, kPrivArena, kSharedArena,
                          scaled(s, 2500), 256, 0.9, 18, 0x4a00);
             return tb.build();
         }},
        // Transactional object soup (USED 26%, optimal 128 B).
        {"jbb", "commercial",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "jbb"));
             genIrregular(tb, cfg.numCores, kSharedArena, 16384,
                          kPrivArena, 8192, scaled(s, 6000), 0.3, 5,
                          0.2, 12, 0x4b00);
             return tb.build();
         }},
        // Shared read-only centroids, full-region runs (USED 99%).
        {"kmeans", "Phoenix",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "kmeans"));
             genSharedReadOnly(tb, cfg.numCores, kSharedArena, 4096,
                               kPrivArena, scaled(s, 2000), 8, 4,
                               0x4c00);
             return tb.build();
         }},
        // Loops over a small private point set, accumulating into a
        // per-thread slot of one shared accumulator array whose
        // adjacent thread slots share regions: the Fig. 1 pattern
        // (USED 27%, optimal 16 B; paper: 99% miss reduction and a
        // 2.2x speedup under MW while SW cannot help).
        {"linear-regression", "Phoenix",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores,
                             seedFor(cfg, "linear-regression"));
             const std::uint64_t elems = scaled(s, 1200);
             const unsigned spacing = 4;   // two thread slots/region
             for (unsigned c = 0; c < cfg.numCores; ++c) {
                 const Addr input =
                     kPrivArena + static_cast<Addr>(c) * elems * 8;
                 const Addr acc =
                     kSharedArena + static_cast<Addr>(c) * spacing * 8;
                 for (unsigned pass = 0; pass < 3; ++pass) {
                     for (std::uint64_t e = 0; e < elems; ++e) {
                         tb.load(c, input + e * 8, 0x4d00, 16);
                         tb.load(c, acc, 0x4d04, 16);
                         tb.store(c, acc, 0x4d08, 16);
                     }
                 }
             }
             return tb.build();
         }},
        // Blocked dense factorization sweeps (USED 47%).
        {"lu", "SPLASH2",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "lu"));
             genStencil(tb, cfg.numCores, kSharedArena, 2, 56,
                        scaledU(s, 8), 4, 0x4e00);
             return tb.build();
         }},
        // Embarrassingly parallel dense streams (USED 99%).
        {"mat-mul", "Phoenix",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "mat-mul"));
             genPrivateStream(tb, cfg.numCores, kPrivArena,
                              scaled(s, 1500), 8, 8, 0.25, 5, 0x4f00,
                              2);
             return tb.build();
         }},
        // Nearest-neighbour grid relaxation (USED 53%).
        {"ocean", "SPLASH2",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "ocean"));
             genStencil(tb, cfg.numCores, kSharedArena, 3, 64,
                        scaledU(s, 6), 4, 0x5000);
             return tb.build();
         }},
        // k-D tree build: dense private + shared read mix (USED 68%).
        {"parkd", "Denovo",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "parkd"));
             genPrivateStream(tb, cfg.numCores, kPrivArena,
                              scaled(s, 1000), 8, 6, 0.2, 5, 0x5100, 3);
             genSharedReadOnly(tb, cfg.numCores, kSharedArena, 2048,
                               kPrivArena2, scaled(s, 600), 6, 5,
                               0x5140);
             return tb.build();
         }},
        // Key streams + rank hand-offs (USED 56%).
        {"radix", "SPLASH2",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "radix"));
             genPrivateStream(tb, cfg.numCores, kPrivArena,
                              scaled(s, 1000), 8, 5, 0.4, 4, 0x5200, 2);
             genMigratory(tb, cfg.numCores, kSharedArena, 48, 8,
                          scaledU(s, 4), 4, 0x5240);
             return tb.build();
         }},
        // Read-shared scene plus single-producer/single-consumer rays
        // (USED 63%, Fig. 11 single-owner pattern).
        {"raytrace", "PARSEC",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "raytrace"));
             genSharedReadOnly(tb, cfg.numCores, kSharedArena, 8192,
                               kPrivArena, scaled(s, 1500), 6, 5,
                               0x5300);
             genProducerConsumer(tb, cfg.numCores, kSharedArena2, 8, 8,
                                 8, 6, scaledU(s, 6), 5, 0x5340);
             return tb.build();
         }},
        // Dense private postings + irregular shared index (USED 64%).
        {"rev-index", "Phoenix",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "rev-index"));
             genPrivateStream(tb, cfg.numCores, kPrivArena,
                              scaled(s, 900), 8, 5, 0.2, 5, 0x5400, 2);
             genIrregular(tb, cfg.numCores, kSharedArena, 8192,
                          kPrivArena2, 2048, scaled(s, 800), 0.6, 3,
                          0.3, 5, 0x5440);
             return tb.build();
         }},
        // High-locality reads + fine-grain read-write centres
        // (USED 76%).
        {"streamcluster", "PARSEC",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "streamcluster"));
             genSharedReadOnly(tb, cfg.numCores, kSharedArena, 2048,
                               kPrivArena, scaled(s, 1200), 8, 4,
                               0x5500);
             genFalseShareCounters(tb, cfg.numCores, kSharedArena2,
                                   scaled(s, 600), 2, 4, 0x5540);
             genProducerConsumer(tb, cfg.numCores, kSharedArena3, 4, 8,
                                 8, 8, scaledU(s, 4), 4, 0x5580);
             return tb.build();
         }},
        // Per-thread match counters + private text (USED 50%).
        {"string-match", "Phoenix",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "string-match"));
             genFalseShareCounters(tb, cfg.numCores, kSharedArena,
                                   scaled(s, 1200), 1, 5, 0x5600);
             genPrivateStream(tb, cfg.numCores, kPrivArena,
                              scaled(s, 700), 8, 4, 0.15, 5, 0x5640, 2);
             return tb.build();
         }},
        // Independent swaption records (USED 64%).
        {"swaptions", "PARSEC",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "swaptions"));
             genPrivateStream(tb, cfg.numCores, kPrivArena,
                              scaled(s, 1200), 8, 5, 0.2, 8, 0x5700, 3);
             return tb.build();
         }},
        // Managed-runtime object graph (USED 32%).
        {"tradebeans", "DaCapo",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "tradebeans"));
             genIrregular(tb, cfg.numCores, kSharedArena, 8192,
                          kPrivArena, 8192, scaled(s, 5000), 0.2, 3,
                          0.25, 12, 0x5800);
             return tb.build();
         }},
        // Molecule grid + migratory force accumulation (USED 46%).
        {"water", "SPLASH2",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "water"));
             genStencil(tb, cfg.numCores, kSharedArena, 2, 40,
                        scaledU(s, 8), 5, 0x5900);
             genMigratory(tb, cfg.numCores, kSharedArena2, 32, 8,
                          scaledU(s, 3), 5, 0x5940);
             return tb.build();
         }},
        // Dense word streams (USED 99%).
        {"word-count", "Phoenix",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "word-count"));
             genPrivateStream(tb, cfg.numCores, kPrivArena,
                              scaled(s, 1600), 8, 8, 0.3, 5, 0x5a00,
                              2);
             return tb.build();
         }},
        // Sparse frame pipeline between stages (USED 24%).
        {"x264", "PARSEC",
         [](const SystemConfig &cfg, double s) {
             TraceBuilder tb(cfg.numCores, seedFor(cfg, "x264"));
             genProducerConsumer(tb, cfg.numCores, kSharedArena, 12, 8,
                                 2, 2, scaledU(s, 10), 10, 0x5b00);
             genIrregular(tb, cfg.numCores, kSharedArena2, 4096,
                          kPrivArena, 2048, scaled(s, 2000), 0.3, 2,
                          0.3, 10, 0x5b40);
             return tb.build();
         }},
    };
    return specs;
}

const BenchSpec &
findBenchmark(const std::string &name)
{
    for (const auto &spec : paperBenchmarks()) {
        if (spec.name == name)
            return spec;
    }
    fatal("unknown benchmark '%s'", name.c_str());
}

} // namespace protozoa
