/**
 * @file
 * Access-pattern archetypes for synthetic workload generation.
 *
 * The paper traces 28 real applications; this reproduction synthesizes
 * each of them from one (or a mix) of nine archetypes whose parameters
 * control the two properties Protozoa responds to: spatial locality
 * (how many contiguous words an access site touches) and sharing
 * granularity (which cores read/write which words of shared regions).
 * See DESIGN.md for the substitution rationale.
 *
 * All generators are deterministic functions of (config, seed, scale).
 */

#ifndef PROTOZOA_WORKLOAD_ARCHETYPES_HH
#define PROTOZOA_WORKLOAD_ARCHETYPES_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "workload/trace.hh"

namespace protozoa {

/** Per-core record buffers under construction. */
class TraceBuilder
{
  public:
    TraceBuilder(unsigned cores, std::uint64_t seed);

    /** Append a load of the word at @p addr for @p core. */
    void load(unsigned core, Addr addr, Pc pc, unsigned gap = 2);
    /** Append a store to the word at @p addr for @p core. */
    void store(unsigned core, Addr addr, Pc pc, unsigned gap = 2);

    Rng &rng() { return generator; }

    /** Interleaving is irrelevant (cores own their streams). */
    Workload build();

  private:
    std::vector<std::vector<TraceRecord>> perCore;
    Rng generator;
};

/**
 * Archetype 1: private streaming.
 * Each core makes @p passes sweeps over a private array of records,
 * touching the first @p touch_words of each @p record_words -word
 * record; the final touch is a store with probability @p write_frac.
 */
void genPrivateStream(TraceBuilder &tb, unsigned cores, Addr base,
                      std::uint64_t elems, unsigned record_words,
                      unsigned touch_words, double write_frac,
                      unsigned gap, Pc pc_base, unsigned passes = 1);

/**
 * Archetype 2: false-shared counters (the Fig. 1 OpenMP example).
 * Core c read-modify-writes the single word base + c*spacing_words;
 * with 1-word spacing, 8 counters share a 64-byte region.
 */
void genFalseShareCounters(TraceBuilder &tb, unsigned cores, Addr base,
                           std::uint64_t iters, unsigned spacing_words,
                           unsigned gap, Pc pc_base);

/**
 * Archetype 3: histogram reduction.
 * Stream a private input; for each element, read-modify-write one of
 * @p buckets shared single-word counters. Each core prefers its own
 * bucket window with probability @p preference (local pixel-value
 * clustering), so concurrent updates mostly hit *different words of
 * the same regions* — the false-sharing pattern the paper reports —
 * with occasional true conflicts.
 */
void genHistogram(TraceBuilder &tb, unsigned cores, Addr input_base,
                  Addr bucket_base, std::uint64_t elems, unsigned buckets,
                  double preference, unsigned gap, Pc pc_base);

/**
 * Archetype 4: shared read-only table + private read-write state.
 * Each access reads a @p run_words run at a random table offset, then
 * updates a private accumulator.
 */
void genSharedReadOnly(TraceBuilder &tb, unsigned cores, Addr table_base,
                       std::uint64_t table_words, Addr priv_base,
                       std::uint64_t accesses, unsigned run_words,
                       unsigned gap, Pc pc_base);

/**
 * Archetype 5: producer/consumer pipeline.
 * In each round, core c stores the first @p produce_words of every
 * @p record_words -word record of its own buffer, then loads the first
 * @p consume_words of each record of its predecessor's buffer.
 * Sparse production/consumption models the low data-utilization
 * pipelines of the paper (e.g. x264 at 24% USED).
 */
void genProducerConsumer(TraceBuilder &tb, unsigned cores, Addr base,
                         unsigned buf_records, unsigned record_words,
                         unsigned produce_words, unsigned consume_words,
                         unsigned rounds, unsigned gap, Pc pc_base);

/**
 * Archetype 6: irregular heap.
 * Random single accesses over a mixed private/shared footprint with a
 * short locality run, modelling commercial/managed workloads.
 */
void genIrregular(TraceBuilder &tb, unsigned cores, Addr shared_base,
                  std::uint64_t shared_words, Addr priv_base,
                  std::uint64_t priv_words, std::uint64_t accesses,
                  double shared_frac, unsigned max_run, double write_frac,
                  unsigned gap, Pc pc_base);

/**
 * Archetype 7: row-partitioned stencil.
 * Core c sweeps its rows reading up/down neighbours (boundary rows are
 * read-shared with adjacent cores) and writing its own row.
 */
void genStencil(TraceBuilder &tb, unsigned cores, Addr base,
                unsigned rows_per_core, unsigned cols_words,
                unsigned iters, unsigned gap, Pc pc_base);

/**
 * Archetype 8: pointer chasing.
 * Random node visits touching 1..@p touch_words words per node; low
 * spatial locality, mild write mix.
 */
void genPointerChase(TraceBuilder &tb, unsigned cores, Addr base,
                     std::uint64_t nodes, unsigned node_words,
                     unsigned touch_words, std::uint64_t steps,
                     double write_frac, double shared_frac,
                     unsigned gap, Pc pc_base);

/**
 * Archetype 9: migratory objects.
 * Cores take turns read-modify-writing whole shared objects,
 * producing owner hand-offs of full records.
 */
void genMigratory(TraceBuilder &tb, unsigned cores, Addr base,
                  unsigned objects, unsigned obj_words, unsigned rounds,
                  unsigned gap, Pc pc_base);

} // namespace protozoa

#endif // PROTOZOA_WORKLOAD_ARCHETYPES_HH
