// Trace classes are header-only; this translation unit verifies the
// header is self-contained.
#include "workload/trace.hh"
