/**
 * @file
 * Shared-L2 tile with in-cache directory: the home node of the
 * Protozoa protocol family.
 *
 * Each tile owns an address-interleaved slice of an inclusive shared
 * L2. The directory entry is collocated with the L2 block and tracks
 * sharers at REGION granularity only (Table 2): a reader set and a
 * writer set of cores, with no per-word information — exactly the
 * paper's "same in-cache fixed-granularity directory structure as
 * MESI", where Protozoa-MW doubles the entry to separate readers from
 * writers and Protozoa-SW+MR adds only the single-writer identity.
 *
 * One coherence transaction is active per region at a time; later
 * requests queue (the paper's per-REGION serialization). The protocol
 * variant decides only (a) the probe range (full region for MESI/SW,
 * the request range for SW+MR/MW), (b) the keepNonOverlap and
 * revokeWritePerm probe flags, and (c) how many concurrent writers the
 * writer set may hold.
 *
 * The legal (state, event) -> next-state tuples of this controller —
 * abstract states NP/I/R/W/WR/MW over the region's reader/writer sets,
 * transaction-granular events — are enumerated in the documented
 * transition inventory of protocol/conformance.hh (the
 * implementation-level Table 3) and checked at run time: an
 * undocumented tuple panics.
 */

#ifndef PROTOZOA_PROTOCOL_DIR_CONTROLLER_HH
#define PROTOZOA_PROTOCOL_DIR_CONTROLLER_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/core_mask.hh"
#include "common/event_queue.hh"
#include "common/flat_table.hh"
#include "common/rng.hh"
#include "common/serialize.hh"
#include "common/snapshot_tags.hh"
#include "common/stats.hh"
#include "mem/golden_memory.hh"
#include "protocol/bloom_directory.hh"
#include "protocol/coherence_msg.hh"
#include "protocol/conformance.hh"
#include "protocol/router.hh"

namespace protozoa {

class DirController
{
  public:
    DirController(TileId id, const SystemConfig &cfg, EventQueue &eq,
                  Router &router, WordStore &mem_image,
                  ConformanceCoverage *coverage = nullptr);

    /** Deliver a coherence message from the interconnect. */
    void receive(CoherenceMsg msg);

    TileId id() const { return tileId; }

    /** True when no transaction is active and no request is queued. */
    bool idle() const { return active.empty() && waiting.empty(); }

    DirStats stats;

    /** Directory view of a region, for invariant checkers and tests. */
    struct DirView
    {
        bool present = false;
        CoreSet readers;
        CoreSet writers;
        bool dirty = false;
    };
    DirView view(Addr region);

    /** Watchdog view of one in-flight transaction. */
    struct TxnView
    {
        Addr region = 0;
        Cycle start = 0;
        bool recall = false;
        unsigned pending = 0;
        bool waitingUnblock = false;
        std::size_t queued = 0;
    };
    /** Every active transaction of this tile (deadlock-watchdog scan). */
    std::vector<TxnView> activeTxns() const;

    /** Diagnostic description of a region's directory-side state. */
    std::string describeRegion(Addr region);

    /** True when a coherence transaction is active on @p region. */
    bool hasActiveTxn(Addr region) const { return active.contains(region); }

    // ---- canonical state snapshots (protocheck fingerprinting) ------

    /** Snapshot of one valid L2 entry. */
    struct EntrySnap
    {
        Addr region = 0;
        bool filling = false;
        bool dirty = false;
        CoreSet readers;
        CoreSet writers;
        std::uint64_t lruStamp = 0;
        unsigned setIndex = 0;
        const std::uint64_t *words = nullptr;
        unsigned wordCount = 0;
    };

    /** Visit every valid L2 entry, set by set. */
    template <typename F>
    void
    forEachEntry(F &&fn) const
    {
        for (unsigned s = 0; s < setsPerTile; ++s) {
            for (const L2Entry &e : sets[s]) {
                if (!e.valid)
                    continue;
                fn(EntrySnap{e.region, e.filling, e.dirty,
                             e.readers, e.writers,
                             e.lruStamp, s, e.words.data(),
                             e.wordCount});
            }
        }
    }

    /** Snapshot of one in-flight transaction. */
    struct TxnSnap
    {
        Addr region = 0;
        bool recall = false;
        MsgType reqType = MsgType::GETS;
        CoreId requester = 0;
        WordRange reqRange;
        bool upgrade = false;
        unsigned pending = 0;
        bool waitingUnblock = false;
        bool directSupplied = false;
        bool unblocked = false;
        Addr parentRegion = 0;
    };

    /** Visit every active transaction (unspecified region order). */
    template <typename F>
    void
    forEachTxn(F &&fn) const
    {
        active.forEach([&](Addr region, const Txn &t) {
            fn(TxnSnap{region, t.kind == Txn::Kind::Recall, t.reqType,
                       t.requester, t.reqRange, t.upgrade, t.pending,
                       t.waitingUnblock, t.directSupplied, t.unblocked,
                       t.parentRegion});
        });
    }

    /**
     * Visit queued requests as (region, msg), FIFO order within a
     * region; region order is unspecified (hash-table order).
     */
    template <typename F>
    void
    forEachWaitingMsg(F &&fn) const
    {
        waiting.forEach(
            [&](Addr region,
                const PooledFifo<CoherenceMsg>::Queue &q) {
                waitPool.forEach(q, [&](const CoherenceMsg &m) {
                    fn(region, m);
                });
            });
    }

    // --- saveable events (snapshot subsystem) ---

    /** Pipeline-delayed hand-off of one outgoing message to the
     *  router. */
    struct SendEvent
    {
        DirController *dir;
        CoherenceMsg msg;

        void operator()() { dir->router.send(std::move(msg)); }

        void
        saveEvent(Serializer &s) const
        {
            s.writeU8(static_cast<std::uint8_t>(EventKind::DirSend));
            s.writeU16(dir->tileId);
            s.writeRaw(msg);
        }
    };

    /** Memory-latency-delayed completion of an L2 fill. */
    struct FillEvent
    {
        DirController *dir;
        Addr region;

        void operator()() const { dir->finishFill(region); }

        void
        saveEvent(Serializer &s) const
        {
            s.writeU8(static_cast<std::uint8_t>(EventKind::DirFill));
            s.writeU16(dir->tileId);
            s.writeU64(region);
        }
    };

    /** Serialize / restore all mutable tile state (L2 sets, active
     *  transactions, wait queues, Bloom counters, occupancy, stats). */
    void saveState(Serializer &s) const;
    bool restoreState(Deserializer &d);

  private:
    /** One L2 block + directory entry. */
    struct L2Entry
    {
        bool valid = false;
        /** Data words are being fetched from memory. */
        bool filling = false;
        bool dirty = false;
        Addr region = 0;
        std::uint64_t lruStamp = 0;
        CoreSet readers;
        CoreSet writers;
        /**
         * Data words, inline: fetchFromMemory fills them with one
         * bulk memcpy from the memory image and never allocates.
         * wordCount is 0 until the first fill and regionWords()
         * afterwards (it survives slot reuse, exactly like the size
         * of the heap vector this replaces, so protocheck
         * fingerprints are unchanged).
         */
        std::array<std::uint64_t, kMaxRegionWords> words;
        unsigned wordCount = 0;
    };

    /** An in-flight transaction (request or inclusive-eviction recall). */
    struct Txn
    {
        enum class Kind { Request, Recall };
        Kind kind = Kind::Request;
        MsgType reqType = MsgType::GETS;
        CoreId requester = 0;
        WordRange reqRange;
        bool upgrade = false;
        unsigned pending = 0;
        bool waitingUnblock = false;
        /** A probed owner sent DATA directly to the requester. */
        bool directSupplied = false;
        /** The requester's UNBLOCK arrived before respond() ran. */
        bool unblocked = false;
        /** Recall only: the region whose miss triggered the recall. */
        Addr parentRegion = 0;

        /** Cycle the transaction began (deadlock-watchdog bound). */
        Cycle start = 0;
        /** Abstract state when the transaction began (coverage). */
        DirState covBefore = DirState::NP;
        /** Abstract event of this transaction (coverage). */
        DirEvent covEvent = DirEvent::GetS;
    };

    Cycle occupy(Cycle latency);
    void sendMsg(CoherenceMsg msg, Cycle when);

    unsigned setIndexOf(Addr region) const;
    L2Entry *lookup(Addr region);
    /** True when a region has an active txn or queued messages. */
    bool busy(Addr region) const;

    void dispatch(const CoherenceMsg &msg);
    void startRequest(const CoherenceMsg &msg);
    void beginRecall(Addr victim, Addr parent);
    void finishRecall(Addr victim);
    void fetchFromMemory(Addr region);
    /** FillEvent body: copy the words in and run the probe phase. */
    void finishFill(Addr region);
    void probePhase(Addr region);
    void handleProbeResponse(const CoherenceMsg &msg);
    void respond(Addr region);
    void handlePut(const CoherenceMsg &msg);
    void finishTxn(Addr region);
    void drainQueue(Addr region);

    /** Abstract coverage state of a region's sharer sets. */
    DirState absState(const L2Entry *entry) const;
    /** Record into the coverage matrix (no-op without a tracker). */
    void cov(DirState from, DirEvent ev, DirState to);

    void patchPayload(L2Entry &entry, const MsgData &data);
    void updateSetsFromResponse(L2Entry &entry, const CoherenceMsg &msg);
    void recordOwnedCensus(const L2Entry &entry);

    // Sharer-set transitions: every mutation goes through these so an
    // imprecise (Bloom) summary stays a superset of the exact sets.
    void setReader(L2Entry &entry, CoreId core);
    void clearReader(L2Entry &entry, CoreId core);
    void setWriter(L2Entry &entry, CoreId core);
    void clearWriter(L2Entry &entry, CoreId core);
    /** Drop every tracked sharer of @p entry (slot reuse). */
    void clearAllSharers(L2Entry &entry);
    /** Probe-target sets: exact, or the Bloom superset. */
    CoreSet probeWriters(const L2Entry &entry) const;
    CoreSet probeReaders(const L2Entry &entry) const;

    const SystemConfig &cfg;
    TileId tileId;
    EventQueue &eventq;
    Router &router;
    WordStore &memImage;
    ConformanceCoverage *coverage;

    unsigned setsPerTile;
    std::vector<std::vector<L2Entry>> sets;

    // Per-region transaction and wait-queue bookkeeping: flat
    // open-addressing tables plus a pooled FIFO arena, so the
    // steady-state request path performs no node allocation. Entry
    // pointers are invalidated by any insert or erase on the same
    // table (backshift deletion relocates entries) — re-find after
    // every dispatch.
    AddrTable<Txn> active;
    AddrTable<PooledFifo<CoherenceMsg>::Queue> waiting;
    PooledFifo<CoherenceMsg> waitPool;

    /** TaglessBloom mode: Bloom-summarized sharer tracking. */
    std::unique_ptr<CountingBloomSharers> bloomReaders;
    std::unique_ptr<CountingBloomSharers> bloomWriters;

    std::uint64_t lruClock = 0;
    Cycle busyUntil = 0;
    /** Occupancy fault injection (cfg.occupancyJitter). */
    Rng occRng;
};

} // namespace protozoa

#endif // PROTOZOA_PROTOCOL_DIR_CONTROLLER_HH
