/**
 * @file
 * Router: the interface controllers use to inject messages into the
 * interconnect. The System implements it on top of the Mesh, routing
 * to the L1 or directory plane of the destination node.
 */

#ifndef PROTOZOA_PROTOCOL_ROUTER_HH
#define PROTOZOA_PROTOCOL_ROUTER_HH

#include "protocol/coherence_msg.hh"

namespace protozoa {

class Router
{
  public:
    virtual ~Router() = default;

    /** Deliver @p msg to msg.dstNode (L1 or directory plane). */
    virtual void send(CoherenceMsg msg) = 0;
};

} // namespace protozoa

#endif // PROTOZOA_PROTOCOL_ROUTER_HH
