#include "protocol/coherence_msg.hh"

#include <sstream>

namespace protozoa {

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::GETS:     return "GETS";
      case MsgType::GETX:     return "GETX";
      case MsgType::PUT:      return "PUT";
      case MsgType::UNBLOCK:  return "UNBLOCK";
      case MsgType::FWD_GETS: return "FWD_GETS";
      case MsgType::FWD_GETX: return "FWD_GETX";
      case MsgType::INV:      return "INV";
      case MsgType::WB_RESP:  return "WB_RESP";
      case MsgType::ACK:      return "ACK";
      case MsgType::ACK_S:    return "ACK_S";
      case MsgType::NACK:     return "NACK";
      case MsgType::DATA:     return "DATA";
      case MsgType::WB_ACK:   return "WB_ACK";
    }
    return "?";
}

unsigned
CoherenceMsg::dataWords() const
{
    return data.count();
}

unsigned
CoherenceMsg::sizeBytes(unsigned control_bytes) const
{
    return control_bytes + dataWords() * kWordBytes;
}

CtrlClass
CoherenceMsg::ctrlClass() const
{
    switch (type) {
      case MsgType::GETS:
      case MsgType::GETX:
        return CtrlClass::Req;
      case MsgType::FWD_GETS:
      case MsgType::FWD_GETX:
        return CtrlClass::Fwd;
      case MsgType::INV:
        return CtrlClass::Inv;
      case MsgType::ACK:
      case MsgType::ACK_S:
      case MsgType::WB_ACK:
      case MsgType::UNBLOCK:
        return CtrlClass::Ack;
      case MsgType::NACK:
        return CtrlClass::Nack;
      case MsgType::DATA:
      case MsgType::WB_RESP:
      case MsgType::PUT:
        return CtrlClass::DataHdr;
    }
    return CtrlClass::Ack;
}

std::string
CoherenceMsg::toString() const
{
    std::ostringstream os;
    os << msgTypeName(type) << " region=0x" << std::hex << region
       << std::dec << " range=" << range.toString()
       << " sender=" << sender << " req=" << requester
       << " words=" << dataWords();
    if (type == MsgType::DATA)
        os << " grant=" << static_cast<int>(grant);
    return os.str();
}

std::uint64_t
CoherenceMsg::fingerprint() const
{
    auto mix = [](std::uint64_t z) {
        z += 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    };
    std::uint64_t h = 0x70726f746f636865ULL;  // "protoche"
    auto feed = [&](std::uint64_t v) { h = mix(h ^ v); };

    feed(static_cast<std::uint64_t>(type));
    feed((std::uint64_t(srcNode) << 32) | dstNode);
    feed((std::uint64_t(sender) << 17) | requester);
    feed(region);
    feed((std::uint64_t(range.start) << 8) | range.end);
    feed((std::uint64_t(reqFetchRange.start) << 8) | reqFetchRange.end);
    std::uint64_t flags = 0;
    flags |= std::uint64_t(dstIsDir) << 0;
    flags |= std::uint64_t(keepNonOverlap) << 1;
    flags |= std::uint64_t(revokeWritePerm) << 2;
    flags |= std::uint64_t(tryDirect) << 3;
    flags |= std::uint64_t(suppliedDirect) << 4;
    flags |= std::uint64_t(stillOwner) << 5;
    flags |= std::uint64_t(stillSharer) << 6;
    flags |= std::uint64_t(upgrade) << 7;
    flags |= std::uint64_t(last) << 8;
    flags |= std::uint64_t(demoteOwner) << 9;
    flags |= std::uint64_t(static_cast<unsigned>(grant)) << 10;
    feed(flags);
    feed(data.valid);
    data.forEachWord([&](unsigned w, std::uint64_t v) {
        feed((std::uint64_t(w) << 56) ^ v);
    });
    return h;
}

} // namespace protozoa
