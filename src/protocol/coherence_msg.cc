#include "protocol/coherence_msg.hh"

#include <sstream>

namespace protozoa {

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::GETS:     return "GETS";
      case MsgType::GETX:     return "GETX";
      case MsgType::PUT:      return "PUT";
      case MsgType::UNBLOCK:  return "UNBLOCK";
      case MsgType::FWD_GETS: return "FWD_GETS";
      case MsgType::FWD_GETX: return "FWD_GETX";
      case MsgType::INV:      return "INV";
      case MsgType::WB_RESP:  return "WB_RESP";
      case MsgType::ACK:      return "ACK";
      case MsgType::ACK_S:    return "ACK_S";
      case MsgType::NACK:     return "NACK";
      case MsgType::DATA:     return "DATA";
      case MsgType::WB_ACK:   return "WB_ACK";
    }
    return "?";
}

unsigned
CoherenceMsg::dataWords() const
{
    return data.count();
}

unsigned
CoherenceMsg::sizeBytes(unsigned control_bytes) const
{
    return control_bytes + dataWords() * kWordBytes;
}

CtrlClass
CoherenceMsg::ctrlClass() const
{
    switch (type) {
      case MsgType::GETS:
      case MsgType::GETX:
        return CtrlClass::Req;
      case MsgType::FWD_GETS:
      case MsgType::FWD_GETX:
        return CtrlClass::Fwd;
      case MsgType::INV:
        return CtrlClass::Inv;
      case MsgType::ACK:
      case MsgType::ACK_S:
      case MsgType::WB_ACK:
      case MsgType::UNBLOCK:
        return CtrlClass::Ack;
      case MsgType::NACK:
        return CtrlClass::Nack;
      case MsgType::DATA:
      case MsgType::WB_RESP:
      case MsgType::PUT:
        return CtrlClass::DataHdr;
    }
    return CtrlClass::Ack;
}

std::string
CoherenceMsg::toString() const
{
    std::ostringstream os;
    os << msgTypeName(type) << " region=0x" << std::hex << region
       << std::dec << " range=" << range.toString()
       << " sender=" << sender << " req=" << requester
       << " words=" << dataWords();
    if (type == MsgType::DATA)
        os << " grant=" << static_cast<int>(grant);
    return os.str();
}

} // namespace protozoa
