/**
 * @file
 * Private L1 cache controller for the Protozoa protocol family.
 *
 * Implements the L1 side of Fig. 8: stable states I/S/E/M per Amoeba
 * block, transient IS/IM (tracked in the MSHR), and the multi-block
 * CHECK / GATHER / WRITEBACK snoop sequence of Fig. 3 (modelled as
 * extra occupancy per gathered block, the CPU_B/COH_B blocking states).
 *
 * Protocol-variant behaviour is *not* encoded here: the directory
 * expresses it entirely through the probe range and the
 * keepNonOverlap / revokeWritePerm flags, so one L1 implementation
 * serves MESI, Protozoa-SW, Protozoa-SW+MR and Protozoa-MW.
 *
 * The legal (state, event) -> next-state tuples of this controller —
 * stable I/S/E/M per block plus the IS/IM/SM/SM_B transients of the
 * single MSHR — are enumerated in the documented transition inventory
 * of protocol/conformance.hh (the implementation-level Table 2).
 * Every transition taken at the record sites below is checked against
 * that inventory at run time: an undocumented tuple panics.
 */

#ifndef PROTOZOA_PROTOCOL_L1_CONTROLLER_HH
#define PROTOZOA_PROTOCOL_L1_CONTROLLER_HH

#include <functional>
#include <memory>

#include "cache/amoeba_cache.hh"
#include "cache/mshr.hh"
#include "cache/spatial_predictor.hh"
#include "common/config.hh"
#include "common/event_queue.hh"
#include "common/rng.hh"
#include "common/serialize.hh"
#include "common/snapshot_tags.hh"
#include "common/stats.hh"
#include "mem/golden_memory.hh"
#include "protocol/coherence_msg.hh"
#include "protocol/conformance.hh"
#include "protocol/router.hh"

namespace protozoa {

/** One core-issued memory access (always within a single word). */
struct MemAccess
{
    Addr addr = 0;
    bool isWrite = false;
    Pc pc = 0;
    /** Value to store (writes only). */
    std::uint64_t storeValue = 0;
};

class L1Controller
{
  public:
    /** Completion callback; carries the loaded value (0 for stores). */
    using AccessCallback = std::function<void(std::uint64_t)>;

    L1Controller(CoreId id, const SystemConfig &cfg, EventQueue &eq,
                 Router &router, GoldenMemory *golden,
                 ConformanceCoverage *coverage = nullptr);

    /**
     * Issue a memory access. The in-order core model guarantees at
     * most one outstanding access per L1.
     */
    void requestAccess(const MemAccess &acc, AccessCallback done);

    /** Deliver a coherence message from the interconnect. */
    void receive(CoherenceMsg msg);

    /** Classify still-resident blocks into the used/unused totals. */
    void finalizeStats();

    CoreId id() const { return coreId; }
    bool hasOutstandingMiss() const { return mshrs.size() > 0; }

    L1Stats stats;

    // --- white-box access for tests and the deadlock watchdog ---
    AmoebaCache &cacheStorage() { return cache; }
    SpatialPredictor &predictorPolicy() { return *predictor; }
    const WbBuffer &writebackBuffer() const { return wbBuffer; }
    const MshrFile &mshrFile() const { return mshrs; }

    // --- saveable events (snapshot subsystem) ---

    /** Pipeline-delayed hand-off of one outgoing message to the
     *  router (the mesh entry point). */
    struct SendEvent
    {
        L1Controller *l1;
        CoherenceMsg msg;

        void operator()() { l1->router.send(std::move(msg)); }

        void
        saveEvent(Serializer &s) const
        {
            s.writeU8(static_cast<std::uint8_t>(EventKind::L1Send));
            s.writeU16(l1->coreId);
            s.writeRaw(msg);
        }
    };

    /** Completion of the outstanding core access: fires the parked
     *  pendingDone callback with the loaded value. */
    struct CompleteEvent
    {
        L1Controller *l1;
        std::uint64_t value;

        void operator()() const { l1->firePendingDone(value); }

        void
        saveEvent(Serializer &s) const
        {
            s.writeU8(static_cast<std::uint8_t>(EventKind::L1Complete));
            s.writeU16(l1->coreId);
            s.writeU64(value);
        }
    };

    // --- snapshot hooks ---

    /** True when a core access is awaiting its CompleteEvent. */
    bool hasPendingDone() const { return static_cast<bool>(pendingDone); }

    /** Reinstall the completion callback after a snapshot restore
     *  (callbacks themselves are not serializable). */
    void restorePendingDone(AccessCallback cb) { pendingDone = std::move(cb); }

    /** Move the parked completion out and invoke it (CompleteEvent). */
    void
    firePendingDone(std::uint64_t value)
    {
        PROTO_ASSERT(pendingDone, "completion fired with nothing parked");
        auto cb = std::move(pendingDone);
        pendingDone = nullptr;
        cb(value);
    }

    /** Serialize / restore all mutable controller state (cache,
     *  predictor, MSHRs, writeback buffer, occupancy, stats).
     *  @p had_pending reports whether a completion was parked at save
     *  time; the caller reinstalls the (unserializable) callback via
     *  restorePendingDone. */
    void saveState(Serializer &s) const;
    bool restoreState(Deserializer &d, bool &had_pending);

  private:
    /** Reserve the controller for @p latency cycles; returns finish. */
    Cycle occupy(Cycle latency);

    /**
     * Fill in source fields and transmit at @p when.
     * @param count_stats when false the sender does not account the
     *        message (peer-to-peer DATA is accounted at the receiver
     *        only, keeping L1 totals equal to mesh totals).
     */
    void sendMsg(CoherenceMsg msg, Cycle when, bool count_stats = true);

    /**
     * 3-hop attempt: gather the words of @p range from the resident
     * blocks of @p region (before any invalidation).
     * @return true and fills @p out when fully covered.
     */
    bool tryCollectDirect(Addr region, const WordRange &range,
                          MsgData &out);

    /** Send a peer-to-peer DATA for a successful 3-hop forward. */
    void sendDirectData(const CoherenceMsg &probe, GrantState grant,
                        const MsgData &words, Cycle when);

    /** Count the control/header bytes of a message (both directions). */
    void countCtrl(const CoherenceMsg &msg);

    /** Count outgoing data words as used/unused by their touched bits. */
    void countOutgoingData(const WordRange &range, WordMask touched);

    /**
     * Account a dying block (incoming-direction used/unused bytes) and
     * train the predictor from its touched bitmap.
     */
    void classifyDeath(const AmoebaBlock &blk);

    /** Home directory tile of @p region. */
    unsigned homeTile(Addr region) const;

    void handleHit(AmoebaBlock *blk, const MemAccess &acc, unsigned word);
    void handleMiss(const MemAccess &acc, Addr region, unsigned word);
    void handleData(const CoherenceMsg &msg);
    void handleFwdGetS(const CoherenceMsg &msg);
    void handleInvProbe(const CoherenceMsg &msg);

    /** Evicted-block disposal: silent drop or PUT via the WB buffer. */
    void disposeEvicted(AmoebaCache::Evicted &evicted, Cycle when);

    /** Abstract stable state of a block, for coverage recording. */
    static L1State abstractOf(BlockState s);
    /** Record into the coverage matrix (no-op without a tracker). */
    void cov(L1State from, L1Event ev, L1State to);

    const SystemConfig &cfg;
    CoreId coreId;
    EventQueue &eventq;
    Router &router;
    GoldenMemory *golden;
    ConformanceCoverage *coverage;

    AmoebaCache cache;
    std::unique_ptr<SpatialPredictor> predictor;
    MshrFile mshrs;
    WbBuffer wbBuffer;

    /** Completion callback of the single outstanding core access. */
    AccessCallback pendingDone;

    Cycle busyUntil = 0;
    /** Occupancy fault injection (cfg.occupancyJitter). */
    Rng occRng;
};

} // namespace protozoa

#endif // PROTOZOA_PROTOCOL_L1_CONTROLLER_HH
