#include "protocol/l1_controller.hh"

#include <algorithm>
#include <bit>

#include "common/log.hh"

namespace protozoa {

L1Controller::L1Controller(CoreId id, const SystemConfig &config,
                           EventQueue &eq, Router &rt, GoldenMemory *gm,
                           ConformanceCoverage *cov_tracker)
    : cfg(config), coreId(id), eventq(eq), router(rt), golden(gm),
      coverage(cov_tracker), cache(config),
      predictor(makePredictor(config)), mshrs(1),
      occRng(config.seed ^ 0x6c31ULL ^ (std::uint64_t(id) << 40))
{
}

L1State
L1Controller::abstractOf(BlockState s)
{
    switch (s) {
      case BlockState::S: return L1State::S;
      case BlockState::E: return L1State::E;
      case BlockState::M: return L1State::M;
    }
    panic("unknown block state");
}

void
L1Controller::cov(L1State from, L1Event ev, L1State to)
{
    if (coverage)
        coverage->recordL1(from, ev, to);
}

Cycle
L1Controller::occupy(Cycle latency)
{
    if (cfg.occupancyJitter)
        latency += occRng.below(cfg.occupancyJitterMax + 1);
    const Cycle start = std::max(eventq.now(), busyUntil);
    busyUntil = start + latency;
    return busyUntil;
}

unsigned
L1Controller::homeTile(Addr region) const
{
    return cfg.homeTileOf(region);
}

void
L1Controller::countCtrl(const CoherenceMsg &msg)
{
    stats.ctrlBytes[static_cast<unsigned>(msg.ctrlClass())] +=
        cfg.controlBytes;
}

void
L1Controller::countOutgoingData(const WordRange &range, WordMask touched)
{
    const unsigned used = static_cast<unsigned>(
        std::popcount(touched & range.mask()));
    stats.usedDataBytes +=
        static_cast<std::uint64_t>(used) * kWordBytes;
    stats.unusedDataBytes +=
        static_cast<std::uint64_t>(range.words() - used) * kWordBytes;
}

void
L1Controller::classifyDeath(const AmoebaBlock &blk)
{
    const unsigned used = blk.touchedWords();
    stats.usedDataBytes += static_cast<std::uint64_t>(used) * kWordBytes;
    stats.unusedDataBytes +=
        static_cast<std::uint64_t>(blk.untouchedWords()) * kWordBytes;
    predictor->learn(blk.fetchPc, blk.missWord, blk.touched, blk.range);
}

void
L1Controller::sendMsg(CoherenceMsg msg, Cycle when, bool count_stats)
{
    msg.srcNode = coreId;
    msg.sender = coreId;
    PROTO_DTRACE("l1.%u -> %s stillO=%d stillS=%d last=%d demote=%d",
                 coreId, msg.toString().c_str(), msg.stillOwner,
                 msg.stillSharer, msg.last, msg.demoteOwner);
    if (count_stats)
        countCtrl(msg);
    eventq.scheduleAt(when, SendEvent{this, std::move(msg)});
}

bool
L1Controller::tryCollectDirect(Addr region, const WordRange &range,
                               MsgData &out)
{
    if (range.empty())
        return false;
    out.clear();
    AmoebaCache::BlockPtrs blocks;
    cache.overlapping(region, range, blocks);
    WordMask covered = 0;
    for (AmoebaBlock *b : blocks) {
        const WordRange part = b->range.intersect(range);
        out.setRange(part, &b->words[part.start - b->range.start]);
        covered |= part.mask();
    }
    return covered == range.mask();
}

void
L1Controller::sendDirectData(const CoherenceMsg &probe, GrantState grant,
                             const MsgData &words, Cycle when)
{
    CoherenceMsg data;
    data.type = MsgType::DATA;
    data.dstNode = probe.requester;
    data.dstIsDir = false;
    data.region = probe.region;
    data.range = probe.reqFetchRange;
    data.requester = probe.requester;
    data.grant = grant;
    data.data = words;
    // Peer DATA is accounted at the receiving L1 only, like
    // directory-sourced DATA.
    sendMsg(std::move(data), when, /*count_stats=*/false);
}

void
L1Controller::requestAccess(const MemAccess &acc, AccessCallback done)
{
    const Addr region = regionBase(acc.addr, cfg.regionBytes);
    const unsigned word = wordIndexIn(acc.addr, cfg.regionBytes);

    if (acc.isWrite)
        ++stats.stores;
    else
        ++stats.loads;

    AmoebaBlock *blk = cache.findCovering(region, word);
    const bool hit =
        blk && (!acc.isWrite || blk->state != BlockState::S);

    if (hit) {
        ++stats.hits;
        pendingDone = std::move(done);
        handleHit(blk, acc, word);
    } else {
        ++stats.misses;
        pendingDone = std::move(done);
        handleMiss(acc, region, word);
    }
}

void
L1Controller::handleHit(AmoebaBlock *blk, const MemAccess &acc,
                        unsigned word)
{
    cache.touchLru(blk);
    blk->touched |= WordMask(1) << word;

    const L1State before = abstractOf(blk->state);
    std::uint64_t value = 0;
    if (acc.isWrite) {
        blk->state = BlockState::M;   // silent E->M upgrade included
        blk->wordAt(word) = acc.storeValue;
        if (golden)
            golden->commitStore(acc.addr, acc.storeValue);
    } else {
        value = blk->wordAt(word);
        if (golden && cfg.checkValues &&
            !golden->checkLoad(acc.addr, value)) {
            warn("core %u cycle %llu: load hit %llx observed %llx, "
                 "oracle %llx",
                 coreId,
                 static_cast<unsigned long long>(eventq.now()),
                 static_cast<unsigned long long>(acc.addr),
                 static_cast<unsigned long long>(value),
                 static_cast<unsigned long long>(
                     golden->lastExpectedValue()));
        }
    }
    cov(before, acc.isWrite ? L1Event::Store : L1Event::Load,
        abstractOf(blk->state));

    const Cycle done_at = occupy(cfg.l1Latency);
    eventq.scheduleAt(done_at, CompleteEvent{this, value});
}

void
L1Controller::handleMiss(const MemAccess &acc, Addr region, unsigned word)
{
    PROTO_ASSERT(!mshrs.full(), "core issued access with MSHR busy");

    const WordRange need(word, word);
    const unsigned region_words = cfg.regionWords();

    // Upgrade path: a resident S block already holds the word; ask for
    // permission over exactly that block's range.
    AmoebaBlock *resident = cache.findCovering(region, word);
    bool upgrade = false;
    WordRange pred;
    if (resident) {
        PROTO_ASSERT(acc.isWrite && resident->state == BlockState::S,
                     "miss with covering block that is not an S-write");
        upgrade = true;
        pred = resident->range;
    } else {
        pred = predictor->predict(acc.pc, word, need, region_words);
        // Clip the predicted range so it cannot overlap any resident
        // block of the region (dirty data must never be refetched, and
        // insertion requires non-overlap).
        AmoebaCache::BlockPtrs resident_blocks;
        cache.blocksOfRegion(region, resident_blocks);
        for (AmoebaBlock *b : resident_blocks)
            pred = clipAgainst(pred, need, b->range);
    }

    MshrEntry entry;
    entry.region = region;
    entry.need = need;
    entry.pred = pred;
    entry.isWrite = acc.isWrite;
    entry.pc = acc.pc;
    entry.accessAddr = acc.addr;
    entry.storeValue = acc.storeValue;
    entry.issued = eventq.now();
    entry.upgrade = upgrade;
    mshrs.alloc(entry);

    if (upgrade)
        cov(L1State::S, L1Event::Store, L1State::SM);
    else
        cov(L1State::I, acc.isWrite ? L1Event::Store : L1Event::Load,
            acc.isWrite ? L1State::IM : L1State::IS);

    CoherenceMsg msg;
    msg.type = acc.isWrite ? MsgType::GETX : MsgType::GETS;
    msg.dstNode = homeTile(region);
    msg.dstIsDir = true;
    msg.region = region;
    msg.range = pred;
    msg.requester = coreId;
    msg.upgrade = upgrade;
    sendMsg(std::move(msg), occupy(cfg.l1Latency));
}

void
L1Controller::receive(CoherenceMsg msg)
{
    PROTO_DTRACE("l1.%u <- %s", coreId, msg.toString().c_str());
    countCtrl(msg);
    switch (msg.type) {
      case MsgType::DATA:
        handleData(msg);
        break;
      case MsgType::FWD_GETS:
        handleFwdGetS(msg);
        break;
      case MsgType::FWD_GETX:
      case MsgType::INV:
        ++stats.invMsgsReceived;
        handleInvProbe(msg);
        break;
      case MsgType::WB_ACK:
        wbBuffer.popFront(msg.region);
        break;
      default:
        panic("L1 %u: unexpected message %s", coreId,
              msg.toString().c_str());
    }
}

void
L1Controller::disposeEvicted(AmoebaCache::Evicted &evicted, Cycle when)
{
    // Group per region so that only the final PUT of a region carries
    // the `last` flag (the directory must not drop the sharer early).
    for (std::size_t i = 0; i < evicted.size(); ++i) {
        AmoebaBlock &blk = evicted[i];
        cov(abstractOf(blk.state), L1Event::Evict, L1State::I);
        classifyDeath(blk);
        if (!blk.dirty())
            continue;    // clean blocks retire silently

        bool later_same_region = false;
        for (std::size_t j = i + 1; j < evicted.size(); ++j) {
            if (evicted[j].region == blk.region) {
                later_same_region = true;
                break;
            }
        }

        PendingWb wb;
        wb.seg = DataSegment(blk.range, std::move(blk.words));
        wb.touched = blk.touched;
        wb.last = !later_same_region && !cache.hasRegion(blk.region);
        // Only demote when no block confers write permission any more
        // (an E block could still silently upgrade to M).
        wb.demoteOwner =
            !wb.last && !later_same_region &&
            !cache.hasWritableRegion(blk.region);

        countOutgoingData(blk.range, blk.touched);

        CoherenceMsg put;
        put.type = MsgType::PUT;
        put.dstNode = homeTile(blk.region);
        put.dstIsDir = true;
        put.region = blk.region;
        put.range = blk.range;
        put.data.addRun(wb.seg.range, wb.seg.words.data());
        put.last = wb.last;
        put.demoteOwner = wb.demoteOwner;

        wbBuffer.push(blk.region, std::move(wb));
        sendMsg(std::move(put), when);
    }
}

void
L1Controller::handleData(const CoherenceMsg &msg)
{
    MshrEntry *mshr = mshrs.find(msg.region);
    PROTO_ASSERT(mshr, "DATA without MSHR");

    const Addr region = msg.region;
    const unsigned word = wordIndexIn(mshr->accessAddr, cfg.regionBytes);
    const Cycle done_at = occupy(cfg.l1Latency);

    auto unblock = [&] {
        CoherenceMsg ub;
        ub.type = MsgType::UNBLOCK;
        ub.dstNode = homeTile(region);
        ub.dstIsDir = true;
        ub.region = region;
        sendMsg(std::move(ub), done_at);
    };

    auto complete = [&](std::uint64_t value) {
        mshrs.free(region);
        eventq.scheduleAt(done_at, CompleteEvent{this, value});
    };

    if (msg.data.empty()) {
        // Payload-free upgrade grant.
        PROTO_ASSERT(mshr->upgrade && msg.grant == GrantState::M,
                     "empty DATA outside the upgrade path");
        AmoebaBlock *blk = cache.findCovering(region, word);
        if (!blk || blk->state != BlockState::S) {
            // The block was invalidated while the upgrade was in
            // flight (Sec. 3.3 race): complete this transaction and
            // retry as a full GETX.
            PROTO_ASSERT(mshr->upgradeBroken || !blk,
                         "upgrade target mutated unexpectedly");
            cov(L1State::SM_B, L1Event::DataUpgrade, L1State::IM);
            unblock();
            mshr->upgrade = false;
            mshr->upgradeBroken = false;
            mshr->pred = predictor->predict(
                mshr->pc, word, mshr->need, cfg.regionWords());
            AmoebaCache::BlockPtrs resident_blocks;
            cache.blocksOfRegion(region, resident_blocks);
            for (AmoebaBlock *b : resident_blocks)
                mshr->pred = clipAgainst(mshr->pred, mshr->need, b->range);

            CoherenceMsg retry;
            retry.type = MsgType::GETX;
            retry.dstNode = homeTile(region);
            retry.dstIsDir = true;
            retry.region = region;
            retry.range = mshr->pred;
            retry.requester = coreId;
            sendMsg(std::move(retry), done_at);
            return;
        }
        // Promote the resident block in place.
        cov(L1State::SM, L1Event::DataUpgrade, L1State::M);
        blk->state = BlockState::M;
        blk->touched |= WordMask(1) << word;
        blk->wordAt(word) = mshr->storeValue;
        cache.touchLru(blk);
        if (golden)
            golden->commitStore(mshr->accessAddr, mshr->storeValue);
        unblock();
        complete(0);
        return;
    }

    PROTO_ASSERT(msg.data.valid == msg.range.mask() &&
                 msg.range.covers(mshr->need),
                 "DATA range mismatch");

    // The MSHR transient this fill retires, for coverage recording.
    const L1State transient = mshr->upgrade
        ? (mshr->upgradeBroken ? L1State::SM_B : L1State::SM)
        : (mshr->isWrite ? L1State::IM : L1State::IS);

    // Drop resident clean blocks the fill overlaps (the upgrade victim
    // or remnants); dirty overlap is impossible by construction.
    {
        AmoebaCache::BlockPtrs doomed;
        cache.overlapping(region, msg.range, doomed);
        for (AmoebaBlock *b : doomed) {
            PROTO_ASSERT(!b->dirty(), "fill overlaps dirty block");
            cov(abstractOf(b->state), L1Event::FillReplace, L1State::I);
            classifyDeath(*b);
            cache.removeExact(region, b->range);
        }
    }

    // Make room first, but dispose of the victims only after the fill
    // is resident: a PUT's last/demote flags must account for the
    // incoming block when a victim belongs to the same region.
    AmoebaCache::Evicted evicted;
    cache.makeRoom(region, msg.range, evicted);

    AmoebaBlock blk;
    blk.region = region;
    blk.range = msg.range;
    blk.fetchPc = mshr->pc;
    blk.missWord = static_cast<std::uint8_t>(word);
    blk.words.assign(msg.range.words(), 0);
    msg.data.copyOut(msg.range, blk.words.data());
    blk.touched = WordMask(1) << word;

    std::uint64_t value = 0;
    if (mshr->isWrite) {
        PROTO_ASSERT(msg.grant == GrantState::M, "GETX granted non-M");
        blk.state = BlockState::M;
        blk.wordAt(word) = mshr->storeValue;
        if (golden)
            golden->commitStore(mshr->accessAddr, mshr->storeValue);
    } else {
        PROTO_ASSERT(msg.grant != GrantState::M, "GETS granted M");
        blk.state = msg.grant == GrantState::E ? BlockState::E
                                               : BlockState::S;
        value = blk.wordAt(word);
        if (golden && cfg.checkValues &&
            !golden->checkLoad(mshr->accessAddr, value)) {
            warn("core %u cycle %llu: load fill %llx observed %llx, "
                 "oracle %llx",
                 coreId,
                 static_cast<unsigned long long>(eventq.now()),
                 static_cast<unsigned long long>(mshr->accessAddr),
                 static_cast<unsigned long long>(value),
                 static_cast<unsigned long long>(
                     golden->lastExpectedValue()));
        }
    }

    ++stats.blockSizeHist[std::min<unsigned>(msg.range.words(),
                                             kMaxRegionWords)];
    cov(transient, L1Event::Data, abstractOf(blk.state));
    cache.insert(std::move(blk));
    disposeEvicted(evicted, done_at);
    unblock();
    complete(value);
}

void
L1Controller::handleFwdGetS(const CoherenceMsg &msg)
{
    const Addr region = msg.region;
    MsgData payload;
    unsigned processed = 0;

    MsgData direct_words;
    const bool direct = msg.tryDirect &&
        tryCollectDirect(region, msg.reqFetchRange, direct_words);

    AmoebaCache::BlockPtrs snooped;
    cache.overlapping(region, msg.range, snooped);
    for (AmoebaBlock *b : snooped) {
        ++processed;
        cov(abstractOf(b->state), L1Event::FwdGetS, L1State::S);
        if (b->dirty()) {
            payload.addRun(b->range, b->words.data());
            countOutgoingData(b->range, b->touched);
            b->state = BlockState::S;
        } else if (b->state == BlockState::E) {
            b->state = BlockState::S;
        }
    }
    if (processed == 0)
        cov(L1State::I, L1Event::FwdGetS, L1State::I);

    wbBuffer.forEachOverlapping(
        region, msg.range, [&](const PendingWb &wb) {
            payload.addRun(wb.seg.range, wb.seg.words.data());
            countOutgoingData(wb.seg.range, wb.touched);
            ++processed;
        });

    // An E/M block that survives keeps silent-write permission, so the
    // directory must keep tracking this core as a writer.
    bool still_owner = false;
    bool still_sharer = false;
    AmoebaCache::BlockPtrs remaining;
    cache.blocksOfRegion(region, remaining);
    for (AmoebaBlock *b : remaining) {
        still_sharer = true;
        if (b->state != BlockState::S)
            still_owner = true;
    }
    // A dirty PUT in flight whose segment this (partial-range) probe
    // did not collect: stay tracked, or the directory drops the PUT's
    // data as stale. A sharer bit suffices and, unlike an owner bit,
    // cannot re-grow the writer set of a single-writer protocol.
    // debugLostStoreBug re-injects the pre-fix race for protocheck.
    if (!cfg.debugLostStoreBug &&
        wbBuffer.hasUncollected(region, msg.range))
        still_sharer = true;

    CoherenceMsg resp;
    if (!payload.empty())
        resp.type = MsgType::WB_RESP;
    else if (still_sharer)
        resp.type = MsgType::ACK_S;
    else
        resp.type = MsgType::NACK;
    resp.dstNode = homeTile(region);
    resp.dstIsDir = true;
    resp.region = region;
    resp.range = msg.range;
    resp.requester = msg.requester;
    resp.data = payload;
    resp.stillOwner = still_owner;
    resp.stillSharer = still_sharer;
    resp.suppliedDirect = direct;

    const Cycle when =
        occupy(cfg.l1Latency + cfg.l1GatherPerBlock * processed);
    if (direct)
        sendDirectData(msg, GrantState::S, direct_words, when);
    sendMsg(std::move(resp), when);
}

void
L1Controller::handleInvProbe(const CoherenceMsg &msg)
{
    const Addr region = msg.region;
    const L1Event cov_ev = msg.type == MsgType::FWD_GETX
        ? L1Event::FwdGetX : L1Event::Inv;
    MsgData payload;
    unsigned processed = 0;
    bool removed_any = false;

    MsgData direct_words;
    const bool direct = msg.tryDirect &&
        tryCollectDirect(region, msg.reqFetchRange, direct_words);

    PROTO_ASSERT(msg.keepNonOverlap ||
                 msg.range == WordRange::full(cfg.regionWords()),
                 "region-granularity probe with partial range");

    // CHECK + GATHER: overlapping blocks are written back (if dirty)
    // and invalidated whole, even on partial overlap (Sec. 3.2).
    SmallVec<WordRange, AmoebaCache::kScratchBlocks> doomed;
    {
        AmoebaCache::BlockPtrs hits;
        cache.overlapping(region, msg.range, hits);
        for (AmoebaBlock *b : hits)
            doomed.push_back(b->range);
    }
    for (const WordRange &r : doomed) {
        AmoebaBlock blk = cache.removeExact(region, r);
        ++processed;
        removed_any = true;
        ++stats.blocksInvalidated;
        cov(abstractOf(blk.state), cov_ev, L1State::I);
        if (blk.dirty()) {
            payload.addRun(blk.range, blk.words.data());
            countOutgoingData(blk.range, blk.touched);
        }
        classifyDeath(blk);

        // A racing upgrade loses its target block (Sec. 3.3 races).
        MshrEntry *mshr = mshrs.find(region);
        if (mshr && mshr->upgrade && r.contains(mshr->need.start) &&
            !mshr->upgradeBroken) {
            mshr->upgradeBroken = true;
            cov(L1State::SM, cov_ev, L1State::SM_B);
        }
    }
    if (!removed_any)
        cov(L1State::I, cov_ev, L1State::I);

    // Protozoa-SW+MR: the single-writer slot is being reassigned, so
    // surviving non-overlapping blocks lose write permission.
    if (msg.revokeWritePerm) {
        AmoebaCache::BlockPtrs survivors;
        cache.blocksOfRegion(region, survivors);
        for (AmoebaBlock *b : survivors) {
            if (b->state != BlockState::S)
                cov(abstractOf(b->state), L1Event::Revoke, L1State::S);
            if (b->dirty()) {
                payload.addRun(b->range, b->words.data());
                countOutgoingData(b->range, b->touched);
                ++processed;
            }
            b->state = BlockState::S;
        }
    }

    wbBuffer.forEachOverlapping(
        region, msg.range, [&](const PendingWb &wb) {
            payload.addRun(wb.seg.range, wb.seg.words.data());
            countOutgoingData(wb.seg.range, wb.touched);
            ++processed;
        });

    bool still_owner = false;
    bool still_sharer = false;
    AmoebaCache::BlockPtrs remaining;
    cache.blocksOfRegion(region, remaining);
    for (AmoebaBlock *b : remaining) {
        still_sharer = true;
        if (b->state != BlockState::S)
            still_owner = true;
    }
    // Same eviction race as in handleFwdGetS: an uncollected in-flight
    // writeback must keep this core tracked (as a sharer) so the
    // directory patches the PUT's data instead of dropping it.
    if (!cfg.debugLostStoreBug &&
        wbBuffer.hasUncollected(region, msg.range))
        still_sharer = true;

    CoherenceMsg resp;
    if (!payload.empty())
        resp.type = MsgType::WB_RESP;
    else if (still_sharer)
        resp.type = MsgType::ACK_S;
    else if (removed_any)
        resp.type = MsgType::ACK;
    else
        resp.type = MsgType::NACK;
    resp.dstNode = homeTile(region);
    resp.dstIsDir = true;
    resp.region = region;
    resp.range = msg.range;
    resp.requester = msg.requester;
    resp.data = payload;
    resp.stillOwner = still_owner;
    resp.stillSharer = still_sharer;
    resp.suppliedDirect = direct;

    const Cycle when =
        occupy(cfg.l1Latency + cfg.l1GatherPerBlock * processed);
    if (direct)
        sendDirectData(msg, GrantState::M, direct_words, when);
    sendMsg(std::move(resp), when);
}

void
L1Controller::finalizeStats()
{
    cache.forEach([this](const AmoebaBlock &blk) { classifyDeath(blk); });
}

void
L1Controller::saveState(Serializer &s) const
{
    static_assert(std::is_trivially_copyable_v<L1Stats>);
    s.writeRaw(stats);
    s.writeU64(busyUntil);
    std::uint64_t rng[4];
    occRng.stateWords(rng);
    for (const std::uint64_t w : rng)
        s.writeU64(w);
    s.writeU8(pendingDone ? 1 : 0);
    cache.saveState(s);
    predictor->saveState(s);
    mshrs.saveState(s);
    wbBuffer.saveState(s);
}

bool
L1Controller::restoreState(Deserializer &d, bool &had_pending)
{
    d.readRaw(stats);
    busyUntil = d.readU64();
    std::uint64_t rng[4];
    for (std::uint64_t &w : rng)
        w = d.readU64();
    occRng.setStateWords(rng);
    had_pending = d.readU8() != 0;
    if (d.failed())
        return false;
    return cache.restoreState(d) && predictor->restoreState(d) &&
           mshrs.restoreState(d) && wbBuffer.restoreState(d) &&
           !d.failed();
}

} // namespace protozoa
