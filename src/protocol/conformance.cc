#include "protocol/conformance.hh"

#include <sstream>

#include "common/log.hh"

namespace protozoa {

const char *
l1StateName(L1State s)
{
    switch (s) {
      case L1State::I: return "I";
      case L1State::S: return "S";
      case L1State::E: return "E";
      case L1State::M: return "M";
      case L1State::IS: return "IS";
      case L1State::IM: return "IM";
      case L1State::SM: return "SM";
      case L1State::SM_B: return "SM_B";
    }
    return "?";
}

const char *
l1EventName(L1Event e)
{
    switch (e) {
      case L1Event::Load: return "Load";
      case L1Event::Store: return "Store";
      case L1Event::Data: return "Data";
      case L1Event::DataUpgrade: return "DataUpgrade";
      case L1Event::FwdGetS: return "FwdGetS";
      case L1Event::FwdGetX: return "FwdGetX";
      case L1Event::Inv: return "Inv";
      case L1Event::Revoke: return "Revoke";
      case L1Event::Evict: return "Evict";
      case L1Event::FillReplace: return "FillReplace";
    }
    return "?";
}

const char *
dirStateName(DirState s)
{
    switch (s) {
      case DirState::NP: return "NP";
      case DirState::I: return "I";
      case DirState::R: return "R";
      case DirState::W: return "W";
      case DirState::WR: return "WR";
      case DirState::MW: return "MW";
    }
    return "?";
}

const char *
dirEventName(DirEvent e)
{
    switch (e) {
      case DirEvent::GetS: return "GetS";
      case DirEvent::GetX: return "GetX";
      case DirEvent::Upgrade: return "Upgrade";
      case DirEvent::Put: return "Put";
      case DirEvent::PutDemote: return "PutDemote";
      case DirEvent::PutLast: return "PutLast";
      case DirEvent::PutStale: return "PutStale";
      case DirEvent::Recall: return "Recall";
    }
    return "?";
}

unsigned
protocolBit(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::MESI: return P_MESI;
      case ProtocolKind::ProtozoaSW: return P_SW;
      case ProtocolKind::ProtozoaSWMR: return P_SWMR;
      case ProtocolKind::ProtozoaMW: return P_MW;
    }
    panic("unknown protocol kind");
}

const char *
knobProfileName(KnobProfile p)
{
    switch (p) {
      case KnobProfile::Base: return "base";
      case KnobProfile::ThreeHop: return "3hop";
      case KnobProfile::BloomDir: return "bloom";
      case KnobProfile::ThreeHopBloom: return "3hop+bloom";
    }
    return "?";
}

KnobProfile
knobProfileOf(const SystemConfig &cfg)
{
    const bool bloom = cfg.directory == DirectoryKind::TaglessBloom;
    if (cfg.threeHop)
        return bloom ? KnobProfile::ThreeHopBloom : KnobProfile::ThreeHop;
    return bloom ? KnobProfile::BloomDir : KnobProfile::Base;
}

namespace {

using S = L1State;
using E = L1Event;
using D = DirState;
using V = DirEvent;

/**
 * The documented L1 transition inventory (implementation-level
 * Table 2). Rows with a note are only reached by specific races; the
 * note is the "explained-unreachable" text for runs that miss them.
 */
const L1TransitionDoc kL1Inventory[] = {
    // --- hits ---
    {S::S, E::Load, S::S, P_ALL, ""},
    {S::E, E::Load, S::E, P_ALL, ""},
    {S::M, E::Load, S::M, P_ALL, ""},
    {S::E, E::Store, S::M, P_ALL, ""},   // silent E->M upgrade
    {S::M, E::Store, S::M, P_ALL, ""},
    // --- misses ---
    {S::I, E::Load, S::IS, P_ALL, ""},
    {S::I, E::Store, S::IM, P_ALL, ""},
    {S::S, E::Store, S::SM, P_ALL, ""},  // permission-only upgrade
    // --- fills ---
    {S::IS, E::Data, S::S, P_ALL, ""},
    {S::IS, E::Data, S::E, P_ALL, ""},
    {S::IM, E::Data, S::M, P_ALL, ""},
    {S::SM, E::DataUpgrade, S::M, P_ALL, ""},
    {S::SM_B, E::DataUpgrade, S::IM, P_ALL,
     "probe invalidated the upgrade target mid-flight; the payload-free "
     "grant is consumed and the miss retries as a full GETX"},
    {S::SM, E::Data, S::M, P_ALL,
     "upgrade denied the dataless grant (requester not in readers: lost "
     "an upgrade race, or writer-tracked after a secondary GETS), so "
     "DATA carries a payload while the S target is still resident"},
    {S::SM_B, E::Data, S::M, P_ALL,
     "upgrade denied the dataless grant AND broken by a probe before the "
     "payload DATA arrived (under MESI the upgrade-race loser always "
     "lands here: the winner's INV precedes the payload in FIFO order)"},
    {S::S, E::FillReplace, S::I, P_ALL,
     "incoming fill overlaps a resident clean block: the denied-upgrade "
     "payload drops its own S target (under MESI via three-hop "
     "forwarding, whose DATA can overtake the directory's INV)"},
    // --- evictions ---
    {S::S, E::Evict, S::I, P_ALL, ""},
    {S::E, E::Evict, S::I, P_ALL, ""},
    {S::M, E::Evict, S::I, P_ALL, ""},
    // --- forwarded read probes ---
    {S::M, E::FwdGetS, S::S, P_ALL, ""},
    {S::E, E::FwdGetS, S::S, P_ALL, ""},
    {S::S, E::FwdGetS, S::S, P_ALL,
     "writer-tracked core holding only S blocks in the probed range "
     "(partial blocks, or a Bloom false probe)"},
    {S::I, E::FwdGetS, S::I, P_ALL,
     "stale probe: the blocks left before it arrived (answered from the "
     "writeback buffer or NACKed)"},
    // --- invalidating probes ---
    {S::S, E::Inv, S::I, P_ALL, ""},
    {S::E, E::Inv, S::I, P_ALL,
     "INV reaches an exclusive owner only via an inclusive-eviction "
     "recall (request INVs target tracked readers)"},
    {S::M, E::Inv, S::I, P_ALL,
     "INV reaches a dirty owner only via an inclusive-eviction recall"},
    {S::S, E::FwdGetX, S::I, P_ALL,
     "writer-tracked core holding S blocks in the probed range"},
    {S::E, E::FwdGetX, S::I, P_ALL, ""},
    {S::M, E::FwdGetX, S::I, P_ALL, ""},
    {S::SM, E::Inv, S::SM_B, P_ALL, ""},
    {S::SM, E::FwdGetX, S::SM_B, P_ALL,
     "upgrade broken while the upgrader was tracked as a writer (the "
     "denied-dataless window), or by a Bloom false probe"},
    {S::I, E::Inv, S::I, P_ALL,
     "stale INV: the reader's blocks were already evicted"},
    {S::I, E::FwdGetX, S::I, P_ALL,
     "stale FWD_GETX: the owner's blocks were already written back"},
    // --- write-permission revocation (SW+MR single-writer slot) ---
    {S::E, E::Revoke, S::S, P_SWMR, ""},
    {S::M, E::Revoke, S::S, P_SWMR, ""},
};

/**
 * The documented directory transition inventory (implementation-level
 * Table 3). Request rows are transaction-granular: the from-state is
 * sampled when the request begins, the to-state after respond().
 */
const DirTransitionDoc kDirInventory[] = {
    // --- GETS ---
    {D::NP, V::GetS, D::W, P_ALL, ""},    // miss fill, exclusive grant
    {D::I, V::GetS, D::W, P_ALL,
     "entry resident with no sharers (all writebacks collected)"},
    {D::R, V::GetS, D::R, P_ALL, ""},
    {D::W, V::GetS, D::R, P_ALL, ""},     // owner demoted by the probe
    {D::W, V::GetS, D::WR, P_ADAPT,
     "owner keeps write permission on non-overlapping blocks"},
    {D::W, V::GetS, D::W, P_ALL,
     "tracked owner was stale (NACKed the probe) so the requester is "
     "granted E, or a secondary GETS from the owner itself"},
    {D::WR, V::GetS, D::WR, P_ADAPT, ""},
    {D::WR, V::GetS, D::R, P_ADAPT,
     "owner demoted by an overlapping GETS"},
    {D::MW, V::GetS, D::MW, P_MW, ""},
    {D::MW, V::GetS, D::WR, P_MW,
     "one of the concurrent writers demoted by an overlapping GETS"},
    {D::MW, V::GetS, D::R, P_MW,
     "every concurrent writer demoted by an overlapping GETS"},
    {D::MW, V::GetS, D::W, P_MW,
     "secondary GETS from one writer while the other's probe found no "
     "blocks (eviction PUT in flight), clearing its tracking"},
    // --- GETX (full fetch) ---
    {D::NP, V::GetX, D::W, P_ALL, ""},
    {D::I, V::GetX, D::W, P_ALL, ""},
    {D::R, V::GetX, D::W, P_ALL, ""},
    {D::R, V::GetX, D::WR, P_ADAPT,
     "readers with non-overlapping blocks survive the partial INV"},
    {D::W, V::GetX, D::W, P_ALL, ""},
    {D::W, V::GetX, D::WR, P_ADAPT,
     "old owner keeps non-overlapping blocks as a reader (SW+MR "
     "revocation, or MW with surviving S blocks)"},
    {D::W, V::GetX, D::MW, P_MW,
     "non-overlapping second writer joins the writer set"},
    {D::WR, V::GetX, D::W, P_ADAPT, ""},
    {D::WR, V::GetX, D::WR, P_ADAPT, ""},
    {D::WR, V::GetX, D::MW, P_MW, ""},
    {D::MW, V::GetX, D::W, P_MW,
     "request range overlapped every other writer's blocks"},
    {D::MW, V::GetX, D::WR, P_MW, ""},
    {D::MW, V::GetX, D::MW, P_MW, ""},
    // --- GETX flagged as upgrade ---
    {D::R, V::Upgrade, D::W, P_ALL, ""},
    {D::R, V::Upgrade, D::WR, P_ADAPT, ""},
    {D::NP, V::Upgrade, D::W, P_ALL,
     "entry recalled while the upgrade was in flight; served as a full "
     "fill (the L1 side retries via SM_B)"},
    {D::I, V::Upgrade, D::W, P_ALL,
     "upgrader's reader tracking was cleared by a racing transaction "
     "before the upgrade arrived"},
    {D::W, V::Upgrade, D::W, P_ALL,
     "upgrader not in readers (lost an upgrade race, or writer-tracked "
     "after a secondary GETS); denied the dataless grant and served with "
     "a payload"},
    {D::W, V::Upgrade, D::WR, P_ADAPT,
     "denied upgrade partially overlapped the existing writer, demoting "
     "it to reader"},
    {D::W, V::Upgrade, D::MW, P_MW,
     "denied upgrade whose range missed the existing writer's blocks, "
     "adding a second concurrent writer"},
    {D::WR, V::Upgrade, D::W, P_ADAPT, ""},
    {D::WR, V::Upgrade, D::WR, P_ADAPT, ""},
    {D::WR, V::Upgrade, D::MW, P_MW,
     "a tracked reader's upgrade range missed the existing writer's "
     "blocks, adding a second concurrent writer"},
    {D::MW, V::Upgrade, D::W, P_MW,
     "upgrade overlapped every other writer's blocks"},
    {D::MW, V::Upgrade, D::WR, P_MW, ""},
    {D::MW, V::Upgrade, D::MW, P_MW, ""},
    // --- writebacks ---
    {D::W, V::PutLast, D::I, P_ALL, ""},
    {D::W, V::PutDemote, D::R, P_PARTIAL,
     "writer evicted its last writable block but keeps S blocks"},
    {D::W, V::Put, D::W, P_PARTIAL,
     "writer evicted one dirty block and keeps write permission"},
    {D::WR, V::PutLast, D::R, P_ADAPT, ""},
    {D::WR, V::PutDemote, D::R, P_ADAPT, ""},
    {D::WR, V::Put, D::WR, P_ADAPT, ""},
    {D::WR, V::PutDemote, D::WR, P_ADAPT,
     "demote PUT from a core a racing probe already demoted to reader; "
     "a different core is the tracked writer"},
    {D::WR, V::PutLast, D::W, P_ADAPT,
     "last-block PUT from the region's only tracked reader (demoted by "
     "a racing probe before the PUT arrived)"},
    {D::WR, V::PutLast, D::WR, P_ADAPT,
     "last-block PUT from one of several tracked readers (demoted by a "
     "racing probe before the PUT arrived)"},
    {D::MW, V::PutLast, D::W, P_MW, ""},
    {D::MW, V::PutLast, D::WR, P_MW, ""},
    {D::MW, V::PutLast, D::MW, P_MW,
     "three or more concurrent writers, or the PUT came from a core a "
     "racing probe demoted to reader"},
    {D::MW, V::PutDemote, D::WR, P_MW, ""},
    {D::MW, V::PutDemote, D::MW, P_MW,
     "three or more concurrent writers, or the PUT came from a core a "
     "racing probe demoted to reader"},
    {D::MW, V::Put, D::MW, P_MW, ""},
    {D::R, V::PutLast, D::I, P_ALL,
     "PUT raced with a probe that demoted the writer to reader; it was "
     "the only sharer"},
    {D::R, V::PutLast, D::R, P_ALL,
     "PUT raced with a demoting probe; other readers remain"},
    {D::R, V::PutDemote, D::R, P_ALL,
     "demote PUT arriving after a probe already demoted the writer"},
    {D::R, V::Put, D::R, P_ALL,
     "non-final PUT arriving after a probe already demoted the writer"},
    // --- stale writebacks (untracked sender; the data was already
    // --- collected from the writeback buffer by a forwarded probe) ---
    {D::NP, V::PutStale, D::NP, P_ALL,
     "region recalled while the PUT was in flight"},
    {D::I, V::PutStale, D::I, P_ALL,
     "sender's tracking fully cleared while the PUT was in flight"},
    {D::R, V::PutStale, D::R, P_ALL,
     "sender invalidated by a probe while the PUT was in flight"},
    {D::W, V::PutStale, D::W, P_ALL,
     "another core took ownership while the PUT was in flight"},
    {D::WR, V::PutStale, D::WR, P_ADAPT,
     "sender's buffered writeback was collected by an overlapping "
     "probe that cleared its tracking; other writers and readers "
     "remain"},
    {D::MW, V::PutStale, D::MW, P_MW,
     "sender's buffered writeback was collected by an overlapping "
     "probe that cleared its tracking; multiple writers remain"},
    // --- inclusive-eviction recalls ---
    {D::I, V::Recall, D::NP, P_ALL,
     "victim entry with no tracked sharers"},
    {D::R, V::Recall, D::NP, P_ALL, ""},
    {D::W, V::Recall, D::NP, P_ALL, ""},
    {D::WR, V::Recall, D::NP, P_ADAPT, ""},
    {D::MW, V::Recall, D::NP, P_MW, ""},
};

} // namespace

const L1TransitionDoc *
ConformanceCoverage::l1Inventory(std::size_t &count)
{
    count = sizeof(kL1Inventory) / sizeof(kL1Inventory[0]);
    return kL1Inventory;
}

const DirTransitionDoc *
ConformanceCoverage::dirInventory(std::size_t &count)
{
    count = sizeof(kDirInventory) / sizeof(kDirInventory[0]);
    return kDirInventory;
}

ConformanceCoverage::ConformanceCoverage(ProtocolKind protocol,
                                         KnobProfile knob_profile)
    : proto(protocol), profile(knob_profile)
{
    const unsigned bit = protocolBit(proto);
    for (const auto &row : kL1Inventory) {
        if (row.protocols & bit)
            l1Doc[idx(row.from)][idx(row.ev)][idx(row.to)] = true;
    }
    for (const auto &row : kDirInventory) {
        if (row.protocols & bit)
            dirDoc[idx(row.from)][idx(row.ev)][idx(row.to)] = true;
    }
}

void
ConformanceCoverage::recordL1(L1State from, L1Event ev, L1State to)
{
    if (!l1Doc[idx(from)][idx(ev)][idx(to)])
        panic("undocumented L1 transition under %s: (%s, %s) -> %s",
              protocolName(proto), l1StateName(from), l1EventName(ev),
              l1StateName(to));
    seen[idx(profile)] = true;
    ++l1Counts[idx(profile)][idx(from)][idx(ev)][idx(to)];
}

void
ConformanceCoverage::recordDir(DirState from, DirEvent ev, DirState to)
{
    if (!dirDoc[idx(from)][idx(ev)][idx(to)])
        panic("undocumented directory transition under %s: "
              "(%s, %s) -> %s",
              protocolName(proto), dirStateName(from), dirEventName(ev),
              dirStateName(to));
    seen[idx(profile)] = true;
    ++dirCounts[idx(profile)][idx(from)][idx(ev)][idx(to)];
}

void
ConformanceCoverage::merge(const ConformanceCoverage &other)
{
    PROTO_ASSERT(other.proto == proto,
                 "merging coverage across protocols");
    for (unsigned p = 0; p < kNumKnobProfiles; ++p) {
        seen[p] = seen[p] || other.seen[p];
        for (unsigned f = 0; f < kNumL1States; ++f)
            for (unsigned e = 0; e < kNumL1Events; ++e)
                for (unsigned t = 0; t < kNumL1States; ++t)
                    l1Counts[p][f][e][t] += other.l1Counts[p][f][e][t];
        for (unsigned f = 0; f < kNumDirStates; ++f)
            for (unsigned e = 0; e < kNumDirEvents; ++e)
                for (unsigned t = 0; t < kNumDirStates; ++t)
                    dirCounts[p][f][e][t] += other.dirCounts[p][f][e][t];
    }
}

unsigned
ConformanceCoverage::documentedRows() const
{
    const unsigned bit = protocolBit(proto);
    unsigned n = 0;
    for (const auto &row : kL1Inventory)
        n += (row.protocols & bit) ? 1 : 0;
    for (const auto &row : kDirInventory)
        n += (row.protocols & bit) ? 1 : 0;
    return n;
}

unsigned
ConformanceCoverage::hitRows() const
{
    const unsigned bit = protocolBit(proto);
    unsigned n = 0;
    for (const auto &row : kL1Inventory) {
        if ((row.protocols & bit) &&
            l1Count(row.from, row.ev, row.to) > 0)
            ++n;
    }
    for (const auto &row : kDirInventory) {
        if ((row.protocols & bit) &&
            dirCount(row.from, row.ev, row.to) > 0)
            ++n;
    }
    return n;
}

unsigned
ConformanceCoverage::hitRowsAt(KnobProfile p) const
{
    const unsigned bit = protocolBit(proto);
    unsigned n = 0;
    for (const auto &row : kL1Inventory) {
        if ((row.protocols & bit) &&
            l1CountAt(p, row.from, row.ev, row.to) > 0)
            ++n;
    }
    for (const auto &row : kDirInventory) {
        if ((row.protocols & bit) &&
            dirCountAt(p, row.from, row.ev, row.to) > 0)
            ++n;
    }
    return n;
}

unsigned
ConformanceCoverage::unexplainedMisses() const
{
    const unsigned bit = protocolBit(proto);
    unsigned n = 0;
    for (const auto &row : kL1Inventory) {
        if ((row.protocols & bit) && row.note[0] == '\0' &&
            l1Count(row.from, row.ev, row.to) == 0)
            ++n;
    }
    for (const auto &row : kDirInventory) {
        if ((row.protocols & bit) && row.note[0] == '\0' &&
            dirCount(row.from, row.ev, row.to) == 0)
            ++n;
    }
    return n;
}

std::string
ConformanceCoverage::report(bool verbose) const
{
    const unsigned bit = protocolBit(proto);
    std::ostringstream os;
    os << "transition coverage [" << protocolName(proto) << "]: "
       << hitRows() << "/" << documentedRows() << " documented rows hit";
    const unsigned bad = unexplainedMisses();
    if (bad > 0)
        os << " (" << bad << " missed without explanation)";
    os << "\n";

    // Per-knob-profile breakdown, for the profiles that actually ran.
    for (unsigned p = 0; p < kNumKnobProfiles; ++p) {
        const auto kp = static_cast<KnobProfile>(p);
        if (!profileSeen(kp))
            continue;
        os << "  knobs " << knobProfileName(kp) << ": "
           << hitRowsAt(kp) << "/" << documentedRows()
           << " documented rows hit\n";
    }

    auto emitL1 = [&](bool hit) {
        for (const auto &row : kL1Inventory) {
            if (!(row.protocols & bit))
                continue;
            const std::uint64_t n = l1Count(row.from, row.ev, row.to);
            if ((n > 0) != hit)
                continue;
            os << "  L1  (" << l1StateName(row.from) << ", "
               << l1EventName(row.ev) << ") -> "
               << l1StateName(row.to);
            if (hit) {
                os << "  x" << n << "\n";
            } else {
                os << "  MISSED";
                if (row.note[0] != '\0')
                    os << " [explained: " << row.note << "]";
                os << "\n";
            }
        }
    };
    auto emitDir = [&](bool hit) {
        for (const auto &row : kDirInventory) {
            if (!(row.protocols & bit))
                continue;
            const std::uint64_t n = dirCount(row.from, row.ev, row.to);
            if ((n > 0) != hit)
                continue;
            os << "  dir (" << dirStateName(row.from) << ", "
               << dirEventName(row.ev) << ") -> "
               << dirStateName(row.to);
            if (hit) {
                os << "  x" << n << "\n";
            } else {
                os << "  MISSED";
                if (row.note[0] != '\0')
                    os << " [explained: " << row.note << "]";
                os << "\n";
            }
        }
    };

    if (verbose) {
        emitL1(true);
        emitDir(true);
    }
    emitL1(false);
    emitDir(false);
    return os.str();
}

} // namespace protozoa
