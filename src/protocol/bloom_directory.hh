/**
 * @file
 * Counting-Bloom sharer tracking: the paper's Sec. 6 alternative to
 * the in-cache directory ("bloom filter-based coherence directories
 * that can summarize the blocks in the cache in a fixed space",
 * citing TL / SPACE / SPATL).
 *
 * Each tile keeps, per tracked role (reader / writer), k hash tables
 * of per-core counters. Membership add/remove pair exactly with the
 * precise directory transitions, so a query always returns a superset
 * of the true sharer set; false positives cost extra probes that the
 * probed L1s answer with NACKs — exactly the imprecision/traffic
 * trade-off the paper alludes to, measurable with the
 * `ablation_bloomdir` harness.
 */

#ifndef PROTOZOA_PROTOCOL_BLOOM_DIRECTORY_HH
#define PROTOZOA_PROTOCOL_BLOOM_DIRECTORY_HH

#include <cstdint>
#include <vector>

#include "common/core_mask.hh"
#include "common/log.hh"
#include "common/serialize.hh"
#include "common/types.hh"

namespace protozoa {

class CountingBloomSharers
{
  public:
    /**
     * @param buckets  buckets per hash table (power of two).
     * @param hashes   number of hash tables (k).
     * @param cores    cores tracked per bucket.
     */
    CountingBloomSharers(unsigned buckets, unsigned hashes,
                         unsigned cores)
        : numBuckets(buckets), numHashes(hashes), numCores(cores),
          counters(static_cast<std::size_t>(buckets) * hashes * cores)
    {
        PROTO_ASSERT(buckets > 0 && (buckets & (buckets - 1)) == 0,
                     "bloom buckets must be a power of two");
        PROTO_ASSERT(hashes >= 1 && hashes <= 4, "1..4 hash tables");
        PROTO_ASSERT(cores <= kMaxCores, "bloom tracks at most "
                     "kMaxCores cores");
    }

    /** Record that @p core now holds (a block of) @p region. */
    void
    add(Addr region, CoreId core)
    {
        forEachSlot(region, core, [](std::uint16_t &c) {
            PROTO_ASSERT(c < 0xffff, "bloom counter overflow");
            ++c;
        });
    }

    /** Record that @p core no longer holds @p region. */
    void
    remove(Addr region, CoreId core)
    {
        forEachSlot(region, core, [](std::uint16_t &c) {
            PROTO_ASSERT(c > 0, "bloom counter underflow");
            --c;
        });
    }

    /** May @p core hold @p region? (no false negatives). */
    bool
    mayHold(Addr region, CoreId core) const
    {
        for (unsigned h = 0; h < numHashes; ++h) {
            if (counters[slot(h, bucketOf(region, h), core)] == 0)
                return false;
        }
        return true;
    }

    /** Set of cores that may hold @p region. */
    CoreSet
    query(Addr region) const
    {
        CoreSet out;
        for (CoreId c = 0; c < numCores; ++c) {
            if (mayHold(region, c))
                out.set(c);
        }
        return out;
    }

    /**
     * Modelled SRAM cost in bits of a (non-counting) presence-bit
     * implementation of the same geometry: buckets x hashes x cores.
     * (The counters here exist only to support exact removal in the
     * model; hardware proposals rebuild or use smaller counters.)
     */
    std::uint64_t
    storageBits() const
    {
        return static_cast<std::uint64_t>(numBuckets) * numHashes *
            numCores;
    }

    /** Serialize the counter array (snapshot subsystem). */
    void saveState(Serializer &s) const { s.writeVecRaw(counters); }

    /** Restore into a filter of the same geometry. */
    bool
    restoreState(Deserializer &d)
    {
        std::vector<std::uint16_t> c;
        if (!d.readVecRaw(c) || c.size() != counters.size())
            return false;
        counters = std::move(c);
        return true;
    }

  private:
    unsigned
    bucketOf(Addr region, unsigned h) const
    {
        // Independent hashes: multiply-shift with distinct odd
        // constants per table.
        static constexpr std::uint64_t kMul[4] = {
            0x9e3779b97f4a7c15ULL, 0xc2b2ae3d27d4eb4fULL,
            0x165667b19e3779f9ULL, 0x27d4eb2f165667c5ULL};
        const std::uint64_t x = (region >> 6) * kMul[h];
        return static_cast<unsigned>((x >> 40) & (numBuckets - 1));
    }

    std::size_t
    slot(unsigned h, unsigned bucket, CoreId core) const
    {
        return (static_cast<std::size_t>(h) * numBuckets + bucket) *
            numCores +
            core;
    }

    template <typename F>
    void
    forEachSlot(Addr region, CoreId core, F &&fn)
    {
        for (unsigned h = 0; h < numHashes; ++h)
            fn(counters[slot(h, bucketOf(region, h), core)]);
    }

    unsigned numBuckets;
    unsigned numHashes;
    unsigned numCores;
    std::vector<std::uint16_t> counters;
};

} // namespace protozoa

#endif // PROTOZOA_PROTOCOL_BLOOM_DIRECTORY_HH
