/**
 * @file
 * Coherence message vocabulary shared by the L1 and directory
 * controllers.
 *
 * The set matches a 4-hop MESI CMP directory protocol plus the Protozoa
 * additions of Table 3: variable-granularity probes (a probe names the
 * WordRange it applies to), the non-overlapping acknowledgment ACK_S,
 * and the PUT/PUT_LAST writeback pair that lets multiple blocks of one
 * region retire independently.
 */

#ifndef PROTOZOA_PROTOCOL_COHERENCE_MSG_HH
#define PROTOZOA_PROTOCOL_COHERENCE_MSG_HH

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/log.hh"
#include "common/small_vec.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "common/word_range.hh"

namespace protozoa {

enum class MsgType : std::uint8_t
{
    // L1 -> directory requests
    GETS,       ///< read miss: request words for reading
    GETX,       ///< write miss: request words for writing
    PUT,        ///< eviction writeback of one dirty block
    UNBLOCK,    ///< requester signals transaction completion

    // directory -> L1 probes
    FWD_GETS,   ///< downgrade probe on behalf of a reader
    FWD_GETX,   ///< invalidate/writeback probe on behalf of a writer
    INV,        ///< invalidate probe to a (clean) sharer

    // L1 -> directory probe responses
    WB_RESP,    ///< probe response carrying dirty data
    ACK,        ///< probe invalidated data; nothing retained
    ACK_S,      ///< probe acknowledged; non-overlapping data retained
    NACK,       ///< probe found nothing (stale sharer/owner info)

    // directory -> L1 responses
    DATA,       ///< miss response with words and a grant state
    WB_ACK,     ///< acknowledges an eviction PUT
};

const char *msgTypeName(MsgType t);

/** Permission granted with a DATA response. */
enum class GrantState : std::uint8_t { S, E, M };

/** Inline word buffer sized for the largest region (no heap). */
using WordsVec = SmallVec<std::uint64_t, kMaxRegionWords>;

/** A contiguous run of words with payload, within one region. */
struct DataSegment
{
    WordRange range;
    WordsVec words;

    DataSegment() = default;
    DataSegment(WordRange r, WordsVec w) : range(r), words(std::move(w))
    {
    }
};

/**
 * Message payload: the carried words of one region, as a validity mask
 * plus a region-indexed word array.
 *
 * Replaces the former vector<DataSegment>: the segments of any one
 * message are pairwise disjoint (concurrently resident blocks never
 * overlap, and an in-flight writeback's range cannot overlap a block
 * filled later, because its WB_ACK is ordered before that DATA on the
 * same directory->L1 channel), so a flat mask loses no information and
 * needs no per-segment heap storage. addRun() asserts the invariant.
 */
struct MsgData
{
    WordMask valid = 0;
    std::array<std::uint64_t, kMaxRegionWords> words;

    bool empty() const { return valid == 0; }

    unsigned
    count() const
    {
        return static_cast<unsigned>(std::popcount(valid));
    }

    void clear() { valid = 0; }

    bool has(unsigned w) const { return (valid >> w) & 1; }

    std::uint64_t
    at(unsigned w) const
    {
        PROTO_ASSERT(has(w), "reading absent payload word %u", w);
        return words[w];
    }

    void
    set(unsigned w, std::uint64_t v)
    {
        PROTO_ASSERT(w < kMaxRegionWords, "payload word out of range");
        PROTO_ASSERT(!has(w), "overlapping payload segments (word %u)",
                     w);
        words[w] = v;
        valid |= WordMask(1) << w;
    }

    /**
     * Bulk-add a contiguous run; @p src is indexed from r.start. The
     * disjointness invariant is validated once against the whole run
     * mask, and the payload words are copied with a single memcpy —
     * the per-word set() loop this replaces validated and copied one
     * word at a time.
     */
    void
    setRange(const WordRange &r, const std::uint64_t *src)
    {
        if (r.empty())
            return;
        const WordMask m = r.mask();
        PROTO_ASSERT(r.end < kMaxRegionWords, "payload run out of range");
        PROTO_ASSERT((valid & m) == 0,
                     "overlapping payload segments (run %u-%u)",
                     r.start, r.end);
        std::memcpy(&words[r.start], src,
                    std::size_t(r.words()) * sizeof(std::uint64_t));
        valid |= m;
    }

    /** Add a contiguous run; @p src is indexed from r.start. */
    void
    addRun(const WordRange &r, const std::uint64_t *src)
    {
        setRange(r, src);
    }

    /**
     * Bulk-copy the carried words of @p r into @p dst (indexed from
     * r.start). Every word of the range must be present; validated
     * once against the run mask.
     */
    void
    copyOut(const WordRange &r, std::uint64_t *dst) const
    {
        if (r.empty())
            return;
        PROTO_ASSERT((valid & r.mask()) == r.mask(),
                     "reading absent payload run %u-%u", r.start, r.end);
        std::memcpy(dst, &words[r.start],
                    std::size_t(r.words()) * sizeof(std::uint64_t));
    }

    /**
     * Mask-OR merge of another payload. The carried word sets must be
     * disjoint (validated with one AND); each of @p o's runs lands
     * with a single memcpy.
     */
    void
    mergeFrom(const MsgData &o)
    {
        PROTO_ASSERT((valid & o.valid) == 0,
                     "overlapping payload merge (masks %x & %x)",
                     valid, o.valid);
        forEachMaskRun(o.valid, [&](const WordRange &run) {
            std::memcpy(&words[run.start], &o.words[run.start],
                        std::size_t(run.words()) *
                            sizeof(std::uint64_t));
        });
        valid |= o.valid;
    }

    /** Visit every carried (word, value), ascending word order. */
    template <typename F>
    void
    forEachWord(F &&fn) const
    {
        WordMask rest = valid;
        while (rest) {
            const unsigned w =
                static_cast<unsigned>(std::countr_zero(rest));
            rest &= rest - 1;
            fn(w, words[w]);
        }
    }

    /**
     * Visit every carried maximal contiguous run as (range, src)
     * where @p src is indexed from range.start — the bulk-copy
     * counterpart of forEachWord.
     */
    template <typename F>
    void
    forEachRun(F &&fn) const
    {
        forEachMaskRun(valid, [&](const WordRange &run) {
            fn(run, &words[run.start]);
        });
    }
};

struct CoherenceMsg
{
    MsgType type = MsgType::ACK;

    /** Mesh node of the sender / receiver. */
    unsigned srcNode = 0;
    unsigned dstNode = 0;
    /** True when the destination is a directory tile, not an L1. */
    bool dstIsDir = false;

    /** L1 that sent the message (valid for L1-originated types). */
    CoreId sender = 0;
    /** Original requester a probe acts on behalf of. */
    CoreId requester = 0;

    Addr region = 0;
    /** Request / probe / data range. */
    WordRange range;

    /** Payload for DATA / WB_RESP / PUT. */
    MsgData data;

    // Probe semantics (directory -> L1).
    /** Keep blocks that do not overlap `range` (Protozoa-MW / SW+MR). */
    bool keepNonOverlap = false;
    /** Write back and clean *all* dirty blocks (SW+MR single-writer). */
    bool revokeWritePerm = false;
    /**
     * 3-hop mode: supply DATA for `reqFetchRange` directly to the
     * requester if the resident blocks cover it (Sec. 6).
     */
    bool tryDirect = false;
    /** The requester's fetch range (may differ from the probe range). */
    WordRange reqFetchRange;

    // Probe-response info (L1 -> directory).
    /** The probed L1 sent DATA straight to the requester (3-hop). */
    bool suppliedDirect = false;
    /** Sender still holds dirty block(s) of the region. */
    bool stillOwner = false;
    /** Sender still holds some block of the region. */
    bool stillSharer = false;

    /**
     * GETX only: the requester holds the words in S and asks for
     * permission alone; the directory answers with a payload-free DATA
     * when the requester is still a tracked reader.
     */
    bool upgrade = false;

    // PUT flags.
    /** No block of the region remains at the sender. */
    bool last = false;
    /** No dirty block remains: demote sender from writer to reader. */
    bool demoteOwner = false;

    /** Grant carried by DATA. */
    GrantState grant = GrantState::S;

    /** Total payload words across all segments. */
    unsigned dataWords() const;

    /** On-wire size: control header plus payload. */
    unsigned sizeBytes(unsigned control_bytes) const;

    /** Stats class of the header/control portion (Fig. 10). */
    CtrlClass ctrlClass() const;

    /**
     * Canonical 64-bit content hash: every protocol-visible field,
     * including the payload words. Two in-flight messages that would
     * behave identically on delivery hash equal (protocheck uses this
     * for the in-flight part of the state fingerprint).
     */
    std::uint64_t fingerprint() const;

    std::string toString() const;
};

} // namespace protozoa

#endif // PROTOZOA_PROTOCOL_COHERENCE_MSG_HH
