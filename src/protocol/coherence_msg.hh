/**
 * @file
 * Coherence message vocabulary shared by the L1 and directory
 * controllers.
 *
 * The set matches a 4-hop MESI CMP directory protocol plus the Protozoa
 * additions of Table 3: variable-granularity probes (a probe names the
 * WordRange it applies to), the non-overlapping acknowledgment ACK_S,
 * and the PUT/PUT_LAST writeback pair that lets multiple blocks of one
 * region retire independently.
 */

#ifndef PROTOZOA_PROTOCOL_COHERENCE_MSG_HH
#define PROTOZOA_PROTOCOL_COHERENCE_MSG_HH

#include <array>
#include <bit>
#include <cstdint>
#include <string>

#include "common/log.hh"
#include "common/small_vec.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "common/word_range.hh"

namespace protozoa {

enum class MsgType : std::uint8_t
{
    // L1 -> directory requests
    GETS,       ///< read miss: request words for reading
    GETX,       ///< write miss: request words for writing
    PUT,        ///< eviction writeback of one dirty block
    UNBLOCK,    ///< requester signals transaction completion

    // directory -> L1 probes
    FWD_GETS,   ///< downgrade probe on behalf of a reader
    FWD_GETX,   ///< invalidate/writeback probe on behalf of a writer
    INV,        ///< invalidate probe to a (clean) sharer

    // L1 -> directory probe responses
    WB_RESP,    ///< probe response carrying dirty data
    ACK,        ///< probe invalidated data; nothing retained
    ACK_S,      ///< probe acknowledged; non-overlapping data retained
    NACK,       ///< probe found nothing (stale sharer/owner info)

    // directory -> L1 responses
    DATA,       ///< miss response with words and a grant state
    WB_ACK,     ///< acknowledges an eviction PUT
};

const char *msgTypeName(MsgType t);

/** Permission granted with a DATA response. */
enum class GrantState : std::uint8_t { S, E, M };

/** Inline word buffer sized for the largest region (no heap). */
using WordsVec = SmallVec<std::uint64_t, kMaxRegionWords>;

/** A contiguous run of words with payload, within one region. */
struct DataSegment
{
    WordRange range;
    WordsVec words;

    DataSegment() = default;
    DataSegment(WordRange r, WordsVec w) : range(r), words(std::move(w))
    {
    }
};

/**
 * Message payload: the carried words of one region, as a validity mask
 * plus a region-indexed word array.
 *
 * Replaces the former vector<DataSegment>: the segments of any one
 * message are pairwise disjoint (concurrently resident blocks never
 * overlap, and an in-flight writeback's range cannot overlap a block
 * filled later, because its WB_ACK is ordered before that DATA on the
 * same directory->L1 channel), so a flat mask loses no information and
 * needs no per-segment heap storage. addRun() asserts the invariant.
 */
struct MsgData
{
    WordMask valid = 0;
    std::array<std::uint64_t, kMaxRegionWords> words;

    bool empty() const { return valid == 0; }

    unsigned
    count() const
    {
        return static_cast<unsigned>(std::popcount(valid));
    }

    void clear() { valid = 0; }

    bool has(unsigned w) const { return (valid >> w) & 1; }

    std::uint64_t
    at(unsigned w) const
    {
        PROTO_ASSERT(has(w), "reading absent payload word %u", w);
        return words[w];
    }

    void
    set(unsigned w, std::uint64_t v)
    {
        PROTO_ASSERT(w < kMaxRegionWords, "payload word out of range");
        PROTO_ASSERT(!has(w), "overlapping payload segments (word %u)",
                     w);
        words[w] = v;
        valid |= WordMask(1) << w;
    }

    /** Add a contiguous run; @p src is indexed from r.start. */
    void
    addRun(const WordRange &r, const std::uint64_t *src)
    {
        for (unsigned w = r.start; w <= r.end; ++w)
            set(w, src[w - r.start]);
    }

    /** Visit every carried (word, value), ascending word order. */
    template <typename F>
    void
    forEachWord(F &&fn) const
    {
        WordMask rest = valid;
        while (rest) {
            const unsigned w =
                static_cast<unsigned>(std::countr_zero(rest));
            rest &= rest - 1;
            fn(w, words[w]);
        }
    }
};

struct CoherenceMsg
{
    MsgType type = MsgType::ACK;

    /** Mesh node of the sender / receiver. */
    unsigned srcNode = 0;
    unsigned dstNode = 0;
    /** True when the destination is a directory tile, not an L1. */
    bool dstIsDir = false;

    /** L1 that sent the message (valid for L1-originated types). */
    CoreId sender = 0;
    /** Original requester a probe acts on behalf of. */
    CoreId requester = 0;

    Addr region = 0;
    /** Request / probe / data range. */
    WordRange range;

    /** Payload for DATA / WB_RESP / PUT. */
    MsgData data;

    // Probe semantics (directory -> L1).
    /** Keep blocks that do not overlap `range` (Protozoa-MW / SW+MR). */
    bool keepNonOverlap = false;
    /** Write back and clean *all* dirty blocks (SW+MR single-writer). */
    bool revokeWritePerm = false;
    /**
     * 3-hop mode: supply DATA for `reqFetchRange` directly to the
     * requester if the resident blocks cover it (Sec. 6).
     */
    bool tryDirect = false;
    /** The requester's fetch range (may differ from the probe range). */
    WordRange reqFetchRange;

    // Probe-response info (L1 -> directory).
    /** The probed L1 sent DATA straight to the requester (3-hop). */
    bool suppliedDirect = false;
    /** Sender still holds dirty block(s) of the region. */
    bool stillOwner = false;
    /** Sender still holds some block of the region. */
    bool stillSharer = false;

    /**
     * GETX only: the requester holds the words in S and asks for
     * permission alone; the directory answers with a payload-free DATA
     * when the requester is still a tracked reader.
     */
    bool upgrade = false;

    // PUT flags.
    /** No block of the region remains at the sender. */
    bool last = false;
    /** No dirty block remains: demote sender from writer to reader. */
    bool demoteOwner = false;

    /** Grant carried by DATA. */
    GrantState grant = GrantState::S;

    /** Total payload words across all segments. */
    unsigned dataWords() const;

    /** On-wire size: control header plus payload. */
    unsigned sizeBytes(unsigned control_bytes) const;

    /** Stats class of the header/control portion (Fig. 10). */
    CtrlClass ctrlClass() const;

    /**
     * Canonical 64-bit content hash: every protocol-visible field,
     * including the payload words. Two in-flight messages that would
     * behave identically on delivery hash equal (protocheck uses this
     * for the in-flight part of the state fingerprint).
     */
    std::uint64_t fingerprint() const;

    std::string toString() const;
};

} // namespace protozoa

#endif // PROTOZOA_PROTOCOL_COHERENCE_MSG_HH
