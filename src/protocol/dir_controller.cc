#include "protocol/dir_controller.hh"

#include <algorithm>
#include <bit>
#include <cstring>
#include <sstream>

#include "common/log.hh"

namespace protozoa {

DirController::DirController(TileId id, const SystemConfig &config,
                             EventQueue &eq, Router &rt,
                             WordStore &mem,
                             ConformanceCoverage *cov_tracker)
    : cfg(config), tileId(id), eventq(eq), router(rt), memImage(mem),
      coverage(cov_tracker),
      occRng(config.seed ^ 0x646972ULL ^ (std::uint64_t(id) << 40))
{
    const std::uint64_t blocks = cfg.l2BytesPerTile / cfg.regionBytes;
    setsPerTile = static_cast<unsigned>(blocks / cfg.l2Assoc);
    PROTO_ASSERT(setsPerTile > 0, "L2 tile too small");
    sets.resize(setsPerTile);
    for (auto &set : sets)
        set.resize(cfg.l2Assoc);

    if (cfg.directory == DirectoryKind::TaglessBloom) {
        bloomReaders = std::make_unique<CountingBloomSharers>(
            cfg.bloomBuckets, cfg.bloomHashes, cfg.numCores);
        bloomWriters = std::make_unique<CountingBloomSharers>(
            cfg.bloomBuckets, cfg.bloomHashes, cfg.numCores);
    }
}

void
DirController::setReader(L2Entry &entry, CoreId core)
{
    if (!entry.readers.test(core)) {
        entry.readers.set(core);
        if (bloomReaders)
            bloomReaders->add(entry.region, core);
    }
}

void
DirController::clearReader(L2Entry &entry, CoreId core)
{
    if (entry.readers.test(core)) {
        entry.readers.reset(core);
        if (bloomReaders)
            bloomReaders->remove(entry.region, core);
    }
}

void
DirController::setWriter(L2Entry &entry, CoreId core)
{
    if (!entry.writers.test(core)) {
        entry.writers.set(core);
        if (bloomWriters)
            bloomWriters->add(entry.region, core);
    }
}

void
DirController::clearWriter(L2Entry &entry, CoreId core)
{
    if (entry.writers.test(core)) {
        entry.writers.reset(core);
        if (bloomWriters)
            bloomWriters->remove(entry.region, core);
    }
}

void
DirController::clearAllSharers(L2Entry &entry)
{
    entry.readers.forEach(
        [&](CoreId c) { clearReader(entry, c); });
    entry.writers.forEach(
        [&](CoreId c) { clearWriter(entry, c); });
}

CoreSet
DirController::probeWriters(const L2Entry &entry) const
{
    if (!bloomWriters)
        return entry.writers;
    return bloomWriters->query(entry.region);
}

CoreSet
DirController::probeReaders(const L2Entry &entry) const
{
    if (!bloomReaders)
        return entry.readers;
    // A Bloom-writer core receives FWD_GETX already; do not also INV.
    return bloomReaders->query(entry.region).minus(probeWriters(entry));
}

DirState
DirController::absState(const L2Entry *entry) const
{
    if (!entry || entry->filling)
        return DirState::NP;
    const unsigned writers = entry->writers.count();
    if (writers > 1)
        return DirState::MW;
    if (writers == 1)
        return entry->readers.any() ? DirState::WR : DirState::W;
    return entry->readers.any() ? DirState::R : DirState::I;
}

void
DirController::cov(DirState from, DirEvent ev, DirState to)
{
    if (coverage)
        coverage->recordDir(from, ev, to);
}

Cycle
DirController::occupy(Cycle latency)
{
    if (cfg.occupancyJitter)
        latency += occRng.below(cfg.occupancyJitterMax + 1);
    const Cycle start = std::max(eventq.now(), busyUntil);
    busyUntil = start + latency;
    return busyUntil;
}

void
DirController::sendMsg(CoherenceMsg msg, Cycle when)
{
    msg.srcNode = tileId;
    msg.dstIsDir = false;
    eventq.scheduleAt(when, SendEvent{this, std::move(msg)});
}

unsigned
DirController::setIndexOf(Addr region) const
{
    const Addr region_index = region / cfg.regionBytes;
    return static_cast<unsigned>((region_index / cfg.l2Tiles) %
                                 setsPerTile);
}

DirController::L2Entry *
DirController::lookup(Addr region)
{
    for (auto &entry : sets[setIndexOf(region)]) {
        if (entry.valid && entry.region == region)
            return &entry;
    }
    return nullptr;
}

bool
DirController::busy(Addr region) const
{
    if (active.contains(region))
        return true;
    // A region with no active transaction is still pinned by queued
    // requests *for that region* (they reactivate it when drained).
    // Requests for other regions deferred behind it must not count:
    // during drainQueue each re-dispatched waiter would see its
    // sibling waiter in the queue, conclude the region is pinned, and
    // re-defer behind it — two cross-region waiters then block each
    // other forever (reachable with 3+ cores storming one L2 set).
    const auto *q = waiting.find(region);
    if (!q)
        return false;
    bool own = false;
    waitPool.forEach(*q, [&](const CoherenceMsg &m) {
        own = own || m.region == region;
    });
    return own;
}

DirController::DirView
DirController::view(Addr region)
{
    DirView v;
    if (const L2Entry *e = lookup(region)) {
        v.present = true;
        v.readers = e->readers;
        v.writers = e->writers;
        v.dirty = e->dirty;
    }
    return v;
}

void
DirController::receive(CoherenceMsg msg)
{
    PROTO_DTRACE("dir%u <- %s", tileId, msg.toString().c_str());
    switch (msg.type) {
      case MsgType::GETS:
      case MsgType::GETX:
      case MsgType::PUT:
        if (active.contains(msg.region)) {
            waitPool.push(*waiting.findOrCreate(msg.region),
                          std::move(msg));
            return;
        }
        dispatch(msg);
        break;
      case MsgType::UNBLOCK:
        finishTxn(msg.region);
        break;
      case MsgType::WB_RESP:
      case MsgType::ACK:
      case MsgType::ACK_S:
      case MsgType::NACK:
        handleProbeResponse(msg);
        break;
      default:
        panic("dir %u: unexpected message %s", tileId,
              msg.toString().c_str());
    }
}

void
DirController::dispatch(const CoherenceMsg &msg)
{
    switch (msg.type) {
      case MsgType::GETS:
      case MsgType::GETX:
        startRequest(msg);
        break;
      case MsgType::PUT:
        handlePut(msg);
        break;
      default:
        panic("dir %u: cannot dispatch %s", tileId,
              msg.toString().c_str());
    }
}

void
DirController::startRequest(const CoherenceMsg &msg)
{
    ++stats.requests;

    Txn txn;
    txn.kind = Txn::Kind::Request;
    txn.reqType = msg.type;
    txn.requester = msg.sender;
    txn.reqRange = msg.range;
    txn.upgrade = msg.upgrade;
    txn.start = eventq.now();
    txn.covBefore = absState(lookup(msg.region));
    txn.covEvent = msg.type == MsgType::GETS
        ? DirEvent::GetS
        : (msg.upgrade ? DirEvent::Upgrade : DirEvent::GetX);
    active.emplace(msg.region, txn);

    occupy(cfg.l2Latency);

    if (lookup(msg.region)) {
        probePhase(msg.region);
        return;
    }

    // L2 miss: reserve a slot, possibly recalling an inclusive victim.
    ++stats.l2Misses;
    auto &set = sets[setIndexOf(msg.region)];
    L2Entry *slot = nullptr;
    for (auto &entry : set) {
        if (!entry.valid) {
            slot = &entry;
            break;
        }
    }

    if (!slot) {
        // Evict the LRU entry that is not mid-transaction.
        for (auto &entry : set) {
            if (entry.filling || busy(entry.region))
                continue;
            if (!slot || entry.lruStamp < slot->lruStamp)
                slot = &entry;
        }
        if (!slot) {
            // Every entry is mid-fill or mid-transaction: the set is
            // transiently pinned (reachable with a one-entry set when
            // two regions' requests interleave; protocheck's
            // recall-inclusive scenario drives this). Defer behind the
            // first pinning region; its completion drains us a retry.
            Addr blocker = 0;
            bool pinned = false;
            for (auto &entry : set) {
                if (busy(entry.region)) {
                    blocker = entry.region;
                    pinned = true;
                    break;
                }
            }
            if (!pinned)
                panic("dir %u: no evictable L2 entry in set %u",
                      tileId, setIndexOf(msg.region));
            active.erase(msg.region);
            --stats.requests;
            --stats.l2Misses;
            waitPool.push(*waiting.findOrCreate(blocker), msg);
            return;
        }
        const Addr victim = slot->region;
        beginRecall(victim, msg.region);
        return;
    }

    slot->valid = true;
    slot->filling = true;
    slot->dirty = false;
    slot->region = msg.region;
    slot->readers = CoreSet();
    slot->writers = CoreSet();
    slot->lruStamp = ++lruClock;
    fetchFromMemory(msg.region);
}

void
DirController::beginRecall(Addr victim, Addr parent)
{
    ++stats.recalls;
    L2Entry *entry = lookup(victim);
    PROTO_ASSERT(entry, "recall of absent region");

    Txn txn;
    txn.kind = Txn::Kind::Recall;
    txn.parentRegion = parent;
    txn.reqRange = WordRange::full(cfg.regionWords());
    txn.start = eventq.now();
    txn.covBefore = absState(entry);
    txn.covEvent = DirEvent::Recall;

    unsigned probes = 0;
    const Cycle when = occupy(cfg.l2Latency);
    CoreSet holders = entry->readers;
    holders |= entry->writers;
    holders.forEach([&](CoreId c) {
        CoherenceMsg inv;
        inv.type = MsgType::INV;
        inv.dstNode = c;
        inv.region = victim;
        inv.range = WordRange::full(cfg.regionWords());
        inv.keepNonOverlap = false;
        sendMsg(std::move(inv), when);
        ++probes;
    });

    txn.pending = probes;
    active.emplace(victim, txn);
    if (probes == 0)
        finishRecall(victim);
}

void
DirController::finishRecall(Addr victim)
{
    Txn *txn = active.find(victim);
    PROTO_ASSERT(txn && txn->kind == Txn::Kind::Recall,
                 "finishRecall without recall txn");
    const Addr parent = txn->parentRegion;
    cov(txn->covBefore, DirEvent::Recall, DirState::NP);

    L2Entry *entry = lookup(victim);
    PROTO_ASSERT(entry, "recall victim vanished");
    if (entry->dirty) {
        memImage.writeRange(victim, entry->words.data(),
                            cfg.regionWords());
        stats.memWriteBytes += cfg.regionBytes;
    }

    // Hand the slot to the parent region.
    clearAllSharers(*entry);
    entry->valid = true;
    entry->filling = true;
    entry->dirty = false;
    entry->region = parent;
    entry->lruStamp = ++lruClock;

    active.erase(victim);
    fetchFromMemory(parent);
    drainQueue(victim);
}

void
DirController::fetchFromMemory(Addr region)
{
    stats.memReadBytes += cfg.regionBytes;
    const Cycle when = occupy(cfg.l2Latency) + cfg.memLatency;
    eventq.scheduleAt(when, FillEvent{this, region});
}

void
DirController::finishFill(Addr region)
{
    L2Entry *entry = lookup(region);
    PROTO_ASSERT(entry && entry->filling, "fill target vanished");
    entry->wordCount = cfg.regionWords();
    memImage.readRange(region, entry->words.data(),
                       cfg.regionWords());
    entry->filling = false;
    probePhase(region);
}

void
DirController::recordOwnedCensus(const L2Entry &entry)
{
    if (entry.writers.none())
        return;
    if (entry.writers.count() > 1)
        ++stats.ownedMultiOwner;
    else if (entry.readers.any())
        ++stats.ownedOneOwnerPlusSharers;
    else
        ++stats.ownedOneOwnerOnly;
}

void
DirController::probePhase(Addr region)
{
    Txn *txn_p = active.find(region);
    PROTO_ASSERT(txn_p, "probePhase without txn");
    Txn &txn = *txn_p;
    L2Entry *entry = lookup(region);
    PROTO_ASSERT(entry && !entry->filling, "probePhase without entry");

    recordOwnedCensus(*entry);

    const bool adaptive_coherence =
        cfg.protocol == ProtocolKind::ProtozoaSWMR ||
        cfg.protocol == ProtocolKind::ProtozoaMW;
    const WordRange probe_range =
        adaptive_coherence ? txn.reqRange
                           : WordRange::full(cfg.regionWords());

    const Cycle when = occupy(cfg.l2Latency);

    const CoreSet probe_writers = probeWriters(*entry);
    const CoreSet probe_readers = probeReaders(*entry);
    auto count_false = [&](CoreId c) {
        if (!entry->writers.test(c) && !entry->readers.test(c))
            ++stats.bloomFalseProbes;
    };

    SmallVec<CoherenceMsg, 18> probes;
    if (txn.reqType == MsgType::GETX) {
        probe_writers.forEach([&](CoreId c) {
            if (c == txn.requester)
                return;
            CoherenceMsg fwd;
            fwd.type = MsgType::FWD_GETX;
            fwd.dstNode = c;
            fwd.region = region;
            fwd.range = probe_range;
            fwd.requester = txn.requester;
            fwd.keepNonOverlap = adaptive_coherence;
            fwd.revokeWritePerm =
                cfg.protocol == ProtocolKind::ProtozoaSWMR;
            count_false(c);
            probes.push_back(std::move(fwd));
        });
        probe_readers.forEach([&](CoreId c) {
            if (c == txn.requester)
                return;
            CoherenceMsg inv;
            inv.type = MsgType::INV;
            inv.dstNode = c;
            inv.region = region;
            inv.range = probe_range;
            inv.requester = txn.requester;
            inv.keepNonOverlap = adaptive_coherence;
            count_false(c);
            probes.push_back(std::move(inv));
        });
    } else {
        probe_writers.forEach([&](CoreId c) {
            if (c == txn.requester)
                return;
            CoherenceMsg fwd;
            fwd.type = MsgType::FWD_GETS;
            fwd.dstNode = c;
            fwd.region = region;
            fwd.range = probe_range;
            fwd.requester = txn.requester;
            count_false(c);
            probes.push_back(std::move(fwd));
        });
    }

    // Sec. 6 3-hop: with a single probe target the owner may forward
    // the data straight to the requester (4-hop is the fallback).
    if (cfg.threeHop && probes.size() == 1 && !txn.upgrade) {
        probes.front().tryDirect = true;
        probes.front().reqFetchRange = txn.reqRange;
    }

    txn.pending = static_cast<unsigned>(probes.size());
    for (auto &probe : probes)
        sendMsg(std::move(probe), when);
    if (txn.pending == 0)
        respond(region);
}

void
DirController::patchPayload(L2Entry &entry, const MsgData &data)
{
    if (data.empty())
        return;
    PROTO_ASSERT(!entry.filling, "patch into filling entry");
    data.forEachRun([&](const WordRange &run, const std::uint64_t *src) {
        std::memcpy(&entry.words[run.start], src,
                    std::size_t(run.words()) * sizeof(std::uint64_t));
    });
    entry.dirty = true;
}

void
DirController::updateSetsFromResponse(L2Entry &entry,
                                      const CoherenceMsg &msg)
{
    PROTO_DTRACE("dir%u sets: region=%llx sender=%u stillO=%d stillS=%d "
                 "(was w=%s r=%s)",
                 tileId, static_cast<unsigned long long>(entry.region),
                 msg.sender, msg.stillOwner, msg.stillSharer,
                 entry.writers.toHex().c_str(),
                 entry.readers.toHex().c_str());
    if (msg.stillOwner) {
        setWriter(entry, msg.sender);
        clearReader(entry, msg.sender);
    } else if (msg.stillSharer) {
        clearWriter(entry, msg.sender);
        setReader(entry, msg.sender);
    } else {
        clearWriter(entry, msg.sender);
        clearReader(entry, msg.sender);
    }
}

void
DirController::handleProbeResponse(const CoherenceMsg &msg)
{
    Txn *txn_p = active.find(msg.region);
    PROTO_ASSERT(txn_p, "probe response without txn");
    Txn &txn = *txn_p;
    PROTO_ASSERT(txn.pending > 0, "unexpected probe response");

    L2Entry *entry = lookup(msg.region);
    PROTO_ASSERT(entry, "probe response without entry");
    patchPayload(*entry, msg.data);
    updateSetsFromResponse(*entry, msg);
    if (msg.suppliedDirect) {
        txn.directSupplied = true;
        ++stats.threeHopDirect;
    }

    occupy(cfg.l2Latency);

    if (--txn.pending > 0)
        return;
    if (txn.kind == Txn::Kind::Recall)
        finishRecall(msg.region);
    else
        respond(msg.region);
}

void
DirController::respond(Addr region)
{
    Txn *txn_p = active.find(region);
    PROTO_ASSERT(txn_p, "respond without txn");
    Txn &txn = *txn_p;
    L2Entry *entry = lookup(region);
    PROTO_ASSERT(entry && !entry->filling, "respond without entry");

    const CoreId req = txn.requester;

    CoherenceMsg data;
    data.type = MsgType::DATA;
    data.dstNode = req;
    data.region = region;
    data.range = txn.reqRange;
    data.requester = req;

    if (txn.reqType == MsgType::GETX) {
        // Payload-free upgrade: legal only while the requester stayed a
        // tracked reader, which guarantees its S copy is still fresh.
        const bool dataless = txn.upgrade && entry->readers.test(req);
        data.grant = GrantState::M;
        if (!dataless) {
            data.data.setRange(txn.reqRange,
                               &entry->words[txn.reqRange.start]);
        }
        setWriter(*entry, req);
        clearReader(*entry, req);
        if (cfg.protocol != ProtocolKind::ProtozoaMW) {
            PROTO_ASSERT(entry->writers.only(req),
                         "single-writer protocol with multiple owners: "
                         "region=%llx writers=%s readers=%s req=%u "
                         "upgrade=%d range=%s",
                         static_cast<unsigned long long>(region),
                         entry->writers.toHex().c_str(),
                         entry->readers.toHex().c_str(),
                         req, txn.upgrade, txn.reqRange.toString().c_str());
        }
    } else {
        const bool exclusive =
            entry->writers.none() && entry->readers.none();
        data.grant = exclusive ? GrantState::E : GrantState::S;
        if (exclusive || entry->writers.test(req)) {
            // E grant, or a secondary GETS from an existing owner:
            // either way the core keeps (or gains) writer tracking.
            setWriter(*entry, req);
        } else {
            setReader(*entry, req);
        }
        data.data.setRange(txn.reqRange,
                           &entry->words[txn.reqRange.start]);
    }

    entry->lruStamp = ++lruClock;
    cov(txn.covBefore, txn.covEvent, absState(entry));
    if (txn.directSupplied) {
        // 3-hop: the probed owner already sent DATA to the requester;
        // only the bookkeeping above was still needed.
        occupy(cfg.l2Latency);
    } else {
        sendMsg(std::move(data), occupy(cfg.l2Latency));
    }
    if (txn.unblocked) {
        // The requester's UNBLOCK beat the final probe response
        // (possible in 3-hop mode: the requester is served directly).
        active.erase(region);
        drainQueue(region);
        return;
    }
    txn.waitingUnblock = true;
}

void
DirController::handlePut(const CoherenceMsg &msg)
{
    occupy(cfg.l2Latency);
    L2Entry *entry = lookup(msg.region);
    const bool tracked =
        entry && (entry->readers.test(msg.sender) ||
                  entry->writers.test(msg.sender));
    const DirState before = absState(entry);

    if (tracked) {
        patchPayload(*entry, msg.data);
        if (msg.last) {
            clearReader(*entry, msg.sender);
            clearWriter(*entry, msg.sender);
        } else if (msg.demoteOwner) {
            clearWriter(*entry, msg.sender);
            setReader(*entry, msg.sender);
        }
        entry->lruStamp = ++lruClock;
        const DirEvent ev = msg.last
            ? DirEvent::PutLast
            : (msg.demoteOwner ? DirEvent::PutDemote : DirEvent::Put);
        cov(before, ev, absState(entry));
    } else {
        cov(before, DirEvent::PutStale, before);
    }
    // Untracked PUTs are stale (their data was already collected by a
    // forwarded probe answered from the writeback buffer): drop data.

    CoherenceMsg ack;
    ack.type = MsgType::WB_ACK;
    ack.dstNode = msg.sender;
    ack.region = msg.region;
    sendMsg(std::move(ack), occupy(0));
}

void
DirController::finishTxn(Addr region)
{
    Txn *txn = active.find(region);
    PROTO_ASSERT(txn, "UNBLOCK without txn");
    occupy(cfg.l2Latency);
    if (!txn->waitingUnblock) {
        // 3-hop: the directly-served requester can UNBLOCK before the
        // directory has collected the final probe response; remember
        // it and finish in respond().
        PROTO_ASSERT(cfg.threeHop, "early UNBLOCK without 3-hop mode");
        txn->unblocked = true;
        return;
    }
    active.erase(region);
    drainQueue(region);
}

std::vector<DirController::TxnView>
DirController::activeTxns() const
{
    std::vector<TxnView> out;
    out.reserve(active.size());
    active.forEach([&](Addr region, const Txn &txn) {
        TxnView v;
        v.region = region;
        v.start = txn.start;
        v.recall = txn.kind == Txn::Kind::Recall;
        v.pending = txn.pending;
        v.waitingUnblock = txn.waitingUnblock;
        const auto *q = waiting.find(region);
        v.queued = q ? q->size() : 0;
        out.push_back(v);
    });
    return out;
}

std::string
DirController::describeRegion(Addr region)
{
    std::ostringstream os;
    os << "dir" << tileId << " region 0x" << std::hex << region
       << std::dec << ": ";
    if (const L2Entry *e = lookup(region)) {
        os << "entry " << dirStateName(absState(e))
           << (e->filling ? " (filling)" : "")
           << (e->dirty ? " dirty" : " clean")
           << " readers=0x" << e->readers.toHex()
           << " writers=0x" << e->writers.toHex();
    } else {
        os << "no entry";
    }
    if (const Txn *t = active.find(region)) {
        os << "; txn " << (t->kind == Txn::Kind::Recall ? "recall"
                                                        : "request")
           << " (" << dirEventName(t->covEvent) << ") from core "
           << t->requester << " started @" << t->start
           << ", pending probes=" << t->pending
           << (t->waitingUnblock ? ", waiting UNBLOCK" : "");
    } else {
        os << "; no active txn";
    }
    if (const auto *q = waiting.find(region); q && !q->empty()) {
        os << "; queued:";
        waitPool.forEach(*q, [&](const CoherenceMsg &m) {
            os << " " << m.toString();
        });
    }
    return os.str();
}

void
DirController::drainQueue(Addr region)
{
    auto *q = waiting.find(region);
    if (!q)
        return;
    while (!q->empty() && !active.contains(region)) {
        CoherenceMsg msg = waitPool.popFront(*q);
        // A request deferred by a pinned L2 set waits in *another*
        // region's queue; requeue it if its own region became active
        // while it waited.
        const bool requeue =
            msg.region != region && active.contains(msg.region);
        if (q->empty()) {
            waiting.erase(region);
            if (requeue)
                waitPool.push(*waiting.findOrCreate(msg.region),
                              std::move(msg));
            else
                dispatch(msg);
            return;
        }
        // dispatch() may recurse into other regions' queues and
        // relocate table entries; re-find our queue handle after it.
        if (requeue)
            waitPool.push(*waiting.findOrCreate(msg.region),
                          std::move(msg));
        else
            dispatch(msg);
        q = waiting.find(region);
        if (!q)
            return;
    }
    if (q->empty())
        waiting.erase(region);
}

void
DirController::saveState(Serializer &s) const
{
    static_assert(std::is_trivially_copyable_v<DirStats>);
    static_assert(std::is_trivially_copyable_v<L2Entry>);
    static_assert(std::is_trivially_copyable_v<Txn>);
    s.writeRaw(stats);
    s.writeU64(lruClock);
    s.writeU64(busyUntil);
    std::uint64_t rng[4];
    occRng.stateWords(rng);
    for (const std::uint64_t w : rng)
        s.writeU64(w);

    // L2 sets raw, slot by slot: preserves slot positions (and hence
    // the lookup / victim scan order) exactly, stale slots included.
    s.writeU32(setsPerTile);
    s.writeU32(cfg.l2Assoc);
    for (const auto &set : sets)
        for (const L2Entry &e : set)
            s.writeRaw(e);

    // Active transactions and wait queues, replayed at restore in the
    // same table order (per-region FIFO order is what matters).
    s.writeU32(static_cast<std::uint32_t>(active.size()));
    active.forEach([&](Addr region, const Txn &t) {
        s.writeU64(region);
        s.writeRaw(t);
    });
    std::uint32_t queued = 0;
    forEachWaitingMsg([&](Addr, const CoherenceMsg &) { ++queued; });
    s.writeU32(queued);
    forEachWaitingMsg([&](Addr region, const CoherenceMsg &m) {
        s.writeU64(region);
        s.writeRaw(m);
    });

    s.writeU8(bloomReaders ? 1 : 0);
    if (bloomReaders) {
        bloomReaders->saveState(s);
        bloomWriters->saveState(s);
    }
}

bool
DirController::restoreState(Deserializer &d)
{
    d.readRaw(stats);
    lruClock = d.readU64();
    busyUntil = d.readU64();
    std::uint64_t rng[4];
    for (std::uint64_t &w : rng)
        w = d.readU64();
    occRng.setStateWords(rng);

    if (d.readU32() != setsPerTile || d.readU32() != cfg.l2Assoc)
        return false;
    for (auto &set : sets)
        for (L2Entry &e : set)
            d.readRaw(e);

    const std::uint32_t txns = d.readU32();
    if (d.failed())
        return false;
    for (std::uint32_t i = 0; i < txns; ++i) {
        const Addr region = d.readU64();
        Txn t;
        d.readRaw(t);
        if (d.failed())
            return false;
        active.emplace(region, t);
    }
    const std::uint32_t queued = d.readU32();
    if (d.failed())
        return false;
    for (std::uint32_t i = 0; i < queued; ++i) {
        const Addr region = d.readU64();
        CoherenceMsg m;
        d.readRaw(m);
        if (d.failed())
            return false;
        waitPool.push(*waiting.findOrCreate(region), std::move(m));
    }

    const bool has_bloom = d.readU8() != 0;
    if (has_bloom != (bloomReaders != nullptr))
        return false;
    if (bloomReaders &&
        (!bloomReaders->restoreState(d) ||
         !bloomWriters->restoreState(d)))
        return false;
    return !d.failed();
}

} // namespace protozoa
