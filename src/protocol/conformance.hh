/**
 * @file
 * Transition-coverage tracking for the coherence protocol family.
 *
 * The L1 and directory controllers report every abstract
 * (state, event) -> next-state tuple they execute to a
 * ConformanceCoverage matrix. The matrix is checked against the
 * documented transition inventory below — the implementation-level
 * analogue of the paper's Table 2/3 protocol description, in the style
 * of BedRock's validation against its state/event tables:
 *
 *  - an *undocumented* tuple panics immediately (either the inventory
 *    is missing a legal race, or the protocol took an illegal step);
 *  - a *documented but unobserved* tuple is reported by report(), so a
 *    stress campaign can show which corners of the protocol its
 *    interleavings actually reached.
 *
 * Abstract L1 states collapse the per-block Amoeba states and the MSHR
 * transients into the classic MESI-style machine:
 *
 *   I, S, E, M   — per-block stable states,
 *   IS / IM      — read / write miss outstanding,
 *   SM           — permission-only upgrade of a resident S block,
 *   SM_B         — upgrade whose target block a probe invalidated
 *                  mid-flight (Sec. 3.3 race; retried as a full GETX).
 *
 * Abstract directory states collapse the region's reader/writer sets:
 *
 *   NP           — no L2 entry (or the fill is still in flight),
 *   I            — entry present, no tracked sharers,
 *   R            — readers only,
 *   W            — one writer, no readers,
 *   WR           — one writer plus readers (SW+MR / MW only),
 *   MW           — multiple concurrent writers (MW only).
 */

#ifndef PROTOZOA_PROTOCOL_CONFORMANCE_HH
#define PROTOZOA_PROTOCOL_CONFORMANCE_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/config.hh"
#include "common/serialize.hh"

namespace protozoa {

enum class L1State : std::uint8_t { I, S, E, M, IS, IM, SM, SM_B };
constexpr unsigned kNumL1States = 8;

enum class L1Event : std::uint8_t
{
    Load,          ///< core load (hit or miss issue)
    Store,         ///< core store (hit or miss/upgrade issue)
    Data,          ///< DATA with payload fills the MSHR target
    DataUpgrade,   ///< payload-free DATA grants (or retries) an upgrade
    FwdGetS,       ///< forwarded read probe
    FwdGetX,       ///< forwarded write probe (invalidating)
    Inv,           ///< invalidation probe
    Revoke,        ///< write-permission revocation of surviving blocks
    Evict,         ///< capacity eviction selected this block
    FillReplace,   ///< an incoming fill overlapped this clean block
};
constexpr unsigned kNumL1Events = 10;

enum class DirState : std::uint8_t { NP, I, R, W, WR, MW };
constexpr unsigned kNumDirStates = 6;

enum class DirEvent : std::uint8_t
{
    GetS,          ///< read request transaction
    GetX,          ///< write request transaction (full fetch)
    Upgrade,       ///< write request flagged as permission-only upgrade
    Put,           ///< tracked writeback, core keeps write permission
    PutDemote,     ///< tracked writeback, owner demotes to reader
    PutLast,       ///< tracked writeback of the core's last block
    PutStale,      ///< writeback from an untracked core (dropped)
    Recall,        ///< inclusive-eviction recall transaction
};
constexpr unsigned kNumDirEvents = 8;

const char *l1StateName(L1State s);
const char *l1EventName(L1Event e);
const char *dirStateName(DirState s);
const char *dirEventName(DirEvent e);

/** Protocol bitmask values for the documented-transition inventory. */
constexpr unsigned P_MESI = 1, P_SW = 2, P_SWMR = 4, P_MW = 8;
constexpr unsigned P_ALL = P_MESI | P_SW | P_SWMR | P_MW;
/** Protocols with adaptive (request-range) coherence granularity. */
constexpr unsigned P_ADAPT = P_SWMR | P_MW;
/** Protocols where an L1 can hold several partial blocks of a region. */
constexpr unsigned P_PARTIAL = P_SW | P_SWMR | P_MW;

unsigned protocolBit(ProtocolKind kind);

/**
 * Configuration-knob profile a transition was observed under. The same
 * abstract protocol table must hold with 3-hop forwarding and/or the
 * Bloom-summarized directory enabled; tracking the profile per observed
 * tuple shows which table corners each knob combination actually
 * exercised (e.g. a NACK-retry row hit only under TaglessBloom).
 */
enum class KnobProfile : std::uint8_t
{
    Base,           ///< 4-hop, exact in-cache directory
    ThreeHop,       ///< cfg.threeHop
    BloomDir,       ///< cfg.directory == TaglessBloom
    ThreeHopBloom,  ///< both knobs
};
constexpr unsigned kNumKnobProfiles = 4;

const char *knobProfileName(KnobProfile p);

/** Profile of a system configuration's coherence knobs. */
KnobProfile knobProfileOf(const SystemConfig &cfg);

/** One documented row of the L1 transition table. */
struct L1TransitionDoc
{
    L1State from;
    L1Event ev;
    L1State to;
    /** Protocols under which the row is legal (P_* mask). */
    unsigned protocols;
    /**
     * For rows a typical run does not reach: why the row exists and
     * what interleaving produces it (empty for common rows).
     */
    const char *note;
};

/** One documented row of the directory transition table. */
struct DirTransitionDoc
{
    DirState from;
    DirEvent ev;
    DirState to;
    unsigned protocols;
    const char *note;
};

/**
 * Per-run transition-coverage matrix for one protocol.
 *
 * Not thread-safe: each System owns its own tracker; campaign workers
 * merge() their trackers after the runs complete.
 */
class ConformanceCoverage
{
  public:
    explicit ConformanceCoverage(ProtocolKind protocol,
                                 KnobProfile profile = KnobProfile::Base);

    ProtocolKind protocol() const { return proto; }
    KnobProfile knobProfile() const { return profile; }

    /** Record one L1 transition; panics when undocumented. */
    void recordL1(L1State from, L1Event ev, L1State to);

    /** Record one directory transition; panics when undocumented. */
    void recordDir(DirState from, DirEvent ev, DirState to);

    /** Accumulate @p other (same protocol, any profile) into this. */
    void merge(const ConformanceCoverage &other);

    /** Observation count summed across every knob profile. */
    std::uint64_t
    l1Count(L1State from, L1Event ev, L1State to) const
    {
        std::uint64_t n = 0;
        for (unsigned p = 0; p < kNumKnobProfiles; ++p)
            n += l1Counts[p][idx(from)][idx(ev)][idx(to)];
        return n;
    }

    std::uint64_t
    dirCount(DirState from, DirEvent ev, DirState to) const
    {
        std::uint64_t n = 0;
        for (unsigned p = 0; p < kNumKnobProfiles; ++p)
            n += dirCounts[p][idx(from)][idx(ev)][idx(to)];
        return n;
    }

    /** Observation count under one specific knob profile. */
    std::uint64_t
    l1CountAt(KnobProfile p, L1State from, L1Event ev, L1State to) const
    {
        return l1Counts[idx(p)][idx(from)][idx(ev)][idx(to)];
    }

    std::uint64_t
    dirCountAt(KnobProfile p, DirState from, DirEvent ev,
               DirState to) const
    {
        return dirCounts[idx(p)][idx(from)][idx(ev)][idx(to)];
    }

    /** True when at least one transition ran under profile @p p. */
    bool profileSeen(KnobProfile p) const { return seen[idx(p)]; }

    /** Documented rows hit under one specific knob profile. */
    unsigned hitRowsAt(KnobProfile p) const;

    /** Documented rows for this protocol. */
    unsigned documentedRows() const;
    /** Documented rows observed at least once. */
    unsigned hitRows() const;
    /** Documented, unobserved rows with no explanatory note. */
    unsigned unexplainedMisses() const;

    /**
     * True when every documented row was hit or carries a note
     * explaining the interleaving it needs (the acceptance bar for the
     * stress campaign: hit or explained).
     */
    bool complete() const { return unexplainedMisses() == 0; }

    /**
     * Human-readable coverage report: hit counts per documented row,
     * then the unobserved rows (with their notes).
     * @param verbose when false, hit rows are summarized, not listed.
     */
    std::string report(bool verbose = false) const;

    /** Full documented inventories (all protocols). */
    static const L1TransitionDoc *l1Inventory(std::size_t &count);
    static const DirTransitionDoc *dirInventory(std::size_t &count);

    /** Serialize the observation matrices (snapshot subsystem); the
     *  documented-row cubes are derived from the protocol and rebuilt
     *  by the constructor. */
    void
    saveState(Serializer &s) const
    {
        s.writeBytes(seen, sizeof(seen));
        s.writeBytes(l1Counts, sizeof(l1Counts));
        s.writeBytes(dirCounts, sizeof(dirCounts));
    }

    /** Restore into a tracker of the same protocol and profile. */
    bool
    restoreState(Deserializer &d)
    {
        return d.readBytes(seen, sizeof(seen)) &&
               d.readBytes(l1Counts, sizeof(l1Counts)) &&
               d.readBytes(dirCounts, sizeof(dirCounts));
    }

  private:
    template <typename E>
    static constexpr unsigned
    idx(E e)
    {
        return static_cast<unsigned>(e);
    }

    ProtocolKind proto;
    /** Profile this tracker records under (merge mixes profiles). */
    KnobProfile profile;
    bool seen[kNumKnobProfiles] = {};
    std::uint64_t l1Counts[kNumKnobProfiles][kNumL1States][kNumL1Events]
                          [kNumL1States] = {};
    std::uint64_t dirCounts[kNumKnobProfiles][kNumDirStates]
                           [kNumDirEvents][kNumDirStates] = {};
    /** Documented-row lookup cubes for this protocol. */
    bool l1Doc[kNumL1States][kNumL1Events][kNumL1States] = {};
    bool dirDoc[kNumDirStates][kNumDirEvents][kNumDirStates] = {};
};

} // namespace protozoa

#endif // PROTOZOA_PROTOCOL_CONFORMANCE_HH
