/**
 * @file
 * Public API facade of the Protozoa reproduction library.
 *
 * A downstream user needs three things: a SystemConfig describing the
 * machine and protocol, a workload (a named paper benchmark or custom
 * traces), and the resulting RunStats. Everything else (controllers,
 * mesh, storage) is reachable through System for white-box work.
 *
 * Quick start:
 * @code
 *   protozoa::SystemConfig cfg;
 *   cfg.protocol = protozoa::ProtocolKind::ProtozoaMW;
 *   auto stats = protozoa::runBenchmark(cfg, "linear-regression");
 *   std::cout << stats.mpki() << "\n";
 * @endcode
 */

#ifndef PROTOZOA_PROTOZOA_PROTOZOA_HH
#define PROTOZOA_PROTOZOA_PROTOZOA_HH

#include <string>

#include "common/config.hh"
#include "common/stats.hh"
#include "sim/random_tester.hh"
#include "sim/stats_report.hh"
#include "sim/sweep_runner.hh"
#include "sim/system.hh"
#include "workload/archetypes.hh"
#include "workload/benchmarks.hh"
#include "workload/trace.hh"

namespace protozoa {

/**
 * Run one of the paper's 28 benchmark profiles to completion.
 *
 * @param cfg   machine + protocol configuration (Table 4 defaults).
 * @param name  benchmark name, e.g. "linear-regression".
 * @param scale multiplies the workload's reference counts.
 */
RunStats runBenchmark(const SystemConfig &cfg, const std::string &name,
                      double scale = 1.0);

/** Run a custom workload (one TraceSource per core). */
RunStats runWorkload(const SystemConfig &cfg, Workload workload);

/** Workload scale from the PROTOZOA_SCALE environment variable. */
double envScale(double fallback = 1.0);

// Sweep-parallelism control lives in sim/sweep_runner.hh: envJobs()
// reads PROTOZOA_JOBS, runSweep() fans jobs across worker threads.

} // namespace protozoa

#endif // PROTOZOA_PROTOZOA_PROTOZOA_HH
