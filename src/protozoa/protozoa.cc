#include "protozoa/protozoa.hh"

#include <cstdlib>

namespace protozoa {

RunStats
runBenchmark(const SystemConfig &cfg, const std::string &name,
             double scale)
{
    const BenchSpec &spec = findBenchmark(name);
    System sys(cfg, spec.gen(cfg, scale));
    sys.run();
    return sys.report();
}

RunStats
runWorkload(const SystemConfig &cfg, Workload workload)
{
    System sys(cfg, std::move(workload));
    sys.run();
    return sys.report();
}

double
envScale(double fallback)
{
    if (const char *env = std::getenv("PROTOZOA_SCALE")) {
        const double v = std::atof(env);
        if (v > 0)
            return v;
    }
    return fallback;
}

} // namespace protozoa
